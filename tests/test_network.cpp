#include "des/network.hpp"

#include <gtest/gtest.h>

#include "des/engine.hpp"

namespace vapb::des {
namespace {

TEST(Network, P2pCostIsLatencyPlusBandwidthTerm) {
  NetworkModel n;
  n.latency_s = 1e-6;
  n.bandwidth_bytes_per_s = 1e9;
  EXPECT_DOUBLE_EQ(n.p2p_cost_s(0.0), 1e-6);
  EXPECT_DOUBLE_EQ(n.p2p_cost_s(1e9), 1.0 + 1e-6);
}

TEST(Network, CollectiveScalesLogarithmically) {
  NetworkModel n;
  n.latency_s = 1.0;
  n.bandwidth_bytes_per_s = 1e30;
  EXPECT_DOUBLE_EQ(n.collective_cost_s(1, 8.0), 0.0);
  EXPECT_DOUBLE_EQ(n.collective_cost_s(2, 8.0), 1.0);
  EXPECT_DOUBLE_EQ(n.collective_cost_s(4, 8.0), 2.0);
  EXPECT_DOUBLE_EQ(n.collective_cost_s(1024, 8.0), 10.0);
  EXPECT_DOUBLE_EQ(n.collective_cost_s(1025, 8.0), 11.0);
}

TEST(Network, SameNodeMapping) {
  NetworkModel n;
  n.ranks_per_node = 2;
  EXPECT_TRUE(n.same_node(0, 1));
  EXPECT_FALSE(n.same_node(1, 2));
  EXPECT_TRUE(n.same_node(6, 7));
  // Flat network: nothing shares a node.
  NetworkModel flat;
  EXPECT_FALSE(flat.same_node(0, 1));
}

TEST(Network, IntraNodeTransfersAreCheaper) {
  NetworkModel n;
  n.ranks_per_node = 2;
  double intra = n.p2p_cost_s(0, 1, 1e6);
  double inter = n.p2p_cost_s(1, 2, 1e6);
  EXPECT_LT(intra, inter);
  // Pair-specific cost degrades to the flat cost across nodes.
  EXPECT_DOUBLE_EQ(inter, n.p2p_cost_s(1e6));
}

TEST(Network, EngineUsesTierAwareCosts) {
  NetworkModel n;
  n.ranks_per_node = 2;
  n.latency_s = 1.0;
  n.bandwidth_bytes_per_s = 1e30;
  n.intra_latency_s = 0.25;
  n.intra_bandwidth_bytes_per_s = 1e30;
  Engine engine(n);
  // Ranks 0,1 share a node; 2 is remote. SPMD: everyone exchanges once.
  std::vector<RankProgram> progs(3);
  progs[0].halo_exchange({1}, 0.0);       // intra only
  progs[1].halo_exchange({0, 2}, 0.0);    // intra + inter
  progs[2].halo_exchange({1}, 0.0);       // inter only
  RunResult r = engine.run(progs);
  EXPECT_DOUBLE_EQ(r.ranks[0].transfer_s, 0.25);
  EXPECT_DOUBLE_EQ(r.ranks[1].transfer_s, 1.25);
  EXPECT_DOUBLE_EQ(r.ranks[2].transfer_s, 1.0);
}

}  // namespace
}  // namespace vapb::des
