#include "core/pmt.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::core {
namespace {

using namespace util::unit_literals;

class PmtFixture : public ::testing::Test {
 protected:
  PmtFixture() {
    allocation_.resize(cluster_.size());
    std::iota(allocation_.begin(), allocation_.end(), hw::ModuleId{0});
  }

  cluster::Cluster cluster_{hw::ha8k(), util::SeedSequence(51), 96};
  std::vector<hw::ModuleId> allocation_;
  Pvt pvt_ = Pvt::generate(cluster_, workloads::pvt_microbench(),
                           util::SeedSequence(52));
};

TEST(PmtEntry, InterpolationMath) {
  PmtEntry e{100.0_W, 30.0_W, 60.0_W, 20.0_W};
  EXPECT_DOUBLE_EQ(e.module_max_w().value(), 130.0);
  EXPECT_DOUBLE_EQ(e.module_min_w().value(), 80.0);
  EXPECT_DOUBLE_EQ(e.cpu_at(0.0).value(), 60.0);
  EXPECT_DOUBLE_EQ(e.cpu_at(1.0).value(), 100.0);
  EXPECT_DOUBLE_EQ(e.cpu_at(0.5).value(), 80.0);
  EXPECT_DOUBLE_EQ(e.dram_at(0.5).value(), 25.0);
  EXPECT_DOUBLE_EQ(e.module_at(0.5).value(), 105.0);
}

TEST(Pmt, FreqInterpolation) {
  Pmt pmt({PmtEntry{1_W, 1_W, 1_W, 1_W}}, 2.7_GHz, 1.2_GHz);
  EXPECT_DOUBLE_EQ(pmt.freq_at(0.0).value(), 1.2);
  EXPECT_DOUBLE_EQ(pmt.freq_at(1.0).value(), 2.7);
  EXPECT_NEAR(pmt.freq_at(0.5).value(), 1.95, 1e-12);
}

TEST(Pmt, Totals) {
  Pmt pmt({PmtEntry{10_W, 2_W, 5_W, 1_W}, PmtEntry{20_W, 4_W, 10_W, 2_W}},
          2.7_GHz, 1.2_GHz);
  EXPECT_DOUBLE_EQ(pmt.total_max_w().value(), 36.0);
  EXPECT_DOUBLE_EQ(pmt.total_min_w().value(), 18.0);
}

TEST(Pmt, Validation) {
  EXPECT_THROW(Pmt({}, 2.7_GHz, 1.2_GHz), InternalError);
  EXPECT_THROW(Pmt({PmtEntry{}}, 1.2_GHz, 2.7_GHz),
               ConfigError);  // fmax < fmin
  Pmt ok({PmtEntry{}}, 2.7_GHz, 1.2_GHz);
  EXPECT_THROW(ok.entry(1), InvalidArgument);
}

TEST_F(PmtFixture, CalibratedStreamPmtIsNearPerfect) {
  // *STREAM is the PVT microbenchmark: calibration must be ~exact.
  TestRunResult test = single_module_test_run(
      cluster_, 7, workloads::stream(), util::SeedSequence(53));
  Pmt predicted =
      calibrate_pmt(pvt_, test, allocation_, cluster_.spec().ladder);
  Pmt truth = oracle_pmt(cluster_, allocation_, workloads::stream(),
                         util::SeedSequence(54));
  EXPECT_LT(pmt_prediction_error(predicted, truth), 0.01);
}

TEST_F(PmtFixture, BtPredictionErrorIsLargest) {
  // Section 5.3: BT ~10% error, others < 5%.
  auto error_for = [&](const workloads::Workload& w) {
    TestRunResult test =
        single_module_test_run(cluster_, 7, w, util::SeedSequence(55));
    Pmt predicted =
        calibrate_pmt(pvt_, test, allocation_, cluster_.spec().ladder);
    Pmt truth = oracle_pmt(cluster_, allocation_, w, util::SeedSequence(56));
    return pmt_prediction_error(predicted, truth);
  };
  double bt_err = error_for(workloads::bt());
  EXPECT_GT(bt_err, 0.04);
  EXPECT_LT(bt_err, 0.25);
  EXPECT_LT(error_for(workloads::dgemm()), 0.05);
  EXPECT_LT(error_for(workloads::mhd()), 0.05);
  EXPECT_GT(bt_err, error_for(workloads::sp()));
}

TEST_F(PmtFixture, CalibrationCoversOnlyAllocation) {
  std::vector<hw::ModuleId> subset{3, 17, 42};
  TestRunResult test = single_module_test_run(
      cluster_, 3, workloads::mhd(), util::SeedSequence(57));
  Pmt pmt = calibrate_pmt(pvt_, test, subset, cluster_.spec().ladder);
  EXPECT_EQ(pmt.size(), 3u);
}

TEST_F(PmtFixture, OracleMatchesTrueModulePowers) {
  std::vector<hw::ModuleId> subset{0, 1, 2, 3};
  const auto& w = workloads::mhd();
  Pmt oracle = oracle_pmt(cluster_, subset, w, util::SeedSequence(58));
  for (std::size_t k = 0; k < subset.size(); ++k) {
    const auto& m = cluster_.module(subset[k]);
    EXPECT_NEAR(oracle.entry(k).cpu_max_w.value(),
                m.cpu_power_w(w.profile, 2.7),
                m.cpu_power_w(w.profile, 2.7) * 0.01);
    EXPECT_NEAR(oracle.entry(k).cpu_min_w.value(),
                m.cpu_power_w(w.profile, 1.2),
                m.cpu_power_w(w.profile, 1.2) * 0.01);
  }
}

TEST_F(PmtFixture, AveragedPmtIsUniform) {
  TestRunResult test = single_module_test_run(
      cluster_, 7, workloads::mhd(), util::SeedSequence(59));
  Pmt pmt = calibrate_pmt(pvt_, test, allocation_, cluster_.spec().ladder);
  Pmt avg = averaged_pmt(pmt);
  ASSERT_EQ(avg.size(), pmt.size());
  for (std::size_t k = 1; k < avg.size(); ++k) {
    EXPECT_DOUBLE_EQ(avg.entry(k).cpu_max_w.value(),
                     avg.entry(0).cpu_max_w.value());
  }
  EXPECT_NEAR(avg.total_max_w().value(), pmt.total_max_w().value(), 1e-6);
}

TEST(Pmt, ConstantPmtReplicates) {
  Pmt pmt = constant_pmt(PmtEntry{130_W, 62_W, 40_W, 10_W}, 5,
                         hw::FrequencyLadder(1.2, 2.7, 0.1));
  EXPECT_EQ(pmt.size(), 5u);
  EXPECT_DOUBLE_EQ(pmt.total_max_w().value(), 5 * 192.0);
  EXPECT_DOUBLE_EQ(pmt.total_min_w().value(), 5 * 50.0);
}

TEST(Pmt, ConstantPmtZeroRejected) {
  EXPECT_THROW(constant_pmt(PmtEntry{}, 0, hw::FrequencyLadder(1.2, 2.7, 0.1)),
               InvalidArgument);
}

TEST_F(PmtFixture, PredictionErrorValidation) {
  Pmt a({PmtEntry{1_W, 1_W, 1_W, 1_W}}, 2.7_GHz, 1.2_GHz);
  Pmt b({PmtEntry{1_W, 1_W, 1_W, 1_W}, PmtEntry{1_W, 1_W, 1_W, 1_W}}, 2.7_GHz,
        1.2_GHz);
  EXPECT_THROW(pmt_prediction_error(a, b), InvalidArgument);
  EXPECT_DOUBLE_EQ(pmt_prediction_error(a, a), 0.0);
}

TEST_F(PmtFixture, CalibrateEmptyAllocationThrows) {
  TestRunResult test = single_module_test_run(
      cluster_, 0, workloads::mhd(), util::SeedSequence(60));
  EXPECT_THROW(calibrate_pmt(pvt_, test, {}, cluster_.spec().ladder),
               InvalidArgument);
}

}  // namespace
}  // namespace vapb::core
