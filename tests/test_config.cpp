#include "util/config.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "hw/arch_io.hpp"
#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::util {
namespace {

const char* kSample = R"(
# a comment
[system]
name = TestBox          ; trailing comment
nodes = 42
tdp_cpu_w = 95.5

[ladder]
fmin_ghz = 1.0
fmax_ghz = 2.0
)";

TEST(Config, ParsesSectionsAndKeys) {
  Config cfg = Config::parse(kSample);
  EXPECT_TRUE(cfg.has_section("system"));
  EXPECT_TRUE(cfg.has("system", "name"));
  EXPECT_EQ(cfg.get("system", "name"), "TestBox");
  EXPECT_EQ(cfg.get_long("system", "nodes"), 42);
  EXPECT_DOUBLE_EQ(cfg.get_double("system", "tdp_cpu_w"), 95.5);
  EXPECT_EQ(cfg.sections(), (std::vector<std::string>{"system", "ladder"}));
  EXPECT_EQ(cfg.keys("system"),
            (std::vector<std::string>{"name", "nodes", "tdp_cpu_w"}));
}

TEST(Config, FallbacksAndMissing) {
  Config cfg = Config::parse(kSample);
  EXPECT_EQ(cfg.get_or("system", "missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(cfg.get_double_or("ladder", "step_ghz", 0.1), 0.1);
  EXPECT_EQ(cfg.get_long_or("nope", "x", 7), 7);
  EXPECT_THROW(static_cast<void>(cfg.get("system", "missing")),
               InvalidArgument);
  EXPECT_THROW(static_cast<void>(cfg.keys("nope")), InvalidArgument);
}

TEST(Config, SyntaxErrors) {
  EXPECT_THROW(Config::parse("key = before-section\n"), InvalidArgument);
  EXPECT_THROW(Config::parse("[unterminated\nk = v\n"), InvalidArgument);
  EXPECT_THROW(Config::parse("[s]\nno-equals-here\n"), InvalidArgument);
  EXPECT_THROW(Config::parse("[s]\n= novalue-key\n"), InvalidArgument);
  EXPECT_THROW(Config::parse("[s]\na = 1\na = 2\n"), InvalidArgument);
}

TEST(Config, NumericValidation) {
  Config cfg = Config::parse("[s]\nx = abc\n");
  EXPECT_THROW(static_cast<void>(cfg.get_double("s", "x")), InvalidArgument);
  EXPECT_THROW(static_cast<void>(cfg.get_long("s", "x")), InvalidArgument);
}

TEST(Config, EmptyInputIsEmptyConfig) {
  Config cfg = Config::parse("");
  EXPECT_TRUE(cfg.sections().empty());
}

const char* kArch = R"(
[system]
name = MiniCluster
microarch = Test CPU
nodes = 16
procs_per_node = 2
cores_per_proc = 8
tdp_cpu_w = 120
tdp_dram_w = 40
measurement = powerinsight
power_capping = false

[ladder]
fmin_ghz = 1.0
fmax_ghz = 2.4
step_ghz = 0.2
turbo_ghz = 2.8

[variation]
cpu_dyn_sd = 0.05
cpu_dyn_lo = 0.85
cpu_dyn_hi = 1.15
dram_sd = 0.1
dram_lo = 0.6
dram_hi = 1.4
freq_power_corr = 0.5
)";

TEST(ArchIo, BuildsSpecFromConfig) {
  hw::ArchSpec a = hw::arch_from_config_text(kArch);
  EXPECT_EQ(a.system, "MiniCluster");
  EXPECT_EQ(a.total_modules(), 32);
  EXPECT_EQ(a.cores_per_proc, 8);
  EXPECT_DOUBLE_EQ(a.tdp_cpu_w, 120.0);
  EXPECT_EQ(a.measurement, hw::SensorKind::kPowerInsight);
  EXPECT_FALSE(a.supports_power_capping);
  EXPECT_DOUBLE_EQ(a.ladder.fmin(), 1.0);
  EXPECT_DOUBLE_EQ(a.ladder.fmax(), 2.4);
  EXPECT_DOUBLE_EQ(a.ladder.turbo(), 2.8);
  EXPECT_DOUBLE_EQ(a.nominal_freq_ghz, 2.4);
  EXPECT_DOUBLE_EQ(a.variation.cpu_dyn_sd, 0.05);
  EXPECT_DOUBLE_EQ(a.variation.dram_hi, 1.4);
  EXPECT_DOUBLE_EQ(a.variation.freq_power_corr, 0.5);
  // Unspecified band stays at no-variation defaults.
  EXPECT_DOUBLE_EQ(a.variation.cpu_static_sd, 0.0);
}

TEST(ArchIo, ValidationErrors) {
  EXPECT_THROW(hw::arch_from_config_text("[system]\nname = x\n"),
               InvalidArgument);  // missing nodes/tdp/ladder
  std::string bad_sensor = kArch;
  bad_sensor.replace(bad_sensor.find("powerinsight"), 12, "thermocouple");
  EXPECT_THROW(hw::arch_from_config_text(bad_sensor), InvalidArgument);
  std::string bad_band =
      "[system]\nname = x\nnodes = 4\ntdp_cpu_w = 100\n"
      "[ladder]\nfmin_ghz = 1\nfmax_ghz = 2\n"
      "[variation]\ncpu_dyn_sd = 0.1\ncpu_dyn_lo = 1.2\ncpu_dyn_hi = 0.8\n";
  EXPECT_THROW(hw::arch_from_config_text(bad_band), ConfigError);
}

TEST(ArchIo, ConfiguredSpecFabricatesACluster) {
  hw::ArchSpec a = hw::arch_from_config_text(kArch);
  cluster::Cluster c(a, util::SeedSequence(5));
  EXPECT_EQ(c.size(), 32u);
  EXPECT_GT(c.module(0).cpu_power_w(
                vapb::workloads::pvt_microbench().profile, 2.4),
            0.0);
}

}  // namespace
}  // namespace vapb::util
