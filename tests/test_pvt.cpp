#include "core/pvt.hpp"

#include <gtest/gtest.h>

#include "stats/summary.hpp"
#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::core {
namespace {

class PvtFixture : public ::testing::Test {
 protected:
  cluster::Cluster cluster_{hw::ha8k(), util::SeedSequence(31), 96};
  Pvt pvt_ = Pvt::generate(cluster_, workloads::pvt_microbench(),
                           util::SeedSequence(32));
};

TEST_F(PvtFixture, OneEntryPerModule) {
  EXPECT_EQ(pvt_.size(), cluster_.size());
  EXPECT_EQ(pvt_.microbench_name(), workloads::pvt_microbench().name);
}

TEST_F(PvtFixture, ScalesAverageToOne) {
  stats::Accumulator cmax, dmax, cmin, dmin;
  for (const auto& e : pvt_.entries()) {
    cmax.add(e.cpu_max);
    dmax.add(e.dram_max);
    cmin.add(e.cpu_min);
    dmin.add(e.dram_min);
  }
  EXPECT_NEAR(cmax.mean(), 1.0, 1e-6);
  EXPECT_NEAR(dmax.mean(), 1.0, 1e-6);
  EXPECT_NEAR(cmin.mean(), 1.0, 1e-6);
  EXPECT_NEAR(dmin.mean(), 1.0, 1e-6);
}

TEST_F(PvtFixture, ScalesReflectTrueVariation) {
  // The module with the largest true microbench CPU power at fmax must have
  // one of the largest PVT scales (sensor noise is small).
  const auto& micro = workloads::pvt_microbench().profile;
  hw::ModuleId hungriest = 0;
  double max_power = 0;
  for (const auto& m : cluster_.modules()) {
    double p = m.cpu_power_w(micro, 2.7);
    if (p > max_power) {
      max_power = p;
      hungriest = m.id();
    }
  }
  double scale = pvt_.entry(hungriest).cpu_max;
  int larger = 0;
  for (const auto& e : pvt_.entries()) larger += e.cpu_max > scale;
  EXPECT_LE(larger, 2);
}

TEST_F(PvtFixture, DramScalesSpreadWiderThanCpu) {
  stats::Accumulator cpu, dram;
  for (const auto& e : pvt_.entries()) {
    cpu.add(e.cpu_max);
    dram.add(e.dram_max);
  }
  EXPECT_GT(dram.stddev(), cpu.stddev() * 1.5);
}

TEST_F(PvtFixture, SerializeRoundTrips) {
  std::string text = pvt_.serialize();
  Pvt copy = Pvt::deserialize(text);
  ASSERT_EQ(copy.size(), pvt_.size());
  EXPECT_EQ(copy.microbench_name(), pvt_.microbench_name());
  for (hw::ModuleId i = 0; i < pvt_.size(); ++i) {
    EXPECT_DOUBLE_EQ(copy.entry(i).cpu_max, pvt_.entry(i).cpu_max);
    EXPECT_DOUBLE_EQ(copy.entry(i).dram_min, pvt_.entry(i).dram_min);
  }
}

TEST_F(PvtFixture, EntryOutOfRangeThrows) {
  EXPECT_THROW(pvt_.entry(static_cast<hw::ModuleId>(pvt_.size())),
               InvalidArgument);
}

TEST(Pvt, GenerationIsDeterministic) {
  cluster::Cluster cluster(hw::ha8k(), util::SeedSequence(40), 16);
  Pvt a = Pvt::generate(cluster, workloads::pvt_microbench(),
                        util::SeedSequence(41));
  Pvt b = Pvt::generate(cluster, workloads::pvt_microbench(),
                        util::SeedSequence(41));
  for (hw::ModuleId i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(a.entry(i).cpu_max, b.entry(i).cpu_max);
  }
}

TEST(Pvt, DeserializeRejectsGarbage) {
  EXPECT_THROW(Pvt::deserialize("not a pvt"), InvalidArgument);
  EXPECT_THROW(Pvt::deserialize("pvt-v1 stream 3\n1 1 1 1\n"),
               InvalidArgument);  // truncated
  EXPECT_THROW(Pvt::deserialize(""), InvalidArgument);
}

TEST(Pvt, EmptyEntriesRejected) {
  EXPECT_THROW(Pvt("x", {}), InternalError);
}

}  // namespace
}  // namespace vapb::core
