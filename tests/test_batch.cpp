#include "core/batch.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::core {
namespace {

class BatchFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kFleet = 64;

  BatchFixture()
      : cluster_(hw::ha8k(), util::SeedSequence(131), kFleet),
        pvt_(Pvt::generate(cluster_, workloads::pvt_microbench(),
                           util::SeedSequence(132))) {
    run_config_.iterations = 4;
  }

  BatchJob job(const std::string& name, const workloads::Workload& w,
               std::size_t modules, double arrival) {
    return BatchJob{name, &w, modules, arrival, 4};
  }

  cluster::Cluster cluster_;
  Pvt pvt_;
  RunConfig run_config_;
};

TEST_F(BatchFixture, SingleJobRunsImmediately) {
  BatchSimulator sim(cluster_, pvt_, kFleet * 90.0, run_config_);
  BatchResult r = sim.run({job("a", workloads::mhd(), 32, 0.0)},
                          BatchConfig{}, util::SeedSequence(1));
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_TRUE(r.jobs[0].completed);
  EXPECT_DOUBLE_EQ(r.jobs[0].start_s, 0.0);
  EXPECT_GT(r.jobs[0].finish_s, 0.0);
  EXPECT_DOUBLE_EQ(r.makespan_s, r.jobs[0].finish_s);
  EXPECT_GT(r.throughput_jobs_per_hour, 0.0);
}

TEST_F(BatchFixture, ParallelJobsOverlapWhenResourcesAllow) {
  BatchSimulator sim(cluster_, pvt_, kFleet * 100.0, run_config_);
  BatchResult r = sim.run({job("a", workloads::mhd(), 24, 0.0),
                           job("b", workloads::bt(), 24, 0.0)},
                          BatchConfig{}, util::SeedSequence(2));
  EXPECT_TRUE(r.jobs[0].completed);
  EXPECT_TRUE(r.jobs[1].completed);
  // Both fit: both start at t=0.
  EXPECT_DOUBLE_EQ(r.jobs[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(r.jobs[1].start_s, 0.0);
}

TEST_F(BatchFixture, ModuleContentionSerializes) {
  BatchSimulator sim(cluster_, pvt_, kFleet * 200.0, run_config_);
  BatchResult r = sim.run({job("a", workloads::mhd(), 48, 0.0),
                           job("b", workloads::mhd(), 48, 0.0)},
                          BatchConfig{}, util::SeedSequence(3));
  ASSERT_TRUE(r.jobs[1].completed);
  // Job b cannot start until job a releases modules.
  EXPECT_NEAR(r.jobs[1].start_s, r.jobs[0].finish_s, 1e-6);
  EXPECT_GT(r.mean_wait_s, 0.0);
}

TEST_F(BatchFixture, PowerContentionSerializesEvenWithFreeModules) {
  // Plenty of modules but a budget that can only power one job's floor:
  // the second job waits on power, not on modules.
  double one_job_floor = 24 * 55.0;
  BatchSimulator sim(cluster_, pvt_, one_job_floor * 1.4, run_config_);
  BatchResult r = sim.run({job("a", workloads::mhd(), 24, 0.0),
                           job("b", workloads::mhd(), 24, 0.0)},
                          BatchConfig{}, util::SeedSequence(4));
  ASSERT_TRUE(r.jobs[0].completed);
  ASSERT_TRUE(r.jobs[1].completed);
  EXPECT_GT(r.jobs[1].start_s, 0.0);
}

TEST_F(BatchFixture, BackfillLetsSmallJobJumpQueue) {
  // Head job needs 48 modules (blocked while 40 are busy); a 16-module job
  // behind it fits now. With backfill it starts immediately.
  BatchConfig with_backfill;
  with_backfill.backfill = true;
  BatchConfig strict;
  strict.backfill = false;
  std::vector<BatchJob> stream = {job("big0", workloads::mhd(), 40, 0.0),
                                  job("big1", workloads::mhd(), 48, 1.0),
                                  job("small", workloads::ep(), 16, 2.0)};
  BatchSimulator sim(cluster_, pvt_, kFleet * 200.0, run_config_);
  BatchResult bf = sim.run(stream, with_backfill, util::SeedSequence(5));
  BatchResult fcfs = sim.run(stream, strict, util::SeedSequence(5));
  ASSERT_TRUE(bf.jobs[2].completed);
  ASSERT_TRUE(fcfs.jobs[2].completed);
  EXPECT_LT(bf.jobs[2].start_s, fcfs.jobs[2].start_s);
}

TEST_F(BatchFixture, ArrivalTimesRespected) {
  BatchSimulator sim(cluster_, pvt_, kFleet * 100.0, run_config_);
  BatchResult r = sim.run({job("late", workloads::ep(), 8, 100.0)},
                          BatchConfig{}, util::SeedSequence(6));
  EXPECT_DOUBLE_EQ(r.jobs[0].start_s, 100.0);
  EXPECT_DOUBLE_EQ(r.jobs[0].wait_s(), 0.0);
}

TEST_F(BatchFixture, ImpossibleJobsAreRejectedNotHung) {
  BatchSimulator sim(cluster_, pvt_, kFleet * 100.0, run_config_);
  BatchResult r = sim.run({job("too-big", workloads::mhd(), 1000, 0.0),
                           BatchJob{"null", nullptr, 8, 0.0, 4},
                           job("fine", workloads::mhd(), 16, 0.0)},
                          BatchConfig{}, util::SeedSequence(7));
  EXPECT_FALSE(r.jobs[0].completed);
  EXPECT_FALSE(r.jobs[1].completed);
  EXPECT_TRUE(r.jobs[2].completed);
}

TEST_F(BatchFixture, VariationAwareSchemeImprovesThroughput) {
  // Same stream, tight power: VaFs jobs finish faster than Naive jobs, so
  // the queue drains sooner.
  std::vector<BatchJob> stream;
  for (int k = 0; k < 4; ++k) {
    stream.push_back(job("j" + std::to_string(k), workloads::mhd(), 32,
                         k * 5.0));
  }
  BatchSimulator sim(cluster_, pvt_, 32 * 70.0, run_config_);
  BatchConfig naive;
  naive.scheme = SchemeKind::kNaive;
  BatchConfig vafs;
  vafs.scheme = SchemeKind::kVaFs;
  BatchResult rn = sim.run(stream, naive, util::SeedSequence(8));
  BatchResult rv = sim.run(stream, vafs, util::SeedSequence(8));
  EXPECT_GT(rv.throughput_jobs_per_hour, rn.throughput_jobs_per_hour * 1.1);
  EXPECT_LT(rv.mean_wait_s, rn.mean_wait_s);
}

TEST_F(BatchFixture, PowerUtilizationIsAFraction) {
  BatchSimulator sim(cluster_, pvt_, kFleet * 90.0, run_config_);
  BatchResult r = sim.run({job("a", workloads::mhd(), 32, 0.0),
                           job("b", workloads::bt(), 16, 0.0)},
                          BatchConfig{}, util::SeedSequence(9));
  EXPECT_GT(r.power_utilization, 0.0);
  EXPECT_LE(r.power_utilization, 1.0 + 1e-9);
}

TEST_F(BatchFixture, Validation) {
  EXPECT_THROW(BatchSimulator(cluster_, pvt_, 0.0), InvalidArgument);
  cluster::Cluster other(hw::ha8k(), util::SeedSequence(133), 8);
  EXPECT_THROW(BatchSimulator(other, pvt_, 100.0), InvalidArgument);
}

}  // namespace
}  // namespace vapb::core
