#include "core/resource_manager.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::core {
namespace {

class RmFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kFleet = 96;

  RmFixture()
      : cluster_(hw::ha8k(), util::SeedSequence(111), kFleet),
        pvt_(Pvt::generate(cluster_, workloads::pvt_microbench(),
                           util::SeedSequence(112))) {}

  JobRequest job(const workloads::Workload& w, std::size_t modules) {
    return JobRequest{w.name + "-job", &w, modules};
  }

  cluster::Cluster cluster_;
  Pvt pvt_;
};

TEST_F(RmFixture, GrantsAreDisjointAndWithinFleet) {
  ResourceManager rm(cluster_, pvt_, 96 * 90.0);
  auto result = rm.schedule({job(workloads::mhd(), 32),
                             job(workloads::bt(), 32),
                             job(workloads::dgemm(), 32)},
                            PowerSharePolicy::kProportionalDemand,
                            util::SeedSequence(1));
  ASSERT_EQ(result.granted.size(), 3u);
  std::set<hw::ModuleId> seen;
  for (const auto& g : result.granted) {
    EXPECT_EQ(g.allocation.size(), g.request.modules);
    for (auto id : g.allocation) {
      EXPECT_LT(id, kFleet);
      EXPECT_TRUE(seen.insert(id).second) << "module granted twice";
    }
  }
}

TEST_F(RmFixture, BudgetIsConserved) {
  const double budget = 96 * 85.0;
  ResourceManager rm(cluster_, pvt_, budget);
  for (auto policy : {PowerSharePolicy::kUniformPerModule,
                      PowerSharePolicy::kProportionalDemand,
                      PowerSharePolicy::kFminFirstThenDemand}) {
    auto result = rm.schedule({job(workloads::mhd(), 48),
                               job(workloads::stream(), 48)},
                              policy, util::SeedSequence(2));
    ASSERT_EQ(result.granted.size(), 2u);
    EXPECT_LE(result.power_committed_w, budget * (1 + 1e-9));
    for (const auto& g : result.granted) {
      EXPECT_GE(g.budget_w, g.pmt.total_min_w().value() - 1e-6)
          << "grant below its fmin floor";
    }
  }
}

TEST_F(RmFixture, RejectsWhenModulesExhausted) {
  ResourceManager rm(cluster_, pvt_, 96 * 100.0);
  auto result = rm.schedule({job(workloads::mhd(), 80),
                             job(workloads::bt(), 32)},
                            PowerSharePolicy::kUniformPerModule,
                            util::SeedSequence(3));
  EXPECT_EQ(result.granted.size(), 1u);
  ASSERT_EQ(result.rejected.size(), 1u);
  EXPECT_NE(result.rejected[0].second.find("free modules"),
            std::string::npos);
}

TEST_F(RmFixture, RejectsWhenPowerExhaustedAndReleasesModules) {
  // Budget covers roughly one job's fmin floor, not two.
  ResourceManager rm(cluster_, pvt_, 48 * 60.0);
  auto result = rm.schedule({job(workloads::mhd(), 48),
                             job(workloads::bt(), 48)},
                            PowerSharePolicy::kProportionalDemand,
                            util::SeedSequence(4));
  ASSERT_EQ(result.granted.size(), 1u);
  ASSERT_EQ(result.rejected.size(), 1u);
  EXPECT_NE(result.rejected[0].second.find("insufficient power"),
            std::string::npos);
}

TEST_F(RmFixture, OverprovisionedSystemAdmitsAtReducedAlpha) {
  // 96 modules need ~96*96 W at fmax for MHD; give two thirds of that: the
  // system is overprovisioned, jobs run at alpha < 1 instead of being
  // rejected.
  ResourceManager rm(cluster_, pvt_, 96 * 65.0);
  auto result = rm.schedule({job(workloads::mhd(), 48),
                             job(workloads::sp(), 48)},
                            PowerSharePolicy::kFminFirstThenDemand,
                            util::SeedSequence(5));
  ASSERT_EQ(result.granted.size(), 2u);
  for (const auto& g : result.granted) {
    EXPECT_TRUE(g.budget.fits_at_fmin);
    EXPECT_LT(g.budget.alpha, 1.0);
    EXPECT_GT(g.budget.alpha, 0.0);
  }
}

TEST_F(RmFixture, ProportionalDemandFavoursHungrierJob) {
  ResourceManager rm(cluster_, pvt_, 96 * 80.0);
  auto result = rm.schedule({job(workloads::dgemm(), 48),   // ~113 W/module
                             job(workloads::mvmc(), 48)},   // ~88 W/module
                            PowerSharePolicy::kProportionalDemand,
                            util::SeedSequence(6));
  ASSERT_EQ(result.granted.size(), 2u);
  EXPECT_GT(result.granted[0].budget_w, result.granted[1].budget_w);
}

TEST_F(RmFixture, UniformPerModuleSplitsByModuleCount) {
  ResourceManager rm(cluster_, pvt_, 90 * 70.0);
  auto result = rm.schedule({job(workloads::mhd(), 60),
                             job(workloads::mhd(), 30)},
                            PowerSharePolicy::kUniformPerModule,
                            util::SeedSequence(7));
  ASSERT_EQ(result.granted.size(), 2u);
  EXPECT_NEAR(result.granted[0].budget_w / result.granted[1].budget_w, 2.0,
              0.1);
}

TEST_F(RmFixture, GrantBudgetsNeverExceedDemand) {
  // Huge budget: grants are clamped at each job's fmax demand.
  ResourceManager rm(cluster_, pvt_, 96 * 500.0);
  auto result = rm.schedule({job(workloads::mhd(), 48),
                             job(workloads::bt(), 48)},
                            PowerSharePolicy::kProportionalDemand,
                            util::SeedSequence(8));
  ASSERT_EQ(result.granted.size(), 2u);
  for (const auto& g : result.granted) {
    EXPECT_LE(g.budget_w, g.pmt.total_max_w().value() + 1e-6);
    EXPECT_FALSE(g.budget.constrained);
  }
}

TEST_F(RmFixture, MalformedRequestsRejected) {
  ResourceManager rm(cluster_, pvt_, 1000.0);
  auto result = rm.schedule({JobRequest{"null-app", nullptr, 4},
                             JobRequest{"zero", &workloads::mhd(), 0}},
                            PowerSharePolicy::kUniformPerModule,
                            util::SeedSequence(9));
  EXPECT_TRUE(result.granted.empty());
  EXPECT_EQ(result.rejected.size(), 2u);
}

TEST_F(RmFixture, ConstructionValidation) {
  EXPECT_THROW(ResourceManager(cluster_, pvt_, 0.0), InvalidArgument);
  cluster::Cluster other(hw::ha8k(), util::SeedSequence(113), 8);
  EXPECT_THROW(ResourceManager(other, pvt_, 100.0), InvalidArgument);
}

TEST_F(RmFixture, DeterministicForSameSeed) {
  ResourceManager rm(cluster_, pvt_, 96 * 80.0);
  auto a = rm.schedule({job(workloads::mhd(), 48)},
                       PowerSharePolicy::kProportionalDemand,
                       util::SeedSequence(10));
  auto b = rm.schedule({job(workloads::mhd(), 48)},
                       PowerSharePolicy::kProportionalDemand,
                       util::SeedSequence(10));
  ASSERT_EQ(a.granted.size(), 1u);
  ASSERT_EQ(b.granted.size(), 1u);
  EXPECT_DOUBLE_EQ(a.granted[0].budget_w, b.granted[0].budget_w);
  EXPECT_DOUBLE_EQ(a.granted[0].budget.alpha, b.granted[0].budget.alpha);
}

}  // namespace
}  // namespace vapb::core
