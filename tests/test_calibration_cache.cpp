#include "core/calibration_cache.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "fault/scenario.hpp"
#include "util/thread_pool.hpp"
#include "workloads/catalog.hpp"

namespace vapb::core {
namespace {

class CalibrationCacheFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kModules = 32;

  CalibrationCacheFixture() {
    alloc_.resize(kModules);
    std::iota(alloc_.begin(), alloc_.end(), hw::ModuleId{0});
  }

  util::SeedSequence pvt_seed() { return cluster_.seed().fork("pvt"); }

  // A private cache per test: the global one is shared process-wide and
  // other tests may have warmed it.
  CalibrationCache cache_;
  cluster::Cluster cluster_{hw::ha8k(), util::SeedSequence(7), kModules};
  std::vector<hw::ModuleId> alloc_;
};

TEST_F(CalibrationCacheFixture, PvtComputedOnceAndShared) {
  auto a = cache_.pvt(cluster_, workloads::pvt_microbench(), pvt_seed());
  auto b = cache_.pvt(cluster_, workloads::pvt_microbench(), pvt_seed());
  EXPECT_EQ(a.get(), b.get());
  auto s = cache_.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST_F(CalibrationCacheFixture, DistinctSeedsAreDistinctEntries) {
  auto a = cache_.pvt(cluster_, workloads::pvt_microbench(), pvt_seed());
  auto b = cache_.pvt(cluster_, workloads::pvt_microbench(),
                      cluster_.seed().fork("other"));
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache_.stats().misses, 2u);
}

TEST_F(CalibrationCacheFixture, DistinctFleetsAreDistinctEntries) {
  cluster::Cluster other(hw::ha8k(), util::SeedSequence(8), kModules);
  ASSERT_NE(cluster_.fingerprint(), other.fingerprint());
  auto a = cache_.pvt(cluster_, workloads::pvt_microbench(), pvt_seed());
  auto b = cache_.pvt(other, workloads::pvt_microbench(),
                      other.seed().fork("pvt"));
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache_.stats().misses, 2u);
}

TEST_F(CalibrationCacheFixture, TestRunAndOracleAreMemoized) {
  auto seed = cluster_.seed().fork("test-run").fork("MHD");
  auto t1 = cache_.test_run(cluster_, alloc_.front(), workloads::mhd(), seed);
  auto t2 = cache_.test_run(cluster_, alloc_.front(), workloads::mhd(), seed);
  EXPECT_EQ(t1.get(), t2.get());

  auto oseed = cluster_.seed().fork("oracle").fork("MHD");
  auto o1 = cache_.oracle(cluster_, alloc_, workloads::mhd(), oseed);
  auto o2 = cache_.oracle(cluster_, alloc_, workloads::mhd(), oseed);
  EXPECT_EQ(o1.get(), o2.get());
  EXPECT_EQ(cache_.stats().misses, 2u);
  EXPECT_EQ(cache_.stats().hits, 2u);
}

TEST_F(CalibrationCacheFixture, SchemePmtKeyedOnSchemeKind) {
  auto pvt = cache_.pvt(cluster_, workloads::pvt_microbench(), pvt_seed());
  auto seed = cluster_.seed().fork("test-run").fork("MHD");
  auto test = cache_.test_run(cluster_, alloc_.front(), workloads::mhd(),
                              seed);
  auto sseed = cluster_.seed().fork("MHD").fork("VaFs");
  auto a = cache_.scheme_pmt(SchemeKind::kVaFs, cluster_, alloc_,
                             workloads::mhd(), *pvt, *test, sseed);
  auto b = cache_.scheme_pmt(SchemeKind::kVaFs, cluster_, alloc_,
                             workloads::mhd(), *pvt, *test, sseed);
  auto c = cache_.scheme_pmt(SchemeKind::kVaPc, cluster_, alloc_,
                             workloads::mhd(), *pvt, *test, sseed);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
}

TEST_F(CalibrationCacheFixture, FaultFingerprintsNeverShareEntries) {
  auto pvt = cache_.pvt(cluster_, workloads::pvt_microbench(), pvt_seed());
  auto seed = cluster_.seed().fork("test-run").fork("MHD");
  auto test =
      cache_.test_run(cluster_, alloc_.front(), workloads::mhd(), seed);
  auto sseed = cluster_.seed().fork("MHD").fork("VaPc");

  int builds = 0;
  const auto build = [&] {
    ++builds;
    return constant_pmt(
        PmtEntry{util::Watts{80.0}, util::Watts{12.0}, util::Watts{40.0},
                 util::Watts{6.0}},
        kModules, cluster_.spec().ladder);
  };
  const auto lookup = [&](std::uint64_t fingerprint) {
    return cache_.scheme_pmt("VaPc", cluster_, alloc_, workloads::mhd(), *pvt,
                             *test, sseed, build, fingerprint);
  };

  // Two scenarios that differ only in seed have distinct fingerprints and
  // must get distinct cache entries, even though every other key part —
  // including the calibration artifacts' content hashes — is identical.
  fault::FaultScenario one;
  one.seed = 1;
  one.drift_frac = 0.04;
  fault::FaultScenario two = one;
  two.seed = 2;
  ASSERT_NE(one.fingerprint(), two.fingerprint());

  auto a = lookup(one.fingerprint());
  auto b = lookup(two.fingerprint());
  auto none = lookup(0);  // injection off
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), none.get());
  EXPECT_EQ(builds, 3);

  // Same fingerprint is still a hit.
  EXPECT_EQ(lookup(one.fingerprint()).get(), a.get());
  EXPECT_EQ(lookup(0).get(), none.get());
  EXPECT_EQ(builds, 3);

  // The fingerprint-0 entry is the one the kind-keyed overload shares.
  EXPECT_EQ(cache_
                .scheme_pmt(SchemeKind::kVaPc, cluster_, alloc_,
                            workloads::mhd(), *pvt, *test, sseed)
                .get(),
            none.get());
}

TEST_F(CalibrationCacheFixture, ClearDropsEntriesButKeepsCounters) {
  auto a = cache_.pvt(cluster_, workloads::pvt_microbench(), pvt_seed());
  cache_.clear();
  EXPECT_EQ(cache_.stats().entries, 0u);
  auto b = cache_.pvt(cluster_, workloads::pvt_microbench(), pvt_seed());
  // The old shared_ptr stays valid (owned by the caller), but the cache
  // recomputes after clear().
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache_.stats().misses, 2u);
  // Identical seeds produce bitwise-identical recomputation.
  EXPECT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->entries()[i].cpu_max, b->entries()[i].cpu_max);
  }
}

TEST_F(CalibrationCacheFixture, ConcurrentRequestsShareOneComputation) {
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const Pvt>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[t] =
          cache_.pvt(cluster_, workloads::pvt_microbench(), pvt_seed());
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t].get(), results[0].get());
  }
  EXPECT_EQ(cache_.stats().misses, 1u);
  EXPECT_EQ(cache_.stats().hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST_F(CalibrationCacheFixture, UnboundedByDefault) {
  EXPECT_EQ(cache_.capacity(), 0u);
  EXPECT_EQ(cache_.stats().capacity, 0u);
  for (int i = 0; i < 8; ++i) {
    cache_.test_run(cluster_, alloc_.front(), workloads::mhd(),
                    cluster_.seed().fork("s", static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(cache_.stats().entries, 8u);
  EXPECT_EQ(cache_.stats().evictions, 0u);
}

TEST_F(CalibrationCacheFixture, CapacityEvictsLeastRecentlyUsed) {
  cache_.set_capacity(2);
  EXPECT_EQ(cache_.capacity(), 2u);
  const auto entry = [&](std::uint64_t i) {
    return cache_.test_run(cluster_, alloc_.front(), workloads::mhd(),
                           cluster_.seed().fork("s", i));
  };
  auto a = entry(0);
  auto b = entry(1);
  auto c = entry(2);  // evicts a (the coldest)
  EXPECT_EQ(cache_.stats().entries, 2u);
  EXPECT_EQ(cache_.stats().evictions, 1u);
  // b and c are still cached; a must be recomputed (same bits, new object).
  EXPECT_EQ(entry(1).get(), b.get());
  EXPECT_EQ(entry(2).get(), c.get());
  auto a2 = entry(0);
  EXPECT_NE(a2.get(), a.get());
  EXPECT_EQ(a2->cpu_max_w, a->cpu_max_w);
}

TEST_F(CalibrationCacheFixture, HitRefreshesRecency) {
  cache_.set_capacity(2);
  const auto entry = [&](std::uint64_t i) {
    return cache_.test_run(cluster_, alloc_.front(), workloads::mhd(),
                           cluster_.seed().fork("s", i));
  };
  auto a = entry(0);
  auto b = entry(1);
  entry(0);           // touch a: b is now the coldest
  auto c = entry(2);  // evicts b, not a
  EXPECT_EQ(entry(0).get(), a.get());
  EXPECT_EQ(entry(2).get(), c.get());
  EXPECT_NE(entry(1).get(), b.get());
}

TEST_F(CalibrationCacheFixture, LruSpansAllArtifactKinds) {
  // The recency list is shared across the pvt/test/oracle/pmt maps: filling
  // the cache with test runs can evict a PVT and vice versa.
  cache_.set_capacity(2);
  auto pvt = cache_.pvt(cluster_, workloads::pvt_microbench(), pvt_seed());
  cache_.test_run(cluster_, alloc_.front(), workloads::mhd(),
                  cluster_.seed().fork("s", 0));
  cache_.test_run(cluster_, alloc_.front(), workloads::mhd(),
                  cluster_.seed().fork("s", 1));
  EXPECT_EQ(cache_.stats().entries, 2u);
  EXPECT_EQ(cache_.stats().evictions, 1u);
  // The PVT was the coldest entry and is gone.
  auto again = cache_.pvt(cluster_, workloads::pvt_microbench(), pvt_seed());
  EXPECT_NE(again.get(), pvt.get());
}

TEST_F(CalibrationCacheFixture, ShrinkingCapacityEvictsImmediately) {
  for (std::uint64_t i = 0; i < 4; ++i) {
    cache_.test_run(cluster_, alloc_.front(), workloads::mhd(),
                    cluster_.seed().fork("s", i));
  }
  EXPECT_EQ(cache_.stats().entries, 4u);
  cache_.set_capacity(1);
  EXPECT_EQ(cache_.stats().entries, 1u);
  EXPECT_EQ(cache_.stats().evictions, 3u);
  // Growing (or unbounding) never evicts.
  cache_.set_capacity(0);
  EXPECT_EQ(cache_.stats().entries, 1u);
  EXPECT_EQ(cache_.stats().evictions, 3u);
}

TEST_F(CalibrationCacheFixture, ConcurrentMixedTrafficHonorsCapacity) {
  // N threads hammer a capacity-4 cache with overlapping keys; the bound
  // must hold at every observation point and all results stay bit-correct.
  cache_.set_capacity(4);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 24; ++i) {
        auto r = cache_.test_run(
            cluster_, alloc_.front(), workloads::mhd(),
            cluster_.seed().fork("s", static_cast<std::uint64_t>((t + i) % 6)));
        ASSERT_NE(r, nullptr);
        ASSERT_LE(cache_.stats().entries, 4u);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = cache_.stats();
  EXPECT_LE(s.entries, 4u);
  EXPECT_EQ(s.capacity, 4u);
  // 6 distinct keys through a 4-slot cache must have evicted something.
  EXPECT_GT(s.evictions, 0u);
}

TEST(CalibrationCacheGlobal, IsASingleton) {
  EXPECT_EQ(&CalibrationCache::global(), &CalibrationCache::global());
}

}  // namespace
}  // namespace vapb::core
