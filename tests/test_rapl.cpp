#include "hw/rapl.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::hw {
namespace {

FrequencyLadder ha8k_ladder() { return {1.2, 2.7, 0.1, 3.0}; }

Module make_module(double dyn = 1.0, double stat = 1.0) {
  ModuleVariation v;
  v.cpu_dyn = dyn;
  v.cpu_static = stat;
  return Module(0, v, ha8k_ladder(), 130.0, util::SeedSequence(1));
}

const workloads::Workload& app() { return workloads::dgemm(); }

TEST(Rapl, UncappedRunsAtFmaxWhenTdpAllows) {
  Module m = make_module();
  Rapl r(m);
  OperatingPoint op = r.operating_point(app().profile);
  EXPECT_DOUBLE_EQ(op.freq_ghz, 2.7);
  EXPECT_DOUBLE_EQ(op.perf_freq_ghz, 2.7);
  EXPECT_FALSE(op.throttled);
  EXPECT_DOUBLE_EQ(op.duty, 1.0);
  EXPECT_NEAR(op.cpu_w, m.cpu_power_w(app().profile, 2.7), 1e-9);
}

TEST(Rapl, TurboExceedsFmaxWithHeadroom) {
  Module m = make_module();
  Rapl r(m);
  OperatingPoint op = r.operating_point(app().profile, /*turbo=*/true);
  EXPECT_GT(op.freq_ghz, 2.7);
  EXPECT_LE(op.freq_ghz, 3.0 + 1e-12);
  EXPECT_LE(op.cpu_w, 130.0 + 1e-9);
}

TEST(Rapl, TurboLimitedByTdpForHungryModule) {
  // A very power-hungry part cannot reach full turbo under its TDP.
  Module m = make_module(1.5, 1.5);
  Rapl r(m);
  OperatingPoint op = r.operating_point(app().profile, /*turbo=*/true);
  EXPECT_LE(m.cpu_power_w(app().profile, op.freq_ghz), 130.0 + 1e-9);
  EXPECT_LT(op.freq_ghz, 3.0);
}

TEST(Rapl, BindingCapHitsExactAveragePower) {
  Module m = make_module();
  Rapl r(m);
  r.set_cpu_limit(util::Watts{70.0});
  OperatingPoint op = r.operating_point(app().profile);
  EXPECT_FALSE(op.throttled);
  EXPECT_NEAR(op.cpu_w, 70.0, 1e-9);
  EXPECT_GT(op.freq_ghz, 1.2);
  EXPECT_LT(op.freq_ghz, 2.7);
}

TEST(Rapl, BindingCapPaysControlPenalty) {
  Module m = make_module();
  RaplConfig cfg;
  cfg.control_perf_penalty = 0.05;
  Rapl r(m, cfg);
  r.set_cpu_limit(util::Watts{70.0});
  OperatingPoint op = r.operating_point(app().profile);
  EXPECT_NEAR(op.perf_freq_ghz, op.freq_ghz * 0.95, 1e-9);
}

TEST(Rapl, NonBindingCapRunsAtFmaxWithoutPenalty) {
  Module m = make_module();
  Rapl r(m);
  r.set_cpu_limit(util::Watts{1000.0});
  OperatingPoint op = r.operating_point(app().profile);
  EXPECT_DOUBLE_EQ(op.freq_ghz, 2.7);
  EXPECT_DOUBLE_EQ(op.perf_freq_ghz, 2.7);
  EXPECT_LT(op.cpu_w, 1000.0);
}

TEST(Rapl, CapBelowFminThrottles) {
  Module m = make_module();
  Rapl r(m);
  double p_fmin = m.cpu_power_w(app().profile, 1.2);
  r.set_cpu_limit(util::Watts{p_fmin * 0.8});
  OperatingPoint op = r.operating_point(app().profile);
  EXPECT_TRUE(op.throttled);
  EXPECT_DOUBLE_EQ(op.freq_ghz, 1.2);
  EXPECT_NEAR(op.duty, 0.8, 1e-9);
  EXPECT_LT(op.perf_freq_ghz, 1.2);
  // Average CPU power is exactly the cap (RAPL guarantee).
  EXPECT_NEAR(op.cpu_w, p_fmin * 0.8, 1e-9);
}

TEST(Rapl, CliffIsSuperLinear) {
  Module m = make_module();
  Rapl r(m);
  double p_fmin = m.cpu_power_w(app().profile, 1.2);
  r.set_cpu_limit(util::Watts{p_fmin * 0.8});
  OperatingPoint op = r.operating_point(app().profile);
  // At duty 0.8 the perf-equivalent frequency is far below 0.8 * fmin.
  EXPECT_LT(op.perf_freq_ghz, 0.8 * 1.2 * 0.5);
  EXPECT_GT(op.perf_freq_ghz, 0.0);
}

TEST(Rapl, CliffContinuousAtDutyOne) {
  Module m = make_module();
  Rapl r(m);
  double p_fmin = m.cpu_power_w(app().profile, 1.2);
  r.set_cpu_limit(util::Watts{p_fmin * 0.999});
  OperatingPoint just_below = r.operating_point(app().profile);
  r.set_cpu_limit(util::Watts{p_fmin * 1.001});
  OperatingPoint just_above = r.operating_point(app().profile);
  // No large jump across the fmin boundary (modulo the control penalty).
  EXPECT_NEAR(just_below.perf_freq_ghz, just_above.perf_freq_ghz, 0.08);
}

class CliffMonotone : public ::testing::TestWithParam<double> {};

TEST_P(CliffMonotone, TighterCapNeverFaster) {
  Module m = make_module();
  Rapl r(m);
  double cap = GetParam();
  r.set_cpu_limit(util::Watts{cap});
  OperatingPoint tight = r.operating_point(app().profile);
  r.set_cpu_limit(util::Watts{cap + 5.0});
  OperatingPoint loose = r.operating_point(app().profile);
  EXPECT_LE(tight.perf_freq_ghz, loose.perf_freq_ghz + 1e-9);
  EXPECT_LE(tight.cpu_w, loose.cpu_w + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Caps, CliffMonotone,
                         ::testing::Values(20.0, 30.0, 40.0, 48.0, 55.0, 70.0,
                                           90.0, 110.0));

TEST(Rapl, MinDutyFloorHolds) {
  Module m = make_module();
  RaplConfig cfg;
  cfg.min_duty = 0.05;
  Rapl r(m, cfg);
  r.set_cpu_limit(util::Watts{0.5});  // absurdly low
  OperatingPoint op = r.operating_point(app().profile);
  EXPECT_GE(op.duty, 0.05);
  EXPECT_GT(op.perf_freq_ghz, 0.0);
}

TEST(Rapl, DramPowerScalesWithDutyWhenThrottled) {
  Module m = make_module();
  Rapl r(m);
  double p_fmin = m.cpu_power_w(app().profile, 1.2);
  r.set_cpu_limit(util::Watts{p_fmin * 0.5});
  OperatingPoint op = r.operating_point(app().profile);
  EXPECT_LT(op.dram_w, m.dram_power_w(app().profile, 1.2));
  EXPECT_GT(op.dram_w, 0.0);
}

TEST(Rapl, ClearLimitRestoresUncapped) {
  Module m = make_module();
  Rapl r(m);
  r.set_cpu_limit(util::Watts{50.0});
  r.clear_cpu_limit();
  EXPECT_FALSE(r.cpu_limit_w().has_value());
  EXPECT_DOUBLE_EQ(r.operating_point(app().profile).freq_ghz, 2.7);
}

TEST(Rapl, EnergyCountersAccumulate) {
  Module m = make_module();
  Rapl r(m);
  OperatingPoint op = r.operating_point(app().profile);
  r.advance(op, 10.0);
  EXPECT_NEAR(r.pkg_energy_j(), op.cpu_w * 10.0, 1e-9);
  EXPECT_NEAR(r.dram_energy_j(), op.dram_w * 10.0, 1e-9);
  EXPECT_GT(r.pkg_energy_raw(), 0u);
}

TEST(Rapl, RawCounterWrapsAt32Bits) {
  Module m = make_module();
  RaplConfig cfg;
  Rapl r(m, cfg);
  OperatingPoint op;
  op.cpu_w = 100.0;
  // 2^32 energy units at 15.3 uJ/unit is ~65.7 kJ -> ~657 s at 100 W.
  double wrap_seconds = 4294967296.0 * cfg.energy_unit_j / 100.0;
  r.advance(op, wrap_seconds + 1.0);
  // Raw counter has wrapped while the non-wrapping view keeps counting.
  EXPECT_LT(static_cast<double>(r.pkg_energy_raw()) * cfg.energy_unit_j,
            r.pkg_energy_j());
}

TEST(Rapl, Validation) {
  Module m = make_module();
  Rapl r(m);
  EXPECT_THROW(r.set_cpu_limit(util::Watts{0.0}), InvalidArgument);
  EXPECT_THROW(r.set_cpu_limit(util::Watts{-5.0}), InvalidArgument);
  OperatingPoint op;
  EXPECT_THROW(r.advance(op, -1.0), InvalidArgument);
  RaplConfig bad;
  bad.window_s = 0.0;
  EXPECT_THROW(Rapl(m, bad), ConfigError);
  bad = RaplConfig{};
  bad.cliff_exponent = 0.5;
  EXPECT_THROW(Rapl(m, bad), ConfigError);
  bad = RaplConfig{};
  bad.min_duty = 0.0;
  EXPECT_THROW(Rapl(m, bad), ConfigError);
}

}  // namespace
}  // namespace vapb::hw
