#include "hw/thermal.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::hw {
namespace {

Module make_module(double dyn = 1.0, double stat = 1.0) {
  ModuleVariation v;
  v.cpu_dyn = dyn;
  v.cpu_static = stat;
  return Module(0, v, FrequencyLadder(1.2, 2.7, 0.1, 3.0), 130.0,
                util::SeedSequence(1));
}

const PowerProfile& profile() { return workloads::mhd().profile; }

TEST(Thermal, SteadyStateConverges) {
  Module m = make_module();
  ThermalModel model;
  ThermalSolution sol = model.steady_state(m, profile(), 2.7, 25.0);
  EXPECT_GT(sol.junction_c, 25.0);
  EXPECT_LT(sol.junction_c, 95.0);
  EXPECT_FALSE(sol.prochot);
  // Self-consistency: T == ambient + R * P.
  EXPECT_NEAR(sol.junction_c,
              25.0 + model.config().r_thermal_c_per_w * sol.cpu_w, 1e-6);
}

TEST(Thermal, AtReferenceTempMatchesBaseModel) {
  // If the solved junction equals ref_temp the leakage multiplier is 1 and
  // power equals the plain module model. Engineer that by picking the
  // ambient that lands exactly on ref_temp.
  Module m = make_module();
  ThermalModel model;
  double p_base = m.cpu_power_w(profile(), 2.0);
  double ambient = model.config().ref_temp_c -
                   model.config().r_thermal_c_per_w * p_base;
  ThermalSolution sol = model.steady_state(m, profile(), 2.0, ambient);
  EXPECT_NEAR(sol.cpu_w, p_base, 1e-6);
  EXPECT_NEAR(sol.junction_c, model.config().ref_temp_c, 1e-6);
}

TEST(Thermal, HotterAmbientMeansMorePower) {
  Module m = make_module();
  ThermalModel model;
  ThermalSolution cold = model.steady_state(m, profile(), 2.5, 15.0);
  ThermalSolution hot = model.steady_state(m, profile(), 2.5, 35.0);
  EXPECT_GT(hot.cpu_w, cold.cpu_w);
  EXPECT_GT(hot.junction_c, cold.junction_c + 15.0);
}

TEST(Thermal, LeakageFeedbackAmplifies) {
  // With the feedback on, power exceeds the open-loop value whenever the
  // junction sits above the calibration temperature.
  Module m = make_module();
  ThermalModel model;
  double open_loop = m.cpu_power_w(profile(), 2.7);
  ThermalSolution sol = model.steady_state(m, profile(), 2.7, 60.0);
  EXPECT_GT(sol.junction_c, model.config().ref_temp_c);
  EXPECT_GT(sol.cpu_w, open_loop);
}

TEST(Thermal, ProchotThrottlesFrequency) {
  Module m = make_module(1.15, 1.2);  // hungry part
  ThermalConfig cfg;
  cfg.prochot_c = 70.0;  // aggressive limit
  ThermalModel model(cfg);
  ThermalSolution sol = model.steady_state(m, profile(), 2.7, 45.0);
  EXPECT_TRUE(sol.prochot || sol.freq_ghz < 2.7);
  EXPECT_LE(sol.freq_ghz, 2.7);
  // Either the junction fits or we bottomed out at fmin.
  EXPECT_TRUE(sol.junction_c <= 70.0 + 1e-9 || sol.freq_ghz <= 1.2 + 1e-9);
}

TEST(Thermal, TurboDropsWithAmbient) {
  // Section 3.1.1: turbo frequency depends on ambient temperature.
  Module m = make_module(1.1, 1.1);
  ThermalConfig cfg;
  cfg.prochot_c = 85.0;
  ThermalModel model(cfg);
  double cool = model.turbo_frequency_ghz(m, workloads::dgemm().profile, 15.0);
  double hot = model.turbo_frequency_ghz(m, workloads::dgemm().profile, 45.0);
  EXPECT_LE(hot, cool + 1e-9);
  EXPECT_GE(cool, 1.2);
}

TEST(Thermal, EfficientPartTurbosHigherThanHungryPart) {
  ThermalModel model;
  Module efficient = make_module(0.9, 0.9);
  Module hungry = make_module(1.15, 1.2);
  double fe = model.turbo_frequency_ghz(efficient, workloads::dgemm().profile,
                                        25.0);
  double fh = model.turbo_frequency_ghz(hungry, workloads::dgemm().profile,
                                        25.0);
  EXPECT_GE(fe, fh);
}

class ThermalAmbientSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThermalAmbientSweep, SolutionsArePhysical) {
  Module m = make_module(1.05, 1.1);
  ThermalModel model;
  ThermalSolution sol = model.steady_state(m, profile(), 2.4, GetParam());
  EXPECT_GT(sol.junction_c, GetParam());
  EXPECT_GT(sol.cpu_w, 0.0);
  EXPECT_GE(sol.freq_ghz, 1.2 - 1e-12);
  EXPECT_LE(sol.freq_ghz, 2.4 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Ambients, ThermalAmbientSweep,
                         ::testing::Values(10.0, 20.0, 25.0, 30.0, 40.0,
                                           50.0));

TEST(Thermal, Validation) {
  ThermalConfig bad;
  bad.r_thermal_c_per_w = 0.0;
  EXPECT_THROW(ThermalModel{bad}, ConfigError);
  bad = ThermalConfig{};
  bad.leakage_per_c = -0.1;
  EXPECT_THROW(ThermalModel{bad}, ConfigError);
  bad = ThermalConfig{};
  bad.leakage_per_c = 1.0;  // divergent feedback
  EXPECT_THROW(ThermalModel{bad}, ConfigError);
  ThermalModel ok;
  Module m = make_module();
  EXPECT_THROW(static_cast<void>(ok.steady_state(m, profile(), 0.0, 25.0)),
               InvalidArgument);
}

}  // namespace
}  // namespace vapb::hw
