#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>

namespace vapb::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

TEST(ThreadPool, ExceptionPropagatesToWaiter) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool must remain usable afterwards.
  std::atomic<int> count{0};
  pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; },
               /*grain=*/8);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, ZeroGrainIsClampedNotDivByZero) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; },
               /*grain=*/0);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SmallNRunsSerially) {
  ThreadPool pool(4);
  std::vector<int> order;
  // With n <= grain the loop is serial on the caller thread, so mutation
  // without synchronization is safe and ordered.
  parallel_for(pool, 10,
               // vapb-lint: allow(parallel-capture-race): serial-path test
               [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               /*grain=*/64);
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelFor, ExceptionInBodyPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 1000,
                            [](std::size_t i) {
                              if (i == 512) throw std::runtime_error("boom");
                            },
                            /*grain=*/4),
               std::runtime_error);
}

class ParallelForSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelForSizes, SumMatchesClosedForm) {
  ThreadPool pool(4);
  const std::size_t n = GetParam();
  std::atomic<long long> sum{0};
  parallel_for(pool, n,
               [&](std::size_t i) { sum += static_cast<long long>(i); },
               /*grain=*/16);
  long long expected =
      static_cast<long long>(n) * static_cast<long long>(n - 1) / 2;
  if (n == 0) expected = 0;
  EXPECT_EQ(sum.load(), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParallelForSizes,
                         ::testing::Values(1, 2, 15, 16, 17, 63, 64, 65, 1000,
                                           4096));

TEST(ParallelFor, GlobalOverloadWorks) {
  std::atomic<int> count{0};
  parallel_for(500, [&](std::size_t) { ++count; }, 8);
  EXPECT_EQ(count.load(), 500);
}

TEST(ParallelFor, NestedCallsDoNotDeadlock) {
  // Chunked scheduling has per-call completion state and the caller claims
  // chunks itself, so a body may issue parallel_for on the same pool.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  parallel_for(pool, 8,
               [&](std::size_t) {
                 parallel_for(pool, 64, [&](std::size_t) { ++count; },
                              /*grain=*/4);
               },
               /*grain=*/1);
  EXPECT_EQ(count.load(), 8 * 64);
}

TEST(ParallelFor, ConcurrentCallsAreIsolated) {
  // Two parallel_for calls share the pool; one throws. The error must reach
  // only its own caller, and the healthy call must still visit every index.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::exception_ptr thrown;
  std::thread bad([&] {
    try {
      parallel_for(pool, 512,
                   [](std::size_t i) {
                     if (i % 2 == 0) throw std::runtime_error("bad call");
                   },
                   /*grain=*/4);
    } catch (...) {
      thrown = std::current_exception();
    }
  });
  parallel_for(pool, 2048, [&](std::size_t) { ++count; }, /*grain=*/4);
  bad.join();
  EXPECT_EQ(count.load(), 2048);
  EXPECT_TRUE(thrown != nullptr);
  EXPECT_THROW(std::rethrow_exception(thrown), std::runtime_error);
}

TEST(ParallelFor, PoolUsableAfterBodyThrows) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 256,
                            [](std::size_t) {
                              throw std::runtime_error("boom");
                            },
                            /*grain=*/4),
               std::runtime_error);
  std::atomic<int> count{0};
  parallel_for(pool, 256, [&](std::size_t) { ++count; }, /*grain=*/4);
  EXPECT_EQ(count.load(), 256);
}

TEST(ParallelFor, GrainOneOnSingleWorkerPool) {
  // pool.size() == 1 falls back to the serial path.
  ThreadPool pool(1);
  std::vector<int> order;
  parallel_for(pool, 64,
               // vapb-lint: allow(parallel-capture-race): serial-path test
               [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               /*grain=*/1);
  std::vector<int> expected(64);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace vapb::util
