#include "rules.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace vapb::lint {
namespace {

std::string fixture(const std::string& rel) {
  std::ifstream in(std::string(VAPB_LINT_FIXTURE_DIR) + "/" + rel,
                   std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << rel;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> rules_hit(const std::vector<Violation>& vs) {
  std::vector<std::string> out;
  out.reserve(vs.size());
  for (const Violation& v : vs) out.push_back(v.rule);
  return out;
}

bool hits(const std::vector<Violation>& vs, const std::string& rule) {
  for (const Violation& v : vs) {
    if (v.rule == rule) return true;
  }
  return false;
}

const HeaderIndex kEmptyIndex;

TEST(Lexer, CommentsAndStringsAreNotTokens) {
  LexResult r = lex("int x = 1; // std::mt19937 here\nconst char* s = "
                    "\"rand()\"; /* steady_clock */\n");
  for (const Token& t : r.tokens) {
    EXPECT_NE(t.text, "mt19937");
    EXPECT_NE(t.text, "steady_clock");
  }
  ASSERT_EQ(r.comments.size(), 2u);
  EXPECT_FALSE(r.comments[0].own_line);
  EXPECT_EQ(r.comments[0].line, 1);
}

TEST(Lexer, TracksLinesAndMultiCharPunct) {
  LexResult r = lex("a\n<=\nb::c");
  ASSERT_EQ(r.tokens.size(), 5u);
  EXPECT_EQ(r.tokens[0].line, 1);
  EXPECT_EQ(r.tokens[1].text, "<=");
  EXPECT_EQ(r.tokens[1].line, 2);
  EXPECT_EQ(r.tokens[3].text, "::");
  EXPECT_EQ(r.tokens[3].line, 3);
}

TEST(Catalog, NamesAreUniqueAndDocumented) {
  const auto& cat = rule_catalog();
  ASSERT_GE(cat.size(), 8u);
  for (std::size_t i = 0; i < cat.size(); ++i) {
    EXPECT_FALSE(cat[i].description.empty()) << cat[i].name;
    for (std::size_t j = i + 1; j < cat.size(); ++j) {
      EXPECT_NE(cat[i].name, cat[j].name);
    }
  }
}

TEST(Determinism, FlagsRandomEngines) {
  auto vs = lint_source("tests/lint_fixtures/determinism/bad_rand.cpp",
                        fixture("determinism/bad_rand.cpp"), kEmptyIndex);
  EXPECT_TRUE(hits(vs, "determinism-random")) << ::testing::PrintToString(
      rules_hit(vs));
  EXPECT_GE(vs.size(), 3u);
}

TEST(Determinism, FlagsWallClocks) {
  auto vs = lint_source("tests/lint_fixtures/determinism/bad_clock.cpp",
                        fixture("determinism/bad_clock.cpp"), kEmptyIndex);
  EXPECT_TRUE(hits(vs, "determinism-clock"));
}

TEST(Determinism, SeededRngIsClean) {
  auto vs = lint_source("tests/lint_fixtures/determinism/good_seeded.cpp",
                        fixture("determinism/good_seeded.cpp"), kEmptyIndex);
  EXPECT_TRUE(vs.empty()) << ::testing::PrintToString(rules_hit(vs));
}

TEST(Determinism, AllowlistIsPathScoped) {
  const std::string bad = fixture("determinism/bad_rand.cpp");
  // The same content is legal under bench/ and tools/.
  EXPECT_TRUE(lint_source("bench/bench_x.cpp", bad, kEmptyIndex).empty());
  EXPECT_TRUE(lint_source("tools/probe.cpp", bad, kEmptyIndex).empty());
  EXPECT_FALSE(lint_source("src/core/pmt.cpp", bad, kEmptyIndex).empty());

  const std::string clock = fixture("determinism/bad_clock.cpp");
  // campaign.cpp may read the wall clock for throughput reporting.
  EXPECT_TRUE(
      lint_source("src/core/campaign.cpp", clock, kEmptyIndex).empty());
  EXPECT_FALSE(
      lint_source("src/core/runner.cpp", clock, kEmptyIndex).empty());
}

TEST(Determinism, CounterRngIsApprovedSource) {
  // The counter-based fault RNG implementation is on the allowlist (it may
  // reference the banned engine names in its own docs)...
  const std::string bad = fixture("determinism/bad_rand.cpp");
  EXPECT_TRUE(
      lint_source("src/fault/counter_rng.cpp", bad, kEmptyIndex).empty());
  EXPECT_TRUE(
      lint_source("src/fault/counter_rng.hpp", bad, kEmptyIndex).empty());
  // ...but the rest of src/fault is not exempt.
  EXPECT_FALSE(
      lint_source("src/fault/injector.cpp", bad, kEmptyIndex).empty());

  // Drawing through fault::CounterRng lints clean anywhere.
  auto vs =
      lint_source("tests/lint_fixtures/determinism/good_counter_rng.cpp",
                  fixture("determinism/good_counter_rng.cpp"), kEmptyIndex);
  EXPECT_TRUE(vs.empty()) << ::testing::PrintToString(rules_hit(vs));

  // The violation message names it as an approved alternative.
  auto flagged = lint_source("src/core/x.cpp", bad, kEmptyIndex);
  ASSERT_FALSE(flagged.empty());
  EXPECT_NE(flagged.front().message.find("fault::CounterRng"),
            std::string::npos);
}

TEST(Reduction, FlagsRawLoopReductionsInClusterLayer) {
  auto vs =
      lint_source("tests/lint_fixtures/src/cluster/bad_raw_reduction.cpp",
                  fixture("src/cluster/bad_raw_reduction.cpp"), kEmptyIndex);
  int n = 0;
  for (const Violation& v : vs) n += v.rule == "determinism-reduction" ? 1 : 0;
  EXPECT_EQ(n, 2);  // one per raw loop (for and while)
  ASSERT_FALSE(vs.empty());
  EXPECT_NE(vs.front().message.find("util::chunked_sum"), std::string::npos);
}

TEST(Reduction, ChunkedPatternAndInductionStepsAreClean) {
  auto vs = lint_source(
      "tests/lint_fixtures/src/cluster/good_chunked_reduction.cpp",
      fixture("src/cluster/good_chunked_reduction.cpp"), kEmptyIndex);
  EXPECT_TRUE(vs.empty()) << ::testing::PrintToString(rules_hit(vs));
}

TEST(Reduction, OnlyAppliesUnderSrcCluster) {
  const std::string bad = fixture("src/cluster/bad_raw_reduction.cpp");
  // The same content is legal everywhere else: the rule polices the SoA
  // cluster layer, where fleet-sized numeric passes live.
  EXPECT_TRUE(lint_source("src/core/budget.cpp", bad, kEmptyIndex).empty());
  EXPECT_TRUE(lint_source("bench/bench_x.cpp", bad, kEmptyIndex).empty());
  EXPECT_FALSE(
      lint_source("src/cluster/cluster_soa.cpp", bad, kEmptyIndex).empty());
}

TEST(Reduction, StringAppendAndNestedHeadersAreNotReductions) {
  // A nested loop's induction step (`i += stride`) sits in the outer body
  // but is still a header, and literal appends build text, not sums.
  auto vs = lint_source(
      "src/cluster/x.cpp",
      "void f(unsigned n) {\n"
      "  for (unsigned r = 0; r < n; ++r) {\n"
      "    for (unsigned i = 0; i < n; i += 2) { g(i); }\n"
      "    s += \"x\";\n"
      "  }\n"
      "}\n",
      kEmptyIndex);
  EXPECT_TRUE(vs.empty()) << ::testing::PrintToString(rules_hit(vs));
}

TEST(UnitMixing, FlagsCrossUnitArithmetic) {
  auto vs = lint_source("tests/lint_fixtures/unit_mixing/bad_mix.cpp",
                        fixture("unit_mixing/bad_mix.cpp"), kEmptyIndex);
  int mixing = 0;
  for (const Violation& v : vs) mixing += v.rule == "unit-mixing" ? 1 : 0;
  EXPECT_EQ(mixing, 3);
}

TEST(UnitMixing, SameUnitAndDimensionChangingOpsAreClean) {
  auto vs = lint_source("tests/lint_fixtures/unit_mixing/good_same.cpp",
                        fixture("unit_mixing/good_same.cpp"), kEmptyIndex);
  EXPECT_TRUE(vs.empty()) << ::testing::PrintToString(rules_hit(vs));
}

TEST(UnitMixing, ResolvesMemberChainsAndCalls) {
  auto vs = lint_source(
      "x.cpp",
      "bool f(S a, T b) { return a.totals().cpu_w < b.span.makespan_s; }",
      kEmptyIndex);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "unit-mixing");
}

TEST(UnitSuffix, OnlyAppliesUnderCoreAndHw) {
  const std::string bad = fixture("src/core/bad_unit_suffix.hpp");
  auto vs = lint_source("tests/lint_fixtures/src/core/bad_unit_suffix.hpp",
                        bad, kEmptyIndex);
  int n = 0;
  for (const Violation& v : vs) n += v.rule == "unit-suffix" ? 1 : 0;
  EXPECT_EQ(n, 3);
  // Identical content outside src/core and src/hw is not this rule's business.
  EXPECT_TRUE(lint_source("src/stats/summary.hpp", bad, kEmptyIndex).empty());
}

TEST(UnitSuffix, SuffixedAndDimensionlessNamesAreClean) {
  auto vs = lint_source("tests/lint_fixtures/src/core/good_unit_suffix.hpp",
                        fixture("src/core/good_unit_suffix.hpp"), kEmptyIndex);
  EXPECT_TRUE(vs.empty()) << ::testing::PrintToString(rules_hit(vs));
}

TEST(Hygiene, UsingNamespaceOnlyFlaggedInHeaders) {
  const std::string bad = fixture("hygiene/bad_using_namespace.hpp");
  EXPECT_TRUE(hits(lint_source("a/b.hpp", bad, kEmptyIndex),
                   "using-namespace-header"));
  EXPECT_FALSE(hits(lint_source("a/b.cpp", bad, kEmptyIndex),
                    "using-namespace-header"));
}

TEST(Hygiene, NodiscardAccessor) {
  EXPECT_TRUE(hits(lint_source("hygiene/bad_nodiscard.hpp",
                               fixture("hygiene/bad_nodiscard.hpp"),
                               kEmptyIndex),
                   "nodiscard-accessor"));
  auto vs = lint_source("hygiene/good_header.hpp",
                        fixture("hygiene/good_header.hpp"), kEmptyIndex);
  EXPECT_TRUE(vs.empty()) << ::testing::PrintToString(rules_hit(vs));
}

TEST(Hygiene, UnusedIncludeNeedsTheIndex) {
  HeaderIndex index = build_header_index(
      {{"tests/lint_fixtures/hygiene/decls.hpp", fixture("hygiene/decls.hpp")}});
  const std::string bad = fixture("hygiene/bad_unused_include.cpp");
  EXPECT_TRUE(hits(lint_source("hygiene/bad_unused_include.cpp", bad, index),
                   "unused-include"));
  // Unknown headers are never judged.
  EXPECT_FALSE(hits(lint_source("hygiene/bad_unused_include.cpp", bad,
                                kEmptyIndex),
                    "unused-include"));
  EXPECT_FALSE(
      hits(lint_source("hygiene/good_used_include.cpp",
                       fixture("hygiene/good_used_include.cpp"), index),
           "unused-include"));
}

TEST(Hygiene, PairedHeaderIsAlwaysAllowed) {
  HeaderIndex index =
      build_header_index({{"src/core/pmt.hpp", "class Pmt {};"}});
  // pmt.cpp includes its own header without (textually) using the name.
  auto vs = lint_source("src/core/pmt.cpp", "#include \"core/pmt.hpp\"\n",
                        index);
  EXPECT_FALSE(hits(vs, "unused-include"));
}

TEST(Suppression, MissingReasonIsAViolationAndDoesNotSilence) {
  auto vs =
      lint_source("tests/lint_fixtures/suppression/bad_missing_reason.cpp",
                  fixture("suppression/bad_missing_reason.cpp"), kEmptyIndex);
  EXPECT_TRUE(hits(vs, "bad-suppression"));
  EXPECT_TRUE(hits(vs, "determinism-random"));
}

TEST(Suppression, ReasonedSuppressionSilencesNamedRuleOnly) {
  auto vs = lint_source("tests/lint_fixtures/suppression/good_suppressed.cpp",
                        fixture("suppression/good_suppressed.cpp"),
                        kEmptyIndex);
  EXPECT_TRUE(vs.empty()) << ::testing::PrintToString(rules_hit(vs));
  // The suppression is rule-specific: a different rule stays live.
  auto other = lint_source(
      "x.cpp",
      "// vapb-lint: allow(determinism-clock): wrong rule named\n"
      "int f() { return std::rand(); }\n",
      kEmptyIndex);
  EXPECT_TRUE(hits(other, "determinism-random"));
}

TEST(Suppression, UnknownRuleNameIsFlagged) {
  auto vs = lint_source(
      "x.cpp", "// vapb-lint: allow(no-such-rule): because\nint x = 1;\n",
      kEmptyIndex);
  EXPECT_TRUE(hits(vs, "bad-suppression"));
}

}  // namespace
}  // namespace vapb::lint
