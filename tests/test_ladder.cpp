#include "hw/ladder.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace vapb::hw {
namespace {

TEST(Ladder, LevelsIncludeEndpoints) {
  FrequencyLadder l(1.2, 2.7, 0.1);
  EXPECT_DOUBLE_EQ(l.levels().front(), 1.2);
  EXPECT_DOUBLE_EQ(l.levels().back(), 2.7);
  EXPECT_EQ(l.levels().size(), 16u);
}

TEST(Ladder, LevelsAscendByStep) {
  FrequencyLadder l(1.0, 2.0, 0.25);
  const auto& lv = l.levels();
  for (std::size_t i = 1; i < lv.size(); ++i) {
    EXPECT_GT(lv[i], lv[i - 1]);
    EXPECT_NEAR(lv[i] - lv[i - 1], 0.25, 1e-9);
  }
}

TEST(Ladder, SingleFrequencyLadder) {
  FrequencyLadder l(1.6, 1.6, 0.1);  // BG/Q A2: fixed frequency
  EXPECT_EQ(l.levels().size(), 1u);
  EXPECT_DOUBLE_EQ(l.quantize_down(2.0), 1.6);
  EXPECT_DOUBLE_EQ(l.quantize_down(1.0), 1.6);
}

TEST(Ladder, TurboSemantics) {
  FrequencyLadder with(1.2, 2.7, 0.1, 3.0);
  EXPECT_TRUE(with.has_turbo());
  EXPECT_DOUBLE_EQ(with.turbo(), 3.0);
  FrequencyLadder without(1.2, 2.7, 0.1);
  EXPECT_FALSE(without.has_turbo());
  EXPECT_DOUBLE_EQ(without.turbo(), 2.7);  // degrades to fmax
}

TEST(Ladder, Clamp) {
  FrequencyLadder l(1.2, 2.7, 0.1);
  EXPECT_DOUBLE_EQ(l.clamp(0.5), 1.2);
  EXPECT_DOUBLE_EQ(l.clamp(3.5), 2.7);
  EXPECT_DOUBLE_EQ(l.clamp(2.0), 2.0);
}

TEST(Ladder, IsLevel) {
  FrequencyLadder l(1.2, 2.7, 0.1);
  EXPECT_TRUE(l.is_level(1.2));
  EXPECT_TRUE(l.is_level(2.0));
  EXPECT_TRUE(l.is_level(2.7));
  EXPECT_FALSE(l.is_level(2.05));
  EXPECT_FALSE(l.is_level(3.0));
}

TEST(Ladder, InvalidConfigsThrow) {
  EXPECT_THROW(FrequencyLadder(0.0, 2.0, 0.1), ConfigError);
  EXPECT_THROW(FrequencyLadder(2.0, 1.0, 0.1), ConfigError);
  EXPECT_THROW(FrequencyLadder(1.0, 2.0, 0.0), ConfigError);
  EXPECT_THROW(FrequencyLadder(1.0, 2.0, 0.1, 1.5), ConfigError);  // turbo<fmax
}

struct QuantizeCase {
  double in;
  double expected;
};

class QuantizeDown : public ::testing::TestWithParam<QuantizeCase> {};

TEST_P(QuantizeDown, SnapsToLowerLevel) {
  FrequencyLadder l(1.2, 2.7, 0.1);
  EXPECT_NEAR(l.quantize_down(GetParam().in), GetParam().expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, QuantizeDown,
    ::testing::Values(QuantizeCase{1.2, 1.2}, QuantizeCase{1.25, 1.2},
                      QuantizeCase{1.3, 1.3}, QuantizeCase{1.999, 1.9},
                      QuantizeCase{2.7, 2.7}, QuantizeCase{3.5, 2.7},
                      QuantizeCase{0.4, 1.2}, QuantizeCase{2.0, 2.0}));

TEST(Ladder, QuantizeDownIsIdempotentOnLevels) {
  FrequencyLadder l(1.2, 2.7, 0.1);
  for (double f : l.levels()) {
    EXPECT_NEAR(l.quantize_down(f), f, 1e-9);
  }
}

}  // namespace
}  // namespace vapb::hw
