#include "cluster/scheduler.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::cluster {
namespace {

class SchedulerFixture : public ::testing::Test {
 protected:
  Cluster cluster_{hw::ha8k(), util::SeedSequence(11), 128};
  Scheduler sched_{cluster_};
};

TEST_F(SchedulerFixture, ContiguousIsABlock) {
  auto ids = sched_.allocate(32, AllocationPolicy::kContiguous,
                             util::SeedSequence(1));
  ASSERT_EQ(ids.size(), 32u);
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], ids[i - 1] + 1);
  }
}

TEST_F(SchedulerFixture, RandomIsUniqueAndSorted) {
  auto ids =
      sched_.allocate(64, AllocationPolicy::kRandom, util::SeedSequence(2));
  ASSERT_EQ(ids.size(), 64u);
  std::set<hw::ModuleId> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 64u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  for (auto id : ids) EXPECT_LT(id, 128u);
}

TEST_F(SchedulerFixture, RandomIsSeedDeterministic) {
  auto a = sched_.allocate(16, AllocationPolicy::kRandom, util::SeedSequence(3));
  auto b = sched_.allocate(16, AllocationPolicy::kRandom, util::SeedSequence(3));
  EXPECT_EQ(a, b);
  auto c = sched_.allocate(16, AllocationPolicy::kRandom, util::SeedSequence(4));
  EXPECT_NE(a, c);
}

TEST_F(SchedulerFixture, StridedSpreadsAcrossFleet) {
  auto ids =
      sched_.allocate(8, AllocationPolicy::kStrided, util::SeedSequence(5));
  ASSERT_EQ(ids.size(), 8u);
  // Stride = 128 / 8 = 16.
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i] - ids[i - 1], 16u);
  }
}

TEST_F(SchedulerFixture, WorstPowerPicksHungriestModules) {
  const auto& profile = workloads::dgemm().profile;
  auto worst = sched_.allocate(16, AllocationPolicy::kWorstPower,
                               util::SeedSequence(6), &profile);
  auto best = sched_.allocate(16, AllocationPolicy::kBestPower,
                              util::SeedSequence(6), &profile);
  auto power_of = [&](const std::vector<hw::ModuleId>& ids) {
    double total = 0;
    for (auto id : ids) {
      const auto& m = cluster_.module(id);
      total += m.module_power_w(profile, m.ladder().fmax());
    }
    return total;
  };
  EXPECT_GT(power_of(worst), power_of(best) * 1.05);
  // Disjoint when 2 * count <= fleet.
  std::set<hw::ModuleId> w(worst.begin(), worst.end());
  for (auto id : best) EXPECT_EQ(w.count(id), 0u);
}

TEST_F(SchedulerFixture, PowerPolicyRequiresProfile) {
  EXPECT_THROW(sched_.allocate(4, AllocationPolicy::kWorstPower,
                               util::SeedSequence(7)),
               InvalidArgument);
}

TEST_F(SchedulerFixture, FullFleetAllocation) {
  auto ids =
      sched_.allocate(128, AllocationPolicy::kRandom, util::SeedSequence(8));
  EXPECT_EQ(ids.size(), 128u);
}

TEST_F(SchedulerFixture, Validation) {
  EXPECT_THROW(
      sched_.allocate(0, AllocationPolicy::kRandom, util::SeedSequence(9)),
      InvalidArgument);
  EXPECT_THROW(
      sched_.allocate(129, AllocationPolicy::kRandom, util::SeedSequence(9)),
      InvalidArgument);
}

class AllPolicies : public ::testing::TestWithParam<AllocationPolicy> {};

TEST_P(AllPolicies, AllocationsAreValidModuleIds) {
  Cluster cluster(hw::ha8k(), util::SeedSequence(20), 96);
  Scheduler sched(cluster);
  const auto& profile = workloads::mhd().profile;
  auto ids = sched.allocate(24, GetParam(), util::SeedSequence(21), &profile);
  ASSERT_EQ(ids.size(), 24u);
  std::set<hw::ModuleId> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 24u);
  for (auto id : ids) EXPECT_LT(id, 96u);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, AllPolicies,
    ::testing::Values(AllocationPolicy::kContiguous, AllocationPolicy::kRandom,
                      AllocationPolicy::kStrided,
                      AllocationPolicy::kWorstPower,
                      AllocationPolicy::kBestPower));

// The exact error contract: callers (vapbctl, the tenancy scheduler) print
// these messages verbatim, so the wording is pinned.

template <typename Fn>
std::string thrown_message(Fn&& fn) {
  try {
    fn();
  } catch (const InvalidArgument& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected InvalidArgument";
  return "";
}

TEST_F(SchedulerFixture, ZeroCountMessageIsExact) {
  EXPECT_EQ(thrown_message([&] {
              (void)sched_.allocate(0, AllocationPolicy::kContiguous,
                                    util::SeedSequence(9));
            }),
            "Scheduler: count must be > 0");
}

TEST_F(SchedulerFixture, OversizedCountMessageIsExact) {
  EXPECT_EQ(thrown_message([&] {
              (void)sched_.allocate(129, AllocationPolicy::kContiguous,
                                    util::SeedSequence(9));
            }),
            "Scheduler: requested 129 modules, block has 128");
}

TEST_F(SchedulerFixture, MissingProfileMessageIsExact) {
  EXPECT_EQ(thrown_message([&] {
              (void)sched_.allocate(8, AllocationPolicy::kWorstPower,
                                    util::SeedSequence(9));
            }),
            "Scheduler: power-ordered policy needs a ranking profile");
}

TEST_F(SchedulerFixture, EmptyMixMessageIsExact) {
  EXPECT_EQ(thrown_message([&] {
              (void)sched_.allocate_mix(hw::ClassMix{},
                                        AllocationPolicy::kContiguous,
                                        util::SeedSequence(9));
            }),
            "Scheduler: empty class mix");
}

TEST(SchedulerMix, PerClassExhaustionNamesTheClass) {
  // cpu:8,gpu:3,dram:1 fleet: asking for 4 GPUs must name the gpu class and
  // its fabricated count, not the overall fleet size.
  Cluster fleet(hw::ha8k(), util::SeedSequence(17),
                hw::ClassMix::parse("cpu:8,gpu:3,dram:1"));
  Scheduler sched(fleet);
  try {
    (void)sched.allocate_mix(hw::ClassMix::parse("cpu:2,gpu:4"),
                             AllocationPolicy::kContiguous,
                             util::SeedSequence(9));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_STREQ(e.what(), "Scheduler: requested 4 gpu modules, fleet has 3");
  }
}

TEST_F(SchedulerFixture, MixCountExceedingClassBlockThrows) {
  // Homogeneous fleet: every module is a CPU, so the cpu block is the whole
  // cluster and one-past-it must fail with the per-class message.
  try {
    (void)sched_.allocate_mix(hw::ClassMix::parse("cpu:129"),
                              AllocationPolicy::kContiguous,
                              util::SeedSequence(9));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_STREQ(e.what(),
                 "Scheduler: requested 129 cpu modules, fleet has 128");
  }
}

TEST_F(SchedulerFixture, AllocateFromFullBlockReproducesAllocate) {
  std::vector<hw::ModuleId> pool(128);
  std::iota(pool.begin(), pool.end(), hw::ModuleId{0});
  const auto& profile = workloads::mhd().profile;
  for (AllocationPolicy p : all_allocation_policies()) {
    const auto direct =
        sched_.allocate(24, p, util::SeedSequence(33), &profile);
    const auto pooled =
        sched_.allocate_from(pool, 24, p, util::SeedSequence(33), &profile);
    EXPECT_EQ(direct, pooled) << allocation_policy_name(p);
  }
}

TEST_F(SchedulerFixture, AllocateFromRespectsAFragmentedPool) {
  // Only even ids are free: every policy must pick within them.
  std::vector<hw::ModuleId> pool;
  for (hw::ModuleId id = 0; id < 128; id += 2) pool.push_back(id);
  const auto& profile = workloads::mhd().profile;
  for (AllocationPolicy p : all_allocation_policies()) {
    const auto ids =
        sched_.allocate_from(pool, 16, p, util::SeedSequence(34), &profile);
    ASSERT_EQ(ids.size(), 16u) << allocation_policy_name(p);
    for (const hw::ModuleId id : ids) {
      EXPECT_EQ(id % 2, 0u) << allocation_policy_name(p);
    }
  }
  EXPECT_EQ(thrown_message([&] {
              (void)sched_.allocate_from(pool, 65,
                                         AllocationPolicy::kContiguous,
                                         util::SeedSequence(34));
            }),
            "Scheduler: requested 65 modules, block has 64");
}

TEST(SchedulerNames, UnknownPolicySuggestsNearest) {
  try {
    (void)allocation_policy_by_name("contiguos");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_STREQ(e.what(),
                 "unknown allocation policy 'contiguos' (did you mean "
                 "'contiguous'?); valid: contiguous random strided "
                 "worst-power best-power");
  }
  // A name nothing like any policy gets the list without a suggestion.
  try {
    (void)allocation_policy_by_name("zzzzzzzzzzzz");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_EQ(std::string(e.what()).find("did you mean"), std::string::npos);
  }
}

}  // namespace
}  // namespace vapb::cluster
