#include "cluster/scheduler.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::cluster {
namespace {

class SchedulerFixture : public ::testing::Test {
 protected:
  Cluster cluster_{hw::ha8k(), util::SeedSequence(11), 128};
  Scheduler sched_{cluster_};
};

TEST_F(SchedulerFixture, ContiguousIsABlock) {
  auto ids = sched_.allocate(32, AllocationPolicy::kContiguous,
                             util::SeedSequence(1));
  ASSERT_EQ(ids.size(), 32u);
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], ids[i - 1] + 1);
  }
}

TEST_F(SchedulerFixture, RandomIsUniqueAndSorted) {
  auto ids =
      sched_.allocate(64, AllocationPolicy::kRandom, util::SeedSequence(2));
  ASSERT_EQ(ids.size(), 64u);
  std::set<hw::ModuleId> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 64u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  for (auto id : ids) EXPECT_LT(id, 128u);
}

TEST_F(SchedulerFixture, RandomIsSeedDeterministic) {
  auto a = sched_.allocate(16, AllocationPolicy::kRandom, util::SeedSequence(3));
  auto b = sched_.allocate(16, AllocationPolicy::kRandom, util::SeedSequence(3));
  EXPECT_EQ(a, b);
  auto c = sched_.allocate(16, AllocationPolicy::kRandom, util::SeedSequence(4));
  EXPECT_NE(a, c);
}

TEST_F(SchedulerFixture, StridedSpreadsAcrossFleet) {
  auto ids =
      sched_.allocate(8, AllocationPolicy::kStrided, util::SeedSequence(5));
  ASSERT_EQ(ids.size(), 8u);
  // Stride = 128 / 8 = 16.
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i] - ids[i - 1], 16u);
  }
}

TEST_F(SchedulerFixture, WorstPowerPicksHungriestModules) {
  const auto& profile = workloads::dgemm().profile;
  auto worst = sched_.allocate(16, AllocationPolicy::kWorstPower,
                               util::SeedSequence(6), &profile);
  auto best = sched_.allocate(16, AllocationPolicy::kBestPower,
                              util::SeedSequence(6), &profile);
  auto power_of = [&](const std::vector<hw::ModuleId>& ids) {
    double total = 0;
    for (auto id : ids) {
      const auto& m = cluster_.module(id);
      total += m.module_power_w(profile, m.ladder().fmax());
    }
    return total;
  };
  EXPECT_GT(power_of(worst), power_of(best) * 1.05);
  // Disjoint when 2 * count <= fleet.
  std::set<hw::ModuleId> w(worst.begin(), worst.end());
  for (auto id : best) EXPECT_EQ(w.count(id), 0u);
}

TEST_F(SchedulerFixture, PowerPolicyRequiresProfile) {
  EXPECT_THROW(sched_.allocate(4, AllocationPolicy::kWorstPower,
                               util::SeedSequence(7)),
               InvalidArgument);
}

TEST_F(SchedulerFixture, FullFleetAllocation) {
  auto ids =
      sched_.allocate(128, AllocationPolicy::kRandom, util::SeedSequence(8));
  EXPECT_EQ(ids.size(), 128u);
}

TEST_F(SchedulerFixture, Validation) {
  EXPECT_THROW(
      sched_.allocate(0, AllocationPolicy::kRandom, util::SeedSequence(9)),
      InvalidArgument);
  EXPECT_THROW(
      sched_.allocate(129, AllocationPolicy::kRandom, util::SeedSequence(9)),
      InvalidArgument);
}

class AllPolicies : public ::testing::TestWithParam<AllocationPolicy> {};

TEST_P(AllPolicies, AllocationsAreValidModuleIds) {
  Cluster cluster(hw::ha8k(), util::SeedSequence(20), 96);
  Scheduler sched(cluster);
  const auto& profile = workloads::mhd().profile;
  auto ids = sched.allocate(24, GetParam(), util::SeedSequence(21), &profile);
  ASSERT_EQ(ids.size(), 24u);
  std::set<hw::ModuleId> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 24u);
  for (auto id : ids) EXPECT_LT(id, 96u);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, AllPolicies,
    ::testing::Values(AllocationPolicy::kContiguous, AllocationPolicy::kRandom,
                      AllocationPolicy::kStrided,
                      AllocationPolicy::kWorstPower,
                      AllocationPolicy::kBestPower));

}  // namespace
}  // namespace vapb::cluster
