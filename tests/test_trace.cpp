#include "hw/trace.hpp"

#include <gtest/gtest.h>

#include "stats/summary.hpp"
#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::hw {
namespace {

Module make_module() {
  return Module(0, ModuleVariation{}, FrequencyLadder(1.2, 2.7, 0.1, 3.0),
                130.0, util::SeedSequence(1));
}

const PowerProfile& profile() { return workloads::dgemm().profile; }

TEST(Trace, SampleCountMatchesWindows) {
  Module m = make_module();
  Rapl rapl(m);
  PowerTrace t =
      PowerTrace::record(rapl, m, profile(), 0.1, util::SeedSequence(2));
  EXPECT_EQ(t.samples().size(), 100u);  // 0.1 s at 1 ms windows
  EXPECT_DOUBLE_EQ(t.samples().front().t_s, 0.0);
  EXPECT_NEAR(t.samples().back().t_s, 0.099, 1e-9);
}

TEST(Trace, UncappedTraceIsSteady) {
  Module m = make_module();
  Rapl rapl(m);
  PowerTrace t =
      PowerTrace::record(rapl, m, profile(), 0.05, util::SeedSequence(3));
  for (const auto& s : t.samples()) {
    EXPECT_DOUBLE_EQ(s.freq_ghz, 2.7);
  }
  EXPECT_DOUBLE_EQ(t.avg_freq_ghz(), 2.7);
}

TEST(Trace, CappedTraceDithersAroundSustainedPoint) {
  Module m = make_module();
  Rapl rapl(m);
  rapl.set_cpu_limit(util::Watts{70.0});
  OperatingPoint op = rapl.operating_point(profile());
  PowerTrace t =
      PowerTrace::record(rapl, m, profile(), 0.5, util::SeedSequence(4));
  // Instantaneous clock varies...
  stats::Accumulator freq;
  for (const auto& s : t.samples()) freq.add(s.freq_ghz);
  EXPECT_GT(freq.stddev(), 0.01);
  // ...around the sustained point...
  EXPECT_NEAR(t.avg_freq_ghz(), op.freq_ghz, 0.01);
  // ...while the windowed average power stays pinned at the cap.
  EXPECT_NEAR(t.avg_cpu_w(), 70.0, 1e-9);
}

TEST(Trace, AdvancesEnergyCounters) {
  Module m = make_module();
  Rapl rapl(m);
  rapl.set_cpu_limit(util::Watts{60.0});
  PowerTrace t =
      PowerTrace::record(rapl, m, profile(), 1.0, util::SeedSequence(5));
  EXPECT_NEAR(rapl.pkg_energy_j(), 60.0, 0.1);  // 60 W for 1 s
  EXPECT_NEAR(rapl.dram_energy_j(), t.avg_dram_w(), 0.1);
}

TEST(Trace, Deterministic) {
  Module m = make_module();
  Rapl r1(m), r2(m);
  r1.set_cpu_limit(util::Watts{70.0});
  r2.set_cpu_limit(util::Watts{70.0});
  PowerTrace a =
      PowerTrace::record(r1, m, profile(), 0.05, util::SeedSequence(6));
  PowerTrace b =
      PowerTrace::record(r2, m, profile(), 0.05, util::SeedSequence(6));
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    ASSERT_DOUBLE_EQ(a.samples()[i].freq_ghz, b.samples()[i].freq_ghz);
  }
}

TEST(Trace, Validation) {
  Module m = make_module();
  Rapl rapl(m);
  EXPECT_THROW(
      PowerTrace::record(rapl, m, profile(), 0.0, util::SeedSequence(7)),
      InvalidArgument);
}

}  // namespace
}  // namespace vapb::hw
