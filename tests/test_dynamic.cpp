#include "core/dynamic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::core {
namespace {

class DynamicFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kModules = 48;

  DynamicFixture() {
    std::vector<hw::ModuleId> alloc(kModules);
    std::iota(alloc.begin(), alloc.end(), hw::ModuleId{0});
    RunConfig cfg;
    cfg.iterations = 0;  // phases set their own counts
    campaign_ = std::make_unique<Campaign>(cluster_, alloc, cfg);
  }

  PhasedApplication two_phase() {
    // A compute-heavy solve followed by a bandwidth-heavy exchange — the
    // classic phase structure the paper's future work targets.
    PhasedApplication app;
    app.name = "solver";
    app.phases = {{&workloads::dgemm(), 6}, {&workloads::stream(), 6}};
    return app;
  }

  cluster::Cluster cluster_{hw::ha8k(), util::SeedSequence(121), kModules};
  std::unique_ptr<Campaign> campaign_;
};

TEST_F(DynamicFixture, BlendedProfileIsIterationWeighted) {
  PhasedApplication app = two_phase();
  workloads::Workload blend = app.blended();
  const auto& d = workloads::dgemm().profile;
  const auto& s = workloads::stream().profile;
  EXPECT_NEAR(blend.profile.cpu_dyn_w_per_ghz,
              0.5 * (d.cpu_dyn_w_per_ghz + s.cpu_dyn_w_per_ghz), 1e-9);
  EXPECT_NEAR(blend.profile.dram_static_w,
              0.5 * (d.dram_static_w + s.dram_static_w), 1e-9);
  // Unequal weights shift the blend.
  app.phases[0].iterations = 18;  // 18:6 = 3:1
  workloads::Workload skewed = app.blended();
  EXPECT_GT(skewed.profile.cpu_dyn_w_per_ghz,
            blend.profile.cpu_dyn_w_per_ghz);
}

TEST_F(DynamicFixture, DynamicRunsEveryPhase) {
  DynamicRunResult r = run_phased_dynamic(*campaign_, two_phase(),
                                          SchemeKind::kVaFs, kModules * 80.0);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_EQ(r.phases[0].workload, "*DGEMM");
  EXPECT_EQ(r.phases[1].workload, "*STREAM");
  EXPECT_NEAR(r.makespan_s, r.phases[0].makespan_s + r.phases[1].makespan_s,
              1e-9);
  EXPECT_GT(r.energy_j, 0.0);
  EXPECT_GT(r.peak_power_w, 0.0);
}

TEST_F(DynamicFixture, DynamicPicksDifferentAlphaPerPhase) {
  DynamicRunResult r = run_phased_dynamic(*campaign_, two_phase(),
                                          SchemeKind::kVaFs, kModules * 80.0);
  // The two phases have different power/frequency ranges, so the re-solve
  // lands on visibly different operating points.
  EXPECT_GT(std::abs(r.phases[0].alpha - r.phases[1].alpha), 0.02);
  EXPECT_GT(std::abs(r.phases[0].target_freq_ghz -
                     r.phases[1].target_freq_ghz), 0.02);
}

TEST_F(DynamicFixture, StaticUsesOneAlphaForAllPhases) {
  DynamicRunResult r = run_phased_static(*campaign_, two_phase(),
                                         SchemeKind::kVaFs, kModules * 80.0);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_DOUBLE_EQ(r.phases[0].alpha, r.phases[1].alpha);
  EXPECT_DOUBLE_EQ(r.phases[0].target_freq_ghz, r.phases[1].target_freq_ghz);
}

TEST_F(DynamicFixture, BlendedStaticViolatesBudgetInSomePhase) {
  // The blended solve mispredicts both phases; during the phase whose power
  // the blend underestimates it exceeds the budget. This is why the blended
  // static is not deployable and the worst-case static is the real baseline.
  // Skewed weights make the blend strongly misrepresent the short phase.
  // Under power capping the CPU honours the blended cap but DRAM is an
  // uncapped consequence: the bandwidth phase's DRAM power blows through the
  // blend's estimate.
  PhasedApplication app;
  app.name = "skewed";
  app.phases = {{&workloads::dgemm(), 9}, {&workloads::stream(), 3}};
  const double budget = kModules * 80.0;
  DynamicRunResult stat =
      run_phased_static(*campaign_, app, SchemeKind::kVaPc, budget);
  EXPECT_GT(stat.peak_power_w, budget * 1.03);
  // The dynamic re-solve stays within budget in every phase.
  DynamicRunResult dyn =
      run_phased_dynamic(*campaign_, app, SchemeKind::kVaPc, budget);
  EXPECT_LE(dyn.peak_power_w, budget * 1.02);
}

TEST_F(DynamicFixture, DynamicBeatsWorstCaseStatic) {
  const double budget = kModules * 80.0;
  DynamicRunResult dyn = run_phased_dynamic(*campaign_, two_phase(),
                                            SchemeKind::kVaFs, budget);
  DynamicRunResult worst = run_phased_static_worstcase(
      *campaign_, two_phase(), SchemeKind::kVaFs, budget);
  // Both adhere to the budget in every phase; dynamic recovers the time the
  // conservative static leaves on the table.
  EXPECT_LE(dyn.peak_power_w, budget * 1.02);
  EXPECT_LE(worst.peak_power_w, budget * 1.02);
  EXPECT_LT(dyn.makespan_s, worst.makespan_s);
}

TEST_F(DynamicFixture, DynamicPowerCappingRespectsBudgetEveryPhase) {
  const double budget = kModules * 75.0;
  DynamicRunResult dyn = run_phased_dynamic(*campaign_, two_phase(),
                                            SchemeKind::kVaPc, budget);
  EXPECT_LE(dyn.peak_power_w, budget * 1.02);
  DynamicRunResult worst = run_phased_static_worstcase(
      *campaign_, two_phase(), SchemeKind::kVaPc, budget);
  EXPECT_LE(worst.peak_power_w, budget * 1.02);
}

TEST_F(DynamicFixture, SinglePhaseDynamicEqualsStaticRegime) {
  PhasedApplication app;
  app.name = "mono";
  app.phases = {{&workloads::mhd(), 8}};
  const double budget = kModules * 70.0;
  DynamicRunResult dyn =
      run_phased_dynamic(*campaign_, app, SchemeKind::kVaFs, budget);
  ASSERT_EQ(dyn.phases.size(), 1u);
  // One phase: the dynamic alpha equals the plain VaFs alpha for MHD.
  core::RunMetrics plain = campaign_->runner().run_scheme(
      workloads::mhd(), SchemeKind::kVaFs, budget, campaign_->pvt(),
      campaign_->test_run(workloads::mhd()));
  EXPECT_NEAR(dyn.phases[0].alpha, plain.alpha, 1e-12);
}

TEST_F(DynamicFixture, HplLikePresetStructure) {
  PhasedApplication hpl = hpl_like_application(3, 5, 2);
  ASSERT_EQ(hpl.phases.size(), 6u);
  EXPECT_EQ(hpl.phases[0].workload->name, "*DGEMM");
  EXPECT_EQ(hpl.phases[1].workload->name, "*STREAM");
  EXPECT_EQ(hpl.phases[0].iterations, 5);
  EXPECT_EQ(hpl.phases[1].iterations, 2);
  // The blend leans toward the dominant compute phases.
  workloads::Workload blend = hpl.blended();
  EXPECT_GT(blend.profile.cpu_dyn_w_per_ghz,
            0.5 * (workloads::dgemm().profile.cpu_dyn_w_per_ghz +
                   workloads::stream().profile.cpu_dyn_w_per_ghz));
  EXPECT_THROW(hpl_like_application(0), InvalidArgument);
}

TEST_F(DynamicFixture, HplLikeDynamicBeatsWorstCaseStatic) {
  PhasedApplication hpl = hpl_like_application(2, 4, 2);
  const double budget = kModules * 80.0;
  DynamicRunResult dyn =
      run_phased_dynamic(*campaign_, hpl, SchemeKind::kVaFs, budget);
  DynamicRunResult worst =
      run_phased_static_worstcase(*campaign_, hpl, SchemeKind::kVaFs, budget);
  EXPECT_LT(dyn.makespan_s, worst.makespan_s);
  EXPECT_LE(dyn.peak_power_w, budget * 1.02);
}

TEST_F(DynamicFixture, Validation) {
  PhasedApplication empty;
  empty.name = "empty";
  EXPECT_THROW(
      run_phased_dynamic(*campaign_, empty, SchemeKind::kVaFs, 1000.0),
      InvalidArgument);
  PhasedApplication bad;
  bad.name = "bad";
  bad.phases = {{nullptr, 5}};
  EXPECT_THROW(bad.blended(), InvalidArgument);
  PhasedApplication zero_iters;
  zero_iters.name = "zero";
  zero_iters.phases = {{&workloads::mhd(), 0}};
  EXPECT_THROW(
      run_phased_static(*campaign_, zero_iters, SchemeKind::kVaFs, 1000.0),
      InvalidArgument);
}

}  // namespace
}  // namespace vapb::core
