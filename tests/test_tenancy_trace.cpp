#include "tenancy/trace.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace vapb::tenancy {
namespace {

void expect_equal(const TenancyTrace& a, const TenancyTrace& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.budget_cm_w, b.budget_cm_w);
  EXPECT_EQ(a.placement, b.placement);
  EXPECT_EQ(a.partition, b.partition);
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.arrival_scale, b.arrival_scale);
  EXPECT_EQ(a.fail_module, b.fail_module);
  EXPECT_EQ(a.fail_time_s, b.fail_time_s);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t k = 0; k < a.jobs.size(); ++k) {
    EXPECT_EQ(a.jobs[k].name, b.jobs[k].name);
    EXPECT_EQ(a.jobs[k].workload, b.jobs[k].workload);
    EXPECT_EQ(a.jobs[k].modules, b.jobs[k].modules);
    EXPECT_EQ(a.jobs[k].mix, b.jobs[k].mix);
    EXPECT_EQ(a.jobs[k].arrival_s, b.jobs[k].arrival_s);
    EXPECT_EQ(a.jobs[k].iterations, b.jobs[k].iterations);
  }
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TenancyTrace sample_trace() {
  TenancyTrace t;
  t.seed = 7;
  t.budget_cm_w = 65.0;
  t.placement = "variation-aware";
  t.partition = "water-fill";
  t.arrival_scale = 0.5;
  t.fail_module = 3;
  t.fail_time_s = 12.5;
  t.jobs.push_back({"a", "MHD", 16, "", 0.0, 0});
  t.jobs.push_back({"b", "*DGEMM", 0, "cpu:8", 10.0, 6});
  return t;
}

TEST(TenancyTrace, PolicyNamesRoundTrip) {
  for (const PlacementPolicy p : all_placement_policies()) {
    EXPECT_EQ(placement_policy_by_name(placement_policy_name(p)), p);
  }
  for (const PartitionPolicy p : all_partition_policies()) {
    EXPECT_EQ(partition_policy_by_name(partition_policy_name(p)), p);
  }
}

TEST(TenancyTrace, UnknownPolicySuggestsNearest) {
  try {
    (void)placement_policy_by_name("variatoin-aware");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'variation-aware'"),
              std::string::npos)
        << e.what();
  }
  try {
    (void)partition_policy_by_name("water-filling");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'water-fill'"),
              std::string::npos)
        << e.what();
  }
}

TEST(TenancyTrace, SerializeParseRoundTripIsExact) {
  const TenancyTrace t = sample_trace();
  const TenancyTrace back = TenancyTrace::parse(t.serialize());
  expect_equal(t, back);
  // And the canonical form is a fixed point.
  EXPECT_EQ(back.serialize(), t.serialize());
}

TEST(TenancyTrace, SerializeEscapesQuotesAndBackslashes) {
  TenancyTrace t = sample_trace();
  t.jobs[0].name = R"(quo"te)";
  t.jobs[0].workload = R"(back\slash)";
  const std::string json = t.serialize();
  EXPECT_NE(json.find(R"("quo\"te")"), std::string::npos) << json;
  EXPECT_NE(json.find(R"("back\\slash")"), std::string::npos) << json;
  expect_equal(t, TenancyTrace::parse(json));
}

TEST(TenancyTrace, FingerprintIsStableAndSensitive) {
  const TenancyTrace t = sample_trace();
  EXPECT_NE(t.fingerprint(), 0u);
  EXPECT_EQ(t.fingerprint(), sample_trace().fingerprint());
  TenancyTrace u = sample_trace();
  u.jobs[1].iterations = 7;
  EXPECT_NE(t.fingerprint(), u.fingerprint());
  TenancyTrace v = sample_trace();
  v.partition = "equal-share";
  EXPECT_NE(t.fingerprint(), v.fingerprint());
}

TEST(TenancyTrace, ParseStripsCommentsAndAutoNamesJobs) {
  const TenancyTrace t = TenancyTrace::parse(R"({
    // line comment
    "seed": 9, /* block comment */
    "jobs": [
      {"workload": "MHD", "modules": 4, "arrival_s": 0.0},
      {"workload": "*STREAM", "mix": "cpu:2", "arrival_s": 5.0}
    ]
  })");
  EXPECT_EQ(t.seed, 9u);
  ASSERT_EQ(t.jobs.size(), 2u);
  EXPECT_EQ(t.jobs[0].name, "j0");
  EXPECT_EQ(t.jobs[1].name, "j1");
  EXPECT_EQ(t.jobs[1].mix, "cpu:2");
}

TEST(TenancyTrace, ParseRejectsUnknownFieldWithSuggestion) {
  try {
    (void)TenancyTrace::parse(
        R"({"arrival_scal": 2.0, "jobs": [{"workload": "MHD", "modules": 1}]})");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'arrival_scale'"),
              std::string::npos)
        << e.what();
  }
}

TEST(TenancyTrace, ParseRejectsDuplicateAndMistypedFields) {
  EXPECT_THROW((void)TenancyTrace::parse(R"({"seed": 1, "seed": 2})"),
               InvalidArgument);
  EXPECT_THROW(
      (void)TenancyTrace::parse(
          R"({"jobs": [{"workload": "MHD", "modules": 1, "modules": 2}]})"),
      InvalidArgument);
  // String fields must be quoted, numbers must not be.
  EXPECT_THROW((void)TenancyTrace::parse(R"({"seed": "1"})"), InvalidArgument);
  EXPECT_THROW((void)TenancyTrace::parse(R"({"scheme": 5})"), InvalidArgument);
  EXPECT_THROW((void)TenancyTrace::parse(R"({"seed": 1} trailing)"),
               InvalidArgument);
}

TEST(TenancyTrace, ParseKvShorthand) {
  const TenancyTrace t = TenancyTrace::parse_kv(
      "seed=11,partition=water-fill,budget_cm_w=70,"
      "jobs=MHD:64@0|*DGEMM:cpu48+gpu16@5x8");
  EXPECT_EQ(t.seed, 11u);
  EXPECT_EQ(t.partition, "water-fill");
  EXPECT_EQ(t.budget_cm_w, 70.0);
  ASSERT_EQ(t.jobs.size(), 2u);
  EXPECT_EQ(t.jobs[0].name, "j0");
  EXPECT_EQ(t.jobs[0].workload, "MHD");
  EXPECT_EQ(t.jobs[0].modules, 64u);
  EXPECT_EQ(t.jobs[1].workload, "*DGEMM");
  EXPECT_EQ(t.jobs[1].mix, "cpu:48,gpu:16");
  EXPECT_EQ(t.jobs[1].arrival_s, 5.0);
  EXPECT_EQ(t.jobs[1].iterations, 8);
}

TEST(TenancyTrace, ParseKvRejectsBadIterationsSuffix) {
  try {
    (void)TenancyTrace::parse_kv("jobs=MHD:16@0xzz");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("bad iterations 'zz'"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)TenancyTrace::parse_kv("jobs=MHD:16@0x"),
               InvalidArgument);
  EXPECT_THROW((void)TenancyTrace::parse_kv("jobs=MHD:16@0x5junk"),
               InvalidArgument);
}

TEST(TenancyTrace, ValidateRejectsBadValues) {
  TenancyTrace t = sample_trace();
  t.budget_cm_w = 0.0;
  EXPECT_THROW(t.validate(), InvalidArgument);
  t = sample_trace();
  t.arrival_scale = -1.0;
  EXPECT_THROW(t.validate(), InvalidArgument);
  t = sample_trace();
  t.jobs.clear();
  EXPECT_THROW(t.validate(), InvalidArgument);
  t = sample_trace();
  t.jobs[0].modules = 0;  // neither count nor mix
  EXPECT_THROW(t.validate(), InvalidArgument);
  t = sample_trace();
  t.jobs[0].mix = "cpu:4";  // both count and mix
  EXPECT_THROW(t.validate(), InvalidArgument);
  t = sample_trace();
  t.jobs[1].name = "a";  // duplicate
  EXPECT_THROW(t.validate(), InvalidArgument);
  t = sample_trace();
  t.placement = "bogus";
  EXPECT_THROW(t.validate(), InvalidArgument);
}

TEST(TenancyTrace, ExampleFileParsesAndRoundTrips) {
  std::ifstream f(VAPB_EXAMPLES_DIR "/tenancy_trace.json");
  ASSERT_TRUE(f.is_open());
  std::stringstream ss;
  ss << f.rdbuf();
  const TenancyTrace t = TenancyTrace::parse(ss.str());
  EXPECT_EQ(t.placement, "variation-aware");
  EXPECT_EQ(t.partition, "water-fill");
  ASSERT_EQ(t.jobs.size(), 3u);
  EXPECT_EQ(t.jobs[2].name, "j2");
  // serialize() is canonical: parsing it back reproduces the value exactly.
  expect_equal(t, TenancyTrace::parse(t.serialize()));
}

}  // namespace
}  // namespace vapb::tenancy
