#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace vapb::util {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t({"name", "watts"});
  t.add_row({"cab", "115"});
  t.add_row({"ha8k", "130"});
  std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("ha8k"), std::string::npos);
  EXPECT_NE(s.find("130"), std::string::npos);
}

TEST(Table, ColumnsAlign) {
  Table t({"a", "b"});
  t.add_row({"xxxxxxxx", "1"});
  t.add_row({"y", "2"});
  std::istringstream is(t.str());
  std::string line;
  std::vector<std::size_t> lengths;
  while (std::getline(is, line)) lengths.push_back(line.size());
  for (std::size_t i = 1; i < lengths.size(); ++i) {
    EXPECT_EQ(lengths[i], lengths[0]);
  }
}

TEST(Table, IncrementalCells) {
  Table t({"x", "y", "z"});
  t.add_row();
  t.add_cell("a");
  t.add_cell(1.5, 1);
  t.add_cell(static_cast<long long>(7));
  EXPECT_NE(t.str().find("1.5"), std::string::npos);
}

TEST(Table, TooManyCellsThrows) {
  Table t({"only"});
  t.add_row();
  t.add_cell("one");
  EXPECT_THROW(t.add_cell("two"), InvalidArgument);
}

TEST(Table, WrongRowWidthThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"just-one"}), InvalidArgument);
}

TEST(Table, IncompleteRowFailsAtRender) {
  Table t({"a", "b"});
  t.add_row();
  t.add_cell("only-one");
  EXPECT_THROW(t.str(), InvalidArgument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table(std::vector<std::string>{}), InternalError);
}

TEST(Table, SeparatorProducesRule) {
  Table t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  // 3 rules normally (top, under header, bottom) + 1 separator.
  std::string s = t.str();
  std::size_t rules = 0, pos = 0;
  while ((pos = s.find("+-", pos)) != std::string::npos) {
    ++rules;
    pos = s.find('\n', pos);
  }
  EXPECT_EQ(rules, 4u);
}

class CsvFixture : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/vapb_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
  std::string slurp() {
    std::ifstream f(path_);
    std::stringstream ss;
    ss << f.rdbuf();
    return ss.str();
  }
};

TEST_F(CsvFixture, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    w.row({"1", "2"});
    w.row_numeric({3.5, 4.25});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  std::string text = slurp();
  EXPECT_EQ(text, "a,b\n1,2\n3.5,4.25\n");
}

TEST_F(CsvFixture, EscapesSpecialCharacters) {
  {
    CsvWriter w(path_, {"c"});
    w.row({"has,comma"});
    w.row({"has\"quote"});
    w.row({"has\nnewline"});
  }
  std::string text = slurp();
  EXPECT_NE(text.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(text.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_NE(text.find("\"has\nnewline\""), std::string::npos);
}

TEST_F(CsvFixture, WrongArityThrows) {
  CsvWriter w(path_, {"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), InvalidArgument);
}

TEST(Csv, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}), Error);
}

}  // namespace
}  // namespace vapb::util
