// Device-class generalization: ClassMix parsing, heterogeneous fabrication
// identities, per-class budgeting bit-identity (flat vs tree, 1 vs N
// threads) and CellClass boundaries at the exact per-class fmin/fmax
// budgets.
#include "hw/device_class.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "cluster/power_tree.hpp"
#include "core/budget.hpp"
#include "core/campaign.hpp"
#include "core/pmt.hpp"
#include "core/pvt.hpp"
#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb {
namespace {

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

// ---------------------------------------------------------------------------
// ClassMix
// ---------------------------------------------------------------------------

TEST(ClassMix, ParseRoundTripsTheCanonicalString) {
  const hw::ClassMix mix = hw::ClassMix::parse("cpu:1536,gpu:320,dram:64");
  EXPECT_EQ(mix.total(), 1920u);
  EXPECT_EQ(mix.count(hw::DeviceClass::kCpu), 1536u);
  EXPECT_EQ(mix.count(hw::DeviceClass::kGpu), 320u);
  EXPECT_EQ(mix.count(hw::DeviceClass::kDram), 64u);
  EXPECT_FALSE(mix.homogeneous_cpu());
  EXPECT_EQ(mix.str(), "cpu:1536,gpu:320,dram:64");
  EXPECT_EQ(hw::ClassMix::parse(mix.str()).counts, mix.counts);
}

TEST(ClassMix, ZeroCountClassesDropOutOfTheCanonicalString) {
  const hw::ClassMix mix = hw::ClassMix::parse("gpu:4,cpu:12");
  EXPECT_EQ(mix.str(), "cpu:12,gpu:4");  // index order, dram omitted
}

TEST(ClassMix, CpuOnlyIsHomogeneous) {
  EXPECT_TRUE(hw::ClassMix::cpu_only(64).homogeneous_cpu());
  EXPECT_TRUE(hw::ClassMix::parse("cpu:64").homogeneous_cpu());
  EXPECT_TRUE(hw::ClassMix{}.homogeneous_cpu());
  EXPECT_FALSE(hw::ClassMix::parse("cpu:64,dram:1").homogeneous_cpu());
}

TEST(ClassMix, UnknownClassSuggestsTheNearestName) {
  try {
    hw::ClassMix::parse("cpu:8,gpux:2");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gpux"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean 'gpu'"), std::string::npos) << what;
    EXPECT_NE(what.find("cpu, gpu, dram"), std::string::npos) << what;
  }
}

TEST(ClassMix, MalformedSpecsThrow) {
  EXPECT_THROW(hw::ClassMix::parse("cpu"), InvalidArgument);
  EXPECT_THROW(hw::ClassMix::parse("cpu:abc"), InvalidArgument);
  EXPECT_THROW(hw::ClassMix::parse("cpu:4,cpu:4"), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Heterogeneous fabrication
// ---------------------------------------------------------------------------

TEST(HeteroCluster, CpuOnlyMixIsBitIdenticalToTheHomogeneousCtor) {
  const cluster::Cluster homo(hw::ha8k(), util::SeedSequence(77), 24);
  const cluster::Cluster mixed(hw::ha8k(), util::SeedSequence(77),
                               hw::ClassMix::cpu_only(24));
  EXPECT_FALSE(mixed.heterogeneous());
  EXPECT_EQ(homo.fingerprint(), mixed.fingerprint());
}

TEST(HeteroCluster, ModulesAreClassContiguousInClassIndexOrder) {
  const hw::ClassMix mix = hw::ClassMix::parse("cpu:12,gpu:6,dram:2");
  const cluster::Cluster fleet(hw::ha8k(), util::SeedSequence(77), mix);
  EXPECT_TRUE(fleet.heterogeneous());
  ASSERT_EQ(fleet.size(), 20u);
  for (hw::ModuleId id = 0; id < 12; ++id) {
    EXPECT_EQ(fleet.device_class(id), hw::DeviceClass::kCpu);
  }
  for (hw::ModuleId id = 12; id < 18; ++id) {
    EXPECT_EQ(fleet.device_class(id), hw::DeviceClass::kGpu);
  }
  for (hw::ModuleId id = 18; id < 20; ++id) {
    EXPECT_EQ(fleet.device_class(id), hw::DeviceClass::kDram);
  }
}

TEST(HeteroCluster, CpuPrefixDrawsExactlyAsTheHomogeneousFleet) {
  // Non-CPU classes are appended after the CPU prefix from forked seed
  // streams, so adding them must not shift a single CPU module's draw.
  const cluster::Cluster homo(hw::ha8k(), util::SeedSequence(77), 12);
  const cluster::Cluster mixed(hw::ha8k(), util::SeedSequence(77),
                               hw::ClassMix::parse("cpu:12,gpu:6,dram:2"));
  const hw::PowerProfile& profile = workloads::pvt_microbench().profile;
  for (hw::ModuleId id = 0; id < 12; ++id) {
    const hw::Module& a = homo.module(id);
    const hw::Module& b = mixed.module(id);
    EXPECT_TRUE(same_bits(a.module_power_w(profile, a.ladder().fmax()),
                          b.module_power_w(profile, b.ladder().fmax())))
        << "module " << id;
  }
}

TEST(HeteroCluster, DefaultEntropyLeavesEveryClassFactorAtExactlyOne) {
  const cluster::Cluster fleet(hw::ha8k(), util::SeedSequence(77),
                               hw::ClassMix::parse("cpu:2,gpu:2,dram:2"));
  for (hw::ModuleId id = 0; id < fleet.size(); ++id) {
    EXPECT_TRUE(same_bits(fleet.module(id).entropy_factor(0.5), 1.0));
  }
  // Off-center entropy moves the non-CPU classes (nonzero slope); the CPU
  // prefix keeps the legacy identity model so the all-CPU path never shifts.
  EXPECT_TRUE(same_bits(fleet.module(0).entropy_factor(0.9), 1.0));
  EXPECT_FALSE(same_bits(fleet.module(2).entropy_factor(0.9), 1.0));  // gpu
  EXPECT_FALSE(same_bits(fleet.module(4).entropy_factor(0.9), 1.0));  // dram
}

// ---------------------------------------------------------------------------
// Per-class budgeting: flat vs tree, 1 vs N threads
// ---------------------------------------------------------------------------

class HeteroBudgetFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kModules = 40;  // cpu:30,gpu:8,dram:2

  HeteroBudgetFixture()
      : fleet_(hw::ha8k(), util::SeedSequence(404),
               hw::ClassMix::parse("cpu:30,gpu:8,dram:2")) {
    alloc_.resize(kModules);
    std::iota(alloc_.begin(), alloc_.end(), hw::ModuleId{0});
  }

  core::Pmt class_aware_pmt(const workloads::Workload& app) const {
    const core::Pvt pvt = core::Pvt::generate(
        fleet_, workloads::pvt_microbench(), fleet_.seed().fork("pvt"));
    core::ClassTestRuns tests{};
    for (hw::DeviceClass c : hw::all_device_classes()) {
      if (fleet_.mix().count(c) == 0) continue;
      hw::ModuleId module = 0;
      for (hw::ModuleId id : alloc_) {
        if (fleet_.device_class(id) == c) {
          module = id;
          break;
        }
      }
      util::SeedSequence seed =
          fleet_.seed().fork("test-run").fork(app.name);
      if (c != hw::DeviceClass::kCpu) {
        seed = seed.fork(hw::device_class_name(c));
      }
      tests[hw::device_class_index(c)] =
          std::make_shared<const core::TestRunResult>(
              core::single_module_test_run(fleet_, module, app, seed));
    }
    return core::calibrate_pmt_per_class(fleet_, pvt, tests, alloc_);
  }

  cluster::Cluster fleet_;
  std::vector<hw::ModuleId> alloc_;
};

TEST_F(HeteroBudgetFixture, FlatAndOneLevelTreeSolvesAreBitIdentical) {
  const core::Pmt pmt = class_aware_pmt(workloads::mhd());
  ASSERT_TRUE(pmt.heterogeneous());
  const cluster::PowerTree flat = cluster::PowerTree::flat(kModules);
  for (double cm : {110.0, 90.0, 70.0, 50.0}) {
    const util::Watts budget{cm * static_cast<double>(kModules)};
    const core::BudgetResult a = core::solve_budget(pmt, budget);
    const core::BudgetResult b = core::solve_budget_tree(pmt, flat, budget);
    EXPECT_EQ(a.fits_at_fmin, b.fits_at_fmin);
    EXPECT_EQ(a.constrained, b.constrained);
    EXPECT_TRUE(same_bits(a.alpha, b.alpha)) << "Cm " << cm;
    ASSERT_EQ(a.allocations.size(), b.allocations.size());
    for (std::size_t k = 0; k < a.allocations.size(); ++k) {
      EXPECT_TRUE(same_bits(a.allocations[k].module_w.value(),
                            b.allocations[k].module_w.value()));
      EXPECT_TRUE(same_bits(a.allocations[k].cpu_cap_w.value(),
                            b.allocations[k].cpu_cap_w.value()));
    }
  }
}

TEST_F(HeteroBudgetFixture, TargetFrequencyFollowsEachEntrysClassRange) {
  const core::Pmt pmt = class_aware_pmt(workloads::mhd());
  const core::BudgetResult r =
      core::solve_budget(pmt, util::Watts{80.0 * kModules});
  ASSERT_TRUE(r.constrained);
  for (std::size_t k = 0; k < pmt.size(); ++k) {
    const core::ClassFreqRange& range =
        pmt.class_range(pmt.device_class(k));
    const util::GigaHertz f = pmt.freq_at(r.alpha, k);
    EXPECT_GE(f.value(), range.fmin_ghz.value());
    EXPECT_LE(f.value(), range.fmax_ghz.value());
  }
  // The reference (CPU) range is what freq_at(alpha) reports.
  EXPECT_TRUE(same_bits(pmt.freq_at(r.alpha).value(),
                        r.target_freq_ghz.value()));
}

TEST(HeteroCampaign, DigestsIdenticalAtOneAndFourThreads) {
  const cluster::Cluster fleet(hw::ha8k(), util::SeedSequence(404),
                               hw::ClassMix::parse("cpu:30,gpu:8,dram:2"));
  std::vector<hw::ModuleId> alloc(fleet.size());
  std::iota(alloc.begin(), alloc.end(), hw::ModuleId{0});

  core::CampaignSpec spec;
  spec.workloads = {&workloads::mhd()};
  spec.budgets_w = {80.0 * static_cast<double>(fleet.size())};
  spec.schemes = {core::SchemeKind::kNaive, core::SchemeKind::kVaPc,
                  core::SchemeKind::kVaFs};
  spec.config.iterations = 6;

  core::CampaignEngine serial(fleet, alloc, /*threads=*/1);
  core::CampaignEngine wide(fleet, alloc, /*threads=*/4);
  const core::CampaignResult a = serial.run(spec);
  const core::CampaignResult b = wide.run(spec);
  ASSERT_EQ(a.jobs.size(), 3u);
  ASSERT_EQ(b.jobs.size(), a.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const core::RunMetrics& ma = a.jobs[i].metrics;
    const core::RunMetrics& mb = b.jobs[i].metrics;
    EXPECT_TRUE(same_bits(ma.makespan_s, mb.makespan_s));
    EXPECT_TRUE(same_bits(ma.total_power_w, mb.total_power_w));
    ASSERT_EQ(ma.modules.size(), mb.modules.size());
    for (std::size_t k = 0; k < ma.modules.size(); ++k) {
      EXPECT_TRUE(
          same_bits(ma.modules[k].op.cpu_w, mb.modules[k].op.cpu_w));
      EXPECT_TRUE(
          same_bits(ma.modules[k].op.freq_ghz, mb.modules[k].op.freq_ghz));
    }
  }
}

// ---------------------------------------------------------------------------
// CellClass boundaries at the exact per-class fmin/fmax budgets
// ---------------------------------------------------------------------------

TEST_F(HeteroBudgetFixture, CellClassFlipsExactlyAtTheClassSummedBounds) {
  const core::Pmt truth = class_aware_pmt(workloads::mhd());
  const double min_w = truth.total_min_w().value();  // fleet at per-class fmin
  const double max_w = truth.total_max_w().value();  // fleet at per-class fmax
  ASSERT_LT(min_w, max_w);

  // classify_cell: budget < total_min -> infeasible; budget >= total_max ->
  // unconstrained; valid in between. The bounds are the exact per-class
  // fmin/fmax sums, so the flips happen at those watt values bit-for-bit.
  EXPECT_EQ(core::classify_cell(truth, min_w), core::CellClass::kValid);
  EXPECT_EQ(core::classify_cell(
                truth, std::nextafter(min_w, 0.0)),
            core::CellClass::kInfeasible);
  EXPECT_EQ(core::classify_cell(truth, max_w),
            core::CellClass::kUnconstrained);
  EXPECT_EQ(core::classify_cell(
                truth, std::nextafter(max_w, 0.0)),
            core::CellClass::kValid);

  // At exactly the fmin budget the solve pins alpha to 0 and fits; one ULP
  // below it reports infeasible-at-fmin.
  const core::BudgetResult at_min =
      core::solve_budget(truth, util::Watts{min_w});
  EXPECT_TRUE(at_min.fits_at_fmin);
  EXPECT_TRUE(at_min.constrained);
  const core::BudgetResult below_min = core::solve_budget(
      truth, util::Watts{std::nextafter(min_w, 0.0)});
  EXPECT_FALSE(below_min.fits_at_fmin);
  // At the fmax budget the constraint stops binding: alpha clamps to 1.
  const core::BudgetResult at_max =
      core::solve_budget(truth, util::Watts{max_w});
  EXPECT_FALSE(at_max.constrained);
  EXPECT_TRUE(same_bits(at_max.alpha, 1.0));
}

}  // namespace
}  // namespace vapb
