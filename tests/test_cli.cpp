#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace vapb::util {
namespace {

CliArgs parse(std::vector<const char*> argv,
              std::vector<std::string> allowed = {"arch", "modules", "flag",
                                                  "budget-w"}) {
  argv.insert(argv.begin(), "prog");
  return CliArgs(static_cast<int>(argv.size()), argv.data(), allowed);
}

TEST(Cli, PositionalArguments) {
  CliArgs args = parse({"solve", "extra"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "solve");
  EXPECT_EQ(args.positional()[1], "extra");
}

TEST(Cli, EqualsForm) {
  CliArgs args = parse({"--arch=ha8k"});
  EXPECT_EQ(args.get("arch"), "ha8k");
}

TEST(Cli, SpaceForm) {
  CliArgs args = parse({"--modules", "128"});
  EXPECT_EQ(args.get_long_or("modules", 0), 128);
}

TEST(Cli, BooleanSwitch) {
  CliArgs args = parse({"--flag", "--arch=x"});
  EXPECT_TRUE(args.has("flag"));
  EXPECT_EQ(args.get("flag"), "");
}

TEST(Cli, MixedPositionalAndFlags) {
  CliArgs args = parse({"run", "--arch", "cab", "--modules=64", "tail"});
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"run", "tail"}));
  EXPECT_EQ(args.get("arch"), "cab");
  EXPECT_EQ(args.get_long_or("modules", 0), 64);
}

TEST(Cli, NumericParsing) {
  CliArgs args = parse({"--budget-w=8960.5"});
  EXPECT_DOUBLE_EQ(args.get_double_or("budget-w", 0.0), 8960.5);
  EXPECT_DOUBLE_EQ(args.get_double_or("modules", 7.0), 7.0);  // fallback
}

TEST(Cli, MalformedNumberThrows) {
  CliArgs args = parse({"--budget-w=abc"});
  EXPECT_THROW(static_cast<void>(args.get_double_or("budget-w", 0.0)),
               InvalidArgument);
  CliArgs args2 = parse({"--modules=12x"});
  EXPECT_THROW(static_cast<void>(args2.get_long_or("modules", 0)),
               InvalidArgument);
}

TEST(Cli, UnknownFlagRejected) {
  EXPECT_THROW(parse({"--bogus=1"}), InvalidArgument);
}

TEST(Cli, UnknownFlagSuggestsNearestName) {
  try {
    parse({"--module=12"});
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean --modules?"),
              std::string::npos)
        << e.what();
  }
}

TEST(Cli, UnknownFlagFarFromVocabularyHasNoSuggestion) {
  try {
    parse({"--zzzzzzzz=1"});
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_EQ(std::string(e.what()).find("did you mean"), std::string::npos)
        << e.what();
  }
}

TEST(Cli, FlagNamesAreSortedAndComplete) {
  CliArgs args = parse({"--modules=4", "--arch", "cab", "--flag"});
  EXPECT_EQ(args.flag_names(),
            (std::vector<std::string>{"arch", "flag", "modules"}));
  EXPECT_TRUE(parse({"cmd"}).flag_names().empty());
}

TEST(Cli, DuplicateFlagRejected) {
  EXPECT_THROW(parse({"--arch=a", "--arch=b"}), InvalidArgument);
}

TEST(Cli, MissingRequiredThrows) {
  CliArgs args = parse({"cmd"});
  EXPECT_THROW(static_cast<void>(args.get("arch")), InvalidArgument);
  EXPECT_EQ(args.get_or("arch", "dflt"), "dflt");
}

TEST(Cli, BareDoubleDashRejected) {
  EXPECT_THROW(parse({"--"}), InvalidArgument);
}

}  // namespace
}  // namespace vapb::util
