// PowerTree shape invariants and the hierarchical budget solve:
//  * construction partitions every level and rejects malformed shapes;
//  * the 1-level degenerate tree reproduces the flat solve bit for bit;
//  * reconciliation never allocates past any interior node's capacity and
//    redistributes a clamped node's surplus to its siblings;
//  * hierarchical campaign runs are bitwise identical across thread counts.
#include "cluster/power_tree.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <limits>
#include <numeric>
#include <vector>

#include "cluster/cluster_soa.hpp"
#include "core/budget.hpp"
#include "core/campaign.hpp"
#include "util/reduce.hpp"
#include "workloads/catalog.hpp"

namespace vapb {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// A mildly varied synthetic PMT: enough spread that clamps and alphas are
/// exercised, fully deterministic without fabricating a fleet.
core::Pmt varied_pmt(std::size_t n) {
  std::vector<core::PmtEntry> entries(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = 1.0 + 0.1 * static_cast<double>(i % 7) / 7.0;
    entries[i] = core::PmtEntry{util::Watts{90.0 * v}, util::Watts{18.0},
                                util::Watts{40.0 * v}, util::Watts{12.0}};
  }
  return core::Pmt(std::move(entries), util::GigaHertz{2.0},
                   util::GigaHertz{1.2});
}

void expect_identical(const core::BudgetResult& a,
                      const core::BudgetResult& b) {
  EXPECT_EQ(a.fits_at_fmin, b.fits_at_fmin);
  EXPECT_EQ(a.constrained, b.constrained);
  EXPECT_TRUE(same_bits(a.alpha, b.alpha));
  EXPECT_TRUE(
      same_bits(a.target_freq_ghz.value(), b.target_freq_ghz.value()));
  EXPECT_TRUE(
      same_bits(a.predicted_total_w.value(), b.predicted_total_w.value()));
  ASSERT_EQ(a.allocations.size(), b.allocations.size());
  for (std::size_t i = 0; i < a.allocations.size(); ++i) {
    EXPECT_TRUE(same_bits(a.allocations[i].module_w.value(),
                          b.allocations[i].module_w.value()))
        << "module_w differs at " << i;
    EXPECT_TRUE(same_bits(a.allocations[i].cpu_cap_w.value(),
                          b.allocations[i].cpu_cap_w.value()))
        << "cpu_cap_w differs at " << i;
    EXPECT_TRUE(same_bits(a.allocations[i].dram_w.value(),
                          b.allocations[i].dram_w.value()))
        << "dram_w differs at " << i;
  }
}

TEST(PowerTree, FlatIsTrivialAndUnconstrained) {
  const cluster::PowerTree t = cluster::PowerTree::flat(17);
  EXPECT_EQ(t.module_count(), 17u);
  EXPECT_EQ(t.level_count(), 1u);
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_TRUE(t.trivial());
  EXPECT_TRUE(t.unconstrained());
  EXPECT_TRUE(t.root().leaf_group());
  EXPECT_FALSE(t.root().capped());
  EXPECT_EQ(t.root().module_count(), 17u);
}

TEST(PowerTree, UniformPartitionsEveryLevelWithinOne) {
  const std::size_t fanouts[] = {4, 3};
  const double caps[] = {kInf, 200.0};
  const cluster::PowerTree t = cluster::PowerTree::uniform(26, fanouts, caps);
  EXPECT_EQ(t.level_count(), 3u);
  EXPECT_FALSE(t.trivial());
  EXPECT_FALSE(t.unconstrained());
  for (std::size_t k = 0; k < t.level_count(); ++k) {
    std::size_t covered = 0;
    std::size_t lo = 26, hi = 0;
    for (const cluster::PowerTreeNode& n : t.level(k)) {
      covered += n.module_count();
      lo = std::min(lo, n.module_count());
      hi = std::max(hi, n.module_count());
      if (k + 1 < t.level_count()) {
        EXPECT_FALSE(n.leaf_group());
        std::size_t child_modules = 0;
        for (std::uint32_t c = 0; c < n.child_count; ++c) {
          child_modules = child_modules +
                          t.nodes()[n.first_child + c].module_count();
        }
        EXPECT_EQ(child_modules, n.module_count());
      } else {
        EXPECT_TRUE(n.leaf_group());
      }
    }
    EXPECT_EQ(covered, 26u);     // each level partitions the fleet
    EXPECT_LE(hi - lo, 1u);      // balanced to within one module
  }
  // Capacity landed on the configured level only.
  for (const cluster::PowerTreeNode& n : t.level(1)) {
    EXPECT_FALSE(n.capped());
  }
  for (const cluster::PowerTreeNode& n : t.level(2)) {
    EXPECT_EQ(n.capacity_w, 200.0);
  }
}

TEST(PowerTree, TinyFleetNeverGetsEmptyChildren) {
  const std::size_t fanouts[] = {8};
  const double caps[] = {kInf};
  const cluster::PowerTree t = cluster::PowerTree::uniform(3, fanouts, caps);
  EXPECT_EQ(t.level(1).size(), 3u);  // one child per module, not 8
  for (const cluster::PowerTreeNode& n : t.level(1)) {
    EXPECT_EQ(n.module_count(), 1u);
  }
}

TEST(PowerTree, ConstructionRejectsMalformedShapes) {
  const std::size_t fanouts[] = {4};
  const double caps[] = {kInf};
  const double two_caps[] = {kInf, kInf};
  const std::size_t zero_fanout[] = {0};
  EXPECT_THROW(static_cast<void>(cluster::PowerTree::flat(0)),
               InvalidArgument);
  EXPECT_THROW(
      static_cast<void>(cluster::PowerTree::uniform(0, fanouts, caps)),
      InvalidArgument);
  EXPECT_THROW(
      static_cast<void>(cluster::PowerTree::uniform(8, zero_fanout, caps)),
      InvalidArgument);
  EXPECT_THROW(
      static_cast<void>(cluster::PowerTree::uniform(8, fanouts, two_caps)),
      InvalidArgument);
}

TEST(PowerTree, UniformTdpProvisionsFromSpannedModules) {
  cluster::Cluster fleet(hw::ha8k(), util::SeedSequence(2015), 24);
  const cluster::ClusterSoA soa = cluster::ClusterSoA::gather(fleet);
  const std::size_t fanouts[] = {4};
  const double headroom[] = {0.8};
  const cluster::PowerTree t =
      cluster::PowerTree::uniform_tdp(soa, fanouts, headroom);
  for (const cluster::PowerTreeNode& n : t.level(1)) {
    double tdp_sum = 0.0;
    for (std::size_t m = n.module_begin; m < n.module_end; ++m) {
      tdp_sum += soa.tdp_cpu_w()[m];
    }
    EXPECT_TRUE(n.capped());
    EXPECT_NEAR(n.capacity_w, 0.8 * tdp_sum, 1e-9);
  }
}

TEST(HierarchicalSolve, OneLevelTreeMatchesFlatSolveBitwise) {
  const core::Pmt pmt = varied_pmt(54);
  const cluster::PowerTree one = cluster::PowerTree::flat(pmt.size());
  // Sweep from infeasible through constrained to unconstrained.
  for (double per_module : {30.0, 55.0, 75.0, 95.0, 140.0}) {
    const util::Watts budget{per_module * static_cast<double>(pmt.size())};
    expect_identical(core::solve_budget(pmt, budget),
                     core::solve_budget_tree(pmt, one, budget));
  }
}

/// An uncapped multi-level tree is mathematically the flat solve, but leaf
/// groups solve alpha from per-group aggregates, so agreement is to rounding
/// — bit-identity is guaranteed only for the 1-level degenerate tree.
TEST(HierarchicalSolve, UncappedTreeOfAnyShapeMatchesFlatSolveToRounding) {
  const core::Pmt pmt = varied_pmt(48);
  const std::size_t fanouts[] = {4, 3};
  const double caps[] = {kInf, kInf};
  const cluster::PowerTree t =
      cluster::PowerTree::uniform(pmt.size(), fanouts, caps);
  ASSERT_TRUE(t.unconstrained());
  for (double per_module : {55.0, 75.0, 95.0}) {
    const util::Watts budget{per_module * static_cast<double>(pmt.size())};
    const core::BudgetResult flat = core::solve_budget(pmt, budget);
    const core::BudgetResult tree = core::solve_budget_tree(pmt, t, budget);
    EXPECT_EQ(flat.fits_at_fmin, tree.fits_at_fmin);
    EXPECT_EQ(flat.constrained, tree.constrained);
    EXPECT_NEAR(tree.alpha, flat.alpha, 1e-12);
    EXPECT_NEAR(tree.predicted_total_w.value(), flat.predicted_total_w.value(),
                1e-9 * budget.value());
    ASSERT_EQ(tree.allocations.size(), flat.allocations.size());
    for (std::size_t i = 0; i < flat.allocations.size(); ++i) {
      EXPECT_NEAR(tree.allocations[i].module_w.value(),
                  flat.allocations[i].module_w.value(),
                  1e-9 * flat.allocations[i].module_w.value());
    }
  }
}

TEST(HierarchicalSolve, ReconciliationRespectsEveryNodeCapacity) {
  const core::Pmt pmt = varied_pmt(60);
  const std::size_t fanouts[] = {5, 3};
  for (double per_module : {40.0, 60.0, 80.0, 110.0}) {
    const util::Watts budget{per_module * static_cast<double>(pmt.size())};
    // Cabinet and board capacities tight against the ~112 W/module fmax
    // demand, so the upper budgets force clamps on both levels.
    const double level_caps[] = {1100.0, 420.0};
    const cluster::PowerTree t =
        cluster::PowerTree::uniform(pmt.size(), fanouts, level_caps);
    const core::BudgetResult r = core::solve_budget_tree(pmt, t, budget);
    ASSERT_EQ(r.allocations.size(), pmt.size());
    for (const cluster::PowerTreeNode& n : t.nodes()) {
      double within = 0.0;
      for (std::size_t m = n.module_begin; m < n.module_end; ++m) {
        within += r.allocations[m].module_w.value();
      }
      EXPECT_LE(within, n.capacity_w * (1.0 + 1e-12))
          << "node [" << n.module_begin << ", " << n.module_end
          << ") exceeds its capacity at budget " << budget.value();
    }
    EXPECT_LE(r.predicted_total_w.value(), budget.value() * (1.0 + 1e-12));
  }
}

TEST(HierarchicalSolve, ClampedNodeSurplusGoesToSiblings) {
  const core::Pmt pmt = varied_pmt(40);
  const std::size_t fanouts[] = {4};
  // One level of 4 cabinets; cap them all at a value only binding because
  // uniform() cannot express per-node caps — the first cabinet's demand at
  // the flat alpha exceeds it, so its surplus must flow to the others.
  const double caps[] = {1050.0};
  const cluster::PowerTree t =
      cluster::PowerTree::uniform(pmt.size(), fanouts, caps);
  const util::Watts budget{90.0 * static_cast<double>(pmt.size())};

  const core::BudgetResult flat = core::solve_budget(pmt, budget);
  const core::BudgetResult tree = core::solve_budget_tree(pmt, t, budget);
  ASSERT_TRUE(flat.constrained);
  EXPECT_TRUE(tree.constrained);

  // The tree spends no more than the flat solve overall...
  EXPECT_LE(tree.predicted_total_w.value(),
            flat.predicted_total_w.value() * (1.0 + 1e-12));
  // ...and anything a clamped cabinet gave up is not simply discarded: the
  // total stays within one cabinet-cap of the flat spend.
  EXPECT_GT(tree.predicted_total_w.value(),
            flat.predicted_total_w.value() - 1050.0);
  for (const cluster::PowerTreeNode& n : t.level(1)) {
    double within = 0.0;
    for (std::size_t m = n.module_begin; m < n.module_end; ++m) {
      within += tree.allocations[m].module_w.value();
    }
    EXPECT_LE(within, n.capacity_w * (1.0 + 1e-12));
  }
}

TEST(HierarchicalSolve, SizeMismatchAndBadBudgetThrow) {
  const core::Pmt pmt = varied_pmt(12);
  const cluster::PowerTree t = cluster::PowerTree::flat(13);
  EXPECT_THROW(
      static_cast<void>(core::solve_budget_tree(pmt, t, util::Watts{100.0})),
      InvalidArgument);
  const cluster::PowerTree ok = cluster::PowerTree::flat(12);
  EXPECT_THROW(
      static_cast<void>(core::solve_budget_tree(pmt, ok, util::Watts{0.0})),
      InvalidArgument);
}

TEST(PmtSoA, GatherMirrorsEntriesElementwise) {
  const core::Pmt pmt = varied_pmt(10);
  const core::PmtSoA soa = core::PmtSoA::gather(pmt);
  ASSERT_EQ(soa.size(), pmt.size());
  for (std::size_t i = 0; i < pmt.size(); ++i) {
    const core::PmtEntry& e = pmt.entry(i);
    EXPECT_TRUE(same_bits(soa.cpu_min_w[i], e.cpu_min_w.value()));
    EXPECT_TRUE(same_bits(soa.cpu_span_w[i],
                          (e.cpu_max_w - e.cpu_min_w).value()));
    EXPECT_TRUE(same_bits(soa.dram_min_w[i], e.dram_min_w.value()));
    EXPECT_TRUE(same_bits(soa.dram_span_w[i],
                          (e.dram_max_w - e.dram_min_w).value()));
    EXPECT_TRUE(same_bits(soa.module_min_w[i], e.module_min_w().value()));
    EXPECT_TRUE(same_bits(soa.module_max_w[i], e.module_max_w().value()));
  }
}

TEST(ClusterSoATest, GatherMirrorsModules) {
  cluster::Cluster fleet(hw::ha8k(), util::SeedSequence(7), 16);
  const cluster::ClusterSoA soa = cluster::ClusterSoA::gather(fleet);
  ASSERT_EQ(soa.size(), 16u);
  EXPECT_EQ(soa.fingerprint(), fleet.fingerprint());
  for (std::size_t i = 0; i < soa.size(); ++i) {
    const hw::Module& m = fleet.modules()[i];
    EXPECT_TRUE(same_bits(soa.max_freq_ghz()[i], m.max_freq_ghz()));
    EXPECT_TRUE(same_bits(soa.tdp_cpu_w()[i], m.tdp_cpu_w()));
  }
}

/// Fixed-seed hierarchical campaigns must be bitwise identical at 1 and 4
/// threads — the tree path obeys the same determinism contract as flat runs.
TEST(HierarchicalCampaign, BitwiseIdenticalAcrossThreadCounts) {
  constexpr std::size_t kModules = 24;
  cluster::Cluster fleet(hw::ha8k(), util::SeedSequence(2015), kModules);
  const cluster::ClusterSoA soa = cluster::ClusterSoA::gather(fleet);
  const std::size_t fanouts[] = {4};
  const double headroom[] = {0.85};
  const cluster::PowerTree tree =
      cluster::PowerTree::uniform_tdp(soa, fanouts, headroom);

  std::vector<hw::ModuleId> alloc(kModules);
  std::iota(alloc.begin(), alloc.end(), hw::ModuleId{0});

  core::CampaignSpec spec;
  spec.workloads = {&workloads::mhd()};
  spec.budgets_w = {90.0 * kModules, 70.0 * kModules};
  spec.schemes = {core::SchemeKind::kNaive, core::SchemeKind::kVaPc};
  spec.repetitions = 1;
  spec.config.iterations = 4;
  spec.config.tree = &tree;

  const auto run_at = [&](std::size_t threads) {
    core::CampaignEngine engine(fleet, alloc, threads);
    return engine.run(spec);
  };
  const core::CampaignResult a = run_at(1);
  const core::CampaignResult b = run_at(4);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  ASSERT_GT(a.jobs.size(), 0u);
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    const core::RunMetrics& ma = a.jobs[j].metrics;
    const core::RunMetrics& mb = b.jobs[j].metrics;
    EXPECT_EQ(a.jobs[j].cls, b.jobs[j].cls);
    EXPECT_TRUE(same_bits(ma.alpha, mb.alpha));
    EXPECT_TRUE(same_bits(ma.makespan_s, mb.makespan_s));
    EXPECT_TRUE(same_bits(ma.total_power_w, mb.total_power_w));
    ASSERT_EQ(ma.modules.size(), mb.modules.size());
    for (std::size_t i = 0; i < ma.modules.size(); ++i) {
      EXPECT_TRUE(same_bits(ma.modules[i].alloc_module_w,
                            mb.modules[i].alloc_module_w));
      EXPECT_TRUE(same_bits(ma.modules[i].op.cpu_w, mb.modules[i].op.cpu_w));
      EXPECT_TRUE(same_bits(ma.modules[i].op.perf_freq_ghz,
                            mb.modules[i].op.perf_freq_ghz));
    }
  }
}

/// chunked_sum's fixed association: equal to the sequential left-to-right
/// sum below one chunk, stable across any surrounding parallelism above it.
TEST(ChunkedSum, MatchesSequentialBelowOneChunk) {
  std::vector<double> xs(1000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = 1.0 / (1.0 + static_cast<double>(i));
  }
  double seq = 0.0;
  for (double x : xs) seq += x;
  const double chunked =
      util::chunked_sum(xs.size(), [&](std::size_t i) { return xs[i]; });
  EXPECT_TRUE(same_bits(seq, chunked));
}

TEST(ChunkedSum, FixedAssociationAcrossChunkBoundaries) {
  std::vector<double> xs(10000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = 0.1 * static_cast<double>((i * 2654435761u) % 97);
  }
  const auto at = [&](std::size_t i) { return xs[i]; };
  // Same chunk size -> bit-identical on repeat evaluation.
  EXPECT_TRUE(same_bits(util::chunked_sum(xs.size(), at),
                        util::chunked_sum(xs.size(), at)));
  // The value is defined by the chunk size, not the caller's thread count.
  const double want = util::chunked_sum(xs.size(), at);
  EXPECT_TRUE(same_bits(want, util::chunked_sum(xs.size(), at,
                                                util::kChunkedSumGrain)));
}

}  // namespace
}  // namespace vapb
