#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/linreg.hpp"
#include "stats/summary.hpp"
#include "stats/variation.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace vapb::stats {
namespace {

TEST(Summary, KnownSample) {
  std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  Summary s = summarize(v);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);  // sample sd
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.sum, 40.0);
}

TEST(Summary, SingletonHasZeroStddev) {
  Summary s = summarize(std::vector<double>{3.0});
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST(Summary, EmptyThrows) {
  EXPECT_THROW(summarize({}), InvalidArgument);
}

TEST(Accumulator, MatchesBatchSummary) {
  util::Rng rng{util::SeedSequence(3)};
  std::vector<double> v;
  Accumulator acc;
  for (int i = 0; i < 5000; ++i) {
    double x = rng.normal(10, 3);
    v.push_back(x);
    acc.add(x);
  }
  Summary batch = summarize(v);
  EXPECT_NEAR(acc.mean(), batch.mean, 1e-9);
  EXPECT_NEAR(acc.stddev(), batch.stddev, 1e-9);
  EXPECT_DOUBLE_EQ(acc.min(), batch.min);
  EXPECT_DOUBLE_EQ(acc.max(), batch.max);
  EXPECT_EQ(acc.count(), batch.count);
}

TEST(Accumulator, EmptyIsSafe) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

class PercentileCases
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(PercentileCases, LinearInterpolationOnKnownSample) {
  // Sample 10..100 step 10.
  std::vector<double> v;
  for (int i = 1; i <= 10; ++i) v.push_back(10.0 * i);
  auto [p, expected] = GetParam();
  EXPECT_NEAR(percentile(v, p), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PercentileCases,
    ::testing::Values(std::pair{0.0, 10.0}, std::pair{100.0, 100.0},
                      std::pair{50.0, 55.0}, std::pair{25.0, 32.5},
                      std::pair{90.0, 91.0}));

TEST(Percentile, ErrorsOnBadInput) {
  std::vector<double> v{1.0};
  EXPECT_THROW(percentile({}, 50), InvalidArgument);
  EXPECT_THROW(percentile(v, -1), InvalidArgument);
  EXPECT_THROW(percentile(v, 101), InvalidArgument);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 1.0);
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> x{1, 2, 3, 4}, y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> ny{-2, -4, -6, -8};
  EXPECT_NEAR(pearson(x, ny), -1.0, 1e-12);
}

TEST(Pearson, IndependentNearZero) {
  util::Rng rng{util::SeedSequence(4)};
  std::vector<double> x, y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.normal());
    y.push_back(rng.normal());
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.03);
}

TEST(Pearson, Errors) {
  std::vector<double> a{1, 2}, b{1};
  EXPECT_THROW(pearson(a, b), InvalidArgument);
  std::vector<double> c{1}, d{1};
  EXPECT_THROW(pearson(c, d), InvalidArgument);
  std::vector<double> e{1, 1}, f{1, 2};
  EXPECT_THROW(pearson(e, f), InvalidArgument);  // zero variance
}

TEST(LinReg, ExactLineRecovered) {
  std::vector<double> x{1.2, 1.5, 2.0, 2.4, 2.7};
  std::vector<double> y;
  for (double xi : x) y.push_back(5.8 + 35.2 * xi);
  LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 5.8, 1e-9);
  EXPECT_NEAR(fit.slope, 35.2, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.at(2.0), 5.8 + 70.4, 1e-9);
}

TEST(LinReg, NoisyLineHasHighButImperfectR2) {
  util::Rng rng{util::SeedSequence(5)};
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    double xi = 1.0 + 0.01 * i;
    x.push_back(xi);
    y.push_back(2.0 + 3.0 * xi + rng.normal(0, 0.1));
  }
  LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
  EXPECT_LT(fit.r_squared, 1.0);
}

TEST(LinReg, HorizontalLineR2IsOne) {
  std::vector<double> x{1, 2, 3}, y{4, 4, 4};
  LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(LinReg, Errors) {
  std::vector<double> one{1.0};
  EXPECT_THROW(fit_linear(one, one), InvalidArgument);
  std::vector<double> x{1, 1}, y{2, 3};
  EXPECT_THROW(fit_linear(x, y), InvalidArgument);  // zero x variance
  std::vector<double> a{1, 2, 3}, b{1, 2};
  EXPECT_THROW(fit_linear(a, b), InvalidArgument);
}

TEST(Variation, WorstCaseRatio) {
  std::vector<double> v{100.0, 110.0, 130.0};
  EXPECT_DOUBLE_EQ(worst_case_ratio(v), 1.3);
  std::vector<double> same{5.0, 5.0};
  EXPECT_DOUBLE_EQ(worst_case_ratio(same), 1.0);
}

TEST(Variation, SpreadPercent) {
  std::vector<double> v{100.0, 123.0};
  EXPECT_NEAR(spread_percent(v), 23.0, 1e-12);
}

TEST(Variation, Errors) {
  EXPECT_THROW(worst_case_ratio({}), InvalidArgument);
  std::vector<double> bad{1.0, 0.0};
  EXPECT_THROW(worst_case_ratio(bad), InvalidArgument);
  std::vector<double> neg{1.0, -2.0};
  EXPECT_THROW(spread_percent(neg), InvalidArgument);
}

}  // namespace
}  // namespace vapb::stats
