// Snapshot tests: a saved fleet loads bit-identically to fresh calibration
// (PVT, test runs, PMTs, SoA arrays), a snapshot-served BudgetService
// answers exactly like a cold one, and corrupted / truncated / skewed files
// fail with clear SnapshotErrors instead of UB.
#include "service/snapshot.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <vector>

#include "cluster/cluster_soa.hpp"
#include "workloads/catalog.hpp"

namespace vapb::service {
namespace {

constexpr std::size_t kModules = 16;
constexpr std::uint64_t kMasterSeed = 2015;

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

class SnapshotFixture : public ::testing::Test {
 protected:
  SnapshotFixture() {
    cluster_ = std::make_shared<const cluster::Cluster>(
        hw::ha8k(), util::SeedSequence(kMasterSeed), kModules);
    alloc_.resize(kModules);
    std::iota(alloc_.begin(), alloc_.end(), hw::ModuleId{0});
    // Per-test file name: ctest runs each test as its own concurrent
    // process, and mmap-ing a file another test is rewriting is a SIGBUS.
    path_ = ::testing::TempDir() + "vapb_snapshot_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".snap";
  }

  ~SnapshotFixture() override { std::remove(path_.c_str()); }

  ClusterState calibrated() const {
    return calibrate_state(cluster_, alloc_, {"MHD", "*DGEMM"},
                           {"Naive", "VaPc"});
  }

  void save(const ClusterState& state) const {
    save_snapshot(path_, "ha8k", kMasterSeed, state);
  }

  /// Byte-level surgery for the corruption tests.
  std::vector<char> read_file() const {
    std::ifstream in(path_, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  void write_file(const std::vector<char>& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::shared_ptr<const cluster::Cluster> cluster_;
  std::vector<hw::ModuleId> alloc_;
  std::string path_;
};

TEST_F(SnapshotFixture, RoundTripIsBitIdentical) {
  const ClusterState fresh = calibrated();
  save(fresh);
  const Snapshot snap = Snapshot::load(path_);
  EXPECT_EQ(snap.version(), kSnapshotVersion);
  EXPECT_EQ(snap.arch(), "ha8k");
  EXPECT_EQ(snap.master_seed(), kMasterSeed);
  EXPECT_EQ(snap.module_count(), kModules);
  EXPECT_EQ(snap.fleet_fingerprint(), cluster_->fingerprint());
  EXPECT_EQ(snap.test_run_count(), 2u);
  EXPECT_EQ(snap.pmt_count(), 4u);

  const ClusterState restored = snap.restore();
  EXPECT_EQ(restored.cluster->fingerprint(), cluster_->fingerprint());
  EXPECT_EQ(restored.allocation, fresh.allocation);

  ASSERT_EQ(restored.pvt->size(), fresh.pvt->size());
  for (std::size_t i = 0; i < fresh.pvt->size(); ++i) {
    EXPECT_TRUE(same_bits(restored.pvt->entries()[i].cpu_max,
                          fresh.pvt->entries()[i].cpu_max));
    EXPECT_TRUE(same_bits(restored.pvt->entries()[i].dram_max,
                          fresh.pvt->entries()[i].dram_max));
    EXPECT_TRUE(same_bits(restored.pvt->entries()[i].cpu_min,
                          fresh.pvt->entries()[i].cpu_min));
    EXPECT_TRUE(same_bits(restored.pvt->entries()[i].dram_min,
                          fresh.pvt->entries()[i].dram_min));
  }
  ASSERT_EQ(restored.test_runs.size(), fresh.test_runs.size());
  for (const auto& [name, test] : fresh.test_runs) {
    const auto it = restored.test_runs.find(name);
    ASSERT_NE(it, restored.test_runs.end()) << name;
    EXPECT_EQ(it->second->module, test->module);
    EXPECT_TRUE(
        same_bits(it->second->cpu_max_w.value(), test->cpu_max_w.value()));
    EXPECT_TRUE(
        same_bits(it->second->dram_max_w.value(), test->dram_max_w.value()));
    EXPECT_TRUE(
        same_bits(it->second->cpu_min_w.value(), test->cpu_min_w.value()));
    EXPECT_TRUE(
        same_bits(it->second->dram_min_w.value(), test->dram_min_w.value()));
  }
  ASSERT_EQ(restored.pmts.size(), fresh.pmts.size());
  for (const auto& [key, pmt] : fresh.pmts) {
    const auto it = restored.pmts.find(key);
    ASSERT_NE(it, restored.pmts.end()) << key;
    ASSERT_EQ(it->second->size(), pmt->size()) << key;
    for (std::size_t i = 0; i < pmt->size(); ++i) {
      EXPECT_TRUE(same_bits(it->second->entries()[i].cpu_max_w.value(),
                            pmt->entries()[i].cpu_max_w.value()));
      EXPECT_TRUE(same_bits(it->second->entries()[i].cpu_min_w.value(),
                            pmt->entries()[i].cpu_min_w.value()));
      EXPECT_TRUE(same_bits(it->second->entries()[i].dram_max_w.value(),
                            pmt->entries()[i].dram_max_w.value()));
    }
  }
}

TEST_F(SnapshotFixture, SnapshotServedServiceMatchesColdService) {
  const ClusterState fresh = calibrated();
  save(fresh);
  const ClusterState restored = Snapshot::load(path_).restore();

  const auto solve = [](const ClusterState& state, double budget_w) {
    ServiceConfig cfg;
    cfg.worker_threads = 1;
    BudgetService svc(cfg);
    svc.register_cluster(state);
    BudgetRequest req;
    req.scheme = "VaPc";
    req.workload = "MHD";
    req.budget_w = budget_w;
    return svc.solve(req);
  };
  for (double cm : {92.0, 76.0}) {
    const double budget_w = cm * static_cast<double>(kModules);
    const ReplyPtr warm = solve(restored, budget_w);
    const ReplyPtr cold = solve(fresh, budget_w);
    ASSERT_TRUE(warm->ok) << warm->error;
    ASSERT_TRUE(cold->ok) << cold->error;
    ASSERT_EQ(warm->budget.allocations.size(),
              cold->budget.allocations.size());
    EXPECT_TRUE(same_bits(warm->budget.alpha, cold->budget.alpha));
    for (std::size_t i = 0; i < cold->budget.allocations.size(); ++i) {
      EXPECT_TRUE(same_bits(warm->budget.allocations[i].module_w.value(),
                            cold->budget.allocations[i].module_w.value()));
    }
  }
}

TEST_F(SnapshotFixture, SaveRejectsAnIdentityThatCannotRefabricate) {
  const ClusterState state = calibrated();
  EXPECT_THROW(save_snapshot(path_, "ha8k", kMasterSeed + 1, state),
               InvalidArgument);
  EXPECT_THROW(save_snapshot(path_, "cab", kMasterSeed, state),
               InvalidArgument);
  EXPECT_THROW(save_snapshot(path_, "atari", kMasterSeed, state),
               InvalidArgument);
}

TEST_F(SnapshotFixture, MissingFileFailsCleanly) {
  EXPECT_THROW(Snapshot::load(path_ + ".nope"), SnapshotError);
}

TEST_F(SnapshotFixture, CorruptedPayloadFailsTheChecksum) {
  save(calibrated());
  std::vector<char> bytes = read_file();
  bytes[bytes.size() / 2] ^= 0x40;  // flip one payload bit
  write_file(bytes);
  try {
    Snapshot::load(path_);
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

TEST_F(SnapshotFixture, TruncatedFileFailsWithSizeDiagnostics) {
  save(calibrated());
  std::vector<char> bytes = read_file();
  // Truncated mid-payload: the header's declared size no longer fits.
  std::vector<char> cut(bytes.begin(),
                        bytes.begin() + static_cast<long>(bytes.size() / 2));
  write_file(cut);
  try {
    Snapshot::load(path_);
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
  // Truncated inside the header itself.
  write_file({bytes.begin(), bytes.begin() + 9});
  EXPECT_THROW(Snapshot::load(path_), SnapshotError);
}

TEST_F(SnapshotFixture, BadMagicAndVersionAreDistinctErrors) {
  save(calibrated());
  std::vector<char> bytes = read_file();

  std::vector<char> not_snap = bytes;
  not_snap[0] = 'X';
  write_file(not_snap);
  try {
    Snapshot::load(path_);
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }

  std::vector<char> future = bytes;
  future[8] = 99;  // u32 version little-endian low byte
  write_file(future);
  try {
    Snapshot::load(path_);
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST_F(SnapshotFixture, VersionOneFilesAreRejectedWithTheClassMixReason) {
  // Byte-surgery a valid v2 file down to version 1: the version field sits
  // at byte 8, outside the checksum (which covers the payload only), so the
  // loader sees a structurally intact v1 file and must reject it with the
  // specific pre-device-class explanation — not the generic version error.
  save(calibrated());
  std::vector<char> bytes = read_file();
  bytes[8] = 1;
  write_file(bytes);
  try {
    Snapshot::load(path_);
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version 1"), std::string::npos) << what;
    EXPECT_NE(what.find("device-class"), std::string::npos) << what;
    EXPECT_NE(what.find("re-save"), std::string::npos) << what;
  }
}

class HeteroSnapshotFixture : public ::testing::Test {
 protected:
  HeteroSnapshotFixture() {
    cluster_ = std::make_shared<const cluster::Cluster>(
        hw::ha8k(), util::SeedSequence(kMasterSeed),
        hw::ClassMix::parse("cpu:12,gpu:3,dram:1"));
    alloc_.resize(cluster_->size());
    std::iota(alloc_.begin(), alloc_.end(), hw::ModuleId{0});
    path_ = ::testing::TempDir() + "vapb_snapshot_hetero_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".snap";
  }

  ~HeteroSnapshotFixture() override { std::remove(path_.c_str()); }

  ClusterState calibrated() const {
    return calibrate_state(cluster_, alloc_, {"MHD"}, {"Naive", "VaPc"});
  }

  std::shared_ptr<const cluster::Cluster> cluster_;
  std::vector<hw::ModuleId> alloc_;
  std::string path_;
};

TEST_F(HeteroSnapshotFixture, MixedFleetRoundTripsClassesAndRanges) {
  const ClusterState fresh = calibrated();
  save_snapshot(path_, "ha8k", kMasterSeed, fresh);
  const Snapshot snap = Snapshot::load(path_);
  EXPECT_EQ(snap.mix(), "cpu:12,gpu:3,dram:1");
  EXPECT_EQ(snap.fleet_fingerprint(), cluster_->fingerprint());

  const ClusterState restored = snap.restore();
  EXPECT_TRUE(restored.cluster->heterogeneous());
  EXPECT_EQ(restored.cluster->fingerprint(), cluster_->fingerprint());
  for (hw::ModuleId id : alloc_) {
    EXPECT_EQ(restored.cluster->device_class(id),
              cluster_->device_class(id));
  }
  ASSERT_EQ(restored.pmts.size(), fresh.pmts.size());
  for (const auto& [key, pmt] : fresh.pmts) {
    const auto it = restored.pmts.find(key);
    ASSERT_NE(it, restored.pmts.end()) << key;
    ASSERT_EQ(it->second->heterogeneous(), pmt->heterogeneous()) << key;
    for (std::size_t k = 0; k < pmt->size(); ++k) {
      EXPECT_EQ(it->second->device_class(k), pmt->device_class(k));
      EXPECT_TRUE(same_bits(it->second->entries()[k].cpu_max_w.value(),
                            pmt->entries()[k].cpu_max_w.value()));
    }
    if (pmt->heterogeneous()) {
      for (hw::DeviceClass c : hw::all_device_classes()) {
        EXPECT_TRUE(same_bits(it->second->class_range(c).fmax_ghz.value(),
                              pmt->class_range(c).fmax_ghz.value()));
        EXPECT_TRUE(same_bits(it->second->class_range(c).fmin_ghz.value(),
                              pmt->class_range(c).fmin_ghz.value()));
      }
    }
  }
}

TEST_F(HeteroSnapshotFixture, WarmHeteroServiceMatchesColdBitwise) {
  const ClusterState fresh = calibrated();
  save_snapshot(path_, "ha8k", kMasterSeed, fresh);
  const ClusterState restored = Snapshot::load(path_).restore();

  const auto solve = [](const ClusterState& state, double budget_w) {
    ServiceConfig cfg;
    cfg.worker_threads = 1;
    BudgetService svc(cfg);
    svc.register_cluster(state);
    BudgetRequest req;
    req.scheme = "VaPc";
    req.workload = "MHD";
    req.budget_w = budget_w;
    return svc.solve(req);
  };
  const double n = static_cast<double>(cluster_->size());
  for (double cm : {95.0, 78.0}) {
    const ReplyPtr warm = solve(restored, cm * n);
    const ReplyPtr cold = solve(fresh, cm * n);
    ASSERT_TRUE(warm->ok) << warm->error;
    ASSERT_TRUE(cold->ok) << cold->error;
    EXPECT_TRUE(same_bits(warm->budget.alpha, cold->budget.alpha));
    ASSERT_EQ(warm->budget.allocations.size(),
              cold->budget.allocations.size());
    for (std::size_t i = 0; i < cold->budget.allocations.size(); ++i) {
      EXPECT_TRUE(same_bits(warm->budget.allocations[i].module_w.value(),
                            cold->budget.allocations[i].module_w.value()));
      EXPECT_TRUE(same_bits(warm->budget.allocations[i].cpu_cap_w.value(),
                            cold->budget.allocations[i].cpu_cap_w.value()));
    }
  }
}

}  // namespace
}  // namespace vapb::service
