#include "core/pmmd.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "hw/arch.hpp"
#include "util/error.hpp"

namespace vapb::core {
namespace {

class PmmdFixture : public ::testing::Test {
 protected:
  PmmdFixture() {
    for (hw::ModuleId i = 0; i < 4; ++i) {
      rapls_.emplace_back(cluster_.module(i));
      governors_.emplace_back(cluster_.module(i));
    }
  }

  PmmdPlan cap_plan() {
    PmmdPlan plan;
    plan.enforcement = Enforcement::kPowerCap;
    for (hw::ModuleId i = 0; i < 4; ++i) {
      PmmdSetting s;
      s.module = i;
      s.cpu_cap_w = util::Watts{60.0 + i};
      plan.settings.push_back(s);
    }
    return plan;
  }

  PmmdPlan freq_plan() {
    PmmdPlan plan;
    plan.enforcement = Enforcement::kFreqSelect;
    for (hw::ModuleId i = 0; i < 4; ++i) {
      PmmdSetting s;
      s.module = i;
      s.freq_ghz = util::GigaHertz{1.8};
      plan.settings.push_back(s);
    }
    return plan;
  }

  cluster::Cluster cluster_{hw::ha8k(), util::SeedSequence(81), 4};
  std::vector<hw::Rapl> rapls_;
  std::vector<hw::CpufreqGovernor> governors_;
};

TEST_F(PmmdFixture, PowerCapPlanProgramsRapl) {
  {
    PmmdSession session(cap_plan(), rapls_, governors_);
    for (hw::ModuleId i = 0; i < 4; ++i) {
      ASSERT_TRUE(rapls_[i].cpu_limit_w().has_value());
      EXPECT_DOUBLE_EQ(rapls_[i].cpu_limit_w()->value(), 60.0 + i);
      EXPECT_FALSE(governors_[i].frequency_ghz().has_value());
    }
  }
  // Region exit clears everything (the MPI_Finalize directive).
  for (auto& r : rapls_) EXPECT_FALSE(r.cpu_limit_w().has_value());
}

TEST_F(PmmdFixture, FreqSelectPlanProgramsGovernors) {
  {
    PmmdSession session(freq_plan(), rapls_, governors_);
    for (auto& g : governors_) {
      ASSERT_TRUE(g.frequency_ghz().has_value());
      EXPECT_NEAR(g.frequency_ghz()->value(), 1.8, 1e-9);
    }
    for (auto& r : rapls_) EXPECT_FALSE(r.cpu_limit_w().has_value());
  }
  for (auto& g : governors_) EXPECT_FALSE(g.frequency_ghz().has_value());
}

TEST_F(PmmdFixture, SizeMismatchThrows) {
  PmmdPlan plan = cap_plan();
  plan.settings.pop_back();
  EXPECT_THROW(PmmdSession(plan, rapls_, governors_), InvalidArgument);
}

TEST_F(PmmdFixture, MissingCapThrows) {
  PmmdPlan plan = cap_plan();
  plan.settings[2].cpu_cap_w.reset();
  EXPECT_THROW(PmmdSession(plan, rapls_, governors_), InvalidArgument);
}

TEST_F(PmmdFixture, MissingFreqThrows) {
  PmmdPlan plan = freq_plan();
  plan.settings[0].freq_ghz.reset();
  EXPECT_THROW(PmmdSession(plan, rapls_, governors_), InvalidArgument);
}

}  // namespace
}  // namespace vapb::core
