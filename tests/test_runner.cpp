#include "core/runner.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::core {
namespace {

class RunnerFixture : public ::testing::Test {
 protected:
  RunnerFixture() {
    allocation_.resize(cluster_.size());
    std::iota(allocation_.begin(), allocation_.end(), hw::ModuleId{0});
    runner_ = std::make_unique<Runner>(cluster_, allocation_);
    test_mhd_ = single_module_test_run(cluster_, 0, workloads::mhd(),
                                       util::SeedSequence(91));
  }

  RunMetrics run(SchemeKind kind, double cm_per_module,
                 const workloads::Workload& w) {
    TestRunResult test =
        single_module_test_run(cluster_, 0, w, util::SeedSequence(92));
    return runner_->run_scheme(w, kind, cm_per_module * 48, pvt_, test);
  }

  cluster::Cluster cluster_{hw::ha8k(), util::SeedSequence(90), 48};
  std::vector<hw::ModuleId> allocation_;
  std::unique_ptr<Runner> runner_;
  Pvt pvt_ = Pvt::generate(cluster_, workloads::pvt_microbench(),
                           util::SeedSequence(93));
  TestRunResult test_mhd_;
};

TEST_F(RunnerFixture, UncappedRunsEveryModuleAtFmax) {
  RunMetrics m = runner_->run_uncapped(workloads::dgemm());
  EXPECT_EQ(m.modules.size(), 48u);
  EXPECT_EQ(m.des.ranks.size(), 48u);
  for (const auto& mo : m.modules) {
    EXPECT_DOUBLE_EQ(mo.op.freq_ghz, 2.7);
    EXPECT_FALSE(mo.op.throttled);
  }
  EXPECT_FALSE(m.constrained);
  EXPECT_GT(m.makespan_s, 0.0);
}

TEST_F(RunnerFixture, UncappedPowerVariationInPaperBand) {
  RunMetrics m = runner_->run_uncapped(workloads::dgemm());
  EXPECT_GT(m.vp(), 1.15);
  EXPECT_LT(m.vp(), 1.55);
}

TEST_F(RunnerFixture, PowerCapSchemesRespectBudget) {
  for (SchemeKind kind :
       {SchemeKind::kPc, SchemeKind::kVaPc, SchemeKind::kVaPcOr}) {
    RunMetrics m = run(kind, 80.0, workloads::mhd());
    EXPECT_LE(m.total_power_w, m.budget_w * 1.02) << scheme_name(kind);
  }
}

TEST_F(RunnerFixture, VaFsGivesIdenticalFrequencies) {
  RunMetrics m = run(SchemeKind::kVaFs, 80.0, workloads::mhd());
  for (const auto& mo : m.modules) {
    EXPECT_DOUBLE_EQ(mo.op.freq_ghz, m.modules[0].op.freq_ghz);
  }
  EXPECT_NEAR(m.vf(), 1.0, 1e-9);
}

TEST_F(RunnerFixture, VaPcEqualizesFrequenciesBetterThanPc) {
  RunMetrics pc = run(SchemeKind::kPc, 80.0, workloads::mhd());
  RunMetrics vapc = run(SchemeKind::kVaPc, 80.0, workloads::mhd());
  EXPECT_LT(vapc.vf(), pc.vf());
  // And the variation-aware scheme allocates unequal power to do it.
  EXPECT_GT(vapc.vp(), pc.vp());
}

TEST_F(RunnerFixture, TighterBudgetSlower) {
  RunMetrics loose = run(SchemeKind::kVaPc, 90.0, workloads::mhd());
  RunMetrics tight = run(SchemeKind::kVaPc, 70.0, workloads::mhd());
  EXPECT_GT(tight.makespan_s, loose.makespan_s);
  EXPECT_LT(tight.alpha, loose.alpha);
}

TEST_F(RunnerFixture, CapsAreRecordedInOutcomes) {
  RunMetrics m = run(SchemeKind::kVaPc, 80.0, workloads::mhd());
  for (const auto& mo : m.modules) {
    EXPECT_GT(mo.cpu_cap_w, 0.0);
    EXPECT_GT(mo.alloc_module_w, mo.cpu_cap_w);  // alloc includes DRAM
  }
  RunMetrics fs = run(SchemeKind::kVaFs, 80.0, workloads::mhd());
  for (const auto& mo : fs.modules) {
    EXPECT_DOUBLE_EQ(mo.cpu_cap_w, 0.0);  // FS does not program RAPL
  }
}

TEST_F(RunnerFixture, NormalizedTimesAgainstBaseline) {
  RunMetrics base = runner_->run_uncapped(workloads::mhd());
  RunMetrics capped = run(SchemeKind::kVaFs, 70.0, workloads::mhd());
  auto norm = normalized_times(capped, base);
  ASSERT_EQ(norm.size(), 48u);
  for (double x : norm) EXPECT_GT(x, 1.0);  // capped is slower
  EXPECT_GE(vt_normalized(capped, base), 1.0);
}

TEST_F(RunnerFixture, SpeedupDefinition) {
  RunMetrics naive = run(SchemeKind::kNaive, 70.0, workloads::mhd());
  RunMetrics vafs = run(SchemeKind::kVaFs, 70.0, workloads::mhd());
  EXPECT_NEAR(speedup(vafs, naive), naive.makespan_s / vafs.makespan_s,
              1e-12);
  EXPECT_GT(speedup(vafs, naive), 1.0);
}

TEST_F(RunnerFixture, RunsAreDeterministic) {
  RunMetrics a = run(SchemeKind::kVaPc, 80.0, workloads::mhd());
  RunMetrics b = run(SchemeKind::kVaPc, 80.0, workloads::mhd());
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_DOUBLE_EQ(a.total_power_w, b.total_power_w);
}

TEST_F(RunnerFixture, RunSaltChangesNoiseOnly) {
  RunConfig salted;
  salted.run_salt = 1;
  Runner other(cluster_, allocation_, salted);
  TestRunResult test = single_module_test_run(cluster_, 0, workloads::mhd(),
                                              util::SeedSequence(92));
  RunMetrics a = runner_->run_scheme(workloads::mhd(), SchemeKind::kVaFs,
                                     80.0 * 48, pvt_, test);
  RunMetrics b = other.run_scheme(workloads::mhd(), SchemeKind::kVaFs,
                                  80.0 * 48, pvt_, test);
  EXPECT_NE(a.makespan_s, b.makespan_s);          // different noise
  EXPECT_DOUBLE_EQ(a.alpha, b.alpha);             // same budgeting
  EXPECT_NEAR(a.makespan_s, b.makespan_s, a.makespan_s * 0.1);
}

TEST_F(RunnerFixture, IterationOverrideShortensRun) {
  RunConfig cfg;
  cfg.iterations = 3;
  Runner short_runner(cluster_, allocation_, cfg);
  RunMetrics m = short_runner.run_uncapped(workloads::mhd());
  // 3 iterations instead of the default 30.
  RunMetrics full = runner_->run_uncapped(workloads::mhd());
  EXPECT_LT(m.makespan_s, full.makespan_s / 5.0);
}

TEST_F(RunnerFixture, MetricsVectorsAlign) {
  RunMetrics m = run(SchemeKind::kVaPc, 80.0, workloads::mhd());
  EXPECT_EQ(m.module_powers_w().size(), 48u);
  EXPECT_EQ(m.cpu_powers_w().size(), 48u);
  EXPECT_EQ(m.dram_powers_w().size(), 48u);
  EXPECT_EQ(m.perf_freqs_ghz().size(), 48u);
  for (std::size_t i = 0; i < 48; ++i) {
    EXPECT_NEAR(m.module_powers_w()[i],
                m.cpu_powers_w()[i] + m.dram_powers_w()[i], 1e-9);
  }
}

TEST_F(RunnerFixture, EmptyAllocationRejected) {
  EXPECT_THROW(Runner(cluster_, {}), InvalidArgument);
}

TEST_F(RunnerFixture, BadModuleIdRejected) {
  EXPECT_THROW(Runner(cluster_, {9999}), InvalidArgument);
}

TEST_F(RunnerFixture, DuplicateModuleRejected) {
  EXPECT_THROW(Runner(cluster_, {0, 1, 1}), InvalidArgument);
}

TEST_F(RunnerFixture, NormalizedTimesSizeMismatchThrows) {
  RunMetrics base = runner_->run_uncapped(workloads::mhd());
  Runner small(cluster_, {0, 1, 2});
  RunMetrics other = small.run_uncapped(workloads::mhd());
  EXPECT_THROW(normalized_times(other, base), InvalidArgument);
}

}  // namespace
}  // namespace vapb::core
