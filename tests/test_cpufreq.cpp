#include "hw/cpufreq.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::hw {
namespace {

Module make_module() {
  return Module(0, ModuleVariation{}, FrequencyLadder(1.2, 2.7, 0.1, 3.0),
                130.0, util::SeedSequence(1));
}

TEST(Cpufreq, DefaultsToFmax) {
  Module m = make_module();
  CpufreqGovernor g(m);
  EXPECT_FALSE(g.frequency_ghz().has_value());
  OperatingPoint op = g.operating_point(workloads::mhd().profile);
  EXPECT_DOUBLE_EQ(op.freq_ghz, 2.7);
}

TEST(Cpufreq, SetFrequencyQuantizesDown) {
  Module m = make_module();
  CpufreqGovernor g(m);
  g.set_frequency(util::GigaHertz{1.78});
  ASSERT_TRUE(g.frequency_ghz().has_value());
  EXPECT_NEAR(g.frequency_ghz()->value(), 1.7, 1e-9);
}

TEST(Cpufreq, BelowFminSnapsToFmin) {
  Module m = make_module();
  CpufreqGovernor g(m);
  g.set_frequency(util::GigaHertz{0.5});
  EXPECT_NEAR(g.frequency_ghz()->value(), 1.2, 1e-9);
}

TEST(Cpufreq, AboveFmaxSnapsToFmax) {
  Module m = make_module();
  CpufreqGovernor g(m);
  g.set_frequency(util::GigaHertz{5.0});
  EXPECT_NEAR(g.frequency_ghz()->value(), 2.7, 1e-9);
}

TEST(Cpufreq, PowerIsConsequenceNotConstraint) {
  Module m = make_module();
  CpufreqGovernor g(m);
  g.set_frequency(util::GigaHertz{2.0});
  const auto& p = workloads::dgemm().profile;
  OperatingPoint op = g.operating_point(p);
  EXPECT_FALSE(op.throttled);
  EXPECT_DOUBLE_EQ(op.duty, 1.0);
  EXPECT_DOUBLE_EQ(op.perf_freq_ghz, op.freq_ghz);
  EXPECT_NEAR(op.cpu_w, m.cpu_power_w(p, op.freq_ghz), 1e-9);
  EXPECT_NEAR(op.dram_w, m.dram_power_w(p, op.freq_ghz), 1e-9);
}

TEST(Cpufreq, ClearRestoresDefault) {
  Module m = make_module();
  CpufreqGovernor g(m);
  g.set_frequency(util::GigaHertz{1.5});
  g.clear();
  EXPECT_FALSE(g.frequency_ghz().has_value());
}

TEST(Cpufreq, NonPositiveFrequencyThrows) {
  Module m = make_module();
  CpufreqGovernor g(m);
  EXPECT_THROW(g.set_frequency(util::GigaHertz{0.0}), InvalidArgument);
  EXPECT_THROW(g.set_frequency(util::GigaHertz{-1.0}), InvalidArgument);
}

TEST(Cpufreq, FsNeverExceedsRequestedFrequency) {
  Module m = make_module();
  CpufreqGovernor g(m);
  for (double f = 1.2; f <= 2.7; f += 0.03) {
    g.set_frequency(util::GigaHertz{f});
    EXPECT_LE(g.frequency_ghz()->value(), f + 1e-9);
  }
}

}  // namespace
}  // namespace vapb::hw
