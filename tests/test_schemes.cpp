#include "core/schemes.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "workloads/catalog.hpp"

namespace vapb::core {
namespace {

using namespace util::unit_literals;

TEST(Schemes, EnforcementMapping) {
  EXPECT_EQ(enforcement_of(SchemeKind::kNaive), Enforcement::kPowerCap);
  EXPECT_EQ(enforcement_of(SchemeKind::kPc), Enforcement::kPowerCap);
  EXPECT_EQ(enforcement_of(SchemeKind::kVaPc), Enforcement::kPowerCap);
  EXPECT_EQ(enforcement_of(SchemeKind::kVaPcOr), Enforcement::kPowerCap);
  EXPECT_EQ(enforcement_of(SchemeKind::kVaFs), Enforcement::kFreqSelect);
  EXPECT_EQ(enforcement_of(SchemeKind::kVaFsOr), Enforcement::kFreqSelect);
}

TEST(Schemes, AwarenessAndOracleFlags) {
  EXPECT_FALSE(is_variation_aware(SchemeKind::kNaive));
  EXPECT_FALSE(is_variation_aware(SchemeKind::kPc));
  EXPECT_TRUE(is_variation_aware(SchemeKind::kVaPc));
  EXPECT_TRUE(is_variation_aware(SchemeKind::kVaFs));
  EXPECT_TRUE(is_oracle(SchemeKind::kVaPcOr));
  EXPECT_TRUE(is_oracle(SchemeKind::kVaFsOr));
  EXPECT_FALSE(is_oracle(SchemeKind::kVaPc));
}

TEST(Schemes, NamesMatchFigureSevenLegend) {
  auto all = all_schemes();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(scheme_name(all[0]), "Naive");
  EXPECT_EQ(scheme_name(all[1]), "Pc");
  EXPECT_EQ(scheme_name(all[2]), "VaPcOr");
  EXPECT_EQ(scheme_name(all[3]), "VaPc");
  EXPECT_EQ(scheme_name(all[4]), "VaFsOr");
  EXPECT_EQ(scheme_name(all[5]), "VaFs");
}

class SchemePmtFixture : public ::testing::Test {
 protected:
  SchemePmtFixture() {
    allocation_.resize(cluster_.size());
    std::iota(allocation_.begin(), allocation_.end(), hw::ModuleId{0});
    test_ = single_module_test_run(cluster_, 0, workloads::mhd(),
                                   util::SeedSequence(71));
  }

  Pmt build(SchemeKind kind) {
    return scheme_pmt(kind, cluster_, allocation_, workloads::mhd(), pvt_,
                      test_, util::SeedSequence(72));
  }

  cluster::Cluster cluster_{hw::ha8k(), util::SeedSequence(70), 48};
  std::vector<hw::ModuleId> allocation_;
  Pvt pvt_ = Pvt::generate(cluster_, workloads::pvt_microbench(),
                           util::SeedSequence(73));
  TestRunResult test_;
};

TEST_F(SchemePmtFixture, NaiveUsesTdpTable) {
  Pmt pmt = build(SchemeKind::kNaive);
  ASSERT_EQ(pmt.size(), 48u);
  for (const auto& e : pmt.entries()) {
    EXPECT_DOUBLE_EQ(e.cpu_max_w.value(), 130.0);
    EXPECT_DOUBLE_EQ(e.dram_max_w.value(), 62.0);
    EXPECT_DOUBLE_EQ(e.cpu_min_w.value(), 40.0);
    EXPECT_DOUBLE_EQ(e.dram_min_w.value(), 10.0);
  }
}

TEST_F(SchemePmtFixture, PcIsUniformButApplicationDependent) {
  Pmt pmt = build(SchemeKind::kPc);
  for (std::size_t k = 1; k < pmt.size(); ++k) {
    EXPECT_DOUBLE_EQ(pmt.entry(k).cpu_max_w.value(),
                     pmt.entry(0).cpu_max_w.value());
  }
  // Application-dependent: far from the TDP table, near MHD's real power.
  EXPECT_NEAR(pmt.entry(0).cpu_max_w.value(), 83.9, 6.0);
}

TEST_F(SchemePmtFixture, VaPcVariesAcrossModules) {
  Pmt pmt = build(SchemeKind::kVaPc);
  double lo = pmt.entry(0).module_max_w().value(), hi = lo;
  for (const auto& e : pmt.entries()) {
    lo = std::min(lo, e.module_max_w().value());
    hi = std::max(hi, e.module_max_w().value());
  }
  EXPECT_GT(hi / lo, 1.1);
}

TEST_F(SchemePmtFixture, VaFsSharesVaPcTable) {
  Pmt pc = build(SchemeKind::kVaPc);
  Pmt fs = build(SchemeKind::kVaFs);
  ASSERT_EQ(pc.size(), fs.size());
  for (std::size_t k = 0; k < pc.size(); ++k) {
    EXPECT_DOUBLE_EQ(pc.entry(k).cpu_max_w.value(),
                     fs.entry(k).cpu_max_w.value());
  }
}

TEST_F(SchemePmtFixture, OracleTracksTruePower) {
  Pmt oracle = build(SchemeKind::kVaPcOr);
  const auto& w = workloads::mhd();
  for (std::size_t k = 0; k < allocation_.size(); ++k) {
    const auto& m = cluster_.module(allocation_[k]);
    double truth = m.module_power_w(w.profile, 2.7);
    EXPECT_NEAR(oracle.entry(k).module_max_w().value(), truth, truth * 0.02);
  }
}

TEST_F(SchemePmtFixture, CustomNaiveTable) {
  NaiveTable custom{100.0_W, 30.0_W, 35.0_W, 8.0_W};
  Pmt pmt = scheme_pmt(SchemeKind::kNaive, cluster_, allocation_,
                       workloads::mhd(), pvt_, test_, util::SeedSequence(74),
                       custom);
  EXPECT_DOUBLE_EQ(pmt.entry(0).cpu_max_w.value(), 100.0);
  EXPECT_DOUBLE_EQ(pmt.entry(0).dram_min_w.value(), 8.0);
}

}  // namespace
}  // namespace vapb::core
