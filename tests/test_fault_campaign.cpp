#include "fault/campaign.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "fault/injector.hpp"
#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::fault {
namespace {

// Two sweeps must agree bit-for-bit, job by job, in expansion order.
void expect_jobs_identical(const core::CampaignResult& a,
                           const core::CampaignResult& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const core::CampaignJobResult& x = a.jobs[i];
    const core::CampaignJobResult& y = b.jobs[i];
    ASSERT_EQ(x.job.scheme, y.job.scheme);
    ASSERT_EQ(x.job.budget_w, y.job.budget_w);
    ASSERT_EQ(x.job.repetition, y.job.repetition);
    EXPECT_EQ(x.metrics.feasible, y.metrics.feasible);
    EXPECT_EQ(x.metrics.constrained, y.metrics.constrained);
    EXPECT_EQ(x.metrics.alpha, y.metrics.alpha);
    EXPECT_EQ(x.metrics.makespan_s, y.metrics.makespan_s);
    EXPECT_EQ(x.metrics.total_power_w, y.metrics.total_power_w);
    EXPECT_EQ(x.metrics.total_cpu_power_w, y.metrics.total_cpu_power_w);
    EXPECT_EQ(x.metrics.total_dram_power_w, y.metrics.total_dram_power_w);
  }
}

class FaultCampaignFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kModules = 16;

  static std::vector<hw::ModuleId> allocation(std::size_t n) {
    std::vector<hw::ModuleId> alloc(n);
    std::iota(alloc.begin(), alloc.end(), hw::ModuleId{0});
    return alloc;
  }

  core::CampaignSpec spec() const {
    core::CampaignSpec s;
    s.workloads = {&workloads::mhd()};
    s.budgets_w = {90.0 * kModules, 80.0 * kModules};
    s.scheme_names = {"Naive", "VaPc", "VaPcRobust", "VaFs", "VaFsRobust"};
    s.repetitions = 5;
    s.config.iterations = 6;  // keep the DES part fast
    return s;
  }

  cluster::Cluster cluster_{hw::ha8k(), util::SeedSequence(2015), kModules};
};

TEST_F(FaultCampaignFixture, ExpandCrossesAxesNoiseOutermost) {
  FaultGrid grid;
  grid.noise_fracs = {0.0, 0.05};
  grid.drift_fracs = {0.0, 0.04};
  grid.failure_counts = {0, 1};
  grid.base.seed = 7;
  grid.base.rapl_error_frac = 0.03;

  const std::vector<FaultScenario> points = FaultCampaign::expand(grid);
  ASSERT_EQ(points.size(), grid.point_count());
  ASSERT_EQ(points.size(), 8u);
  // noise outermost, then drift, then failures; base knobs carried through.
  EXPECT_EQ(points[0].sensor_noise_frac, 0.0);
  EXPECT_EQ(points[0].drift_frac, 0.0);
  EXPECT_EQ(points[0].failure_count, 0);
  EXPECT_EQ(points[1].failure_count, 1);
  EXPECT_EQ(points[2].drift_frac, 0.04);
  EXPECT_EQ(points[4].sensor_noise_frac, 0.05);
  for (const FaultScenario& s : points) {
    EXPECT_EQ(s.seed, 7u);
    EXPECT_EQ(s.rapl_error_frac, 0.03);
  }
}

TEST_F(FaultCampaignFixture, ExpandRejectsEmptyAxes) {
  FaultGrid grid;
  grid.noise_fracs.clear();
  EXPECT_THROW((void)FaultCampaign::expand(grid), InvalidArgument);
  grid = FaultGrid{};
  grid.drift_fracs.clear();
  EXPECT_THROW((void)FaultCampaign::expand(grid), InvalidArgument);
  grid = FaultGrid{};
  grid.failure_counts.clear();
  EXPECT_THROW((void)FaultCampaign::expand(grid), InvalidArgument);
}

TEST_F(FaultCampaignFixture, RunRejectsCallerManagedInjector) {
  FaultGrid grid;
  core::CampaignSpec s = spec();
  const FaultInjector injector(grid.base);
  s.config.fault = &injector;
  const FaultCampaign sweep(cluster_, allocation(kModules), 1);
  EXPECT_THROW((void)sweep.run(s, grid), InvalidArgument);
}

TEST_F(FaultCampaignFixture, ZeroPointIsBitIdenticalToNoInjection) {
  FaultGrid grid;
  grid.noise_fracs = {0.0};
  grid.drift_fracs = {0.0};
  grid.failure_counts = {0};

  core::CampaignSpec s = spec();
  s.repetitions = 2;

  const FaultCampaign sweep(cluster_, allocation(kModules), 2);
  const FaultCampaignResult faulted = sweep.run(s, grid);
  ASSERT_EQ(faulted.points.size(), 1u);
  EXPECT_FALSE(faulted.points[0].scenario.any());

  core::CampaignEngine engine(cluster_, allocation(kModules), 2);
  const core::CampaignResult plain = engine.run(s);

  expect_jobs_identical(faulted.points[0].campaign, plain);
}

TEST_F(FaultCampaignFixture, FixedSeedSweepIsThreadCountInvariant) {
  FaultGrid grid;
  grid.noise_fracs = {0.05};
  grid.drift_fracs = {0.04};
  grid.failure_counts = {1};
  grid.base.seed = 2015;
  grid.base.rapl_error_frac = 0.05;
  grid.base.throttle_rate = 0.25;

  core::CampaignSpec s = spec();
  s.repetitions = 2;
  s.scheme_names = {"Naive", "VaPc", "VaPcRobust"};

  const FaultCampaignResult serial =
      FaultCampaign(cluster_, allocation(kModules), 1).run(s, grid);
  const FaultCampaignResult pooled =
      FaultCampaign(cluster_, allocation(kModules), 4).run(s, grid);

  ASSERT_EQ(serial.points.size(), 1u);
  ASSERT_EQ(pooled.points.size(), 1u);
  expect_jobs_identical(serial.points[0].campaign, pooled.points[0].campaign);
  for (std::size_t i = 0; i < serial.points[0].schemes.size(); ++i) {
    const FaultSchemeResult& x = serial.points[0].schemes[i];
    const FaultSchemeResult& y = pooled.points[0].schemes[i];
    EXPECT_EQ(x.scheme, y.scheme);
    EXPECT_EQ(x.violation_rate, y.violation_rate);
    EXPECT_EQ(x.mean_overshoot_w, y.mean_overshoot_w);
    EXPECT_EQ(x.mean_makespan_s, y.mean_makespan_s);
  }
}

// The headline claim of the degradation campaign: under sensor noise plus
// drift (and an imperfectly-enforced RAPL cap), the guard-band + re-budget
// schemes violate the budget strictly less often than their plain
// counterparts while still beating Naive on makespan.
TEST_F(FaultCampaignFixture, RobustSchemesViolateLessWithoutLosingSpeedup) {
  FaultGrid grid;
  grid.noise_fracs = {0.05};
  grid.drift_fracs = {0.04};
  grid.failure_counts = {0};
  grid.base.seed = 1;
  grid.base.rapl_error_frac = 0.05;

  const FaultCampaign sweep(cluster_, allocation(kModules), 2);
  const FaultCampaignResult result = sweep.run(spec(), grid);
  ASSERT_EQ(result.points.size(), 1u);
  const FaultPointResult& point = result.points[0];

  for (const auto& [plain_name, robust_name] :
       {std::pair<const char*, const char*>{"VaPc", "VaPcRobust"},
        std::pair<const char*, const char*>{"VaFs", "VaFsRobust"}}) {
    const FaultSchemeResult& plain = point.scheme(plain_name);
    const FaultSchemeResult& robust = point.scheme(robust_name);
    ASSERT_GT(plain.jobs, 0u);
    ASSERT_GT(robust.jobs, 0u);
    // The faults actually hurt the plain scheme...
    EXPECT_GT(plain.violation_rate, 0.0) << plain_name;
    // ...and the robust counterpart strictly improves on it...
    EXPECT_LT(robust.violation_rate, plain.violation_rate) << robust_name;
    EXPECT_LE(robust.mean_overshoot_w, plain.mean_overshoot_w) << robust_name;
    // ...while keeping the variation-aware speedup over Naive.
    ASSERT_TRUE(std::isfinite(robust.mean_speedup_vs_naive)) << robust_name;
    EXPECT_GE(robust.mean_speedup_vs_naive, 1.0) << robust_name;
  }
}

TEST_F(FaultCampaignFixture, PointSchemeLookupThrowsOnUnknownName) {
  FaultPointResult point;
  point.schemes.push_back(FaultSchemeResult{"VaPc", 1, 0.0, 0.0, 0.0, 1.0});
  EXPECT_EQ(&point.scheme("VaPc"), &point.schemes[0]);
  EXPECT_THROW((void)point.scheme("VaPcOracle"), InvalidArgument);
}

}  // namespace
}  // namespace vapb::fault
