#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/error.hpp"

namespace vapb::util {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, JumpChangesStream) {
  Xoshiro256 a(7), b(7);
  b.jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  EXPECT_EQ(Xoshiro256::min(), 0u);
  EXPECT_EQ(Xoshiro256::max(), ~std::uint64_t{0});
}

TEST(Fnv1a, StableKnownValues) {
  // FNV-1a of the empty string is the offset basis.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_EQ(fnv1a("module"), fnv1a("module"));
}

TEST(SeedSequence, ForkIsOrderIndependent) {
  SeedSequence root(42);
  auto a1 = root.fork("hw").fork("module", 3);
  auto unrelated = root.fork("des");
  auto a2 = root.fork("hw").fork("module", 3);
  (void)unrelated;
  EXPECT_EQ(a1.value(), a2.value());
}

TEST(SeedSequence, SiblingsDiffer) {
  SeedSequence root(42);
  EXPECT_NE(root.fork("a").value(), root.fork("b").value());
  EXPECT_NE(root.fork("a", 0).value(), root.fork("a", 1).value());
  EXPECT_NE(root.fork("a").value(), root.fork("a", 0).value());
}

TEST(SeedSequence, DifferentMastersDiffer) {
  EXPECT_NE(SeedSequence(1).fork("x").value(),
            SeedSequence(2).fork("x").value());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(SeedSequence(5));
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(SeedSequence(6));
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform(-3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(SeedSequence(7));
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(SeedSequence(8));
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(Rng, UniformIndexOneAlwaysZero) {
  Rng rng(SeedSequence(9));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, UniformIndexZeroThrows) {
  Rng rng(SeedSequence(10));
  EXPECT_THROW(rng.uniform_index(0), InternalError);
}

TEST(Rng, NormalMoments) {
  Rng rng(SeedSequence(11));
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(SeedSequence(12));
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, TruncatedNormalRespectsBounds) {
  Rng rng(SeedSequence(13));
  for (int i = 0; i < 20000; ++i) {
    double x = rng.truncated_normal(1.0, 0.2, 0.7, 1.3);
    ASSERT_GE(x, 0.7);
    ASSERT_LE(x, 1.3);
  }
}

TEST(Rng, TruncatedNormalPathologicalMeanTerminates) {
  Rng rng(SeedSequence(14));
  // Mean far outside the window: must clamp, not loop forever.
  double x = rng.truncated_normal(100.0, 0.1, 0.0, 1.0);
  EXPECT_GE(x, 0.0);
  EXPECT_LE(x, 1.0);
}

TEST(Rng, TruncatedNormalBadBoundsThrow) {
  Rng rng(SeedSequence(15));
  EXPECT_THROW(rng.truncated_normal(0, 1, 2.0, 1.0), InternalError);
}

TEST(Rng, LognormalMedianApproximatelyMedian) {
  Rng rng(SeedSequence(16));
  std::vector<double> xs;
  for (int i = 0; i < 50001; ++i) xs.push_back(rng.lognormal_median(5.0, 0.3));
  std::nth_element(xs.begin(), xs.begin() + 25000, xs.end());
  EXPECT_NEAR(xs[25000], 5.0, 0.1);
}

TEST(Rng, LognormalPositive) {
  Rng rng(SeedSequence(17));
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.lognormal_median(2.0, 1.0), 0.0);
}

TEST(Rng, LognormalRequiresPositiveMedian) {
  Rng rng(SeedSequence(18));
  EXPECT_THROW(rng.lognormal_median(0.0, 1.0), InternalError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(SeedSequence(19));
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleEmptyAndSingleton) {
  Rng rng(SeedSequence(20));
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

// Property sweep: the same seed always reproduces the same stream across all
// distribution helpers.
class RngDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngDeterminism, AllDistributionsReproducible) {
  Rng a{SeedSequence(GetParam())};
  Rng b{SeedSequence(GetParam())};
  for (int i = 0; i < 200; ++i) {
    ASSERT_DOUBLE_EQ(a.uniform(), b.uniform());
    ASSERT_DOUBLE_EQ(a.normal(), b.normal());
    ASSERT_EQ(a.uniform_index(97), b.uniform_index(97));
    ASSERT_DOUBLE_EQ(a.truncated_normal(1, 0.1, 0.5, 1.5),
                     b.truncated_normal(1, 0.1, 0.5, 1.5));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngDeterminism,
                         ::testing::Values(0, 1, 42, 1234567, 0xdeadbeef,
                                           ~std::uint64_t{0}));

}  // namespace
}  // namespace vapb::util
