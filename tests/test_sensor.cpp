#include "hw/sensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/summary.hpp"
#include "util/error.hpp"

namespace vapb::hw {
namespace {

TEST(SensorSpec, TableOneContents) {
  // Paper Table 1: technique, reported kind, granularity, capping support.
  const SensorSpec& rapl = sensor_spec(SensorKind::kRapl);
  EXPECT_EQ(rapl.name, "RAPL");
  EXPECT_EQ(rapl.reported, "Average");
  EXPECT_DOUBLE_EQ(rapl.sample_interval_s, 1e-3);
  EXPECT_TRUE(rapl.supports_capping);

  const SensorSpec& pi = sensor_spec(SensorKind::kPowerInsight);
  EXPECT_EQ(pi.reported, "Instantaneous");
  EXPECT_DOUBLE_EQ(pi.sample_interval_s, 1e-3);
  EXPECT_FALSE(pi.supports_capping);

  const SensorSpec& emon = sensor_spec(SensorKind::kBgqEmon);
  EXPECT_EQ(emon.reported, "Instantaneous");
  EXPECT_DOUBLE_EQ(emon.sample_interval_s, 0.3);
  EXPECT_FALSE(emon.supports_capping);
}

TEST(SensorSpec, AllSpecsListsThree) {
  EXPECT_EQ(all_sensor_specs().size(), 3u);
}

TEST(Sensor, SamplesArePositiveAndNearTruth) {
  Sensor s(SensorKind::kPowerInsight, util::SeedSequence(1), 0.01);
  for (int i = 0; i < 1000; ++i) {
    double x = s.sample_w(100.0);
    ASSERT_GT(x, 0.0);
    ASSERT_NEAR(x, 100.0, 10.0);
  }
}

TEST(Sensor, AverageConvergesToTruth) {
  Sensor s(SensorKind::kRapl, util::SeedSequence(2), 0.01);
  double avg = s.measure_avg_w(100.0, 1.0);  // 1000 samples
  EXPECT_NEAR(avg, 100.0, 0.1);
}

TEST(Sensor, LongMeasurementTighterThanShort) {
  // Statistical property: across many trials, long windows have smaller
  // spread around truth.
  double short_err = 0, long_err = 0;
  for (int t = 0; t < 30; ++t) {
    Sensor a(SensorKind::kBgqEmon, util::SeedSequence(100 + t), 0.02);
    Sensor b(SensorKind::kBgqEmon, util::SeedSequence(200 + t), 0.02);
    short_err += std::abs(a.measure_avg_w(50.0, 0.6) - 50.0);
    long_err += std::abs(b.measure_avg_w(50.0, 60.0) - 50.0);
  }
  EXPECT_LT(long_err, short_err);
}

TEST(Sensor, RaplAveragesAwayWorkloadNoise) {
  // With instrument noise tiny, RAPL (averaging) should track truth much
  // tighter per sample than PowerInsight (instantaneous) under a noisy load.
  Sensor rapl(SensorKind::kRapl, util::SeedSequence(3), 0.10);
  Sensor pi(SensorKind::kPowerInsight, util::SeedSequence(3), 0.10);
  stats::Accumulator ra, pa;
  for (int i = 0; i < 2000; ++i) {
    ra.add(rapl.sample_w(100.0));
    pa.add(pi.sample_w(100.0));
  }
  EXPECT_LT(ra.stddev(), pa.stddev() * 0.5);
}

TEST(Sensor, SeriesLengthMatchesGranularity) {
  Sensor emon(SensorKind::kBgqEmon, util::SeedSequence(4));
  EXPECT_EQ(emon.series_w(10.0, 3.0).size(), 10u);  // 300 ms samples
  Sensor pi(SensorKind::kPowerInsight, util::SeedSequence(5));
  EXPECT_EQ(pi.series_w(10.0, 0.05).size(), 50u);   // 1 ms samples
}

TEST(Sensor, ZeroTruthStaysZeroOrPositive) {
  Sensor s(SensorKind::kPowerInsight, util::SeedSequence(6), 0.5);
  for (int i = 0; i < 100; ++i) EXPECT_GE(s.sample_w(0.0), 0.0);
}

TEST(Sensor, Validation) {
  EXPECT_THROW(Sensor(SensorKind::kRapl, util::SeedSequence(1), -0.1),
               InvalidArgument);
  Sensor s(SensorKind::kRapl, util::SeedSequence(1));
  EXPECT_THROW(static_cast<void>(s.measure_avg_w(10.0, 0.0)), InvalidArgument);
  EXPECT_THROW(s.series_w(10.0, -1.0), InvalidArgument);
}

TEST(Sensor, Deterministic) {
  Sensor a(SensorKind::kPowerInsight, util::SeedSequence(7));
  Sensor b(SensorKind::kPowerInsight, util::SeedSequence(7));
  for (int i = 0; i < 100; ++i) {
    ASSERT_DOUBLE_EQ(a.sample_w(42.0), b.sample_w(42.0));
  }
}

}  // namespace
}  // namespace vapb::hw
