#include "tenancy/campaign.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/calibration_cache.hpp"
#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::tenancy {
namespace {

class TenancyCampaignFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kModules = 24;

  TenancyCampaignFixture() {
    pvt_ = core::CalibrationCache::global().pvt(
        cluster_, workloads::pvt_microbench(), cluster_.seed().fork("pvt"));
  }

  TenancyGrid small_grid() {
    TenancyGrid grid;
    grid.arrival_scales = {1.0, 0.5};
    grid.base.seed = 3;
    grid.base.budget_cm_w = 80.0;
    grid.base.jobs.push_back({"a", "MHD", 12, "", 0.0, 2});
    grid.base.jobs.push_back({"b", "*DGEMM", 12, "", 1.0, 2});
    grid.base.jobs.push_back({"c", "NPB-EP", 8, "", 2.0, 2});
    return grid;
  }

  cluster::Cluster cluster_{hw::ha8k(), util::SeedSequence(13), kModules};
  std::shared_ptr<const core::Pvt> pvt_;
};

TEST_F(TenancyCampaignFixture, ExpandCrossesScalesAndPolicies) {
  const TenancyGrid grid = small_grid();
  const std::vector<TenancyTrace> traces = TenancyCampaign::expand(grid);
  ASSERT_EQ(traces.size(), grid.point_count());
  // Arrival scale is the outer axis, policy pairs the inner.
  EXPECT_EQ(traces[0].arrival_scale, 1.0);
  EXPECT_EQ(traces[0].placement, "contiguous");
  EXPECT_EQ(traces[1].placement, "variation-aware");
  EXPECT_EQ(traces[1].partition, "water-fill");
  EXPECT_EQ(traces[2].arrival_scale, 0.5);
}

TEST_F(TenancyCampaignFixture, ExpandRejectsEmptyAxes) {
  TenancyGrid grid = small_grid();
  grid.policies.clear();
  EXPECT_THROW((void)TenancyCampaign::expand(grid), InvalidArgument);
}

TEST_F(TenancyCampaignFixture, ThreadCountNeverChangesTheResult) {
  const TenancyGrid grid = small_grid();
  const TenancyCampaignResult serial =
      TenancyCampaign(cluster_, pvt_, 1).run(grid);
  const TenancyCampaignResult pooled =
      TenancyCampaign(cluster_, pvt_, 4).run(grid);
  std::ostringstream a;
  std::ostringstream b;
  write_tenancy_campaign_json(serial, a);
  write_tenancy_campaign_json(pooled, b);
  EXPECT_EQ(a.str(), b.str());
}

TEST_F(TenancyCampaignFixture, NaivePointScoresOneAgainstItself) {
  const TenancyCampaignResult result =
      TenancyCampaign(cluster_, pvt_, 1).run(small_grid());
  const TenancyPointResult& naive =
      result.point(1.0, "contiguous", "equal-share");
  EXPECT_DOUBLE_EQ(naive.throughput_vs_naive, 1.0);
  EXPECT_DOUBLE_EQ(naive.makespan_vs_naive, 1.0);
  const TenancyPointResult& aware =
      result.point(1.0, "variation-aware", "water-fill");
  EXPECT_TRUE(std::isfinite(aware.throughput_vs_naive));
  EXPECT_GT(aware.throughput_vs_naive, 0.0);
  EXPECT_THROW((void)result.point(9.0, "contiguous", "equal-share"),
               InvalidArgument);
}

TEST_F(TenancyCampaignFixture, JsonCarriesEveryPoint) {
  const TenancyCampaignResult result =
      TenancyCampaign(cluster_, pvt_, 1).run(small_grid());
  std::ostringstream os;
  write_tenancy_campaign_json(result, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"throughput_vs_naive\""), std::string::npos);
  EXPECT_NE(json.find("\"jain_fairness\""), std::string::npos);
  EXPECT_NE(json.find("\"variation-aware\""), std::string::npos);
  std::size_t points = 0;
  for (std::size_t pos = json.find("\"trace\""); pos != std::string::npos;
       pos = json.find("\"trace\"", pos + 1)) {
    ++points;
  }
  EXPECT_EQ(points, result.points.size());
}

}  // namespace
}  // namespace vapb::tenancy
