#include "core/budget.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace vapb::core {
namespace {

using namespace util::unit_literals;
using util::Watts;

Pmt uniform_pmt(std::size_t n) {
  // 130 W module at fmax, 50 W at fmin.
  return Pmt(std::vector<PmtEntry>(n, PmtEntry{110_W, 20_W, 40_W, 10_W}),
             2.7_GHz, 1.2_GHz);
}

Pmt varied_pmt() {
  return Pmt({PmtEntry{100_W, 20_W, 40_W, 10_W},   // 120 / 50
              PmtEntry{120_W, 30_W, 50_W, 12_W},   // 150 / 62
              PmtEntry{90_W, 15_W, 35_W, 8_W}},    // 105 / 43
             2.7_GHz, 1.2_GHz);
}

TEST(Budget, AlphaMatchesEquationSix) {
  Pmt pmt = varied_pmt();
  // total_min = 155, total_max = 375.
  BudgetResult r = solve_budget(pmt, 265.0_W);
  EXPECT_NEAR(r.alpha, (265.0 - 155.0) / (375.0 - 155.0), 1e-12);
  EXPECT_TRUE(r.constrained);
  EXPECT_TRUE(r.fits_at_fmin);
}

TEST(Budget, AllocationsSumToBudgetWhenBinding) {
  Pmt pmt = varied_pmt();
  BudgetResult r = solve_budget(pmt, 265.0_W);
  EXPECT_NEAR(r.predicted_total_w.value(), 265.0, 1e-9);
}

TEST(Budget, FrequencyFollowsEquationOne) {
  Pmt pmt = uniform_pmt(4);
  BudgetResult r = solve_budget(pmt, Watts{4 * 90.0});
  EXPECT_NEAR(r.target_freq_ghz.value(), r.alpha * 1.5 + 1.2, 1e-12);
}

TEST(Budget, LooseBudgetClampsToAlphaOne) {
  Pmt pmt = uniform_pmt(4);
  BudgetResult r = solve_budget(pmt, 10000.0_W);
  EXPECT_DOUBLE_EQ(r.alpha, 1.0);
  EXPECT_FALSE(r.constrained);
  EXPECT_DOUBLE_EQ(r.target_freq_ghz.value(), 2.7);
  EXPECT_NEAR(r.predicted_total_w.value(), pmt.total_max_w().value(), 1e-9);
}

TEST(Budget, ExactFmaxBudgetIsUnconstrained) {
  Pmt pmt = uniform_pmt(2);
  BudgetResult r = solve_budget(pmt, pmt.total_max_w());
  EXPECT_DOUBLE_EQ(r.alpha, 1.0);
  EXPECT_FALSE(r.constrained);
}

TEST(Budget, ExactFminBudgetGivesAlphaZero) {
  Pmt pmt = uniform_pmt(2);
  BudgetResult r = solve_budget(pmt, pmt.total_min_w());
  EXPECT_DOUBLE_EQ(r.alpha, 0.0);
  EXPECT_TRUE(r.fits_at_fmin);
  EXPECT_DOUBLE_EQ(r.target_freq_ghz.value(), 1.2);
}

TEST(Budget, BelowFminScalesProportionally) {
  Pmt pmt = uniform_pmt(2);  // min 100 total
  BudgetResult r = solve_budget(pmt, 80.0_W);
  EXPECT_FALSE(r.fits_at_fmin);
  EXPECT_DOUBLE_EQ(r.alpha, 0.0);
  EXPECT_NEAR(r.predicted_total_w.value(), 80.0, 1e-9);
  for (const auto& a : r.allocations) {
    EXPECT_NEAR(a.module_w.value(), 40.0, 1e-9);  // 50 * 0.8
    EXPECT_NEAR(a.dram_w.value(), 8.0, 1e-9);     // 10 * 0.8
    EXPECT_NEAR(a.cpu_cap_w.value(), 32.0, 1e-9);
  }
}

TEST(Budget, StrictThrowsBelowFmin) {
  Pmt pmt = uniform_pmt(2);
  EXPECT_THROW(solve_budget_strict(pmt, 80.0_W), InfeasibleBudget);
  EXPECT_NO_THROW(solve_budget_strict(pmt, 150.0_W));
}

TEST(Budget, VariationAwareAllocationsDiffer) {
  Pmt pmt = varied_pmt();
  BudgetResult r = solve_budget(pmt, 265.0_W);
  // Hungrier module gets more power (entry 1 dominates entry 2).
  EXPECT_GT(r.allocations[1].module_w, r.allocations[0].module_w);
  EXPECT_GT(r.allocations[0].module_w, r.allocations[2].module_w);
}

TEST(Budget, EquationSevenPerModule) {
  Pmt pmt = varied_pmt();
  BudgetResult r = solve_budget(pmt, 265.0_W);
  for (std::size_t k = 0; k < pmt.size(); ++k) {
    EXPECT_NEAR(r.allocations[k].module_w.value(),
                pmt.entry(k).module_at(r.alpha).value(), 1e-9);
    EXPECT_NEAR(
        r.allocations[k].cpu_cap_w.value() + r.allocations[k].dram_w.value(),
        r.allocations[k].module_w.value(), 1e-12);
  }
}

TEST(Budget, DegeneratePmtHandled) {
  // fmax power == fmin power: alpha degenerates.
  Pmt flat({PmtEntry{50_W, 10_W, 50_W, 10_W}}, 2.7_GHz, 1.2_GHz);
  BudgetResult loose = solve_budget(flat, 100.0_W);
  EXPECT_DOUBLE_EQ(loose.alpha, 1.0);
  BudgetResult tight = solve_budget(flat, 30.0_W);
  EXPECT_DOUBLE_EQ(tight.alpha, 0.0);
  EXPECT_FALSE(tight.fits_at_fmin);
}

TEST(Budget, NonPositiveBudgetThrows) {
  Pmt pmt = uniform_pmt(1);
  EXPECT_THROW(solve_budget(pmt, 0.0_W), InvalidArgument);
  EXPECT_THROW(solve_budget(pmt, Watts{-10.0}), InvalidArgument);
}

// Property sweep: for any binding budget, the predicted total never exceeds
// the budget and alpha stays in [0, 1].
class BudgetSweep : public ::testing::TestWithParam<double> {};

TEST_P(BudgetSweep, PredictedTotalNeverExceedsBudget) {
  Pmt pmt = varied_pmt();
  BudgetResult r = solve_budget(pmt, Watts{GetParam()});
  EXPECT_GE(r.alpha, 0.0);
  EXPECT_LE(r.alpha, 1.0);
  EXPECT_LE(r.predicted_total_w.value(),
            std::max(GetParam(), pmt.total_max_w().value()) + 1e-9);
  if (r.constrained) {
    EXPECT_LE(r.predicted_total_w.value(), GetParam() + 1e-9);
  }
  // Frequency always within the ladder.
  EXPECT_GE(r.target_freq_ghz.value(), 1.2 - 1e-12);
  EXPECT_LE(r.target_freq_ghz.value(), 2.7 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweep,
                         ::testing::Values(50.0, 120.0, 155.0, 156.0, 200.0,
                                           265.0, 374.0, 375.0, 376.0, 500.0));

}  // namespace
}  // namespace vapb::core
