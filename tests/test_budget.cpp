#include "core/budget.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace vapb::core {
namespace {

Pmt uniform_pmt(std::size_t n) {
  // 130 W module at fmax, 50 W at fmin.
  return Pmt(std::vector<PmtEntry>(n, PmtEntry{110, 20, 40, 10}), 2.7, 1.2);
}

Pmt varied_pmt() {
  return Pmt({PmtEntry{100, 20, 40, 10},    // 120 / 50
              PmtEntry{120, 30, 50, 12},    // 150 / 62
              PmtEntry{90, 15, 35, 8}},     // 105 / 43
             2.7, 1.2);
}

TEST(Budget, AlphaMatchesEquationSix) {
  Pmt pmt = varied_pmt();
  // total_min = 155, total_max = 375.
  BudgetResult r = solve_budget(pmt, 265.0);
  EXPECT_NEAR(r.alpha, (265.0 - 155.0) / (375.0 - 155.0), 1e-12);
  EXPECT_TRUE(r.constrained);
  EXPECT_TRUE(r.fits_at_fmin);
}

TEST(Budget, AllocationsSumToBudgetWhenBinding) {
  Pmt pmt = varied_pmt();
  BudgetResult r = solve_budget(pmt, 265.0);
  EXPECT_NEAR(r.predicted_total_w, 265.0, 1e-9);
}

TEST(Budget, FrequencyFollowsEquationOne) {
  Pmt pmt = uniform_pmt(4);
  BudgetResult r = solve_budget(pmt, 4 * 90.0);
  EXPECT_NEAR(r.target_freq_ghz, r.alpha * 1.5 + 1.2, 1e-12);
}

TEST(Budget, LooseBudgetClampsToAlphaOne) {
  Pmt pmt = uniform_pmt(4);
  BudgetResult r = solve_budget(pmt, 10000.0);
  EXPECT_DOUBLE_EQ(r.alpha, 1.0);
  EXPECT_FALSE(r.constrained);
  EXPECT_DOUBLE_EQ(r.target_freq_ghz, 2.7);
  EXPECT_NEAR(r.predicted_total_w, pmt.total_max_w(), 1e-9);
}

TEST(Budget, ExactFmaxBudgetIsUnconstrained) {
  Pmt pmt = uniform_pmt(2);
  BudgetResult r = solve_budget(pmt, pmt.total_max_w());
  EXPECT_DOUBLE_EQ(r.alpha, 1.0);
  EXPECT_FALSE(r.constrained);
}

TEST(Budget, ExactFminBudgetGivesAlphaZero) {
  Pmt pmt = uniform_pmt(2);
  BudgetResult r = solve_budget(pmt, pmt.total_min_w());
  EXPECT_DOUBLE_EQ(r.alpha, 0.0);
  EXPECT_TRUE(r.fits_at_fmin);
  EXPECT_DOUBLE_EQ(r.target_freq_ghz, 1.2);
}

TEST(Budget, BelowFminScalesProportionally) {
  Pmt pmt = uniform_pmt(2);  // min 100 total
  BudgetResult r = solve_budget(pmt, 80.0);
  EXPECT_FALSE(r.fits_at_fmin);
  EXPECT_DOUBLE_EQ(r.alpha, 0.0);
  EXPECT_NEAR(r.predicted_total_w, 80.0, 1e-9);
  for (const auto& a : r.allocations) {
    EXPECT_NEAR(a.module_w, 40.0, 1e-9);  // 50 * 0.8
    EXPECT_NEAR(a.dram_w, 8.0, 1e-9);     // 10 * 0.8
    EXPECT_NEAR(a.cpu_cap_w, 32.0, 1e-9);
  }
}

TEST(Budget, StrictThrowsBelowFmin) {
  Pmt pmt = uniform_pmt(2);
  EXPECT_THROW(solve_budget_strict(pmt, 80.0), InfeasibleBudget);
  EXPECT_NO_THROW(solve_budget_strict(pmt, 150.0));
}

TEST(Budget, VariationAwareAllocationsDiffer) {
  Pmt pmt = varied_pmt();
  BudgetResult r = solve_budget(pmt, 265.0);
  // Hungrier module gets more power (entry 1 dominates entry 2).
  EXPECT_GT(r.allocations[1].module_w, r.allocations[0].module_w);
  EXPECT_GT(r.allocations[0].module_w, r.allocations[2].module_w);
}

TEST(Budget, EquationSevenPerModule) {
  Pmt pmt = varied_pmt();
  BudgetResult r = solve_budget(pmt, 265.0);
  for (std::size_t k = 0; k < pmt.size(); ++k) {
    EXPECT_NEAR(r.allocations[k].module_w, pmt.entry(k).module_at(r.alpha),
                1e-9);
    EXPECT_NEAR(r.allocations[k].cpu_cap_w + r.allocations[k].dram_w,
                r.allocations[k].module_w, 1e-12);
  }
}

TEST(Budget, DegeneratePmtHandled) {
  // fmax power == fmin power: alpha degenerates.
  Pmt flat({PmtEntry{50, 10, 50, 10}}, 2.7, 1.2);
  BudgetResult loose = solve_budget(flat, 100.0);
  EXPECT_DOUBLE_EQ(loose.alpha, 1.0);
  BudgetResult tight = solve_budget(flat, 30.0);
  EXPECT_DOUBLE_EQ(tight.alpha, 0.0);
  EXPECT_FALSE(tight.fits_at_fmin);
}

TEST(Budget, NonPositiveBudgetThrows) {
  Pmt pmt = uniform_pmt(1);
  EXPECT_THROW(solve_budget(pmt, 0.0), InvalidArgument);
  EXPECT_THROW(solve_budget(pmt, -10.0), InvalidArgument);
}

// Property sweep: for any binding budget, the predicted total never exceeds
// the budget and alpha stays in [0, 1].
class BudgetSweep : public ::testing::TestWithParam<double> {};

TEST_P(BudgetSweep, PredictedTotalNeverExceedsBudget) {
  Pmt pmt = varied_pmt();
  BudgetResult r = solve_budget(pmt, GetParam());
  EXPECT_GE(r.alpha, 0.0);
  EXPECT_LE(r.alpha, 1.0);
  EXPECT_LE(r.predicted_total_w,
            std::max(GetParam(), pmt.total_max_w()) + 1e-9);
  if (r.constrained) {
    EXPECT_LE(r.predicted_total_w, GetParam() + 1e-9);
  }
  // Frequency always within the ladder.
  EXPECT_GE(r.target_freq_ghz, 1.2 - 1e-12);
  EXPECT_LE(r.target_freq_ghz, 2.7 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweep,
                         ::testing::Values(50.0, 120.0, 155.0, 156.0, 200.0,
                                           265.0, 374.0, 375.0, 376.0, 500.0));

}  // namespace
}  // namespace vapb::core
