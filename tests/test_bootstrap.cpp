#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace vapb::stats {
namespace {

std::vector<double> normal_sample(std::size_t n, double mean, double sd,
                                  std::uint64_t seed) {
  util::Rng rng{util::SeedSequence(seed)};
  std::vector<double> v(n);
  for (double& x : v) x = rng.normal(mean, sd);
  return v;
}

TEST(Bootstrap, PointEstimateIsSampleMean) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  util::Rng rng{util::SeedSequence(1)};
  BootstrapCi ci = bootstrap_mean_ci(v, 0.95, 500, rng);
  EXPECT_DOUBLE_EQ(ci.point, 2.5);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
}

TEST(Bootstrap, CiCoversTrueMeanForWellBehavedSample) {
  auto v = normal_sample(400, 10.0, 2.0, 2);
  util::Rng rng{util::SeedSequence(3)};
  BootstrapCi ci = bootstrap_mean_ci(v, 0.99, 2000, rng);
  EXPECT_LT(ci.lo, 10.0);
  EXPECT_GT(ci.hi, 10.0);
  // Width is roughly 2 * z * sd/sqrt(n) ~ 0.5 at 99%.
  EXPECT_LT(ci.hi - ci.lo, 1.0);
}

TEST(Bootstrap, WiderSampleGivesWiderCi) {
  auto narrow = normal_sample(200, 5.0, 0.5, 4);
  auto wide = normal_sample(200, 5.0, 3.0, 5);
  util::Rng r1{util::SeedSequence(6)}, r2{util::SeedSequence(6)};
  BootstrapCi cn = bootstrap_mean_ci(narrow, 0.95, 1000, r1);
  BootstrapCi cw = bootstrap_mean_ci(wide, 0.95, 1000, r2);
  EXPECT_LT(cn.hi - cn.lo, cw.hi - cw.lo);
}

TEST(Bootstrap, MoreDataTightensCi) {
  auto small = normal_sample(50, 5.0, 2.0, 7);
  auto large = normal_sample(5000, 5.0, 2.0, 8);
  util::Rng r1{util::SeedSequence(9)}, r2{util::SeedSequence(9)};
  BootstrapCi cs = bootstrap_mean_ci(small, 0.95, 1000, r1);
  BootstrapCi cl = bootstrap_mean_ci(large, 0.95, 1000, r2);
  EXPECT_GT(cs.hi - cs.lo, (cl.hi - cl.lo) * 3.0);
}

TEST(Bootstrap, GeomeanOfRatios) {
  std::vector<double> speedups{1.0, 2.0, 4.0};
  util::Rng rng{util::SeedSequence(10)};
  BootstrapCi ci = bootstrap_geomean_ci(speedups, 0.95, 500, rng);
  EXPECT_NEAR(ci.point, 2.0, 1e-12);  // (1*2*4)^(1/3)
}

TEST(Bootstrap, GeomeanRejectsNonPositive) {
  std::vector<double> bad{1.0, 0.0};
  util::Rng rng{util::SeedSequence(11)};
  EXPECT_THROW(bootstrap_geomean_ci(bad, 0.95, 100, rng), InvalidArgument);
}

TEST(Bootstrap, DeterministicGivenRng) {
  std::vector<double> v{3.0, 1.0, 4.0, 1.0, 5.0};
  util::Rng a{util::SeedSequence(12)}, b{util::SeedSequence(12)};
  BootstrapCi ca = bootstrap_mean_ci(v, 0.9, 300, a);
  BootstrapCi cb = bootstrap_mean_ci(v, 0.9, 300, b);
  EXPECT_DOUBLE_EQ(ca.lo, cb.lo);
  EXPECT_DOUBLE_EQ(ca.hi, cb.hi);
}

TEST(Bootstrap, Validation) {
  util::Rng rng{util::SeedSequence(13)};
  std::vector<double> v{1.0};
  EXPECT_THROW(bootstrap_mean_ci({}, 0.95, 100, rng), InvalidArgument);
  EXPECT_THROW(bootstrap_mean_ci(v, 0.0, 100, rng), InvalidArgument);
  EXPECT_THROW(bootstrap_mean_ci(v, 1.0, 100, rng), InvalidArgument);
  EXPECT_THROW(bootstrap_mean_ci(v, 0.95, 0, rng), InvalidArgument);
}

}  // namespace
}  // namespace vapb::stats
