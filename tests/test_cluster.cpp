#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include "stats/summary.hpp"
#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::cluster {
namespace {

TEST(Cluster, DefaultSizeMatchesArch) {
  Cluster c(hw::teller(), util::SeedSequence(1));
  EXPECT_EQ(c.size(), 104u);
}

TEST(Cluster, SizeOverride) {
  Cluster c(hw::ha8k(), util::SeedSequence(1), 64);
  EXPECT_EQ(c.size(), 64u);
}

TEST(Cluster, ModuleIdsAreDense) {
  Cluster c(hw::ha8k(), util::SeedSequence(1), 16);
  for (hw::ModuleId i = 0; i < 16; ++i) {
    EXPECT_EQ(c.module(i).id(), i);
  }
}

TEST(Cluster, OutOfRangeThrows) {
  Cluster c(hw::ha8k(), util::SeedSequence(1), 4);
  EXPECT_THROW(static_cast<void>(c.module(4)), InvalidArgument);
  EXPECT_THROW(static_cast<void>(c.module(10000)), InvalidArgument);
}

TEST(Cluster, SameSeedSameSilicon) {
  Cluster a(hw::ha8k(), util::SeedSequence(9), 32);
  Cluster b(hw::ha8k(), util::SeedSequence(9), 32);
  for (hw::ModuleId i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(a.module(i).variation().cpu_dyn,
                     b.module(i).variation().cpu_dyn);
    EXPECT_DOUBLE_EQ(a.module(i).variation().dram,
                     b.module(i).variation().dram);
  }
}

TEST(Cluster, DifferentSeedDifferentSilicon) {
  Cluster a(hw::ha8k(), util::SeedSequence(1), 8);
  Cluster b(hw::ha8k(), util::SeedSequence(2), 8);
  bool any_diff = false;
  for (hw::ModuleId i = 0; i < 8; ++i) {
    any_diff |= a.module(i).variation().cpu_dyn !=
                b.module(i).variation().cpu_dyn;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Cluster, GrowingClusterKeepsExistingModules) {
  // Module k's silicon depends only on (seed, k), not on fleet size.
  Cluster small(hw::ha8k(), util::SeedSequence(3), 8);
  Cluster big(hw::ha8k(), util::SeedSequence(3), 64);
  for (hw::ModuleId i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(small.module(i).variation().cpu_dyn,
                     big.module(i).variation().cpu_dyn);
  }
}

TEST(Cluster, FleetPowerSpreadMatchesPaperBand) {
  // Uncapped *DGEMM module power spread on HA8K is in the paper's 1.2-1.5
  // worst-case band for a decent fleet size.
  Cluster c(hw::ha8k(), util::SeedSequence(4), 512);
  const auto& p = workloads::dgemm().profile;
  std::vector<double> powers;
  for (const auto& m : c.modules()) {
    powers.push_back(m.module_power_w(p, 2.7));
  }
  auto s = stats::summarize(powers);
  EXPECT_GT(s.max / s.min, 1.18);
  EXPECT_LT(s.max / s.min, 1.55);
  EXPECT_NEAR(s.mean, 113.0, 4.0);  // ~112.8 W in Figure 2
}

TEST(Cluster, ZeroModulesRejected) {
  hw::ArchSpec spec = hw::ha8k();
  spec.total_nodes = 0;
  EXPECT_THROW(Cluster(spec, util::SeedSequence(1)), InternalError);
}

TEST(Cluster, ModulesInheritArchLadderAndTdp) {
  Cluster c(hw::cab(), util::SeedSequence(5), 4);
  EXPECT_DOUBLE_EQ(c.module(0).ladder().fmax(), 2.6);
  EXPECT_DOUBLE_EQ(c.module(0).tdp_cpu_w(), 115.0);
}

}  // namespace
}  // namespace vapb::cluster
