#include "workloads/catalog.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <set>

#include "util/error.hpp"

namespace vapb::workloads {
namespace {

std::vector<const Workload*> everything() {
  auto v = evaluation_suite();
  v.push_back(&ep());
  v.push_back(&pvt_microbench());
  v.push_back(&pvt_microbench_compute());
  v.push_back(&pvt_microbench_mixed());
  return v;
}

TEST(Catalog, EvaluationSuiteHasSixBenchmarks) {
  auto suite = evaluation_suite();
  ASSERT_EQ(suite.size(), 6u);  // Figure 7 has six panels
  std::set<std::string> names;
  for (auto* w : suite) names.insert(w->name);
  EXPECT_TRUE(names.count("*DGEMM"));
  EXPECT_TRUE(names.count("*STREAM"));
  EXPECT_TRUE(names.count("MHD"));
  EXPECT_TRUE(names.count("NPB-BT"));
  EXPECT_TRUE(names.count("NPB-SP"));
  EXPECT_TRUE(names.count("mVMC"));
}

TEST(Catalog, NamesAreUnique) {
  std::set<std::string> names;
  for (auto* w : everything()) {
    EXPECT_TRUE(names.insert(w->name).second) << "duplicate: " << w->name;
  }
}

TEST(Catalog, ByNameRoundTrips) {
  for (auto* w : everything()) {
    EXPECT_EQ(&by_name(w->name), w);
  }
}

TEST(Catalog, ByNameUnknownThrows) {
  EXPECT_THROW(by_name("HPL"), InvalidArgument);
}

class CatalogInvariants : public ::testing::TestWithParam<const Workload*> {};

TEST_P(CatalogInvariants, PhysicallySensibleParameters) {
  const Workload& w = *GetParam();
  EXPECT_FALSE(w.name.empty());
  EXPECT_EQ(w.profile.name, w.name);
  EXPECT_GE(w.profile.cpu_static_w, 0.0);
  EXPECT_GT(w.profile.cpu_dyn_w_per_ghz, 0.0);
  EXPECT_GE(w.profile.dram_static_w, 0.0);
  EXPECT_GE(w.profile.dram_dyn_w_per_ghz, 0.0);
  EXPECT_GT(w.profile.cpu_sensitivity, 0.0);
  EXPECT_GE(w.profile.idiosyncrasy_sd, 0.0);
  EXPECT_GT(w.iter_seconds_nominal, 0.0);
  EXPECT_GE(w.cpu_fraction, 0.0);
  EXPECT_LE(w.cpu_fraction, 1.0);
  EXPECT_GT(w.nominal_freq_ghz, 0.0);
  EXPECT_GT(w.default_iterations, 0);
  EXPECT_GE(w.runtime_noise_frac, 0.0);
  EXPECT_GE(w.per_rank_noise_frac, 0.0);
}

TEST_P(CatalogInvariants, IterationTimeDecreasesWithFrequency) {
  const Workload& w = *GetParam();
  double prev = w.iter_seconds_at(1.2);
  for (double f = 1.3; f <= 2.7; f += 0.1) {
    double t = w.iter_seconds_at(f);
    EXPECT_LE(t, prev + 1e-12) << w.name << " at " << f;
    prev = t;
  }
}

TEST_P(CatalogInvariants, NominalFrequencyGivesNominalTime) {
  const Workload& w = *GetParam();
  EXPECT_NEAR(w.iter_seconds_at(w.nominal_freq_ghz), w.iter_seconds_nominal,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(All, CatalogInvariants,
                         ::testing::ValuesIn(everything()),
                         [](const auto& info) {
                           std::string n = info.param->name;
                           for (char& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return n;
                         });

TEST(Workload, ThrottledOperatingPointStretchesWholeIteration) {
  const Workload& w = mhd();
  hw::OperatingPoint normal;
  normal.freq_ghz = 1.2;
  normal.perf_freq_ghz = 1.2;
  hw::OperatingPoint throttled = normal;
  throttled.throttled = true;
  throttled.duty = 0.5;
  throttled.perf_freq_ghz = 0.3;
  // 1.2 / 0.3 = 4x the fmin-iteration time.
  EXPECT_NEAR(w.iter_seconds(throttled), w.iter_seconds(normal) * 4.0, 1e-9);
}

TEST(Workload, MemoryBoundWorkloadLessFrequencySensitive) {
  // STREAM (cpu_fraction 0.45) slows down less from fmax->fmin than DGEMM.
  double dgemm_ratio = dgemm().iter_seconds_at(1.2) / dgemm().iter_seconds_at(2.7);
  double stream_ratio =
      stream().iter_seconds_at(1.2) / stream().iter_seconds_at(2.7);
  EXPECT_GT(dgemm_ratio, stream_ratio * 1.3);
}

TEST(Workload, DgemmPowerMatchesPaperFigure2) {
  // ~100.8 W CPU and ~12.0 W DRAM at 2.7 GHz on the average module.
  EXPECT_NEAR(dgemm().profile.cpu_w(2.7), 100.8, 1.5);
  EXPECT_NEAR(dgemm().profile.dram_w(2.7), 12.0, 0.5);
}

TEST(Workload, MhdPowerMatchesPaperFigure2) {
  EXPECT_NEAR(mhd().profile.cpu_w(2.7), 83.9, 1.5);
  EXPECT_NEAR(mhd().profile.dram_w(2.7), 12.6, 0.5);
}

TEST(Workload, StreamIsTheDramHeavyBenchmark) {
  for (auto* w : evaluation_suite()) {
    if (w->name == "*STREAM") continue;
    EXPECT_GT(stream().profile.dram_w(2.7), w->profile.dram_w(2.7) * 1.8)
        << w->name;
  }
}

TEST(Workload, PvtMicrobenchHasUnitSensitivity) {
  for (auto* m : {&pvt_microbench(), &pvt_microbench_compute(),
                  &pvt_microbench_mixed()}) {
    EXPECT_DOUBLE_EQ(m->profile.cpu_sensitivity, 1.0) << m->name;
    EXPECT_DOUBLE_EQ(m->profile.dram_sensitivity, 1.0) << m->name;
    EXPECT_DOUBLE_EQ(m->profile.idiosyncrasy_sd, 0.0) << m->name;
  }
}

TEST(Workload, BtHasTheLargestIdiosyncrasy) {
  for (auto* w : evaluation_suite()) {
    if (w->name == "NPB-BT") continue;
    EXPECT_GT(bt().profile.idiosyncrasy_sd, w->profile.idiosyncrasy_sd)
        << w->name;
  }
}

TEST(Workload, IterSecondsValidation) {
  EXPECT_THROW(dgemm().iter_seconds_at(0.0), InternalError);
  hw::OperatingPoint bad;
  bad.perf_freq_ghz = 0.0;
  EXPECT_THROW(dgemm().iter_seconds(bad), InternalError);
}

}  // namespace
}  // namespace vapb::workloads
