// Tests for the vapb-lint driver layer: deterministic file collection,
// parallel runs, baseline filtering, the JSON/SARIF serializers, and the
// self-check over the analyzer's own sources plus a generated worst-case
// tree (budgeted by the lint_selfcheck ctest timeout).
#include "driver.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace vapb::lint {
namespace {

namespace fs = std::filesystem;

class TempTree : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("vapb_lint_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

 public:
  std::string write(const std::string& rel, const std::string& content) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p, std::ios::binary);
    out << content;
    return p.string();
  }

  fs::path root_;
};

using CollectFiles = TempTree;
using RunLint = TempTree;
using SelfCheck = TempTree;

TEST_F(CollectFiles, SortsSiblingsBeforeRecursing) {
  // Sorted-before-recursion order differs from a global path sort: '-' < '/'
  // in ASCII, so a flat sort would put "a-b.cpp" before "a/k.cpp". Pinning
  // the traversal keeps reports byte-stable across filesystems.
  write("b.cpp", "int b;\n");
  write("a/z.cpp", "int z;\n");
  write("a/k.cpp", "int k;\n");
  write("a-b.cpp", "int ab;\n");
  std::string error;
  std::vector<std::string> files = collect_files({root_.string()}, error);
  EXPECT_TRUE(error.empty());
  ASSERT_EQ(files.size(), 4u);
  EXPECT_EQ(fs::path(files[0]).filename(), "k.cpp");
  EXPECT_EQ(fs::path(files[1]).filename(), "z.cpp");
  EXPECT_EQ(fs::path(files[2]).filename(), "a-b.cpp");
  EXPECT_EQ(fs::path(files[3]).filename(), "b.cpp");
}

TEST_F(CollectFiles, SkipsFixtureBuildAndVcsDirsButHonorsExplicitFiles) {
  write("src/real.cpp", "int r;\n");
  const std::string fixture =
      write("lint_fixtures/planted.cpp", "int p;\n");
  write("build/generated.cpp", "int g;\n");
  write(".git/objects/fake.cpp", "int f;\n");
  std::string error;
  std::vector<std::string> files = collect_files({root_.string()}, error);
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(fs::path(files[0]).filename(), "real.cpp");
  // Naming a file inside a skipped directory still lints it.
  files = collect_files({fixture}, error);
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(fs::path(files[0]).filename(), "planted.cpp");
}

TEST_F(CollectFiles, DeduplicatesOverlappingInputs) {
  const std::string f = write("src/one.cpp", "int o;\n");
  std::string error;
  std::vector<std::string> files =
      collect_files({f, root_.string(), f}, error);
  EXPECT_EQ(files.size(), 1u);
}

TEST_F(CollectFiles, MissingPathIsAnError) {
  std::string error;
  std::vector<std::string> files =
      collect_files({(root_ / "no_such").string()}, error);
  EXPECT_TRUE(files.empty());
  EXPECT_FALSE(error.empty());
}

// A small tree with one token finding and one cross-file semantic finding.
void plant_findings(TempTree& t) {
  t.write("src/core/draw.cpp",
          "namespace fix {\n"
          "double draw() { return static_cast<double>(std::rand()); }\n"
          "}  // namespace fix\n");
  t.write("src/core/sink.cpp",
          "namespace fix {\n"
          "double draw();\n"
          "RunMetrics make() {\n"
          "  RunMetrics m;\n"
          "  draw();\n"
          "  return m;\n"
          "}\n"
          "}  // namespace fix\n");
}

TEST_F(RunLint, ThreadCountDoesNotChangeTheReport) {
  plant_findings(*this);
  LintOptions opts;
  opts.paths = {root_.string()};
  const LintRun serial = run_lint(opts);
  opts.jobs = 4;
  const LintRun parallel = run_lint(opts);
  ASSERT_EQ(serial.exit_code, 1);
  ASSERT_EQ(parallel.exit_code, 1);
  ASSERT_EQ(serial.violations.size(), parallel.violations.size());
  for (std::size_t i = 0; i < serial.violations.size(); ++i) {
    EXPECT_EQ(serial.violations[i].file, parallel.violations[i].file);
    EXPECT_EQ(serial.violations[i].line, parallel.violations[i].line);
    EXPECT_EQ(serial.violations[i].rule, parallel.violations[i].rule);
    EXPECT_EQ(serial.violations[i].message, parallel.violations[i].message);
  }
  EXPECT_EQ(to_json(serial.violations), to_json(parallel.violations));
  EXPECT_EQ(to_sarif(serial.violations), to_sarif(parallel.violations));
}

TEST_F(RunLint, FindsCrossTuTaintEndToEnd) {
  plant_findings(*this);
  LintOptions opts;
  opts.paths = {root_.string()};
  const LintRun run = run_lint(opts);
  bool taint = false;
  for (const Violation& v : run.violations) {
    taint = taint || v.rule == "determinism-taint";
  }
  EXPECT_TRUE(taint);
}

TEST_F(RunLint, BaselineRoundTripsAndFilters) {
  plant_findings(*this);
  const std::string baseline = (root_ / "baseline.txt").string();
  LintOptions opts;
  opts.paths = {(root_ / "src").string()};
  opts.write_baseline = baseline;
  const LintRun wrote = run_lint(opts);
  // Writing a baseline is itself a successful operation (exit 0), but the
  // findings it grandfathered are still reported back to the caller.
  ASSERT_EQ(wrote.exit_code, 0);
  ASSERT_FALSE(wrote.violations.empty());
  {
    std::ifstream in(baseline);
    ASSERT_TRUE(in.is_open());
    std::string first;
    std::getline(in, first);
    EXPECT_EQ(first.rfind('#', 0), 0u) << "baseline starts with a comment";
  }
  // With the baseline applied the same tree is clean, exit code 0.
  LintOptions filtered;
  filtered.paths = opts.paths;
  filtered.baseline = baseline;
  const LintRun clean = run_lint(filtered);
  EXPECT_EQ(clean.exit_code, 0);
  EXPECT_TRUE(clean.violations.empty());
  EXPECT_EQ(clean.baseline_filtered, wrote.violations.size());
  // A fresh finding is NOT absorbed by the stale baseline.
  write("src/core/fresh.cpp",
        "namespace fix {\n"
        "RunMetrics fresh() {\n"
        "  std::mt19937 gen;\n"
        "  return RunMetrics{};\n"
        "}\n"
        "}  // namespace fix\n");
  const LintRun dirty = run_lint(filtered);
  EXPECT_EQ(dirty.exit_code, 1);
  EXPECT_FALSE(dirty.violations.empty());
}

TEST_F(RunLint, FingerprintIgnoresLineNumbers) {
  Violation a{"src/x.cpp", 10, "determinism-taint", "msg"};
  Violation b{"src/x.cpp", 99, "determinism-taint", "msg"};
  EXPECT_EQ(baseline_fingerprint(a), baseline_fingerprint(b));
  Violation c{"src/y.cpp", 10, "determinism-taint", "msg"};
  EXPECT_NE(baseline_fingerprint(a), baseline_fingerprint(c));
}

// -- serializers ------------------------------------------------------------

TEST(LintJson, EscapesAndStructures) {
  const std::string json = to_json(
      {Violation{"src/a.cpp", 3, "unit-flow", "say \"hi\" \\ there"}});
  EXPECT_NE(json.find("\"file\": \"src/a.cpp\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("say \\\"hi\\\" \\\\ there"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  // An empty run still produces the full object shape.
  const std::string empty = to_json({});
  EXPECT_NE(empty.find("\"violations\": []"), std::string::npos) << empty;
  EXPECT_NE(empty.find("\"count\": 0"), std::string::npos);
}

// Minimal structural validation against SARIF 2.1.0: every required property
// of the minimum viable log file, plus our own invariants. (The full JSON
// schema needs a schema-validator dependency; these checks mirror its
// required-property list for the objects we emit.)
TEST(LintSarif, MeetsSarif210RequiredShape) {
  const std::vector<Violation> vs = {
      Violation{"src/a.cpp", 3, "determinism-taint", "first \"quoted\""},
      Violation{"tools/b.cpp", 7, "unit-flow", "second"}};
  const std::string s = to_sarif(vs);
  // Log-level required properties.
  EXPECT_NE(s.find("\"$schema\""), std::string::npos);
  EXPECT_NE(s.find("sarif-schema-2.1.0.json"), std::string::npos);
  EXPECT_NE(s.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(s.find("\"runs\": ["), std::string::npos);
  // runs[].tool.driver with name and rule metadata.
  EXPECT_NE(s.find("\"tool\""), std::string::npos);
  EXPECT_NE(s.find("\"driver\""), std::string::npos);
  EXPECT_NE(s.find("\"name\": \"vapb-lint\""), std::string::npos);
  EXPECT_NE(s.find("\"rules\": ["), std::string::npos);
  // Every reported ruleId must appear in the driver's rule catalog entries.
  EXPECT_NE(s.find("\"id\": \"determinism-taint\""), std::string::npos);
  EXPECT_NE(s.find("\"id\": \"unit-flow\""), std::string::npos);
  // results[] with ruleId/level/message/locations.
  EXPECT_NE(s.find("\"ruleId\": \"determinism-taint\""), std::string::npos);
  EXPECT_NE(s.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(s.find("first \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(s.find("\"uri\": \"src/a.cpp\""), std::string::npos);
  EXPECT_NE(s.find("\"uriBaseId\": \"%SRCROOT%\""), std::string::npos);
  EXPECT_NE(s.find("\"startLine\": 3"), std::string::npos);
  // Balanced braces/brackets — cheap well-formedness guard.
  long brace = 0, bracket = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++brace;
    if (c == '}') --brace;
    if (c == '[') ++bracket;
    if (c == ']') --bracket;
    EXPECT_GE(brace, 0);
    EXPECT_GE(bracket, 0);
  }
  EXPECT_EQ(brace, 0);
  EXPECT_EQ(bracket, 0);
}

TEST(LintSarif, EmptyRunIsStillAValidLog) {
  const std::string s = to_sarif({});
  EXPECT_NE(s.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(s.find("\"results\": []"), std::string::npos);
}

TEST(LintSarif, LineZeroFindingsClampToOne) {
  // region.startLine must be >= 1 per the schema; file-level findings
  // (line 0) clamp rather than emit an invalid region.
  const std::string s =
      to_sarif({Violation{"src/a.cpp", 0, "unused-include", "whole-file"}});
  EXPECT_NE(s.find("\"startLine\": 1"), std::string::npos);
  EXPECT_EQ(s.find("\"startLine\": 0"), std::string::npos);
}

// -- self-check -------------------------------------------------------------

// The analyzer's own sources must lint clean, and a generated worst-case
// tree (many same-name functions -> maximal call-graph fan-out, plus a
// seeded fraction of real findings) must complete inside the lint_selfcheck
// ctest timeout with exactly the seeded findings detected.
TEST_F(SelfCheck, OwnSourcesAndWorstCaseTreeUnderBudget) {
  LintOptions own;
  own.paths = {VAPB_LINT_SOURCE_DIR};
  const LintRun own_run = run_lint(own);
  EXPECT_EQ(own_run.exit_code, 0) << to_json(own_run.violations);
  EXPECT_GE(own_run.files_linted, 8u);

  const int kFiles = 160;
  const int kFnsPerFile = 20;
  int seeded = 0;
  for (int f = 0; f < kFiles; ++f) {
    std::string src = "namespace worst {\n";
    for (int g = 0; g < kFnsPerFile; ++g) {
      // Every file defines the same function names: name-only resolution
      // fans out to kFiles candidates per call site.
      src += "double shared_fn_" + std::to_string(g) + "(double load_w) {\n";
      src += "  return helper_" + std::to_string((g + 1) % kFnsPerFile) +
             "(load_w);\n}\n";
      src += "double helper_" + std::to_string(g) +
             "(double x) { return x; }\n";
    }
    if (f % 20 == 0) {
      src += "RunMetrics tainted() {\n"
             "  std::rand();\n"
             "  return RunMetrics{};\n"
             "}\n";
      ++seeded;
    }
    src += "}  // namespace worst\n";
    write("src/gen/file_" + std::to_string(f) + ".cpp", src);
  }
  LintOptions opts;
  opts.paths = {root_.string()};
  opts.jobs = 4;
  const LintRun run = run_lint(opts);
  EXPECT_EQ(run.files_linted, static_cast<std::size_t>(kFiles));
  int taint = 0, random = 0;
  for (const Violation& v : run.violations) {
    taint += v.rule == "determinism-taint" ? 1 : 0;
    random += v.rule == "determinism-random" ? 1 : 0;
  }
  EXPECT_EQ(taint, seeded);
  EXPECT_EQ(random, seeded);
}

}  // namespace
}  // namespace vapb::lint
