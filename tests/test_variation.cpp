#include "hw/variation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hw/arch.hpp"
#include "stats/summary.hpp"

namespace vapb::hw {
namespace {

VariationDistribution sample_dist() {
  VariationDistribution d;
  d.cpu_dyn_sd = 0.05;
  d.cpu_dyn_lo = 0.85;
  d.cpu_dyn_hi = 1.18;
  d.cpu_static_sd = 0.07;
  d.cpu_static_lo = 0.80;
  d.cpu_static_hi = 1.22;
  d.dram_sd = 0.17;
  d.dram_lo = 0.40;
  d.dram_hi = 1.55;
  return d;
}

TEST(Variation, SameModuleAlwaysSameSilicon) {
  auto d = sample_dist();
  util::SeedSequence fab(77);
  ModuleVariation a = draw_variation(d, fab, 42);
  ModuleVariation b = draw_variation(d, fab, 42);
  EXPECT_DOUBLE_EQ(a.cpu_dyn, b.cpu_dyn);
  EXPECT_DOUBLE_EQ(a.cpu_static, b.cpu_static);
  EXPECT_DOUBLE_EQ(a.dram, b.dram);
  EXPECT_DOUBLE_EQ(a.freq, b.freq);
}

TEST(Variation, DifferentModulesDiffer) {
  auto d = sample_dist();
  util::SeedSequence fab(77);
  ModuleVariation a = draw_variation(d, fab, 1);
  ModuleVariation b = draw_variation(d, fab, 2);
  EXPECT_NE(a.cpu_dyn, b.cpu_dyn);
}

TEST(Variation, ZeroSdMeansNoVariation) {
  VariationDistribution d;  // all sds zero
  ModuleVariation v = draw_variation(d, util::SeedSequence(1), 5);
  EXPECT_DOUBLE_EQ(v.cpu_dyn, 1.0);
  EXPECT_DOUBLE_EQ(v.cpu_static, 1.0);
  EXPECT_DOUBLE_EQ(v.dram, 1.0);
  EXPECT_DOUBLE_EQ(v.freq, 1.0);
}

class VariationPopulation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VariationPopulation, BoundsAndMomentsHold) {
  auto d = sample_dist();
  util::SeedSequence fab(GetParam());
  std::vector<double> dyn, stat, dram;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    ModuleVariation v = draw_variation(d, fab, i);
    ASSERT_GE(v.cpu_dyn, d.cpu_dyn_lo);
    ASSERT_LE(v.cpu_dyn, d.cpu_dyn_hi);
    ASSERT_GE(v.cpu_static, d.cpu_static_lo);
    ASSERT_LE(v.cpu_static, d.cpu_static_hi);
    ASSERT_GE(v.dram, d.dram_lo);
    ASSERT_LE(v.dram, d.dram_hi);
    EXPECT_DOUBLE_EQ(v.freq, 1.0);  // no freq variation configured
    dyn.push_back(v.cpu_dyn);
    stat.push_back(v.cpu_static);
    dram.push_back(v.dram);
  }
  EXPECT_NEAR(stats::summarize(dyn).mean, 1.0, 0.01);
  EXPECT_NEAR(stats::summarize(stat).mean, 1.0, 0.01);
  EXPECT_NEAR(stats::summarize(dram).mean, 1.0, 0.02);
  EXPECT_NEAR(stats::summarize(dyn).stddev, d.cpu_dyn_sd, 0.01);
}

INSTANTIATE_TEST_SUITE_P(FabSeeds, VariationPopulation,
                         ::testing::Values(1, 17, 999));

TEST(Variation, DynStaticCorrelationIsPositive) {
  auto d = sample_dist();
  d.cpu_dyn_static_corr = 0.7;
  util::SeedSequence fab(5);
  std::vector<double> dyn, stat;
  for (std::uint64_t i = 0; i < 4000; ++i) {
    ModuleVariation v = draw_variation(d, fab, i);
    dyn.push_back(v.cpu_dyn);
    stat.push_back(v.cpu_static);
  }
  EXPECT_GT(stats::pearson(dyn, stat), 0.5);
}

TEST(Variation, TellerFreqPowerCorrelationPositive) {
  // Teller: processors consuming more power perform better.
  VariationDistribution d = teller().variation;
  util::SeedSequence fab(6);
  std::vector<double> power, freq;
  for (std::uint64_t i = 0; i < 4000; ++i) {
    ModuleVariation v = draw_variation(d, fab, i);
    power.push_back(v.cpu_dyn);
    freq.push_back(v.freq);
  }
  EXPECT_GT(stats::pearson(power, freq), 0.3);
  EXPECT_GT(stats::summarize(freq).stddev, 0.01);  // real perf spread
}

TEST(Variation, FreqBoundsRespected) {
  VariationDistribution d = teller().variation;
  util::SeedSequence fab(7);
  for (std::uint64_t i = 0; i < 2000; ++i) {
    ModuleVariation v = draw_variation(d, fab, i);
    ASSERT_GE(v.freq, d.freq_lo);
    ASSERT_LE(v.freq, d.freq_hi);
  }
}

TEST(Variation, DifferentFabSeedsGiveDifferentFleet) {
  auto d = sample_dist();
  ModuleVariation a = draw_variation(d, util::SeedSequence(1), 0);
  ModuleVariation b = draw_variation(d, util::SeedSequence(2), 0);
  EXPECT_NE(a.cpu_dyn, b.cpu_dyn);
}

}  // namespace
}  // namespace vapb::hw
