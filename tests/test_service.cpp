// BudgetService tests: batching/dedup correctness under concurrent
// producers, bit-identity against the direct pipeline (including the
// committed 54-cell golden grid served as kRun replies), client-thread-count
// invariance, in-band error replies, the finished-reply LRU, and the
// newline-JSON codec + stream server.
#include "service/budget_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <fstream>
#include <map>
#include <numeric>
#include <sstream>
#include <thread>

#include "core/scheme_registry.hpp"
#include "service/server.hpp"
#include "workloads/catalog.hpp"

namespace vapb::service {
namespace {

constexpr std::size_t kModules = 24;
constexpr std::uint64_t kMasterSeed = 2015;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t mix(std::uint64_t h, double v) {
  return mix(h, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t mix(std::uint64_t h, bool v) {
  return mix(h, static_cast<std::uint64_t>(v));
}

std::uint64_t digest(const core::BudgetResult& b) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = mix(h, b.fits_at_fmin);
  h = mix(h, b.constrained);
  h = mix(h, b.alpha);
  h = mix(h, b.target_freq_ghz.value());
  h = mix(h, b.predicted_total_w.value());
  for (const core::ModuleBudget& a : b.allocations) {
    h = mix(h, a.module_w.value());
    h = mix(h, a.cpu_cap_w.value());
    h = mix(h, a.dram_w.value());
  }
  return h;
}

/// Local copy of test_pipeline_golden's job digest so the service-served
/// grid can be checked against the same committed file.
std::uint64_t digest(const core::CampaignJobResult& r) {
  const core::RunMetrics& m = r.metrics;
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = mix(h, static_cast<std::uint64_t>(r.cls));
  h = mix(h, m.feasible);
  h = mix(h, m.constrained);
  h = mix(h, m.alpha);
  h = mix(h, m.target_freq_ghz);
  h = mix(h, m.makespan_s);
  h = mix(h, m.total_power_w);
  h = mix(h, m.total_cpu_power_w);
  h = mix(h, m.total_dram_power_w);
  if (!std::isnan(r.speedup_vs_naive)) h = mix(h, r.speedup_vs_naive);
  for (const core::ModuleOutcome& mo : m.modules) {
    h = mix(h, std::uint64_t{mo.id});
    h = mix(h, mo.alloc_module_w);
    h = mix(h, mo.cpu_cap_w);
    h = mix(h, mo.op.freq_ghz);
    h = mix(h, mo.op.duty);
    h = mix(h, mo.op.throttled);
    h = mix(h, mo.op.cpu_w);
    h = mix(h, mo.op.dram_w);
    h = mix(h, mo.op.perf_freq_ghz);
  }
  for (double t : m.des.finish_times()) h = mix(h, t);
  for (double t : m.des.sendrecv_times()) h = mix(h, t);
  if (m.feasible && !m.modules.empty()) {
    h = mix(h, m.vp());
    h = mix(h, m.vf());
    if (!m.des.ranks.empty()) h = mix(h, m.vt_raw());
  }
  return h;
}

class ServiceFixture : public ::testing::Test {
 protected:
  ServiceFixture() {
    cluster_ = std::make_shared<const cluster::Cluster>(
        hw::ha8k(), util::SeedSequence(kMasterSeed), kModules);
    alloc_.resize(kModules);
    std::iota(alloc_.begin(), alloc_.end(), hw::ModuleId{0});
  }

  ClusterState make_state() const {
    ClusterState state;
    state.cluster = cluster_;
    state.allocation = alloc_;
    state.pvt = std::make_shared<const core::Pvt>(core::Pvt::generate(
        *cluster_, workloads::pvt_microbench(), cluster_->seed().fork("pvt")));
    return state;
  }

  ServiceConfig config(std::size_t workers = 2) const {
    ServiceConfig cfg;
    cfg.worker_threads = workers;
    cfg.run.iterations = 6;
    return cfg;
  }

  BudgetRequest solve_request(double budget_w,
                              const std::string& workload = "MHD",
                              const std::string& scheme = "VaPc") const {
    BudgetRequest req;
    req.scheme = scheme;
    req.workload = workload;
    req.budget_w = budget_w;
    req.kind = RequestKind::kSolve;
    return req;
  }

  /// The service's competitor and ground truth: the same stages run
  /// directly, no cache, no batching.
  core::BudgetResult direct_solve(const BudgetRequest& req,
                                  const ClusterState& state) const {
    const workloads::Workload& w = workloads::by_name(req.workload);
    core::SchemeDefinition def =
        core::SchemeRegistry::global().get(req.scheme);
    core::RunContext ctx;
    ctx.cluster = cluster_.get();
    ctx.allocation = alloc_;
    ctx.workload = &w;
    ctx.scheme = req.scheme;
    ctx.budget_w = req.budget_w;
    ctx.seed = core::Runner::scheme_seed(*cluster_, w, req.scheme);
    ctx.pvt = state.pvt;
    ctx.test = std::make_shared<const core::TestRunResult>(
        core::single_module_test_run(*cluster_, alloc_.front(), w,
                                     core::test_run_seed(*cluster_, w)));
    if (def.calibration) def.calibration->calibrate(ctx);
    if (def.power_model) def.power_model->model(ctx);
    def.budget_solve->solve(ctx);
    return std::move(*ctx.budget);
  }

  std::shared_ptr<const cluster::Cluster> cluster_;
  std::vector<hw::ModuleId> alloc_;
};

TEST_F(ServiceFixture, SolveMatchesDirectPipelineBitwise) {
  ClusterState state = make_state();
  BudgetService svc(config());
  svc.register_cluster(state);
  for (double cm : {110.0, 92.0, 76.0}) {
    const BudgetRequest req =
        solve_request(cm * static_cast<double>(kModules));
    ReplyPtr reply = svc.solve(req);
    ASSERT_TRUE(reply->ok) << reply->error;
    EXPECT_EQ(digest(reply->budget), digest(direct_solve(req, state)))
        << "budget " << cm;
  }
}

TEST_F(ServiceFixture, ConcurrentDuplicatesComputeExactlyOnce) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 16;
  BudgetService svc(config());
  svc.register_cluster(make_state());
  const BudgetRequest req = solve_request(80.0 * kModules);

  std::vector<ReplyPtr> replies(kProducers * kPerProducer);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        replies[static_cast<std::size_t>(p * kPerProducer + i)] =
            svc.submit(req).get();
      }
    });
  }
  for (auto& t : producers) t.join();

  // One pipeline run fanned out to every waiter: all replies are the SAME
  // object, and the counters account for every submission.
  for (const ReplyPtr& r : replies) {
    ASSERT_TRUE(r);
    EXPECT_TRUE(r->ok) << r->error;
    EXPECT_EQ(r.get(), replies.front().get());
  }
  const BudgetService::Stats s = svc.stats();
  EXPECT_EQ(s.requests, static_cast<std::uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(s.computed, 1u);
  EXPECT_EQ(s.dedup_hits + s.reply_hits,
            static_cast<std::uint64_t>(kProducers * kPerProducer - 1));
}

TEST_F(ServiceFixture, ClientThreadCountDoesNotChangeReplies) {
  // The same 12-request stream submitted from 1 vs 8 client threads (fresh
  // service each) must produce bitwise-identical reply sets.
  std::vector<BudgetRequest> stream;
  for (int i = 0; i < 12; ++i) {
    stream.push_back(solve_request((70.0 + i) * kModules,
                                   i % 2 ? "MHD" : "*DGEMM",
                                   i % 3 ? "VaPc" : "VaFs"));
  }
  const auto run_with_clients = [&](std::size_t clients) {
    BudgetService svc(config());
    svc.register_cluster(make_state());
    std::map<std::string, std::uint64_t> digests;
    std::mutex mu;
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (std::size_t i = c; i < stream.size(); i += clients) {
          ReplyPtr r = svc.submit(stream[i]).get();
          std::lock_guard lock(mu);
          digests[stream[i].cache_key()] =
              r->ok ? digest(r->budget) : 0;
        }
      });
    }
    for (auto& t : threads) t.join();
    return digests;
  };
  const auto serial = run_with_clients(1);
  const auto wide = run_with_clients(8);
  ASSERT_EQ(serial.size(), stream.size());
  EXPECT_EQ(serial, wide);
}

TEST_F(ServiceFixture, ErrorsAreInBandAndDoNotPoisonTheBatch) {
  BudgetService svc(config());
  svc.register_cluster(make_state());

  ReplyPtr bad_scheme = svc.solve(solve_request(1920.0, "MHD", "NoSuch"));
  EXPECT_FALSE(bad_scheme->ok);
  EXPECT_NE(bad_scheme->error.find("NoSuch"), std::string::npos);

  ReplyPtr bad_workload = svc.solve(solve_request(1920.0, "nope"));
  EXPECT_FALSE(bad_workload->ok);
  EXPECT_FALSE(bad_workload->error.empty());

  BudgetRequest bad_cluster = solve_request(1920.0);
  bad_cluster.cluster_fingerprint = 0xdeadbeef;
  EXPECT_FALSE(svc.solve(bad_cluster)->ok);

  // The service still answers correctly afterwards.
  EXPECT_TRUE(svc.solve(solve_request(80.0 * kModules))->ok);
}

TEST_F(ServiceFixture, RegisterClusterValidatesInput) {
  BudgetService svc(config());
  EXPECT_THROW(svc.register_cluster(ClusterState{}), InvalidArgument);
  ClusterState no_alloc = make_state();
  no_alloc.allocation.clear();
  EXPECT_THROW(svc.register_cluster(no_alloc), InvalidArgument);
  svc.register_cluster(make_state());
  EXPECT_TRUE(svc.has_cluster(cluster_->fingerprint()));
  EXPECT_THROW(svc.register_cluster(make_state()), InvalidArgument);
}

TEST_F(ServiceFixture, ReplyLruEvictsAndCounts) {
  ServiceConfig cfg = config();
  cfg.reply_cache_capacity = 2;
  BudgetService svc(cfg);
  svc.register_cluster(make_state());
  for (double cm : {70.0, 71.0, 72.0}) {
    ASSERT_TRUE(svc.solve(solve_request(cm * kModules))->ok);
  }
  BudgetService::Stats s = svc.stats();
  EXPECT_GE(s.reply_evictions, 1u);
  EXPECT_LE(s.reply_entries, 2u);

  // A repeat of the most recent request is a pure LRU hit.
  ASSERT_TRUE(svc.solve(solve_request(72.0 * kModules))->ok);
  EXPECT_EQ(svc.stats().reply_hits, s.reply_hits + 1);

  util::Telemetry telemetry;
  svc.merge_stats(telemetry);
  EXPECT_EQ(telemetry.counters().at("service_reply_evictions"),
            svc.stats().reply_evictions);
  EXPECT_EQ(telemetry.counters().at("service_requests"),
            svc.stats().requests);
}

TEST_F(ServiceFixture, RunReplyMatchesCampaignEngineCell) {
  const double budget_w = 92.0 * kModules;
  BudgetService svc(config());
  svc.register_cluster(make_state());
  BudgetRequest req = solve_request(budget_w);
  req.kind = RequestKind::kRun;
  ReplyPtr reply = svc.solve(req);
  ASSERT_TRUE(reply->ok) << reply->error;

  core::CampaignSpec spec;
  spec.workloads = {&workloads::mhd()};
  spec.budgets_w = {budget_w};
  spec.scheme_names = {"VaPc"};
  spec.config.iterations = 6;
  core::CampaignEngine engine(*cluster_, alloc_, 1);
  const core::CampaignResult result = engine.run(spec);
  ASSERT_EQ(result.jobs.size(), 1u);

  core::CampaignJobResult via_service;
  via_service.job = result.jobs.front().job;
  via_service.cls = reply->cls;
  via_service.metrics = reply->metrics;
  via_service.speedup_vs_naive = result.jobs.front().speedup_vs_naive;
  EXPECT_EQ(digest(via_service), digest(result.jobs.front()));
}

// The committed 54-cell golden grid, served entirely through kRun replies:
// the service must reproduce the pre-refactor digests bit for bit.
TEST_F(ServiceFixture, GoldenGridServedBitIdentically) {
  core::CampaignSpec spec;
  spec.workloads = {&workloads::mhd(), &workloads::dgemm(),
                    &workloads::stream()};
  for (double cm : {110.0, 92.0, 76.0}) {
    spec.budgets_w.push_back(cm * static_cast<double>(kModules));
  }
  spec.schemes = core::all_schemes();
  const std::vector<std::string> schemes = spec.scheme_list();

  BudgetService svc(config());
  svc.register_cluster(make_state());

  std::vector<core::CampaignJobResult> jobs;
  for (const workloads::Workload* w : spec.workloads) {
    for (double budget_w : spec.budgets_w) {
      for (const std::string& scheme : schemes) {
        BudgetRequest req = solve_request(budget_w, w->name, scheme);
        req.kind = RequestKind::kRun;
        ReplyPtr reply = svc.solve(req);
        ASSERT_TRUE(reply->ok) << reply->error;
        core::CampaignJobResult r;
        r.job.workload = w;
        r.job.budget_w = budget_w;
        r.job.scheme = scheme;
        r.cls = reply->cls;
        r.metrics = reply->metrics;
        jobs.push_back(std::move(r));
      }
    }
  }
  // Reconstruct speedup_vs_naive exactly as CampaignEngine does, so the
  // digest covers the same fields.
  std::map<std::string, double> naive;
  for (const core::CampaignJobResult& r : jobs) {
    if (r.job.scheme == "Naive" && r.metrics.feasible &&
        r.metrics.makespan_s > 0.0) {
      naive[r.metrics.workload + '/' + std::to_string(r.job.budget_w)] =
          r.metrics.makespan_s;
    }
  }
  for (core::CampaignJobResult& r : jobs) {
    auto it = naive.find(r.metrics.workload + '/' +
                         std::to_string(r.job.budget_w));
    r.speedup_vs_naive =
        (it != naive.end() && r.metrics.feasible && r.metrics.makespan_s > 0.0)
            ? it->second / r.metrics.makespan_s
            : std::nan("");
  }

  std::map<std::string, std::uint64_t> golden;
  {
    std::ifstream in(std::string(VAPB_GOLDEN_DIR) + "/pipeline_golden.csv");
    ASSERT_TRUE(in) << "missing golden file";
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line.front() == '#') continue;
      const std::size_t comma = line.rfind(',');
      if (comma == std::string::npos) continue;
      golden.emplace(line.substr(0, comma),
                     std::strtoull(line.c_str() + comma + 1, nullptr, 16));
    }
  }
  ASSERT_EQ(golden.size(), jobs.size());
  for (const core::CampaignJobResult& r : jobs) {
    std::ostringstream key;
    key << r.metrics.workload << '/' << r.job.budget_w << '/'
        << r.metrics.scheme;
    auto it = golden.find(key.str());
    ASSERT_NE(it, golden.end()) << key.str();
    EXPECT_EQ(digest(r), it->second) << key.str();
  }
}

// ---------------------------------------------------------------------------
// Wire codec + stream server
// ---------------------------------------------------------------------------

TEST(ServiceCodec, ParsesARequestLine) {
  std::int64_t id = -1;
  std::string cmd;
  const BudgetRequest req = parse_request_json(
      R"({"id": 7, "scheme": "VaPc", "workload": "MHD", "budget_w": 2160,)"
      R"( "kind": "solve", "salt": 3})",
      id, cmd);
  EXPECT_EQ(id, 7);
  EXPECT_TRUE(cmd.empty());
  EXPECT_EQ(req.scheme, "VaPc");
  EXPECT_EQ(req.workload, "MHD");
  EXPECT_EQ(req.budget_w, 2160.0);
  EXPECT_EQ(req.kind, RequestKind::kSolve);
  EXPECT_EQ(req.salt, 3u);
}

TEST(ServiceCodec, UnknownFieldGetsDidYouMean) {
  std::int64_t id = 0;
  std::string cmd;
  try {
    parse_request_json(R"({"budget_W": 5})", id, cmd);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("budget_w"), std::string::npos);
  }
}

TEST(ServiceCodec, RejectsMalformedLines) {
  std::int64_t id = 0;
  std::string cmd;
  EXPECT_THROW(parse_request_json("not json", id, cmd), InvalidArgument);
  EXPECT_THROW(parse_request_json(R"({"id": 1, "id": 2})", id, cmd),
               InvalidArgument);
  EXPECT_THROW(parse_request_json(R"({"scheme": {"x": 1}})", id, cmd),
               InvalidArgument);
  EXPECT_THROW(parse_request_json(R"({"kind": "bogus", "scheme": "VaPc",)"
                                  R"( "workload": "MHD", "budget_w": 1})",
                                  id, cmd),
               InvalidArgument);
}

TEST(ServiceCodec, ControlLinesShortCircuit) {
  std::int64_t id = 0;
  std::string cmd;
  static_cast<void>(parse_request_json(R"({"id": 9, "cmd": "stats"})", id,
                                       cmd));
  EXPECT_EQ(id, 9);
  EXPECT_EQ(cmd, "stats");
}

TEST(ServiceCodec, ErrorReplySerializesInBand) {
  BudgetReply reply;
  reply.ok = false;
  reply.error = "unknown scheme \"X\"";
  const std::string line = reply_to_json(reply, 4);
  EXPECT_NE(line.find("\"id\": 4"), std::string::npos);
  EXPECT_NE(line.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(line.find("unknown scheme \\\"X\\\""), std::string::npos);
}

TEST_F(ServiceFixture, ServeStreamAnswersOverAStringPair) {
  BudgetService svc(config());
  svc.register_cluster(make_state());
  std::istringstream in(
      R"({"id": 1, "scheme": "VaPc", "workload": "MHD", "budget_w": 1920})"
      "\n"
      R"({"id": 2, "bogus": true})"
      "\n"
      R"({"id": 3, "cmd": "stats"})"
      "\n"
      R"({"cmd": "quit"})"
      "\n");
  std::ostringstream out;
  serve_stream(svc, in, out, /*max_allocations=*/2);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"alpha\": "), std::string::npos);
  EXPECT_NE(text.find("\"allocation_count\": 24"), std::string::npos);
  EXPECT_NE(text.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(text.find("\"requests\": "), std::string::npos);
  // Every line is terminated; the quit ack is the last one.
  EXPECT_EQ(text.back(), '\n');
}

}  // namespace
}  // namespace vapb::service
