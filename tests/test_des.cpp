#include "des/engine.hpp"

#include <gtest/gtest.h>

#include "des/reference_engine.hpp"
#include "util/error.hpp"

namespace vapb::des {
namespace {

NetworkModel zero_net() {
  NetworkModel n;
  n.latency_s = 0.0;
  n.bandwidth_bytes_per_s = 1e30;  // effectively free transfers
  return n;
}

// Every semantic test runs against both the event-driven Engine and the
// polling ReferenceEngine: the reference defines the semantics, the typed
// suite keeps the fast engine honest.
template <typename E>
class EngineSemantics : public ::testing::Test {};

using EngineTypes = ::testing::Types<Engine, ReferenceEngine>;
TYPED_TEST_SUITE(EngineSemantics, EngineTypes);

TYPED_TEST(EngineSemantics, ComputeOnlyRanksFinishIndependently) {
  TypeParam e(zero_net());
  std::vector<RankProgram> progs(3);
  progs[0].compute(1.0);
  progs[1].compute(2.0);
  progs[2].compute(3.0);
  RunResult r = e.run(progs);
  EXPECT_DOUBLE_EQ(r.ranks[0].finish_time_s, 1.0);
  EXPECT_DOUBLE_EQ(r.ranks[1].finish_time_s, 2.0);
  EXPECT_DOUBLE_EQ(r.ranks[2].finish_time_s, 3.0);
  EXPECT_DOUBLE_EQ(r.makespan_s, 3.0);
  EXPECT_DOUBLE_EQ(r.ranks[0].wait_s, 0.0);
}

TYPED_TEST(EngineSemantics, BarrierSynchronizesEveryone) {
  TypeParam e(zero_net());
  std::vector<RankProgram> progs(3);
  for (std::size_t r = 0; r < 3; ++r) {
    progs[r].compute(1.0 + static_cast<double>(r));
    progs[r].barrier();
    progs[r].compute(1.0);
  }
  RunResult res = e.run(progs);
  // Everyone leaves the barrier at t=3 (slowest) and finishes at 4.
  for (const auto& rs : res.ranks) {
    EXPECT_DOUBLE_EQ(rs.finish_time_s, 4.0);
  }
  EXPECT_DOUBLE_EQ(res.ranks[0].wait_s, 2.0);
  EXPECT_DOUBLE_EQ(res.ranks[2].wait_s, 0.0);
  EXPECT_DOUBLE_EQ(res.ranks[0].collective_s, 2.0);
}

TYPED_TEST(EngineSemantics, AllreduceSameAsBarrierPlusCost) {
  NetworkModel net;
  net.latency_s = 0.5;
  net.bandwidth_bytes_per_s = 1e30;
  TypeParam e(net);
  std::vector<RankProgram> progs(4);
  for (auto& p : progs) {
    p.compute(1.0);
    p.allreduce(8.0);
  }
  RunResult r = e.run(progs);
  // log2(4) = 2 stages, each latency 0.5 -> cost 1.0; finish at 2.0.
  for (const auto& rs : r.ranks) EXPECT_DOUBLE_EQ(rs.finish_time_s, 2.0);
}

TYPED_TEST(EngineSemantics, HaloExchangeWaitsForSlowestNeighbourOnly) {
  TypeParam e(zero_net());
  // Chain of 3: rank1 talks to both; rank0 and rank2 only to rank1.
  std::vector<RankProgram> progs(3);
  progs[0].compute(1.0);
  progs[1].compute(5.0);
  progs[2].compute(2.0);
  progs[0].halo_exchange({1}, 0.0);
  progs[1].halo_exchange({0, 2}, 0.0);
  progs[2].halo_exchange({1}, 0.0);
  RunResult r = e.run(progs);
  // Everyone's neighbourhood includes rank 1 (arrives at 5).
  EXPECT_DOUBLE_EQ(r.ranks[0].finish_time_s, 5.0);
  EXPECT_DOUBLE_EQ(r.ranks[1].finish_time_s, 5.0);
  EXPECT_DOUBLE_EQ(r.ranks[2].finish_time_s, 5.0);
  EXPECT_DOUBLE_EQ(r.ranks[0].wait_s, 4.0);
  EXPECT_DOUBLE_EQ(r.ranks[0].sendrecv_s, 4.0);
}

TYPED_TEST(EngineSemantics, WavePropagatesThroughChainOverIterations) {
  TypeParam e(zero_net());
  // 4-rank chain, 5 iterations; rank 3 is slow. Slowness propagates one hop
  // per exchange (arrival semantics: a neighbour's *arrival*, not its own
  // exchange completion, is what a rank waits for), so rank 0 feels rank 3
  // after 3 exchanges.
  const double slow = 10.0, fast = 1.0;
  const int iters = 5;
  std::vector<RankProgram> progs(4);
  for (int it = 0; it < iters; ++it) {
    for (std::size_t r = 0; r < 4; ++r) {
      progs[r].compute(r == 3 ? slow : fast);
      progs[r].halo_exchange(topology::chain_1d(static_cast<RankId>(r), 4),
                             0.0);
    }
  }
  RunResult res = e.run(progs);
  EXPECT_GT(res.ranks[0].finish_time_s, iters * fast + 1e-9);
  EXPECT_DOUBLE_EQ(res.makespan_s, res.ranks[3].finish_time_s);
  EXPECT_DOUBLE_EQ(res.ranks[3].wait_s, 0.0);
  // The rank adjacent to the slow one stalls harder than the far one.
  EXPECT_GT(res.ranks[2].wait_s, res.ranks[0].wait_s);
}

TYPED_TEST(EngineSemantics, TransferCostPaidPerPeer) {
  NetworkModel net;
  net.latency_s = 1.0;
  net.bandwidth_bytes_per_s = 1e30;
  TypeParam e(net);
  std::vector<RankProgram> progs(3);
  progs[0].compute(1.0);
  progs[1].compute(1.0);
  progs[2].compute(1.0);
  progs[0].halo_exchange({1}, 0.0);
  progs[1].halo_exchange({0, 2}, 0.0);
  progs[2].halo_exchange({1}, 0.0);
  RunResult r = e.run(progs);
  EXPECT_DOUBLE_EQ(r.ranks[0].finish_time_s, 2.0);  // 1 peer
  EXPECT_DOUBLE_EQ(r.ranks[1].finish_time_s, 3.0);  // 2 peers
  EXPECT_DOUBLE_EQ(r.ranks[1].transfer_s, 2.0);
}

TYPED_TEST(EngineSemantics, BandwidthTermScalesWithBytes) {
  NetworkModel net;
  net.latency_s = 0.0;
  net.bandwidth_bytes_per_s = 100.0;
  TypeParam e(net);
  std::vector<RankProgram> progs(2);
  progs[0].halo_exchange({1}, 50.0);
  progs[1].halo_exchange({0}, 50.0);
  RunResult r = e.run(progs);
  EXPECT_DOUBLE_EQ(r.ranks[0].finish_time_s, 0.5);
}

TYPED_TEST(EngineSemantics, EmptyPeerListIsNoop) {
  TypeParam e(zero_net());
  std::vector<RankProgram> progs(1);
  progs[0].compute(1.0);
  progs[0].halo_exchange({}, 100.0);
  RunResult r = e.run(progs);
  EXPECT_DOUBLE_EQ(r.ranks[0].finish_time_s, 1.0);
}

TYPED_TEST(EngineSemantics, AsymmetricPeersRejected) {
  TypeParam e(zero_net());
  std::vector<RankProgram> progs(2);
  progs[0].halo_exchange({1}, 0.0);
  progs[1].compute(1.0);  // rank 1 never lists rank 0
  EXPECT_THROW(static_cast<void>(e.run(progs)), InvalidArgument);
}

TYPED_TEST(EngineSemantics, SelfExchangeRejected) {
  TypeParam e(zero_net());
  std::vector<RankProgram> progs(1);
  progs[0].halo_exchange({0}, 0.0);
  EXPECT_THROW(static_cast<void>(e.run(progs)), InvalidArgument);
}

TYPED_TEST(EngineSemantics, PeerOutOfRangeRejected) {
  TypeParam e(zero_net());
  std::vector<RankProgram> progs(2);
  progs[0].halo_exchange({5}, 0.0);
  progs[1].halo_exchange({0}, 0.0);
  EXPECT_THROW(static_cast<void>(e.run(progs)), InvalidArgument);
}

TYPED_TEST(EngineSemantics, MisalignedCollectivesDeadlock) {
  TypeParam e(zero_net());
  std::vector<RankProgram> progs(2);
  progs[0].barrier();
  progs[1].allreduce(8.0);
  EXPECT_THROW(static_cast<void>(e.run(progs)), DeadlockError);
}

TYPED_TEST(EngineSemantics, MissingCollectiveDeadlocks) {
  TypeParam e(zero_net());
  std::vector<RankProgram> progs(2);
  progs[0].barrier();
  // rank 1 has nothing: rank 0 waits forever.
  EXPECT_THROW(static_cast<void>(e.run(progs)), DeadlockError);
}

TYPED_TEST(EngineSemantics, NoProgramsRejected) {
  TypeParam e;
  EXPECT_THROW(static_cast<void>(e.run(std::vector<RankProgram>{})),
               InvalidArgument);
}

TYPED_TEST(EngineSemantics, ComputeAccountingSumsDurations) {
  TypeParam e(zero_net());
  std::vector<RankProgram> progs(1);
  progs[0].compute(1.5);
  progs[0].compute(2.5);
  RunResult r = e.run(progs);
  EXPECT_DOUBLE_EQ(r.ranks[0].compute_s, 4.0);
}

// --- Engine-only behaviour: deadlock diagnostics and cached views. ---

TEST(EngineDiagnostics, MissingCollectiveNamesBlockedRankAndCulprit) {
  Engine e(zero_net());
  std::vector<RankProgram> progs(2);
  progs[0].compute(1.0);
  progs[0].barrier();
  try {
    static_cast<void>(e.run(progs));
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find("no rank can make progress"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rank 0 blocked at pc 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("(barrier)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("waiting on rank 1 (which already finished)"),
              std::string::npos)
        << msg;
  }
}

TEST(EngineDiagnostics, HaloDeadlockNamesWaitedOnPeer) {
  Engine e(zero_net());
  // rank 0 sits in a halo exchange; its peer never reaches the exchange
  // because it is parked at an allreduce rank 0 never joins.
  std::vector<RankProgram> progs(2);
  progs[0].halo_exchange({1}, 0.0);
  progs[1].allreduce(8.0);
  progs[1].halo_exchange({0}, 0.0);
  try {
    static_cast<void>(e.run(progs));
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find("rank 0 blocked at pc 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("halo exchange"), std::string::npos) << msg;
    EXPECT_NE(msg.find("waiting on peer 1"), std::string::npos) << msg;
  }
}

TEST(EngineDiagnostics, MixedCollectiveKeepsOriginalMessage) {
  Engine e(zero_net());
  std::vector<RankProgram> progs(2);
  progs[0].barrier();
  progs[1].allreduce(8.0);
  try {
    static_cast<void>(e.run(progs));
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& err) {
    EXPECT_STREQ(err.what(), "ranks disagree on collective type");
  }
}

TEST(EngineRunResult, FinishTimesAreCachedViews) {
  Engine e(zero_net());
  std::vector<RankProgram> progs(2);
  progs[0].compute(1.0);
  progs[1].compute(2.0);
  RunResult r = e.run(progs);
  const std::vector<double>& ft = r.finish_times();
  ASSERT_EQ(ft.size(), 2u);
  EXPECT_DOUBLE_EQ(ft[0], 1.0);
  EXPECT_DOUBLE_EQ(ft[1], 2.0);
  // Borrowed view: repeated calls return the same storage, no copies.
  EXPECT_EQ(&r.finish_times(), &ft);
  EXPECT_EQ(r.finish_times().data(), ft.data());
  const std::vector<double>& sr = r.sendrecv_times();
  ASSERT_EQ(sr.size(), 2u);
  EXPECT_EQ(&r.sendrecv_times(), &sr);
}

TEST(EngineRunResult, SealRefreshesViewsAfterMutation) {
  Engine e(zero_net());
  std::vector<RankProgram> progs(2);
  progs[0].compute(1.0);
  progs[1].compute(2.0);
  RunResult r = e.run(progs);
  r.ranks[0].finish_time_s = 7.0;
  r.seal();
  EXPECT_DOUBLE_EQ(r.makespan_s, 7.0);
  EXPECT_DOUBLE_EQ(r.finish_times()[0], 7.0);
}

TEST(EngineImage, RunningCompiledImageMatchesProgramOverload) {
  NetworkModel net;
  net.latency_s = 1e-6;
  net.bandwidth_bytes_per_s = 1e9;
  Engine e(net);
  std::vector<RankProgram> progs(4);
  for (std::size_t r = 0; r < 4; ++r) {
    progs[r].compute(1.0 + 0.1 * static_cast<double>(r));
    progs[r].halo_exchange(topology::chain_1d(static_cast<RankId>(r), 4),
                           4096.0);
    progs[r].allreduce(64.0);
  }
  ProgramImage img = ProgramImage::compile(progs);
  RunResult a = e.run(progs);
  RunResult b = e.run(img);
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    EXPECT_EQ(a.ranks[r].finish_time_s, b.ranks[r].finish_time_s);
    EXPECT_EQ(a.ranks[r].wait_s, b.ranks[r].wait_s);
  }
}

class GridSyncScale : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GridSyncScale, SlowRankGatesBulkSynchronousGrid) {
  // nranks on a 3-D grid, 5 iterations, one slow rank: with enough
  // iterations the wave reaches everyone; makespan ~ slow rank's pace.
  const std::size_t n = GetParam();
  Engine e(zero_net());
  ReferenceEngine ref(zero_net());
  auto dims = topology::balanced_dims_3d(n);
  const int iters = 12;
  std::vector<RankProgram> progs(n);
  for (int it = 0; it < iters; ++it) {
    for (std::size_t r = 0; r < n; ++r) {
      progs[r].compute(r == n / 2 ? 2.0 : 1.0);
      progs[r].halo_exchange(
          topology::grid_3d(static_cast<RankId>(r), dims[0], dims[1], dims[2]),
          0.0);
    }
  }
  RunResult res = e.run(progs);
  EXPECT_GE(res.makespan_s, 2.0 * iters - 1e-9);
  // Everyone's total (compute + wait) is bounded by the makespan.
  for (const auto& rs : res.ranks) {
    EXPECT_LE(rs.finish_time_s, res.makespan_s + 1e-9);
  }
  // And the event-driven schedule reproduces the polling engine exactly.
  RunResult expect = ref.run(progs);
  EXPECT_EQ(res.makespan_s, expect.makespan_s);
  for (std::size_t r = 0; r < n; ++r) {
    EXPECT_EQ(res.ranks[r].finish_time_s, expect.ranks[r].finish_time_s);
    EXPECT_EQ(res.ranks[r].wait_s, expect.ranks[r].wait_s);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GridSyncScale,
                         ::testing::Values(2, 8, 27, 60, 64, 125));

}  // namespace
}  // namespace vapb::des
