#include "workloads/programs.hpp"

#include <gtest/gtest.h>

#include "des/engine.hpp"
#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::workloads {
namespace {

ComputeTimeFn unit_time() {
  return [](std::size_t, int) { return 1.0; };
}

std::size_t count_ops(const des::RankProgram& p, std::size_t alt) {
  std::size_t n = 0;
  for (const auto& op : p.ops) n += op.index() == alt;
  return n;
}

constexpr std::size_t kCompute = 0, kHalo = 1, kAllreduce = 2;

TEST(Programs, NoCommWorkloadIsComputeOnly) {
  auto progs = build_programs(dgemm(), 8, 5, unit_time());
  ASSERT_EQ(progs.size(), 8u);
  for (const auto& p : progs) {
    EXPECT_EQ(p.ops.size(), 5u);
    EXPECT_EQ(count_ops(p, kCompute), 5u);
  }
}

TEST(Programs, Halo3DWorkloadExchangesEveryIteration) {
  auto progs = build_programs(mhd(), 27, 4, unit_time());
  for (const auto& p : progs) {
    EXPECT_EQ(count_ops(p, kCompute), 4u);
    EXPECT_EQ(count_ops(p, kHalo), 4u);
  }
}

TEST(Programs, MultizonePatternAddsPeriodicAllreduce) {
  // BT: reduce_every = 5; 10 iterations -> 2 allreduces.
  auto progs = build_programs(bt(), 8, 10, unit_time());
  for (const auto& p : progs) {
    EXPECT_EQ(count_ops(p, kHalo), 10u);
    EXPECT_EQ(count_ops(p, kAllreduce), 2u);
  }
}

TEST(Programs, AllreducePatternReducesEveryIteration) {
  auto progs = build_programs(mvmc(), 6, 7, unit_time());
  for (const auto& p : progs) {
    EXPECT_EQ(count_ops(p, kAllreduce), 7u);
    EXPECT_EQ(count_ops(p, kHalo), 0u);
  }
}

TEST(Programs, ComputeTimesComeFromCallback) {
  auto progs = build_programs(
      dgemm(), 3, 2,
      [](std::size_t rank, int iter) { return 10.0 * static_cast<double>(rank) + iter; });
  const auto* op = std::get_if<des::ComputeOp>(&progs[2].ops[1]);
  ASSERT_NE(op, nullptr);
  EXPECT_DOUBLE_EQ(op->seconds, 21.0);
}

TEST(Programs, GeneratedProgramsExecuteWithoutDeadlock) {
  // End-to-end: every comm pattern must produce engine-runnable programs.
  des::Engine engine;
  for (auto* w : evaluation_suite()) {
    auto progs = build_programs(*w, 24, 6, unit_time());
    des::RunResult r = engine.run(progs);
    EXPECT_GT(r.makespan_s, 0.0) << w->name;
    EXPECT_EQ(r.ranks.size(), 24u) << w->name;
  }
}

TEST(Programs, HaloBytesPropagate) {
  auto progs = build_programs(mhd(), 8, 1, unit_time());
  for (const auto& p : progs) {
    for (const auto& op : p.ops) {
      if (const auto* ex = std::get_if<des::HaloExchangeOp>(&op)) {
        EXPECT_DOUBLE_EQ(ex->bytes_per_peer, mhd().halo_bytes_per_peer);
      }
    }
  }
}

TEST(Programs, SingleRankGridHasNoPeers) {
  auto progs = build_programs(mhd(), 1, 3, unit_time());
  des::Engine engine;
  des::RunResult r = engine.run(progs);
  EXPECT_DOUBLE_EQ(r.ranks[0].wait_s, 0.0);
}

TEST(Programs, Validation) {
  EXPECT_THROW(build_programs(dgemm(), 0, 5, unit_time()), InvalidArgument);
  EXPECT_THROW(build_programs(dgemm(), 4, 0, unit_time()), InvalidArgument);
  EXPECT_THROW(build_programs(dgemm(), 4, -2, unit_time()), InvalidArgument);
}

class ProgramScale : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ProgramScale, SymmetricAtAnyRankCount) {
  // The engine validates symmetry; just running is the property.
  des::Engine engine;
  auto progs = build_programs(sp(), GetParam(), 5, unit_time());
  EXPECT_NO_THROW(static_cast<void>(engine.run(progs)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ProgramScale,
                         ::testing::Values(1, 2, 5, 16, 48, 100, 192));

}  // namespace
}  // namespace vapb::workloads
