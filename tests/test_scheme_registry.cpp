// SchemeRegistry tests: the six paper schemes are pre-registered in legend
// order with metadata matching the SchemeKind helpers, lookup errors list
// the valid spellings, and — the point of the registry — a seventh scheme
// composed from existing stages runs through Runner and the campaign engine
// via one add() call, with no dispatch edits anywhere.
#include "core/scheme_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "cluster/scheduler.hpp"
#include "core/campaign.hpp"
#include "core/stages.hpp"
#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::core {
namespace {

const std::vector<std::string> kLegend = {"Naive",  "Pc",     "VaPcOr",
                                          "VaPc",   "VaFsOr", "VaFs"};

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

TEST(SchemeRegistry, BuiltinsRegisteredInLegendOrder) {
  const auto names = SchemeRegistry::global().names();
  ASSERT_GE(names.size(), kLegend.size());
  for (std::size_t i = 0; i < kLegend.size(); ++i) {
    EXPECT_EQ(names[i], kLegend[i]);
  }
  for (const std::string& n : kLegend) {
    EXPECT_TRUE(SchemeRegistry::global().contains(n)) << n;
  }
  EXPECT_FALSE(SchemeRegistry::global().contains("NoSuchScheme"));
}

TEST(SchemeRegistry, BuiltinMetadataMatchesSchemeKindHelpers) {
  for (SchemeKind kind : all_schemes()) {
    SchemeDefinition def = SchemeRegistry::global().get(scheme_name(kind));
    EXPECT_EQ(def.name, scheme_name(kind));
    EXPECT_EQ(def.enforcement, enforcement_of(kind));
    EXPECT_EQ(def.variation_aware, is_variation_aware(kind));
    EXPECT_EQ(def.oracle, is_oracle(kind));
    // Every built-in is a full five-stage composition.
    EXPECT_TRUE(def.calibration != nullptr);
    EXPECT_TRUE(def.power_model != nullptr);
    EXPECT_TRUE(def.budget_solve != nullptr);
    EXPECT_TRUE(def.enforcement_stage != nullptr);
    EXPECT_TRUE(def.execution != nullptr);
  }
}

TEST(SchemeRegistry, UnknownNameListsEveryRegisteredScheme) {
  try {
    (void)SchemeRegistry::global().get("VaPcOracle");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown scheme 'VaPcOracle'"), std::string::npos)
        << msg;
    for (const std::string& n : kLegend) {
      EXPECT_NE(msg.find(n), std::string::npos)
          << "missing " << n << ": " << msg;
    }
  }
}

TEST(SchemeRegistry, RejectsBadRegistrations) {
  auto& reg = SchemeRegistry::global();
  EXPECT_THROW(reg.add("", [] { return SchemeDefinition{}; }),
               InvalidArgument);
  EXPECT_THROW(reg.add("NullFactory", SchemeRegistry::Factory{}),
               InvalidArgument);
  EXPECT_FALSE(reg.contains("NullFactory"));
  EXPECT_THROW(reg.add("Naive", [] { return SchemeDefinition{}; }),
               InvalidArgument);
}

TEST(SchemeRegistry, RobustSchemesFollowTheLegendSix) {
  const auto names = SchemeRegistry::global().names();
  ASSERT_GE(names.size(), kLegend.size() + 2);
  // Appended after the paper's legend so legend-order consumers are
  // untouched.
  EXPECT_EQ(names[kLegend.size()], "VaPcRobust");
  EXPECT_EQ(names[kLegend.size() + 1], "VaFsRobust");

  for (const auto& [name, enf] :
       {std::pair<const char*, Enforcement>{"VaPcRobust",
                                            Enforcement::kPowerCap},
        std::pair<const char*, Enforcement>{"VaFsRobust",
                                            Enforcement::kFreqSelect}}) {
    const SchemeDefinition def = SchemeRegistry::global().get(name);
    EXPECT_EQ(def.name, name);
    EXPECT_EQ(def.enforcement, enf);
    EXPECT_TRUE(def.variation_aware);
    EXPECT_FALSE(def.oracle);
    // The robust composition: guard-band solve + re-budget-on-violation
    // execution, reusing the calibrated stages everywhere else.
    EXPECT_NE(dynamic_cast<const GuardBandSolveStage*>(def.budget_solve.get()),
              nullptr)
        << name;
    EXPECT_NE(
        dynamic_cast<const ResolveOnViolationStage*>(def.execution.get()),
        nullptr)
        << name;
  }
}

TEST(SchemeRegistry, ClearDrivesALocalRegistryThroughEmpty) {
  SchemeRegistry reg;
  reg.add("Only", [] { return SchemeDefinition{}; });
  EXPECT_TRUE(reg.contains("Only"));

  reg.clear();
  EXPECT_FALSE(reg.contains("Only"));
  EXPECT_TRUE(reg.names().empty());
  try {
    (void)reg.get("Only");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("no schemes are registered"),
              std::string::npos)
        << e.what();
  }

  // A cleared name is registrable again — clear() really forgot it.
  reg.add("Only", [] { return SchemeDefinition{}; });
  EXPECT_TRUE(reg.contains("Only"));
}

TEST(SchemeRegistry, SuggestionsOrderByEditDistance) {
  const auto& reg = SchemeRegistry::global();
  EXPECT_EQ(reg.suggestions("VaPcc").front(), "VaPc");
  EXPECT_EQ(reg.suggestions("VaFsRobus").front(), "VaFsRobust");
  EXPECT_EQ(reg.suggestions("Nave").front(), "Naive");
  // Every registered name appears exactly once.
  auto sorted = reg.suggestions("anything");
  auto names = reg.names();
  std::sort(sorted.begin(), sorted.end());
  std::sort(names.begin(), names.end());
  EXPECT_EQ(sorted, names);

  // And get() surfaces the closest name first in its error.
  try {
    (void)reg.get("VaPcc");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    const std::size_t list = msg.find("(closest first):");
    ASSERT_NE(list, std::string::npos) << msg;
    EXPECT_NE(msg.find("(closest first): VaPc "), std::string::npos) << msg;
  }
}

/// The acceptance-criterion scheme: Naive's application-independent table
/// enforced by frequency selection — a composition the paper never names,
/// built purely from existing stages. Registered once per process (tests
/// share the global registry).
void register_naive_fs() {
  auto& reg = SchemeRegistry::global();
  if (reg.contains("NaiveFs")) return;
  reg.add("NaiveFs", [] {
    SchemeDefinition def;
    def.name = "NaiveFs";
    def.enforcement = Enforcement::kFreqSelect;
    def.variation_aware = false;
    def.oracle = false;
    def.calibration = std::make_shared<CachedCalibrationStage>();
    def.power_model = std::make_shared<NaivePmtStage>();
    def.budget_solve = std::make_shared<AlphaSolveStage>();
    def.enforcement_stage =
        std::make_shared<PmmdEnforcementStage>(Enforcement::kFreqSelect);
    def.execution = std::make_shared<DesExecutionStage>();
    return def;
  });
}

TEST(SchemeRegistry, SeventhSchemeRunsViaRegistrationAlone) {
  register_naive_fs();
  EXPECT_TRUE(SchemeRegistry::global().contains("NaiveFs"));

  constexpr std::size_t kModules = 16;
  cluster::Cluster cluster(hw::ha8k(), util::SeedSequence(77), kModules);
  std::vector<hw::ModuleId> alloc(kModules);
  std::iota(alloc.begin(), alloc.end(), hw::ModuleId{0});
  RunConfig cfg;
  cfg.iterations = 4;  // keep tests fast
  const workloads::Workload& w = workloads::mhd();
  const double budget_w = 90.0 * kModules;

  // Through the parallel engine: the spec names the scheme, nothing else
  // changed — no runner/campaign/CLI dispatch knows "NaiveFs" exists.
  CampaignSpec spec;
  spec.workloads = {&w};
  spec.budgets_w = {budget_w};
  spec.scheme_names = {"Naive", "NaiveFs"};
  spec.config = cfg;
  EXPECT_EQ(spec.job_count(), 2u);
  CampaignEngine engine(cluster, alloc, /*threads=*/2);
  CampaignResult result = engine.run(spec);
  const CampaignJobResult* job = result.find(w.name, budget_w, "NaiveFs");
  ASSERT_NE(job, nullptr);
  EXPECT_TRUE(job->metrics.feasible);
  EXPECT_GT(job->metrics.makespan_s, 0.0);
  EXPECT_FALSE(job->metrics.modules.empty());
  // The engine computed a speedup against the Naive job in the same spec.
  EXPECT_TRUE(std::isfinite(job->speedup_vs_naive));
  EXPECT_GT(job->speedup_vs_naive, 0.0);

  // And the engine's cached path reproduces a direct Runner::run_scheme of
  // the registered name bit-for-bit.
  Campaign campaign(cluster, alloc, cfg);
  RunMetrics direct = campaign.runner().run_scheme(
      w, std::string("NaiveFs"), budget_w, campaign.pvt(),
      campaign.test_run(w));
  EXPECT_EQ(bits(direct.makespan_s), bits(job->metrics.makespan_s));
  EXPECT_EQ(bits(direct.alpha), bits(job->metrics.alpha));
  EXPECT_EQ(bits(direct.target_freq_ghz), bits(job->metrics.target_freq_ghz));
  EXPECT_EQ(bits(direct.total_power_w), bits(job->metrics.total_power_w));
  ASSERT_EQ(direct.modules.size(), job->metrics.modules.size());
  for (std::size_t i = 0; i < direct.modules.size(); ++i) {
    EXPECT_EQ(bits(direct.modules[i].op.freq_ghz),
              bits(job->metrics.modules[i].op.freq_ghz));
    EXPECT_EQ(bits(direct.modules[i].op.duty),
              bits(job->metrics.modules[i].op.duty));
  }
}

TEST(SchemeRegistry, AllocationPolicyNamesRoundTrip) {
  for (cluster::AllocationPolicy p : cluster::all_allocation_policies()) {
    EXPECT_EQ(cluster::allocation_policy_by_name(
                  cluster::allocation_policy_name(p)),
              p);
  }
  EXPECT_THROW(cluster::allocation_policy_by_name("fastest"),
               InvalidArgument);
}

}  // namespace
}  // namespace vapb::core
