#include "hw/arch.hpp"

#include <gtest/gtest.h>

namespace vapb::hw {
namespace {

TEST(Arch, TableTwoRowCab) {
  ArchSpec a = cab();
  EXPECT_EQ(a.total_nodes, 1296);
  EXPECT_EQ(a.procs_per_node, 2);
  EXPECT_EQ(a.cores_per_proc, 8);
  EXPECT_DOUBLE_EQ(a.nominal_freq_ghz, 2.6);
  EXPECT_EQ(a.memory_per_node_gb, 32);
  EXPECT_DOUBLE_EQ(a.tdp_cpu_w, 115.0);
  EXPECT_EQ(a.measurement, SensorKind::kRapl);
  EXPECT_FALSE(a.dram_measurement_available);  // BIOS restriction
  EXPECT_EQ(a.total_modules(), 2592);
}

TEST(Arch, TableTwoRowVulcan) {
  ArchSpec a = vulcan();
  EXPECT_EQ(a.measurement, SensorKind::kBgqEmon);
  EXPECT_FALSE(a.supports_power_capping);
  EXPECT_EQ(a.module_granularity, "node board");
  EXPECT_DOUBLE_EQ(a.nominal_freq_ghz, 1.6);
  EXPECT_EQ(a.cores_per_proc, 16);
  // Fixed-frequency part: one ladder level.
  EXPECT_EQ(a.ladder.levels().size(), 1u);
  // No frequency variation on BG/Q.
  EXPECT_DOUBLE_EQ(a.variation.freq_sd, 0.0);
}

TEST(Arch, TableTwoRowTeller) {
  ArchSpec a = teller();
  EXPECT_EQ(a.total_nodes, 104);
  EXPECT_EQ(a.cores_per_proc, 4);
  EXPECT_DOUBLE_EQ(a.nominal_freq_ghz, 3.8);
  EXPECT_DOUBLE_EQ(a.tdp_cpu_w, 100.0);
  EXPECT_EQ(a.measurement, SensorKind::kPowerInsight);
  // Teller is the only system with performance variation.
  EXPECT_GT(a.variation.freq_sd, 0.0);
  EXPECT_GT(a.variation.freq_power_corr, 0.0);
}

TEST(Arch, TableTwoRowHa8k) {
  ArchSpec a = ha8k();
  EXPECT_EQ(a.total_nodes, 960);
  EXPECT_EQ(a.procs_per_node, 2);
  EXPECT_EQ(a.total_modules(), 1920);  // the evaluation system
  EXPECT_EQ(a.cores_per_proc, 12);
  EXPECT_DOUBLE_EQ(a.nominal_freq_ghz, 2.7);
  EXPECT_DOUBLE_EQ(a.tdp_cpu_w, 130.0);
  EXPECT_DOUBLE_EQ(a.tdp_dram_w, 62.0);
  EXPECT_TRUE(a.supports_power_capping);
  EXPECT_TRUE(a.dram_measurement_available);
  EXPECT_DOUBLE_EQ(a.ladder.fmin(), 1.2);
  EXPECT_DOUBLE_EQ(a.ladder.fmax(), 2.7);
}

TEST(Arch, AllArchsInTableOrder) {
  auto archs = all_archs();
  ASSERT_EQ(archs.size(), 4u);
  EXPECT_EQ(archs[0].system, "Cab (LLNL)");
  EXPECT_EQ(archs[1].system, "BG/Q Vulcan (LLNL)");
  EXPECT_EQ(archs[2].system, "Teller (SNL)");
  EXPECT_EQ(archs[3].system, "HA8K (Kyushu Univ.)");
}

TEST(Arch, VariationBoundsAreConsistent) {
  for (const auto& a : all_archs()) {
    const auto& v = a.variation;
    EXPECT_LT(v.cpu_dyn_lo, v.cpu_dyn_hi) << a.system;
    EXPECT_LT(v.cpu_static_lo, v.cpu_static_hi) << a.system;
    EXPECT_LT(v.dram_lo, v.dram_hi) << a.system;
    EXPECT_GE(v.cpu_dyn_sd, 0.0) << a.system;
    // Bounds bracket the mean of 1.0.
    EXPECT_LT(v.cpu_dyn_lo, 1.0) << a.system;
    EXPECT_GT(v.cpu_dyn_hi, 1.0) << a.system;
  }
}

TEST(Arch, NominalFrequencyIsLadderFmax) {
  for (const auto& a : all_archs()) {
    EXPECT_DOUBLE_EQ(a.nominal_freq_ghz, a.ladder.fmax()) << a.system;
  }
}

}  // namespace
}  // namespace vapb::hw
