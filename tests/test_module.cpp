#include "hw/module.hpp"

#include <gtest/gtest.h>

#include "stats/linreg.hpp"
#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::hw {
namespace {

FrequencyLadder ha8k_ladder() { return {1.2, 2.7, 0.1, 3.0}; }

Module average_module(ModuleId id = 0) {
  return Module(id, ModuleVariation{}, ha8k_ladder(), 130.0,
                util::SeedSequence(1));
}

PowerProfile plain_profile() {
  PowerProfile p;
  p.name = "plain";
  p.cpu_static_w = 10.0;
  p.cpu_dyn_w_per_ghz = 30.0;
  p.dram_static_w = 4.0;
  p.dram_dyn_w_per_ghz = 3.0;
  return p;
}

TEST(Module, AverageModuleMatchesProfileExactly) {
  Module m = average_module();
  PowerProfile p = plain_profile();
  EXPECT_DOUBLE_EQ(m.cpu_power_w(p, 2.0), p.cpu_w(2.0));
  EXPECT_DOUBLE_EQ(m.dram_power_w(p, 2.0), p.dram_w(2.0));
  EXPECT_DOUBLE_EQ(m.module_power_w(p, 2.0), p.module_w(2.0));
}

TEST(Module, VariationScalesApply) {
  ModuleVariation v;
  v.cpu_dyn = 1.2;
  v.cpu_static = 1.1;
  v.dram = 0.8;
  Module m(1, v, ha8k_ladder(), 130.0, util::SeedSequence(1));
  PowerProfile p = plain_profile();
  EXPECT_DOUBLE_EQ(m.cpu_power_w(p, 2.0), 1.1 * 10.0 + 1.2 * 30.0 * 2.0);
  EXPECT_DOUBLE_EQ(m.dram_power_w(p, 2.0), 0.8 * (4.0 + 3.0 * 2.0));
}

TEST(Module, SensitivityDampsVariation) {
  ModuleVariation v;
  v.cpu_dyn = 1.2;
  Module m(1, v, ha8k_ladder(), 130.0, util::SeedSequence(1));
  PowerProfile p = plain_profile();
  p.cpu_static_w = 0.0;
  p.cpu_sensitivity = 0.5;
  // Effective scale = 1 + (1.2 - 1) * 0.5 = 1.1.
  EXPECT_NEAR(m.cpu_power_w(p, 1.0), 1.1 * 30.0, 1e-9);
}

TEST(Module, PowerIsAffineInFrequency) {
  util::SeedSequence fab(3);
  ModuleVariation v;
  v.cpu_dyn = 1.07;
  v.cpu_static = 0.93;
  v.dram = 1.3;
  Module m(5, v, ha8k_ladder(), 130.0, fab);
  const auto& w = workloads::mhd();
  std::vector<double> f, cpu, dram;
  for (double x = 1.2; x <= 2.7; x += 0.1) {
    f.push_back(x);
    cpu.push_back(m.cpu_power_w(w.profile, x));
    dram.push_back(m.dram_power_w(w.profile, x));
  }
  EXPECT_GT(stats::fit_linear(f, cpu).r_squared, 0.999999);
  EXPECT_GT(stats::fit_linear(f, dram).r_squared, 0.999999);
}

TEST(Module, IdiosyncrasyIsDeterministicPerWorkload) {
  Module m(9, ModuleVariation{}, ha8k_ladder(), 130.0, util::SeedSequence(4));
  PowerProfile p = plain_profile();
  p.idiosyncrasy_sd = 0.1;
  double a = m.cpu_power_w(p, 2.0);
  double b = m.cpu_power_w(p, 2.0);
  EXPECT_DOUBLE_EQ(a, b);
  // A different workload name draws a different factor.
  PowerProfile q = p;
  q.name = "other";
  EXPECT_NE(m.cpu_power_w(q, 2.0), a);
}

TEST(Module, IdiosyncrasyZeroMeansExact) {
  Module m(9, ModuleVariation{}, ha8k_ladder(), 130.0, util::SeedSequence(4));
  PowerProfile p = plain_profile();
  EXPECT_DOUBLE_EQ(m.cpu_power_w(p, 2.0), p.cpu_w(2.0));
}

class FreqInverse : public ::testing::TestWithParam<double> {};

TEST_P(FreqInverse, FreqForPowerInvertsPowerForFreq) {
  util::SeedSequence fab(6);
  ModuleVariation v;
  v.cpu_dyn = 1.1;
  v.cpu_static = 0.9;
  Module m(2, v, ha8k_ladder(), 130.0, fab);
  const auto& w = workloads::dgemm();
  double f = GetParam();
  double p = m.cpu_power_w(w.profile, f);
  EXPECT_NEAR(m.freq_for_cpu_power(w.profile, p), f, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Freqs, FreqInverse,
                         ::testing::Values(1.2, 1.5, 2.0, 2.45, 2.7, 3.0));

TEST(Module, FreqForPowerThrowsOnFlatProfile) {
  Module m = average_module();
  PowerProfile p = plain_profile();
  p.cpu_dyn_w_per_ghz = 0.0;
  EXPECT_THROW(static_cast<void>(m.freq_for_cpu_power(p, 50.0)), InvalidArgument);
}

TEST(Module, MaxFreqUsesTurboAndFreqScale) {
  ModuleVariation v;
  v.freq = 0.9;
  Module m(3, v, ha8k_ladder(), 130.0, util::SeedSequence(1));
  EXPECT_DOUBLE_EQ(m.max_freq_ghz(false), 2.7 * 0.9);
  EXPECT_DOUBLE_EQ(m.max_freq_ghz(true), 3.0 * 0.9);
}

TEST(Module, NonPositiveTdpThrows) {
  EXPECT_THROW(Module(0, ModuleVariation{}, ha8k_ladder(), 0.0,
                      util::SeedSequence(1)),
               ConfigError);
}

TEST(Module, AccessorsExposeConstruction) {
  ModuleVariation v;
  v.dram = 1.23;
  Module m(17, v, ha8k_ladder(), 115.0, util::SeedSequence(2));
  EXPECT_EQ(m.id(), 17u);
  EXPECT_DOUBLE_EQ(m.variation().dram, 1.23);
  EXPECT_DOUBLE_EQ(m.tdp_cpu_w(), 115.0);
  EXPECT_DOUBLE_EQ(m.ladder().fmax(), 2.7);
}

}  // namespace
}  // namespace vapb::hw
