// Tests for vapb-lint's project-level layer: the structural parser, the
// symbol index + call graph, and the four semantic rule families, driven by
// the committed multi-file fixture corpus under tests/lint_fixtures/.
#include "semantic.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "parser.hpp"

namespace vapb::lint {
namespace {

std::string fixture(const std::string& rel) {
  std::ifstream in(std::string(VAPB_LINT_FIXTURE_DIR) + "/" + rel,
                   std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << rel;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

FileModel parse_fixture(const std::string& rel) {
  return parse_file("tests/lint_fixtures/" + rel, lex(fixture(rel)));
}

FileModel parse_inline(const std::string& path, const std::string& source) {
  return parse_file(path, lex(source));
}

std::vector<Violation> analyze(std::vector<FileModel> files) {
  ProjectIndex index = build_project_index(std::move(files));
  return run_semantic_rules(index, build_call_graph(index));
}

int count_rule(const std::vector<Violation>& vs, const std::string& rule) {
  int n = 0;
  for (const Violation& v : vs) n += v.rule == rule ? 1 : 0;
  return n;
}

const FunctionDef* find_fn(const ProjectIndex& index, const std::string& name) {
  const auto it = index.by_name.find(name);
  if (it == index.by_name.end() || it->second.empty()) return nullptr;
  return &index.functions[static_cast<std::size_t>(it->second.front())];
}

// -- parser -----------------------------------------------------------------

TEST(LintParser, ExtractsFunctionsMethodsAndParams) {
  FileModel m = parse_inline(
      "src/x.cpp",
      "namespace outer {\n"
      "double free_fn(int count, const std::string& label) { return 0; }\n"
      "class Widget {\n"
      " public:\n"
      "  int size() const;\n"
      "};\n"
      "int Widget::size() const { return 2; }\n"
      "}  // namespace outer\n");
  ASSERT_EQ(m.functions.size(), 2u);
  EXPECT_EQ(m.functions[0].name, "free_fn");
  EXPECT_EQ(m.functions[0].qualified, "outer::free_fn");
  EXPECT_EQ(m.functions[0].class_name, "");
  ASSERT_EQ(m.functions[0].params.size(), 2u);
  EXPECT_EQ(m.functions[0].params[0].name, "count");
  EXPECT_EQ(m.functions[0].params[1].name, "label");
  EXPECT_EQ(m.functions[1].name, "size");
  EXPECT_EQ(m.functions[1].class_name, "Widget");
  EXPECT_TRUE(m.functions[1].is_const);
  ASSERT_EQ(m.classes.size(), 1u);
  EXPECT_EQ(m.classes[0].name, "Widget");
}

TEST(LintParser, DeclarationsAreNotDefinitions) {
  FileModel m = parse_inline("src/x.cpp",
                             "double forward_decl(int a);\n"
                             "double defined(int a) { return a; }\n");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].name, "defined");
}

TEST(LintParser, RecordsLambdaCapturesAndWrites) {
  FileModel m = parse_inline(
      "src/x.cpp",
      "void f(Pool& pool, std::vector<double>& out) {\n"
      "  double total = 0.0;\n"
      "  parallel_for(pool, out.size(), [&](std::size_t i) {\n"
      "    out[i] = 1.0;\n"
      "    total += 2.0;\n"
      "  });\n"
      "}\n");
  ASSERT_EQ(m.functions.size(), 1u);
  ASSERT_EQ(m.functions[0].lambdas.size(), 1u);
  const LambdaFact& lam = m.functions[0].lambdas[0];
  EXPECT_EQ(lam.host_call, "parallel_for");
  EXPECT_TRUE(lam.ref_default);
  EXPECT_EQ(lam.index_param, "i");
  ASSERT_EQ(lam.writes.size(), 2u);
  EXPECT_EQ(lam.writes[0].name, "out");
  EXPECT_TRUE(lam.writes[0].indexed);
  EXPECT_EQ(lam.writes[1].name, "total");
  EXPECT_FALSE(lam.writes[1].indexed);
}

TEST(LintParser, AtomicDeclarationsAreRecorded) {
  FileModel m = parse_inline("src/x.cpp",
                             "void f() {\n"
                             "  std::atomic<int> count{0};\n"
                             "  std::atomic<bool>* flag = nullptr;\n"
                             "}\n");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].atomic_names.count("count"), 1u);
  EXPECT_EQ(m.functions[0].atomic_names.count("flag"), 1u);
}

TEST(LintSemantic, AtomicCounterWritesAreNotRaces) {
  auto vs = analyze({parse_inline(
      "src/x.cpp",
      "void f(Pool& pool, std::size_t n) {\n"
      "  std::atomic<long> count{0};\n"
      "  parallel_for(pool, n, [&](std::size_t i) { ++count; });\n"
      "}\n")});
  EXPECT_EQ(count_rule(vs, "parallel-capture-race"), 0);
}

TEST(LintSemantic, PrefixIncrementOfIndexedElementIsClean) {
  auto vs = analyze({parse_inline(
      "src/x.cpp",
      "void f(Pool& pool, std::vector<int>& hits) {\n"
      "  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });\n"
      "}\n")});
  EXPECT_EQ(count_rule(vs, "parallel-capture-race"), 0);
}

TEST(LintSemantic, SubscriptedStoreWithWrongIndexIsARace) {
  // Every chunk writes element 0: subscripted, but not by the loop index.
  auto vs = analyze({parse_inline(
      "src/x.cpp",
      "void f(Pool& pool, std::vector<double>& out, std::size_t n) {\n"
      "  parallel_for(pool, n, [&](std::size_t i) { out[0] += 1.0; });\n"
      "}\n")});
  EXPECT_EQ(count_rule(vs, "parallel-capture-race"), 1);
}

TEST(LintParser, UnitSuffixTable) {
  EXPECT_EQ(unit_suffix_of("budget_w"), "watts");
  EXPECT_EQ(unit_suffix_of("total_watts"), "watts");
  EXPECT_EQ(unit_suffix_of("span_s"), "seconds");
  EXPECT_EQ(unit_suffix_of("used_j"), "joules");
  EXPECT_EQ(unit_suffix_of("clock_ghz"), "gigahertz");
  EXPECT_EQ(unit_suffix_of("watts_per_s"), "");  // rates are their own unit
  EXPECT_EQ(unit_suffix_of("count"), "");
}

// -- symbol index + call graph ----------------------------------------------

TEST(LintCallGraph, QualifiedCallsResolveConfidently) {
  ProjectIndex index = build_project_index(
      {parse_inline("src/a.cpp",
                    "namespace util { double clamp(double x) { return x; } }\n"
                    "namespace des { double clamp(double x) { return x; } }\n"
                    "double use() { return util::clamp(1.0); }\n")});
  const FunctionDef* use = find_fn(index, "use");
  ASSERT_NE(use, nullptr);
  ASSERT_EQ(use->calls.size(), 1u);
  bool confident = false;
  std::vector<int> targets = resolve_call(index, *use, use->calls[0],
                                          &confident);
  EXPECT_TRUE(confident);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(index.functions[static_cast<std::size_t>(targets[0])].qualified,
            "util::clamp");
}

TEST(LintCallGraph, SameClassMethodWinsOverNameFallback) {
  ProjectIndex index = build_project_index({parse_inline(
      "src/a.cpp",
      "class A { public: void run(); void helper(); };\n"
      "class B { public: void helper(); };\n"
      "void A::run() { helper(); }\n"
      "void A::helper() {}\n"
      "void B::helper() {}\n")});
  const FunctionDef* run = find_fn(index, "run");
  ASSERT_NE(run, nullptr);
  ASSERT_EQ(run->calls.size(), 1u);
  bool confident = false;
  std::vector<int> targets =
      resolve_call(index, *run, run->calls[0], &confident);
  EXPECT_TRUE(confident);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(index.functions[static_cast<std::size_t>(targets[0])].class_name,
            "A");
}

TEST(LintCallGraph, OverloadSetsResolveToEveryCandidateUnconfidently) {
  ProjectIndex index = build_project_index({parse_inline(
      "src/a.cpp",
      "double f(double x) { return x; }\n"
      "double f(double x, double y) { return x + y; }\n"
      "double g() { return f(1.0); }\n")});
  const FunctionDef* g = find_fn(index, "g");
  ASSERT_NE(g, nullptr);
  ASSERT_EQ(g->calls.size(), 1u);
  bool confident = true;
  std::vector<int> targets = resolve_call(index, *g, g->calls[0], &confident);
  EXPECT_FALSE(confident);  // name fallback over a 2-element overload set
  EXPECT_EQ(targets.size(), 2u);
}

TEST(LintCallGraph, CyclesTerminateAndStillPropagateTaint) {
  // tick <-> tock is a call cycle; the sink BFS and the purity closure must
  // terminate, and the source inside tock must still reach the sink.
  auto vs = analyze({parse_inline(
      "src/a.cpp",
      "RunMetrics tick(int n) {\n"
      "  if (n > 0) tock(n - 1);\n"
      "  return RunMetrics{};\n"
      "}\n"
      "void tock(int n) {\n"
      "  if (n > 0) tick(n - 1);\n"
      "  std::rand();\n"
      "}\n")});
  EXPECT_EQ(count_rule(vs, "determinism-taint"), 1);
}

TEST(LintCallGraph, InheritanceCyclesDoNotHangStageDetection) {
  auto vs = analyze({parse_inline("src/a.cpp",
                                  "class A : public B { };\n"
                                  "class B : public A { };\n"
                                  "void f() {}\n")});
  EXPECT_TRUE(vs.empty());
}

// -- fixture corpus: the four semantic families -----------------------------

TEST(SemanticFixtures, CrossTuTaintIsCaught) {
  auto vs = analyze({parse_fixture("cross_tu/noise.cpp"),
                     parse_fixture("cross_tu/metrics.cpp")});
  ASSERT_EQ(count_rule(vs, "determinism-taint"), 1);
  const Violation& v = vs.front();
  // The finding lands at the source site, names the sink, and shows the path.
  EXPECT_EQ(v.file, "tests/lint_fixtures/cross_tu/noise.cpp");
  EXPECT_NE(v.message.find("fix::finalize_run"), std::string::npos)
      << v.message;
  EXPECT_NE(v.message.find("call path"), std::string::npos) << v.message;
  EXPECT_NE(v.message.find("ambient_jitter"), std::string::npos) << v.message;
  // unreferenced_draw uses the same source but is unreachable from any sink.
  EXPECT_EQ(v.line, 7);
}

TEST(SemanticFixtures, CrossTuTaintNeedsBothFiles) {
  EXPECT_TRUE(analyze({parse_fixture("cross_tu/noise.cpp")}).empty());
  EXPECT_TRUE(analyze({parse_fixture("cross_tu/metrics.cpp")}).empty());
}

TEST(SemanticFixtures, ServiceReplyIsADeterminismSink) {
  // Regression: BudgetReply/BudgetRequest were missing from the sink-type
  // list, so a reply folded from unordered iteration lint-passed even though
  // vapbd promises bit-identical replies across client thread counts.
  auto bad = analyze({parse_fixture("src/service/bad_reply_unordered.cpp")});
  ASSERT_EQ(count_rule(bad, "determinism-taint"), 1);
  EXPECT_NE(bad.front().message.find("unordered-container iteration"),
            std::string::npos)
      << bad.front().message;
  EXPECT_NE(bad.front().message.find("summarize"), std::string::npos)
      << bad.front().message;
  auto good = analyze({parse_fixture("src/service/good_reply_ordered.cpp")});
  EXPECT_EQ(count_rule(good, "determinism-taint"), 0);
}

TEST(SemanticFixtures, DeviceClassMapFoldedIntoReplyIsTainted) {
  // A per-device-class table keyed by an unordered map looks harmless (three
  // keys), but iteration is still hash-order; folding it into the reply's
  // per-class rows must be flagged. The array-indexed layout is the fix.
  auto bad = analyze({parse_fixture("src/service/bad_reply_class_map.cpp")});
  ASSERT_EQ(count_rule(bad, "determinism-taint"), 1);
  EXPECT_NE(bad.front().message.find("unordered-container iteration"),
            std::string::npos)
      << bad.front().message;
  EXPECT_NE(bad.front().message.find("class_summary"), std::string::npos)
      << bad.front().message;
  auto good =
      analyze({parse_fixture("src/service/good_reply_class_array.cpp")});
  EXPECT_EQ(count_rule(good, "determinism-taint"), 0);
}

TEST(SemanticFixtures, TenancyResultIsADeterminismSink) {
  // TenancyResult / JobOutcome join the sink-type list with the tenancy
  // subsystem: the co-scheduling simulation promises bitwise-identical
  // results at any thread count, so hash-order folds into them must flag.
  auto bad = analyze({parse_fixture("src/tenancy/bad_tenancy_unordered.cpp")});
  ASSERT_EQ(count_rule(bad, "determinism-taint"), 1);
  EXPECT_NE(bad.front().message.find("unordered-container iteration"),
            std::string::npos)
      << bad.front().message;
  EXPECT_NE(bad.front().message.find("reduce"), std::string::npos)
      << bad.front().message;
  auto good = analyze({parse_fixture("src/tenancy/good_tenancy_ordered.cpp")});
  EXPECT_EQ(count_rule(good, "determinism-taint"), 0);
}

TEST(SemanticFixtures, PerClassTableLookupsObeyUnitFlow) {
  // One return mismatch (gigahertz lookup banked as a watts cap) and one
  // argument mismatch (a seconds span into a watts headroom parameter).
  auto bad = analyze({parse_fixture("unit_flow/class_tables.cpp"),
                      parse_fixture("unit_flow/bad_class_table.cpp")});
  EXPECT_EQ(count_rule(bad, "unit-flow"), 2);
  auto good = analyze({parse_fixture("unit_flow/class_tables.cpp"),
                       parse_fixture("unit_flow/good_class_table.cpp")});
  EXPECT_EQ(count_rule(good, "unit-flow"), 0);
}

TEST(SemanticFixtures, ServiceRequestParameterMarksTheSink) {
  // A function consuming a BudgetRequest is on the reply path even when its
  // return type is opaque; ambient randomness reaching it must be flagged.
  auto vs = analyze({parse_inline(
      "src/service/handler.cpp",
      "void handle(const BudgetRequest& req, Sink& out) {\n"
      "  out.put(jitter(req.budget_w));\n"
      "}\n"
      "double jitter(double w) { return w + std::rand(); }\n")});
  EXPECT_EQ(count_rule(vs, "determinism-taint"), 1);
}

TEST(SemanticFixtures, ParallelCaptureRace) {
  auto bad = analyze({parse_fixture("race/bad_ref_capture.cpp")});
  EXPECT_EQ(count_rule(bad, "parallel-capture-race"), 2);
  for (const Violation& v : bad) {
    EXPECT_NE(v.message.find("captured by reference"), std::string::npos);
  }
  auto good = analyze({parse_fixture("race/good_indexed_capture.cpp")});
  EXPECT_EQ(count_rule(good, "parallel-capture-race"), 0);
}

TEST(SemanticFixtures, StagePurityFlagsTransitiveMemberWrites) {
  auto bad = analyze({parse_fixture("stage_purity/bad_stateful_stage.cpp")});
  ASSERT_EQ(count_rule(bad, "stage-purity"), 1);
  // The write sits two calls below run(): run -> note -> bump.
  EXPECT_NE(bad.front().message.find("bump"), std::string::npos)
      << bad.front().message;
  EXPECT_NE(bad.front().message.find("runs_"), std::string::npos);
  auto good = analyze({parse_fixture("stage_purity/good_cached_stage.cpp")});
  EXPECT_EQ(count_rule(good, "stage-purity"), 0);
}

TEST(SemanticFixtures, UnitFlowAcrossCallBoundaries) {
  auto bad = analyze({parse_fixture("unit_flow/convert.cpp"),
                      parse_fixture("unit_flow/bad_cross_unit.cpp")});
  // One argument mismatch (watts -> joules) and one return mismatch
  // (watts-returning call stored in a seconds variable).
  EXPECT_EQ(count_rule(bad, "unit-flow"), 2);
  auto good = analyze({parse_fixture("unit_flow/convert.cpp"),
                       parse_fixture("unit_flow/good_matched_units.cpp")});
  EXPECT_EQ(count_rule(good, "unit-flow"), 0);
}

}  // namespace
}  // namespace vapb::lint
