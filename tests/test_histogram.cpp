#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace vapb::stats {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 9
  h.add(5.0);   // bin 5
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampsIntoEdgeBins) {
  Histogram h(0.0, 1.0, 4);
  h.add(-100.0);
  h.add(100.0);
  h.add(1.0);  // exactly hi lands in last bin
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 2u);
}

TEST(Histogram, BinEdges) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_low(3), 3.5);
  EXPECT_DOUBLE_EQ(h.bin_high(3), 4.0);
}

TEST(Histogram, AddAll) {
  Histogram h(0.0, 1.0, 2);
  std::vector<double> v{0.1, 0.2, 0.9};
  h.add_all(v);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, AsciiHasOneLinePerBin) {
  Histogram h(0.0, 1.0, 5);
  h.add(0.5);
  std::string s = h.ascii();
  std::size_t lines = 0, pos = 0;
  while ((pos = s.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(lines, 5u);
}

TEST(Histogram, AsciiEmptyHistogramSafe) {
  Histogram h(0.0, 1.0, 3);
  EXPECT_NO_THROW(h.ascii());
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
  EXPECT_THROW(Histogram(1.0, 1.0, 5), InvalidArgument);
  EXPECT_THROW(Histogram(2.0, 1.0, 5), InvalidArgument);
}

TEST(Histogram, BinOutOfRangeThrows) {
  Histogram h(0.0, 1.0, 3);
  EXPECT_THROW(static_cast<void>(h.count(3)), InvalidArgument);
  EXPECT_THROW(static_cast<void>(h.bin_low(3)), InvalidArgument);
}

}  // namespace
}  // namespace vapb::stats
