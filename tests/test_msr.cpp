#include "hw/msr.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::hw::msr {
namespace {

Module make_module() {
  return Module(0, ModuleVariation{}, FrequencyLadder(1.2, 2.7, 0.1, 3.0),
                130.0, util::SeedSequence(1));
}

TEST(PowerUnits, DefaultsMatchIntelParts) {
  PowerUnits u;
  EXPECT_DOUBLE_EQ(u.power_unit_w(), 0.125);          // 1/8 W
  EXPECT_NEAR(u.energy_unit_j(), 15.26e-6, 0.05e-6);  // ~15.3 uJ
  EXPECT_NEAR(u.time_unit_s(), 976.6e-6, 1e-6);       // ~0.98 ms
}

TEST(PowerUnits, EncodeDecodeRoundTrips) {
  PowerUnits u;
  u.power_exp = 2;
  u.energy_exp = 14;
  u.time_exp = 7;
  PowerUnits back = PowerUnits::decode(u.encode());
  EXPECT_EQ(back.power_exp, 2u);
  EXPECT_EQ(back.energy_exp, 14u);
  EXPECT_EQ(back.time_exp, 7u);
}

TEST(PowerLimit, EncodeSetsDocumentedBits) {
  PowerUnits units;
  PowerLimit limit;
  limit.power_w = 64.0;  // 512 power units
  limit.enabled = true;
  limit.clamp = true;
  std::uint64_t raw = encode_power_limit(limit, units);
  EXPECT_EQ(raw & 0x7fff, 512u);
  EXPECT_TRUE(raw & (1ull << 15));
  EXPECT_TRUE(raw & (1ull << 16));
}

class LimitRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(LimitRoundTrip, PowerSurvivesEncodeDecode) {
  PowerUnits units;
  PowerLimit limit;
  limit.power_w = GetParam();
  limit.window_s = 1e-3;
  limit.enabled = true;
  PowerLimit back = decode_power_limit(encode_power_limit(limit, units), units);
  // Quantized to 1/8 W.
  EXPECT_NEAR(back.power_w, limit.power_w, units.power_unit_w() / 2 + 1e-12);
  EXPECT_TRUE(back.enabled);
  // Window decodes to a representable value not exceeding the request.
  EXPECT_LE(back.window_s, limit.window_s + 1e-9);
  EXPECT_GE(back.window_s, limit.window_s / 2.5);
}

INSTANTIATE_TEST_SUITE_P(Watts, LimitRoundTrip,
                         ::testing::Values(10.0, 40.0, 59.3, 77.3, 97.4,
                                           115.0, 130.0));

TEST(PowerLimit, WindowEncodingCoversMillisecondsToSeconds) {
  PowerUnits units;
  for (double w : {0.001, 0.01, 0.1, 1.0}) {
    PowerLimit limit;
    limit.power_w = 50.0;
    limit.window_s = w;
    PowerLimit back =
        decode_power_limit(encode_power_limit(limit, units), units);
    EXPECT_LE(back.window_s, w * 1.01);
    EXPECT_GE(back.window_s, w * 0.5);
  }
}

TEST(PowerLimit, OverflowRejected) {
  PowerUnits units;
  PowerLimit limit;
  limit.power_w = 5000.0;  // 40000 units > 15 bits
  EXPECT_THROW(encode_power_limit(limit, units), InvalidArgument);
  limit.power_w = -1.0;
  EXPECT_THROW(encode_power_limit(limit, units), InvalidArgument);
}

class MsrFileFixture : public ::testing::Test {
 protected:
  Module module_ = make_module();
  Rapl rapl_{module_};
  MsrFile file_{rapl_};
};

TEST_F(MsrFileFixture, ReadUnitsRegister) {
  PowerUnits u = PowerUnits::decode(file_.read(kRaplPowerUnit));
  EXPECT_EQ(u.power_exp, 3u);
}

TEST_F(MsrFileFixture, WritingLimitRegisterCapsTheModule) {
  set_pkg_power_limit(file_, 70.0, 1e-3);
  ASSERT_TRUE(rapl_.cpu_limit_w().has_value());
  EXPECT_NEAR(rapl_.cpu_limit_w()->value(), 70.0, 0.0625);
  OperatingPoint op = rapl_.operating_point(workloads::dgemm().profile);
  EXPECT_NEAR(op.cpu_w, 70.0, 0.1);
  // Register reads back what was written.
  PowerLimit back =
      decode_power_limit(file_.read(kPkgPowerLimit), file_.units());
  EXPECT_NEAR(back.power_w, 70.0, 0.0625);
}

TEST_F(MsrFileFixture, ClearingLimitUncaps) {
  set_pkg_power_limit(file_, 50.0, 1e-3);
  clear_pkg_power_limit(file_);
  EXPECT_FALSE(rapl_.cpu_limit_w().has_value());
}

TEST_F(MsrFileFixture, DisabledLimitDoesNotCap) {
  PowerLimit limit;
  limit.power_w = 50.0;
  limit.enabled = false;
  file_.write(kPkgPowerLimit, encode_power_limit(limit, file_.units()));
  EXPECT_FALSE(rapl_.cpu_limit_w().has_value());
}

TEST_F(MsrFileFixture, EnergyCountersTrackRapl) {
  OperatingPoint op = rapl_.operating_point(workloads::dgemm().profile);
  rapl_.advance(op, 5.0);
  EXPECT_NEAR(read_pkg_energy_j(file_), op.cpu_w * 5.0, 0.01);
  EXPECT_NEAR(read_dram_energy_j(file_), op.dram_w * 5.0, 0.01);
}

TEST_F(MsrFileFixture, EnergyCounterWrapsLikeHardware) {
  OperatingPoint op;
  op.cpu_w = 100.0;
  // Push past the 32-bit wrap (~65.7 kJ at 15.26 uJ units).
  rapl_.advance(op, 700.0);
  double raw_j = static_cast<double>(file_.read(kPkgEnergyStatus)) *
                 file_.units().energy_unit_j();
  EXPECT_LT(raw_j, 70000.0 * 0.95);  // wrapped: raw view lost a lap
  EXPECT_GT(rapl_.pkg_energy_j(), 69000.0);
}

TEST_F(MsrFileFixture, DramLimitAcceptedButInert) {
  file_.write(kDramPowerLimit, 0x1234);
  EXPECT_EQ(file_.read(kDramPowerLimit), 0x1234u);
  EXPECT_FALSE(rapl_.cpu_limit_w().has_value());
}

TEST_F(MsrFileFixture, WhitelistRejectsUnknownRegisters) {
  EXPECT_THROW(static_cast<void>(file_.read(0x1a0)), MsrAccessError);
  EXPECT_THROW(file_.write(0x611, 0), MsrAccessError);  // counters read-only
  EXPECT_THROW(file_.write(0x606, 0), MsrAccessError);  // units read-only
}

}  // namespace
}  // namespace vapb::hw::msr
