#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "workloads/catalog.hpp"

namespace vapb::core {
namespace {

class CampaignFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kModules = 64;

  CampaignFixture() {
    std::vector<hw::ModuleId> alloc(kModules);
    std::iota(alloc.begin(), alloc.end(), hw::ModuleId{0});
    RunConfig cfg;
    cfg.iterations = 6;  // keep tests fast
    campaign_ = std::make_unique<Campaign>(cluster_, alloc, cfg);
  }

  double budget(double cm) { return cm * kModules; }

  cluster::Cluster cluster_{hw::ha8k(), util::SeedSequence(101), kModules};
  std::unique_ptr<Campaign> campaign_;
};

TEST_F(CampaignFixture, PvtCoversFleet) {
  EXPECT_EQ(campaign_->pvt().size(), kModules);
}

TEST_F(CampaignFixture, CachesReturnSameObject) {
  const auto& a = campaign_->test_run(workloads::mhd());
  const auto& b = campaign_->test_run(workloads::mhd());
  EXPECT_EQ(&a, &b);
  const auto& u1 = campaign_->uncapped(workloads::mhd());
  const auto& u2 = campaign_->uncapped(workloads::mhd());
  EXPECT_EQ(&u1, &u2);
  const auto& o1 = campaign_->oracle(workloads::mhd());
  const auto& o2 = campaign_->oracle(workloads::mhd());
  EXPECT_EQ(&o1, &o2);
}

TEST_F(CampaignFixture, ClassificationMatchesTableFour) {
  // The Table 4 row patterns at the paper's Cm grid.
  auto row = [&](const workloads::Workload& w) {
    std::string r;
    for (double cm : {110., 100., 90., 80., 70., 60., 50.}) {
      CellClass c = campaign_->classify(w, budget(cm));
      r += c == CellClass::kValid ? 'X'
           : c == CellClass::kUnconstrained ? '.' : '-';
    }
    return r;
  };
  EXPECT_EQ(row(workloads::dgemm()), "XXXXX--");
  EXPECT_EQ(row(workloads::stream()), ".XXX---");
  EXPECT_EQ(row(workloads::mhd()), "..XXXX-");
  EXPECT_EQ(row(workloads::bt()), "...XXXX");
  EXPECT_EQ(row(workloads::sp()), "...XXXX");
  EXPECT_EQ(row(workloads::mvmc()), "...XXX-");
}

TEST_F(CampaignFixture, RunCellProducesAllSchemes) {
  CellResult cell = campaign_->run_cell(workloads::mhd(), budget(80.0));
  EXPECT_EQ(cell.cls, CellClass::kValid);
  EXPECT_EQ(cell.schemes.size(), 6u);
  ASSERT_NE(cell.uncapped, nullptr);
  for (const auto& s : cell.schemes) {
    EXPECT_TRUE(s.metrics.feasible) << scheme_name(s.kind);
    EXPECT_FALSE(std::isnan(s.speedup_vs_naive)) << scheme_name(s.kind);
  }
  EXPECT_DOUBLE_EQ(cell.scheme(SchemeKind::kNaive).speedup_vs_naive, 1.0);
}

TEST_F(CampaignFixture, VariationAwareBeatsNaiveWhenConstrained) {
  CellResult cell = campaign_->run_cell(workloads::mhd(), budget(70.0));
  EXPECT_GT(cell.scheme(SchemeKind::kVaPc).speedup_vs_naive, 1.2);
  EXPECT_GT(cell.scheme(SchemeKind::kVaFs).speedup_vs_naive, 1.2);
  // Variation-aware also beats variation-unaware Pc.
  EXPECT_GT(cell.scheme(SchemeKind::kVaFs).speedup_vs_naive,
            cell.scheme(SchemeKind::kPc).speedup_vs_naive);
}

TEST_F(CampaignFixture, InfeasibleCellIsNotRun) {
  CellResult cell = campaign_->run_cell(workloads::dgemm(), budget(50.0));
  EXPECT_EQ(cell.cls, CellClass::kInfeasible);
  for (const auto& s : cell.schemes) {
    EXPECT_FALSE(s.metrics.feasible);
    EXPECT_TRUE(std::isnan(s.speedup_vs_naive));
  }
}

TEST_F(CampaignFixture, SchemeSubsetRequest) {
  CellResult cell = campaign_->run_cell(
      workloads::mhd(), budget(80.0),
      {SchemeKind::kNaive, SchemeKind::kVaFs});
  EXPECT_EQ(cell.schemes.size(), 2u);
  EXPECT_NO_THROW(static_cast<void>(cell.scheme(SchemeKind::kVaFs)));
  EXPECT_THROW(static_cast<void>(cell.scheme(SchemeKind::kVaPc)), InvalidArgument);
}

TEST_F(CampaignFixture, CalibrationErrorsMatchSectionFiveThree) {
  // BT is the outlier (~10%); the rest stay under ~5%.
  double bt_err = campaign_->calibration_error(workloads::bt());
  EXPECT_GT(bt_err, 0.04);
  for (auto* w : workloads::evaluation_suite()) {
    if (w->name == "NPB-BT") continue;
    EXPECT_LT(campaign_->calibration_error(*w), 0.05) << w->name;
    EXPECT_LT(campaign_->calibration_error(*w), bt_err) << w->name;
  }
}

TEST_F(CampaignFixture, AlternateMicrobenchmarkChangesCalibration) {
  std::vector<hw::ModuleId> alloc(kModules);
  std::iota(alloc.begin(), alloc.end(), hw::ModuleId{0});
  RunConfig cfg;
  cfg.iterations = 6;
  Campaign alt(cluster_, alloc, cfg, &workloads::pvt_microbench_compute());
  EXPECT_EQ(alt.pvt().microbench_name(),
            workloads::pvt_microbench_compute().name);
  // A compute-bound microbenchmark predicts DGEMM at least as well as the
  // bandwidth-bound default predicts BT.
  EXPECT_LT(alt.calibration_error(workloads::dgemm()), 0.06);
}

TEST(CellClassName, Strings) {
  EXPECT_EQ(cell_class_name(CellClass::kValid), "X");
  EXPECT_EQ(cell_class_name(CellClass::kUnconstrained), "unconstrained");
  EXPECT_EQ(cell_class_name(CellClass::kInfeasible), "infeasible");
}

}  // namespace
}  // namespace vapb::core
