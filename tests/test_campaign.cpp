#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::core {
namespace {

class CampaignFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kModules = 64;

  CampaignFixture() {
    std::vector<hw::ModuleId> alloc(kModules);
    std::iota(alloc.begin(), alloc.end(), hw::ModuleId{0});
    RunConfig cfg;
    cfg.iterations = 6;  // keep tests fast
    campaign_ = std::make_unique<Campaign>(cluster_, alloc, cfg);
  }

  double budget(double cm) { return cm * kModules; }

  cluster::Cluster cluster_{hw::ha8k(), util::SeedSequence(101), kModules};
  std::unique_ptr<Campaign> campaign_;
};

TEST_F(CampaignFixture, PvtCoversFleet) {
  EXPECT_EQ(campaign_->pvt().size(), kModules);
}

TEST_F(CampaignFixture, CachesReturnSameObject) {
  const auto& a = campaign_->test_run(workloads::mhd());
  const auto& b = campaign_->test_run(workloads::mhd());
  EXPECT_EQ(&a, &b);
  const auto& u1 = campaign_->uncapped(workloads::mhd());
  const auto& u2 = campaign_->uncapped(workloads::mhd());
  EXPECT_EQ(&u1, &u2);
  const auto& o1 = campaign_->oracle(workloads::mhd());
  const auto& o2 = campaign_->oracle(workloads::mhd());
  EXPECT_EQ(&o1, &o2);
}

TEST_F(CampaignFixture, ClassificationMatchesTableFour) {
  // The Table 4 row patterns at the paper's Cm grid.
  auto row = [&](const workloads::Workload& w) {
    std::string r;
    for (double cm : {110., 100., 90., 80., 70., 60., 50.}) {
      CellClass c = campaign_->classify(w, budget(cm));
      r += c == CellClass::kValid ? 'X'
           : c == CellClass::kUnconstrained ? '.' : '-';
    }
    return r;
  };
  EXPECT_EQ(row(workloads::dgemm()), "XXXXX--");
  EXPECT_EQ(row(workloads::stream()), ".XXX---");
  EXPECT_EQ(row(workloads::mhd()), "..XXXX-");
  EXPECT_EQ(row(workloads::bt()), "...XXXX");
  EXPECT_EQ(row(workloads::sp()), "...XXXX");
  EXPECT_EQ(row(workloads::mvmc()), "...XXX-");
}

TEST_F(CampaignFixture, ClassifiesExactBudgetBoundaries) {
  // Table 4's cell edges: a budget exactly at the oracle fmin floor is the
  // last feasible point (strictly below is "-"), and a budget exactly at the
  // fmax demand is the first unconstrained point (strictly below is "X").
  const workloads::Workload& w = workloads::mhd();
  const Pmt& truth = campaign_->oracle(w);
  const double at_min = truth.total_min_w().value();
  const double at_max = truth.total_max_w().value();
  ASSERT_LT(at_min, at_max);

  EXPECT_EQ(campaign_->classify(w, at_min), CellClass::kValid);
  EXPECT_EQ(campaign_->classify(w, std::nextafter(at_min, 0.0)),
            CellClass::kInfeasible);
  EXPECT_EQ(campaign_->classify(w, at_max), CellClass::kUnconstrained);
  EXPECT_EQ(campaign_->classify(w, std::nextafter(at_max, 0.0)),
            CellClass::kValid);
}

TEST_F(CampaignFixture, FminBoundaryEnforcesFminUnderBothEnforcements) {
  // Budget exactly at the fmin floor: the solve lands on alpha = 0 / target
  // fmin exactly, and both enforcement paths run the modules there.
  const workloads::Workload& w = workloads::mhd();
  const Pmt& truth = campaign_->oracle(w);
  const double at_min = truth.total_min_w().value();
  const double fmin = cluster_.spec().ladder.fmin();

  BudgetResult solved = solve_budget(truth, util::Watts{at_min});
  EXPECT_TRUE(solved.fits_at_fmin);
  EXPECT_TRUE(solved.constrained);
  EXPECT_DOUBLE_EQ(solved.alpha, 0.0);
  EXPECT_DOUBLE_EQ(solved.target_freq_ghz.value(), fmin);

  RunMetrics pc = campaign_->runner().run_budgeted(
      w, Enforcement::kPowerCap, solved, "pc-at-fmin", at_min);
  EXPECT_TRUE(pc.feasible);
  EXPECT_TRUE(pc.constrained);
  EXPECT_DOUBLE_EQ(pc.alpha, 0.0);
  EXPECT_DOUBLE_EQ(pc.target_freq_ghz, fmin);
  EXPECT_GT(pc.makespan_s, 0.0);

  RunMetrics fs = campaign_->runner().run_budgeted(
      w, Enforcement::kFreqSelect, solved, "fs-at-fmin", at_min);
  EXPECT_TRUE(fs.feasible);
  EXPECT_DOUBLE_EQ(fs.target_freq_ghz, fmin);
  EXPECT_GT(fs.makespan_s, 0.0);
  for (const ModuleOutcome& m : fs.modules) {
    // Static frequency selection pins every module to the target.
    EXPECT_DOUBLE_EQ(m.op.freq_ghz, fmin);
  }
}

TEST_F(CampaignFixture, UnconstrainedBoundaryRunsAtFmaxUnderBothEnforcements) {
  // Budget exactly at the fmax demand: alpha = 1, the budget stops binding,
  // and both enforcement paths run every module at fmax.
  const workloads::Workload& w = workloads::mhd();
  const Pmt& truth = campaign_->oracle(w);
  const double at_max = truth.total_max_w().value();
  const double fmax = cluster_.spec().ladder.fmax();

  BudgetResult solved = solve_budget(truth, util::Watts{at_max});
  EXPECT_FALSE(solved.constrained);
  EXPECT_DOUBLE_EQ(solved.alpha, 1.0);
  EXPECT_DOUBLE_EQ(solved.target_freq_ghz.value(), fmax);

  RunMetrics pc = campaign_->runner().run_budgeted(
      w, Enforcement::kPowerCap, solved, "pc-at-fmax", at_max);
  EXPECT_TRUE(pc.feasible);
  EXPECT_FALSE(pc.constrained);
  EXPECT_DOUBLE_EQ(pc.target_freq_ghz, fmax);

  RunMetrics fs = campaign_->runner().run_budgeted(
      w, Enforcement::kFreqSelect, solved, "fs-at-fmax", at_max);
  EXPECT_TRUE(fs.feasible);
  EXPECT_DOUBLE_EQ(fs.target_freq_ghz, fmax);
  for (const ModuleOutcome& m : fs.modules) {
    EXPECT_DOUBLE_EQ(m.op.freq_ghz, fmax);
  }

  // The fmin-floor runs above are strictly slower than the unconstrained
  // boundary runs.
  RunMetrics slow = campaign_->runner().run_budgeted(
      w, Enforcement::kFreqSelect,
      solve_budget(truth, truth.total_min_w()), "fs-at-fmin", 0.0);
  EXPECT_GT(slow.makespan_s, fs.makespan_s);
}

TEST_F(CampaignFixture, RunCellProducesAllSchemes) {
  CellResult cell = campaign_->run_cell(workloads::mhd(), budget(80.0));
  EXPECT_EQ(cell.cls, CellClass::kValid);
  EXPECT_EQ(cell.schemes.size(), 6u);
  ASSERT_NE(cell.uncapped, nullptr);
  for (const auto& s : cell.schemes) {
    EXPECT_TRUE(s.metrics.feasible) << scheme_name(s.kind);
    EXPECT_FALSE(std::isnan(s.speedup_vs_naive)) << scheme_name(s.kind);
  }
  EXPECT_DOUBLE_EQ(cell.scheme(SchemeKind::kNaive).speedup_vs_naive, 1.0);
}

TEST_F(CampaignFixture, VariationAwareBeatsNaiveWhenConstrained) {
  CellResult cell = campaign_->run_cell(workloads::mhd(), budget(70.0));
  EXPECT_GT(cell.scheme(SchemeKind::kVaPc).speedup_vs_naive, 1.2);
  EXPECT_GT(cell.scheme(SchemeKind::kVaFs).speedup_vs_naive, 1.2);
  // Variation-aware also beats variation-unaware Pc.
  EXPECT_GT(cell.scheme(SchemeKind::kVaFs).speedup_vs_naive,
            cell.scheme(SchemeKind::kPc).speedup_vs_naive);
}

TEST_F(CampaignFixture, InfeasibleCellIsNotRun) {
  CellResult cell = campaign_->run_cell(workloads::dgemm(), budget(50.0));
  EXPECT_EQ(cell.cls, CellClass::kInfeasible);
  for (const auto& s : cell.schemes) {
    EXPECT_FALSE(s.metrics.feasible);
    EXPECT_TRUE(std::isnan(s.speedup_vs_naive));
  }
}

TEST_F(CampaignFixture, SchemeSubsetRequest) {
  CellResult cell = campaign_->run_cell(
      workloads::mhd(), budget(80.0),
      {SchemeKind::kNaive, SchemeKind::kVaFs});
  EXPECT_EQ(cell.schemes.size(), 2u);
  EXPECT_NO_THROW(static_cast<void>(cell.scheme(SchemeKind::kVaFs)));
  EXPECT_THROW(static_cast<void>(cell.scheme(SchemeKind::kVaPc)), InvalidArgument);
}

TEST_F(CampaignFixture, CalibrationErrorsMatchSectionFiveThree) {
  // BT is the outlier (~10%); the rest stay under ~5%.
  double bt_err = campaign_->calibration_error(workloads::bt());
  EXPECT_GT(bt_err, 0.04);
  for (auto* w : workloads::evaluation_suite()) {
    if (w->name == "NPB-BT") continue;
    EXPECT_LT(campaign_->calibration_error(*w), 0.05) << w->name;
    EXPECT_LT(campaign_->calibration_error(*w), bt_err) << w->name;
  }
}

TEST_F(CampaignFixture, AlternateMicrobenchmarkChangesCalibration) {
  std::vector<hw::ModuleId> alloc(kModules);
  std::iota(alloc.begin(), alloc.end(), hw::ModuleId{0});
  RunConfig cfg;
  cfg.iterations = 6;
  Campaign alt(cluster_, alloc, cfg, &workloads::pvt_microbench_compute());
  EXPECT_EQ(alt.pvt().microbench_name(),
            workloads::pvt_microbench_compute().name);
  // A compute-bound microbenchmark predicts DGEMM at least as well as the
  // bandwidth-bound default predicts BT.
  EXPECT_LT(alt.calibration_error(workloads::dgemm()), 0.06);
}

TEST(CellClassName, Strings) {
  EXPECT_EQ(cell_class_name(CellClass::kValid), "X");
  EXPECT_EQ(cell_class_name(CellClass::kUnconstrained), "unconstrained");
  EXPECT_EQ(cell_class_name(CellClass::kInfeasible), "infeasible");
}

// ---------------------------------------------------------------------------
// CampaignEngine
// ---------------------------------------------------------------------------

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expect_identical_metrics(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.constrained, b.constrained);
  EXPECT_TRUE(same_bits(a.alpha, b.alpha));
  EXPECT_TRUE(same_bits(a.target_freq_ghz, b.target_freq_ghz));
  EXPECT_TRUE(same_bits(a.makespan_s, b.makespan_s));
  EXPECT_TRUE(same_bits(a.total_power_w, b.total_power_w));
  ASSERT_EQ(a.modules.size(), b.modules.size());
  for (std::size_t i = 0; i < a.modules.size(); ++i) {
    EXPECT_EQ(a.modules[i].id, b.modules[i].id);
    EXPECT_TRUE(same_bits(a.modules[i].op.cpu_w, b.modules[i].op.cpu_w));
    EXPECT_TRUE(
        same_bits(a.modules[i].op.freq_ghz, b.modules[i].op.freq_ghz));
  }
}

class EngineFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kModules = 48;

  EngineFixture() {
    alloc_.resize(kModules);
    std::iota(alloc_.begin(), alloc_.end(), hw::ModuleId{0});
    cfg_.iterations = 6;
  }

  CampaignSpec mhd_spec(std::vector<SchemeKind> schemes = all_schemes(),
                        int repetitions = 1) {
    CampaignSpec spec;
    spec.workloads = {&workloads::mhd()};
    spec.budgets_w = {80.0 * kModules};
    spec.schemes = std::move(schemes);
    spec.repetitions = repetitions;
    spec.config = cfg_;
    return spec;
  }

  cluster::Cluster cluster_{hw::ha8k(), util::SeedSequence(101), kModules};
  std::vector<hw::ModuleId> alloc_;
  RunConfig cfg_;
};

TEST_F(EngineFixture, ExpandIsDenseAndSalted) {
  CampaignSpec spec = mhd_spec({SchemeKind::kNaive, SchemeKind::kVaFs}, 3);
  spec.config.run_salt = 7;
  EXPECT_EQ(spec.job_count(), 6u);
  std::vector<CampaignJob> jobs = CampaignEngine::expand(spec);
  ASSERT_EQ(jobs.size(), 6u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, i);
  }
  // Repetition is the innermost loop. Repetition 0 keeps the base salt (so
  // the engine bitwise-reproduces a direct Runner::run_scheme); later
  // repetitions get fresh forked salts.
  EXPECT_EQ(jobs[0].salt, 7u);
  EXPECT_EQ(jobs[3].salt, 7u);
  EXPECT_NE(jobs[1].salt, jobs[0].salt);
  EXPECT_NE(jobs[2].salt, jobs[1].salt);
  // The salt depends on the repetition alone, not the scheme or position.
  EXPECT_EQ(jobs[1].salt, jobs[4].salt);
  EXPECT_EQ(jobs[2].salt, jobs[5].salt);
}

TEST_F(EngineFixture, MatchesSerialCampaignBitwise) {
  Campaign campaign(cluster_, alloc_, cfg_);
  CellResult cell = campaign.run_cell(workloads::mhd(), 80.0 * kModules);

  CampaignEngine engine(cluster_, alloc_, /*threads=*/2);
  CampaignResult result = engine.run(mhd_spec());
  ASSERT_EQ(result.jobs.size(), 6u);
  for (const SchemeOutcome& s : cell.schemes) {
    const CampaignJobResult* job =
        result.find("MHD", 80.0 * kModules, s.kind);
    ASSERT_NE(job, nullptr) << scheme_name(s.kind);
    expect_identical_metrics(job->metrics, s.metrics);
    EXPECT_TRUE(same_bits(job->speedup_vs_naive, s.speedup_vs_naive));
  }
}

TEST_F(EngineFixture, TwoJobCampaignIdenticalAcrossThreadCounts) {
  CampaignSpec spec = mhd_spec({SchemeKind::kNaive, SchemeKind::kVaFs});
  ASSERT_EQ(spec.job_count(), 2u);
  CampaignEngine serial(cluster_, alloc_, /*threads=*/1);
  CampaignEngine wide(cluster_, alloc_, /*threads=*/4);
  CampaignResult a = serial.run(spec);
  CampaignResult b = wide.run(spec);
  ASSERT_EQ(a.jobs.size(), 2u);
  ASSERT_EQ(b.jobs.size(), 2u);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].job.index, b.jobs[i].job.index);
    expect_identical_metrics(a.jobs[i].metrics, b.jobs[i].metrics);
    EXPECT_TRUE(
        same_bits(a.jobs[i].speedup_vs_naive, b.jobs[i].speedup_vs_naive));
  }
}

TEST_F(EngineFixture, RepetitionsDifferButAreStable) {
  CampaignEngine engine(cluster_, alloc_, /*threads=*/2);
  CampaignSpec spec = mhd_spec({SchemeKind::kNaive}, 2);
  CampaignResult result = engine.run(spec);
  const CampaignJobResult* rep0 = result.find("MHD", 80.0 * kModules,
                                              SchemeKind::kNaive, 0);
  const CampaignJobResult* rep1 = result.find("MHD", 80.0 * kModules,
                                              SchemeKind::kNaive, 1);
  ASSERT_NE(rep0, nullptr);
  ASSERT_NE(rep1, nullptr);
  EXPECT_NE(rep0->job.salt, rep1->job.salt);
  // Fresh noise per repetition changes the simulated makespan...
  EXPECT_NE(rep0->metrics.makespan_s, rep1->metrics.makespan_s);
  // ...but a re-run reproduces both repetitions exactly.
  CampaignResult again = engine.run(spec);
  expect_identical_metrics(
      again.find("MHD", 80.0 * kModules, SchemeKind::kNaive, 1)->metrics,
      rep1->metrics);
}

TEST_F(EngineFixture, ClassifyMatchesSerialCampaign) {
  Campaign campaign(cluster_, alloc_, cfg_);
  CampaignEngine engine(cluster_, alloc_, /*threads=*/2);
  for (double cm : {110.0, 80.0, 50.0}) {
    EXPECT_EQ(engine.classify(workloads::mhd(), cm * kModules),
              campaign.classify(workloads::mhd(), cm * kModules))
        << cm;
  }
}

TEST_F(EngineFixture, InfeasibleJobsAreStubbed) {
  CampaignEngine engine(cluster_, alloc_, /*threads=*/2);
  CampaignSpec spec = mhd_spec({SchemeKind::kNaive, SchemeKind::kVaFs});
  spec.budgets_w = {40.0 * kModules};  // below fmin power: infeasible
  CampaignResult result = engine.run(spec);
  for (const CampaignJobResult& job : result.jobs) {
    EXPECT_EQ(job.cls, CellClass::kInfeasible);
    EXPECT_FALSE(job.metrics.feasible);
    EXPECT_TRUE(std::isnan(job.speedup_vs_naive));
  }
}

TEST_F(EngineFixture, ProgressReportsEveryJob) {
  CampaignEngine engine(cluster_, alloc_, /*threads=*/2);
  CampaignSpec spec = mhd_spec();
  std::vector<std::size_t> completed;
  CampaignResult result = engine.run(spec, [&](const CampaignProgress& p) {
    EXPECT_EQ(p.total, spec.job_count());
    EXPECT_NE(p.job, nullptr);
    completed.push_back(p.completed);
  });
  ASSERT_EQ(completed.size(), spec.job_count());
  // `completed` is monotone because the callback is serialized.
  EXPECT_TRUE(std::is_sorted(completed.begin(), completed.end()));
  EXPECT_EQ(completed.back(), spec.job_count());
}

TEST_F(EngineFixture, EmptySpecDimensionsAreRejected) {
  CampaignEngine engine(cluster_, alloc_, /*threads=*/2);

  CampaignSpec no_budgets = mhd_spec();
  no_budgets.budgets_w.clear();
  EXPECT_EQ(no_budgets.job_count(), 0u);
  EXPECT_THROW(engine.run(no_budgets), InvalidArgument);

  CampaignSpec no_workloads = mhd_spec();
  no_workloads.workloads.clear();
  EXPECT_THROW(engine.run(no_workloads), InvalidArgument);

  CampaignSpec no_schemes = mhd_spec({});
  EXPECT_THROW(engine.run(no_schemes), InvalidArgument);

  CampaignSpec no_reps = mhd_spec(all_schemes(), /*repetitions=*/0);
  EXPECT_THROW(engine.run(no_reps), InvalidArgument);
}

TEST_F(EngineFixture, EmptyAllocationIsRejected) {
  EXPECT_THROW(CampaignEngine(cluster_, {}, /*threads=*/1),
               InvalidArgument);
}

TEST_F(EngineFixture, CsvAndJsonWritersEmitEveryJob) {
  CampaignEngine engine(cluster_, alloc_, /*threads=*/2);
  CampaignResult result = engine.run(mhd_spec({SchemeKind::kNaive}));
  std::ostringstream csv;
  write_campaign_csv(result, csv);
  std::ostringstream json;
  write_campaign_json(result, json);
  EXPECT_NE(csv.str().find("workload,budget_w,scheme"), std::string::npos);
  EXPECT_NE(csv.str().find("MHD"), std::string::npos);
  EXPECT_NE(json.str().find("\"workload\":\"MHD\""), std::string::npos);
}

}  // namespace
}  // namespace vapb::core
