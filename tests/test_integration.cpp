// End-to-end reproduction checks at reduced scale: the paper's qualitative
// results must hold on a 96-module HA8K slice.
#include <gtest/gtest.h>

#include <numeric>

#include "core/campaign.hpp"
#include "stats/linreg.hpp"
#include "stats/summary.hpp"
#include "workloads/catalog.hpp"

namespace vapb::core {
namespace {

class Reproduction : public ::testing::Test {
 protected:
  static constexpr std::size_t kModules = 96;

  Reproduction() {
    std::vector<hw::ModuleId> alloc(kModules);
    std::iota(alloc.begin(), alloc.end(), hw::ModuleId{0});
    RunConfig cfg;
    cfg.iterations = 8;
    campaign_ = std::make_unique<Campaign>(cluster_, alloc, cfg);
  }

  double budget(double cm) { return cm * kModules; }

  cluster::Cluster cluster_{hw::ha8k(), util::SeedSequence(2015), kModules};
  std::unique_ptr<Campaign> campaign_;
};

TEST_F(Reproduction, Figure2i_UncappedModulePowerSpread) {
  const RunMetrics& m = campaign_->uncapped(workloads::dgemm());
  EXPECT_GT(m.vp(), 1.2);
  EXPECT_LT(m.vp(), 1.5);
  auto dram = stats::summarize(m.dram_powers_w());
  EXPECT_GT(dram.max / dram.min, 1.7);  // DRAM spread much wider
  auto cpu = stats::summarize(m.cpu_powers_w());
  EXPECT_NEAR(cpu.mean, 100.8, 4.0);    // paper's *DGEMM CPU average
}

TEST_F(Reproduction, Figure2ii_CapTighteningIncreasesVf) {
  const auto& w = workloads::dgemm();
  double prev_vf = 1.0;
  for (double cm : {110.0, 90.0, 70.0}) {
    CellResult cell = campaign_->run_cell(w, budget(cm), {SchemeKind::kPc});
    double vf = cell.scheme(SchemeKind::kPc).metrics.vf();
    EXPECT_GT(vf, prev_vf * 0.98) << "Vf should grow as caps tighten";
    prev_vf = vf;
  }
  EXPECT_GT(prev_vf, 1.22);  // substantial frequency variation at 70 W
}

TEST_F(Reproduction, Figure2iii_DgemmVtTracksVfButMhdDoesNot) {
  CellResult dg = campaign_->run_cell(workloads::dgemm(), budget(70.0),
                                      {SchemeKind::kPc});
  CellResult mh = campaign_->run_cell(workloads::mhd(), budget(70.0),
                                      {SchemeKind::kPc});
  double vt_dgemm = vt_normalized(dg.scheme(SchemeKind::kPc).metrics,
                                  *dg.uncapped);
  double vt_mhd = vt_normalized(mh.scheme(SchemeKind::kPc).metrics,
                                *mh.uncapped);
  EXPECT_GT(vt_dgemm, 1.3);        // up to 64% in the paper
  EXPECT_LT(vt_mhd, 1.15);         // synchronization hides the variation
}

TEST_F(Reproduction, Figure3_MhdSynchronizationWaitGrowsUnderCaps) {
  CellResult capped = campaign_->run_cell(workloads::mhd(), budget(70.0),
                                          {SchemeKind::kPc});
  const RunMetrics& uncapped = *capped.uncapped;
  auto wait_capped =
      stats::summarize(capped.scheme(SchemeKind::kPc).metrics.des
                           .sendrecv_times());
  auto wait_uncapped = stats::summarize(uncapped.des.sendrecv_times());
  EXPECT_GT(wait_capped.max, wait_uncapped.max * 1.5);
}

TEST_F(Reproduction, Figure5_PowerIsLinearInFrequency) {
  // R^2 >= 0.99 for CPU, DRAM and module power across 64 modules.
  const auto& w = workloads::dgemm();
  for (hw::ModuleId id = 0; id < 64; ++id) {
    const auto& m = cluster_.module(id);
    std::vector<double> f, cpu, dram, mod;
    for (double x = 1.2; x <= 2.7; x += 0.1) {
      f.push_back(x);
      cpu.push_back(m.cpu_power_w(w.profile, x));
      dram.push_back(m.dram_power_w(w.profile, x));
      mod.push_back(m.module_power_w(w.profile, x));
    }
    ASSERT_GT(stats::fit_linear(f, cpu).r_squared, 0.99);
    ASSERT_GT(stats::fit_linear(f, dram).r_squared, 0.99);
    ASSERT_GT(stats::fit_linear(f, mod).r_squared, 0.99);
  }
}

TEST_F(Reproduction, Figure7_VariationAwareSpeedupsAtTightBudgets) {
  // BT at Cm = 50 W is the paper's flagship cell (5.4X for VaFs).
  CellResult cell = campaign_->run_cell(workloads::bt(), budget(50.0));
  EXPECT_EQ(cell.cls, CellClass::kValid);
  double vafs = cell.scheme(SchemeKind::kVaFs).speedup_vs_naive;
  double vapc = cell.scheme(SchemeKind::kVaPc).speedup_vs_naive;
  double pc = cell.scheme(SchemeKind::kPc).speedup_vs_naive;
  EXPECT_GT(vafs, 3.0);
  EXPECT_GT(vapc, 2.0);
  EXPECT_GT(vafs, pc);
  EXPECT_GT(vapc, pc);
}

TEST_F(Reproduction, Figure7_OracleBoundsCalibratedSchemes) {
  CellResult cell = campaign_->run_cell(workloads::mhd(), budget(70.0));
  // With good calibration (MHD ~1.5% error) the gap to the oracle is small.
  double or_speedup = cell.scheme(SchemeKind::kVaPcOr).speedup_vs_naive;
  double va_speedup = cell.scheme(SchemeKind::kVaPc).speedup_vs_naive;
  EXPECT_NEAR(va_speedup, or_speedup, or_speedup * 0.15);
}

TEST_F(Reproduction, Figure8_VaFsTradesVpForVt) {
  CellResult cell = campaign_->run_cell(workloads::dgemm(), budget(70.0),
                                        {SchemeKind::kPc, SchemeKind::kVaFs});
  const RunMetrics& pc = cell.scheme(SchemeKind::kPc).metrics;
  const RunMetrics& vafs = cell.scheme(SchemeKind::kVaFs).metrics;
  // VaFs reduces execution-time variation by increasing power variation.
  EXPECT_LT(vt_normalized(vafs, *cell.uncapped),
            vt_normalized(pc, *cell.uncapped));
  EXPECT_GT(vafs.vp(), pc.vp());
}

TEST_F(Reproduction, Figure9_SchemesAdhereToBudgetExceptNaiveStream) {
  // Naive underestimates *STREAM's DRAM power and violates the budget.
  CellResult cell = campaign_->run_cell(workloads::stream(), budget(90.0),
                                        {SchemeKind::kNaive, SchemeKind::kPc,
                                         SchemeKind::kVaPc});
  EXPECT_GT(cell.scheme(SchemeKind::kNaive).metrics.total_power_w,
            budget(90.0) * 1.02);
  EXPECT_LE(cell.scheme(SchemeKind::kPc).metrics.total_power_w,
            budget(90.0) * 1.01);
  EXPECT_LE(cell.scheme(SchemeKind::kVaPc).metrics.total_power_w,
            budget(90.0) * 1.01);
}

TEST_F(Reproduction, TellerShowsPerformanceVariationUncapped) {
  // Figure 1(C): Teller is the only studied system whose *performance*
  // varies across sockets even without power caps (imperfect binning).
  cluster::Cluster teller(hw::teller(), util::SeedSequence(2015), 64);
  std::vector<hw::ModuleId> alloc(64);
  std::iota(alloc.begin(), alloc.end(), hw::ModuleId{0});
  RunConfig cfg;
  cfg.iterations = 6;
  cfg.turbo = true;
  Runner runner(teller, alloc, cfg);
  RunMetrics m = runner.run_uncapped(workloads::ep());
  EXPECT_GT(m.vt_raw(), 1.08);  // ~17% spread in the paper
  EXPECT_LT(m.vt_raw(), 1.35);
  // Intel (Cab) shows essentially none.
  cluster::Cluster cab(hw::cab(), util::SeedSequence(2015), 64);
  Runner cab_runner(cab, alloc, cfg);
  RunMetrics cm = cab_runner.run_uncapped(workloads::ep());
  EXPECT_LT(cm.vt_raw(), 1.03);
}

TEST_F(Reproduction, EpHasNoMeaningfulPerRunNoise) {
  // Section 4.1's premise: EP exhibits < 0.5% noise per run.
  RunConfig cfg;
  cfg.iterations = 8;
  std::vector<hw::ModuleId> one{0};
  Runner r1(cluster_, one, cfg);
  cfg.run_salt = 1;
  Runner r2(cluster_, one, cfg);
  RunMetrics a = r1.run_uncapped(workloads::ep());
  RunMetrics b = r2.run_uncapped(workloads::ep());
  EXPECT_NEAR(a.makespan_s / b.makespan_s, 1.0, 0.01);
}

}  // namespace
}  // namespace vapb::core
