#include "fault/counter_rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace vapb::fault {
namespace {

TEST(CounterRng, IsAPureFunctionOfItsKeyAndEvent) {
  const CounterRng a(42, "drift", 7);
  const CounterRng b(42, "drift", 7);
  EXPECT_EQ(a.key(), b.key());
  for (std::uint64_t e = 0; e < 16; ++e) {
    EXPECT_EQ(a.bits(e), b.bits(e));
    EXPECT_EQ(a.uniform(e), b.uniform(e));
    EXPECT_EQ(a.normal(e), b.normal(e));
  }
}

TEST(CounterRng, EvaluationOrderIsIrrelevant) {
  // No hidden generator state: drawing events backwards, repeatedly, or
  // interleaved always yields the forward values.
  const CounterRng rng(1, "sensor-test", 3);
  std::vector<std::uint64_t> forward;
  for (std::uint64_t e = 0; e < 8; ++e) forward.push_back(rng.bits(e));
  for (std::uint64_t e = 8; e-- > 0;) {
    EXPECT_EQ(rng.bits(e), forward[e]);
    EXPECT_EQ(rng.bits(e), forward[e]);  // re-draw is idempotent
  }
}

TEST(CounterRng, KeyComponentsAreAllSeparating) {
  const CounterRng base(1, "drift", 0);
  const CounterRng seed(2, "drift", 0);
  const CounterRng stream(1, "throttle", 0);
  const CounterRng module(1, "drift", 1);
  EXPECT_NE(base.key(), seed.key());
  EXPECT_NE(base.key(), stream.key());
  EXPECT_NE(base.key(), module.key());
  for (std::uint64_t e = 0; e < 4; ++e) {
    EXPECT_NE(base.bits(e), seed.bits(e));
    EXPECT_NE(base.bits(e), stream.bits(e));
    EXPECT_NE(base.bits(e), module.bits(e));
  }
}

TEST(CounterRng, EventsProduceDistinctDraws) {
  const CounterRng rng(9, "rapl-error", 0);
  std::set<std::uint64_t> seen;
  for (std::uint64_t e = 0; e < 256; ++e) seen.insert(rng.bits(e));
  EXPECT_EQ(seen.size(), 256u);
}

TEST(CounterRng, UniformStaysInUnitInterval) {
  const CounterRng rng(5, "throttle", 11);
  double lo = 1.0, hi = 0.0;
  for (std::uint64_t e = 0; e < 4096; ++e) {
    const double u = rng.uniform(e);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  // The draws actually cover the interval, not a sliver of it.
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(CounterRng, UniformIndexRespectsBound) {
  const CounterRng rng(5, "failure", 0);
  std::set<std::uint64_t> seen;
  for (std::uint64_t e = 0; e < 200; ++e) {
    const std::uint64_t i = rng.uniform_index(e, 7);
    ASSERT_LT(i, 7u);
    seen.insert(i);
  }
  EXPECT_EQ(seen.size(), 7u);  // every slot reachable
}

TEST(CounterRng, NormalHasUnitMomentsRoughly) {
  const CounterRng rng(2015, "sensor-pvt", 0);
  const int n = 20000;
  double sum = 0.0, sum2 = 0.0;
  for (int e = 0; e < n; ++e) {
    const double x = rng.normal(static_cast<std::uint64_t>(e));
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

}  // namespace
}  // namespace vapb::fault
