// Property-based fuzzing of the discrete-event engine: random SPMD programs
// with random symmetric halo topologies must satisfy conservation and
// ordering invariants regardless of structure.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "des/engine.hpp"
#include "util/rng.hpp"

namespace vapb::des {
namespace {

/// Builds a random symmetric peer graph for one exchange phase: a random set
/// of undirected edges over `n` ranks (possibly leaving some ranks with no
/// peers, which is legal).
std::vector<std::vector<RankId>> random_symmetric_graph(std::size_t n,
                                                        util::Rng& rng) {
  std::vector<std::vector<RankId>> peers(n);
  std::size_t edges = 1 + rng.uniform_index(2 * n);
  for (std::size_t e = 0; e < edges; ++e) {
    auto a = static_cast<RankId>(rng.uniform_index(n));
    auto b = static_cast<RankId>(rng.uniform_index(n));
    if (a == b) continue;
    if (std::find(peers[a].begin(), peers[a].end(), b) != peers[a].end()) {
      continue;
    }
    peers[a].push_back(b);
    peers[b].push_back(a);
  }
  return peers;
}

struct FuzzCase {
  std::vector<RankProgram> programs;
  std::vector<double> compute_per_rank;
};

FuzzCase random_programs(std::size_t n, util::Rng& rng) {
  FuzzCase fc;
  fc.programs.resize(n);
  fc.compute_per_rank.assign(n, 0.0);
  int segments = 1 + static_cast<int>(rng.uniform_index(8));
  for (int s = 0; s < segments; ++s) {
    // Every segment: compute on every rank, then one random comm structure
    // (same op type across ranks, as SPMD requires).
    for (std::size_t r = 0; r < n; ++r) {
      double t = rng.uniform(0.1, 5.0);
      fc.programs[r].compute(t);
      fc.compute_per_rank[r] += t;
    }
    switch (rng.uniform_index(4)) {
      case 0: {  // halo with a random symmetric graph
        auto graph = random_symmetric_graph(n, rng);
        for (std::size_t r = 0; r < n; ++r) {
          fc.programs[r].halo_exchange(graph[r], rng.uniform(0.0, 1e6));
        }
        break;
      }
      case 1:
        for (auto& p : fc.programs) p.allreduce(rng.uniform(8.0, 1e5));
        break;
      case 2:
        for (auto& p : fc.programs) p.barrier();
        break;
      default:
        break;  // compute-only segment
    }
  }
  return fc;
}

class DesFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DesFuzz, InvariantsHoldOnRandomPrograms) {
  util::Rng rng{util::SeedSequence(GetParam())};
  for (int trial = 0; trial < 10; ++trial) {
    std::size_t n = 2 + rng.uniform_index(30);
    FuzzCase fc = random_programs(n, rng);
    Engine engine;
    RunResult result = engine.run(fc.programs);

    ASSERT_EQ(result.ranks.size(), n);
    double max_finish = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const RankStats& rs = result.ranks[r];
      // Compute time is conserved exactly.
      ASSERT_NEAR(rs.compute_s, fc.compute_per_rank[r], 1e-9);
      // No negative accounting.
      ASSERT_GE(rs.wait_s, -1e-12);
      ASSERT_GE(rs.transfer_s, -1e-12);
      ASSERT_GE(rs.sendrecv_s, -1e-12);
      // Finish time decomposes into its parts.
      ASSERT_NEAR(rs.finish_time_s, rs.compute_s + rs.wait_s + rs.transfer_s,
                  1e-6);
      max_finish = std::max(max_finish, rs.finish_time_s);
    }
    ASSERT_DOUBLE_EQ(result.makespan_s, max_finish);
  }
}

TEST_P(DesFuzz, EngineIsDeterministic) {
  util::Rng rng{util::SeedSequence(GetParam() ^ 0x5eedULL)};
  std::size_t n = 2 + rng.uniform_index(20);
  FuzzCase fc = random_programs(n, rng);
  Engine engine;
  RunResult a = engine.run(fc.programs);
  RunResult b = engine.run(fc.programs);
  for (std::size_t r = 0; r < n; ++r) {
    ASSERT_DOUBLE_EQ(a.ranks[r].finish_time_s, b.ranks[r].finish_time_s);
    ASSERT_DOUBLE_EQ(a.ranks[r].wait_s, b.ranks[r].wait_s);
  }
}

TEST_P(DesFuzz, SlowingOneRankNeverSpeedsAnyoneUp) {
  // Monotonicity: adding compute time to one rank cannot reduce any rank's
  // finish time.
  util::Rng rng{util::SeedSequence(GetParam() + 77)};
  std::size_t n = 3 + rng.uniform_index(12);
  FuzzCase fc = random_programs(n, rng);
  Engine engine;
  RunResult before = engine.run(fc.programs);

  std::size_t victim = rng.uniform_index(n);
  // Find the victim's first compute op and inflate it.
  for (auto& op : fc.programs[victim].ops) {
    if (auto* c = std::get_if<ComputeOp>(&op)) {
      c->seconds += 50.0;
      break;
    }
  }
  RunResult after = engine.run(fc.programs);
  for (std::size_t r = 0; r < n; ++r) {
    ASSERT_GE(after.ranks[r].finish_time_s,
              before.ranks[r].finish_time_s - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DesFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace vapb::des
