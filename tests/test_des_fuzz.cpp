// Property-based fuzzing of the discrete-event engine: random SPMD programs
// with random symmetric halo topologies must satisfy conservation and
// ordering invariants regardless of structure — and the event-driven Engine
// must reproduce the polling ReferenceEngine bit for bit (same RankStats,
// same makespan, byte-identical doubles).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "des/engine.hpp"
#include "des/reference_engine.hpp"
#include "util/rng.hpp"

namespace vapb::des {
namespace {

/// Builds a random symmetric peer graph for one exchange phase: a random set
/// of undirected edges over `n` ranks (possibly leaving some ranks with no
/// peers, which is legal).
std::vector<std::vector<RankId>> random_symmetric_graph(std::size_t n,
                                                        util::Rng& rng) {
  std::vector<std::vector<RankId>> peers(n);
  std::size_t edges = 1 + rng.uniform_index(2 * n);
  for (std::size_t e = 0; e < edges; ++e) {
    auto a = static_cast<RankId>(rng.uniform_index(n));
    auto b = static_cast<RankId>(rng.uniform_index(n));
    if (a == b) continue;
    if (std::find(peers[a].begin(), peers[a].end(), b) != peers[a].end()) {
      continue;
    }
    peers[a].push_back(b);
    peers[b].push_back(a);
  }
  return peers;
}

struct FuzzCase {
  std::vector<RankProgram> programs;
  std::vector<double> compute_per_rank;
};

FuzzCase random_programs(std::size_t n, util::Rng& rng) {
  FuzzCase fc;
  fc.programs.resize(n);
  fc.compute_per_rank.assign(n, 0.0);
  int segments = 1 + static_cast<int>(rng.uniform_index(8));
  for (int s = 0; s < segments; ++s) {
    // Every segment: compute on every rank, then one random comm structure
    // (same op type across ranks, as SPMD requires).
    for (std::size_t r = 0; r < n; ++r) {
      double t = rng.uniform(0.1, 5.0);
      fc.programs[r].compute(t);
      fc.compute_per_rank[r] += t;
    }
    switch (rng.uniform_index(4)) {
      case 0: {  // halo with a random symmetric graph
        auto graph = random_symmetric_graph(n, rng);
        for (std::size_t r = 0; r < n; ++r) {
          fc.programs[r].halo_exchange(graph[r], rng.uniform(0.0, 1e6));
        }
        break;
      }
      case 1:
        for (auto& p : fc.programs) p.allreduce(rng.uniform(8.0, 1e5));
        break;
      case 2:
        for (auto& p : fc.programs) p.barrier();
        break;
      default:
        break;  // compute-only segment
    }
  }
  return fc;
}

class DesFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DesFuzz, InvariantsHoldOnRandomPrograms) {
  util::Rng rng{util::SeedSequence(GetParam())};
  for (int trial = 0; trial < 10; ++trial) {
    std::size_t n = 2 + rng.uniform_index(30);
    FuzzCase fc = random_programs(n, rng);
    Engine engine;
    RunResult result = engine.run(fc.programs);

    ASSERT_EQ(result.ranks.size(), n);
    double max_finish = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const RankStats& rs = result.ranks[r];
      // Compute time is conserved exactly.
      ASSERT_NEAR(rs.compute_s, fc.compute_per_rank[r], 1e-9);
      // No negative accounting.
      ASSERT_GE(rs.wait_s, -1e-12);
      ASSERT_GE(rs.transfer_s, -1e-12);
      ASSERT_GE(rs.sendrecv_s, -1e-12);
      // Finish time decomposes into its parts.
      ASSERT_NEAR(rs.finish_time_s, rs.compute_s + rs.wait_s + rs.transfer_s,
                  1e-6);
      max_finish = std::max(max_finish, rs.finish_time_s);
    }
    ASSERT_DOUBLE_EQ(result.makespan_s, max_finish);
  }
}

TEST_P(DesFuzz, EngineIsDeterministic) {
  util::Rng rng{util::SeedSequence(GetParam() ^ 0x5eedULL)};
  std::size_t n = 2 + rng.uniform_index(20);
  FuzzCase fc = random_programs(n, rng);
  Engine engine;
  RunResult a = engine.run(fc.programs);
  RunResult b = engine.run(fc.programs);
  for (std::size_t r = 0; r < n; ++r) {
    ASSERT_DOUBLE_EQ(a.ranks[r].finish_time_s, b.ranks[r].finish_time_s);
    ASSERT_DOUBLE_EQ(a.ranks[r].wait_s, b.ranks[r].wait_s);
  }
}

TEST_P(DesFuzz, SlowingOneRankNeverSpeedsAnyoneUp) {
  // Monotonicity: adding compute time to one rank cannot reduce any rank's
  // finish time.
  util::Rng rng{util::SeedSequence(GetParam() + 77)};
  std::size_t n = 3 + rng.uniform_index(12);
  FuzzCase fc = random_programs(n, rng);
  Engine engine;
  RunResult before = engine.run(fc.programs);

  std::size_t victim = rng.uniform_index(n);
  // Find the victim's first compute op and inflate it.
  for (auto& op : fc.programs[victim].ops) {
    if (auto* c = std::get_if<ComputeOp>(&op)) {
      c->seconds += 50.0;
      break;
    }
  }
  RunResult after = engine.run(fc.programs);
  for (std::size_t r = 0; r < n; ++r) {
    ASSERT_GE(after.ranks[r].finish_time_s,
              before.ranks[r].finish_time_s - 1e-9);
  }
}

// --- Differential fuzzing: Engine vs ReferenceEngine, bit for bit. ---

/// Exact comparison: NaN-proof and sign-of-zero-proof, unlike ==.
bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expect_identical(const RunResult& got, const RunResult& want) {
  ASSERT_EQ(got.ranks.size(), want.ranks.size());
  ASSERT_TRUE(same_bits(got.makespan_s, want.makespan_s))
      << got.makespan_s << " vs " << want.makespan_s;
  for (std::size_t r = 0; r < got.ranks.size(); ++r) {
    const RankStats& g = got.ranks[r];
    const RankStats& w = want.ranks[r];
    ASSERT_TRUE(same_bits(g.compute_s, w.compute_s)) << "rank " << r;
    ASSERT_TRUE(same_bits(g.wait_s, w.wait_s))
        << "rank " << r << ": " << g.wait_s << " vs " << w.wait_s;
    ASSERT_TRUE(same_bits(g.transfer_s, w.transfer_s)) << "rank " << r;
    ASSERT_TRUE(same_bits(g.sendrecv_s, w.sendrecv_s)) << "rank " << r;
    ASSERT_TRUE(same_bits(g.collective_s, w.collective_s)) << "rank " << r;
    ASSERT_TRUE(same_bits(g.finish_time_s, w.finish_time_s))
        << "rank " << r << ": " << g.finish_time_s << " vs "
        << w.finish_time_s;
  }
}

/// A network with nontrivial latency, bandwidth and an intra-node tier, so
/// the differential test exercises asymmetric p2p costs too.
NetworkModel fuzz_net(util::Rng& rng) {
  NetworkModel net;
  net.latency_s = rng.uniform(1e-7, 1e-5);
  net.bandwidth_bytes_per_s = rng.uniform(1e8, 1e11);
  net.intra_latency_s = rng.uniform(1e-8, 1e-6);
  net.intra_bandwidth_bytes_per_s = rng.uniform(1e9, 1e12);
  net.ranks_per_node = static_cast<std::uint32_t>(1 + rng.uniform_index(4));
  return net;
}

TEST_P(DesFuzz, EventEngineMatchesReferenceBitForBit) {
  util::Rng rng{util::SeedSequence(GetParam()).fork("differential")};
  for (int trial = 0; trial < 10; ++trial) {
    std::size_t n = 2 + rng.uniform_index(30);
    FuzzCase fc = random_programs(n, rng);
    NetworkModel net = fuzz_net(rng);
    RunResult want = ReferenceEngine(net).run(fc.programs);
    RunResult got = Engine(net).run(fc.programs);
    expect_identical(got, want);
    // Running the precompiled image must change nothing either.
    RunResult img = Engine(net).run(ProgramImage::compile(fc.programs));
    expect_identical(img, want);
  }
}

TEST_P(DesFuzz, SyncFreeFastPathMatchesReferenceBitForBit) {
  // Programs with no halo exchanges take Engine's analytic fast path; pin it
  // against the reference separately so scheduler coverage can't mask it.
  util::Rng rng{util::SeedSequence(GetParam()).fork("sync-free")};
  for (int trial = 0; trial < 10; ++trial) {
    std::size_t n = 2 + rng.uniform_index(30);
    std::vector<RankProgram> progs(n);
    int segments = 1 + static_cast<int>(rng.uniform_index(8));
    for (int s = 0; s < segments; ++s) {
      for (auto& p : progs) p.compute(rng.uniform(0.1, 5.0));
      switch (rng.uniform_index(3)) {
        case 0:
          for (auto& p : progs) p.allreduce(rng.uniform(8.0, 1e5));
          break;
        case 1:
          for (auto& p : progs) p.barrier();
          break;
        default:
          break;  // compute-only segment
      }
    }
    NetworkModel net = fuzz_net(rng);
    RunResult want = ReferenceEngine(net).run(progs);
    RunResult got = Engine(net).run(progs);
    expect_identical(got, want);
  }
}

TEST_P(DesFuzz, PhaseSyncFastPathMatchesReferenceBitForBit) {
  // Pure-stencil programs — one constant symmetric neighbourhood per rank,
  // no collectives — take Engine's phase-synchronous fast path; pin it
  // against the reference separately so scheduler coverage can't mask it.
  util::Rng rng{util::SeedSequence(GetParam()).fork("phase-sync")};
  for (int trial = 0; trial < 10; ++trial) {
    std::size_t n = 2 + rng.uniform_index(30);
    auto graph = random_symmetric_graph(n, rng);
    std::vector<RankProgram> progs(n);
    int iters = 1 + static_cast<int>(rng.uniform_index(12));
    double bytes = rng.uniform(0.0, 1e6);
    for (int it = 0; it < iters; ++it) {
      for (std::size_t r = 0; r < n; ++r) {
        int comps = 1 + static_cast<int>(rng.uniform_index(2));
        for (int c = 0; c < comps; ++c) {
          progs[r].compute(rng.uniform(0.1, 5.0));
        }
        progs[r].halo_exchange(graph[r], bytes);
      }
      // Occasionally change the payload between iterations so the fast
      // path's transfer-cost cache gets invalidated mid-run.
      if (rng.uniform_index(4) == 0) bytes = rng.uniform(0.0, 1e6);
    }
    NetworkModel net = fuzz_net(rng);
    RunResult want = ReferenceEngine(net).run(progs);
    ProgramImage image = ProgramImage::compile(progs);
    ASSERT_TRUE(image.uniform_topology());
    ASSERT_EQ(image.collective_op_count(), 0u);
    expect_identical(Engine(net).run(image), want);
  }
}

TEST_P(DesFuzz, BothEnginesAgreeOnDeadlocks) {
  // Chop a random tail off one rank's program: both engines must either
  // complete or throw; when one deadlocks so must the other.
  util::Rng rng{util::SeedSequence(GetParam()).fork("deadlock")};
  for (int trial = 0; trial < 10; ++trial) {
    std::size_t n = 2 + rng.uniform_index(10);
    FuzzCase fc = random_programs(n, rng);
    std::size_t victim = rng.uniform_index(n);
    auto& ops = fc.programs[victim].ops;
    if (!ops.empty()) ops.resize(rng.uniform_index(ops.size()));

    bool ref_deadlock = false;
    RunResult want;
    try {
      want = ReferenceEngine().run(fc.programs);
    } catch (const DeadlockError&) {
      ref_deadlock = true;
    } catch (const InvalidArgument&) {
      // Truncation broke halo symmetry; both engines reject at validation.
      EXPECT_THROW(static_cast<void>(Engine().run(fc.programs)),
                   InvalidArgument);
      continue;
    }
    if (ref_deadlock) {
      EXPECT_THROW(static_cast<void>(Engine().run(fc.programs)),
                   DeadlockError);
    } else {
      RunResult got = Engine().run(fc.programs);
      expect_identical(got, want);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DesFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace vapb::des
