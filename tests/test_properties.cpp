// Cross-cutting property sweeps over the full (workload x budget x scheme)
// grid — the invariants that must hold for ANY configuration, not just the
// calibrated paper points.
#include <gtest/gtest.h>

#include <cctype>
#include <numeric>

#include "core/campaign.hpp"
#include "workloads/catalog.hpp"

namespace vapb::core {
namespace {

struct GridPoint {
  const workloads::Workload* workload;
  double cm_w;
};

std::string grid_name(const ::testing::TestParamInfo<GridPoint>& info) {
  std::string n = info.param.workload->name + "_" +
                  std::to_string(static_cast<int>(info.param.cm_w));
  for (char& c : n) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return n;
}

/// Shared campaign across the whole sweep (one fleet, cached artifacts).
Campaign& shared_campaign() {
  static cluster::Cluster* cluster =
      new cluster::Cluster(hw::ha8k(), util::SeedSequence(701), 64);
  static Campaign* campaign = [] {
    std::vector<hw::ModuleId> alloc(64);
    std::iota(alloc.begin(), alloc.end(), hw::ModuleId{0});
    RunConfig cfg;
    cfg.iterations = 4;
    return new Campaign(*cluster, alloc, cfg);
  }();
  return *campaign;
}

std::vector<GridPoint> grid() {
  std::vector<GridPoint> pts;
  for (auto* w : workloads::evaluation_suite()) {
    for (double cm : {100.0, 85.0, 70.0, 55.0}) {
      pts.push_back({w, cm});
    }
  }
  return pts;
}

class SchemeGrid : public ::testing::TestWithParam<GridPoint> {};

TEST_P(SchemeGrid, InvariantsAcrossAllSchemes) {
  Campaign& campaign = shared_campaign();
  const auto& [w, cm] = GetParam();
  const double budget = cm * 64.0;
  CellResult cell = campaign.run_cell(*w, budget);
  if (cell.cls == CellClass::kInfeasible) {
    for (const auto& s : cell.schemes) EXPECT_FALSE(s.metrics.feasible);
    return;
  }
  for (const auto& s : cell.schemes) {
    const RunMetrics& m = s.metrics;
    SCOPED_TRACE(scheme_name(s.kind));
    ASSERT_TRUE(m.feasible);

    // Structural invariants.
    ASSERT_EQ(m.modules.size(), 64u);
    ASSERT_EQ(m.des.ranks.size(), 64u);
    EXPECT_GT(m.makespan_s, 0.0);
    EXPECT_GE(m.alpha, 0.0);
    EXPECT_LE(m.alpha, 1.0);
    EXPECT_GE(m.target_freq_ghz, 1.2 - 1e-9);
    EXPECT_LE(m.target_freq_ghz, 2.7 + 1e-9);

    // Physical invariants: powers positive, frequencies inside the
    // envelope, perf freq never above electrical freq.
    for (const auto& mo : m.modules) {
      EXPECT_GT(mo.op.cpu_w, 0.0);
      EXPECT_GT(mo.op.dram_w, 0.0);
      EXPECT_LE(mo.op.perf_freq_ghz, mo.op.freq_ghz + 1e-9);
      EXPECT_GT(mo.op.perf_freq_ghz, 0.0);
    }

    // Capped runs are never faster than the uncapped baseline.
    EXPECT_GE(m.makespan_s, cell.uncapped->makespan_s * 0.995);

    // Power-capping schemes respect the budget — except Naive, whose
    // DRAM-blind table may over-spend (that is Figure 9's finding).
    bool power_capped = enforcement_of(s.kind) == Enforcement::kPowerCap;
    if (power_capped && s.kind != SchemeKind::kNaive) {
      EXPECT_LE(m.total_power_w, budget * 1.02);
    }
    // Frequency selection equalizes frequencies exactly.
    if (enforcement_of(s.kind) == Enforcement::kFreqSelect) {
      EXPECT_NEAR(m.vf(), 1.0, 1e-9);
    }
  }
}

TEST_P(SchemeGrid, AlphaMonotoneInBudget) {
  Campaign& campaign = shared_campaign();
  const auto& [w, cm] = GetParam();
  if (campaign.classify(*w, cm * 64.0) == CellClass::kInfeasible) {
    GTEST_SKIP() << "cell infeasible";
  }
  const TestRunResult& test = campaign.test_run(*w);
  RunMetrics tight = campaign.runner().run_scheme(
      *w, SchemeKind::kVaFs, cm * 64.0, campaign.pvt(), test);
  RunMetrics loose = campaign.runner().run_scheme(
      *w, SchemeKind::kVaFs, (cm + 10.0) * 64.0, campaign.pvt(), test);
  EXPECT_LE(tight.alpha, loose.alpha + 1e-12);
  EXPECT_LE(tight.target_freq_ghz, loose.target_freq_ghz + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Grid, SchemeGrid, ::testing::ValuesIn(grid()),
                         grid_name);

}  // namespace
}  // namespace vapb::core
