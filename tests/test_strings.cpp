#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace vapb::util {
namespace {

TEST(Strings, FmtDoublePrecision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(3.0, 0), "3");
  EXPECT_EQ(fmt_double(-1.5, 1), "-1.5");
}

TEST(Strings, UnitFormatters) {
  EXPECT_EQ(fmt_watts(112.84), "112.8 W");
  EXPECT_EQ(fmt_ghz(2.7), "2.70 GHz");
  EXPECT_EQ(fmt_seconds(1.2345), "1.234 s");  // round-to-even aware
}

TEST(Strings, SplitBasic) {
  auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyFields) {
  auto parts = split(",x,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitEmptyStringIsOneEmptyField) {
  auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-ws"), "no-ws");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("vapb_core", "vapb"));
  EXPECT_FALSE(starts_with("va", "vapb"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, EditDistance) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(edit_distance("", "abc"), 3u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("scheme", "schemes"), 1u);  // insertion
  EXPECT_EQ(edit_distance("VaPc", "VaFs"), 2u);       // two substitutions
}

TEST(Strings, NearestNameWithinBudget) {
  const std::vector<std::string> names = {"modules", "threads", "repetitions"};
  EXPECT_EQ(nearest_name("module", names), "modules");
  EXPECT_EQ(nearest_name("treads", names), "threads");
}

TEST(Strings, NearestNameRejectsFarMatches) {
  const std::vector<std::string> names = {"modules", "threads"};
  // budget = max(2, 3/3) = 2; "xyz" is > 2 edits from everything.
  EXPECT_EQ(nearest_name("xyz", names), "");
  EXPECT_EQ(nearest_name("anything", {}), "");
}

TEST(Strings, NearestNameTiesBreakTowardEarlierCandidate) {
  // Both are one edit away; the first listed wins, deterministically.
  EXPECT_EQ(nearest_name("vapx", {"vapa", "vapb"}), "vapa");
  EXPECT_EQ(nearest_name("vapx", {"vapb", "vapa"}), "vapb");
}

}  // namespace
}  // namespace vapb::util
