#include "fault/scenario.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace vapb::fault {
namespace {

void expect_equal(const FaultScenario& a, const FaultScenario& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.sensor_noise_frac, b.sensor_noise_frac);
  EXPECT_EQ(a.drift_frac, b.drift_frac);
  EXPECT_EQ(a.drift_steps, b.drift_steps);
  EXPECT_EQ(a.staleness, b.staleness);
  EXPECT_EQ(a.rapl_error_frac, b.rapl_error_frac);
  EXPECT_EQ(a.throttle_rate, b.throttle_rate);
  EXPECT_EQ(a.throttle_perf_frac, b.throttle_perf_frac);
  EXPECT_EQ(a.throttle_duration_frac, b.throttle_duration_frac);
  EXPECT_EQ(a.failure_count, b.failure_count);
  EXPECT_EQ(a.failure_time_frac, b.failure_time_frac);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(FaultScenario, DefaultIsInert) {
  const FaultScenario s;
  EXPECT_FALSE(s.any());
  EXPECT_NE(s.fingerprint(), 0u);  // 0 is reserved for "no scenario"
}

TEST(FaultScenario, AnyTripsOnEachInjector) {
  FaultScenario s;
  s.sensor_noise_frac = 0.01;
  EXPECT_TRUE(s.any());
  s = FaultScenario{};
  s.drift_frac = 0.01;
  EXPECT_TRUE(s.any());
  s.drift_steps = 0;  // a zero-step walk drifts nothing
  EXPECT_FALSE(s.any());
  s = FaultScenario{};
  s.rapl_error_frac = 0.01;
  EXPECT_TRUE(s.any());
  s = FaultScenario{};
  s.throttle_rate = 0.5;
  EXPECT_TRUE(s.any());
  s = FaultScenario{};
  s.failure_count = 1;
  EXPECT_TRUE(s.any());
}

TEST(FaultScenario, ParsesJsonWithComments) {
  const FaultScenario s = FaultScenario::parse(R"(
    // line comment before the object
    {
      "seed": 7,          // trailing comment
      /* block comment */ "sensor_noise_frac": 0.05,
      "drift_frac": 0.02,
      "failure_count": 2
    }
  )");
  EXPECT_EQ(s.seed, 7u);
  EXPECT_EQ(s.sensor_noise_frac, 0.05);
  EXPECT_EQ(s.drift_frac, 0.02);
  EXPECT_EQ(s.failure_count, 2);
  EXPECT_EQ(s.staleness, 1.0);  // untouched default
}

TEST(FaultScenario, SerializeRoundTripsExactly) {
  FaultScenario s;
  s.seed = 123456789;
  s.sensor_noise_frac = 0.037;
  s.drift_frac = 1.0 / 3.0;  // needs full precision to survive
  s.drift_steps = 9;
  s.staleness = 0.25;
  s.rapl_error_frac = 0.011;
  s.throttle_rate = 1.75;
  s.throttle_perf_frac = 0.6;
  s.throttle_duration_frac = 0.125;
  s.failure_count = 3;
  s.failure_time_frac = 0.9;
  expect_equal(s, FaultScenario::parse(s.serialize()));
}

TEST(FaultScenario, UnknownFieldNamesTheValidSpellings) {
  try {
    (void)FaultScenario::parse(R"({"sensor_noise": 0.05})");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown field 'sensor_noise'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("sensor_noise_frac"), std::string::npos) << msg;
    EXPECT_NE(msg.find("drift_frac"), std::string::npos) << msg;
    EXPECT_NE(msg.find("failure_count"), std::string::npos) << msg;
  }
}

TEST(FaultScenario, RejectsMalformedJson) {
  EXPECT_THROW((void)FaultScenario::parse("{"), InvalidArgument);
  EXPECT_THROW((void)FaultScenario::parse(R"({"seed": })"), InvalidArgument);
  EXPECT_THROW((void)FaultScenario::parse(R"({"seed": 1} extra)"),
               InvalidArgument);
  EXPECT_THROW((void)FaultScenario::parse(R"({"seed": 1, "seed": 2})"),
               InvalidArgument);
  EXPECT_THROW((void)FaultScenario::parse("/* never closed {"),
               InvalidArgument);
}

TEST(FaultScenario, ParsesCliShorthand) {
  const FaultScenario s =
      FaultScenario::parse_kv("sensor_noise_frac=0.05,drift_frac=0.02,seed=9");
  EXPECT_EQ(s.seed, 9u);
  EXPECT_EQ(s.sensor_noise_frac, 0.05);
  EXPECT_EQ(s.drift_frac, 0.02);

  EXPECT_THROW((void)FaultScenario::parse_kv("drift_frac"), InvalidArgument);
  EXPECT_THROW((void)FaultScenario::parse_kv("bogus=1"), InvalidArgument);
  EXPECT_THROW((void)FaultScenario::parse_kv("drift_frac=abc"),
               InvalidArgument);
}

TEST(FaultScenario, ValidateRejectsOutOfRangeFields) {
  FaultScenario s;
  s.sensor_noise_frac = -0.1;
  EXPECT_THROW(s.validate(), InvalidArgument);
  s = FaultScenario{};
  s.staleness = 1.5;
  EXPECT_THROW(s.validate(), InvalidArgument);
  s = FaultScenario{};
  s.throttle_perf_frac = 0.0;
  EXPECT_THROW(s.validate(), InvalidArgument);
  s = FaultScenario{};
  s.failure_count = -1;
  EXPECT_THROW(s.validate(), InvalidArgument);
  s = FaultScenario{};
  s.failure_time_frac = 1.0;
  EXPECT_THROW(s.validate(), InvalidArgument);
}

TEST(FaultScenario, ExampleFileParsesAndRoundTrips) {
  std::ifstream f(VAPB_EXAMPLES_DIR "/fault_scenario.json");
  ASSERT_TRUE(f) << "examples/fault_scenario.json missing";
  std::ostringstream text;
  text << f.rdbuf();

  const FaultScenario s = FaultScenario::parse(text.str());
  EXPECT_EQ(s.seed, 2015u);
  EXPECT_EQ(s.sensor_noise_frac, 0.05);
  EXPECT_EQ(s.drift_frac, 0.04);
  EXPECT_EQ(s.failure_count, 1);
  EXPECT_TRUE(s.any());

  // The canonical form reproduces the example's value exactly.
  expect_equal(s, FaultScenario::parse(s.serialize()));
}

TEST(FaultScenario, FingerprintSeparatesSeedsAndFields) {
  FaultScenario a;
  FaultScenario b;
  b.seed = 2;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b = FaultScenario{};
  b.drift_frac = 1e-9;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

}  // namespace
}  // namespace vapb::fault
