// ProgramImage / ImageBuilder: compilation of AoS rank programs into the
// flattened SoA form the event-driven engine executes, and the workloads
// generator that emits image form directly.
#include "des/image.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "des/engine.hpp"
#include "util/error.hpp"
#include "workloads/catalog.hpp"
#include "workloads/programs.hpp"

namespace vapb::des {
namespace {

TEST(ProgramImage, CompileFlattensOpsInProgramOrder) {
  std::vector<RankProgram> progs(2);
  progs[0].compute(1.5);
  progs[0].halo_exchange({1}, 64.0);
  progs[0].allreduce(8.0);
  progs[1].compute(2.5);
  progs[1].halo_exchange({0}, 64.0);
  progs[1].allreduce(8.0);
  progs[1].barrier();

  ProgramImage img = ProgramImage::compile(progs);
  ASSERT_EQ(img.nranks(), 2u);
  EXPECT_EQ(img.total_ops(), 7u);
  EXPECT_EQ(img.halo_op_count(), 2u);
  EXPECT_EQ(img.op_begin(0), 0u);
  EXPECT_EQ(img.op_end(0), 3u);
  EXPECT_EQ(img.op_end(1), 7u);

  EXPECT_EQ(img.kind(0), OpKind::kCompute);
  EXPECT_DOUBLE_EQ(img.value(0), 1.5);
  EXPECT_EQ(img.kind(1), OpKind::kHaloExchange);
  EXPECT_DOUBLE_EQ(img.value(1), 64.0);
  EXPECT_EQ(img.kind(2), OpKind::kAllreduce);
  EXPECT_EQ(img.kind(6), OpKind::kBarrier);

  // Each rank holds one halo phase; slots are consecutive.
  EXPECT_EQ(img.total_halo_phases(), 2u);
  EXPECT_EQ(img.halo_phase_begin(0), 0u);
  EXPECT_EQ(img.halo_phase_begin(1), 1u);
}

TEST(ProgramImage, IdenticalPeerListsShareOneTopologyEntry) {
  // 10 iterations of the same 2-rank exchange: the AoS form stores 10 peer
  // vectors per rank, the image stores one topology entry per rank.
  std::vector<RankProgram> progs(2);
  for (int it = 0; it < 10; ++it) {
    progs[0].compute(1.0);
    progs[0].halo_exchange({1}, 64.0);
    progs[1].compute(1.0);
    progs[1].halo_exchange({0}, 64.0);
  }
  ProgramImage img = ProgramImage::compile(progs);
  EXPECT_EQ(img.halo_op_count(), 20u);
  EXPECT_EQ(img.topology_count(), 2u);
  EXPECT_EQ(img.peer_edge_count(), 2u);
  // All of rank 0's halo ops reference the same entry.
  const std::uint32_t t = img.topology(img.op_begin(0) + 1);
  for (std::size_t op = img.op_begin(0); op < img.op_end(0); ++op) {
    if (img.kind(op) == OpKind::kHaloExchange) {
      EXPECT_EQ(img.topology(op), t);
    }
  }
  ASSERT_EQ(img.peer_count(t), 1u);
  EXPECT_EQ(*img.peers_begin(t), 1u);
  // One topology per rank, no collectives: the stencil shape the engine's
  // phase-synchronous fast path keys on.
  EXPECT_TRUE(img.uniform_topology());
  EXPECT_EQ(img.collective_op_count(), 0u);
}

TEST(ProgramImage, PhaseVaryingPeerListsAreNotUniform) {
  // Phase 0 pairs (0,1); phase 1 pairs (0,2): rank 0 uses two topologies.
  // The bystander rank sits each phase out with an empty peer list, which
  // keeps phase indices aligned and symmetry intact.
  std::vector<RankProgram> progs(3);
  progs[0].halo_exchange({1}, 8.0);
  progs[1].halo_exchange({0}, 8.0);
  progs[2].halo_exchange({}, 8.0);
  progs[0].halo_exchange({2}, 8.0);
  progs[1].halo_exchange({}, 8.0);
  progs[2].halo_exchange({0}, 8.0);
  ProgramImage img = ProgramImage::compile(progs);
  EXPECT_FALSE(img.uniform_topology());
}

TEST(ProgramImage, CountsCollectiveOps) {
  std::vector<RankProgram> progs(2);
  for (auto& p : progs) {
    p.compute(1.0);
    p.allreduce(64.0);
    p.barrier();
  }
  ProgramImage img = ProgramImage::compile(progs);
  EXPECT_EQ(img.collective_op_count(), 4u);
}

TEST(ImageBuilder, RequiresNondecreasingRankOrder) {
  ImageBuilder b(3);
  b.compute(1, 1.0);
  EXPECT_THROW(b.compute(0, 1.0), InvalidArgument);
}

TEST(ImageBuilder, RejectsOutOfRangeRankAndTopology) {
  ImageBuilder b(2);
  EXPECT_THROW(b.compute(2, 1.0), InvalidArgument);
  EXPECT_THROW(b.halo_exchange(0, /*topology=*/0, 64.0), InvalidArgument);
}

TEST(ImageBuilder, SkippedRanksGetEmptyStreams) {
  ImageBuilder b(3);
  b.compute(2, 1.0);  // ranks 0 and 1 never add ops
  ProgramImage img = b.build();
  EXPECT_EQ(img.op_begin(0), img.op_end(0));
  EXPECT_EQ(img.op_begin(1), img.op_end(1));
  EXPECT_EQ(img.op_end(2) - img.op_begin(2), 1u);
}

TEST(ImageBuilder, ValidatesPeerRangeSelfAndSymmetry) {
  {
    std::vector<RankProgram> progs(2);
    progs[0].halo_exchange({5}, 0.0);
    progs[1].halo_exchange({0}, 0.0);
    EXPECT_THROW(static_cast<void>(ProgramImage::compile(progs)),
                 InvalidArgument);
  }
  {
    std::vector<RankProgram> progs(1);
    progs[0].halo_exchange({0}, 0.0);
    EXPECT_THROW(static_cast<void>(ProgramImage::compile(progs)),
                 InvalidArgument);
  }
  {
    std::vector<RankProgram> progs(2);
    progs[0].halo_exchange({1}, 0.0);
    progs[1].compute(1.0);
    try {
      static_cast<void>(ProgramImage::compile(progs));
      FAIL() << "expected InvalidArgument";
    } catch (const InvalidArgument& err) {
      EXPECT_NE(std::string(err.what()).find("asymmetric halo exchange"),
                std::string::npos);
    }
  }
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

TEST(BuildProgramImage, MatchesBuildProgramsBitForBitAcrossSuite) {
  // The direct image generator must reproduce compile(build_programs(...))
  // exactly for every workload communication pattern in the catalog.
  const std::size_t nranks = 24;
  const int iterations = 6;
  workloads::ComputeTimeFn compute = [](std::size_t rank, int iter) {
    return 1.0 + 0.01 * static_cast<double>(rank) +
           0.001 * static_cast<double>(iter);
  };
  Engine engine;
  for (const workloads::Workload* w : workloads::evaluation_suite()) {
    auto programs = workloads::build_programs(*w, nranks, iterations, compute);
    auto image = workloads::build_program_image(*w, nranks, iterations, compute);
    RunResult want = engine.run(programs);
    RunResult got = engine.run(image);
    ASSERT_EQ(got.ranks.size(), want.ranks.size()) << w->name;
    ASSERT_TRUE(same_bits(got.makespan_s, want.makespan_s)) << w->name;
    for (std::size_t r = 0; r < nranks; ++r) {
      ASSERT_TRUE(same_bits(got.ranks[r].finish_time_s,
                            want.ranks[r].finish_time_s))
          << w->name << " rank " << r;
      ASSERT_TRUE(same_bits(got.ranks[r].wait_s, want.ranks[r].wait_s))
          << w->name << " rank " << r;
      ASSERT_TRUE(
          same_bits(got.ranks[r].transfer_s, want.ranks[r].transfer_s))
          << w->name << " rank " << r;
    }
  }
}

TEST(BuildProgramImage, StoresStencilTopologyOncePerRank) {
  const std::size_t nranks = 27;
  const int iterations = 50;
  workloads::ComputeTimeFn compute = [](std::size_t, int) { return 1.0; };
  const workloads::Workload& mhd = workloads::mhd();  // kHalo3D pattern
  auto image = workloads::build_program_image(mhd, nranks, iterations, compute);
  EXPECT_EQ(image.halo_op_count(), nranks * static_cast<std::size_t>(iterations));
  // One topology entry per rank regardless of iteration count.
  EXPECT_EQ(image.topology_count(), nranks);
}

TEST(BuildProgramImage, RejectsDegenerateArguments) {
  workloads::ComputeTimeFn compute = [](std::size_t, int) { return 1.0; };
  const workloads::Workload& mhd = workloads::mhd();
  EXPECT_THROW(
      static_cast<void>(workloads::build_program_image(mhd, 0, 1, compute)),
      InvalidArgument);
  EXPECT_THROW(
      static_cast<void>(workloads::build_program_image(mhd, 4, 0, compute)),
      InvalidArgument);
}

}  // namespace
}  // namespace vapb::des
