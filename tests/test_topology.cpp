#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "des/program.hpp"
#include "util/error.hpp"

namespace vapb::des::topology {
namespace {

TEST(Chain1D, Endpoints) {
  EXPECT_EQ(chain_1d(0, 5), (std::vector<RankId>{1}));
  EXPECT_EQ(chain_1d(4, 5), (std::vector<RankId>{3}));
  EXPECT_EQ(chain_1d(2, 5), (std::vector<RankId>{1, 3}));
}

TEST(Chain1D, SingleRankHasNoPeers) {
  EXPECT_TRUE(chain_1d(0, 1).empty());
}

TEST(Chain1D, OutOfRangeThrows) {
  EXPECT_THROW(chain_1d(5, 5), InternalError);
}

TEST(Grid3D, CornerHasThreePeers) {
  auto peers = grid_3d(0, 3, 3, 3);
  EXPECT_EQ(peers.size(), 3u);
}

TEST(Grid3D, InteriorHasSixPeers) {
  // Center of a 3x3x3 grid: index 13.
  auto peers = grid_3d(13, 3, 3, 3);
  EXPECT_EQ(peers.size(), 6u);
  std::set<RankId> expected{12, 14, 10, 16, 4, 22};
  EXPECT_EQ(std::set<RankId>(peers.begin(), peers.end()), expected);
}

TEST(Grid3D, DegenerateDimsBehaveLikeChain) {
  auto peers = grid_3d(2, 5, 1, 1);
  EXPECT_EQ(std::set<RankId>(peers.begin(), peers.end()),
            (std::set<RankId>{1, 3}));
}

class GridSymmetry : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GridSymmetry, PeerRelationIsSymmetricAndIrreflexive) {
  std::size_t n = GetParam();
  auto dims = balanced_dims_3d(n);
  ASSERT_EQ(dims[0] * dims[1] * dims[2], n);
  for (std::size_t r = 0; r < n; ++r) {
    auto peers =
        grid_3d(static_cast<RankId>(r), dims[0], dims[1], dims[2]);
    for (RankId p : peers) {
      ASSERT_NE(p, r);
      ASSERT_LT(p, n);
      auto back = grid_3d(p, dims[0], dims[1], dims[2]);
      ASSERT_TRUE(std::find(back.begin(), back.end(),
                            static_cast<RankId>(r)) != back.end())
          << "rank " << r << " lists " << p << " but not vice versa";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GridSymmetry,
                         ::testing::Values(1, 2, 3, 7, 8, 12, 27, 48, 64, 97,
                                           192, 1920));

class BalancedDims : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BalancedDims, ProductMatchesAndReasonablyCubic) {
  std::size_t n = GetParam();
  auto d = balanced_dims_3d(n);
  EXPECT_EQ(d[0] * d[1] * d[2], n);
  // No dimension should be zero.
  EXPECT_GE(d[0], 1u);
  EXPECT_GE(d[1], 1u);
  EXPECT_GE(d[2], 1u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BalancedDims,
                         ::testing::Values(1, 2, 4, 6, 8, 13, 27, 30, 64, 100,
                                           192, 960, 1920, 24576));

TEST(BalancedDims, PerfectCubeIsCubic) {
  auto d = balanced_dims_3d(27);
  EXPECT_EQ(d[0], 3u);
  EXPECT_EQ(d[1], 3u);
  EXPECT_EQ(d[2], 3u);
}

TEST(BalancedDims, Ha8kScaleIsNotDegenerate) {
  auto d = balanced_dims_3d(1920);
  // 1920 = 2^7 * 3 * 5; a balanced split keeps all dims > 1.
  EXPECT_GT(d[0], 1u);
  EXPECT_GT(d[1], 1u);
  EXPECT_GT(d[2], 1u);
}

TEST(BalancedDims, ZeroThrows) {
  EXPECT_THROW(balanced_dims_3d(0), InternalError);
}

}  // namespace
}  // namespace vapb::des::topology
