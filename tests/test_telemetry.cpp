#include "util/telemetry.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace vapb::util {
namespace {

TEST(Telemetry, StartsEmpty) {
  Telemetry t;
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.stages().empty());
  EXPECT_TRUE(t.counters().empty());
}

TEST(Telemetry, RecordStageAccumulatesCallsTotalAndMax) {
  Telemetry t;
  t.record_stage("solve", 0.25);
  t.record_stage("solve", 0.5);
  t.record_stage("solve", 0.125);
  ASSERT_EQ(t.stages().size(), 1u);
  const Telemetry::StageStats& s = t.stages().at("solve");
  EXPECT_EQ(s.calls, 3u);
  EXPECT_DOUBLE_EQ(s.total_s, 0.875);
  EXPECT_DOUBLE_EQ(s.max_s, 0.5);
  EXPECT_FALSE(t.empty());
}

TEST(Telemetry, CountersAccumulate) {
  Telemetry t;
  t.add_counter("cache_hit");
  t.add_counter("cache_hit", 4);
  t.add_counter("cache_miss", 0);
  EXPECT_EQ(t.counters().at("cache_hit"), 5u);
  EXPECT_EQ(t.counters().at("cache_miss"), 0u);
}

TEST(Telemetry, MergeFoldsStagesAndCounters) {
  Telemetry a;
  a.record_stage("calibrate", 1.0);
  a.record_stage("solve", 0.25);
  a.add_counter("jobs", 2);

  Telemetry b;
  b.record_stage("solve", 0.75);
  b.record_stage("execute", 0.5);
  b.add_counter("jobs", 3);
  b.add_counter("cache_hit", 1);

  a.merge(b);
  EXPECT_EQ(a.stages().size(), 3u);
  EXPECT_EQ(a.stages().at("solve").calls, 2u);
  EXPECT_DOUBLE_EQ(a.stages().at("solve").total_s, 1.0);
  EXPECT_DOUBLE_EQ(a.stages().at("solve").max_s, 0.75);
  EXPECT_EQ(a.stages().at("calibrate").calls, 1u);
  EXPECT_EQ(a.stages().at("execute").calls, 1u);
  EXPECT_EQ(a.counters().at("jobs"), 5u);
  EXPECT_EQ(a.counters().at("cache_hit"), 1u);
}

TEST(Telemetry, MergeIntoEmptyCopies) {
  Telemetry b;
  b.record_stage("execute", 0.5);
  b.add_counter("jobs", 3);
  Telemetry a;
  a.merge(b);
  EXPECT_EQ(a.stages().at("execute").calls, 1u);
  EXPECT_DOUBLE_EQ(a.stages().at("execute").max_s, 0.5);
  EXPECT_EQ(a.counters().at("jobs"), 3u);
}

TEST(Telemetry, WriteJsonEmitsSortedStableDocument) {
  Telemetry t;
  t.record_stage("solve", 0.5);
  t.record_stage("calibrate", 0.25);
  t.add_counter("jobs", 2);
  std::ostringstream os;
  t.write_json(os);
  EXPECT_EQ(os.str(),
            "{\"stages\": {"
            "\"calibrate\": {\"calls\": 1, \"total_s\": 0.25, "
            "\"max_s\": 0.25}, "
            "\"solve\": {\"calls\": 1, \"total_s\": 0.5, \"max_s\": 0.5}}, "
            "\"counters\": {\"jobs\": 2}}\n");
}

TEST(Telemetry, WriteJsonEscapesSpecials) {
  Telemetry t;
  t.add_counter("a\"b\\c", 1);
  std::ostringstream os;
  t.write_json(os);
  EXPECT_NE(os.str().find("\"a\\\"b\\\\c\": 1"), std::string::npos);
}

TEST(Telemetry, WriteJsonRestoresStreamFormatting) {
  Telemetry t;
  t.record_stage("solve", 0.125);
  std::ostringstream os;
  os.precision(3);
  t.write_json(os);
  EXPECT_EQ(os.precision(), 3);
}

TEST(ScopedStage, RecordsOneCallWithNonNegativeElapsed) {
  Telemetry t;
  { ScopedStage timer(t, "execute"); }
  ASSERT_EQ(t.stages().size(), 1u);
  const Telemetry::StageStats& s = t.stages().at("execute");
  EXPECT_EQ(s.calls, 1u);
  EXPECT_GE(s.total_s, 0.0);
  EXPECT_DOUBLE_EQ(s.total_s, s.max_s);
}

TEST(MonotonicSeconds, NeverDecreases) {
  const double a = monotonic_seconds();
  const double b = monotonic_seconds();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace vapb::util
