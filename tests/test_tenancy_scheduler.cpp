#include "tenancy/machine_scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/calibration_cache.hpp"
#include "core/campaign.hpp"
#include "core/pmt.hpp"
#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::tenancy {
namespace {

class TenancyFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kModules = 32;

  TenancyFixture() {
    pvt_ = core::CalibrationCache::global().pvt(
        cluster_, workloads::pvt_microbench(), cluster_.seed().fork("pvt"));
    scheduler_ = std::make_unique<MachineScheduler>(cluster_, pvt_);
  }

  TenancyTrace base_trace() {
    TenancyTrace t;
    t.seed = 5;
    t.budget_cm_w = 80.0;
    return t;
  }

  std::vector<hw::ModuleId> full_pool() {
    std::vector<hw::ModuleId> pool(kModules);
    std::iota(pool.begin(), pool.end(), hw::ModuleId{0});
    return pool;
  }

  double pvt_power_scale(hw::ModuleId id) {
    const core::PvtEntry& e = pvt_->entry(id);
    return (e.cpu_max + e.dram_max) / 2.0;
  }

  cluster::Cluster cluster_{hw::ha8k(), util::SeedSequence(7), kModules};
  std::shared_ptr<const core::Pvt> pvt_;
  std::unique_ptr<MachineScheduler> scheduler_;
};

TEST(JainIndex, MatchesDefinition) {
  EXPECT_EQ(jain_index({}), 0.0);
  EXPECT_EQ(jain_index({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(jain_index({1.0, 1.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({1.0, 0.0, 0.0, 0.0}), 0.25);
}

// The tentpole acceptance check: a trace with one job asking for the whole
// machine under contiguous placement and equal-share partitioning is the
// degenerate case — exactly one segment whose metrics must be bit-identical
// to driving the staged pipeline directly.
TEST_F(TenancyFixture, SingleJobTraceMatchesDirectPipelineRun) {
  TenancyTrace t = base_trace();
  t.jobs.push_back({"solo", "MHD", kModules, "", 0.0, 4});
  const TenancyResult r = scheduler_->run(t);

  ASSERT_EQ(r.jobs.size(), 1u);
  const JobOutcome& o = r.jobs[0];
  EXPECT_EQ(o.start_s, 0.0);
  EXPECT_EQ(o.wait_s, 0.0);
  EXPECT_EQ(o.segments, 1);
  EXPECT_EQ(o.stalls, 0);
  EXPECT_EQ(o.modules, kModules);

  // The direct pipeline run over the same allocation, budget and seeds.
  const std::vector<hw::ModuleId> alloc = full_pool();
  core::RunConfig cfg;
  cfg.iterations = 4;
  const core::Runner runner(cluster_, alloc, cfg);
  auto test = core::CalibrationCache::global().test_run(
      cluster_, alloc.front(), workloads::mhd(),
      core::test_run_seed(cluster_, workloads::mhd()));
  const double budget_w = t.budget_cm_w * static_cast<double>(kModules);
  const core::RunMetrics direct = core::run_scheme_cached(
      cluster_, runner, workloads::mhd(), t.scheme, budget_w, *pvt_, *test);

  EXPECT_EQ(o.final_budget_w, budget_w);
  EXPECT_EQ(o.final_metrics.makespan_s, direct.makespan_s);
  EXPECT_EQ(o.final_metrics.total_power_w, direct.total_power_w);
  EXPECT_EQ(o.final_metrics.alpha, direct.alpha);
  EXPECT_EQ(o.final_metrics.target_freq_ghz, direct.target_freq_ghz);
  EXPECT_EQ(o.finish_s, direct.makespan_s);
  EXPECT_EQ(r.makespan_s, direct.makespan_s);
  EXPECT_EQ(o.energy_j, direct.total_power_w * direct.makespan_s);
}

TEST_F(TenancyFixture, RunIsDeterministic) {
  TenancyTrace t = base_trace();
  t.jobs.push_back({"a", "MHD", 16, "", 0.0, 3});
  t.jobs.push_back({"b", "*DGEMM", 16, "", 2.0, 3});
  const TenancyResult r1 = scheduler_->run(t);
  const TenancyResult r2 = scheduler_->run(t);
  ASSERT_EQ(r1.jobs.size(), r2.jobs.size());
  EXPECT_EQ(r1.makespan_s, r2.makespan_s);
  EXPECT_EQ(r1.energy_j, r2.energy_j);
  EXPECT_EQ(r1.jain_fairness, r2.jain_fairness);
  for (std::size_t k = 0; k < r1.jobs.size(); ++k) {
    EXPECT_EQ(r1.jobs[k].finish_s, r2.jobs[k].finish_s);
    EXPECT_EQ(r1.jobs[k].energy_j, r2.jobs[k].energy_j);
    EXPECT_EQ(r1.jobs[k].allocation, r2.jobs[k].allocation);
  }
}

TEST_F(TenancyFixture, ConcurrentJobsSplitTheEnvelopeByModuleCount) {
  TenancyTrace t = base_trace();
  t.jobs.push_back({"a", "MHD", 16, "", 0.0, 3});
  t.jobs.push_back({"b", "*DGEMM", 16, "", 0.0, 3});
  const TenancyResult r = scheduler_->run(t);
  const double machine_w = t.budget_cm_w * static_cast<double>(kModules);
  // Both run from t = 0 under the equal split; the partition is
  // work-conserving, so whoever finishes last is re-solved alone at the
  // full machine envelope while the early finisher's last share was half.
  EXPECT_EQ(r.jobs[0].start_s, 0.0);
  EXPECT_EQ(r.jobs[1].start_s, 0.0);
  const std::size_t last = r.jobs[0].finish_s > r.jobs[1].finish_s ? 0 : 1;
  EXPECT_EQ(r.jobs[1 - last].final_budget_w, machine_w * (16.0 / 32.0));
  EXPECT_EQ(r.jobs[last].final_budget_w, machine_w);
  // Allocations are disjoint.
  std::vector<hw::ModuleId> all = r.jobs[0].allocation;
  all.insert(all.end(), r.jobs[1].allocation.begin(),
             r.jobs[1].allocation.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

TEST_F(TenancyFixture, ScarceModulesForceFcfsQueueing) {
  TenancyTrace t = base_trace();
  t.jobs.push_back({"first", "MHD", 24, "", 0.0, 3});
  t.jobs.push_back({"second", "MHD", 24, "", 0.0, 3});
  const TenancyResult r = scheduler_->run(t);
  EXPECT_EQ(r.jobs[0].wait_s, 0.0);
  // The second 24-module job cannot start until the first finishes.
  EXPECT_GT(r.jobs[1].wait_s, 0.0);
  EXPECT_EQ(r.jobs[1].start_s, r.jobs[0].finish_s);
  EXPECT_EQ(r.makespan_s, r.jobs[1].finish_s);
  // Each job ran alone, so each held the full work-conserving envelope.
  EXPECT_EQ(r.jobs[1].final_budget_w,
            t.budget_cm_w * static_cast<double>(kModules));
}

TEST_F(TenancyFixture, WaterFillClampsEveryJobAtItsDemand) {
  // An envelope far above everyone's fmax demand: water-filling must clamp
  // each job at exactly its calibrated demand (bitwise — the same PMT the
  // test recomputes here), unlike equal-share which just splits the excess.
  TenancyTrace t = base_trace();
  t.budget_cm_w = 400.0;
  t.partition = "water-fill";
  t.jobs.push_back({"a", "MHD", 16, "", 0.0, 3});
  t.jobs.push_back({"b", "*DGEMM", 16, "", 0.0, 3});
  const TenancyResult r = scheduler_->run(t);
  for (const JobOutcome& o : r.jobs) {
    const workloads::Workload& w = workloads::by_name(o.workload);
    auto test = core::CalibrationCache::global().test_run(
        cluster_, o.allocation.front(), w, core::test_run_seed(cluster_, w));
    const core::Pmt floors = core::calibrate_pmt(*pvt_, *test, o.allocation,
                                                 cluster_.spec().ladder);
    EXPECT_EQ(o.final_budget_w, floors.total_max_w().value()) << o.name;
  }
}

TEST_F(TenancyFixture, ModuleFailureForcesReallocation) {
  // Placement draws only from the trace seed's per-job forks, never from
  // the failure fields, so a dry run reveals which modules the job holds.
  TenancyTrace t = base_trace();
  t.jobs.push_back({"victim", "MHD", 16, "", 0.0, 6});
  const TenancyResult dry = scheduler_->run(t);
  const std::vector<hw::ModuleId> held = dry.jobs[0].allocation;
  hw::ModuleId spare = 0;
  while (std::find(held.begin(), held.end(), spare) != held.end()) ++spare;

  t.fail_module = static_cast<int>(held[3]);
  t.fail_time_s = 1.0e-3;  // strike early, well inside the run
  const TenancyResult r = scheduler_->run(t);
  const JobOutcome& o = r.jobs[0];
  EXPECT_EQ(o.modules_lost, 1);
  EXPECT_GE(o.segments, 2);   // the failure forced a re-solve
  EXPECT_EQ(o.modules, 16u);  // a spare replaced the dead module
  EXPECT_EQ(std::find(o.allocation.begin(), o.allocation.end(), held[3]),
            o.allocation.end());
  EXPECT_NE(std::find(o.allocation.begin(), o.allocation.end(), spare),
            o.allocation.end());
  // The swap re-solved onto different silicon, so the finish time moved
  // (either way: the spare may be faster or slower than the dead module).
  EXPECT_NE(r.jobs[0].finish_s, dry.jobs[0].finish_s);
}

TEST_F(TenancyFixture, MidRunFailureBanksTheCutSegmentExactlyOnce) {
  // Strike halfway through the run so the cut segment has banked work
  // (floor(6 * 0.5) = 3 iterations) — a regression guard for the failure
  // path double-counting the pre-failure interval via two advance() cuts
  // at the same instant.
  TenancyTrace t = base_trace();
  t.jobs.push_back({"victim", "MHD", 16, "", 0.0, 6});
  const TenancyResult dry = scheduler_->run(t);
  // Single job, single segment: the dry run's mean power is the power of
  // the pre-failure segment (same allocation, same full envelope).
  const double power1 = dry.jobs[0].energy_j / dry.jobs[0].finish_s;

  t.fail_module = static_cast<int>(dry.jobs[0].allocation[3]);
  t.fail_time_s = 0.5 * dry.jobs[0].finish_s;
  const TenancyResult r = scheduler_->run(t);
  const JobOutcome& o = r.jobs[0];
  EXPECT_EQ(o.modules_lost, 1);
  EXPECT_EQ(o.segments, 2);
  // Energy: the cut segment banked once at the pre-failure power, the
  // re-solved remainder at its own power for the remaining wall time.
  const double head_j = power1 * t.fail_time_s;
  const double tail_j =
      o.final_metrics.total_power_w * (o.finish_s - t.fail_time_s);
  EXPECT_DOUBLE_EQ(o.energy_j, head_j + tail_j);
}

TEST_F(TenancyFixture, FailedModuleReplacedBySameClassSpare) {
  const cluster::Cluster fleet(hw::ha8k(), util::SeedSequence(11),
                               hw::ClassMix::parse("cpu:8,gpu:3,dram:1"));
  auto pvt = core::CalibrationCache::global().pvt(
      fleet, workloads::pvt_microbench(), fleet.seed().fork("pvt"));
  const MachineScheduler scheduler(fleet, pvt);
  TenancyTrace t;
  t.budget_cm_w = 80.0;
  t.jobs.push_back({"mixed", "MHD", 0, "cpu:4,gpu:2", 0.0, 4});
  const TenancyResult dry = scheduler.run(t);
  hw::ModuleId dead_gpu = 0;
  for (const hw::ModuleId id : dry.jobs[0].allocation) {
    if (fleet.device_class(id) == hw::DeviceClass::kGpu) dead_gpu = id;
  }
  t.fail_module = static_cast<int>(dead_gpu);
  t.fail_time_s = 1.0e-3;
  const TenancyResult r = scheduler.run(t);
  const JobOutcome& o = r.jobs[0];
  EXPECT_EQ(o.modules_lost, 1);
  // The one idle GPU — not a lower-id CPU — replaced the dead GPU, so the
  // job keeps the cpu:4,gpu:2 composition admission validated.
  ASSERT_EQ(o.modules, 6u);
  std::size_t cpus = 0;
  std::size_t gpus = 0;
  for (const hw::ModuleId id : o.allocation) {
    if (fleet.device_class(id) == hw::DeviceClass::kCpu) ++cpus;
    if (fleet.device_class(id) == hw::DeviceClass::kGpu) ++gpus;
  }
  EXPECT_EQ(cpus, 4u);
  EXPECT_EQ(gpus, 2u);
  EXPECT_EQ(std::find(o.allocation.begin(), o.allocation.end(), dead_gpu),
            o.allocation.end());
}

TEST_F(TenancyFixture, NoSameClassSpareLeavesTheJobShort) {
  const cluster::Cluster fleet(hw::ha8k(), util::SeedSequence(11),
                               hw::ClassMix::parse("cpu:8,gpu:3,dram:1"));
  auto pvt = core::CalibrationCache::global().pvt(
      fleet, workloads::pvt_microbench(), fleet.seed().fork("pvt"));
  const MachineScheduler scheduler(fleet, pvt);
  TenancyTrace t;
  t.budget_cm_w = 80.0;
  // The job holds every GPU, so a GPU death has no same-class spare even
  // though idle CPU and DRAM modules exist: the job must run short rather
  // than silently absorb a different device class.
  t.jobs.push_back({"allgpu", "MHD", 0, "cpu:4,gpu:3", 0.0, 4});
  const TenancyResult dry = scheduler.run(t);
  hw::ModuleId dead_gpu = 0;
  for (const hw::ModuleId id : dry.jobs[0].allocation) {
    if (fleet.device_class(id) == hw::DeviceClass::kGpu) dead_gpu = id;
  }
  t.fail_module = static_cast<int>(dead_gpu);
  t.fail_time_s = 1.0e-3;
  const TenancyResult r = scheduler.run(t);
  const JobOutcome& o = r.jobs[0];
  EXPECT_EQ(o.modules_lost, 1);
  ASSERT_EQ(o.modules, 6u);
  std::size_t cpus = 0;
  std::size_t gpus = 0;
  for (const hw::ModuleId id : o.allocation) {
    if (fleet.device_class(id) == hw::DeviceClass::kCpu) ++cpus;
    if (fleet.device_class(id) == hw::DeviceClass::kGpu) ++gpus;
  }
  EXPECT_EQ(cpus, 4u);
  EXPECT_EQ(gpus, 2u);
}

TEST_F(TenancyFixture, IdlePoolFailureRetiresTheModule) {
  TenancyTrace t = base_trace();
  t.jobs.push_back({"a", "MHD", 8, "", 0.0, 3});
  const TenancyResult dry = scheduler_->run(t);
  const std::vector<hw::ModuleId>& held = dry.jobs[0].allocation;
  hw::ModuleId idle = 0;
  while (std::find(held.begin(), held.end(), idle) != held.end()) ++idle;
  t.fail_module = static_cast<int>(idle);
  t.fail_time_s = 1.0e-3;
  const TenancyResult r = scheduler_->run(t);
  EXPECT_EQ(r.jobs[0].modules_lost, 0);
  EXPECT_EQ(r.jobs[0].segments, 1);
}

TEST_F(TenancyFixture, InfeasibleSharesDeadlockLoudly) {
  TenancyTrace t = base_trace();
  t.budget_cm_w = 40.0;  // below the fmin floor: nothing can ever run
  t.jobs.push_back({"a", "MHD", kModules, "", 0.0, 3});
  EXPECT_THROW((void)scheduler_->run(t), InternalError);
}

TEST_F(TenancyFixture, OversizedRequestsThrow) {
  TenancyTrace t = base_trace();
  t.jobs.push_back({"big", "MHD", kModules + 1, "", 0.0, 3});
  try {
    (void)scheduler_->run(t);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("job 'big' requests 33 modules"),
              std::string::npos)
        << e.what();
  }
  TenancyTrace m = base_trace();
  m.jobs.push_back({"mixy", "MHD", 0, "gpu:1", 0.0, 3});
  EXPECT_THROW((void)scheduler_->run(m), InvalidArgument)
      << "homogeneous CPU fleet has no GPUs";
}

TEST_F(TenancyFixture, VariationAwarePlacementRoutesPowerByFrequencySensitivity) {
  const std::vector<hw::ModuleId> pool = full_pool();
  // *STREAM (cpu_fraction 0.45) is memory-bound, so losing CPU clocks costs
  // it little: it should absorb the power-hungry silicon. NPB-EP
  // (cpu_fraction 0.985) is frequency-bound and should get the efficient
  // tail of the ranking.
  JobSpec stream_job{"s", "*STREAM", 8, "", 0.0, 0};
  JobSpec ep_job{"e", "NPB-EP", 8, "", 0.0, 0};
  const util::SeedSequence seed = util::SeedSequence(5).fork("place", 0);
  const auto stream_alloc = scheduler_->place(
      pool, stream_job, PlacementPolicy::kVariationAware, seed);
  const auto ep_alloc =
      scheduler_->place(pool, ep_job, PlacementPolicy::kVariationAware, seed);
  ASSERT_EQ(stream_alloc.size(), 8u);
  ASSERT_EQ(ep_alloc.size(), 8u);
  double stream_scale = 0.0;
  double ep_scale = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    stream_scale += pvt_power_scale(stream_alloc[i]);
    ep_scale += pvt_power_scale(ep_alloc[i]);
  }
  EXPECT_GT(stream_scale, ep_scale);
}

TEST_F(TenancyFixture, PlacementIsDeterministicPerSeed) {
  const std::vector<hw::ModuleId> pool = full_pool();
  JobSpec job{"a", "MHD", 8, "", 0.0, 0};
  for (const PlacementPolicy p : all_placement_policies()) {
    const util::SeedSequence seed = util::SeedSequence(9).fork("place", 1);
    const auto a = scheduler_->place(pool, job, p, seed);
    const auto b = scheduler_->place(pool, job, p, seed);
    EXPECT_EQ(a, b) << placement_policy_name(p);
    ASSERT_EQ(a.size(), 8u) << placement_policy_name(p);
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()))
        << placement_policy_name(p);
  }
}

TEST_F(TenancyFixture, HeterogeneousMixJobsGetTheirComposition) {
  const cluster::Cluster fleet(hw::ha8k(), util::SeedSequence(11),
                               hw::ClassMix::parse("cpu:8,gpu:3,dram:1"));
  auto pvt = core::CalibrationCache::global().pvt(
      fleet, workloads::pvt_microbench(), fleet.seed().fork("pvt"));
  const MachineScheduler scheduler(fleet, pvt);
  TenancyTrace t;
  t.budget_cm_w = 80.0;
  t.jobs.push_back({"mixed", "MHD", 0, "cpu:4,gpu:2", 0.0, 2});
  const TenancyResult r = scheduler.run(t);
  const JobOutcome& o = r.jobs[0];
  ASSERT_EQ(o.modules, 6u);
  std::size_t cpus = 0;
  std::size_t gpus = 0;
  for (const hw::ModuleId id : o.allocation) {
    if (fleet.device_class(id) == hw::DeviceClass::kCpu) ++cpus;
    if (fleet.device_class(id) == hw::DeviceClass::kGpu) ++gpus;
  }
  EXPECT_EQ(cpus, 4u);
  EXPECT_EQ(gpus, 2u);
}

}  // namespace
}  // namespace vapb::tenancy
