// Negative compile test: dimensionally illegal unit arithmetic must be
// rejected. The CMake test driving this TU builds it with WILL_FAIL, so a
// successful compile is a test failure.
#include "util/units.hpp"

int main() {
  const vapb::util::Watts power{70.0};
  const vapb::util::GigaHertz freq{2.7};
  auto nonsense = power * freq;  // no such operator: watts x frequency
  return static_cast<int>(nonsense.value());
}
