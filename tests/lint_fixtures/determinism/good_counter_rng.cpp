// Fixture: drawing fault perturbations through fault::CounterRng is the
// approved way to randomize outside util::SeedSequence — counter-based,
// stateless, reproducible at any thread count.
#include "fault/counter_rng.hpp"

double perturb(double watts, std::uint64_t module, std::uint64_t event) {
  vapb::fault::CounterRng rng(/*seed=*/1, "sensor-pvt", module);
  return watts * (1.0 + 0.05 * rng.normal(event));
}
