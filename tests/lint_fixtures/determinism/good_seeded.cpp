// Fixture: seeded project RNG use is fine; so is the word "random" in
// comments or strings ("std::mt19937 is banned" must not trip the lexer).
#include "util/rng.hpp"

const char* kNote = "std::mt19937 and std::rand() are banned here";

double draw(vapb::util::SeedSequence seed) {
  vapb::util::SplitMix rng(seed.value());
  return rng.uniform();
}
