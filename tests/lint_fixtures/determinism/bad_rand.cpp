// Fixture: ambient randomness must be rejected outside the allowlist.
#include <cstdlib>
#include <random>

int noisy_draw() {
  std::random_device rd;
  std::mt19937 gen(rd());
  return static_cast<int>(gen()) + std::rand();
}
