// Fixture: a reasoned suppression silences exactly the named rule.
#include <random>

int draw() {
  // vapb-lint: allow(determinism-random): fixture exercises the suppression path
  std::mt19937 gen(7);
  return static_cast<int>(gen());  // vapb-lint: allow(determinism-random): same engine, trailing form
}
