// Fixture: a suppression without a reason is itself a violation, and does
// not silence the underlying finding.
#include <random>

int draw() {
  // vapb-lint: allow(determinism-random)
  std::mt19937 gen(7);
  return static_cast<int>(gen());
}
