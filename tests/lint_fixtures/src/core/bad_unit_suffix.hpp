#pragma once

// Fixture: the path mimics src/core, where unsuffixed physical-quantity
// doubles are banned.
struct ModuleReading {
  double power = 0.0;      // needs _w
  double frequency = 0.0;  // needs _ghz
  double energy = 0.0;     // needs _j
};
