#pragma once

// Fixture: suffixed doubles and non-physical names are fine in src/core.
struct ModuleReading {
  double power_w = 0.0;
  double freq_ghz = 0.0;
  double energy_j = 0.0;
  double alpha = 0.0;               // not a physical quantity
  double power_utilization = 0.0;   // dimensionless derivative
  double cpu_dyn_w_per_ghz = 0.0;   // compound rate names its own unit
};
