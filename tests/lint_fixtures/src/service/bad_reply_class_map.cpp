// Fixture: a per-device-class power table keyed by an unordered map. The
// key space is tiny ({cpu, gpu, dram}) which makes the fold look harmless,
// but iteration order is still hash-order — folding it into a BudgetReply
// (the per-class summary rows vapbd serves) must be flagged.
#include <unordered_map>

namespace fix::service {

enum class DeviceClass { kCpu, kGpu, kDram };

struct BudgetReply {
  double class_mean_w = 0.0;
};

BudgetReply class_summary(
    const std::unordered_map<DeviceClass, double>& class_power_w) {
  BudgetReply r;
  for (const auto& [cls, w] : class_power_w) {
    r.class_mean_w += w;
  }
  return r;
}

}  // namespace fix::service
