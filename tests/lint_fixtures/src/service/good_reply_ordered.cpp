// Fixture: the deterministic counterpart — the reply folds a vector in index
// order, so nothing order-sensitive reaches the sink and the analyzer must
// stay quiet.
#include <vector>

namespace fix::service {

struct BudgetReply {
  double total_w = 0.0;
};

BudgetReply summarize(const std::vector<double>& powers) {
  BudgetReply r;
  for (double w : powers) {
    r.total_w += w;
  }
  return r;
}

}  // namespace fix::service
