// Fixture: the service reply is a deterministic sink. Folding unordered-map
// iteration order into a BudgetReply escapes the token-level rules (which
// scope raw reductions to src/cluster/), so the taint rule must catch it.
#include <unordered_map>

namespace fix::service {

struct BudgetReply {
  double total_w = 0.0;
};

BudgetReply summarize(const std::unordered_map<int, double>& powers) {
  BudgetReply r;
  for (const auto& [id, w] : powers) {
    r.total_w += w;
  }
  return r;
}

}  // namespace fix::service
