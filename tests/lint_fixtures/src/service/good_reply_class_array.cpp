// Fixture: the deterministic counterpart — the per-class table lives in a
// std::array indexed by device-class ordinal, so the reply folds in the
// fixed class-index order and the analyzer must stay quiet.
#include <array>

namespace fix::service {

struct BudgetReply {
  double class_mean_w = 0.0;
};

BudgetReply class_summary(const std::array<double, 3>& class_power_w) {
  BudgetReply r;
  for (double w : class_power_w) {
    r.class_mean_w += w;
  }
  return r;
}

}  // namespace fix::service
