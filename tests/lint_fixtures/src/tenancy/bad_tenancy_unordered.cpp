// Fixture: the tenancy simulation's results are deterministic sinks — a
// TenancyResult is promised bit-identical at any thread count. Folding
// unordered-map iteration order into its system metrics must be flagged by
// the taint rule even though the loop itself looks innocuous.
#include <string>
#include <unordered_map>
#include <vector>

namespace fix::tenancy {

struct JobOutcome {
  std::string name;
  double energy_j = 0.0;
};

struct TenancyResult {
  std::vector<JobOutcome> jobs;
  double energy_j = 0.0;
};

TenancyResult reduce(const std::unordered_map<std::string, double>& by_job) {
  TenancyResult r;
  for (const auto& [name, energy] : by_job) {
    r.jobs.push_back({name, energy});
    r.energy_j += energy;
  }
  return r;
}

}  // namespace fix::tenancy
