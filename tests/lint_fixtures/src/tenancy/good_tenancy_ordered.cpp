// Fixture: the deterministic counterpart of bad_tenancy_unordered.cpp — the
// same reduction over a fixed-order vector, which the taint rule must pass.
#include <string>
#include <utility>
#include <vector>

namespace fix::tenancy {

struct JobOutcome {
  std::string name;
  double energy_j = 0.0;
};

struct TenancyResult {
  std::vector<JobOutcome> jobs;
  double energy_j = 0.0;
};

TenancyResult reduce(const std::vector<std::pair<std::string, double>>& jobs) {
  TenancyResult r;
  for (const auto& [name, energy] : jobs) {
    r.jobs.push_back({name, energy});
    // vapb-lint: allow(determinism-reduction): fixed job order
    r.energy_j += energy;
  }
  return r;
}

}  // namespace fix::tenancy
