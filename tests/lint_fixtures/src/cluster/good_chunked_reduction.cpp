// The sanctioned cluster-layer reduction pattern: util::chunked_sum's fixed
// chunk association makes the floating-point result independent of the
// surrounding parallelism. Induction steps and text assembly are not
// reductions and stay clean.
#include "util/reduce.hpp"

double fleet_power_w(const double* module_w, unsigned long n) {
  return vapb::util::chunked_sum(
      n, [&](unsigned long i) { return module_w[i]; });
}

unsigned long strided_visits(unsigned long n, unsigned long stride) {
  unsigned long visits = 0;
  for (unsigned long i = 0; i < n; i += stride) {
    visits = visits + 1;
  }
  return visits;
}
