// Deliberate violation corpus for determinism-reduction: loop-carried
// floating-point accumulations in the cluster layer whose result depends on
// association order.
double fleet_power_w(const double* module_w, unsigned long n) {
  double total_w = 0.0;
  for (unsigned long i = 0; i < n; ++i) {
    total_w += module_w[i];
  }
  return total_w;
}

double worst_case_w(const double* module_w, unsigned long n) {
  double acc_w = 0.0;
  unsigned long i = 0;
  while (i < n) {
    acc_w += 2.0 * module_w[i];
    ++i;
  }
  return acc_w;
}
