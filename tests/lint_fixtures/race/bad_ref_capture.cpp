// parallel_for body accumulates through a by-reference capture: concurrent
// chunks race on `total_w` and the association varies with the schedule.
#include <cstddef>
#include <vector>

namespace fix {

double sum_powers(ThreadPool& pool, const std::vector<double>& xs) {
  double total_w = 0.0;
  parallel_for(pool, xs.size(), [&](std::size_t i) { total_w += xs[i]; });
  return total_w;
}

void count_ready(ThreadPool& pool, const std::vector<int>& flags) {
  long ready = 0;
  parallel_for(pool, flags.size(), [&ready, &flags](std::size_t i) {
    const int flag = flags[i];
    if (flag != 0) ++ready;
  });
}

}  // namespace fix
