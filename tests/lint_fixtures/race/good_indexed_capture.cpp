// The safe shapes: per-element stores subscripted by the loop index, locals
// declared inside the body, and by-value captures (each chunk gets a copy).
#include <cstddef>
#include <vector>

namespace fix {

void square_all(ThreadPool& pool, std::vector<double>& out) {
  parallel_for(pool, out.size(), [&](std::size_t i) { out[i] = out[i] * 2.0; });
}

void scale_all(ThreadPool& pool, std::vector<double>& out, double gain) {
  parallel_for(pool, out.size(), [&out, gain](std::size_t i) {
    double scaled = out[i] * gain;
    out[i] = scaled;
  });
}

}  // namespace fix
