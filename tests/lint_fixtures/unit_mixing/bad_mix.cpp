// Fixture: arithmetic across unit suffixes must be flagged.
struct Reading {
  double cpu_w = 0.0;
  double makespan_s = 0.0;
  double freq_ghz = 0.0;
};

double nonsense(const Reading& r, double budget_w) {
  double bad_sum = r.cpu_w + r.makespan_s;      // watts + seconds
  bool bad_cmp = budget_w < r.freq_ghz;         // watts vs gigahertz
  return bad_cmp ? bad_sum : r.cpu_w - r.freq_ghz;  // watts - gigahertz
}
