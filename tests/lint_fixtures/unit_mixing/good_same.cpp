// Fixture: same-unit arithmetic and dimension-changing * and / are legal.
struct Reading {
  double cpu_w = 0.0;
  double dram_w = 0.0;
  double makespan_s = 0.0;
};

double fine(const Reading& r, double budget_w) {
  double total_w = r.cpu_w + r.dram_w;      // watts + watts
  double energy_j = total_w * r.makespan_s;  // multiplication changes dims
  bool over = total_w > budget_w;            // watts vs watts
  return over ? energy_j : total_w / budget_w;
}
