// Cross-TU taint sink: folds the helper from noise.cpp into a RunResult.
namespace fix {

struct RunResult {
  double total_w = 0.0;
};

double ambient_jitter();
double scaled_w(double base_w);

// Deterministic helper on the same sink path — must not be flagged.
double scaled_w(double base_w) { return base_w * 2.0; }

RunResult finalize_run(double base_w) {
  RunResult r;
  r.total_w = scaled_w(base_w) + ambient_jitter();
  return r;
}

}  // namespace fix
