// Cross-TU taint source: an unseeded draw helper. The sink that makes this
// a finding lives in metrics.cpp — neither file is a violation on its own.
#include <cstdlib>

namespace fix {

double ambient_jitter() { return static_cast<double>(std::rand()) / 100.0; }

// Same source kind, but nothing on a sink path calls it: the analyzer must
// stay quiet here (reachability, not mere presence, is what the rule proves).
double unreferenced_draw() { return static_cast<double>(std::rand()); }

}  // namespace fix
