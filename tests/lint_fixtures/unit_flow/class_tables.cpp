// Callee vocabulary for the per-class-table unit-flow pair: the lookups a
// heterogeneous budget solve leans on, defined in their own TU so the
// mismatches in bad_class_table.cpp are only visible cross-TU.
namespace fix {

double class_fmax_ghz(unsigned device_class) {
  return device_class == 0 ? 2.2 : 1.4;
}

double class_tdp_w(unsigned device_class) {
  return device_class == 0 ? 110.0 : 253.0;
}

double rebudget(double headroom_w) { return headroom_w * 0.5; }

}  // namespace fix
