// The same per-class lookups consumed with agreeing suffixes are clean.
namespace fix {

double class_fmax_ghz(unsigned device_class);
double class_tdp_w(unsigned device_class);
double rebudget(double headroom_w);

double budget(unsigned device_class) {
  double peak_ghz = class_fmax_ghz(device_class);
  double scaled = rebudget(class_tdp_w(device_class));
  return peak_ghz * scaled;
}

}  // namespace fix
