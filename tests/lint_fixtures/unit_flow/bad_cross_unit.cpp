// Unit mismatches across a call boundary: a watts value lands in a joules
// parameter, and a watts-returning call is stored in a seconds variable.
namespace fix {

double integrate_power(double energy_j, double window_s);
double avg_power_w(double draw_w);

double report(double total_w, double span_s) {
  double mean = integrate_power(total_w, span_s);
  double elapsed_s = avg_power_w(total_w);
  return mean + elapsed_s;
}

}  // namespace fix
