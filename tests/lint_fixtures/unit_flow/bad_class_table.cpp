// Per-class table lookups with unit mismatches: the class ladder lookup
// returns gigahertz but the caller banks it as a watts cap, and a seconds
// span flows into rebudget's watts headroom parameter.
namespace fix {

double class_fmax_ghz(unsigned device_class);
double rebudget(double headroom_w);

double misbudget(unsigned device_class, double span_s) {
  double cap_w = class_fmax_ghz(device_class);
  double scaled = rebudget(span_s);
  return cap_w + scaled;
}

}  // namespace fix
