// Callee vocabulary for the unit-flow pair: definitions live in their own TU
// so the mismatches in bad_cross_unit.cpp are only visible cross-TU.
namespace fix {

double integrate_power(double energy_j, double window_s) {
  return energy_j / window_s;
}

double avg_power_w(double draw_w) { return draw_w; }

}  // namespace fix
