// The same call shapes with agreeing suffixes (or none at all) are clean.
namespace fix {

double integrate_power(double energy_j, double window_s);
double avg_power_w(double draw_w);

double summarize(double used_j, double span_s, double peak_w) {
  double mean = integrate_power(used_j, span_s);
  double smoothed_w = avg_power_w(peak_w);
  return mean + smoothed_w;
}

}  // namespace fix
