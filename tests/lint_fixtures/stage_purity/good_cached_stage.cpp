// The sanctioned exceptions: a mutable *cache* member may memoize on the run
// path, and members may be freely written outside the run-path methods.
namespace fix {

class PlanStage {
 public:
  void run(double budget_w);
  void configure(double gain);

 private:
  double gain_ = 1.0;
  mutable double plan_cache_w_ = 0.0;
};

void PlanStage::run(double budget_w) { plan_cache_w_ = budget_w * gain_; }

void PlanStage::configure(double gain) { gain_ = gain; }

}  // namespace fix
