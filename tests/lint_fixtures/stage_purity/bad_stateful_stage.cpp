// A pipeline stage that keeps score in a member: the write happens two
// calls below the run entry point, so only the transitive closure sees it.
namespace fix {

class TallyStage {
 public:
  void run(int jobs);

 private:
  void note(int jobs);
  void bump();

  int runs_ = 0;
};

void TallyStage::run(int jobs) { note(jobs); }

void TallyStage::note(int jobs) {
  if (jobs > 0) bump();
}

void TallyStage::bump() { runs_ = runs_ + 1; }

}  // namespace fix
