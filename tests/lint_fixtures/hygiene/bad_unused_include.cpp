// Fixture: includes decls.hpp but uses nothing it declares.
#include "decls.hpp"

int unrelated() { return 42; }
