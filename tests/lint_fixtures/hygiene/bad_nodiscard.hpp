#pragma once

// Fixture: a pure one-expression accessor without [[nodiscard]].
class Gauge {
 public:
  double reading() const { return value_; }

 private:
  double value_ = 0.0;
};
