#pragma once

// Fixture helper: declares names for the unused-include cases.
struct WidgetFixture {
  int id = 0;
};

int widget_count();
