#pragma once

// Fixture: annotated accessors, setters, and fluent mutators are all fine.
class Gauge {
 public:
  [[nodiscard]] double reading() const { return value_; }
  void set(double v) { value_ = v; }
  Gauge& touch() { return *this; }

 private:
  double value_ = 0.0;
};
