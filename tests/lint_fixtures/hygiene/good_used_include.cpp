// Fixture: includes decls.hpp and references a declared name.
#include "decls.hpp"

int total() { return widget_count(); }
