#pragma once

// Fixture: using-directives in headers leak into every includer.
#include <vector>

using namespace std;

inline vector<int> three() { return {1, 2, 3}; }
