#include "core/report.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::core {
namespace {

class ReportFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kModules = 48;

  ReportFixture() {
    std::vector<hw::ModuleId> alloc(kModules);
    std::iota(alloc.begin(), alloc.end(), hw::ModuleId{0});
    RunConfig cfg;
    cfg.iterations = 4;
    campaign_ = std::make_unique<Campaign>(cluster_, alloc, cfg);
  }

  cluster::Cluster cluster_{hw::ha8k(), util::SeedSequence(141), kModules};
  std::unique_ptr<Campaign> campaign_;
};

TEST_F(ReportFixture, ContainsAllSections) {
  ReportOptions opt;
  opt.cm_grid_w = {90.0, 70.0};
  std::string md = markdown_report(*campaign_, {&workloads::mhd()}, opt);
  EXPECT_NE(md.find("# VAPB campaign report"), std::string::npos);
  EXPECT_NE(md.find("## Scenario classification"), std::string::npos);
  EXPECT_NE(md.find("## MHD"), std::string::npos);
  EXPECT_NE(md.find("## PMT calibration error"), std::string::npos);
  EXPECT_NE(md.find("| Naive |"), std::string::npos);
  EXPECT_NE(md.find("VaFs"), std::string::npos);
}

TEST_F(ReportFixture, SpeedupCellsLookLikeRatios) {
  ReportOptions opt;
  opt.cm_grid_w = {70.0};
  opt.schemes = {SchemeKind::kNaive, SchemeKind::kVaFs};
  opt.include_power_table = false;
  opt.include_calibration = false;
  std::string md = markdown_report(*campaign_, {&workloads::mhd()}, opt);
  EXPECT_NE(md.find("1.00x"), std::string::npos);  // Naive vs itself
  // VaFs beats Naive here; some cell ends in "x" and is not 1.00x.
  EXPECT_NE(md.find("x |"), std::string::npos);
}

TEST_F(ReportFixture, InfeasibleCellsRenderAsDashes) {
  ReportOptions opt;
  opt.cm_grid_w = {50.0};  // MHD infeasible at Cm=50
  opt.schemes = {SchemeKind::kNaive};
  std::string md = markdown_report(*campaign_, {&workloads::mhd()}, opt);
  EXPECT_NE(md.find("| - |"), std::string::npos);
}

TEST_F(ReportFixture, PowerViolationFlagged) {
  ReportOptions opt;
  opt.cm_grid_w = {90.0};
  opt.schemes = {SchemeKind::kNaive};
  // Naive on *STREAM violates the budget (Figure 9).
  std::string md = markdown_report(*campaign_, {&workloads::stream()}, opt);
  EXPECT_NE(md.find("**!**"), std::string::npos);
}

TEST_F(ReportFixture, Validation) {
  EXPECT_THROW(markdown_report(*campaign_, {}), InvalidArgument);
  ReportOptions empty_grid;
  empty_grid.cm_grid_w = {};
  EXPECT_THROW(markdown_report(*campaign_, {&workloads::mhd()}, empty_grid),
               InvalidArgument);
  ReportOptions no_schemes;
  no_schemes.schemes = {};
  EXPECT_THROW(markdown_report(*campaign_, {&workloads::mhd()}, no_schemes),
               InvalidArgument);
}

}  // namespace
}  // namespace vapb::core
