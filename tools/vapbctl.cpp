// vapbctl — command-line driver for the VAPB framework.
//
// Subcommands (all on a simulated fleet; --arch selects the Table-2 preset):
//   systems                               print the architecture presets
//   workloads                             print the benchmark catalog
//   pvt      --out FILE                   generate + save the system PVT
//   solve    --workload W --budget-w P    calibrate + solve Eq. 1-9
//   run      --workload W --budget-w P --scheme S
//                                         full pipeline + metrics
//   campaign [--workload W] [--threads N] [--repetitions R]
//            [--budgets "110,100,.."] [--schemes "Naive,VaFs"]
//            [--csv F] [--json F] [--telemetry-out F]
//                                         parallel sweep of the Table-4 grid
//   fault    [--workload W] [--schemes "VaPc,VaPcRobust"] [--budgets "90,80"]
//            [--scenario "k=v,.." | --scenario-file F] [--noise "0,0.05"]
//            [--drift "0,0.04"] [--failures "0,1"] [--out F]
//                                         fault-injection degradation sweep
//   tenancy  (--trace "k=v,.." | --trace-file F)
//            [--arrival-scales "1,0.5"] [--placements "contiguous,.."]
//            [--partitions "equal-share,.."] [--threads N] [--out F]
//                                         multi-tenant co-scheduling sweep
//   report   [--workload W] [--out F]     full Markdown campaign report
//   serve    [--socket PATH | --stdio] [--snapshot F] [--threads N]
//            [--max-batch N] [--reply-cache N] [--iterations N]
//                                         run the budgeting daemon (vapbd)
//   snapshot save --out F [--workloads "MHD,.."] [--schemes "VaPc,.."]
//   snapshot load --in F                  write / validate a calibrated
//                                         fleet snapshot (mmap-able binary)
//
// Scheme names are resolved through core::SchemeRegistry, so registered
// extension schemes work everywhere the built-ins do.
//
// Common flags: --arch {cab|vulcan|teller|ha8k}  --modules N  --seed S
//               --arch-mix "cpu:96,gpu:24,dram:8" (heterogeneous fleet;
//               fixes the module count, so it excludes --modules)
//               --pvt FILE (reuse a saved PVT)
//               --alloc-policy {contiguous|random|strided|worst-power|
//                               best-power} (scheduler placement; default is
//               the identity allocation 0..N-1)
#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <numeric>
#include <optional>
#include <sstream>

#include "cluster/scheduler.hpp"
#include "core/campaign.hpp"
#include "core/report.hpp"
#include "core/scheme_registry.hpp"
#include "fault/campaign.hpp"
#include "fault/scenario.hpp"
#include "hw/arch_io.hpp"
#include "service/server.hpp"
#include "service/snapshot.hpp"
#include "tenancy/campaign.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/catalog.hpp"

using namespace vapb;

namespace {

struct Context {
  cluster::Cluster cluster;
  std::vector<hw::ModuleId> allocation;
  std::shared_ptr<const core::Pvt> pvt;
};

Context make_context(const util::CliArgs& args) {
  hw::ArchSpec spec = [&] {
    if (args.has("arch-file")) {
      std::ifstream in(args.get("arch-file"));
      if (!in) throw Error("cannot open arch file: " + args.get("arch-file"));
      std::stringstream ss;
      ss << in.rdbuf();
      return hw::arch_from_config_text(ss.str());
    }
    return hw::arch_by_name(args.get_or("arch", "ha8k"));
  }();
  auto seed = static_cast<std::uint64_t>(args.get_long_or("seed", 2015));
  // --arch-mix fabricates a heterogeneous fleet and therefore fixes the
  // module count; combining it with --modules would be ambiguous.
  std::optional<hw::ClassMix> mix;
  if (args.has("arch-mix")) {
    if (args.has("modules")) {
      throw InvalidArgument(
          "--arch-mix fixes the module count per class; drop --modules");
    }
    mix = hw::ClassMix::parse(args.get("arch-mix"));
    if (mix->total() == 0) throw InvalidArgument("--arch-mix is empty");
  }
  auto modules = mix ? mix->total()
                     : static_cast<std::size_t>(
                           args.get_long_or("modules", 128));
  cluster::Cluster cluster =
      mix ? cluster::Cluster(spec, util::SeedSequence(seed), *mix)
          : cluster::Cluster(spec, util::SeedSequence(seed), modules);
  std::vector<hw::ModuleId> alloc;
  if (args.has("alloc-policy")) {
    // Scheduler-driven placement; power-ordered policies rank with the PVT
    // microbenchmark's profile (the paper's calibration workload). On a
    // mixed fleet the policy applies within each class block.
    cluster::AllocationPolicy policy =
        cluster::allocation_policy_by_name(args.get("alloc-policy"));
    cluster::Scheduler sched(cluster);
    alloc = mix ? sched.allocate_mix(*mix, policy,
                                     cluster.seed().fork("scheduler"),
                                     &workloads::pvt_microbench().profile)
                : sched.allocate(modules, policy,
                                 cluster.seed().fork("scheduler"),
                                 &workloads::pvt_microbench().profile);
  } else {
    alloc.resize(modules);
    std::iota(alloc.begin(), alloc.end(), hw::ModuleId{0});
  }
  std::shared_ptr<const core::Pvt> pvt = [&] {
    if (args.has("pvt")) {
      std::ifstream in(args.get("pvt"));
      if (!in) throw Error("cannot open PVT file: " + args.get("pvt"));
      std::stringstream ss;
      ss << in.rdbuf();
      return std::make_shared<const core::Pvt>(
          core::Pvt::deserialize(ss.str()));
    }
    // The process-wide cache shares the PVT with Campaign / CampaignEngine.
    return core::CalibrationCache::global().pvt(
        cluster, workloads::pvt_microbench(), cluster.seed().fork("pvt"));
  }();
  return Context{std::move(cluster), std::move(alloc), std::move(pvt)};
}

int cmd_systems() {
  util::Table t({"arch", "system", "microarch", "modules", "ladder",
                 "capping"});
  for (const auto& a : hw::all_archs()) {
    t.add_row();
    t.add_cell(a.system.substr(0, a.system.find(' ')));
    t.add_cell(a.system);
    t.add_cell(a.microarch);
    t.add_cell(static_cast<long long>(a.total_modules()));
    t.add_cell(util::fmt_ghz(a.ladder.fmin()) + " - " +
               util::fmt_ghz(a.ladder.fmax()));
    t.add_cell(a.supports_power_capping ? "RAPL" : "none");
  }
  std::printf("%s", t.str().c_str());
  return 0;
}

int cmd_workloads() {
  util::Table t({"name", "CPU @fmax", "DRAM @fmax", "cpu-bound frac",
                 "comm", "description"});
  for (auto* w : workloads::evaluation_suite()) {
    t.add_row();
    t.add_cell(w->name);
    t.add_cell(util::fmt_watts(w->profile.cpu_w(w->nominal_freq_ghz)));
    t.add_cell(util::fmt_watts(w->profile.dram_w(w->nominal_freq_ghz)));
    t.add_cell(w->cpu_fraction, 2);
    switch (w->comm) {
      case workloads::CommPattern::kNone: t.add_cell("none"); break;
      case workloads::CommPattern::kHalo1D: t.add_cell("halo-1d"); break;
      case workloads::CommPattern::kHalo3D: t.add_cell("halo-3d"); break;
      case workloads::CommPattern::kAllreduce: t.add_cell("allreduce"); break;
      case workloads::CommPattern::kHalo3DWithReduce:
        t.add_cell("halo-3d+reduce");
        break;
    }
    t.add_cell(w->description);
  }
  std::printf("%s", t.str().c_str());
  return 0;
}

int cmd_pvt(const util::CliArgs& args) {
  Context ctx = make_context(args);
  std::string out = args.get_or("out", "pvt.txt");
  std::ofstream f(out);
  if (!f) throw Error("cannot write " + out);
  f << ctx.pvt->serialize();
  std::printf("PVT for %zu modules (microbenchmark %s) written to %s\n",
              ctx.pvt->size(), ctx.pvt->microbench_name().c_str(),
              out.c_str());
  return 0;
}

int cmd_solve(const util::CliArgs& args) {
  Context ctx = make_context(args);
  const workloads::Workload& w = workloads::by_name(args.get("workload"));
  double budget = args.get_double_or("budget-w", 0.0);
  if (budget <= 0.0) throw InvalidArgument("--budget-w must be positive");

  core::TestRunResult test = core::single_module_test_run(
      ctx.cluster, ctx.allocation.front(), w,
      ctx.cluster.seed().fork("ctl-test"));
  core::Pmt pmt = core::calibrate_pmt(*ctx.pvt, test, ctx.allocation,
                                      ctx.cluster.spec().ladder);
  core::BudgetResult r = core::solve_budget(pmt, util::Watts{budget});
  std::printf("workload:   %s on %zu modules\n", w.name.c_str(),
              ctx.allocation.size());
  std::printf("budget:     %s\n", util::fmt_watts(budget).c_str());
  std::printf("fmin floor: %s, fmax demand: %s\n",
              util::fmt_watts(pmt.total_min_w()).c_str(),
              util::fmt_watts(pmt.total_max_w()).c_str());
  std::printf("alpha:      %.4f (%s)\n", r.alpha,
              r.constrained ? "constrained" : "not binding");
  std::printf("frequency:  %s\n", util::fmt_ghz(r.target_freq_ghz).c_str());
  std::printf("allocations: first 8 of %zu modules:\n", r.allocations.size());
  for (std::size_t k = 0; k < std::min<std::size_t>(8, r.allocations.size());
       ++k) {
    std::printf("  module %4u: %s module, %s CPU cap\n", ctx.allocation[k],
                util::fmt_watts(r.allocations[k].module_w).c_str(),
                util::fmt_watts(r.allocations[k].cpu_cap_w).c_str());
  }
  return 0;
}

int cmd_run(const util::CliArgs& args) {
  Context ctx = make_context(args);
  const workloads::Workload& w = workloads::by_name(args.get("workload"));
  double budget = args.get_double_or("budget-w", 0.0);
  if (budget <= 0.0) throw InvalidArgument("--budget-w must be positive");
  std::string scheme_name = args.get_or("scheme", "VaFs");
  if (!core::SchemeRegistry::global().contains(scheme_name)) {
    // get() throws the informative error naming every registered scheme.
    static_cast<void>(core::SchemeRegistry::global().get(scheme_name));
  }

  core::Runner runner(ctx.cluster, ctx.allocation);
  core::TestRunResult test = core::single_module_test_run(
      ctx.cluster, ctx.allocation.front(), w,
      ctx.cluster.seed().fork("ctl-test"));
  core::RunMetrics base = runner.run_uncapped(w);
  core::RunMetrics m =
      runner.run_scheme(w, scheme_name, budget, *ctx.pvt, test);
  std::printf("%s under %s at %s:\n", w.name.c_str(), scheme_name.c_str(),
              util::fmt_watts(budget).c_str());
  std::printf("  alpha %.3f, target %s\n", m.alpha,
              util::fmt_ghz(m.target_freq_ghz).c_str());
  std::printf("  makespan %s (uncapped %s)\n",
              util::fmt_seconds(m.makespan_s).c_str(),
              util::fmt_seconds(base.makespan_s).c_str());
  std::printf("  Vf %.2f  Vp %.2f  Vt %.2f\n", m.vf(), m.vp(),
              core::vt_normalized(m, base));
  std::printf("  total power %s (budget %s)%s\n",
              util::fmt_watts(m.total_power_w).c_str(),
              util::fmt_watts(budget).c_str(),
              m.total_power_w > budget * 1.01 ? "  VIOLATED" : "");
  return 0;
}

/// Output files are written after a (possibly long) run, so a doomed path
/// must fail up front with the actual problem, not a late "cannot write".
void require_parent_dir(const std::string& path, const char* flag) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty() && !std::filesystem::is_directory(parent)) {
    throw InvalidArgument(std::string(flag) + " " + path + ": directory '" +
                          parent.string() + "' does not exist");
  }
}

std::vector<double> parse_budget_list(const std::string& list,
                                      std::size_t modules) {
  std::vector<double> budgets;
  for (const std::string& part : util::split(list, ',')) {
    double cm = std::strtod(part.c_str(), nullptr);
    if (cm <= 0.0) {
      throw InvalidArgument("--budgets: bad per-module budget '" + part + "'");
    }
    budgets.push_back(cm * static_cast<double>(modules));
  }
  return budgets;
}

std::vector<std::string> parse_scheme_list(const std::string& list) {
  std::vector<std::string> schemes;
  for (const std::string& part : util::split(list, ',')) {
    if (!core::SchemeRegistry::global().contains(part)) {
      // get() throws the informative error naming every registered scheme.
      static_cast<void>(core::SchemeRegistry::global().get(part));
    }
    schemes.push_back(part);
  }
  return schemes;
}

/// Device classes actually present in the fleet, in index order.
std::vector<hw::DeviceClass> present_classes(const cluster::Cluster& cluster) {
  std::vector<hw::DeviceClass> out;
  for (hw::DeviceClass c : hw::all_device_classes()) {
    if (cluster.mix().count(c) > 0) out.push_back(c);
  }
  return out;
}

/// Mean sustained module power (CPU + DRAM) per device class over one run.
/// Classes absent from the run average to 0.
std::array<double, hw::kDeviceClassCount> class_mean_power_w(
    const cluster::Cluster& cluster, const core::RunMetrics& m) {
  std::array<double, hw::kDeviceClassCount> sum{};
  std::array<double, hw::kDeviceClassCount> cnt{};
  for (const core::ModuleOutcome& mo : m.modules) {
    const std::size_t k = hw::device_class_index(cluster.device_class(mo.id));
    sum[k] += mo.op.cpu_w + mo.op.dram_w;
    cnt[k] += 1.0;
  }
  for (std::size_t k = 0; k < sum.size(); ++k) {
    if (cnt[k] > 0.0) sum[k] /= cnt[k];
  }
  return sum;
}

int cmd_campaign(const util::CliArgs& args) {
  Context ctx = make_context(args);
  const std::size_t modules = ctx.allocation.size();

  core::CampaignSpec spec;
  if (args.has("workload")) {
    spec.workloads.push_back(&workloads::by_name(args.get("workload")));
  } else {
    spec.workloads = workloads::evaluation_suite();
  }
  spec.budgets_w = parse_budget_list(
      args.get_or("budgets", "110,100,90,80,70,60,50"), modules);
  if (args.has("schemes")) {
    spec.scheme_names = parse_scheme_list(args.get("schemes"));
  }
  const std::vector<std::string> scheme_names = spec.scheme_list();
  spec.repetitions =
      static_cast<int>(args.get_long_or("repetitions", 1));
  auto threads = static_cast<std::size_t>(args.get_long_or("threads", 0));
  // Fail on doomed output paths before spending minutes on the sweep.
  if (args.has("csv")) require_parent_dir(args.get("csv"), "--csv");
  if (args.has("json")) require_parent_dir(args.get("json"), "--json");
  if (args.has("telemetry-out")) {
    require_parent_dir(args.get("telemetry-out"), "--telemetry-out");
  }
  if (args.has("cache-capacity")) {
    long cap = args.get_long_or("cache-capacity", 0);
    if (cap < 0) throw InvalidArgument("--cache-capacity must be >= 0");
    core::CalibrationCache::global().set_capacity(
        static_cast<std::size_t>(cap));
  }

  core::CampaignEngine engine(ctx.cluster, ctx.allocation, ctx.pvt, threads);
  core::CampaignResult result =
      engine.run(spec, [](const core::CampaignProgress& p) {
        std::fprintf(stderr, "[%zu/%zu] %-8s %-7s %7.0f W rep %d: %s\n",
                     p.completed, p.total,
                     p.job->metrics.workload.c_str(),
                     p.job->metrics.scheme.c_str(), p.job->job.budget_w,
                     p.job->job.repetition,
                     p.job->metrics.feasible
                         ? util::fmt_seconds(p.job->metrics.makespan_s).c_str()
                         : "infeasible");
      });

  // Mixed fleets get one extra column per installed class: the mean module
  // power that class sustained under the first scheme of the row.
  const std::vector<hw::DeviceClass> classes =
      ctx.cluster.heterogeneous() ? present_classes(ctx.cluster)
                                  : std::vector<hw::DeviceClass>{};
  if (ctx.cluster.heterogeneous()) {
    std::printf("fleet: %s\n\n", ctx.cluster.mix().str().c_str());
  }
  for (const workloads::Workload* w : spec.workloads) {
    std::printf("%s\n", w->name.c_str());
    std::vector<std::string> headers{"Cm [W]", "cell"};
    for (const std::string& s : scheme_names) headers.push_back(s);
    for (hw::DeviceClass c : classes) {
      headers.push_back(hw::device_class_name(c) + " W");
    }
    util::Table t(headers);
    for (double budget_w : spec.budgets_w) {
      t.add_row();
      t.add_cell(budget_w / static_cast<double>(modules), 0);
      const auto* any = result.find(w->name, budget_w, scheme_names.front());
      t.add_cell(any ? core::cell_class_name(any->cls) : "?");
      for (const std::string& s : scheme_names) {
        const auto* r = result.find(w->name, budget_w, s);
        t.add_cell(r && r->metrics.feasible
                       ? util::fmt_double(r->speedup_vs_naive, 2) + "x"
                       : "-");
      }
      if (!classes.empty() && any != nullptr && any->metrics.feasible) {
        const auto watts = class_mean_power_w(ctx.cluster, any->metrics);
        for (hw::DeviceClass c : classes) {
          t.add_cell(util::fmt_watts(watts[hw::device_class_index(c)]));
        }
      } else {
        for (std::size_t k = 0; k < classes.size(); ++k) t.add_cell("-");
      }
    }
    std::printf("%s\n", t.str().c_str());
  }
  std::printf(
      "%zu jobs on %zu threads in %.2fs; calibration cache: %llu hits, "
      "%llu misses, %llu evictions, %zu entries\n",
      result.jobs.size(), engine.threads(), result.elapsed_s,
      static_cast<unsigned long long>(result.cache.hits),
      static_cast<unsigned long long>(result.cache.misses),
      static_cast<unsigned long long>(result.cache.evictions),
      result.cache.entries);

  if (args.has("csv")) {
    std::ofstream f(args.get("csv"));
    if (!f) throw Error("cannot write " + args.get("csv"));
    core::write_campaign_csv(result, f);
    std::printf("per-job CSV written to %s\n", args.get("csv").c_str());
  }
  if (args.has("json")) {
    std::ofstream f(args.get("json"));
    if (!f) throw Error("cannot write " + args.get("json"));
    core::write_campaign_json(result, f);
    std::printf("per-job JSON written to %s\n", args.get("json").c_str());
  }
  if (args.has("telemetry-out")) {
    std::ofstream f(args.get("telemetry-out"));
    if (!f) throw Error("cannot write " + args.get("telemetry-out"));
    result.telemetry.write_json(f);
    std::printf("per-stage telemetry JSON written to %s\n",
                args.get("telemetry-out").c_str());
  }
  return 0;
}

std::vector<double> parse_double_list(const std::string& list,
                                      const char* flag) {
  std::vector<double> out;
  for (const std::string& part : util::split(list, ',')) {
    char* end = nullptr;
    double v = std::strtod(part.c_str(), &end);
    if (end == part.c_str() || *end != '\0') {
      throw InvalidArgument(std::string(flag) + ": bad value '" + part + "'");
    }
    out.push_back(v);
  }
  return out;
}

std::vector<int> parse_int_list(const std::string& list, const char* flag) {
  std::vector<int> out;
  for (double v : parse_double_list(list, flag)) {
    out.push_back(static_cast<int>(v));
  }
  return out;
}

int cmd_fault(const util::CliArgs& args) {
  Context ctx = make_context(args);
  const std::size_t modules = ctx.allocation.size();

  fault::FaultGrid grid;
  if (args.has("scenario-file")) {
    std::ifstream in(args.get("scenario-file"));
    if (!in) {
      throw Error("cannot open scenario file: " + args.get("scenario-file"));
    }
    std::stringstream ss;
    ss << in.rdbuf();
    grid.base = fault::FaultScenario::parse(ss.str());
  } else if (args.has("scenario")) {
    grid.base = fault::FaultScenario::parse_kv(args.get("scenario"));
  }
  if (args.has("noise")) {
    grid.noise_fracs = parse_double_list(args.get("noise"), "--noise");
  }
  if (args.has("drift")) {
    grid.drift_fracs = parse_double_list(args.get("drift"), "--drift");
  }
  if (args.has("failures")) {
    grid.failure_counts = parse_int_list(args.get("failures"), "--failures");
  }
  if (args.has("out")) require_parent_dir(args.get("out"), "--out");

  core::CampaignSpec spec;
  if (args.has("workload")) {
    spec.workloads.push_back(&workloads::by_name(args.get("workload")));
  } else {
    spec.workloads = workloads::evaluation_suite();
  }
  spec.budgets_w = parse_budget_list(args.get_or("budgets", "90,80"), modules);
  spec.scheme_names =
      parse_scheme_list(args.get_or("schemes", "Naive,VaPc,VaPcRobust"));
  spec.repetitions = static_cast<int>(args.get_long_or("repetitions", 1));
  auto threads = static_cast<std::size_t>(args.get_long_or("threads", 0));

  fault::FaultCampaign sweep(ctx.cluster, ctx.allocation, threads);
  fault::FaultCampaignResult result = sweep.run(spec, grid);

  const std::vector<hw::DeviceClass> classes =
      ctx.cluster.heterogeneous() ? present_classes(ctx.cluster)
                                  : std::vector<hw::DeviceClass>{};
  if (ctx.cluster.heterogeneous()) {
    std::printf("fleet: %s\n\n", ctx.cluster.mix().str().c_str());
  }
  for (const fault::FaultPointResult& point : result.points) {
    std::printf("noise %.3f  drift %.3f  failures %d  (seed %llu)\n",
                point.scenario.sensor_noise_frac, point.scenario.drift_frac,
                point.scenario.failure_count,
                static_cast<unsigned long long>(point.scenario.seed));
    std::vector<std::string> headers{"scheme", "jobs", "violation rate",
                                     "overshoot", "makespan",
                                     "speedup vs Naive"};
    for (hw::DeviceClass c : classes) {
      headers.push_back(hw::device_class_name(c) + " W");
    }
    util::Table t(headers);
    for (const fault::FaultSchemeResult& s : point.schemes) {
      t.add_row();
      t.add_cell(s.scheme);
      t.add_cell(static_cast<long long>(s.jobs));
      t.add_cell(util::fmt_double(s.violation_rate * 100.0, 1) + "%");
      t.add_cell(util::fmt_watts(s.mean_overshoot_w));
      t.add_cell(util::fmt_seconds(s.mean_makespan_s));
      t.add_cell(std::isfinite(s.mean_speedup_vs_naive)
                     ? util::fmt_double(s.mean_speedup_vs_naive, 2) + "x"
                     : "-");
      if (!classes.empty()) {
        // Mean per-class module power over this scheme's feasible jobs.
        std::array<double, hw::kDeviceClassCount> acc{};
        double jobs = 0.0;
        for (const core::CampaignJobResult& j : point.campaign.jobs) {
          if (j.metrics.scheme != s.scheme || !j.metrics.feasible) continue;
          const auto watts = class_mean_power_w(ctx.cluster, j.metrics);
          for (std::size_t k = 0; k < acc.size(); ++k) acc[k] += watts[k];
          jobs += 1.0;
        }
        for (hw::DeviceClass c : classes) {
          const std::size_t k = hw::device_class_index(c);
          t.add_cell(jobs > 0.0 ? util::fmt_watts(acc[k] / jobs) : "-");
        }
      }
    }
    std::printf("%s\n", t.str().c_str());
  }

  if (args.has("out")) {
    std::ofstream f(args.get("out"));
    if (!f) throw Error("cannot write " + args.get("out"));
    fault::write_fault_campaign_json(result, f);
    std::printf("degradation JSON written to %s\n", args.get("out").c_str());
  }
  return 0;
}

int cmd_tenancy(const util::CliArgs& args) {
  Context ctx = make_context(args);

  tenancy::TenancyGrid grid;
  if (args.has("trace-file")) {
    std::ifstream in(args.get("trace-file"));
    if (!in) throw Error("cannot open trace file: " + args.get("trace-file"));
    std::stringstream ss;
    ss << in.rdbuf();
    grid.base = tenancy::TenancyTrace::parse(ss.str());
  } else if (args.has("trace")) {
    grid.base = tenancy::TenancyTrace::parse_kv(args.get("trace"));
  } else {
    throw InvalidArgument(
        "tenancy: pass --trace \"budget_cm_w=80,jobs=MHD:16@0|..\" or "
        "--trace-file F");
  }
  if (args.has("arrival-scales")) {
    grid.arrival_scales =
        parse_double_list(args.get("arrival-scales"), "--arrival-scales");
  }
  // --placements x --partitions is a cross product; the grid needs the
  // naive (contiguous, equal-share) point per scale for the vs-naive
  // ratios, so the defaults always include it.
  if (args.has("placements") || args.has("partitions")) {
    std::vector<std::string> placements =
        util::split(args.get_or("placements", "contiguous,variation-aware"),
                    ',');
    std::vector<std::string> partitions =
        util::split(args.get_or("partitions", "equal-share,water-fill"), ',');
    grid.policies.clear();
    for (const std::string& pl : placements) {
      // Resolve early so a typo is a suggestion, not a mid-sweep throw.
      static_cast<void>(tenancy::placement_policy_by_name(pl));
      for (const std::string& pa : partitions) {
        static_cast<void>(tenancy::partition_policy_by_name(pa));
        grid.policies.push_back({pl, pa});
      }
    }
  }
  if (args.has("out")) require_parent_dir(args.get("out"), "--out");
  auto threads = static_cast<std::size_t>(args.get_long_or("threads", 0));

  tenancy::TenancyCampaign sweep(ctx.cluster, ctx.pvt, threads);
  tenancy::TenancyCampaignResult result = sweep.run(grid);

  if (ctx.cluster.heterogeneous()) {
    std::printf("fleet: %s\n\n", ctx.cluster.mix().str().c_str());
  }
  util::Table t({"scale", "placement", "partition", "jobs", "makespan",
                 "jobs/h", "mean wait", "Jain", "thr vs naive",
                 "mk vs naive"});
  for (const tenancy::TenancyPointResult& p : result.points) {
    t.add_row();
    t.add_cell(util::fmt_double(p.trace.arrival_scale, 2));
    t.add_cell(p.trace.placement);
    t.add_cell(p.trace.partition);
    t.add_cell(static_cast<long long>(p.result.jobs.size()));
    t.add_cell(util::fmt_seconds(p.result.makespan_s));
    t.add_cell(util::fmt_double(p.result.throughput_jph, 1));
    t.add_cell(util::fmt_seconds(p.result.mean_wait_s));
    t.add_cell(util::fmt_double(p.result.jain_fairness, 3));
    t.add_cell(std::isfinite(p.throughput_vs_naive)
                   ? util::fmt_double(p.throughput_vs_naive, 3) + "x"
                   : "-");
    t.add_cell(std::isfinite(p.makespan_vs_naive)
                   ? util::fmt_double(p.makespan_vs_naive, 3) + "x"
                   : "-");
  }
  std::printf("%s", t.str().c_str());

  if (args.has("out")) {
    std::ofstream f(args.get("out"));
    if (!f) throw Error("cannot write " + args.get("out"));
    tenancy::write_tenancy_campaign_json(result, f);
    std::printf("tenancy JSON written to %s\n", args.get("out").c_str());
  }
  return 0;
}

int cmd_serve(const util::CliArgs& args) {
  service::DaemonOptions opt;
  opt.arch = args.get_or("arch", opt.arch);
  opt.modules = static_cast<std::size_t>(args.get_long_or("modules", 24));
  opt.seed = static_cast<std::uint64_t>(args.get_long_or("seed", 2015));
  opt.snapshot_path = args.get_or("snapshot", "");
  opt.socket_path = args.get_or("socket", "");
  opt.stdio = args.has("stdio");
  opt.threads = static_cast<std::size_t>(args.get_long_or("threads", 0));
  opt.max_batch = static_cast<std::size_t>(args.get_long_or("max-batch", 64));
  opt.reply_cache =
      static_cast<std::size_t>(args.get_long_or("reply-cache", 1024));
  opt.iterations = static_cast<int>(args.get_long_or("iterations", 6));
  opt.max_allocations =
      static_cast<std::size_t>(args.get_long_or("max-allocations", 0));
  return service::run_daemon(opt);
}

std::vector<std::string> parse_workload_list(const std::string& list) {
  std::vector<std::string> names;
  for (const std::string& part : util::split(list, ',')) {
    // by_name throws the informative error listing the catalog.
    names.push_back(workloads::by_name(part).name);
  }
  return names;
}

int cmd_snapshot(const util::CliArgs& args) {
  if (args.positional().size() < 2 ||
      (args.positional()[1] != "save" && args.positional()[1] != "load")) {
    throw InvalidArgument("snapshot needs a 'save' or 'load' verb, e.g. "
                          "`vapbctl snapshot save --out fleet.vapbsnap`");
  }
  const bool saving = args.positional()[1] == "save";

  if (!saving) {
    const std::string path = args.get("in");
    service::Snapshot snap = service::Snapshot::load(path);
    // restore() proves the stored state is reproducible on this build
    // (fingerprint + bitwise SoA check), not just well-formed.
    service::ClusterState state = snap.restore();
    std::printf("%s: snapshot v%u, %zu bytes\n", path.c_str(),
                snap.version(), snap.file_bytes());
    std::printf("  fleet:      %s x%zu (%s), master seed %llu, "
                "fingerprint %llx\n",
                snap.arch().c_str(), snap.module_count(), snap.mix().c_str(),
                static_cast<unsigned long long>(snap.master_seed()),
                static_cast<unsigned long long>(snap.fleet_fingerprint()));
    std::printf("  state:      %zu allocated, %zu test runs, %zu PMTs\n",
                snap.allocation_size(), snap.test_run_count(),
                snap.pmt_count());
    std::printf("  restore OK: %zu-module PVT regenerated bit-identically\n",
                state.pvt->size());
    return 0;
  }

  const std::string out = args.get("out");
  require_parent_dir(out, "--out");
  const std::string arch = args.get_or("arch", "ha8k");
  const auto seed = static_cast<std::uint64_t>(args.get_long_or("seed", 2015));
  Context ctx = make_context(args);

  std::vector<std::string> workload_names;
  if (args.has("workloads")) {
    workload_names = parse_workload_list(args.get("workloads"));
  } else {
    for (auto* w : workloads::evaluation_suite()) {
      workload_names.push_back(w->name);
    }
  }
  std::vector<std::string> scheme_names =
      args.has("schemes") ? parse_scheme_list(args.get("schemes"))
                          : core::SchemeRegistry::global().names();

  auto cluster =
      std::make_shared<const cluster::Cluster>(std::move(ctx.cluster));
  service::ClusterState state = service::calibrate_state(
      cluster, ctx.allocation, workload_names, scheme_names);
  service::save_snapshot(out, arch, seed, state);
  std::printf(
      "%s: %s x%zu (seed %llu) calibrated and saved — %zu test runs, "
      "%zu PMTs\n",
      out.c_str(), arch.c_str(), cluster->size(),
      static_cast<unsigned long long>(seed), state.test_runs.size(),
      state.pmts.size());
  return 0;
}

int cmd_report(const util::CliArgs& args) {
  Context ctx = make_context(args);
  core::Campaign campaign(ctx.cluster, ctx.allocation);
  std::vector<const workloads::Workload*> apps;
  if (args.has("workload")) {
    apps.push_back(&workloads::by_name(args.get("workload")));
  } else {
    apps = workloads::evaluation_suite();
  }
  core::ReportOptions opt;
  opt.title = "VAPB campaign report (" + ctx.cluster.spec().system + ")";
  std::string md = core::markdown_report(campaign, apps, opt);
  if (args.has("out")) {
    std::ofstream f(args.get("out"));
    if (!f) throw Error("cannot write " + args.get("out"));
    f << md;
    std::printf("report written to %s\n", args.get("out").c_str());
  } else {
    std::printf("%s", md.c_str());
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: vapbctl "
               "<systems|workloads|pvt|solve|run|campaign|fault|tenancy|"
               "report|serve|snapshot> "
               "[--arch A | --arch-file F] [--arch-mix \"cpu:96,gpu:24\"] "
               "[--modules N] [--seed S] "
               "[--pvt FILE] [--alloc-policy P]\n"
               "               [--workload W] [--budget-w P] [--scheme S] "
               "[--out FILE]\n"
               "               campaign: [--threads N] [--repetitions R] "
               "[--budgets \"Cm,..\"] [--schemes \"S,..\"] [--csv F] "
               "[--json F] [--telemetry-out F] [--cache-capacity N]\n"
               "               fault: [--scenario \"k=v,..\" | "
               "--scenario-file F] [--noise \"0,0.05\"] [--drift \"0,0.04\"] "
               "[--failures \"0,1\"] [--out F]\n"
               "               tenancy: (--trace \"k=v,..\" | "
               "--trace-file F) [--arrival-scales \"1,0.5\"] "
               "[--placements \"contiguous,variation-aware\"] "
               "[--partitions \"equal-share,water-fill\"] [--threads N] "
               "[--out F]\n"
               "               serve: [--socket PATH | --stdio] "
               "[--snapshot F] [--threads N] [--max-batch N] "
               "[--reply-cache N] [--iterations N] [--max-allocations N]\n"
               "               snapshot: save --out F [--workloads \"W,..\"] "
               "[--schemes \"S,..\"] | load --in F\n");
  return 2;
}

// The flags each subcommand understands. Parsing happens once against the
// union (the subcommand is only known afterwards); dispatch then re-validates
// against the specific vocabulary so `vapbctl systems --budget-w 5` is a
// typo-suggesting error instead of a silently ignored flag.
const std::vector<std::string>& subcommand_flags(const std::string& cmd) {
  static const std::vector<std::string> kNone;
  static const std::vector<std::string> kCommon = {
      "arch", "arch-file", "arch-mix", "modules", "seed", "pvt",
      "alloc-policy"};
  static const auto with_common = [](std::vector<std::string> extra) {
    extra.insert(extra.end(), kCommon.begin(), kCommon.end());
    return extra;
  };
  static const std::vector<std::string> kPvt = with_common({"out"});
  static const std::vector<std::string> kSolve =
      with_common({"workload", "budget-w"});
  static const std::vector<std::string> kRun =
      with_common({"workload", "budget-w", "scheme"});
  static const std::vector<std::string> kCampaign = with_common(
      {"workload", "threads", "repetitions", "budgets", "schemes", "csv",
       "json", "telemetry-out", "cache-capacity"});
  static const std::vector<std::string> kFault = with_common(
      {"workload", "threads", "repetitions", "budgets", "schemes", "scenario",
       "scenario-file", "noise", "drift", "failures", "out"});
  // tenancy jobs place themselves inside the simulation (the trace's
  // placement policy), so --alloc-policy is rejected.
  static const std::vector<std::string> kTenancy = {
      "arch", "arch-file", "arch-mix", "modules", "seed", "pvt", "trace",
      "trace-file", "arrival-scales", "placements", "partitions", "threads",
      "out"};
  static const std::vector<std::string> kReport =
      with_common({"workload", "out"});
  // serve fabricates from (arch, seed, modules) or a snapshot — the other
  // common flags cannot round-trip through a daemon, so they are rejected.
  static const std::vector<std::string> kServe = {
      "arch", "modules", "seed", "snapshot", "socket", "stdio", "threads",
      "max-batch", "reply-cache", "iterations", "max-allocations"};
  // Snapshots identify fleets by preset name + master seed and calibrate
  // through the canonical forks, so --arch-file and --pvt are rejected.
  static const std::vector<std::string> kSnapshot = {
      "arch", "arch-mix", "modules", "seed", "alloc-policy", "out", "in",
      "workloads", "schemes"};
  if (cmd == "pvt") return kPvt;
  if (cmd == "solve") return kSolve;
  if (cmd == "run") return kRun;
  if (cmd == "campaign") return kCampaign;
  if (cmd == "fault") return kFault;
  if (cmd == "tenancy") return kTenancy;
  if (cmd == "report") return kReport;
  if (cmd == "serve") return kServe;
  if (cmd == "snapshot") return kSnapshot;
  return kNone;  // systems, workloads take no flags
}

void validate_subcommand_flags(const util::CliArgs& args,
                               const std::string& cmd) {
  const std::vector<std::string>& allowed = subcommand_flags(cmd);
  for (const std::string& name : args.flag_names()) {
    if (std::find(allowed.begin(), allowed.end(), name) != allowed.end()) {
      continue;
    }
    std::string msg = "'" + cmd + "' does not take --" + name;
    const std::string suggestion = util::nearest_name(name, allowed);
    if (!suggestion.empty()) msg += " (did you mean --" + suggestion + "?)";
    throw vapb::InvalidArgument(msg);
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::CliArgs args(argc, argv,
                       {"arch", "arch-file", "arch-mix", "modules", "seed",
                        "pvt", "alloc-policy", "workload", "budget-w", "scheme",
                        "out", "threads", "repetitions", "budgets", "schemes",
                        "csv", "json", "telemetry-out", "scenario",
                        "scenario-file", "noise", "drift", "failures",
                        "trace", "trace-file", "arrival-scales", "placements",
                        "partitions",
                        "cache-capacity", "snapshot", "socket", "stdio",
                        "max-batch", "reply-cache", "iterations",
                        "max-allocations", "in", "workloads"});
    if (args.positional().empty()) return usage();
    const std::string& cmd = args.positional().front();
    validate_subcommand_flags(args, cmd);
    if (cmd == "systems") return cmd_systems();
    if (cmd == "workloads") return cmd_workloads();
    if (cmd == "pvt") return cmd_pvt(args);
    if (cmd == "solve") return cmd_solve(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "campaign") return cmd_campaign(args);
    if (cmd == "fault") return cmd_fault(args);
    if (cmd == "tenancy") return cmd_tenancy(args);
    if (cmd == "report") return cmd_report(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "snapshot") return cmd_snapshot(args);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return usage();
  } catch (const vapb::Error& e) {
    std::fprintf(stderr, "vapbctl: %s\n", e.what());
    return 1;
  }
}
