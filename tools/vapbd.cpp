// vapbd — the budgeting daemon: a BudgetService behind newline-delimited
// JSON, over a local AF_UNIX socket (--socket PATH) or stdio (--stdio).
//
//   vapbd --socket /tmp/vapbd.sock --arch ha8k --modules 24 --seed 2015
//   vapbd --stdio --snapshot fleet.vapbsnap
//
// A --snapshot warm-starts the fleet from `vapbctl snapshot save` output;
// otherwise the daemon fabricates and calibrates the fleet cold. Replies
// are bitwise identical either way (the snapshot loader proves it at load
// time). See src/service/server.hpp for the wire protocol.
#include <cstdio>

#include "service/server.hpp"
#include "util/cli.hpp"

using namespace vapb;

int main(int argc, char** argv) {
  try {
    util::CliArgs args(argc, argv,
                       {"arch", "modules", "seed", "snapshot", "socket",
                        "stdio", "threads", "max-batch", "reply-cache",
                        "iterations", "max-allocations"});
    if (!args.positional().empty()) {
      std::fprintf(stderr,
                   "vapbd takes no positional arguments (got '%s')\n"
                   "usage: vapbd [--socket PATH | --stdio] [--arch A] "
                   "[--modules N] [--seed S] [--snapshot FILE] [--threads N] "
                   "[--max-batch N] [--reply-cache N] [--iterations N] "
                   "[--max-allocations N]\n",
                   args.positional().front().c_str());
      return 2;
    }
    service::DaemonOptions opt;
    opt.arch = args.get_or("arch", opt.arch);
    opt.modules =
        static_cast<std::size_t>(args.get_long_or("modules", 24));
    opt.seed = static_cast<std::uint64_t>(args.get_long_or("seed", 2015));
    opt.snapshot_path = args.get_or("snapshot", "");
    opt.socket_path = args.get_or("socket", "");
    opt.stdio = args.has("stdio");
    opt.threads = static_cast<std::size_t>(args.get_long_or("threads", 0));
    opt.max_batch =
        static_cast<std::size_t>(args.get_long_or("max-batch", 64));
    opt.reply_cache =
        static_cast<std::size_t>(args.get_long_or("reply-cache", 1024));
    opt.iterations = static_cast<int>(args.get_long_or("iterations", 6));
    opt.max_allocations =
        static_cast<std::size_t>(args.get_long_or("max-allocations", 0));
    return service::run_daemon(opt);
  } catch (const vapb::Error& e) {
    std::fprintf(stderr, "vapbd: %s\n", e.what());
    return 1;
  }
}
