// Scratch calibration probe (not part of the shipped library).
#include <cstdio>

#include "cluster/scheduler.hpp"
#include "core/campaign.hpp"
#include "stats/summary.hpp"
#include "stats/variation.hpp"
#include "workloads/catalog.hpp"

using namespace vapb;

int main() {
  const std::size_t N = 192;
  cluster::Cluster cl(hw::ha8k(), util::SeedSequence(42), N);
  std::vector<hw::ModuleId> alloc(N);
  for (std::size_t i = 0; i < N; ++i) alloc[i] = static_cast<hw::ModuleId>(i);
  core::Campaign camp(cl, alloc);

  auto show_uncapped = [&](const workloads::Workload& w) {
    const auto& m = camp.uncapped(w);
    auto cpu = stats::summarize(m.cpu_powers_w());
    auto dram = stats::summarize(m.dram_powers_w());
    auto mod = stats::summarize(m.module_powers_w());
    std::printf("%-8s uncapped: cpu %.1f+-%.2f  dram %.1f+-%.2f  module %.1f "
                "Vp=%.2f VpDram=%.2f\n",
                w.name.c_str(), cpu.mean, cpu.stddev, dram.mean, dram.stddev,
                mod.mean, m.vp(),
                stats::worst_case_ratio(m.dram_powers_w()));
  };
  show_uncapped(workloads::dgemm());
  show_uncapped(workloads::mhd());
  show_uncapped(workloads::stream());

  std::printf("\ncalibration errors: ");
  for (auto* w : workloads::evaluation_suite()) {
    std::printf("%s=%.1f%% ", w->name.c_str(),
                100 * camp.calibration_error(*w));
  }
  std::printf("\n\n");

  // Figure 2(ii)/(iii)-style: uniform per-module caps (Pc semantics roughly).
  for (double cm : {110.0, 90.0, 70.0, 60.0}) {
    for (auto* w : {&workloads::dgemm(), &workloads::mhd()}) {
      auto cell = camp.run_cell(*w, cm * N,
                                {core::SchemeKind::kNaive,
                                 core::SchemeKind::kPc,
                                 core::SchemeKind::kVaPc,
                                 core::SchemeKind::kVaFs});
      std::printf("%-8s Cm=%.0f class=%s\n", w->name.c_str(), cm,
                  core::cell_class_name(cell.cls).c_str());
      for (auto& s : cell.schemes) {
        if (!s.metrics.feasible) {
          std::printf("   %-6s infeasible\n",
                      core::scheme_name(s.kind).c_str());
          continue;
        }
        double vt = core::vt_normalized(s.metrics, *cell.uncapped);
        std::printf(
            "   %-6s alpha=%.2f f=%.2f Vf=%.2f Vt=%.2f Vp=%.2f total=%.0fW "
            "(budget %.0f) speedup=%.2f makespan=%.1f\n",
            core::scheme_name(s.kind).c_str(), s.metrics.alpha,
            s.metrics.target_freq_ghz, s.metrics.vf(), vt, s.metrics.vp(),
            s.metrics.total_power_w, s.metrics.budget_w, s.speedup_vs_naive,
            s.metrics.makespan_s);
      }
    }
  }

  // Tight-budget BT cell (the paper's 5.4X case: Cm = 50 W).
  for (double cm : {60.0, 50.0}) {
    auto cell = camp.run_cell(workloads::bt(), cm * N);
    std::printf("BT Cm=%.0f class=%s\n", cm,
                core::cell_class_name(cell.cls).c_str());
    for (auto& s : cell.schemes) {
      if (!s.metrics.feasible) {
        std::printf("   %-6s infeasible\n", core::scheme_name(s.kind).c_str());
        continue;
      }
      std::printf("   %-6s alpha=%.2f f=%.2f Vf=%.2f total=%.0fW speedup=%.2f\n",
                  core::scheme_name(s.kind).c_str(), s.metrics.alpha,
                  s.metrics.target_freq_ghz, s.metrics.vf(),
                  s.metrics.total_power_w, s.speedup_vs_naive);
    }
  }
  std::printf("\nTable 4 classification (Cm per module):\n");
  for (auto* w : workloads::evaluation_suite()) {
    std::printf("%-8s:", w->name.c_str());
    for (double cm : {110., 100., 90., 80., 70., 60., 50.}) {
      auto cls = camp.classify(*w, cm * N);
      const char* mark = cls == core::CellClass::kValid ? "X"
                         : cls == core::CellClass::kUnconstrained ? "." : "-";
      std::printf(" %s", mark);
    }
    std::printf("\n");
  }
  return 0;
}
