#include "rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstddef>
#include <string_view>
#include <tuple>

#include "lexer.hpp"
#include "parser.hpp"

namespace vapb::lint {

namespace {

// ---------------------------------------------------------------------------
// Path classification
// ---------------------------------------------------------------------------

std::string normalize(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

bool has_segment(const std::string& path, std::string_view segment) {
  std::size_t pos = 0;
  while ((pos = path.find(segment, pos)) != std::string::npos) {
    const bool at_start = pos == 0 || path[pos - 1] == '/';
    const std::size_t end = pos + segment.size();
    const bool at_end = end == path.size() || path[end] == '/';
    if (at_start && at_end) return true;
    pos = end;
  }
  return false;
}

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_header(const std::string& path) { return ends_with(path, ".hpp"); }

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string stem_of(const std::string& path) {
  std::string base = basename_of(path);
  const std::size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

// Deterministic simulation is the project's core guarantee; only the seeded
// RNG wrapper, the counter-based fault RNG, the wall-clock-reporting campaign
// driver, and standalone tools/benches may touch the banned facilities.
bool random_allowed(const std::string& path) {
  return has_segment(path, "bench") || has_segment(path, "tools") ||
         ends_with(path, "util/rng.hpp") || ends_with(path, "util/rng.cpp") ||
         ends_with(path, "fault/counter_rng.hpp") ||
         ends_with(path, "fault/counter_rng.cpp");
}

bool clock_allowed(const std::string& path) {
  return random_allowed(path) || ends_with(path, "core/campaign.cpp");
}

bool in_unit_scoped_dirs(const std::string& path) {
  return path.find("src/core/") != std::string::npos ||
         path.find("src/hw/") != std::string::npos;
}

// ---------------------------------------------------------------------------
// Unit-name helpers
// ---------------------------------------------------------------------------

// Canonical physical unit of an identifier, judged by suffix ("" = none).
// Delegates to the suffix vocabulary shared with the semantic unit-flow rule.
std::string unit_of(std::string name) {
  return unit_suffix_of(std::move(name));
}

bool contains_word(const std::string& name, std::string_view word) {
  return name.find(word) != std::string::npos;
}

// True when the identifier names a physical quantity (power, frequency,
// energy, time) by vocabulary, so it must carry a unit suffix.
bool names_physical_quantity(const std::string& name) {
  static constexpr std::array<std::string_view, 7> kWords = {
      "watt", "power", "freq", "ghz", "energy", "joule", "second"};
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  // Dimensionless derivatives of physical quantities are exempt.
  static constexpr std::array<std::string_view, 5> kDimensionless = {
      "_utilization", "_ratio", "_fraction", "_factor", "_scale"};
  std::string stripped = lower;
  if (!stripped.empty() && stripped.back() == '_') stripped.pop_back();
  for (std::string_view d : kDimensionless) {
    if (ends_with(stripped, d)) return false;
  }
  for (std::string_view w : kWords) {
    if (contains_word(lower, w)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Suppression comments: the "vapb-lint" marker, a colon, then
// allow(rule[,rule...]) and a mandatory reason.
// ---------------------------------------------------------------------------

struct Suppressions {
  std::map<std::string, std::set<int>> lines;  // rule -> suppressed lines
  std::vector<Violation> errors;               // malformed suppressions
};

Suppressions parse_suppressions(const std::string& file,
                                const std::vector<Comment>& comments) {
  Suppressions out;
  for (const Comment& c : comments) {
    const std::size_t tag = c.text.find("vapb-lint:");
    if (tag == std::string::npos) continue;
    std::string rest = c.text.substr(tag + 10);
    const std::size_t allow = rest.find("allow(");
    if (allow == std::string::npos) {
      // Prose that merely mentions the marker is fine; anything that looks
      // like an attempted directive (has a call shape) is flagged.
      if (rest.find('(') == std::string::npos) continue;
      out.errors.push_back(Violation{
          file, c.line, "bad-suppression",
          "vapb-lint comment without allow(<rule>): directive"});
      continue;
    }
    const std::size_t open = allow + 6;
    const std::size_t close = rest.find(')', open);
    if (close == std::string::npos) {
      out.errors.push_back(Violation{file, c.line, "bad-suppression",
                                     "unterminated allow(...) directive"});
      continue;
    }
    // Reason is whatever follows the closing paren, after : or -- markers.
    std::string reason = rest.substr(close + 1);
    while (!reason.empty() &&
           (reason.front() == ':' || reason.front() == '-' ||
            reason.front() == ' ' || reason.front() == '\t')) {
      reason.erase(reason.begin());
    }
    if (reason.empty()) {
      out.errors.push_back(
          Violation{file, c.line, "bad-suppression",
                    "suppression needs a reason: allow(rule): <why>"});
      continue;
    }
    // Split the comma-separated rule list and validate each name.
    std::string list = rest.substr(open, close - open);
    std::size_t pos = 0;
    while (pos <= list.size()) {
      std::size_t comma = list.find(',', pos);
      if (comma == std::string::npos) comma = list.size();
      std::string rule = list.substr(pos, comma - pos);
      rule.erase(std::remove(rule.begin(), rule.end(), ' '), rule.end());
      pos = comma + 1;
      if (rule.empty()) continue;
      const auto& catalog = rule_catalog();
      const bool known =
          std::any_of(catalog.begin(), catalog.end(),
                      [&](const RuleInfo& r) { return r.name == rule; });
      if (!known) {
        out.errors.push_back(Violation{file, c.line, "bad-suppression",
                                       "unknown rule '" + rule + "'"});
        continue;
      }
      out.lines[rule].insert(c.line);
      // A standalone comment also covers the line that follows it.
      if (c.own_line) out.lines[rule].insert(c.line + 1);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Token-stream helpers
// ---------------------------------------------------------------------------

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

// Walks left from `pos` (exclusive) over a postfix expression and returns the
// index of the identifier that names its rightmost component, or npos.
// Handles `a.b`, `a->b`, `a::b`, `f(...)`, and `a[...]` chains.
std::size_t left_operand(const std::vector<Token>& toks, std::size_t pos) {
  if (pos == 0) return std::string::npos;
  std::size_t j = pos - 1;
  // Balance back over a trailing call or subscript.
  while (is_punct(toks[j], ")") || is_punct(toks[j], "]")) {
    const std::string_view close = toks[j].text;
    const std::string_view open = close == ")" ? "(" : "[";
    int depth = 1;
    while (j > 0 && depth > 0) {
      --j;
      if (toks[j].kind == TokKind::kPunct) {
        if (toks[j].text == close) ++depth;
        if (toks[j].text == open) --depth;
      }
    }
    if (j == 0 || depth != 0) return std::string::npos;
    --j;
  }
  return toks[j].kind == TokKind::kIdent ? j : std::string::npos;
}

// Walks right from `pos` (exclusive) over a chain like `a.b.c_w` or
// `x::y.total_w` and returns the index of its final identifier, or npos.
std::size_t right_operand(const std::vector<Token>& toks, std::size_t pos) {
  std::size_t j = pos + 1;
  if (j >= toks.size() || toks[j].kind != TokKind::kIdent) {
    return std::string::npos;
  }
  std::size_t last = j;
  while (j + 2 < toks.size() &&
         (is_punct(toks[j + 1], ".") || is_punct(toks[j + 1], "->") ||
          is_punct(toks[j + 1], "::")) &&
         toks[j + 2].kind == TokKind::kIdent) {
    j += 2;
    last = j;
  }
  return last;
}

// ---------------------------------------------------------------------------
// Individual rules
// ---------------------------------------------------------------------------

void check_determinism(const std::string& path,
                       const std::vector<Token>& toks,
                       std::vector<Violation>& out) {
  static constexpr std::array<std::string_view, 8> kRandom = {
      "rand",         "srand",        "random_device",
      "mt19937",      "mt19937_64",   "default_random_engine",
      "minstd_rand",  "minstd_rand0"};
  static constexpr std::array<std::string_view, 3> kClocks = {
      "system_clock", "steady_clock", "high_resolution_clock"};
  const bool rnd_ok = random_allowed(path);
  const bool clk_ok = clock_allowed(path);
  if (rnd_ok && clk_ok) return;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    const bool qualified = i >= 1 && is_punct(toks[i - 1], "::");
    const bool called = i + 1 < toks.size() && is_punct(toks[i + 1], "(");
    if (!rnd_ok) {
      for (std::string_view b : kRandom) {
        if (t.text != b) continue;
        // `rand`/`srand` only count as the libc functions when invoked or
        // namespace-qualified; the engine names always count.
        if ((b == "rand" || b == "srand") && !qualified && !called) continue;
        out.push_back(Violation{
            path, t.line, "determinism-random",
            "'" + t.text + "' breaks reproducibility; use util::SeedSequence "
            "/ util::SplitMix or fault::CounterRng instead"});
      }
    }
    if (!clk_ok) {
      for (std::string_view b : kClocks) {
        if (t.text == b) {
          out.push_back(Violation{
              path, t.line, "determinism-clock",
              "'" + t.text + "' makes results time-dependent; simulated time "
              "comes from the DES clock"});
        }
      }
      if ((t.text == "time" || t.text == "clock") && qualified && called &&
          i >= 2 && is_ident(toks[i - 2], "std")) {
        out.push_back(Violation{path, t.line, "determinism-clock",
                                "'std::" + t.text +
                                    "' makes results time-dependent"});
      }
    }
  }
}

// The SoA/cluster layer is where fleet-sized numeric passes live, and a raw
// loop-carried `x += f(i)` reduction there is exactly the pattern whose
// floating-point result depends on association order — the thing
// util::chunked_sum's fixed chunk association exists to pin down. The rule
// is scoped to src/cluster/ (where the vectorized passes are) and flags any
// compound `+=` inside a loop body; string/character appends are exempt
// (they are not floating-point reductions), and the loop header itself
// (`i += stride`) is never a reduction.
void check_reduction(const std::string& path, const std::vector<Token>& toks,
                     std::vector<Violation>& out) {
  if (path.find("src/cluster/") == std::string::npos) return;
  // Mark every token inside a loop header (never a reduction: `i += stride`
  // is the induction step) and inside a loop body. Nested loops overlap;
  // marking token-wise keeps each `+=` flagged at most once.
  std::vector<char> in_header(toks.size(), 0);
  std::vector<char> in_body(toks.size(), 0);
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!(is_ident(toks[i], "for") || is_ident(toks[i], "while"))) continue;
    std::size_t j = i + 1;
    if (j >= toks.size() || !is_punct(toks[j], "(")) continue;
    int paren = 1;
    in_header[j] = 1;
    ++j;
    while (j < toks.size() && paren > 0) {
      if (is_punct(toks[j], "(")) ++paren;
      if (is_punct(toks[j], ")")) --paren;
      in_header[j] = 1;
      ++j;
    }
    if (j >= toks.size()) break;
    // Body span: a braced block or a single statement up to ';'.
    std::size_t body_end = j;
    if (is_punct(toks[j], "{")) {
      int brace = 1;
      ++body_end;
      while (body_end < toks.size() && brace > 0) {
        if (is_punct(toks[body_end], "{")) ++brace;
        if (is_punct(toks[body_end], "}")) --brace;
        ++body_end;
      }
    } else {
      while (body_end < toks.size() && !is_punct(toks[body_end], ";")) {
        ++body_end;
      }
    }
    for (std::size_t k = j; k < body_end; ++k) in_body[k] = 1;
  }
  for (std::size_t k = 1; k < toks.size(); ++k) {
    if (!is_punct(toks[k], "+=") || !in_body[k] || in_header[k]) continue;
    if (toks[k - 1].kind != TokKind::kIdent) continue;
    // Appending literals builds text, not a floating-point sum.
    if (k + 1 < toks.size() && toks[k + 1].kind == TokKind::kString) continue;
    out.push_back(Violation{
        path, toks[k].line, "determinism-reduction",
        "loop-carried '" + toks[k - 1].text +
            " +=' reduction depends on association order; accumulate "
            "through util::chunked_sum (fixed chunk association) instead"});
  }
}

void check_unit_mixing(const std::string& path, const std::vector<Token>& toks,
                       std::vector<Violation>& out) {
  static constexpr std::array<std::string_view, 8> kOps = {
      "+", "-", "<", ">", "<=", ">=", "==", "!="};
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    const Token& op = toks[i];
    if (op.kind != TokKind::kPunct) continue;
    if (std::find(kOps.begin(), kOps.end(), op.text) == kOps.end()) continue;
    const std::size_t li = left_operand(toks, i);
    const std::size_t ri = right_operand(toks, i);
    if (li == std::string::npos || ri == std::string::npos) continue;
    const std::string lu = unit_of(toks[li].text);
    const std::string ru = unit_of(toks[ri].text);
    if (lu.empty() || ru.empty() || lu == ru) continue;
    out.push_back(Violation{
        path, op.line, "unit-mixing",
        "'" + toks[li].text + "' (" + lu + ") " + op.text + " '" +
            toks[ri].text + "' (" + ru +
            ") mixes units; convert explicitly or use util::units types"});
  }
}

void check_unit_suffix(const std::string& path, const std::vector<Token>& toks,
                       std::vector<Violation>& out) {
  if (!in_unit_scoped_dirs(path)) return;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_ident(toks[i], "double")) continue;
    const Token& name = toks[i + 1];
    if (name.kind != TokKind::kIdent) continue;
    const Token& after = toks[i + 2];
    const bool declares =
        is_punct(after, ";") || is_punct(after, "=") || is_punct(after, "{") ||
        is_punct(after, ",") || is_punct(after, ")");
    if (!declares) continue;
    if (!names_physical_quantity(name.text)) continue;
    if (!unit_of(name.text).empty()) continue;
    // Compound rates (e.g. cpu_dyn_w_per_ghz) already name their unit.
    if (name.text.find("_per_") != std::string::npos) continue;
    out.push_back(Violation{
        path, name.line, "unit-suffix",
        "physical quantity 'double " + name.text +
            "' needs a unit suffix (_w, _ghz, _j, _s) or a util::units type"});
  }
}

void check_unused_includes(const std::string& path,
                           const std::vector<Token>& toks,
                           const HeaderIndex& index,
                           std::vector<Violation>& out) {
  // Gather quoted includes and the set of identifiers used in this file.
  struct Inc {
    std::string header;
    int line;
  };
  std::vector<Inc> includes;
  std::set<std::string> used;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kIdent) used.insert(toks[i].text);
    if (is_punct(toks[i], "#") && i + 2 < toks.size() &&
        is_ident(toks[i + 1], "include") &&
        toks[i + 2].kind == TokKind::kString) {
      includes.push_back(Inc{toks[i + 2].text, toks[i + 2].line});
    }
  }
  const std::string own_stem = stem_of(path);
  for (const Inc& inc : includes) {
    const std::string base = basename_of(normalize(inc.header));
    if (stem_of(base) == own_stem) continue;  // paired header always allowed
    const auto it = index.decls.find(base);
    if (it == index.decls.end()) continue;  // not indexed: cannot judge
    const bool is_used =
        std::any_of(it->second.begin(), it->second.end(),
                    [&](const std::string& name) { return used.count(name) > 0; });
    if (!is_used) {
      out.push_back(Violation{path, inc.line, "unused-include",
                              "nothing declared in \"" + inc.header +
                                  "\" is referenced here"});
    }
  }
}

void check_using_namespace(const std::string& path,
                           const std::vector<Token>& toks,
                           std::vector<Violation>& out) {
  if (!is_header(path)) return;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (is_ident(toks[i], "using") && is_ident(toks[i + 1], "namespace")) {
      out.push_back(Violation{
          path, toks[i].line, "using-namespace-header",
          "'using namespace' in a header leaks into every includer"});
    }
  }
}

void check_nodiscard(const std::string& path, const std::vector<Token>& toks,
                     std::vector<Violation>& out) {
  if (!is_header(path)) return;
  for (std::size_t i = 3; i + 2 < toks.size(); ++i) {
    // Shape: ... ) const { return <expr> ; }  — a one-expression accessor.
    if (!(is_punct(toks[i], ")") && is_ident(toks[i + 1], "const") &&
          is_punct(toks[i + 2], "{") && i + 3 < toks.size() &&
          is_ident(toks[i + 3], "return"))) {
      continue;
    }
    if (i + 4 < toks.size() && is_punct(toks[i + 4], "*")) continue;  // *this
    // Body must be exactly one return statement.
    std::size_t semi = i + 4;
    int depth = 0;
    while (semi < toks.size() &&
           !(depth == 0 && is_punct(toks[semi], ";"))) {
      if (is_punct(toks[semi], "(") || is_punct(toks[semi], "{")) ++depth;
      if (is_punct(toks[semi], ")") || is_punct(toks[semi], "}")) --depth;
      ++semi;
    }
    if (semi + 1 >= toks.size() || !is_punct(toks[semi + 1], "}")) continue;
    // Find the matching ( and the function name before it.
    std::size_t open = i;
    int bal = 1;
    while (open > 0 && bal > 0) {
      --open;
      if (is_punct(toks[open], ")")) ++bal;
      if (is_punct(toks[open], "(")) --bal;
    }
    if (open == 0 || bal != 0) continue;
    const std::size_t fname = open - 1;
    if (toks[fname].kind != TokKind::kIdent) continue;  // operators etc.
    if (fname >= 1 && is_ident(toks[fname - 1], "operator")) continue;
    // Walk back over the return type; a constructor has none and is skipped.
    static constexpr std::array<std::string_view, 7> kTypePunct = {
        "::", "<", ">", "*", "&", ",", ">>"};
    std::size_t tb = fname;
    while (tb > 0) {
      const Token& t = toks[tb - 1];
      const bool type_ident =
          t.kind == TokKind::kIdent && t.text != "return" && t.text != "public" &&
          t.text != "private" && t.text != "protected";
      const bool type_punct =
          t.kind == TokKind::kPunct &&
          std::find(kTypePunct.begin(), kTypePunct.end(), t.text) !=
              kTypePunct.end();
      if (!type_ident && !type_punct) break;
      --tb;
    }
    if (tb == fname) continue;  // no return type: constructor
    // An attribute immediately before the type, e.g. [[nodiscard]], shows up
    // as `] ]`.
    const bool has_attr = tb >= 2 && is_punct(toks[tb - 1], "]") &&
                          is_punct(toks[tb - 2], "]");
    if (has_attr) continue;
    out.push_back(Violation{
        path, toks[fname].line, "nodiscard-accessor",
        "pure accessor '" + toks[fname].text +
            "()' should be [[nodiscard]]"});
  }
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"determinism-random",
       "bans rand()/std::random_device/std::mt19937* outside src/util/rng.*, "
       "src/fault/counter_rng.*, bench/, tools/"},
      {"determinism-clock",
       "bans std::chrono wall clocks outside src/core/campaign.cpp, "
       "src/util/rng.*, bench/, tools/"},
      {"determinism-reduction",
       "flags raw loop-carried '+=' reductions in src/cluster/ — accumulate "
       "through util::chunked_sum's fixed chunk association"},
      {"unit-mixing",
       "flags +,-,comparison between identifiers carrying different unit "
       "suffixes (_w, _ghz, _j, _s)"},
      {"unit-suffix",
       "flags unsuffixed double physical-quantity declarations in src/core "
       "and src/hw"},
      {"unused-include",
       "flags project #includes whose declared names are never referenced"},
      {"using-namespace-header", "flags 'using namespace' in headers"},
      {"nodiscard-accessor",
       "flags pure one-expression const accessors lacking [[nodiscard]]"},
      {"bad-suppression",
       "flags malformed vapb-lint suppression comments (missing reason or "
       "unknown rule)"},
      {"determinism-taint",
       "cross-TU dataflow: nondeterminism sources (randomness, wall clocks, "
       "pointer-to-int casts, unordered iteration, raw float reductions) "
       "transitively reachable from RunResult/CampaignResult sinks"},
      {"parallel-capture-race",
       "flags parallel_for lambdas that capture by reference and write a "
       "captured name not subscripted by the loop index"},
      {"stage-purity",
       "flags *Stage subclasses whose run path writes a member that is not "
       "a mutable *cache_ memo"},
      {"unit-flow",
       "flags unit-suffix mismatches across call boundaries: arguments vs "
       "parameter names, call results vs assigned variables"},
  };
  return kCatalog;
}

HeaderIndex build_header_index(
    const std::vector<std::pair<std::string, std::string>>& headers) {
  HeaderIndex index;
  for (const auto& [path, source] : headers) {
    std::set<std::string>& names = index.decls[basename_of(normalize(path))];
    const LexResult lexed = lex(source);
    const std::vector<Token>& toks = lexed.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      const bool next_ident =
          i + 1 < toks.size() && toks[i + 1].kind == TokKind::kIdent;
      // Type and alias introducers.
      if ((t.text == "class" || t.text == "struct" || t.text == "enum" ||
           t.text == "using" || t.text == "define" || t.text == "namespace") &&
          next_ident) {
        names.insert(toks[i + 1].text);
        continue;
      }
      // Anything that syntactically looks like a declaration or call target:
      // broad on purpose — extra names only make includes count as used.
      if (i + 1 < toks.size() &&
          (is_punct(toks[i + 1], "(") || is_punct(toks[i + 1], "=") ||
           is_punct(toks[i + 1], "{") || is_punct(toks[i + 1], ";"))) {
        names.insert(t.text);
      }
    }
  }
  return index;
}

std::vector<Violation> lint_source(const std::string& display_path,
                                   const std::string& source,
                                   const HeaderIndex& index) {
  const std::string path = normalize(display_path);
  const LexResult lexed = lex(source);
  Suppressions sup = parse_suppressions(path, lexed.comments);

  std::vector<Violation> raw;
  check_determinism(path, lexed.tokens, raw);
  check_reduction(path, lexed.tokens, raw);
  check_unit_mixing(path, lexed.tokens, raw);
  check_unit_suffix(path, lexed.tokens, raw);
  check_unused_includes(path, lexed.tokens, index, raw);
  check_using_namespace(path, lexed.tokens, raw);
  check_nodiscard(path, lexed.tokens, raw);

  std::vector<Violation> out = std::move(sup.errors);
  for (Violation& v : raw) {
    const auto it = sup.lines.find(v.rule);
    if (it != sup.lines.end() && it->second.count(v.line) > 0) continue;
    out.push_back(std::move(v));
  }
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return out;
}

FileSuppressions collect_suppressions(const std::string& display_path,
                                      const std::string& source) {
  const LexResult lexed = lex(source);
  Suppressions sup =
      parse_suppressions(normalize(display_path), lexed.comments);
  FileSuppressions out;
  out.lines = std::move(sup.lines);
  return out;
}

}  // namespace vapb::lint
