#include "semantic.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <set>
#include <sstream>
#include <string_view>

namespace vapb::lint {

namespace {

bool has_segment(const std::string& path, std::string_view segment) {
  std::size_t pos = 0;
  while ((pos = path.find(segment, pos)) != std::string::npos) {
    const bool at_start = pos == 0 || path[pos - 1] == '/';
    const std::size_t end = pos + segment.size();
    const bool at_end = end == path.size() || path[end] == '/';
    if (at_start && at_end) return true;
    pos = end;
  }
  return false;
}

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Fixture trees opt into every semantic rule regardless of path layout so
// the analyzer can be exercised outside src/.
bool in_fixtures(const std::string& path) {
  return path.find("lint_fixtures") != std::string::npos;
}

// Taint facts only matter inside the simulation core (and fixtures):
// bench/ and tools/ are standalone drivers that already may use ambient
// randomness, and tests/ assert on results rather than produce them.
bool taint_scoped(const std::string& path) {
  return in_fixtures(path) || has_segment(path, "src");
}

// Files whose randomness / clock use is sanctioned by design (the seeded
// RNG wrappers, the counter-based fault RNG); mirrors the token-level
// allowlists in rules.cpp.
bool sanctioned_random(const std::string& path) {
  return ends_with(path, "util/rng.hpp") || ends_with(path, "util/rng.cpp") ||
         ends_with(path, "fault/counter_rng.hpp") ||
         ends_with(path, "fault/counter_rng.cpp");
}

// Type names that identify deterministic sinks: any function whose signature
// mentions one of these produces (or carries) externally observable results
// that the golden digests pin down. The service request/reply pair is on the
// list because vapbd promises bit-identical replies across client thread
// counts — a reply is as externally observable as a campaign cell.
constexpr std::array<std::string_view, 14> kSinkTypes = {
    "RunResult",         "RunMetrics",       "RunContext",
    "CampaignResult",    "BudgetResult",     "FaultCampaignResult",
    "FaultPointResult",  "CampaignSpec",     "BudgetRequest",
    "BudgetReply",       "TenancyTrace",     "TenancyResult",
    "TenancyCampaignResult",                 "JobOutcome"};

bool mentions_sink_type(const std::string& joined) {
  std::size_t start = 0;
  while (start <= joined.size()) {
    std::size_t space = joined.find(' ', start);
    if (space == std::string::npos) space = joined.size();
    const std::string_view word(joined.data() + start, space - start);
    for (std::string_view sink : kSinkTypes) {
      if (word == sink) return true;
    }
    if (space == joined.size()) break;
    start = space + 1;
  }
  return false;
}

bool is_sink_function(const FunctionDef& fn) {
  if (!taint_scoped(fn.file)) return false;
  if (fn.name.find("digest") != std::string::npos) return true;
  if (mentions_sink_type(fn.return_type)) return true;
  for (const Param& p : fn.params) {
    if (mentions_sink_type(p.type)) return true;
  }
  for (std::string_view sink : kSinkTypes) {
    if (fn.class_name == sink) return true;
  }
  return false;
}

std::string source_kind_word(SourceKind kind) {
  switch (kind) {
    case SourceKind::kRandom:
      return "ambient randomness";
    case SourceKind::kClock:
      return "wall clock";
    case SourceKind::kPointerToInt:
      return "pointer-to-integer conversion";
    case SourceKind::kUnorderedIter:
      return "unordered-container iteration";
    case SourceKind::kRawReduction:
      return "order-sensitive float reduction";
  }
  return "nondeterminism";
}

std::string taint_rule_for(SourceKind kind) {
  // Every taint finding reports as determinism-taint so one suppression
  // grammar covers the family; the kind shows up in the message.
  static_cast<void>(kind);
  return "determinism-taint";
}

// True when the source fact is excluded by design (sanctioned files,
// driver-only paths, DES simulated-time accumulation).
bool fact_excluded(const std::string& path, const SourceFact& fact) {
  if (!taint_scoped(path)) return true;
  if (in_fixtures(path)) return false;
  switch (fact.kind) {
    case SourceKind::kRandom:
    case SourceKind::kClock:
      return sanctioned_random(path);
    case SourceKind::kRawReduction:
      // The DES engines define simulated time by fixed sequential
      // accumulation; both engines share the association and the fuzz suite
      // pins them bit-for-bit against each other.
      return path.find("src/des/") != std::string::npos;
    default:
      return false;
  }
}

}  // namespace

ProjectIndex build_project_index(std::vector<FileModel> files) {
  // Deterministic function ids regardless of input order.
  std::sort(files.begin(), files.end(),
            [](const FileModel& a, const FileModel& b) {
              return a.path < b.path;
            });
  ProjectIndex index;
  for (FileModel& file : files) {
    for (FunctionDef& fn : file.functions) {
      index.by_name[fn.name].push_back(
          static_cast<int>(index.functions.size()));
      index.functions.push_back(std::move(fn));
    }
    for (ClassDef& cls : file.classes) {
      auto [it, inserted] = index.classes.try_emplace(cls.name, cls);
      if (!inserted) {
        ClassDef& merged = it->second;
        for (const std::string& b : cls.bases) {
          if (std::find(merged.bases.begin(), merged.bases.end(), b) ==
              merged.bases.end()) {
            merged.bases.push_back(b);
          }
        }
        merged.members.insert(cls.members.begin(), cls.members.end());
        merged.mutable_members.insert(cls.mutable_members.begin(),
                                      cls.mutable_members.end());
      }
    }
  }
  return index;
}

std::vector<int> resolve_call(const ProjectIndex& index,
                              const FunctionDef& caller, const CallSite& call,
                              bool* confident) {
  if (confident != nullptr) *confident = false;
  const auto it = index.by_name.find(call.name);
  if (it == index.by_name.end()) return {};
  const std::vector<int>& candidates = it->second;
  // 1. Qualified call: the definition's qualified name must end with
  //    "<qualifier>::<name>".
  if (!call.qualifier.empty()) {
    const std::string want = call.qualifier + "::" + call.name;
    std::vector<int> matched;
    for (int id : candidates) {
      const std::string& q =
          index.functions[static_cast<std::size_t>(id)].qualified;
      if (q == want || ends_with(q, "::" + want)) matched.push_back(id);
    }
    if (!matched.empty()) {
      if (confident != nullptr) *confident = true;
      return matched;
    }
  }
  // 2. Same-class method resolution.
  if (!caller.class_name.empty()) {
    std::vector<int> matched;
    for (int id : candidates) {
      if (index.functions[static_cast<std::size_t>(id)].class_name ==
          caller.class_name) {
        matched.push_back(id);
      }
    }
    if (!matched.empty()) {
      if (confident != nullptr) *confident = true;
      return matched;
    }
  }
  // 3. Name-only fallback: every definition sharing the unqualified name.
  //    Over-approximate (sound for reachability); only "confident" when the
  //    name is unique project-wide.
  if (confident != nullptr) *confident = candidates.size() == 1;
  return candidates;
}

CallGraph build_call_graph(const ProjectIndex& index) {
  CallGraph graph;
  graph.edges.resize(index.functions.size());
  for (std::size_t f = 0; f < index.functions.size(); ++f) {
    const FunctionDef& fn = index.functions[f];
    std::set<int> targets;
    for (const CallSite& call : fn.calls) {
      for (int id : resolve_call(index, fn, call)) {
        if (static_cast<std::size_t>(id) != f) targets.insert(id);
      }
    }
    graph.edges[f].assign(targets.begin(), targets.end());
  }
  return graph;
}

namespace {

// ---------------------------------------------------------------------------
// Rule 1: determinism-taint
// ---------------------------------------------------------------------------

void check_determinism_taint(const ProjectIndex& index, const CallGraph& graph,
                             std::vector<Violation>& out) {
  const std::size_t n = index.functions.size();
  // Forward BFS from every sink: reached[f] holds the id of the function we
  // were called from on the shortest path back to a sink (or the sink-entry
  // marker), sink_of[f] the originating sink.
  std::vector<int> parent(n, -1);
  std::vector<int> sink_of(n, -1);
  std::vector<char> reached(n, 0);
  std::deque<int> queue;
  for (std::size_t f = 0; f < n; ++f) {
    if (is_sink_function(index.functions[f])) {
      reached[f] = 1;
      sink_of[f] = static_cast<int>(f);
      queue.push_back(static_cast<int>(f));
    }
  }
  while (!queue.empty()) {
    const int f = queue.front();
    queue.pop_front();
    for (int callee : graph.edges[static_cast<std::size_t>(f)]) {
      if (reached[static_cast<std::size_t>(callee)]) continue;
      reached[static_cast<std::size_t>(callee)] = 1;
      parent[static_cast<std::size_t>(callee)] = f;
      sink_of[static_cast<std::size_t>(callee)] =
          sink_of[static_cast<std::size_t>(f)];
      queue.push_back(callee);
    }
  }
  for (std::size_t f = 0; f < n; ++f) {
    if (!reached[f]) continue;
    const FunctionDef& fn = index.functions[f];
    for (const SourceFact& fact : fn.sources) {
      if (fact_excluded(fn.file, fact)) continue;
      // Reconstruct the call path sink -> ... -> fn.
      std::vector<std::string> chain;
      for (int cur = static_cast<int>(f); cur != -1;
           cur = parent[static_cast<std::size_t>(cur)]) {
        chain.push_back(
            index.functions[static_cast<std::size_t>(cur)].qualified);
      }
      std::reverse(chain.begin(), chain.end());
      std::ostringstream msg;
      msg << source_kind_word(fact.kind) << " '" << fact.what
          << "' can taint deterministic sink '"
          << index.functions[static_cast<std::size_t>(sink_of[f])].qualified
          << "'";
      if (chain.size() > 1) {
        msg << " (call path: ";
        for (std::size_t c = 0; c < chain.size(); ++c) {
          if (c != 0) msg << " -> ";
          msg << chain[c];
        }
        msg << ")";
      }
      if (fact.kind == SourceKind::kRawReduction) {
        msg << "; accumulate through util::chunked_sum";
      }
      out.push_back(Violation{fn.file, fact.line, taint_rule_for(fact.kind),
                              msg.str()});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 2: parallel-capture-race
// ---------------------------------------------------------------------------

void check_capture_race(const ProjectIndex& index,
                        std::vector<Violation>& out) {
  for (const FunctionDef& fn : index.functions) {
    std::set<std::string> param_names;
    for (const Param& p : fn.params) {
      if (!p.name.empty()) param_names.insert(p.name);
    }
    for (const LambdaFact& lam : fn.lambdas) {
      if (lam.host_call != "parallel_for") continue;
      const bool by_ref = lam.ref_default || !lam.ref_captures.empty();
      if (!by_ref) continue;
      for (const WriteFact& w : lam.writes) {
        if (w.indexed || w.declared_local) continue;
        if (fn.atomic_names.count(w.name) > 0) continue;
        const bool explicitly_ref =
            std::find(lam.ref_captures.begin(), lam.ref_captures.end(),
                      w.name) != lam.ref_captures.end();
        const bool member_write = w.name.size() >= 2 && w.name.back() == '_';
        if (!lam.ref_default && !explicitly_ref && !member_write) continue;
        const bool by_value =
            std::find(lam.val_captures.begin(), lam.val_captures.end(),
                      w.name) != lam.val_captures.end();
        if (by_value) continue;
        out.push_back(Violation{
            fn.file, w.line, "parallel-capture-race",
            "parallel_for body writes '" + w.name +
                "' captured by reference without subscripting the loop "
                "index — concurrent chunks race; index into per-element "
                "storage or reduce with util::chunked_sum after the loop"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 3: stage-purity
// ---------------------------------------------------------------------------

bool is_stage_class(const ProjectIndex& index, const std::string& name,
                    std::set<std::string>& visiting) {
  if (ends_with(name, "Stage")) return true;
  if (!visiting.insert(name).second) return false;  // inheritance cycle guard
  const auto it = index.classes.find(name);
  if (it == index.classes.end()) return false;
  for (const std::string& base : it->second.bases) {
    if (is_stage_class(index, base, visiting)) return true;
  }
  return false;
}

void check_stage_purity(const ProjectIndex& index, const CallGraph& graph,
                        std::vector<Violation>& out) {
  static constexpr std::array<std::string_view, 6> kRunMethods = {
      "calibrate", "model", "solve", "enforce", "execute", "run"};
  // Entry points: run-path methods of *Stage classes.
  std::set<std::string> stage_classes;
  for (const auto& [name, cls] : index.classes) {
    std::set<std::string> visiting;
    if (is_stage_class(index, name, visiting)) stage_classes.insert(name);
  }
  const std::size_t n = index.functions.size();
  std::vector<char> on_run_path(n, 0);
  std::deque<int> queue;
  for (std::size_t f = 0; f < n; ++f) {
    const FunctionDef& fn = index.functions[f];
    if (stage_classes.count(fn.class_name) == 0) continue;
    const bool entry =
        std::find(kRunMethods.begin(), kRunMethods.end(), fn.name) !=
        kRunMethods.end();
    if (!entry) continue;
    on_run_path[f] = 1;
    queue.push_back(static_cast<int>(f));
  }
  // Extend to same-class helpers transitively called from the run path.
  while (!queue.empty()) {
    const int f = queue.front();
    queue.pop_front();
    const std::string& cls =
        index.functions[static_cast<std::size_t>(f)].class_name;
    for (int callee : graph.edges[static_cast<std::size_t>(f)]) {
      const FunctionDef& target =
          index.functions[static_cast<std::size_t>(callee)];
      if (target.class_name != cls) continue;
      if (on_run_path[static_cast<std::size_t>(callee)]) continue;
      on_run_path[static_cast<std::size_t>(callee)] = 1;
      queue.push_back(callee);
    }
  }
  for (std::size_t f = 0; f < n; ++f) {
    if (!on_run_path[f]) continue;
    const FunctionDef& fn = index.functions[f];
    const auto cls_it = index.classes.find(fn.class_name);
    for (const MemberWrite& w : fn.member_writes) {
      // Only judge identifiers we know to be members of this class; a local
      // that happens to end in '_' is not a purity violation.
      if (cls_it == index.classes.end() ||
          cls_it->second.members.count(w.member) == 0) {
        continue;
      }
      const bool mutable_cache =
          cls_it->second.mutable_members.count(w.member) > 0 &&
          w.member.find("cache") != std::string::npos;
      if (mutable_cache) continue;
      out.push_back(Violation{
          fn.file, w.line, "stage-purity",
          "stage run path '" + fn.qualified + "' writes member '" + w.member +
              "'; stages must be stateless — results travel through "
              "RunContext, and only mutable *cache_ members may memoize"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 4: unit-flow
// ---------------------------------------------------------------------------

void check_unit_flow(const ProjectIndex& index, std::vector<Violation>& out) {
  for (const FunctionDef& fn : index.functions) {
    for (const CallSite& call : fn.calls) {
      bool confident = false;
      const std::vector<int> targets =
          resolve_call(index, fn, call, &confident);
      if (!confident || targets.empty()) continue;
      // Prefer an overload whose arity matches the call.
      const FunctionDef* target = nullptr;
      for (int id : targets) {
        const FunctionDef& cand = index.functions[static_cast<std::size_t>(id)];
        if (cand.params.size() == call.arg_names.size()) {
          if (target != nullptr) {
            target = nullptr;  // ambiguous overload set: skip
            break;
          }
          target = &cand;
        }
      }
      if (target == nullptr) continue;
      for (std::size_t a = 0; a < call.arg_names.size(); ++a) {
        const std::string& arg = call.arg_names[a];
        if (arg.empty()) continue;
        const std::string arg_unit = unit_suffix_of(arg);
        const std::string param_unit = unit_suffix_of(target->params[a].name);
        if (arg_unit.empty() || param_unit.empty() || arg_unit == param_unit) {
          continue;
        }
        out.push_back(Violation{
            fn.file, call.line, "unit-flow",
            "argument '" + arg + "' (" + arg_unit + ") flows into parameter '" +
                target->params[a].name + "' (" + param_unit + ") of '" +
                target->qualified +
                "'; convert explicitly or adopt util::units types"});
      }
      // Return flow: `x_s = f(...)` where f's own name carries a unit.
      if (!call.lhs_name.empty()) {
        const std::string lhs_unit = unit_suffix_of(call.lhs_name);
        const std::string ret_unit = unit_suffix_of(target->name);
        if (!lhs_unit.empty() && !ret_unit.empty() && lhs_unit != ret_unit) {
          out.push_back(Violation{
              fn.file, call.line, "unit-flow",
              "result of '" + target->qualified + "' (" + ret_unit +
                  ") assigned to '" + call.lhs_name + "' (" + lhs_unit +
                  "); convert explicitly or adopt util::units types"});
        }
      }
    }
  }
}

}  // namespace

std::vector<Violation> run_semantic_rules(const ProjectIndex& index,
                                          const CallGraph& graph) {
  std::vector<Violation> out;
  check_determinism_taint(index, graph, out);
  check_capture_race(index, out);
  check_stage_purity(index, graph, out);
  check_unit_flow(index, out);
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Violation& a, const Violation& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.rule == b.rule && a.message == b.message;
                        }),
            out.end());
  return out;
}

}  // namespace vapb::lint
