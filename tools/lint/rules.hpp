#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace vapb::lint {

/// One rule violation, formatted by the CLI as `file:line: [rule] message`.
struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string name;
  std::string description;
};

/// Every rule vapb-lint knows about, for --list-rules and suppression
/// validation.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

/// Names declared by each project header, keyed by header basename. Used by
/// the unused-include rule; a header absent from the index is never flagged.
struct HeaderIndex {
  std::map<std::string, std::set<std::string>> decls;
};

/// Builds the declared-name index from (display path, source text) pairs.
[[nodiscard]] HeaderIndex build_header_index(
    const std::vector<std::pair<std::string, std::string>>& headers);

/// Lints one translation unit. `display_path` selects per-path rule scoping
/// (headers vs sources, determinism allowlists) and is echoed in violations.
[[nodiscard]] std::vector<Violation> lint_source(const std::string& display_path,
                                                 const std::string& source,
                                                 const HeaderIndex& index);

/// Reasoned allow-directives of one file, keyed rule -> covered lines. The
/// driver applies these to project-wide semantic findings at the source site
/// (malformed directives are reported separately by lint_source).
struct FileSuppressions {
  std::map<std::string, std::set<int>> lines;
};

[[nodiscard]] FileSuppressions collect_suppressions(
    const std::string& display_path, const std::string& source);

}  // namespace vapb::lint
