#include "parser.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <string_view>

namespace vapb::lint {

namespace {

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

bool is_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",     "while",    "switch",   "return",  "sizeof",
      "alignof",  "catch",   "throw",    "new",      "delete",  "do",
      "else",     "case",    "default",  "static_assert",       "decltype",
      "typeid",   "noexcept","alignas",  "co_return","co_await","co_yield",
      "static_cast",         "dynamic_cast",         "const_cast",
      "reinterpret_cast",    "assert",   "requires", "goto",    "try"};
  return kKeywords.count(s) > 0;
}

// Skips a balanced bracket pair starting at `i` (which must sit on the open
// bracket); returns the index one past the close, or `n` when unbalanced.
std::size_t skip_balanced(const std::vector<Token>& t, std::size_t i,
                          std::string_view open, std::string_view close) {
  std::size_t n = t.size();
  if (i >= n || !is_punct(t[i], open)) return i;
  int depth = 0;
  for (; i < n; ++i) {
    if (is_punct(t[i], open)) ++depth;
    if (is_punct(t[i], close) && --depth == 0) return i + 1;
  }
  return n;
}

// Walks back over a `ns :: ns :: name` chain ending at `name_idx`; returns
// the index of the chain's first token.
std::size_t chain_start(const std::vector<Token>& t, std::size_t name_idx) {
  std::size_t i = name_idx;
  while (i >= 2 && is_punct(t[i - 1], "::") &&
         t[i - 2].kind == TokKind::kIdent) {
    i -= 2;
  }
  return i;
}

std::string join_tokens(const std::vector<Token>& t, std::size_t begin,
                        std::size_t end) {
  std::string out;
  for (std::size_t i = begin; i < end && i < t.size(); ++i) {
    if (!out.empty()) out += ' ';
    out += t[i].text;
  }
  return out;
}

constexpr std::array<std::string_view, 8> kRandomNames = {
    "rand",        "srand",      "random_device",
    "mt19937",     "mt19937_64", "default_random_engine",
    "minstd_rand", "minstd_rand0"};

constexpr std::array<std::string_view, 3> kClockNames = {
    "system_clock", "steady_clock", "high_resolution_clock"};

constexpr std::array<std::string_view, 10> kIntegerTypeNames = {
    "uintptr_t", "intptr_t", "size_t",   "uint64_t", "uint32_t",
    "int64_t",   "int32_t",  "unsigned", "long",     "int"};

constexpr std::array<std::string_view, 4> kUnorderedNames = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

constexpr std::array<std::string_view, 8> kCompoundAssign = {
    "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^="};

constexpr std::array<std::string_view, 7> kMutatingMethods = {
    "push_back", "emplace_back", "insert", "emplace", "erase", "clear",
    "resize"};

// Accumulator-name vocabulary for the raw-reduction taint source: either a
// unit suffix or a word that names a running aggregate.
bool names_accumulator(const std::string& name) {
  if (!unit_suffix_of(name).empty()) return true;
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) {
                   return static_cast<char>(std::tolower(c));
                 });
  static constexpr std::array<std::string_view, 6> kWords = {
      "sum", "total", "acc", "mean", "power", "energy"};
  for (std::string_view w : kWords) {
    if (lower.find(w) != std::string::npos) return true;
  }
  return false;
}

class Parser {
 public:
  Parser(const std::string& path, const LexResult& lexed)
      : t_(lexed.tokens), n_(lexed.tokens.size()) {
    out_.path = path;
  }

  FileModel run() {
    collect_unordered_names();
    parse_decls(0, n_, -1, {});
    return std::move(out_);
  }

 private:
  // -- declaration scope ----------------------------------------------------

  // Parses the declarations in [begin, end): namespaces, classes, enums and
  // function definitions. `class_idx` indexes out_.classes when inside a
  // class body; `scopes` is the lexical "::"-joined prefix.
  void parse_decls(std::size_t begin, std::size_t end, int class_idx,
                   std::vector<std::string> scopes) {
    std::size_t i = begin;
    while (i < end) {
      const Token& tok = t_[i];
      // Preprocessor directive: skip the rest of its line.
      if (is_punct(tok, "#")) {
        const int line = tok.line;
        while (i < end && t_[i].line == line) ++i;
        continue;
      }
      if (is_ident(tok, "template")) {
        i = skip_angles(i + 1);
        continue;
      }
      if (is_ident(tok, "namespace")) {
        std::size_t j = i + 1;
        std::string name;
        while (j < end && t_[j].kind == TokKind::kIdent) {
          name = t_[j].text;
          ++j;
          if (j < end && is_punct(t_[j], "::")) ++j;
        }
        if (j < end && is_punct(t_[j], "{")) {
          std::size_t close = skip_balanced(t_, j, "{", "}");
          auto inner = scopes;
          if (!name.empty()) inner.push_back(name);
          parse_decls(j + 1, close - 1, -1, inner);
          i = close;
        } else {
          i = j + 1;  // namespace alias or using-directive fragment
        }
        continue;
      }
      if ((is_ident(tok, "class") || is_ident(tok, "struct")) && i + 1 < end &&
          t_[i + 1].kind == TokKind::kIdent) {
        i = parse_class(i, end, scopes);
        continue;
      }
      if (is_ident(tok, "enum")) {
        while (i < end && !is_punct(t_[i], "{") && !is_punct(t_[i], ";")) ++i;
        if (i < end && is_punct(t_[i], "{")) i = skip_balanced(t_, i, "{", "}");
        continue;
      }
      if (is_ident(tok, "using") || is_ident(tok, "typedef") ||
          is_ident(tok, "friend")) {
        while (i < end && !is_punct(t_[i], ";")) ++i;
        ++i;
        continue;
      }
      // Generic declaration: find the first top-level `;`, `{` or `(`.
      std::size_t decl_start = i;
      std::size_t j = i;
      while (j < end && !is_punct(t_[j], ";") && !is_punct(t_[j], "{") &&
             !is_punct(t_[j], "(")) {
        if (is_punct(t_[j], "<")) {
          std::size_t after = skip_angles(j);
          if (after > j + 1) {
            j = after;
            continue;
          }
        }
        ++j;
      }
      if (j >= end) break;
      if (is_punct(t_[j], ";")) {
        if (class_idx >= 0) record_member(decl_start, j, class_idx);
        i = j + 1;
        continue;
      }
      if (is_punct(t_[j], "{")) {
        std::size_t close = skip_balanced(t_, j, "{", "}");
        if (class_idx >= 0) record_member(decl_start, j, class_idx);
        i = close;
        continue;
      }
      // `(`: function definition, declaration, or variable with ctor syntax.
      i = parse_maybe_function(decl_start, j, end, class_idx, scopes);
    }
  }

  // Parses `class Name [final] [: bases] { ... }` starting at the keyword.
  std::size_t parse_class(std::size_t i, std::size_t end,
                          const std::vector<std::string>& scopes) {
    const std::string name = t_[i + 1].text;
    std::size_t j = i + 2;
    // Find the body or the terminating `;` (forward declaration).
    std::size_t colon = 0;
    while (j < end && !is_punct(t_[j], "{") && !is_punct(t_[j], ";")) {
      if (is_punct(t_[j], ":") && colon == 0) colon = j;
      if (is_punct(t_[j], "<")) {
        std::size_t after = skip_angles(j);
        if (after > j + 1) {
          j = after;
          continue;
        }
      }
      if (is_punct(t_[j], "(")) return j;  // not a class: `struct` var? bail
      ++j;
    }
    if (j >= end || is_punct(t_[j], ";")) return j + 1;
    ClassDef cls;
    cls.file = out_.path;
    cls.line = t_[i].line;
    cls.name = name;
    if (colon != 0) {
      for (std::size_t b = colon + 1; b < j; ++b) {
        if (t_[b].kind != TokKind::kIdent) continue;
        const std::string& text = t_[b].text;
        if (text == "public" || text == "protected" || text == "private" ||
            text == "virtual" || text == "final") {
          continue;
        }
        // Keep only the final component of each qualified base name.
        if (b + 1 < j && is_punct(t_[b + 1], "::")) continue;
        cls.bases.push_back(text);
        // Skip template arguments of this base.
        if (b + 1 < j && is_punct(t_[b + 1], "<")) b = skip_angles(b + 1) - 1;
      }
    }
    out_.classes.push_back(std::move(cls));
    const int idx = static_cast<int>(out_.classes.size()) - 1;
    std::size_t close = skip_balanced(t_, j, "{", "}");
    auto inner = scopes;
    inner.push_back(name);
    parse_decls(j + 1, close - 1, idx, inner);
    return close;
  }

  // Records a trailing-underscore data member declared in [begin, end).
  void record_member(std::size_t begin, std::size_t end, int class_idx) {
    bool is_mutable = false;
    for (std::size_t k = begin; k < end; ++k) {
      if (is_ident(t_[k], "mutable")) is_mutable = true;
      if (t_[k].kind != TokKind::kIdent || t_[k].text.size() < 2 ||
          t_[k].text.back() != '_') {
        continue;
      }
      const bool terminated = k + 1 >= end || is_punct(t_[k + 1], ";") ||
                              is_punct(t_[k + 1], "=") ||
                              is_punct(t_[k + 1], "{") ||
                              is_punct(t_[k + 1], ",");
      if (!terminated) continue;
      ClassDef& cls = out_.classes[static_cast<std::size_t>(class_idx)];
      cls.members.insert(t_[k].text);
      if (is_mutable) cls.mutable_members.insert(t_[k].text);
    }
  }

  // Decides whether the `(` at `paren` opens a function definition; parses
  // it when it does. Returns the index to resume declaration scanning at.
  std::size_t parse_maybe_function(std::size_t decl_start, std::size_t paren,
                                   std::size_t end, int class_idx,
                                   const std::vector<std::string>& scopes) {
    // The name chain directly before the paren.
    if (paren == 0 || t_[paren - 1].kind != TokKind::kIdent) {
      return skip_statement(paren, end);
    }
    const std::size_t name_idx = paren - 1;
    if (is_keyword(t_[name_idx].text)) return skip_statement(paren, end);
    std::size_t close = skip_balanced(t_, paren, "(", ")");
    if (close >= end + 1 && close > n_) return close;
    // Trailing specifiers up to the body, a `;`, or an initializer list.
    std::size_t k = close;
    bool is_const = false;
    while (k < end) {
      const Token& tk = t_[k];
      if (is_ident(tk, "const")) {
        is_const = true;
        ++k;
      } else if (is_ident(tk, "noexcept")) {
        ++k;
        if (k < end && is_punct(t_[k], "(")) k = skip_balanced(t_, k, "(", ")");
      } else if (is_ident(tk, "override") || is_ident(tk, "final") ||
                 is_punct(tk, "&") || is_punct(tk, "&&")) {
        ++k;
      } else if (is_punct(tk, "->")) {
        // Trailing return type: consume type tokens until `{` or `;`.
        ++k;
        while (k < end && !is_punct(t_[k], "{") && !is_punct(t_[k], ";")) {
          if (is_punct(t_[k], "<")) {
            std::size_t after = skip_angles(k);
            if (after > k + 1) {
              k = after;
              continue;
            }
          }
          ++k;
        }
      } else {
        break;
      }
    }
    if (k >= end) return end;
    if (is_punct(t_[k], ";")) return k + 1;        // declaration only
    if (is_punct(t_[k], "=")) return skip_statement(k, end);  // = default etc.
    std::size_t body = 0;
    if (is_punct(t_[k], ":")) {
      // Constructor initializer list: name(...)/{...} items, comma-separated.
      std::size_t p = k + 1;
      while (p < end) {
        while (p < end && !is_punct(t_[p], "(") && !is_punct(t_[p], "{") &&
               !is_punct(t_[p], ";")) {
          if (is_punct(t_[p], "<")) {
            std::size_t after = skip_angles(p);
            if (after > p + 1) {
              p = after;
              continue;
            }
          }
          ++p;
        }
        if (p >= end || is_punct(t_[p], ";")) return p + 1;
        const bool brace_after_name =
            is_punct(t_[p], "{") && p > 0 && t_[p - 1].kind == TokKind::kIdent;
        if (is_punct(t_[p], "(") || brace_after_name) {
          p = is_punct(t_[p], "(") ? skip_balanced(t_, p, "(", ")")
                                   : skip_balanced(t_, p, "{", "}");
          if (p < end && is_punct(t_[p], ",")) {
            ++p;
            continue;
          }
          if (p < end && is_punct(t_[p], "{")) {
            body = p;
            break;
          }
          return p;
        }
        // `{` not after a name: the body itself.
        body = p;
        break;
      }
    } else if (is_punct(t_[k], "{")) {
      body = k;
    } else {
      return skip_statement(k, end);  // variable with ctor syntax, etc.
    }
    if (body == 0) return k + 1;

    FunctionDef fn;
    fn.file = out_.path;
    fn.line = t_[name_idx].line;
    fn.name = t_[name_idx].text;
    const std::size_t chain = chain_start(t_, name_idx);
    std::string prefix;
    for (const std::string& s : scopes) prefix += s + "::";
    for (std::size_t q = chain; q < name_idx; q += 2) {
      prefix += t_[q].text + "::";
    }
    fn.qualified = prefix + fn.name;
    if (class_idx >= 0) {
      fn.class_name = out_.classes[static_cast<std::size_t>(class_idx)].name;
    } else if (chain < name_idx) {
      fn.class_name = t_[name_idx - 2].text;
    }
    fn.is_const = is_const;
    // Tokens before the name chain approximate the return type; empty for
    // constructors/destructors.
    fn.return_type = join_tokens(t_, decl_start, chain);
    parse_params(paren, close - 1, fn);
    std::size_t body_close = skip_balanced(t_, body, "{", "}");
    scan_body(body + 1, body_close - 1, fn);
    out_.functions.push_back(std::move(fn));
    return body_close;
  }

  void parse_params(std::size_t open, std::size_t close, FunctionDef& fn) {
    std::size_t start = open + 1;
    int paren = 0, brace = 0;
    for (std::size_t i = open + 1; i <= close && i < n_; ++i) {
      const bool top = paren == 0 && brace == 0;
      if (is_punct(t_[i], "(")) ++paren;
      if (is_punct(t_[i], ")")) --paren;
      if (is_punct(t_[i], "{")) ++brace;
      if (is_punct(t_[i], "}")) --brace;
      if (is_punct(t_[i], "<")) {
        std::size_t after = skip_angles(i);
        if (after > i + 1 && after <= close) i = after - 1;
        continue;
      }
      if ((i == close || (top && is_punct(t_[i], ","))) && i > start) {
        add_param(start, i, fn);
        start = i + 1;
      }
    }
  }

  void add_param(std::size_t begin, std::size_t end, FunctionDef& fn) {
    // Drop a default argument.
    std::size_t stop = begin;
    while (stop < end && !is_punct(t_[stop], "=")) ++stop;
    // Find the last identifier before `stop`.
    std::size_t last = std::string::npos;
    for (std::size_t i = begin; i < stop; ++i) {
      if (t_[i].kind == TokKind::kIdent) last = i;
    }
    if (last == std::string::npos) return;
    Param p;
    const bool named =
        last > begin && !is_punct(t_[last - 1], "::") &&
        (t_[last - 1].kind == TokKind::kIdent || is_punct(t_[last - 1], "&") ||
         is_punct(t_[last - 1], "*") || is_punct(t_[last - 1], ">") ||
         is_punct(t_[last - 1], "..."));
    if (named) {
      p.name = t_[last].text;
      p.type = join_tokens(t_, begin, last);
    } else {
      p.type = join_tokens(t_, begin, stop);
    }
    fn.params.push_back(std::move(p));
  }

  // -- function bodies ------------------------------------------------------

  void scan_body(std::size_t begin, std::size_t end, FunctionDef& fn) {
    mark_loops(begin, end);
    for (std::size_t i = begin; i < end && i < n_; ++i) {
      const Token& tok = t_[i];
      if (tok.kind == TokKind::kIdent) {
        scan_sources(i, fn);
        if (i + 1 < end && is_punct(t_[i + 1], "(") &&
            !is_keyword(tok.text)) {
          record_call(i, fn);
        }
        // `std::atomic<T> name` declarations: writes to these names are
        // synchronized, which the capture-race rule must know.
        if (tok.text == "atomic" && i + 1 < end && is_punct(t_[i + 1], "<")) {
          std::size_t j = skip_angles(i + 1);
          while (j < end &&
                 (is_punct(t_[j], "&") || is_punct(t_[j], "*"))) {
            ++j;
          }
          if (j < end && t_[j].kind == TokKind::kIdent) {
            fn.atomic_names.insert(t_[j].text);
          }
        }
      }
      if (tok.kind == TokKind::kPunct) {
        if (is_write_op(tok.text) && i >= 1 &&
            t_[i - 1].kind == TokKind::kIdent) {
          record_member_write(i, fn);
          if (tok.text == "+=") record_raw_reduction(i, begin, fn);
        }
        // A lambda argument of a call: `f(..., [caps](params){...}, ...)`.
        if (tok.text == "[" && i >= 1 &&
            (is_punct(t_[i - 1], "(") || is_punct(t_[i - 1], ","))) {
          scan_lambda(i, end, fn);
        }
      }
    }
  }

  static bool is_write_op(const std::string& s) {
    if (s == "=") return true;
    return std::find(kCompoundAssign.begin(), kCompoundAssign.end(), s) !=
           kCompoundAssign.end();
  }

  // Marks loop headers/bodies within the current function body so the
  // raw-reduction source can tell an induction step from a reduction.
  void mark_loops(std::size_t begin, std::size_t end) {
    in_header_.assign(n_, 0);
    in_loop_body_.assign(n_, 0);
    for (std::size_t i = begin; i < end && i < n_; ++i) {
      if (!(is_ident(t_[i], "for") || is_ident(t_[i], "while"))) continue;
      std::size_t j = i + 1;
      if (j >= n_ || !is_punct(t_[j], "(")) continue;
      std::size_t hdr_end = skip_balanced(t_, j, "(", ")");
      for (std::size_t k = j; k < hdr_end; ++k) in_header_[k] = 1;
      std::size_t body_end = hdr_end;
      if (hdr_end < n_ && is_punct(t_[hdr_end], "{")) {
        body_end = skip_balanced(t_, hdr_end, "{", "}");
      } else {
        while (body_end < n_ && !is_punct(t_[body_end], ";")) ++body_end;
      }
      for (std::size_t k = hdr_end; k < body_end && k < n_; ++k) {
        in_loop_body_[k] = 1;
      }
    }
  }

  void scan_sources(std::size_t i, FunctionDef& fn) {
    const Token& tok = t_[i];
    const bool qualified = i >= 1 && is_punct(t_[i - 1], "::");
    const bool called = i + 1 < n_ && is_punct(t_[i + 1], "(");
    for (std::string_view b : kRandomNames) {
      if (tok.text != b) continue;
      if ((b == "rand" || b == "srand") && !qualified && !called) continue;
      fn.sources.push_back(SourceFact{SourceKind::kRandom, tok.text, tok.line});
    }
    for (std::string_view b : kClockNames) {
      if (tok.text == b) {
        fn.sources.push_back(
            SourceFact{SourceKind::kClock, tok.text, tok.line});
      }
    }
    if ((tok.text == "time" || tok.text == "clock") && qualified && called &&
        i >= 2 && is_ident(t_[i - 2], "std")) {
      fn.sources.push_back(
          SourceFact{SourceKind::kClock, "std::" + tok.text, tok.line});
    }
    if (tok.text == "reinterpret_cast" && i + 1 < n_ &&
        is_punct(t_[i + 1], "<")) {
      const std::size_t close = skip_angles(i + 1);
      for (std::size_t k = i + 2; k + 1 < close; ++k) {
        if (t_[k].kind != TokKind::kIdent) continue;
        for (std::string_view ty : kIntegerTypeNames) {
          if (t_[k].text == ty) {
            fn.sources.push_back(SourceFact{SourceKind::kPointerToInt,
                                            "reinterpret_cast<" + t_[k].text +
                                                ">",
                                            tok.line});
            k = close;
            break;
          }
        }
      }
    }
    // Range-for over a variable of unordered type: `for (... : name)`.
    if (tok.text == "for" && i + 1 < n_ && is_punct(t_[i + 1], "(")) {
      const std::size_t close = skip_balanced(t_, i + 1, "(", ")");
      int depth = 0;
      for (std::size_t k = i + 1; k + 1 < close; ++k) {
        if (is_punct(t_[k], "(")) ++depth;
        if (is_punct(t_[k], ")")) --depth;
        if (depth == 1 && is_punct(t_[k], ":") && !is_punct(t_[k - 1], ":") &&
            (k + 1 >= n_ || !is_punct(t_[k + 1], ":"))) {
          // Final identifier of the range expression.
          std::string range_name;
          for (std::size_t r = k + 1; r + 1 < close; ++r) {
            if (t_[r].kind == TokKind::kIdent) range_name = t_[r].text;
          }
          if (unordered_names_.count(range_name) > 0) {
            fn.sources.push_back(SourceFact{SourceKind::kUnorderedIter,
                                            range_name, t_[k].line});
          }
          break;
        }
      }
    }
  }

  void record_call(std::size_t name_idx, FunctionDef& fn) {
    const std::size_t chain = chain_start(t_, name_idx);
    // In a call expression the token before the callee chain is punctuation
    // or a connective keyword — an identifier there means `Type name(...)`.
    if (chain >= 1) {
      const Token& prev = t_[chain - 1];
      if (prev.kind == TokKind::kIdent && !is_keyword(prev.text) &&
          prev.text != "return" && prev.text != "co_return") {
        return;
      }
    }
    CallSite call;
    call.name = t_[name_idx].text;
    call.line = t_[name_idx].line;
    if (chain >= 2 && is_punct(t_[chain - 1], "=") &&
        t_[chain - 2].kind == TokKind::kIdent) {
      call.lhs_name = t_[chain - 2].text;
    }
    if (chain < name_idx) {
      call.qualifier = join_tokens(t_, chain, name_idx - 1);
      // join_tokens inserts spaces: "util ::" -> strip to "util".
      std::string q;
      for (std::size_t q_i = chain; q_i < name_idx - 1; ++q_i) {
        if (t_[q_i].kind == TokKind::kIdent) {
          if (!q.empty()) q += "::";
          q += t_[q_i].text;
        }
      }
      call.qualifier = q;
    }
    // Arguments: top-level comma-separated slices; record plain chains.
    // skip_balanced returns one past ')', so the argument region is
    // [open + 1, close - 1): excluding ')' keeps the final argument a pure
    // chain and keeps zero-arg calls at zero recorded arguments (both
    // otherwise collapse to "" and defeat arity-matched unit-flow checks).
    const std::size_t open = name_idx + 1;
    const std::size_t close = skip_balanced(t_, open, "(", ")");
    const std::size_t args_end = close > open ? close - 1 : open;
    std::size_t start = open + 1;
    int paren = 1, brace = 0, bracket = 0;
    for (std::size_t i = open + 1; i < args_end; ++i) {
      if (is_punct(t_[i], "(")) ++paren;
      if (is_punct(t_[i], ")")) --paren;
      if (is_punct(t_[i], "{")) ++brace;
      if (is_punct(t_[i], "}")) --brace;
      if (is_punct(t_[i], "[")) ++bracket;
      if (is_punct(t_[i], "]")) --bracket;
      if (paren == 1 && brace == 0 && bracket == 0 &&
          is_punct(t_[i], ",")) {
        call.arg_names.push_back(plain_chain_name(start, i));
        start = i + 1;
      }
    }
    if (args_end > open + 1) {
      call.arg_names.push_back(plain_chain_name(start, args_end));
    }
    fn.calls.push_back(std::move(call));
  }

  // Returns the final identifier when [begin, end) is a pure access chain
  // (`a`, `x.b`, `p->c`, `s::d`), "" otherwise.
  std::string plain_chain_name(std::size_t begin, std::size_t end) {
    std::string last;
    bool expect_ident = true;
    for (std::size_t i = begin; i < end && i < n_; ++i) {
      const Token& tok = t_[i];
      if (expect_ident) {
        if (tok.kind != TokKind::kIdent) return "";
        last = tok.text;
        expect_ident = false;
      } else {
        if (!(is_punct(tok, ".") || is_punct(tok, "->") ||
              is_punct(tok, "::"))) {
          return "";
        }
        expect_ident = true;
      }
    }
    return expect_ident ? "" : last;
  }

  void record_member_write(std::size_t op_idx, FunctionDef& fn) {
    const Token& name = t_[op_idx - 1];
    if (name.text.size() < 2 || name.text.back() != '_') return;
    // Only writes through `this`: bare `member_` or `this->member_`.
    if (op_idx >= 2) {
      const Token& before = t_[op_idx - 2];
      if (is_punct(before, ".") || is_punct(before, "->")) {
        if (!(op_idx >= 3 && is_ident(t_[op_idx - 3], "this"))) return;
      }
    }
    fn.member_writes.push_back(MemberWrite{name.text, name.line});
  }

  void record_raw_reduction(std::size_t op_idx, std::size_t body_begin,
                            FunctionDef& fn) {
    if (!in_loop_body_[op_idx] || in_header_[op_idx]) return;
    const Token& name = t_[op_idx - 1];
    // The accumulator must be a bare scalar: `stats[r].x +=` is per-element.
    if (op_idx >= 2) {
      const Token& before = t_[op_idx - 2];
      if (is_punct(before, ".") || is_punct(before, "->") ||
          is_punct(before, "]") || is_punct(before, "::")) {
        return;
      }
    }
    if (op_idx + 1 < n_ && t_[op_idx + 1].kind == TokKind::kString) return;
    if (!names_accumulator(name.text)) return;
    static_cast<void>(body_begin);
    fn.sources.push_back(
        SourceFact{SourceKind::kRawReduction, name.text, name.line});
  }

  void scan_lambda(std::size_t open_bracket, std::size_t end,
                   FunctionDef& fn) {
    LambdaFact lam;
    lam.line = t_[open_bracket].line;
    lam.host_call = enclosing_call_name(open_bracket);
    std::size_t close = skip_balanced(t_, open_bracket, "[", "]");
    for (std::size_t i = open_bracket + 1; i + 1 < close; ++i) {
      if (is_punct(t_[i], "&")) {
        if (i + 1 < close - 1 && t_[i + 1].kind == TokKind::kIdent) {
          lam.ref_captures.push_back(t_[i + 1].text);
          ++i;
        } else {
          lam.ref_default = true;
        }
      } else if (t_[i].kind == TokKind::kIdent && t_[i].text != "this") {
        lam.val_captures.push_back(t_[i].text);
      }
    }
    std::size_t k = close;
    if (k < end && is_punct(t_[k], "(")) {
      const std::size_t pclose = skip_balanced(t_, k, "(", ")");
      // First parameter's name: last identifier before the first top-level
      // `,` or the closing paren.
      std::size_t stop = k + 1;
      int depth = 1;
      while (stop < pclose - 1) {
        if (is_punct(t_[stop], "(")) ++depth;
        if (is_punct(t_[stop], ")")) --depth;
        if (depth == 1 && is_punct(t_[stop], ",")) break;
        ++stop;
      }
      for (std::size_t p = k + 1; p < stop; ++p) {
        if (t_[p].kind == TokKind::kIdent) lam.index_param = t_[p].text;
      }
      k = pclose;
    }
    while (k < end && !is_punct(t_[k], "{") && !is_punct(t_[k], ";") &&
           !is_punct(t_[k], ")")) {
      ++k;
    }
    if (k >= end || !is_punct(t_[k], "{")) return;
    const std::size_t body_close = skip_balanced(t_, k, "{", "}");
    scan_lambda_writes(k + 1, body_close - 1, lam);
    fn.lambdas.push_back(std::move(lam));
  }

  std::string enclosing_call_name(std::size_t open_bracket) {
    // Walk back from the `(`/`,` before the lambda to the call's open paren,
    // then take the identifier in front of it.
    std::size_t i = open_bracket - 1;
    if (is_punct(t_[i], ",")) {
      int paren = 0, brace = 0, bracket = 0;
      while (i > 0) {
        const Token& tok = t_[i];
        if (is_punct(tok, ")")) ++paren;
        if (is_punct(tok, "}")) ++brace;
        if (is_punct(tok, "]")) ++bracket;
        if (is_punct(tok, "{")) --brace;
        if (is_punct(tok, "[")) --bracket;
        if (is_punct(tok, "(")) {
          if (paren == 0 && brace <= 0 && bracket <= 0) break;
          --paren;
        }
        --i;
      }
    }
    if (i == 0 || !is_punct(t_[i], "(")) return "";
    return t_[i - 1].kind == TokKind::kIdent ? t_[i - 1].text : "";
  }

  // Resolves the identifier at `idx` (tail of a possible `a.b->c` chain) to
  // the name the write actually lands on: the chain's base object — that is
  // what capture semantics act on. `this->member_` resolves to the member.
  std::string write_target(std::size_t idx) {
    std::size_t j = idx;
    while (j >= 2 && (is_punct(t_[j - 1], ".") || is_punct(t_[j - 1], "->")) &&
           t_[j - 2].kind == TokKind::kIdent) {
      j -= 2;
    }
    if (is_ident(t_[j], "this") && j + 2 <= idx) return t_[j + 2].text;
    return t_[j].text;
  }

  void scan_lambda_writes(std::size_t begin, std::size_t end,
                          LambdaFact& lam) {
    // Names declared inside the body: `Type name` / `Type& name` patterns.
    std::set<std::string> declared;
    for (std::size_t i = begin + 1; i < end && i < n_; ++i) {
      if (t_[i].kind != TokKind::kIdent) continue;
      const Token& prev = t_[i - 1];
      const bool type_before =
          (prev.kind == TokKind::kIdent && !is_keyword(prev.text) &&
           prev.text != "return") ||
          ((is_punct(prev, "&") || is_punct(prev, "*") ||
            is_punct(prev, ">")) &&
           i >= 2 && t_[i - 2].kind == TokKind::kIdent);
      if (type_before) declared.insert(t_[i].text);
    }
    auto add_write = [&](const std::string& name, int line, std::size_t op_idx,
                         bool prefix_op = false) {
      if (name == lam.index_param) return;
      WriteFact w;
      w.name = name;
      w.line = line;
      w.declared_local = declared.count(name) > 0;
      // The written chain's span: from the previous `;`/`{`/`}` to the op —
      // or, for a prefix ++/--, from the op to the end of the statement.
      std::size_t s = op_idx;
      std::size_t e = op_idx;
      if (prefix_op) {
        while (e < end && !is_punct(t_[e], ";")) ++e;
      } else {
        while (s > begin && !is_punct(t_[s - 1], ";") &&
               !is_punct(t_[s - 1], "{") && !is_punct(t_[s - 1], "}")) {
          --s;
        }
      }
      for (std::size_t q = s; q < e; ++q) {
        if (!lam.index_param.empty() && is_ident(t_[q], lam.index_param)) {
          w.indexed = true;
        }
      }
      lam.writes.push_back(std::move(w));
    };
    for (std::size_t i = begin; i < end && i < n_; ++i) {
      const Token& tok = t_[i];
      if (tok.kind != TokKind::kPunct) continue;
      if (is_write_op(tok.text) && i >= 1 &&
          t_[i - 1].kind == TokKind::kIdent) {
        add_write(write_target(i - 1), t_[i - 1].line, i);
      }
      // Subscripted store `base[expr] op= ...`: the write lands on `base`,
      // and the index check decides whether the store is per-element.
      if (is_write_op(tok.text) && i >= 1 && is_punct(t_[i - 1], "]")) {
        int depth = 0;
        std::size_t j = i - 1;
        while (j > begin) {
          if (is_punct(t_[j], "]")) ++depth;
          if (is_punct(t_[j], "[")) {
            --depth;
            if (depth == 0) break;
          }
          --j;
        }
        if (depth == 0 && j > begin && t_[j - 1].kind == TokKind::kIdent) {
          add_write(write_target(j - 1), t_[j - 1].line, i);
        }
      }
      if ((tok.text == "++" || tok.text == "--")) {
        if (i >= 1 && t_[i - 1].kind == TokKind::kIdent) {
          add_write(write_target(i - 1), t_[i - 1].line, i);
        } else if (i + 1 < end && t_[i + 1].kind == TokKind::kIdent) {
          add_write(t_[i + 1].text, t_[i + 1].line, i, /*prefix_op=*/true);
        }
      }
      // Mutating container methods on a captured object.
      if ((tok.text == "." || tok.text == "->") && i >= 1 && i + 2 < end &&
          t_[i - 1].kind == TokKind::kIdent &&
          t_[i + 1].kind == TokKind::kIdent && is_punct(t_[i + 2], "(")) {
        for (std::string_view m : kMutatingMethods) {
          if (t_[i + 1].text == m) {
            add_write(write_target(i - 1), t_[i - 1].line, i);
            break;
          }
        }
      }
    }
  }

  // -- misc -----------------------------------------------------------------

  // Skips a balanced `<...>` starting at `i` when it plausibly opens a
  // template argument list; returns i + 1 (no-op) when it looks like a
  // comparison (no matching `>` on the same nesting before a `;`).
  std::size_t skip_angles(std::size_t i) {
    if (i >= n_ || !is_punct(t_[i], "<")) return i + 1;
    int depth = 0;
    for (std::size_t k = i; k < n_; ++k) {
      if (is_punct(t_[k], "<")) ++depth;
      if (is_punct(t_[k], "<<")) return i + 1;
      if (is_punct(t_[k], ";") || is_punct(t_[k], "{")) return i + 1;
      if (is_punct(t_[k], ">")) {
        if (--depth == 0) return k + 1;
      }
      if (is_punct(t_[k], ">>")) {
        depth -= 2;
        if (depth <= 0) return k + 1;
      }
    }
    return i + 1;
  }

  std::size_t skip_statement(std::size_t i, std::size_t end) {
    int brace = 0;
    while (i < end) {
      if (is_punct(t_[i], "{")) ++brace;
      if (is_punct(t_[i], "}")) --brace;
      if (is_punct(t_[i], ";") && brace <= 0) return i + 1;
      ++i;
    }
    return end;
  }

  void collect_unordered_names() {
    for (std::size_t i = 0; i + 1 < n_; ++i) {
      if (t_[i].kind != TokKind::kIdent) continue;
      bool unordered = false;
      for (std::string_view u : kUnorderedNames) {
        if (t_[i].text == u) unordered = true;
      }
      if (!unordered || !is_punct(t_[i + 1], "<")) continue;
      std::size_t after = skip_angles(i + 1);
      // Skip refs/pointers between the type and the declared name.
      while (after < n_ && (is_punct(t_[after], "&") ||
                            is_punct(t_[after], "*") ||
                            is_ident(t_[after], "const"))) {
        ++after;
      }
      if (after < n_ && t_[after].kind == TokKind::kIdent) {
        unordered_names_.insert(t_[after].text);
      }
    }
  }

  const std::vector<Token>& t_;
  std::size_t n_;
  FileModel out_;
  std::set<std::string> unordered_names_;
  std::vector<char> in_header_;
  std::vector<char> in_loop_body_;
};

}  // namespace

std::string unit_suffix_of(std::string name) {
  if (!name.empty() && name.back() == '_') name.pop_back();
  // Compound rates like cpu_dyn_w_per_ghz carry their own derived unit; the
  // simple suffix vocabulary cannot judge them.
  if (name.find("_per_") != std::string::npos) return "";
  static const std::array<std::pair<std::string_view, std::string_view>, 8>
      kSuffixes = {{{"_watts", "watts"},
                    {"_w", "watts"},
                    {"_ghz", "gigahertz"},
                    {"_hz", "hertz"},
                    {"_joules", "joules"},
                    {"_j", "joules"},
                    {"_seconds", "seconds"},
                    {"_s", "seconds"}}};
  for (const auto& [suffix, unit] : kSuffixes) {
    const std::string s(suffix);
    if (name.size() >= s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0) {
      return std::string(unit);
    }
  }
  return "";
}

FileModel parse_file(const std::string& path, const LexResult& lexed) {
  return Parser(path, lexed).run();
}

}  // namespace vapb::lint
