#pragma once

#include <string>
#include <vector>

namespace vapb::lint {

/// Token categories produced by the lightweight C++ lexer. The lexer is not a
/// full C++ front end: it only distinguishes enough structure for the lint
/// rules (identifiers, literals, punctuation, and comments with positions).
enum class TokKind {
  kIdent,
  kNumber,
  kString,  ///< string or character literal, text excludes quotes
  kPunct,
};

struct Token {
  TokKind kind;
  std::string text;
  int line;  ///< 1-based source line
};

/// A comment with its location; `own_line` is true when nothing but
/// whitespace precedes it on its line (a standalone comment applies lint
/// suppressions to the following line as well).
struct Comment {
  std::string text;  ///< without the // or /* */ delimiters
  int line;
  bool own_line;
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenizes C++ source. Comments and string/char literal bodies never leak
/// into the token stream, so rules cannot be fooled by mentions of banned
/// identifiers inside text.
[[nodiscard]] LexResult lex(const std::string& source);

}  // namespace vapb::lint
