#include "lexer.hpp"

#include <array>
#include <cctype>
#include <string_view>

namespace vapb::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Multi-character punctuators, longest first so maximal munch wins.
constexpr std::array<std::string_view, 26> kPuncts = {
    "<<=", ">>=", "<=>", "->*", "...", "::", "->", "<=", ">=", "==", "!=",
    "&&",  "||",  "+=",  "-=",  "*=", "/=", "%=", "^=", "|=", "&=", "++",
    "--",  "<<",  ">>",  "##"};

}  // namespace

LexResult lex(const std::string& source) {
  LexResult out;
  const std::size_t n = source.size();
  std::size_t i = 0;
  int line = 1;
  bool line_has_code = false;

  auto advance_over = [&](char c) {
    if (c == '\n') {
      ++line;
      line_has_code = false;
    }
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n' || std::isspace(static_cast<unsigned char>(c)) != 0) {
      advance_over(c);
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      std::size_t start = i + 2;
      std::size_t end = start;
      while (end < n && source[end] != '\n') ++end;
      out.comments.push_back(Comment{source.substr(start, end - start), line,
                                     !line_has_code});
      i = end;
      continue;
    }
    // Block comment; may span lines, each spanned line counts as commented.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const int first_line = line;
      const bool own = !line_has_code;
      std::size_t end = i + 2;
      while (end + 1 < n && !(source[end] == '*' && source[end + 1] == '/')) {
        advance_over(source[end]);
        ++end;
      }
      out.comments.push_back(
          Comment{source.substr(i + 2, end - i - 2), first_line, own});
      i = end + 1 < n ? end + 2 : n;
      continue;
    }
    line_has_code = true;
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
      std::size_t delim_end = i + 2;
      while (delim_end < n && source[delim_end] != '(') ++delim_end;
      std::string close = ")" + source.substr(i + 2, delim_end - i - 2) + "\"";
      std::size_t end = source.find(close, delim_end);
      if (end == std::string::npos) end = n;
      for (std::size_t k = i; k < end && k < n; ++k) advance_over(source[k]);
      out.tokens.push_back(Token{TokKind::kString, "", line});
      i = end == n ? n : end + close.size();
      continue;
    }
    // String / char literal with escapes.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t end = i + 1;
      while (end < n && source[end] != quote) {
        if (source[end] == '\\' && end + 1 < n) ++end;
        advance_over(source[end]);
        ++end;
      }
      out.tokens.push_back(
          Token{TokKind::kString, source.substr(i + 1, end - i - 1), line});
      i = end < n ? end + 1 : n;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t end = i + 1;
      while (end < n && is_ident_char(source[end])) ++end;
      out.tokens.push_back(
          Token{TokKind::kIdent, source.substr(i, end - i), line});
      i = end;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t end = i + 1;
      // Numbers swallow digit separators, exponents, and UDL suffixes.
      while (end < n && (is_ident_char(source[end]) || source[end] == '\'' ||
                         source[end] == '.' ||
                         ((source[end] == '+' || source[end] == '-') &&
                          (source[end - 1] == 'e' || source[end - 1] == 'E' ||
                           source[end - 1] == 'p' || source[end - 1] == 'P')))) {
        ++end;
      }
      out.tokens.push_back(
          Token{TokKind::kNumber, source.substr(i, end - i), line});
      i = end;
      continue;
    }
    // Punctuation, longest match first.
    std::string_view rest(source.data() + i, n - i);
    std::string text(1, c);
    for (std::string_view p : kPuncts) {
      if (rest.substr(0, p.size()) == p) {
        text = std::string(p);
        break;
      }
    }
    out.tokens.push_back(Token{TokKind::kPunct, text, line});
    i += text.size();
  }
  return out;
}

}  // namespace vapb::lint
