// vapb-lint: project-specific static analysis for the VAPB codebase.
//
// v2 is a two-layer analyzer: per-file token rules (determinism allowlists,
// unit suffixes, hygiene) plus project-wide semantic rules on a symbol index
// and call graph (cross-TU determinism taint, parallel-capture races, stage
// purity, unit flow across call boundaries). See docs/LINT.md for the rule
// catalog and suppression guidance.
//
// Usage: vapb-lint [options] <file|dir>...
//   --list-rules          print the rule catalog and exit
//   --jobs N              lint files on N workers (default 1); output is
//                         bit-identical for every N
//   --format text|json|sarif   report format (default text)
//   --out FILE            write the report to FILE instead of stdout
//   --baseline FILE       drop findings whose fingerprints appear in FILE
//   --write-baseline FILE write current finding fingerprints to FILE
// Exits 0 when clean, 1 on violations, 2 on usage/IO errors.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "driver.hpp"

namespace {

int usage(std::FILE* to) {
  std::fprintf(to,
               "usage: vapb-lint [--list-rules] [--jobs N] "
               "[--format text|json|sarif] [--out FILE]\n"
               "                 [--baseline FILE] [--write-baseline FILE] "
               "<file|dir>...\n");
  return to == stdout ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  vapb::lint::LintOptions opts;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--list-rules") {
      for (const auto& rule : vapb::lint::rule_catalog()) {
        std::printf("%-24s %s\n", rule.name.c_str(), rule.description.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") return usage(stdout);
    const auto flag_value = [&](const char* flag) -> const char* {
      if (arg != flag) return nullptr;
      if (a + 1 >= argc) {
        std::fprintf(stderr, "vapb-lint: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++a];
    };
    if (const char* v = flag_value("--jobs")) {
      opts.jobs = std::atoi(v);
      if (opts.jobs < 1) {
        std::fprintf(stderr, "vapb-lint: --jobs must be >= 1\n");
        return 2;
      }
      continue;
    }
    if (const char* v = flag_value("--format")) {
      opts.format = v;
      if (opts.format != "text" && opts.format != "json" &&
          opts.format != "sarif") {
        std::fprintf(stderr, "vapb-lint: unknown format '%s'\n", v);
        return 2;
      }
      continue;
    }
    if (const char* v = flag_value("--out")) {
      opts.out = v;
      continue;
    }
    if (const char* v = flag_value("--baseline")) {
      opts.baseline = v;
      continue;
    }
    if (const char* v = flag_value("--write-baseline")) {
      opts.write_baseline = v;
      continue;
    }
    if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      std::fprintf(stderr, "vapb-lint: unknown option '%s'\n", arg.c_str());
      return usage(stderr);
    }
    opts.paths.push_back(arg);
  }
  if (opts.paths.empty()) return usage(stderr);

  const vapb::lint::LintRun run = vapb::lint::run_lint(opts);
  if (run.exit_code == 2) {
    std::fprintf(stderr, "vapb-lint: %s\n", run.error.c_str());
    return 2;
  }
  if (!opts.write_baseline.empty()) {
    std::fprintf(stderr, "vapb-lint: wrote %zu fingerprint%s to %s\n",
                 run.violations.size(), run.violations.size() == 1 ? "" : "s",
                 opts.write_baseline.c_str());
    return 0;
  }

  std::string report;
  if (opts.format == "json") {
    report = vapb::lint::to_json(run.violations);
  } else if (opts.format == "sarif") {
    report = vapb::lint::to_sarif(run.violations);
  } else {
    for (const vapb::lint::Violation& v : run.violations) {
      report += v.file + ":" + std::to_string(v.line) + ": [" + v.rule + "] " +
                v.message + "\n";
    }
    if (!run.violations.empty()) {
      report += "vapb-lint: " + std::to_string(run.violations.size()) +
                " violation" + (run.violations.size() == 1 ? "" : "s") +
                " in " + std::to_string(run.files_linted) + " file" +
                (run.files_linted == 1 ? "" : "s");
      if (run.baseline_filtered > 0) {
        report += " (" + std::to_string(run.baseline_filtered) +
                  " baseline-filtered)";
      }
      report += "\n";
    }
  }
  if (opts.out.empty()) {
    std::fputs(report.c_str(), stdout);
  } else {
    std::ofstream out(opts.out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "vapb-lint: cannot write '%s'\n", opts.out.c_str());
      return 2;
    }
    out << report;
  }
  return run.exit_code;
}
