// vapb-lint: project-specific static analysis for the VAPB codebase.
//
// Enforces determinism (no ambient randomness or wall clocks in the
// simulation core), unit safety (no arithmetic across unit suffixes,
// no unsuffixed physical quantities), and hygiene (unused project includes,
// 'using namespace' in headers, [[nodiscard]] on pure accessors).
//
// Usage: vapb-lint [--list-rules] <file|dir>...
// Exits 0 when clean, 1 on violations, 2 on usage/IO errors.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rules.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp";
}

// Fixture trees contain deliberate violations; a directory scan must not
// wander into them. Explicitly named files are always linted.
bool skipped_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "lint_fixtures" || name == "build" || name == ".git";
}

std::string read_file(const fs::path& p, bool& ok) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    ok = false;
    return "";
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  ok = true;
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> files;
  bool any_args = false;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--list-rules") {
      for (const auto& rule : vapb::lint::rule_catalog()) {
        std::printf("%-24s %s\n", rule.name.c_str(), rule.description.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: vapb-lint [--list-rules] <file|dir>...\n");
      return 0;
    }
    any_args = true;
    fs::path p(arg);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      fs::recursive_directory_iterator it(p, ec), end;
      for (; it != end; it.increment(ec)) {
        if (ec) break;
        if (it->is_directory() && skipped_dir(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && lintable(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "vapb-lint: cannot read '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (!any_args) {
    std::fprintf(stderr, "usage: vapb-lint [--list-rules] <file|dir>...\n");
    return 2;
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Pass 1: index every header so unused-include can resolve project names.
  std::vector<std::pair<std::string, std::string>> headers;
  std::vector<std::pair<std::string, std::string>> sources;
  for (const fs::path& p : files) {
    bool ok = false;
    std::string text = read_file(p, ok);
    if (!ok) {
      std::fprintf(stderr, "vapb-lint: cannot read '%s'\n",
                   p.string().c_str());
      return 2;
    }
    const std::string display = p.generic_string();
    if (p.extension() == ".hpp") headers.emplace_back(display, text);
    sources.emplace_back(display, std::move(text));
  }
  const vapb::lint::HeaderIndex index = vapb::lint::build_header_index(headers);

  // Pass 2: lint everything.
  std::size_t violations = 0;
  for (const auto& [display, text] : sources) {
    for (const vapb::lint::Violation& v :
         vapb::lint::lint_source(display, text, index)) {
      std::printf("%s:%d: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                  v.message.c_str());
      ++violations;
    }
  }
  if (violations > 0) {
    std::printf("vapb-lint: %zu violation%s in %zu file%s\n", violations,
                violations == 1 ? "" : "s", sources.size(),
                sources.size() == 1 ? "" : "s");
    return 1;
  }
  return 0;
}
