#pragma once

#include <map>
#include <string>
#include <vector>

#include "parser.hpp"
#include "rules.hpp"

namespace vapb::lint {

/// Project-wide symbol index: every parsed translation unit merged into one
/// flat function table plus a class table keyed by class name (header members
/// and out-of-line method definitions of the same class merge into one entry).
struct ProjectIndex {
  std::vector<FunctionDef> functions;
  std::map<std::string, std::vector<int>> by_name;  ///< unqualified name -> ids
  std::map<std::string, ClassDef> classes;          ///< merged by class name
};

[[nodiscard]] ProjectIndex build_project_index(std::vector<FileModel> files);

/// Static call graph over ProjectIndex::functions. Call sites resolve by
/// qualified-suffix match first, then same-class method lookup, then an
/// unqualified-name fallback (every definition sharing the name — a sound
/// over-approximation for reachability; see DESIGN.md §11).
struct CallGraph {
  std::vector<std::vector<int>> edges;  ///< edges[f] = callee function ids
};

[[nodiscard]] CallGraph build_call_graph(const ProjectIndex& index);

/// Resolves one call site from the body of `caller` to function ids.
/// `confident` is set when the resolution is unambiguous enough for
/// unit-flow checking (qualified match, same-class method, or unique name).
[[nodiscard]] std::vector<int> resolve_call(const ProjectIndex& index,
                                            const FunctionDef& caller,
                                            const CallSite& call,
                                            bool* confident = nullptr);

/// Runs the four semantic rule families (determinism-taint,
/// parallel-capture-race, stage-purity, unit-flow) over the whole project.
/// Suppressions are applied later by the driver at the finding site.
[[nodiscard]] std::vector<Violation> run_semantic_rules(
    const ProjectIndex& index, const CallGraph& graph);

}  // namespace vapb::lint
