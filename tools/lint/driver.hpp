#pragma once

#include <string>
#include <vector>

#include "rules.hpp"

namespace vapb::lint {

/// Options for one analyzer run, mapped 1:1 from the CLI.
struct LintOptions {
  std::vector<std::string> paths;  ///< files and/or directories
  int jobs = 1;                    ///< per-file workers (ThreadPool), >= 1
  std::string format = "text";     ///< text | json | sarif
  std::string out;                 ///< output file ("" = stdout)
  std::string baseline;            ///< grandfathered-finding file ("" = none)
  std::string write_baseline;      ///< write fingerprints here and finish
};

struct LintRun {
  std::vector<Violation> violations;  ///< post-suppression, post-baseline
  std::size_t files_linted = 0;
  std::size_t baseline_filtered = 0;  ///< findings dropped by --baseline
  int exit_code = 0;                  ///< 0 clean, 1 findings, 2 usage/IO
  std::string error;                  ///< populated when exit_code == 2
};

/// Expands files/directories into the lintable file list. Directory entries
/// are sorted lexicographically *before* recursing, so the resulting order
/// (and every downstream report) is byte-stable across filesystems.
/// Fixture/build/VCS directories are skipped during recursion; explicitly
/// named files are always included.
[[nodiscard]] std::vector<std::string> collect_files(
    const std::vector<std::string>& paths, std::string& error);

/// Runs the full analyzer: per-file token rules (parallel across `jobs`
/// workers with a deterministic merge), then the project-wide semantic
/// rules on the merged symbol index, then suppression and baseline
/// filtering. Pure with respect to `opts.out` — writing is the CLI's job.
[[nodiscard]] LintRun run_lint(const LintOptions& opts);

/// Stable identity of a finding for baseline files: rule|file|message —
/// line numbers are deliberately excluded so unrelated edits above a
/// grandfathered finding do not un-grandfather it.
[[nodiscard]] std::string baseline_fingerprint(const Violation& v);

/// Serializers for --format. Both escape per JSON rules and end with '\n'.
[[nodiscard]] std::string to_json(const std::vector<Violation>& violations);
[[nodiscard]] std::string to_sarif(const std::vector<Violation>& violations);

}  // namespace vapb::lint
