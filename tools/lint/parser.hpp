#pragma once

#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace vapb::lint {

/// Structural model of one translation unit, extracted by a lightweight
/// recognizer on top of the lexer. It is not a C++ front end: it recovers
/// exactly the shapes the semantic rules need — function/method definitions
/// with their parameters, call sites with simple-argument names, lambda
/// captures, member-mutation sites, class bases/members, and nondeterminism
/// source facts — and deliberately nothing more. Known soundness limits are
/// documented in DESIGN.md §11.

struct Param {
  std::string type;  ///< joined declaration tokens before the name
  std::string name;  ///< "" when unnamed
};

struct CallSite {
  std::string name;       ///< final component, e.g. "parallel_for"
  std::string qualifier;  ///< "util" for util::parallel_for, "" if unqualified
  int line = 0;
  /// One entry per argument: the final identifier when the argument is a
  /// plain chain (`a`, `x.b`, `s::c`), "" for anything more complex.
  std::vector<std::string> arg_names;
  /// Identifier the call's result is assigned to (`x = f(...)`), "" if none.
  std::string lhs_name;
};

struct MemberWrite {
  std::string member;  ///< trailing-underscore member name
  int line = 0;
};

/// Nondeterminism source categories for the determinism-taint rule.
enum class SourceKind {
  kRandom,        ///< rand()/std::random_device/std::mt19937*...
  kClock,         ///< wall clocks (system/steady/high_resolution, std::time)
  kPointerToInt,  ///< reinterpret_cast of a pointer to an integer type
  kUnorderedIter, ///< range-for over an unordered container
  kRawReduction,  ///< scalar loop-carried += of a unitful accumulator
};

struct SourceFact {
  SourceKind kind;
  std::string what;  ///< the offending identifier / accumulator name
  int line = 0;
};

struct WriteFact {
  std::string name;       ///< written identifier
  int line = 0;
  bool indexed = false;   ///< LHS mentions the lambda's index parameter
  bool declared_local = false;  ///< name is declared inside the lambda body
};

struct LambdaFact {
  std::string host_call;  ///< name of the call this lambda is an argument of
  int line = 0;
  bool ref_default = false;               ///< [&] capture default
  std::vector<std::string> ref_captures;  ///< explicit &name captures
  std::vector<std::string> val_captures;  ///< explicit name / =name captures
  std::string index_param;                ///< first lambda parameter ("" none)
  std::vector<WriteFact> writes;          ///< assignments inside the body
};

struct FunctionDef {
  std::string file;
  int line = 0;
  std::string name;        ///< unqualified
  std::string qualified;   ///< lexical scope + A::b qualifiers, "::"-joined
  std::string class_name;  ///< enclosing / prefix class ("" free function)
  bool is_const = false;
  std::string return_type;  ///< best-effort joined tokens ("" for ctors)
  std::vector<Param> params;
  std::vector<CallSite> calls;
  std::vector<MemberWrite> member_writes;
  std::vector<SourceFact> sources;
  std::vector<LambdaFact> lambdas;
  /// Names declared `std::atomic<...>` in this body: writes synchronize.
  std::set<std::string> atomic_names;
};

struct ClassDef {
  std::string file;
  int line = 0;
  std::string name;
  std::vector<std::string> bases;  ///< final components of base-class names
  std::set<std::string> members;          ///< trailing-underscore data members
  std::set<std::string> mutable_members;  ///< subset declared `mutable`
};

struct FileModel {
  std::string path;
  std::vector<FunctionDef> functions;
  std::vector<ClassDef> classes;
};

/// Extracts the structural model of one file from its token stream.
[[nodiscard]] FileModel parse_file(const std::string& path,
                                   const LexResult& lexed);

/// Canonical physical unit named by an identifier's suffix ("" = none);
/// shared by the token-level unit rules and the semantic unit-flow rule.
[[nodiscard]] std::string unit_suffix_of(std::string name);

}  // namespace vapb::lint
