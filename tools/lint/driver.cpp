#include "driver.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "parser.hpp"
#include "semantic.hpp"
#include "util/thread_pool.hpp"

namespace fs = std::filesystem;

namespace vapb::lint {

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp";
}

// Fixture trees contain deliberate violations; a directory scan must not
// wander into them. Explicitly named files/dirs are always processed.
bool skipped_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "lint_fixtures" || name == "build" || name == ".git";
}

// Sorted-before-recursion walk: entries of each directory are collected,
// sorted by filename, and only then visited, so the traversal order never
// depends on readdir() order.
void walk_sorted(const fs::path& dir, std::vector<std::string>& out) {
  std::vector<fs::path> entries;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    entries.push_back(it->path());
  }
  std::sort(entries.begin(), entries.end(),
            [](const fs::path& a, const fs::path& b) {
              return a.filename().string() < b.filename().string();
            });
  for (const fs::path& p : entries) {
    std::error_code type_ec;
    if (fs::is_directory(p, type_ec)) {
      if (!skipped_dir(p)) walk_sorted(p, out);
    } else if (fs::is_regular_file(p, type_ec) && lintable(p)) {
      out.push_back(p.generic_string());
    }
  }
}

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ok = false;
    return "";
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  ok = true;
  return ss.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::set<std::string> load_baseline(const std::string& path, bool& ok) {
  std::set<std::string> fingerprints;
  std::ifstream in(path);
  if (!in) {
    ok = false;
    return fingerprints;
  }
  ok = true;
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    fingerprints.insert(line);
  }
  return fingerprints;
}

}  // namespace

std::vector<std::string> collect_files(const std::vector<std::string>& paths,
                                       std::string& error) {
  std::vector<std::string> files;
  for (const std::string& arg : paths) {
    const fs::path p(arg);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      walk_sorted(p, files);
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p.generic_string());
    } else {
      error = "cannot read '" + arg + "'";
      return {};
    }
  }
  // Stable dedupe: keep the first occurrence, preserve traversal order.
  std::set<std::string> seen;
  std::vector<std::string> unique;
  unique.reserve(files.size());
  for (std::string& f : files) {
    if (seen.insert(f).second) unique.push_back(std::move(f));
  }
  return unique;
}

std::string baseline_fingerprint(const Violation& v) {
  return v.rule + "|" + v.file + "|" + v.message;
}

LintRun run_lint(const LintOptions& opts) {
  LintRun run;
  std::vector<std::string> files = collect_files(opts.paths, run.error);
  if (!run.error.empty()) {
    run.exit_code = 2;
    return run;
  }
  run.files_linted = files.size();

  // Read everything up front (IO errors fail fast and deterministically).
  std::vector<std::string> texts(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    bool ok = false;
    texts[i] = read_file(files[i], ok);
    if (!ok) {
      run.error = "cannot read '" + files[i] + "'";
      run.exit_code = 2;
      return run;
    }
  }

  // Header index for the unused-include rule (cheap, sequential).
  std::vector<std::pair<std::string, std::string>> headers;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (fs::path(files[i]).extension() == ".hpp") {
      headers.emplace_back(files[i], texts[i]);
    }
  }
  const HeaderIndex header_index = build_header_index(headers);

  // Per-file pass: token rules + structural model + suppressions. Each file
  // is independent; results land in per-index slots, so the merge order is
  // the (already deterministic) traversal order regardless of --jobs.
  std::vector<std::vector<Violation>> token_findings(files.size());
  std::vector<FileModel> models(files.size());
  std::vector<FileSuppressions> suppressions(files.size());
  const auto lint_one = [&](std::size_t i) {
    token_findings[i] = lint_source(files[i], texts[i], header_index);
    models[i] = parse_file(files[i], lex(texts[i]));
    suppressions[i] = collect_suppressions(files[i], texts[i]);
  };
  if (opts.jobs > 1 && files.size() > 1) {
    util::ThreadPool pool(static_cast<std::size_t>(opts.jobs));
    util::parallel_for(pool, files.size(), lint_one, /*grain=*/1);
  } else {
    for (std::size_t i = 0; i < files.size(); ++i) lint_one(i);
  }

  // Project-wide semantic pass on the merged symbol index.
  const ProjectIndex index = build_project_index(std::move(models));
  const CallGraph graph = build_call_graph(index);
  std::vector<Violation> semantic = run_semantic_rules(index, graph);

  // Suppression filtering for semantic findings happens here (token rules
  // already self-filter inside lint_source): an allow(...) at the source
  // site covers the finding.
  std::map<std::string, const FileSuppressions*> sup_by_file;
  for (std::size_t i = 0; i < files.size(); ++i) {
    sup_by_file[files[i]] = &suppressions[i];
  }
  std::vector<Violation> all;
  for (std::size_t i = 0; i < files.size(); ++i) {
    for (Violation& v : token_findings[i]) all.push_back(std::move(v));
  }
  for (Violation& v : semantic) {
    const auto it = sup_by_file.find(v.file);
    if (it != sup_by_file.end()) {
      const auto rule_it = it->second->lines.find(v.rule);
      if (rule_it != it->second->lines.end() &&
          rule_it->second.count(v.line) > 0) {
        continue;
      }
    }
    all.push_back(std::move(v));
  }

  // Report in traversal order, then by line/rule/message within a file.
  std::map<std::string, std::size_t> file_order;
  for (std::size_t i = 0; i < files.size(); ++i) file_order[files[i]] = i;
  const auto order_of = [&](const std::string& file) {
    const auto it = file_order.find(file);
    return it == file_order.end() ? files.size() : it->second;
  };
  std::sort(all.begin(), all.end(),
            [&](const Violation& a, const Violation& b) {
              const std::size_t fa = order_of(a.file);
              const std::size_t fb = order_of(b.file);
              return std::tie(fa, a.line, a.rule, a.message) <
                     std::tie(fb, b.line, b.rule, b.message);
            });

  if (!opts.write_baseline.empty()) {
    std::set<std::string> fingerprints;
    for (const Violation& v : all) fingerprints.insert(baseline_fingerprint(v));
    std::ofstream out(opts.write_baseline);
    if (!out) {
      run.error = "cannot write '" + opts.write_baseline + "'";
      run.exit_code = 2;
      return run;
    }
    out << "# vapb-lint baseline: one rule|file|message fingerprint per "
           "line.\n# Entries grandfather existing findings; keep this file "
           "empty on main.\n";
    for (const std::string& fp : fingerprints) out << fp << "\n";
    run.violations = std::move(all);
    return run;
  }

  if (!opts.baseline.empty()) {
    bool ok = false;
    const std::set<std::string> baseline = load_baseline(opts.baseline, ok);
    if (!ok) {
      run.error = "cannot read baseline '" + opts.baseline + "'";
      run.exit_code = 2;
      return run;
    }
    std::vector<Violation> kept;
    kept.reserve(all.size());
    for (Violation& v : all) {
      if (baseline.count(baseline_fingerprint(v)) > 0) {
        ++run.baseline_filtered;
      } else {
        kept.push_back(std::move(v));
      }
    }
    all = std::move(kept);
  }

  run.violations = std::move(all);
  run.exit_code = run.violations.empty() ? 0 : 1;
  return run;
}

std::string to_json(const std::vector<Violation>& violations) {
  std::ostringstream out;
  out << "{\n  \"violations\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"file\": \"" << json_escape(v.file) << "\", \"line\": "
        << v.line << ", \"rule\": \"" << json_escape(v.rule)
        << "\", \"message\": \"" << json_escape(v.message) << "\"}";
  }
  out << (violations.empty() ? "" : "\n  ") << "],\n  \"count\": "
      << violations.size() << "\n}\n";
  return out.str();
}

std::string to_sarif(const std::vector<Violation>& violations) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n"
      << "          \"name\": \"vapb-lint\",\n"
      << "          \"version\": \"2.0.0\",\n"
      << "          \"informationUri\": "
         "\"https://example.invalid/vapb/docs/LINT.md\",\n"
      << "          \"rules\": [";
  const auto& catalog = rule_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "            {\"id\": \"" << json_escape(catalog[i].name)
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(catalog[i].description) << "\"}}";
  }
  out << "\n          ]\n        }\n      },\n      \"results\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "        {\n"
        << "          \"ruleId\": \"" << json_escape(v.rule) << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << json_escape(v.message)
        << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": {\"uri\": \""
        << json_escape(v.file) << "\", \"uriBaseId\": \"%SRCROOT%\"},\n"
        << "                \"region\": {\"startLine\": "
        << (v.line > 0 ? v.line : 1) << "}\n"
        << "              }\n"
        << "            }\n"
        << "          ]\n"
        << "        }";
  }
  out << (violations.empty() ? "" : "\n      ") << "]\n    }\n  ]\n}\n";
  return out.str();
}

}  // namespace vapb::lint
