// A tour of the register-level stack the paper actually programs: encode a
// RAPL power limit the way libMSR does, write it through the msr-safe
// whitelist, watch the module settle, and read the energy counters back.
#include <cstdio>

#include "cluster/cluster.hpp"
#include "hw/msr.hpp"
#include "hw/trace.hpp"
#include "util/strings.hpp"
#include "workloads/catalog.hpp"

using namespace vapb;

int main() {
  cluster::Cluster cluster(hw::ha8k(), util::SeedSequence(2015), 4);
  const hw::Module& module = cluster.module(2);  // a mid-fleet part
  const auto& app = workloads::dgemm();

  hw::Rapl rapl(module);
  hw::msr::MsrFile msr(rapl);

  // 1. Read MSR_RAPL_POWER_UNIT and decode the fixed-point units.
  auto units = hw::msr::PowerUnits::decode(msr.read(hw::msr::kRaplPowerUnit));
  std::printf("RAPL units: power %.4f W, energy %.2f uJ, time %.3f ms\n",
              units.power_unit_w(), units.energy_unit_j() * 1e6,
              units.time_unit_s() * 1e3);

  // 2. Uncapped operating point.
  hw::OperatingPoint before = rapl.operating_point(app.profile);
  std::printf("uncapped:   %s at %s CPU\n",
              util::fmt_ghz(before.freq_ghz).c_str(),
              util::fmt_watts(before.cpu_w).c_str());

  // 3. Program a 70 W PKG limit with a 1 ms window, bit-exact.
  hw::msr::PowerLimit limit;
  limit.power_w = 70.0;
  limit.window_s = 1e-3;
  limit.enabled = true;
  limit.clamp = true;
  std::uint64_t raw = hw::msr::encode_power_limit(limit, units);
  std::printf("MSR_PKG_POWER_LIMIT <- 0x%llx\n",
              static_cast<unsigned long long>(raw));
  msr.write(hw::msr::kPkgPowerLimit, raw);

  hw::OperatingPoint after = rapl.operating_point(app.profile);
  std::printf("capped:     %s at %s CPU%s\n",
              util::fmt_ghz(after.freq_ghz).c_str(),
              util::fmt_watts(after.cpu_w).c_str(),
              after.throttled ? " (duty-cycle throttled)" : "");

  // 4. Record one second of RAPL-window samples: the clock hunts, the
  //    windowed average power stays pinned at the cap.
  hw::PowerTrace trace = hw::PowerTrace::record(rapl, module, app.profile,
                                                1.0, cluster.seed());
  double fmin = 1e9, fmax = 0.0;
  for (const auto& s : trace.samples()) {
    fmin = std::min(fmin, s.freq_ghz);
    fmax = std::max(fmax, s.freq_ghz);
  }
  std::printf("trace:      %zu windows, clock %s..%s (avg %s), avg CPU %s\n",
              trace.samples().size(), util::fmt_ghz(fmin).c_str(),
              util::fmt_ghz(fmax).c_str(),
              util::fmt_ghz(trace.avg_freq_ghz()).c_str(),
              util::fmt_watts(trace.avg_cpu_w()).c_str());

  // 5. Energy counters through the 32-bit MSR view.
  std::printf("energy:     PKG %s, DRAM %s over the traced second\n",
              (util::fmt_double(hw::msr::read_pkg_energy_j(msr), 1) + " J")
                  .c_str(),
              (util::fmt_double(hw::msr::read_dram_energy_j(msr), 1) + " J")
                  .c_str());

  // 6. msr-safe says no to everything off the whitelist.
  try {
    msr.write(0x1a0, 0);  // IA32_MISC_ENABLE — not whitelisted
  } catch (const hw::msr::MsrAccessError& e) {
    std::printf("whitelist:  %s\n", e.what());
  }
  return 0;
}
