// Scheduler integration (the paper's future-work direction, Section 7):
// several applications share a dedicated system under one global power
// budget.
//
// Part 1 — space sharing: the RMAP-style ResourceManager admits three jobs,
// splits the budget (fmin floors guaranteed, remainder by demand), and each
// grant runs under variation-aware budgeting.
//
// Part 2 — time sharing: the same machine as a batch queue; a stream of
// jobs arrives over time and the power-aware backfill scheduler drains it.
#include <cstdio>

#include "core/batch.hpp"
#include "core/resource_manager.hpp"
#include "core/runner.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/catalog.hpp"

using namespace vapb;

int main() {
  const std::size_t fleet = 384;
  cluster::Cluster cluster(hw::ha8k(), util::SeedSequence(7), fleet);
  core::Pvt pvt = core::Pvt::generate(cluster, workloads::pvt_microbench(),
                                      cluster.seed().fork("pvt"));

  // ---------------------------------------------------------------- part 1
  // Overprovisioned: 288 modules in use but only ~72 W/module of power.
  const double system_budget_w = 72.0 * 288.0;
  core::ResourceManager rm(cluster, pvt, system_budget_w);
  auto schedule = rm.schedule(
      {core::JobRequest{"plasma", &workloads::mhd(), 128},
       core::JobRequest{"cfd", &workloads::bt(), 96},
       core::JobRequest{"linpack", &workloads::dgemm(), 64}},
      core::PowerSharePolicy::kFminFirstThenDemand, cluster.seed().fork("rm"));

  std::printf("== Space sharing: %s across 288 modules ==\n\n",
              util::fmt_watts(system_budget_w).c_str());
  util::Table t1({"job", "modules", "grant", "alpha", "freq",
                  "Naive makespan", "VaFs makespan", "speedup"});
  for (const core::JobGrant& g : schedule.granted) {
    core::Runner runner(cluster, g.allocation);
    const workloads::Workload& app = *g.request.app;
    core::TestRunResult test = core::single_module_test_run(
        cluster, g.allocation.front(), app,
        cluster.seed().fork("test").fork(g.request.name));
    core::RunMetrics naive = runner.run_scheme(app, core::SchemeKind::kNaive,
                                               g.budget_w, pvt, test);
    core::RunMetrics vafs = runner.run_scheme(app, core::SchemeKind::kVaFs,
                                              g.budget_w, pvt, test);
    t1.add_row();
    t1.add_cell(g.request.name);
    t1.add_cell(static_cast<long long>(g.allocation.size()));
    t1.add_cell(util::fmt_watts(g.budget_w));
    t1.add_cell(g.budget.alpha, 2);
    t1.add_cell(util::fmt_ghz(g.budget.target_freq_ghz));
    t1.add_cell(util::fmt_seconds(naive.makespan_s));
    t1.add_cell(util::fmt_seconds(vafs.makespan_s));
    t1.add_cell(util::fmt_double(naive.makespan_s / vafs.makespan_s, 2) + "x");
  }
  std::printf("%s", t1.str().c_str());
  for (const auto& [req, why] : schedule.rejected) {
    std::printf("rejected %s: %s\n", req.name.c_str(), why.c_str());
  }
  std::printf("power committed: %s of %s\n\n",
              util::fmt_watts(schedule.power_committed_w).c_str(),
              util::fmt_watts(system_budget_w).c_str());

  // ---------------------------------------------------------------- part 2
  std::printf("== Time sharing: batch queue under %s ==\n\n",
              util::fmt_watts(60.0 * fleet).c_str());
  core::RunConfig run_cfg;
  run_cfg.iterations = 6;
  core::BatchSimulator sim(cluster, pvt, 60.0 * fleet, run_cfg);
  std::vector<core::BatchJob> stream = {
      {"night-0", &workloads::mhd(), 128, 0.0, 6},
      {"night-1", &workloads::sp(), 96, 10.0, 6},
      {"night-2", &workloads::dgemm(), 128, 20.0, 6},
      {"night-3", &workloads::mvmc(), 64, 30.0, 6},
      {"night-4", &workloads::bt(), 192, 40.0, 6},
      {"night-5", &workloads::mhd(), 96, 50.0, 6},
  };
  util::Table t2({"scheme", "makespan", "mean wait", "jobs/hour"});
  for (auto scheme : {core::SchemeKind::kNaive, core::SchemeKind::kVaFs}) {
    core::BatchConfig cfg;
    cfg.scheme = scheme;
    core::BatchResult r = sim.run(stream, cfg, cluster.seed().fork("batch"));
    t2.add_row();
    t2.add_cell(core::scheme_name(scheme));
    t2.add_cell(util::fmt_seconds(r.makespan_s));
    t2.add_cell(util::fmt_seconds(r.mean_wait_s));
    t2.add_cell(r.throughput_jobs_per_hour, 1);
  }
  std::printf("%s", t2.str().c_str());
  std::printf(
      "\nThe same variation-aware budgeting that speeds up one job under a\n"
      "power cap also drains a power-constrained batch queue faster.\n");
  return 0;
}
