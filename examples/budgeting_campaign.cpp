// A full evaluation campaign on one benchmark: sweep the system power
// constraint across the paper's Table-4 grid and print, for every feasible
// cell, the speedup of each scheme over Naive — one panel of Figure 7.
//
// Usage: budgeting_campaign [workload] [modules]
//   workload: *DGEMM | *STREAM | MHD | NPB-BT | NPB-SP | mVMC  (default MHD)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "core/campaign.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/catalog.hpp"

using namespace vapb;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "MHD";
  const std::size_t n = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 192;
  const workloads::Workload& w = workloads::by_name(name);

  cluster::Cluster cluster(hw::ha8k(), util::SeedSequence(2015), n);
  std::vector<hw::ModuleId> alloc(n);
  std::iota(alloc.begin(), alloc.end(), hw::ModuleId{0});
  core::Campaign campaign(cluster, alloc);

  std::printf("workload: %s (%s)\n", w.name.c_str(), w.description.c_str());
  std::printf("modules:  %zu of HA8K, PVT microbenchmark: %s\n", n,
              campaign.pvt().microbench_name().c_str());
  std::printf("PMT calibration error vs oracle: %.1f%%\n\n",
              100.0 * campaign.calibration_error(w));

  util::Table table({"Cm [W]", "Cs [kW]", "cell", "Naive", "Pc", "VaPcOr",
                     "VaPc", "VaFsOr", "VaFs"});
  for (double cm : {110.0, 100.0, 90.0, 80.0, 70.0, 60.0, 50.0}) {
    double budget = cm * static_cast<double>(n);
    core::CellResult cell = campaign.run_cell(w, budget);
    table.add_row();
    table.add_cell(cm, 0);
    table.add_cell(budget / 1000.0, 1);
    table.add_cell(core::cell_class_name(cell.cls));
    for (const auto& s : cell.schemes) {
      if (!s.metrics.feasible) {
        table.add_cell("-");
      } else {
        table.add_cell(util::fmt_double(s.speedup_vs_naive, 2) + "x");
      }
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "cell: X = power constrained (the paper's check-marks), unconstrained\n"
      "= budget not binding (no speedup available), infeasible = modules\n"
      "cannot run even at fmin.\n");
  return 0;
}
