// Variation study (the Section-4 scenario): quantify manufacturing
// variability on all four production architectures with the single-socket
// NPB-EP benchmark, the way Figure 1 does — no power caps, turbo enabled,
// power measured with each system's own technique.
//
// Usage: variation_study [sockets_per_system]
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "cluster/cluster.hpp"
#include "core/runner.hpp"
#include "hw/sensor.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "stats/variation.hpp"
#include "util/table.hpp"
#include "workloads/catalog.hpp"

using namespace vapb;

int main(int argc, char** argv) {
  std::size_t sockets = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 0;

  util::Table table({"system", "modules", "power spread", "perf spread",
                     "power-perf corr", "technique"});

  for (const hw::ArchSpec& spec : hw::all_archs()) {
    // Figure 1 uses 2,386 sockets on Cab, 48 node boards on Vulcan and 64
    // sockets on Teller; default to the study sizes, capped by the fleet.
    std::size_t n = sockets;
    if (n == 0) {
      n = spec.system.find("Vulcan") != std::string::npos  ? 48
          : spec.system.find("Teller") != std::string::npos ? 64
          : spec.system.find("Cab") != std::string::npos    ? 2386
                                                            : 1920;
    }
    n = std::min<std::size_t>(n, static_cast<std::size_t>(spec.total_modules()));

    cluster::Cluster cluster(spec, util::SeedSequence(2015), n);
    std::vector<hw::ModuleId> alloc(n);
    std::iota(alloc.begin(), alloc.end(), hw::ModuleId{0});

    core::RunConfig cfg;
    cfg.turbo = true;  // Figure 1: Turbo Boost / Turbo Core enabled
    cfg.iterations = 4;
    core::Runner runner(cluster, alloc, cfg);
    core::RunMetrics m = runner.run_uncapped(workloads::ep());

    // Measure each module's CPU power with the system's own sensor.
    std::vector<double> powers;
    powers.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      hw::Sensor sensor(spec.measurement,
                        cluster.seed().fork("study-sensor", i),
                        workloads::ep().runtime_noise_frac);
      powers.push_back(sensor.measure_avg_w(m.modules[i].op.cpu_w, 2.0));
    }
    // Performance = per-rank throughput (inverse time).
    std::vector<double> perf;
    perf.reserve(n);
    for (const auto& r : m.des.ranks) perf.push_back(1.0 / r.finish_time_s);

    table.add_row();
    table.add_cell(spec.system);
    table.add_cell(static_cast<long long>(n));
    table.add_cell(stats::spread_percent(powers), 1);
    table.add_cell(stats::spread_percent(perf), 1);
    table.add_cell(n > 2 ? stats::pearson(powers, perf) : 0.0, 2);
    table.add_cell(hw::sensor_spec(spec.measurement).name);

    if (spec.system.find("Teller") != std::string::npos) {
      std::printf("Teller CPU power distribution [W]:\n");
      auto s = stats::summarize(powers);
      stats::Histogram h(s.min, s.max + 1e-9, 8);
      h.add_all(powers);
      std::printf("%s\n", h.ascii(40).c_str());
    }
  }

  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Reading: Intel/IBM parts are frequency-binned, so power varies (up to\n"
      "~23%%) while performance does not; Teller varies in both, and parts\n"
      "that draw more power run faster (positive correlation).\n");
  return 0;
}
