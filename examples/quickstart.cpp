// Quickstart: the complete variation-aware power budgeting pipeline on a
// simulated HA8K slice, in ~60 lines.
//
//   1. fabricate a cluster (each module gets its own silicon),
//   2. generate the system PVT once with the *STREAM microbenchmark,
//   3. run the application twice on ONE module (fmax + fmin test runs),
//   4. calibrate the application's PMT and solve for alpha,
//   5. run under the derived per-module allocations and compare with the
//      naive uniform scheme.
#include <cstdio>
#include <numeric>

#include "core/campaign.hpp"
#include "util/strings.hpp"
#include "workloads/catalog.hpp"

using namespace vapb;

int main() {
  // 1. A 128-module slice of the HA8K system (Table 2), master seed 2015.
  const std::size_t n = 128;
  cluster::Cluster cluster(hw::ha8k(), util::SeedSequence(2015), n);
  std::vector<hw::ModuleId> allocation(n);
  std::iota(allocation.begin(), allocation.end(), hw::ModuleId{0});

  // 2-3. The campaign object owns the PVT and caches test runs.
  core::Campaign campaign(cluster, allocation);
  const workloads::Workload& app = workloads::mhd();

  // 4. Solve the budgeting problem at a 70 W/module application budget.
  const double budget_w = 70.0 * static_cast<double>(n);
  core::Pmt pmt = core::calibrate_pmt(campaign.pvt(), campaign.test_run(app),
                                      allocation, cluster.spec().ladder);
  core::BudgetResult solved =
      core::solve_budget(pmt, util::Watts{budget_w});
  std::printf("application: %s\n", app.name.c_str());
  std::printf("budget:      %s (%zu modules)\n",
              util::fmt_watts(budget_w).c_str(), n);
  std::printf("alpha:       %.3f  ->  common frequency %s\n", solved.alpha,
              util::fmt_ghz(solved.target_freq_ghz).c_str());
  std::printf("allocations: min %s, max %s (variation-aware, non-uniform)\n",
              util::fmt_watts(solved.allocations.front().module_w).c_str(),
              util::fmt_watts(solved.allocations.back().module_w).c_str());

  // 5. Execute under each scheme and compare.
  core::CellResult cell = campaign.run_cell(app, budget_w);
  std::printf("\n%-8s %10s %8s %8s %8s %10s\n", "scheme", "makespan", "Vf",
              "Vp", "Vt", "speedup");
  for (const auto& s : cell.schemes) {
    double vt = core::vt_normalized(s.metrics, *cell.uncapped);
    std::printf("%-8s %9.1fs %8.2f %8.2f %8.2f %9.2fx\n",
                s.metrics.scheme.c_str(), s.metrics.makespan_s,
                s.metrics.vf(), s.metrics.vp(), vt, s.speedup_vs_naive);
  }
  std::printf(
      "\nThe variation-aware schemes (VaPc/VaFs) equalize frequency by\n"
      "allocating power unevenly; the naive TDP-based scheme leaves the\n"
      "slowest module gating the whole application.\n");
  return 0;
}
