// Extension (paper Section 7): system throughput under a global power
// budget. A realistic job stream runs through the power-aware batch queue
// once per budgeting scheme; variation-aware budgeting drains the queue
// faster, which compounds into shorter waits for everyone behind.
#include <cstdio>

#include "bench/common.hpp"
#include "core/batch.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

using namespace vapb;

int main(int argc, char** argv) {
  const std::size_t fleet = bench::parse_options(argc, argv, 384).modules;
  const double budget = static_cast<double>(fleet) * 58.0;  // overprovisioned
  std::printf("== Extension: batch throughput under a %s system budget "
              "(%zu modules) ==\n\n",
              util::fmt_watts(budget).c_str(), fleet);

  cluster::Cluster cluster(hw::ha8k(), bench::master_seed(), fleet);
  core::Pvt pvt = core::Pvt::generate(cluster, workloads::pvt_microbench(),
                                      cluster.seed().fork("batch-pvt"));
  core::RunConfig run_cfg;
  run_cfg.iterations = 6;
  core::BatchSimulator sim(cluster, pvt, budget, run_cfg);

  // A mixed stream: sizes and arrival gaps drawn deterministically.
  util::Rng rng(bench::master_seed().fork("stream"));
  std::vector<const workloads::Workload*> mix = {
      &workloads::mhd(), &workloads::bt(), &workloads::dgemm(),
      &workloads::sp(), &workloads::mvmc()};
  std::vector<core::BatchJob> stream;
  double t = 0.0;
  for (int k = 0; k < 14; ++k) {
    core::BatchJob job;
    job.name = "job" + std::to_string(k);
    job.app = mix[k % mix.size()];
    job.modules = static_cast<std::size_t>(
        fleet / 8 + rng.uniform_index(fleet / 4));
    job.arrival_s = t;
    job.iterations = 6;
    t += rng.uniform(2.0, 10.0);
    stream.push_back(job);
  }

  util::CsvWriter csv("ext_throughput.csv",
                      {"scheme", "makespan_s", "mean_wait_s",
                       "jobs_per_hour", "power_utilization"});
  std::printf("%-8s %12s %12s %12s %12s\n", "scheme", "makespan",
              "mean wait", "jobs/hour", "power util");
  for (core::SchemeKind scheme :
       {core::SchemeKind::kNaive, core::SchemeKind::kPc,
        core::SchemeKind::kVaPc, core::SchemeKind::kVaFs}) {
    core::BatchConfig cfg;
    cfg.scheme = scheme;
    core::BatchResult r = sim.run(stream, cfg, bench::master_seed());
    std::printf("%-8s %11.1fs %11.1fs %12.1f %11.1f%%\n",
                core::scheme_name(scheme).c_str(), r.makespan_s,
                r.mean_wait_s, r.throughput_jobs_per_hour,
                r.power_utilization * 100.0);
    csv.row({core::scheme_name(scheme), util::fmt_double(r.makespan_s, 2),
             util::fmt_double(r.mean_wait_s, 2),
             util::fmt_double(r.throughput_jobs_per_hour, 2),
             util::fmt_double(r.power_utilization, 4)});
  }
  std::printf(
      "\nSame job stream, same budget: per-job speedups from variation-aware\n"
      "budgeting compound into system-level throughput and shorter queue\n"
      "waits. Written to ext_throughput.csv\n");
  return 0;
}
