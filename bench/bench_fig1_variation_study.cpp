// Figure 1: processor power and performance variation on Cab (2,386
// sockets), Vulcan (48 node boards) and Teller (64 sockets), single-socket
// NPB-EP, turbo enabled, no caps.
//
// Prints the summary per system and writes the sorted per-socket series
// (slowdown % vs fastest, power increase % vs most efficient) to CSV.
#include <algorithm>
#include <cstdio>

#include "bench/common.hpp"
#include "core/runner.hpp"
#include "hw/sensor.hpp"
#include "stats/summary.hpp"
#include "stats/variation.hpp"
#include "util/csv.hpp"

using namespace vapb;

namespace {

void study(const hw::ArchSpec& spec, std::size_t sockets, const char* tag) {
  std::size_t n = std::min<std::size_t>(
      sockets, static_cast<std::size_t>(spec.total_modules()));
  cluster::Cluster cluster(spec, bench::master_seed(), n);

  core::RunConfig cfg;
  cfg.turbo = true;
  cfg.iterations = 4;
  core::Runner runner(cluster, bench::full_allocation(n), cfg);
  core::RunMetrics m = runner.run_uncapped(workloads::ep());

  // Measure CPU power with the system's own technique.
  std::vector<double> power(n), perf(n);
  for (std::size_t i = 0; i < n; ++i) {
    hw::Sensor sensor(spec.measurement, cluster.seed().fork("fig1", i),
                      workloads::ep().runtime_noise_frac);
    power[i] = sensor.measure_avg_w(m.modules[i].op.cpu_w, 2.0);
    perf[i] = 1.0 / m.des.ranks[i].finish_time_s;
  }

  double fastest = *std::max_element(perf.begin(), perf.end());
  double most_efficient = *std::min_element(power.begin(), power.end());

  // Sort sockets by performance (the paper's x-axis ordering).
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return perf[a] > perf[b]; });

  util::CsvWriter csv(std::string("fig1_") + tag + ".csv",
                      {"socket", "slowdown_pct", "power_increase_pct"});
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t i = order[k];
    csv.row_numeric({static_cast<double>(k),
                     (fastest / perf[i] - 1.0) * 100.0,
                     (power[i] / most_efficient - 1.0) * 100.0});
  }

  std::printf("%-22s %6zu sockets: max power variation %5.1f %%, "
              "max perf variation %5.1f %%\n",
              spec.system.c_str(), n, stats::spread_percent(power),
              stats::spread_percent(perf));
}

}  // namespace

int main(int argc, char** argv) {
  // --modules caps the per-system socket counts (paper sizes by default).
  const bench::Options opt = bench::parse_options(argc, argv, 2386);
  std::printf("== Figure 1: CPU power/performance variation, 1-socket EP ==\n\n");
  study(hw::cab(), std::min<std::size_t>(2386, opt.modules), "cab");
  study(hw::vulcan(), std::min<std::size_t>(48, opt.modules), "vulcan");
  study(hw::teller(), std::min<std::size_t>(64, opt.modules), "teller");
  std::printf(
      "\nPaper: Cab 23%% power / ~0%% perf; Vulcan 11%% power / ~0%% perf;\n"
      "Teller 21%% power / 17%% perf with more-power <-> faster.\n"
      "Sorted per-socket series written to fig1_{cab,vulcan,teller}.csv\n");
  return 0;
}
