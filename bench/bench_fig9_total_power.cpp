// Figure 9: total measured power consumption of every budgeting scheme at
// every evaluated constraint. Every scheme must stay under the red line
// except Naive on *STREAM, whose TDP-based table underestimates DRAM power.
#include <cstdio>

#include "bench/common.hpp"
#include "util/csv.hpp"

using namespace vapb;

int main(int argc, char** argv) {
  const std::size_t n = bench::parse_options(argc, argv).modules;
  std::printf("== Figure 9: total power vs constraint (%zu modules) ==\n\n", n);
  cluster::Cluster cluster(hw::ha8k(), bench::master_seed(), n);
  core::Campaign campaign(cluster, bench::full_allocation(n));

  util::CsvWriter csv("fig9_total_power.csv",
                      {"workload", "cs_kw", "scheme", "total_kw", "violated"});
  int violations = 0;
  std::string violation_list;
  for (auto* w : workloads::evaluation_suite()) {
    std::printf("%s\n", w->name.c_str());
    std::printf("  %-12s %9s %9s %9s %9s %9s %9s\n", "constraint", "Naive",
                "Pc", "VaPcOr", "VaPc", "VaFsOr", "VaFs");
    for (double cm : bench::checked_cm(w->name)) {
      double budget = cm * static_cast<double>(n);
      core::CellResult cell = campaign.run_cell(*w, budget);
      std::printf("  %-12s", bench::cs_label(cm, n).c_str());
      for (const auto& s : cell.schemes) {
        bool violated = s.metrics.total_power_w > budget * 1.01;
        std::printf(" %7.1f%s", s.metrics.total_power_w / 1000.0,
                    violated ? "!" : " ");
        csv.row({w->name, util::fmt_double(budget / 1000.0, 1),
                 core::scheme_name(s.kind),
                 util::fmt_double(s.metrics.total_power_w / 1000.0, 3),
                 violated ? "1" : "0"});
        if (violated) {
          ++violations;
          violation_list += "  " + s.metrics.scheme + " on " + w->name +
                            " @ " + bench::cs_label(cm, n) + " (" +
                            util::fmt_double(s.metrics.total_power_w / 1000.0,
                                             1) +
                            " kW)\n";
        }
      }
      std::printf("   [limit %s]\n", bench::cs_label(cm, n).c_str());
    }
    std::printf("\n");
  }
  std::printf("budget violations (marked '!'):\n%s",
              violations ? violation_list.c_str() : "  none\n");
  std::printf(
      "\nPaper: all schemes adhere to the constraint except Naive on\n"
      "*STREAM (DRAM power underestimated). Grid written to "
      "fig9_total_power.csv\n");
  return 0;
}
