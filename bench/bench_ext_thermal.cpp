// Extension: machine-room thermal effects as an additional variation source.
//
// Section 2.1 lists temperature among the variation sources and Section
// 3.1.1 notes that turbo frequency depends on ambient temperature. Here the
// same fleet is placed in racks with an ambient gradient (cold aisle to hot
// aisle); the thermal model's leakage feedback turns rack position into
// power variation on top of fabrication variation, and thermally limited
// turbo turns it into performance variation.
#include <cstdio>

#include "bench/common.hpp"
#include "hw/thermal.hpp"
#include "stats/summary.hpp"
#include "stats/variation.hpp"
#include "util/csv.hpp"

using namespace vapb;

int main(int argc, char** argv) {
  const std::size_t n = bench::parse_options(argc, argv, 512).modules;
  std::printf("== Extension: thermal gradient across the machine room "
              "(%zu modules) ==\n\n",
              n);
  cluster::Cluster cluster(hw::ha8k(), bench::master_seed(), n);
  // Air-cooled envelope: ~0.5 C/W junction-to-ambient, PROCHOT at 95 C.
  hw::ThermalConfig tcfg;
  tcfg.r_thermal_c_per_w = 0.5;
  tcfg.leakage_per_c = 0.012;
  hw::ThermalModel model(tcfg);
  const auto& w = workloads::dgemm();

  util::CsvWriter csv("ext_thermal.csv",
                      {"gradient_c", "vp_fab_only", "vp_with_thermal",
                       "turbo_spread_pct", "prochot_count"});
  std::printf("%-16s %14s %16s %14s %10s\n", "aisle gradient",
              "Vp (fab only)", "Vp (fab+thermal)", "turbo spread", "PROCHOT");
  for (double gradient_c : {0.0, 8.0, 16.0, 24.0}) {
    std::vector<double> fab_power, thermal_power, turbo;
    int prochot = 0;
    fab_power.reserve(n);
    thermal_power.reserve(n);
    turbo.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const hw::Module& m = cluster.module(static_cast<hw::ModuleId>(i));
      // Rack position: ambient rises linearly along the row.
      double ambient =
          20.0 + gradient_c * static_cast<double>(i) / static_cast<double>(n);
      fab_power.push_back(m.cpu_power_w(w.profile, 2.7));
      hw::ThermalSolution sol = model.steady_state(m, w.profile, 2.7, ambient);
      thermal_power.push_back(sol.cpu_w);
      prochot += sol.prochot;
      turbo.push_back(model.turbo_frequency_ghz(m, w.profile, ambient));
    }
    double vp_fab = stats::worst_case_ratio(fab_power);
    double vp_thermal = stats::worst_case_ratio(thermal_power);
    double turbo_spread = stats::spread_percent(turbo);
    std::printf("%-16s %14.3f %16.3f %13.1f%% %10d\n",
                (util::fmt_double(gradient_c, 0) + " C").c_str(), vp_fab,
                vp_thermal, turbo_spread, prochot);
    csv.row_numeric({gradient_c, vp_fab, vp_thermal, turbo_spread,
                     static_cast<double>(prochot)});
  }
  std::printf(
      "\nA hot aisle compounds fabrication variation: leakage feedback adds\n"
      "power spread and thermally limited turbo adds performance spread —\n"
      "the PVT would need periodic regeneration on thermally uneven floors.\n");
  return 0;
}
