// Section 5.3 ablation: PVT-based PMT prediction accuracy per benchmark, and
// what the calibration error costs relative to the oracle schemes.
// The paper reports < 5% error for most benchmarks and ~10% for NPB-BT, with
// NPB-BT's mispredictions visibly separating VaPc from VaPcOr.
#include <cstdio>

#include "bench/common.hpp"
#include "util/csv.hpp"

using namespace vapb;

int main(int argc, char** argv) {
  const std::size_t n = bench::parse_options(argc, argv, 384).modules;
  std::printf("== Ablation: power model calibration accuracy "
              "(%zu modules) ==\n\n",
              n);
  cluster::Cluster cluster(hw::ha8k(), bench::master_seed(), n);
  core::Campaign campaign(cluster, bench::full_allocation(n));

  util::Table table({"benchmark", "PMT error vs oracle", "VaPc speedup",
                     "VaPcOr speedup", "oracle gap"});
  util::CsvWriter csv("ablation_calibration.csv",
                      {"workload", "pmt_error", "vapc", "vapcor"});
  for (auto* w : workloads::evaluation_suite()) {
    double err = campaign.calibration_error(*w);
    // Evaluate the cost at the tightest checked budget.
    double cm = bench::checked_cm(w->name).back();
    core::CellResult cell = campaign.run_cell(
        *w, cm * static_cast<double>(n),
        {core::SchemeKind::kNaive, core::SchemeKind::kVaPc,
         core::SchemeKind::kVaPcOr});
    double vapc = cell.scheme(core::SchemeKind::kVaPc).speedup_vs_naive;
    double vapcor = cell.scheme(core::SchemeKind::kVaPcOr).speedup_vs_naive;
    table.add_row();
    table.add_cell(w->name);
    table.add_cell(util::fmt_double(err * 100.0, 1) + " %");
    table.add_cell(util::fmt_double(vapc, 2) + "x");
    table.add_cell(util::fmt_double(vapcor, 2) + "x");
    table.add_cell(util::fmt_double((vapcor / vapc - 1.0) * 100.0, 1) + " %");
    csv.row({w->name, util::fmt_double(err, 4), util::fmt_double(vapc, 3),
             util::fmt_double(vapcor, 3)});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nPaper: prediction error < 5%% for all benchmarks except NPB-BT\n"
      "(~10%%); BT's mispredictions directly affect the enforced caps and\n"
      "therefore VaPc's achieved frequency.\n");
  return 0;
}
