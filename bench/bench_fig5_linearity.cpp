// Figure 5: power vs CPU frequency on 64 HA8K modules — the validation of
// the budgeting model's core assumption. The paper reports R^2 of 0.999
// (module), 0.999 (CPU) and >= 0.99 (DRAM) for *DGEMM and MHD.
//
// We measure through the RAPL sensor model (not the ground truth) so the fit
// sees realistic measurement noise.
#include <cstdio>

#include "bench/common.hpp"
#include "hw/sensor.hpp"
#include "stats/linreg.hpp"
#include "stats/summary.hpp"
#include "util/csv.hpp"

using namespace vapb;

namespace {

void linearity(const cluster::Cluster& cluster, const workloads::Workload& w,
               const std::string& tag) {
  const std::size_t n = cluster.modules().size();
  stats::Accumulator r2_cpu, r2_dram, r2_mod;
  util::CsvWriter csv("fig5_" + tag + ".csv",
                      {"module", "freq_ghz", "cpu_w", "dram_w", "module_w"});
  for (hw::ModuleId id = 0; id < n; ++id) {
    const hw::Module& m = cluster.module(id);
    hw::Sensor sensor(hw::SensorKind::kRapl, cluster.seed().fork("fig5", id),
                      w.runtime_noise_frac);
    std::vector<double> f, cpu, dram, mod;
    for (double x : m.ladder().levels()) {
      // Single RAPL window per point, as a quick field measurement would
      // take — leaves realistic residuals in the fit.
      double c = sensor.measure_avg_w(m.cpu_power_w(w.profile, x), 1e-3);
      double d = sensor.measure_avg_w(m.dram_power_w(w.profile, x), 1e-3);
      f.push_back(x);
      cpu.push_back(c);
      dram.push_back(d);
      mod.push_back(c + d);
      csv.row_numeric({static_cast<double>(id), x, c, d, c + d});
    }
    r2_cpu.add(stats::fit_linear(f, cpu).r_squared);
    r2_dram.add(stats::fit_linear(f, dram).r_squared);
    r2_mod.add(stats::fit_linear(f, mod).r_squared);
  }
  std::printf("%-8s R^2 over %zu modules: module min=%.4f  CPU min=%.4f  "
              "DRAM min=%.4f\n",
              w.name.c_str(), n, r2_mod.min(), r2_cpu.min(), r2_dram.min());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 64);
  std::printf("== Figure 5: power vs CPU frequency linearity (%zu modules) ==\n\n",
              opt.modules);
  cluster::Cluster cluster(hw::ha8k(), bench::master_seed(), opt.modules);
  linearity(cluster, workloads::dgemm(), "dgemm");
  linearity(cluster, workloads::mhd(), "mhd");
  std::printf(
      "\nPaper: R^2 = 0.999 (module), 0.999 (CPU), >= 0.991 (DRAM).\n"
      "Per-module sweeps written to fig5_{dgemm,mhd}.csv\n");
  return 0;
}
