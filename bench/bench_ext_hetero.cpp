// Heterogeneous-fleet misallocation study: what a CPU-only budget solve
// costs on a mixed CPU+GPU+DRAM machine.
//
// The paper's Eq. 6 solve assumes every module expresses the same affine
// power curve. On a heterogeneous fleet that assumption misallocates: a
// class-blind solve fits one CPU curve to all modules, so GPU modules
// (steeper curves, wider TDP) get power budgets sized for CPU silicon and
// either throttle or overshoot. This bench fabricates the paper-sized
// 1,920-module fleet as cpu:1536,gpu:320,dram:64, sweeps the Table-4
// budget ladder, and runs the same VaPc cell twice per budget:
//
//   blind — legacy core::calibrate_pmt (one CPU table for every module),
//           flat Eq. 6 solve, power-cap enforcement;
//   aware — the scheme pipeline, which detects the mixed fleet and builds
//           the per-class PMT (core::calibrate_pmt_per_class).
//
// Reported per budget: makespan of both arms, Vt against the uncapped
// baseline (the paper's Figure-2 metric, now per mixed fleet), budget
// overshoot of both arms, and the throughput gap
//   gap% = (makespan_blind - makespan_aware) / makespan_blind * 100.
// The bench hard-fails if every budget's gap is exactly zero — that means
// the class threading collapsed and both arms ran the same solve.
//
//   bench_ext_hetero [modules] [--repetitions R] [--out FILE]
//                    [--baseline FILE]
//
// With --baseline, the run fails (exit 1) when the class-aware cell
// throughput [modules/s] drops below half the committed value — the same
// machine-speed-insensitive >2x gate bench_perf_scale uses.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/budget.hpp"
#include "core/pmt.hpp"
#include "core/pvt.hpp"
#include "core/runner.hpp"
#include "core/schemes.hpp"
#include "core/test_run.hpp"
#include "hw/device_class.hpp"

using namespace vapb;

namespace {

constexpr int kCellIterations = 4;  ///< DES iterations per timed cell
constexpr double kGateCmW = 80.0;   ///< budget of the throughput-gated cell

using bench_clock = std::chrono::steady_clock;

template <typename Fn>
double time_s(const Fn& fn) {
  const auto t0 = bench_clock::now();
  fn();
  return std::chrono::duration<double>(bench_clock::now() - t0).count();
}

/// The paper fleet's 24:5:1 composition, scaled to `n` (cpu absorbs the
/// rounding so counts always sum to n). 1,920 -> cpu:1536,gpu:320,dram:64.
hw::ClassMix hetero_mix(std::size_t n) {
  hw::ClassMix mix;
  const std::size_t gpu = n / 6;
  const std::size_t dram = n / 30;
  mix.counts[hw::device_class_index(hw::DeviceClass::kGpu)] = gpu;
  mix.counts[hw::device_class_index(hw::DeviceClass::kDram)] = dram;
  mix.counts[hw::device_class_index(hw::DeviceClass::kCpu)] = n - gpu - dram;
  return mix;
}

struct BudgetPoint {
  double cm_w = 0.0;
  double blind_makespan_s = 0.0;
  double aware_makespan_s = 0.0;
  double blind_vt = 0.0;
  double aware_vt = 0.0;
  double blind_overshoot_w = 0.0;  ///< max(0, measured - budget)
  double aware_overshoot_w = 0.0;
  double gap_pct = 0.0;  ///< (blind - aware) / blind makespan, percent
};

double overshoot_w(const core::RunMetrics& m) {
  return std::max(0.0, m.total_power_w - m.budget_w);
}

void write_json(const std::string& path, std::size_t modules,
                const std::string& mix, int repetitions,
                const std::vector<BudgetPoint>& points,
                const std::string& cell_name, double cell_s,
                double throughput_mps, double mean_gap_pct) {
  std::ostringstream os;
  os << "{\n"
     << "  \"bench\": \"bench_ext_hetero\",\n"
     << "  \"modules\": " << modules << ",\n"
     << "  \"mix\": \"" << mix << "\",\n"
     << "  \"repetitions\": " << repetitions << ",\n"
     << "  \"cell_iterations\": " << kCellIterations << ",\n"
     << "  \"mean_gap_pct\": " << mean_gap_pct << ",\n"
     << "  \"cases\": [\n";
  for (const BudgetPoint& p : points) {
    os << "    {\"name\": \"hetero_cm" << p.cm_w << "\", \"cm_w\": " << p.cm_w
       << ", \"blind_makespan_s\": " << p.blind_makespan_s
       << ", \"aware_makespan_s\": " << p.aware_makespan_s
       << ", \"blind_vt\": " << p.blind_vt
       << ", \"aware_vt\": " << p.aware_vt
       << ", \"blind_overshoot_w\": " << p.blind_overshoot_w
       << ", \"aware_overshoot_w\": " << p.aware_overshoot_w
       << ", \"gap_pct\": " << p.gap_pct << "},\n";
  }
  os << "    {\"name\": \"" << cell_name << "\", \"modules\": " << modules
     << ", \"cell_s\": " << cell_s
     << ", \"throughput_mps\": " << throughput_mps << "}\n"
     << "  ]\n}\n";
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  f << os.str();
  std::printf("wrote %s\n", path.c_str());
}

/// Pulls "throughput_mps" for a case name out of a committed report.
double baseline_throughput(const std::string& text, const std::string& name) {
  const std::string key = "\"name\": \"" + name + "\"";
  std::size_t pos = text.find(key);
  if (pos == std::string::npos) return -1.0;
  const std::string field = "\"throughput_mps\": ";
  pos = text.find(field, pos);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + pos + field.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 1920);
  const int reps = std::max(opt.repetitions, 1);
  const std::size_t n = opt.modules;
  const hw::ClassMix mix = hetero_mix(n);

  std::printf("== heterogeneous misallocation (%s, min over %d reps) ==\n\n",
              mix.str().c_str(), reps);

  const cluster::Cluster fleet(hw::ha8k(), bench::master_seed(), mix);
  const std::vector<hw::ModuleId> alloc = bench::full_allocation(n);
  const workloads::Workload& app = workloads::mhd();

  const core::Pvt pvt = core::Pvt::generate(fleet, workloads::pvt_microbench(),
                                            fleet.seed().fork("pvt"));
  const core::TestRunResult test = core::single_module_test_run(
      fleet, alloc.front(), app,
      fleet.seed().fork("test-run").fork(app.name));
  // The class-blind arm: one CPU curve fitted to every module — exactly
  // what the pre-device-class pipeline would compute on this fleet.
  const core::Pmt blind_pmt =
      core::calibrate_pmt(pvt, test, alloc, fleet.spec().ladder);

  core::RunConfig config;
  config.iterations = kCellIterations;
  const core::Runner runner(fleet, alloc, config);
  const core::RunMetrics base = runner.run_uncapped(app);

  std::vector<BudgetPoint> points;
  double gate_cell_s = std::numeric_limits<double>::infinity();
  for (double cm : {110.0, 100.0, 90.0, 80.0, 70.0, 60.0}) {
    const double budget_w = cm * static_cast<double>(n);
    BudgetPoint p;
    p.cm_w = cm;

    const core::BudgetResult blind_solve =
        core::solve_budget(blind_pmt, util::Watts{budget_w});
    const core::RunMetrics blind = runner.run_budgeted(
        app, core::Enforcement::kPowerCap, blind_solve, "VaPc-blind",
        budget_w);

    core::RunMetrics aware;
    double cell_s = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
      cell_s = std::min(cell_s, time_s([&] {
        aware = runner.run_scheme(app, core::SchemeKind::kVaPc, budget_w, pvt,
                                  test);
      }));
    }
    if (cm == kGateCmW) gate_cell_s = cell_s;

    p.blind_makespan_s = blind.makespan_s;
    p.aware_makespan_s = aware.makespan_s;
    p.blind_vt = core::vt_normalized(blind, base);
    p.aware_vt = core::vt_normalized(aware, base);
    p.blind_overshoot_w = overshoot_w(blind);
    p.aware_overshoot_w = overshoot_w(aware);
    p.gap_pct = blind.makespan_s > 0.0
                    ? (blind.makespan_s - aware.makespan_s) /
                          blind.makespan_s * 100.0
                    : 0.0;
    points.push_back(p);
  }

  std::printf("%-8s %12s %12s %8s %8s %12s %12s %8s\n", "Cm [W]", "blind [s]",
              "aware [s]", "Vt_bl", "Vt_aw", "over_bl [W]", "over_aw [W]",
              "gap %");
  double gap_sum = 0.0;
  double max_abs_gap = 0.0;
  for (const BudgetPoint& p : points) {
    std::printf("%-8.0f %12.4f %12.4f %8.3f %8.3f %12.1f %12.1f %8.2f\n",
                p.cm_w, p.blind_makespan_s, p.aware_makespan_s, p.blind_vt,
                p.aware_vt, p.blind_overshoot_w, p.aware_overshoot_w,
                p.gap_pct);
    gap_sum += p.gap_pct;
    max_abs_gap = std::max(max_abs_gap, std::abs(p.gap_pct));
  }
  const double mean_gap = gap_sum / static_cast<double>(points.size());
  const double throughput_mps = static_cast<double>(n) / gate_cell_s;
  const std::string cell_name = "hetero_cell_" + std::to_string(n) + "m";
  std::printf("\nmean throughput gap %.2f%% (class-aware over class-blind); "
              "gated cell %.4fs -> %.0f modules/s\n",
              mean_gap, gate_cell_s, throughput_mps);

  // A fleet this skewed must show a measurable gap somewhere on the ladder;
  // all-zero means the per-class tables never reached the solve.
  if (max_abs_gap < 1e-9) {
    std::fprintf(stderr,
                 "HETERO GAP FAILURE: class-blind and class-aware solves "
                 "produced identical makespans at every budget\n");
    return 1;
  }

  if (!opt.out.empty()) {
    write_json(opt.out, n, mix.str(), reps, points, cell_name, gate_cell_s,
               throughput_mps, mean_gap);
  }

  if (!opt.baseline.empty()) {
    std::ifstream f(opt.baseline);
    if (!f) {
      std::fprintf(stderr, "cannot read baseline %s\n", opt.baseline.c_str());
      return 1;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    const double committed = baseline_throughput(ss.str(), cell_name);
    if (committed <= 0.0) {
      std::printf("baseline: no entry for %s (skipped)\n", cell_name.c_str());
    } else if (throughput_mps < committed / 2.0) {
      std::printf("PERF REGRESSION: %s throughput %.0f modules/s is below "
                  "half the committed baseline %.0f\n",
                  cell_name.c_str(), throughput_mps, committed);
      return 1;
    } else {
      std::printf("baseline ok: %s %.0f modules/s (committed %.0f)\n",
                  cell_name.c_str(), throughput_mps, committed);
    }
  }
  return 0;
}
