// DES-engine performance regression harness: times the retained polling
// ReferenceEngine against the event-driven Engine on the workload programs
// the campaign layer actually runs, asserts the two produce bit-identical
// results, and emits a machine-readable JSON report.
//
//   bench_perf_des [ranks] [--repetitions R] [--out FILE] [--baseline FILE]
//
// Cases are named after their shape (pattern, rank count, iterations), so a
// small CI smoke run only gates against the baseline entries whose shape it
// actually reproduces. With --baseline, the run fails (exit 1) when any
// matching case's reference/event speedup drops below half the committed
// value — a >2x regression — which keeps the gate insensitive to absolute
// machine speed.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "des/reference_engine.hpp"

using namespace vapb;

namespace {

volatile double g_sink = 0.0;  // defeats dead-code elimination of timed runs

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool identical(const des::RunResult& a, const des::RunResult& b) {
  if (!same_bits(a.makespan_s, b.makespan_s)) return false;
  if (a.ranks.size() != b.ranks.size()) return false;
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    const des::RankStats& x = a.ranks[r];
    const des::RankStats& y = b.ranks[r];
    if (!same_bits(x.compute_s, y.compute_s) ||
        !same_bits(x.wait_s, y.wait_s) ||
        !same_bits(x.transfer_s, y.transfer_s) ||
        !same_bits(x.sendrecv_s, y.sendrecv_s) ||
        !same_bits(x.collective_s, y.collective_s) ||
        !same_bits(x.finish_time_s, y.finish_time_s)) {
      return false;
    }
  }
  return true;
}

using bench_clock = std::chrono::steady_clock;

/// One timing sample: `inner` back-to-back runs, per-run seconds.
template <typename Fn>
double sample_s(const Fn& fn, int inner) {
  const auto t0 = bench_clock::now();
  for (int i = 0; i < inner; ++i) fn();
  return std::chrono::duration<double>(bench_clock::now() - t0).count() /
         static_cast<double>(inner);
}

/// Warms `fn` up and returns an inner-loop count sized so one sample spans
/// at least ~20 ms of work.
template <typename Fn>
int calibrate(const Fn& fn) {
  const auto t0 = bench_clock::now();
  fn();
  const double once =
      std::chrono::duration<double>(bench_clock::now() - t0).count();
  return std::max(1, static_cast<int>(std::ceil(0.02 / std::max(once, 1e-9))));
}

struct CaseResult {
  std::string name;
  std::size_t ranks = 0;
  int iterations = 0;
  double reference_s = 0.0;  ///< polling engine, per run
  double event_s = 0.0;      ///< event-driven engine on a precompiled image
  double compile_s = 0.0;    ///< RankProgram -> ProgramImage compilation
  double speedup = 0.0;      ///< reference_s / event_s
};

CaseResult run_case(const std::string& name, const workloads::Workload& w,
                    std::size_t ranks, int iterations, int repetitions) {
  CaseResult res;
  res.name = name;
  res.ranks = ranks;
  res.iterations = iterations;

  auto programs = workloads::build_programs(
      w, ranks, iterations, [](std::size_t r, int) {
        return 1.0 + 0.001 * static_cast<double>(r % 7);
      });
  des::ProgramImage image = des::ProgramImage::compile(programs);
  des::ReferenceEngine reference;
  des::Engine event;

  // Correctness gate before any timing: all three entry points agree bit
  // for bit.
  des::RunResult want = reference.run(programs);
  if (!identical(want, event.run(image)) ||
      !identical(want, event.run(programs))) {
    std::fprintf(stderr, "BIT-IDENTITY FAILURE in case %s\n", name.c_str());
    std::exit(1);
  }

  const auto ref_run = [&] { g_sink = reference.run(programs).makespan_s; };
  const auto event_run = [&] { g_sink = event.run(image).makespan_s; };
  const auto compile_run = [&] {
    g_sink = static_cast<double>(
        des::ProgramImage::compile(programs).total_ops());
  };
  const int ref_inner = calibrate(ref_run);
  const int event_inner = calibrate(event_run);
  const int compile_inner = calibrate(compile_run);

  // Interleave the timed sections rep by rep (instead of timing each one in
  // a solid block) so machine-speed drift — frequency scaling, noisy
  // neighbours — hits both engines alike and cancels in the speedup ratio.
  res.reference_s = res.event_s = res.compile_s =
      std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < repetitions; ++rep) {
    res.reference_s = std::min(res.reference_s, sample_s(ref_run, ref_inner));
    res.event_s = std::min(res.event_s, sample_s(event_run, event_inner));
    res.compile_s =
        std::min(res.compile_s, sample_s(compile_run, compile_inner));
  }
  res.speedup = res.reference_s / res.event_s;
  return res;
}

void write_json(const std::string& path, std::size_t ranks, int repetitions,
                const std::vector<CaseResult>& cases) {
  std::ostringstream os;
  os << "{\n"
     << "  \"bench\": \"bench_perf_des\",\n"
     << "  \"ranks\": " << ranks << ",\n"
     << "  \"repetitions\": " << repetitions << ",\n"
     << "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    os << "    {\"name\": \"" << c.name << "\", \"ranks\": " << c.ranks
       << ", \"iterations\": " << c.iterations
       << ", \"reference_s\": " << c.reference_s
       << ", \"event_s\": " << c.event_s << ", \"compile_s\": " << c.compile_s
       << ", \"speedup\": " << c.speedup << "}"
       << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  f << os.str();
  std::printf("wrote %s\n", path.c_str());
}

/// Pulls "speedup" for a case name out of a previously written report.
/// Returns a negative value when the case is absent.
double baseline_speedup(const std::string& text, const std::string& name) {
  const std::string key = "\"name\": \"" + name + "\"";
  std::size_t pos = text.find(key);
  if (pos == std::string::npos) return -1.0;
  const std::string field = "\"speedup\": ";
  pos = text.find(field, pos);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + pos + field.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  const std::size_t n = opt.modules;
  const int reps = std::max(opt.repetitions, 3);
  std::printf("== DES engine performance (%zu ranks, min over %d reps) ==\n\n",
              n, reps);

  std::vector<CaseResult> cases;
  cases.push_back(run_case("halo3d_mhd_" + std::to_string(n) + "r_10it",
                           workloads::mhd(), n, 10, reps));
  cases.push_back(run_case("halo3d_mhd_64r_200it", workloads::mhd(), 64, 200,
                           reps));
  cases.push_back(run_case("allreduce_mvmc_" + std::to_string(n) + "r_50it",
                           workloads::mvmc(), n, 50, reps));

  std::printf("%-28s %12s %12s %12s %9s\n", "case", "reference_s", "event_s",
              "compile_s", "speedup");
  for (const CaseResult& c : cases) {
    std::printf("%-28s %12.6f %12.6f %12.6f %8.2fx\n", c.name.c_str(),
                c.reference_s, c.event_s, c.compile_s, c.speedup);
  }

  if (!opt.out.empty()) write_json(opt.out, n, reps, cases);

  if (!opt.baseline.empty()) {
    std::ifstream f(opt.baseline);
    if (!f) {
      std::fprintf(stderr, "cannot read baseline %s\n", opt.baseline.c_str());
      return 1;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    const std::string text = ss.str();
    int gated = 0, failures = 0;
    for (const CaseResult& c : cases) {
      const double base = baseline_speedup(text, c.name);
      if (base <= 0.0) {
        std::printf("baseline: no entry for %s (skipped)\n", c.name.c_str());
        continue;
      }
      ++gated;
      if (c.speedup < base / 2.0) {
        ++failures;
        std::printf(
            "PERF REGRESSION: %s speedup %.2fx is below half the committed "
            "baseline %.2fx\n",
            c.name.c_str(), c.speedup, base);
      } else {
        std::printf("baseline ok: %s %.2fx (committed %.2fx)\n",
                    c.name.c_str(), c.speedup, base);
      }
    }
    if (failures > 0) return 1;
    std::printf("baseline gate passed on %d case%s\n", gated,
                gated == 1 ? "" : "s");
  }
  return 0;
}
