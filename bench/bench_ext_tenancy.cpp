// Multi-tenant co-scheduling study: what variation-aware placement plus
// dynamic power partitioning buys over naive equal-split on a mixed fleet.
//
// The paper budgets one job at a time; a production machine runs many. This
// bench fabricates the paper-sized 1,920-module fleet as
// cpu:1536,gpu:320,dram:64 and replays one six-job trace (frequency-bound
// and memory-bound workloads, staggered arrivals, four jobs concurrent at
// peak) through the MachineScheduler under the full policy cross:
//
//   naive — contiguous placement, equal-share power split (the baseline a
//           partition-blind resource manager would run);
//   aware — variation-aware placement (power-hungry silicon to
//           frequency-insensitive jobs) + water-filling power partitioning
//           (each job clamped at its calibrated demand, surplus poured over
//           the power-constrained jobs).
//
// The two single-axis arms (contiguous + water-fill, variation-aware +
// equal-share) are reported alongside so the margin decomposes; most of it
// comes from demand-aware partitioning, placement moves the residual.
// Reported per arm: simulated makespan, throughput [jobs/h], Jain fairness
// and the throughput ratio vs naive. The gate metric is
//   margin% = (throughput_aware - throughput_naive) / throughput_naive * 100.
// The bench hard-fails if the margin is not positive — the aware stack must
// beat naive equal-split — and, with --baseline, fails when the margin
// drops below half the committed value (simulation output, so the gate is
// machine-speed insensitive).
//
//   bench_ext_tenancy [modules] [--repetitions R] [--out FILE]
//                     [--baseline FILE]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/pvt.hpp"
#include "hw/device_class.hpp"
#include "tenancy/campaign.hpp"

using namespace vapb;

namespace {

constexpr double kBudgetCmW = 72.0;  ///< scarce enough that placement matters

using bench_clock = std::chrono::steady_clock;

template <typename Fn>
double time_s(const Fn& fn) {
  const auto t0 = bench_clock::now();
  fn();
  return std::chrono::duration<double>(bench_clock::now() - t0).count();
}

/// The paper fleet's 24:5:1 composition, scaled to `n` (cpu absorbs the
/// rounding so counts always sum to n). 1,920 -> cpu:1536,gpu:320,dram:64.
hw::ClassMix hetero_mix(std::size_t n) {
  hw::ClassMix mix;
  const std::size_t gpu = n / 6;
  const std::size_t dram = n / 30;
  mix.counts[hw::device_class_index(hw::DeviceClass::kGpu)] = gpu;
  mix.counts[hw::device_class_index(hw::DeviceClass::kDram)] = dram;
  mix.counts[hw::device_class_index(hw::DeviceClass::kCpu)] = n - gpu - dram;
  return mix;
}

/// The six-job trace: four-way concurrency at peak (each job asks for a
/// quarter of the fleet in the fleet's own class ratio), mixing the
/// cpu-bound (*DGEMM, NPB-EP) and memory-bound (*STREAM) ends of the
/// catalog so placement and partitioning both have something to exploit.
tenancy::TenancyTrace make_trace(std::size_t n) {
  const std::string mix = hetero_mix(n / 4).str();
  tenancy::TenancyTrace trace;
  trace.budget_cm_w = kBudgetCmW;
  const struct {
    const char* workload;
    double arrival_s;
    int iterations;
  } jobs[] = {
      {"NPB-EP", 0.0, 6}, {"*STREAM", 0.0, 8},  {"MHD", 10.0, 6},
      {"*DGEMM", 20.0, 4}, {"NPB-BT", 30.0, 6}, {"mVMC", 40.0, 6},
  };
  std::size_t k = 0;
  for (const auto& j : jobs) {
    tenancy::JobSpec spec;
    // snprintf instead of "j" + to_string: GCC 12's -Wrestrict false
    // positive (PR105329) fires on the operator+ chain at -O2.
    char name[32];
    std::snprintf(name, sizeof name, "j%zu", k++);
    spec.name = name;
    spec.workload = j.workload;
    spec.mix = mix;
    spec.arrival_s = j.arrival_s;
    spec.iterations = j.iterations;
    trace.jobs.push_back(std::move(spec));
  }
  trace.validate();
  return trace;
}

struct Arm {
  std::string placement;
  std::string partition;
  double makespan_s = 0.0;
  double throughput_jph = 0.0;
  double jain = 0.0;
  double thr_vs_naive = 0.0;
};

void write_json(const std::string& path, std::size_t modules,
                const std::string& mix, int repetitions,
                const std::vector<Arm>& arms, const std::string& gate_name,
                double margin_pct, double campaign_s) {
  std::ostringstream os;
  os << "{\n"
     << "  \"bench\": \"bench_ext_tenancy\",\n"
     << "  \"modules\": " << modules << ",\n"
     << "  \"mix\": \"" << mix << "\",\n"
     << "  \"repetitions\": " << repetitions << ",\n"
     << "  \"budget_cm_w\": " << kBudgetCmW << ",\n"
     << "  \"campaign_s\": " << campaign_s << ",\n"
     << "  \"cases\": [\n";
  for (const Arm& a : arms) {
    os << "    {\"name\": \"" << a.placement << "+" << a.partition
       << "\", \"makespan_s\": " << a.makespan_s
       << ", \"throughput_jph\": " << a.throughput_jph
       << ", \"jain_fairness\": " << a.jain
       << ", \"thr_vs_naive\": " << a.thr_vs_naive << "},\n";
  }
  os << "    {\"name\": \"" << gate_name << "\", \"modules\": " << modules
     << ", \"margin_pct\": " << margin_pct << "}\n"
     << "  ]\n}\n";
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  f << os.str();
  std::printf("wrote %s\n", path.c_str());
}

/// Pulls "margin_pct" for a case name out of a committed report.
double baseline_margin(const std::string& text, const std::string& name) {
  const std::string key = "\"name\": \"" + name + "\"";
  std::size_t pos = text.find(key);
  if (pos == std::string::npos) return std::numeric_limits<double>::quiet_NaN();
  const std::string field = "\"margin_pct\": ";
  pos = text.find(field, pos);
  if (pos == std::string::npos) return std::numeric_limits<double>::quiet_NaN();
  return std::strtod(text.c_str() + pos + field.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 1920);
  const int reps = std::max(opt.repetitions, 1);
  const std::size_t n = opt.modules;
  if (n < 8) {
    std::fprintf(stderr, "bench_ext_tenancy needs at least 8 modules\n");
    return 2;
  }
  const hw::ClassMix mix = hetero_mix(n);

  std::printf("== multi-tenant co-scheduling (%s, min over %d reps) ==\n\n",
              mix.str().c_str(), reps);

  const cluster::Cluster fleet(hw::ha8k(), bench::master_seed(), mix);
  const auto pvt = std::make_shared<const core::Pvt>(core::Pvt::generate(
      fleet, workloads::pvt_microbench(), fleet.seed().fork("pvt")));

  tenancy::TenancyGrid grid;
  grid.arrival_scales = {1.0};
  grid.policies = {
      {"contiguous", "equal-share"},
      {"contiguous", "water-fill"},
      {"variation-aware", "equal-share"},
      {"variation-aware", "water-fill"},
  };
  grid.base = make_trace(n);

  const tenancy::TenancyCampaign campaign(fleet, pvt, opt.threads);
  tenancy::TenancyCampaignResult result;
  double campaign_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    campaign_s =
        std::min(campaign_s, time_s([&] { result = campaign.run(grid); }));
  }

  std::vector<Arm> arms;
  for (const tenancy::TenancyPointResult& p : result.points) {
    Arm a;
    a.placement = p.trace.placement;
    a.partition = p.trace.partition;
    a.makespan_s = p.result.makespan_s;
    a.throughput_jph = p.result.throughput_jph;
    a.jain = p.result.jain_fairness;
    a.thr_vs_naive = p.throughput_vs_naive;
    arms.push_back(std::move(a));
  }

  std::printf("%-16s %-12s %12s %12s %8s %14s\n", "placement", "partition",
              "makespan [s]", "jobs/h", "Jain", "thr vs naive");
  for (const Arm& a : arms) {
    std::printf("%-16s %-12s %12.3f %12.1f %8.3f %13.3fx\n",
                a.placement.c_str(), a.partition.c_str(), a.makespan_s,
                a.throughput_jph, a.jain, a.thr_vs_naive);
  }

  const tenancy::TenancyPointResult& aware =
      result.point(1.0, "variation-aware", "water-fill");
  const double margin_pct = (aware.throughput_vs_naive - 1.0) * 100.0;
  const std::string gate_name = "tenancy_margin_" + std::to_string(n) + "m";
  std::printf("\naware-stack throughput margin %.2f%% over naive equal-split "
              "(campaign %.3fs, %d resolves)\n",
              margin_pct, campaign_s, aware.result.resolves);

  // The whole point of the subsystem: the aware stack must beat naive.
  // Exactly zero additionally means the policy threading collapsed and
  // every arm ran the same simulation.
  if (!(margin_pct > 0.0)) {
    std::fprintf(stderr,
                 "TENANCY MARGIN FAILURE: variation-aware + water-fill does "
                 "not beat naive equal-split (margin %.4f%%)\n",
                 margin_pct);
    return 1;
  }

  if (!opt.out.empty()) {
    write_json(opt.out, n, mix.str(), reps, arms, gate_name, margin_pct,
               campaign_s);
  }

  if (!opt.baseline.empty()) {
    std::ifstream f(opt.baseline);
    if (!f) {
      std::fprintf(stderr, "cannot read baseline %s\n", opt.baseline.c_str());
      return 1;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    const double committed = baseline_margin(ss.str(), gate_name);
    if (!std::isfinite(committed)) {
      std::printf("baseline: no entry for %s (skipped)\n", gate_name.c_str());
    } else if (margin_pct < committed / 2.0) {
      std::printf("PERF REGRESSION: %s margin %.2f%% is below half the "
                  "committed baseline %.2f%%\n",
                  gate_name.c_str(), margin_pct, committed);
      return 1;
    } else {
      std::printf("baseline ok: %s %.2f%% (committed %.2f%%)\n",
                  gate_name.c_str(), margin_pct, committed);
    }
  }
  return 0;
}
