// Table 2: the four architectures under consideration, from the simulator's
// presets, plus each fleet's realized manufacturing-variation spread.
#include <cstdio>

#include "bench/common.hpp"
#include "cluster/cluster.hpp"
#include "stats/variation.hpp"

using namespace vapb;

int main(int argc, char** argv) {
  // --modules caps the per-fleet sample used for the realized spread.
  const bench::Options opt = bench::parse_options(argc, argv, 2048);
  std::printf("== Table 2: Architectures Under Consideration ==\n\n");
  util::Table table({"Site", "Microarch", "Nodes", "Procs/Node", "Cores/Proc",
                     "CPU Freq", "Mem/Node", "TDP", "Power Msrmt",
                     "fleet CPU-power spread"});
  for (const hw::ArchSpec& spec : hw::all_archs()) {
    // Realized spread: each module's *STREAM CPU power at nominal frequency.
    std::size_t n = std::min<std::size_t>(
        static_cast<std::size_t>(spec.total_modules()), opt.modules);
    cluster::Cluster cluster(spec, bench::master_seed(), n);
    std::vector<double> powers;
    powers.reserve(n);
    for (const auto& m : cluster.modules()) {
      powers.push_back(m.cpu_power_w(workloads::pvt_microbench().profile,
                                     spec.nominal_freq_ghz));
    }
    table.add_row();
    table.add_cell(spec.system);
    table.add_cell(spec.microarch);
    table.add_cell(static_cast<long long>(spec.total_nodes));
    table.add_cell(static_cast<long long>(spec.procs_per_node));
    table.add_cell(static_cast<long long>(spec.cores_per_proc));
    table.add_cell(util::fmt_ghz(spec.nominal_freq_ghz));
    table.add_cell(std::to_string(spec.memory_per_node_gb) + " GB");
    table.add_cell(spec.tdp_cpu_w >= 1000
                       ? "Unreported"
                       : util::fmt_watts(spec.tdp_cpu_w));
    table.add_cell(hw::sensor_spec(spec.measurement).name);
    table.add_cell(util::fmt_double(stats::spread_percent(powers), 1) + " %");
  }
  std::printf("%s", table.str().c_str());
  std::printf("\nCab DRAM power measurement unavailable (BIOS restriction);\n"
              "Vulcan power is observed per node board (32 compute cards).\n");
  return 0;
}
