// Extension: what if vendors *power-binned* processors?
//
// Section 2.1 notes that vendors bin by frequency but not by power, which is
// why power inhomogeneity exists at all. This bench sorts the fleet by
// module power into k bins and schedules a job entirely inside one bin: as
// bins narrow, the variation-unaware schemes recover most of the
// variation-aware schemes' advantage — quantifying how much of the paper's
// speedup is purchasable at the factory instead of in software.
#include <algorithm>
#include <cstdio>

#include "bench/common.hpp"
#include "util/csv.hpp"

using namespace vapb;

int main(int argc, char** argv) {
  const std::size_t fleet = bench::parse_options(argc, argv, 1536).modules;
  const std::size_t job_modules = fleet / 8;
  std::printf("== Extension: power binning (%zu-module fleet, %zu-module "
              "job) ==\n\n",
              fleet, job_modules);
  cluster::Cluster cluster(hw::ha8k(), bench::master_seed(), fleet);
  const workloads::Workload& w = workloads::mhd();
  const double cm = 70.0;

  // Rank the fleet by uncapped module power under the job's workload.
  std::vector<hw::ModuleId> ranked(fleet);
  for (std::size_t i = 0; i < fleet; ++i) {
    ranked[i] = static_cast<hw::ModuleId>(i);
  }
  std::sort(ranked.begin(), ranked.end(), [&](hw::ModuleId a, hw::ModuleId b) {
    return cluster.module(a).module_power_w(w.profile, 2.7) <
           cluster.module(b).module_power_w(w.profile, 2.7);
  });

  util::CsvWriter csv("ext_power_binning.csv",
                      {"bins", "pc_speedup", "vafs_speedup", "bin_vp"});
  std::printf("%-18s %10s %12s %12s\n", "binning", "bin Vp", "Pc vs Naive",
              "VaFs vs Naive");
  for (std::size_t bins : {1, 2, 4, 8}) {
    // Sample the job's modules *across* one bin (strided over the bin's
    // power range): with one bin that is the whole fleet's spread, with
    // many bins only that bin's narrow slice.
    std::size_t bin_size = fleet / bins;
    std::size_t start = (bins / 2) * bin_size;
    std::size_t stride = bin_size / job_modules;
    std::vector<hw::ModuleId> alloc;
    alloc.reserve(job_modules);
    for (std::size_t k = 0; k < job_modules; ++k) {
      alloc.push_back(ranked[start + k * stride]);
    }
    std::sort(alloc.begin(), alloc.end());

    core::Campaign campaign(cluster, alloc);
    core::CellResult cell = campaign.run_cell(
        w, cm * static_cast<double>(job_modules),
        {core::SchemeKind::kNaive, core::SchemeKind::kPc,
         core::SchemeKind::kVaFs});
    double bin_vp = campaign.uncapped(w).vp();
    double pc = cell.scheme(core::SchemeKind::kPc).speedup_vs_naive;
    double vafs = cell.scheme(core::SchemeKind::kVaFs).speedup_vs_naive;
    std::printf("%2zu bin%s %9s %10.2f %11.2fx %11.2fx\n", bins,
                bins == 1 ? " (none)" : "s       ", "", bin_vp, pc, vafs);
    csv.row_numeric({static_cast<double>(bins), pc, vafs, bin_vp});
  }
  std::printf(
      "\nNarrower power bins shrink within-allocation variation (bin Vp),\n"
      "closing the gap between variation-unaware (Pc) and variation-aware\n"
      "(VaFs) budgeting — software mitigation and factory binning are\n"
      "substitutes. Series written to ext_power_binning.csv\n");
  return 0;
}
