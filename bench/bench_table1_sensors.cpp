// Table 1: power measurement techniques — reported quantity, granularity and
// capping support — plus a measured demonstration of each model's noise
// behaviour on a 100 W reference load.
#include <cstdio>

#include "bench/common.hpp"
#include "hw/sensor.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace vapb;

int main(int argc, char** argv) {
  // No size knob here; parsing still rejects mistyped flags.
  bench::parse_options(argc, argv);
  std::printf("== Table 1: Power Measurement Techniques ==\n\n");
  util::Table table({"Technique", "Reported", "Granularity", "Power Capping",
                     "sample sd @100W", "1s-avg err @100W"});
  for (const hw::SensorSpec& spec : hw::all_sensor_specs()) {
    hw::Sensor sensor(spec.kind, util::SeedSequence(2015), 0.02);
    stats::Accumulator acc;
    for (int i = 0; i < 5000; ++i) acc.add(sensor.sample_w(100.0));
    hw::Sensor fresh(spec.kind, util::SeedSequence(2016), 0.02);
    double avg_err = fresh.measure_avg_w(100.0, 1.0) - 100.0;

    table.add_row();
    table.add_cell(spec.name);
    table.add_cell(spec.reported);
    table.add_cell(spec.sample_interval_s >= 0.1
                       ? util::fmt_double(spec.sample_interval_s * 1000, 0) + " ms"
                       : util::fmt_double(spec.sample_interval_s * 1000, 0) + " ms");
    table.add_cell(spec.supports_capping ? "Yes" : "No");
    table.add_cell(util::fmt_watts(acc.stddev()));
    table.add_cell(util::fmt_watts(avg_err));
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nRAPL reports windowed averages (workload fluctuation averaged away);\n"
      "PowerInsight and EMON report instantaneous samples and see it.\n");
  return 0;
}
