// Extension: energy to solution.
//
// The related work the paper builds on (Section 2.2) optimized for *energy*;
// the paper optimizes time under a power cap. The two align: under a fixed
// power budget all schemes draw roughly the budget, so the faster scheme
// also spends less energy. This bench quantifies the energy-to-solution and
// the energy-delay product per scheme.
#include <cstdio>

#include "bench/common.hpp"
#include "util/csv.hpp"

using namespace vapb;

int main(int argc, char** argv) {
  const std::size_t n = bench::parse_options(argc, argv, 384).modules;
  std::printf("== Extension: energy to solution (%zu modules) ==\n\n", n);
  cluster::Cluster cluster(hw::ha8k(), bench::master_seed(), n);
  core::Campaign campaign(cluster, bench::full_allocation(n));

  util::CsvWriter csv("ext_energy.csv",
                      {"workload", "cm_w", "scheme", "energy_mj", "edp"});
  for (auto* w : {&workloads::mhd(), &workloads::bt()}) {
    std::printf("%s\n", w->name.c_str());
    std::printf("  %-8s %-8s %12s %14s %12s\n", "Cm", "scheme", "time",
                "energy", "EDP");
    for (double cm : {80.0, 60.0}) {
      core::CellResult cell = campaign.run_cell(
          *w, cm * static_cast<double>(n),
          {core::SchemeKind::kNaive, core::SchemeKind::kPc,
           core::SchemeKind::kVaFs});
      for (const auto& s : cell.schemes) {
        if (!s.metrics.feasible) continue;
        double energy_j = s.metrics.total_power_w * s.metrics.makespan_s;
        double edp = energy_j * s.metrics.makespan_s;
        std::printf("  %-8s %-8s %11.1fs %11.2f MJ %12.3g\n",
                    (util::fmt_double(cm, 0) + " W").c_str(),
                    s.metrics.scheme.c_str(), s.metrics.makespan_s,
                    energy_j / 1e6, edp);
        csv.row({w->name, util::fmt_double(cm, 0), s.metrics.scheme,
                 util::fmt_double(energy_j / 1e6, 4),
                 util::fmt_double(edp, 1)});
      }
    }
    std::printf("\n");
  }
  std::printf(
      "Under a binding power budget every scheme draws ~the budget, so the\n"
      "faster variation-aware schemes also win on energy and on EDP —\n"
      "mitigating variability is an energy-efficiency technique too.\n");
  return 0;
}
