// Section 6.1 ablation: the choice of PVT microbenchmark. The paper uses
// *STREAM alone and suggests generating several PVTs from microbenchmarks
// with different characteristics and picking per application. This bench
// builds three PVTs (bandwidth-bound, compute-bound, mixed) and reports the
// per-application PMT prediction error under each.
#include <cstdio>
#include <memory>

#include "bench/common.hpp"
#include "util/csv.hpp"

using namespace vapb;

int main(int argc, char** argv) {
  const std::size_t n = bench::parse_options(argc, argv, 384).modules;
  std::printf("== Ablation: PVT microbenchmark choice (%zu modules) ==\n\n",
              n);
  cluster::Cluster cluster(hw::ha8k(), bench::master_seed(), n);
  auto alloc = bench::full_allocation(n);

  const std::vector<const workloads::Workload*> micros = {
      &workloads::pvt_microbench(),          // *STREAM (the paper's choice)
      &workloads::pvt_microbench_compute(),  // DGEMM-like
      &workloads::pvt_microbench_mixed()};

  core::RunConfig cfg;
  cfg.iterations = 4;
  std::vector<std::unique_ptr<core::Campaign>> campaigns;
  for (auto* micro : micros) {
    campaigns.push_back(
        std::make_unique<core::Campaign>(cluster, alloc, cfg, micro));
  }

  util::Table table({"application", "PVT=*STREAM", "PVT=compute",
                     "PVT=mixed", "best"});
  util::CsvWriter csv("ablation_pvt_microbench.csv",
                      {"workload", "stream_err", "compute_err", "mixed_err"});
  for (auto* w : workloads::evaluation_suite()) {
    std::vector<double> errs;
    for (auto& c : campaigns) errs.push_back(c->calibration_error(*w));
    std::size_t best = 0;
    for (std::size_t k = 1; k < errs.size(); ++k) {
      if (errs[k] < errs[best]) best = k;
    }
    table.add_row();
    table.add_cell(w->name);
    for (double e : errs) table.add_cell(util::fmt_double(e * 100, 1) + " %");
    table.add_cell(micros[best]->name);
    csv.row({w->name, util::fmt_double(errs[0], 4),
             util::fmt_double(errs[1], 4), util::fmt_double(errs[2], 4)});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nReading: no single microbenchmark wins everywhere — the paper's\n"
      "proposal to keep several PVTs and select per application (Section\n"
      "6.1) is what this table motivates.\n");
  return 0;
}
