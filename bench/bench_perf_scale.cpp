// Extreme-scale performance harness: times every stage of a VaPc campaign
// cell — fleet fabrication, SoA gather, PVT calibration, PMT build, the
// flat and hierarchical budget solves, and the full pipeline run — over a
// module-count ladder (1,920 -> 30k -> 100k -> 1M), checks that the
// hierarchical solve on the 1-level tree is bit-identical to the flat
// solve at every size, and emits a machine-readable JSON report.
//
//   bench_perf_scale [modules] [--repetitions R] [--out FILE]
//                    [--baseline FILE]
//
// The ladder is filtered to sizes <= the module cap, so a CI smoke run
// (e.g. 30k modules) only gates against the baseline entries whose shape it
// actually reproduces. With --baseline, the run fails (exit 1) when any
// matching case's end-to-end cell throughput [modules/s] drops below half
// the committed value — a >2x regression — which keeps the gate insensitive
// to absolute machine speed.
//
// The cell runs a fixed small iteration count (the solve/enforce cost per
// module is iteration-independent; the DES execute scales linearly in it),
// so the throughput metric tracks the per-module pipeline cost the tentpole
// optimizes rather than an arbitrary simulated-application length.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "cluster/cluster_soa.hpp"
#include "cluster/power_tree.hpp"
#include "core/pvt.hpp"
#include "core/test_run.hpp"

using namespace vapb;

namespace {

constexpr int kCellIterations = 4;  ///< DES iterations per timed cell
constexpr double kBudgetPerModuleW = 80.0;  ///< a constrained VaPc point

using bench_clock = std::chrono::steady_clock;

template <typename Fn>
double time_s(const Fn& fn) {
  const auto t0 = bench_clock::now();
  fn();
  return std::chrono::duration<double>(bench_clock::now() - t0).count();
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Flat solve vs hierarchical solve on the 1-level tree: every output field
/// must match bit for bit (the ISSUE's degenerate-case guarantee).
bool identical(const core::BudgetResult& a, const core::BudgetResult& b) {
  if (a.fits_at_fmin != b.fits_at_fmin || a.constrained != b.constrained ||
      !same_bits(a.alpha, b.alpha) ||
      !same_bits(a.target_freq_ghz.value(), b.target_freq_ghz.value()) ||
      !same_bits(a.predicted_total_w.value(), b.predicted_total_w.value()) ||
      a.allocations.size() != b.allocations.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.allocations.size(); ++i) {
    if (!same_bits(a.allocations[i].module_w.value(),
                   b.allocations[i].module_w.value()) ||
        !same_bits(a.allocations[i].cpu_cap_w.value(),
                   b.allocations[i].cpu_cap_w.value()) ||
        !same_bits(a.allocations[i].dram_w.value(),
                   b.allocations[i].dram_w.value())) {
      return false;
    }
  }
  return true;
}

struct CaseResult {
  std::string name;
  std::size_t modules = 0;
  double fabricate_s = 0.0;   ///< Cluster construction (fleet draw)
  double gather_s = 0.0;      ///< AoS -> ClusterSoA
  double pvt_s = 0.0;         ///< system PVT calibration
  double model_s = 0.0;       ///< test run + PMT calibration
  double solve_flat_s = 0.0;  ///< Eq. 6 flat budget solve
  double solve_tree_s = 0.0;  ///< 3-level hierarchical solve
  double cell_s = 0.0;        ///< full VaPc pipeline run (solve..execute)
  double throughput_mps = 0.0;  ///< modules / cell_s — the gated metric
};

CaseResult run_case(std::size_t n, int repetitions) {
  CaseResult res;
  res.modules = n;
  res.name = "vapc_cell_" + std::to_string(n) + "m";

  std::unique_ptr<cluster::Cluster> fleet;
  res.fabricate_s = time_s([&] {
    fleet = std::make_unique<cluster::Cluster>(hw::ha8k(),
                                               bench::master_seed(), n);
  });

  std::unique_ptr<cluster::ClusterSoA> soa;
  res.gather_s = time_s([&] {
    soa = std::make_unique<cluster::ClusterSoA>(
        cluster::ClusterSoA::gather(*fleet));
  });

  // Seeds follow the canonical calibration conventions so the provided
  // artifacts are bit-identical to what the pipeline would build itself.
  const workloads::Workload& app = workloads::mhd();
  std::unique_ptr<core::Pvt> pvt;
  res.pvt_s = time_s([&] {
    pvt = std::make_unique<core::Pvt>(core::Pvt::generate(
        *fleet, workloads::pvt_microbench(), fleet->seed().fork("pvt")));
  });

  const std::vector<hw::ModuleId> alloc = bench::full_allocation(n);
  core::TestRunResult test;
  std::unique_ptr<core::Pmt> pmt;
  res.model_s = time_s([&] {
    test = core::single_module_test_run(
        *fleet, alloc.front(), app,
        fleet->seed().fork("test-run").fork(app.name));
    pmt = std::make_unique<core::Pmt>(core::calibrate_pmt(
        *pvt, test, alloc, fleet->spec().ladder));
  });

  const util::Watts budget_w{kBudgetPerModuleW * static_cast<double>(n)};
  const std::size_t fanouts[] = {16, 24};
  const double headroom[] = {0.90, 0.85};
  const cluster::PowerTree tree =
      cluster::PowerTree::uniform_tdp(*soa, fanouts, headroom);
  const cluster::PowerTree one_level = cluster::PowerTree::flat(n);

  // Correctness gate before any timing: the hierarchical solve on the
  // 1-level degenerate tree reproduces the flat solve bit for bit.
  if (!identical(core::solve_budget(*pmt, budget_w),
                 core::solve_budget_tree(*pmt, one_level, budget_w))) {
    std::fprintf(stderr, "BIT-IDENTITY FAILURE in case %s\n",
                 res.name.c_str());
    std::exit(1);
  }

  res.solve_flat_s = res.solve_tree_s = res.cell_s =
      std::numeric_limits<double>::infinity();
  core::RunConfig config;
  config.iterations = kCellIterations;
  config.tree = &tree;
  const core::Runner runner(*fleet, alloc, config);
  for (int rep = 0; rep < repetitions; ++rep) {
    res.solve_flat_s = std::min(res.solve_flat_s, time_s([&] {
      static_cast<void>(core::solve_budget(*pmt, budget_w));
    }));
    res.solve_tree_s = std::min(res.solve_tree_s, time_s([&] {
      static_cast<void>(core::solve_budget_tree(*pmt, tree, budget_w));
    }));
    res.cell_s = std::min(res.cell_s, time_s([&] {
      const core::RunMetrics m = runner.run_scheme(
          app, core::SchemeKind::kVaPc, budget_w.value(), *pvt, test);
      if (m.modules.size() != n) {
        std::fprintf(stderr, "cell produced %zu outcomes for %zu modules\n",
                     m.modules.size(), n);
        std::exit(1);
      }
    }));
  }
  res.throughput_mps = static_cast<double>(n) / res.cell_s;
  return res;
}

void write_json(const std::string& path, std::size_t modules, int repetitions,
                const std::vector<CaseResult>& cases) {
  std::ostringstream os;
  os << "{\n"
     << "  \"bench\": \"bench_perf_scale\",\n"
     << "  \"modules\": " << modules << ",\n"
     << "  \"repetitions\": " << repetitions << ",\n"
     << "  \"cell_iterations\": " << kCellIterations << ",\n"
     << "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    os << "    {\"name\": \"" << c.name << "\", \"modules\": " << c.modules
       << ", \"fabricate_s\": " << c.fabricate_s
       << ", \"gather_s\": " << c.gather_s << ", \"pvt_s\": " << c.pvt_s
       << ", \"model_s\": " << c.model_s
       << ", \"solve_flat_s\": " << c.solve_flat_s
       << ", \"solve_tree_s\": " << c.solve_tree_s
       << ", \"cell_s\": " << c.cell_s
       << ", \"throughput_mps\": " << c.throughput_mps << "}"
       << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  f << os.str();
  std::printf("wrote %s\n", path.c_str());
}

/// Pulls "throughput_mps" for a case name out of a previously written
/// report. Returns a negative value when the case is absent.
double baseline_throughput(const std::string& text, const std::string& name) {
  const std::string key = "\"name\": \"" + name + "\"";
  std::size_t pos = text.find(key);
  if (pos == std::string::npos) return -1.0;
  const std::string field = "\"throughput_mps\": ";
  pos = text.find(field, pos);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + pos + field.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 1000000);
  const int reps = std::max(opt.repetitions, 1);

  std::vector<std::size_t> ladder{1920, 30000, 100000, 1000000};
  ladder.erase(std::remove_if(ladder.begin(), ladder.end(),
                              [&](std::size_t s) { return s > opt.modules; }),
               ladder.end());
  if (ladder.empty()) ladder.push_back(opt.modules);

  std::printf(
      "== VaPc cell at scale (up to %zu modules, min over %d reps) ==\n\n",
      opt.modules, reps);

  std::vector<CaseResult> cases;
  for (std::size_t n : ladder) cases.push_back(run_case(n, reps));

  std::printf("%-20s %11s %11s %11s %11s %11s %11s %11s %12s\n", "case",
              "fabricate_s", "gather_s", "pvt_s", "model_s", "flat_s",
              "tree_s", "cell_s", "modules/s");
  for (const CaseResult& c : cases) {
    std::printf("%-20s %11.4f %11.4f %11.4f %11.4f %11.4f %11.4f %11.4f "
                "%12.0f\n",
                c.name.c_str(), c.fabricate_s, c.gather_s, c.pvt_s, c.model_s,
                c.solve_flat_s, c.solve_tree_s, c.cell_s, c.throughput_mps);
  }

  if (!opt.out.empty()) write_json(opt.out, opt.modules, reps, cases);

  if (!opt.baseline.empty()) {
    std::ifstream f(opt.baseline);
    if (!f) {
      std::fprintf(stderr, "cannot read baseline %s\n", opt.baseline.c_str());
      return 1;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    const std::string text = ss.str();
    int gated = 0, failures = 0;
    for (const CaseResult& c : cases) {
      const double base = baseline_throughput(text, c.name);
      if (base <= 0.0) {
        std::printf("baseline: no entry for %s (skipped)\n", c.name.c_str());
        continue;
      }
      ++gated;
      if (c.throughput_mps < base / 2.0) {
        ++failures;
        std::printf(
            "PERF REGRESSION: %s throughput %.0f modules/s is below half "
            "the committed baseline %.0f\n",
            c.name.c_str(), c.throughput_mps, base);
      } else {
        std::printf("baseline ok: %s %.0f modules/s (committed %.0f)\n",
                    c.name.c_str(), c.throughput_mps, base);
      }
    }
    if (failures > 0) return 1;
    std::printf("baseline gate passed on %d case%s\n", gated,
                gated == 1 ? "" : "s");
  }
  return 0;
}
