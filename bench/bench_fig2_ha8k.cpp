// Figure 2: module power and performance variation on the 1,920-module HA8K
// system for *DGEMM and MHD.
//
//   (i)   per-module power characteristics, uncapped (mean/sd/Vp for module,
//         CPU and DRAM power);
//   (ii)  CPU frequency vs CPU power under uniform module caps (Vf grows as
//         the cap tightens);
//   (iii) normalized execution time vs module power (Vt tracks Vf for
//         *DGEMM; synchronization hides it for MHD).
//
// The Section-4 caps are application-dependent uniform caps (the paper
// derives Ccpu from the application's average power profile), i.e. the Pc
// scheme.
#include <cstdio>

#include "bench/common.hpp"
#include "stats/summary.hpp"
#include "util/csv.hpp"

using namespace vapb;

namespace {

void panel_i(core::Campaign& campaign, const workloads::Workload& w) {
  const core::RunMetrics& m = campaign.uncapped(w);
  auto mod = stats::summarize(m.module_powers_w());
  auto cpu = stats::summarize(m.cpu_powers_w());
  auto dram = stats::summarize(m.dram_powers_w());
  std::printf("%-8s (i) uncapped power characteristics:\n", w.name.c_str());
  std::printf("   module: avg=%6.1f W  sd=%5.2f  Vp=%.2f\n", mod.mean,
              mod.stddev, mod.max / mod.min);
  std::printf("   CPU:    avg=%6.1f W  sd=%5.2f  Vp=%.2f\n", cpu.mean,
              cpu.stddev, cpu.max / cpu.min);
  std::printf("   DRAM:   avg=%6.1f W  sd=%5.2f  Vp=%.2f\n", dram.mean,
              dram.stddev, dram.max / dram.min);
}

void panels_ii_iii(core::Campaign& campaign, const workloads::Workload& w,
                   const std::vector<double>& cms, std::size_t n,
                   const std::string& tag) {
  util::CsvWriter csv_ii("fig2ii_" + tag + ".csv",
                         {"cm_w", "module", "freq_ghz", "cpu_w"});
  util::CsvWriter csv_iii("fig2iii_" + tag + ".csv",
                          {"cm_w", "module", "norm_time", "module_w"});
  std::printf("%-8s (ii)+(iii) under uniform caps:\n", w.name.c_str());
  std::printf("   %-14s %-10s %6s %6s %6s\n", "Cm", "Ccpu", "Vf", "Vp", "Vt");
  const core::RunMetrics& base = campaign.uncapped(w);
  std::printf("   %-14s %-10s %6.2f %6.2f %6.2f\n", "No", "-", base.vf(),
              base.vp(), 1.0);
  for (double cm : cms) {
    // Section 4 applies uniform application-dependent caps directly (no
    // feasibility gate): run the Pc scheme straight through the runner.
    core::RunMetrics m = campaign.runner().run_scheme(
        w, core::SchemeKind::kPc, cm * static_cast<double>(n),
        campaign.pvt(), campaign.test_run(w));
    double vt = core::vt_normalized(m, base);
    std::printf("   %-14s %-10s %6.2f %6.2f %6.2f\n",
                (util::fmt_double(cm, 0) + " W").c_str(),
                util::fmt_watts(m.modules.front().cpu_cap_w).c_str(), m.vf(),
                m.vp(), vt);
    auto norm = core::normalized_times(m, base);
    for (std::size_t i = 0; i < m.modules.size(); ++i) {
      csv_ii.row_numeric({cm, static_cast<double>(i),
                          m.modules[i].op.perf_freq_ghz,
                          m.modules[i].op.cpu_w});
      csv_iii.row_numeric({cm, static_cast<double>(i), norm[i],
                           m.modules[i].op.module_w()});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = vapb::bench::parse_options(argc, argv).modules;
  std::printf("== Figure 2: HA8K module power/performance variation "
              "(%zu modules) ==\n\n",
              n);
  cluster::Cluster cluster(hw::ha8k(), bench::master_seed(), n);
  core::Campaign campaign(cluster, bench::full_allocation(n));

  panel_i(campaign, workloads::dgemm());
  panels_ii_iii(campaign, workloads::dgemm(), {110, 100, 90, 80, 70, 60}, n,
                "dgemm");
  std::printf("\n");
  panel_i(campaign, workloads::mhd());
  panels_ii_iii(campaign, workloads::mhd(), {110, 100, 90, 80, 70, 60}, n,
                "mhd");
  std::printf(
      "\nPaper targets: module Vp ~1.3 uncapped (1.2-1.5 across benchmarks),\n"
      "DRAM Vp ~2.8; *DGEMM Vf 1.20->1.40 as Cm drops 110->70 with Vt up to\n"
      "1.64; MHD Vf up to 1.76 at Cm=60 with Vt ~1.0.\n"
      "Per-module series written to fig2{ii,iii}_{dgemm,mhd}.csv\n");
  return 0;
}
