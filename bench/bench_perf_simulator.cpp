// Simulator micro-performance (google-benchmark): cost of the building
// blocks that the experiment benches compose — cluster fabrication, PVT
// generation, the budgeting solve, operating-point resolution and the
// discrete-event engine at increasing rank counts.
#include <benchmark/benchmark.h>

#include <numeric>

#include "core/campaign.hpp"
#include "des/reference_engine.hpp"
#include "workloads/catalog.hpp"
#include "workloads/programs.hpp"

using namespace vapb;

namespace {

void BM_ClusterFabrication(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    cluster::Cluster c(hw::ha8k(), util::SeedSequence(1), n);
    benchmark::DoNotOptimize(c.module(0).variation().cpu_dyn);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ClusterFabrication)->Arg(64)->Arg(512)->Arg(1920);

void BM_PvtGeneration(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  cluster::Cluster c(hw::ha8k(), util::SeedSequence(1), n);
  for (auto _ : state) {
    core::Pvt pvt = core::Pvt::generate(c, workloads::pvt_microbench(),
                                        util::SeedSequence(2),
                                        /*measure_seconds=*/0.05);
    benchmark::DoNotOptimize(pvt.entry(0).cpu_max);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_PvtGeneration)->Arg(64)->Arg(512)->Arg(1920);

void BM_BudgetSolve(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  cluster::Cluster c(hw::ha8k(), util::SeedSequence(1), n);
  std::vector<hw::ModuleId> alloc(n);
  std::iota(alloc.begin(), alloc.end(), hw::ModuleId{0});
  core::Pmt pmt = core::oracle_pmt(c, alloc, workloads::mhd(),
                                   util::SeedSequence(3));
  for (auto _ : state) {
    core::BudgetResult r =
        core::solve_budget(pmt, util::Watts{70.0 * static_cast<double>(n)});
    benchmark::DoNotOptimize(r.alpha);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_BudgetSolve)->Arg(64)->Arg(1920);

void BM_RaplOperatingPoint(benchmark::State& state) {
  cluster::Cluster c(hw::ha8k(), util::SeedSequence(1), 1);
  hw::Rapl rapl(c.module(0));
  rapl.set_cpu_limit(util::Watts{70.0});
  const auto& p = workloads::dgemm().profile;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rapl.operating_point(p).perf_freq_ghz);
  }
}
BENCHMARK(BM_RaplOperatingPoint);

std::vector<des::RankProgram> halo3d_programs(std::size_t n) {
  return workloads::build_programs(
      workloads::mhd(), n, 10, [](std::size_t r, int) {
        return 1.0 + 0.001 * static_cast<double>(r % 7);
      });
}

// The event-driven engine, compile included (the Runner's per-execute path).
void BM_DesEngineHalo3D(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  auto programs = halo3d_programs(n);
  des::Engine engine;
  for (auto _ : state) {
    des::RunResult r = engine.run(programs);
    benchmark::DoNotOptimize(r.makespan_s);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n) * 10);
}
BENCHMARK(BM_DesEngineHalo3D)->Arg(64)->Arg(512)->Arg(1920);

// Same programs on a precompiled image: the pure scheduling cost.
void BM_DesEngineHalo3DImage(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  des::ProgramImage image = des::ProgramImage::compile(halo3d_programs(n));
  des::Engine engine;
  for (auto _ : state) {
    des::RunResult r = engine.run(image);
    benchmark::DoNotOptimize(r.makespan_s);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n) * 10);
}
BENCHMARK(BM_DesEngineHalo3DImage)->Arg(64)->Arg(512)->Arg(1920);

// The retained polling oracle: the before-side of the perf comparison.
void BM_DesEngineHalo3DReference(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  auto programs = halo3d_programs(n);
  des::ReferenceEngine engine;
  for (auto _ : state) {
    des::RunResult r = engine.run(programs);
    benchmark::DoNotOptimize(r.makespan_s);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n) * 10);
}
BENCHMARK(BM_DesEngineHalo3DReference)->Arg(64)->Arg(512)->Arg(1920);

void BM_DesEngineAllreduce(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  auto programs = workloads::build_programs(
      workloads::mvmc(), n, 10, [](std::size_t, int) { return 1.0; });
  des::Engine engine;
  for (auto _ : state) {
    des::RunResult r = engine.run(programs);
    benchmark::DoNotOptimize(r.makespan_s);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n) * 10);
}
BENCHMARK(BM_DesEngineAllreduce)->Arg(64)->Arg(1920);

void BM_DesEngineAllreduceReference(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  auto programs = workloads::build_programs(
      workloads::mvmc(), n, 10, [](std::size_t, int) { return 1.0; });
  des::ReferenceEngine engine;
  for (auto _ : state) {
    des::RunResult r = engine.run(programs);
    benchmark::DoNotOptimize(r.makespan_s);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n) * 10);
}
BENCHMARK(BM_DesEngineAllreduceReference)->Arg(64)->Arg(1920);

// Program construction itself: the image builder vs the AoS vectors it
// replaced on the Runner's hot path.
void BM_BuildPrograms(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto programs = workloads::build_programs(
        workloads::mhd(), n, 10, [](std::size_t, int) { return 1.0; });
    benchmark::DoNotOptimize(programs.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n) * 10);
}
BENCHMARK(BM_BuildPrograms)->Arg(64)->Arg(1920);

void BM_BuildProgramImage(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto image = workloads::build_program_image(
        workloads::mhd(), n, 10, [](std::size_t, int) { return 1.0; });
    benchmark::DoNotOptimize(image.total_ops());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n) * 10);
}
BENCHMARK(BM_BuildProgramImage)->Arg(64)->Arg(1920);

void BM_EndToEndScheme(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  cluster::Cluster c(hw::ha8k(), util::SeedSequence(1), n);
  std::vector<hw::ModuleId> alloc(n);
  std::iota(alloc.begin(), alloc.end(), hw::ModuleId{0});
  core::RunConfig cfg;
  cfg.iterations = 5;
  core::Campaign campaign(c, alloc, cfg);
  const auto& w = workloads::mhd();
  const auto& test = campaign.test_run(w);
  core::Runner runner(c, alloc, cfg);
  for (auto _ : state) {
    core::RunMetrics m = runner.run_scheme(w, core::SchemeKind::kVaPc,
                                           70.0 * n, campaign.pvt(), test);
    benchmark::DoNotOptimize(m.makespan_s);
  }
}
BENCHMARK(BM_EndToEndScheme)->Arg(64)->Arg(512);

}  // namespace
