// Extension: does the framework generalize beyond the evaluation system?
//
// The paper evaluates budgeting on HA8K only (the one system with RAPL
// capping + DRAM measurement). Here the identical pipeline — *STREAM PVT,
// two test runs, alpha solve — runs on the Cab (Sandy Bridge) preset and a
// synthetic wide-variation system, checking that the speedup mechanism is a
// property of the method, not of one machine's calibration.
#include <cstdio>

#include "bench/common.hpp"
#include "hw/arch_io.hpp"
#include "util/csv.hpp"

using namespace vapb;

namespace {

void evaluate(const hw::ArchSpec& spec, std::size_t modules, double cm_w,
              util::CsvWriter& csv) {
  cluster::Cluster cluster(spec, bench::master_seed(), modules);
  core::Campaign campaign(cluster, bench::full_allocation(modules));
  const auto& w = workloads::mhd();
  core::CellResult cell =
      campaign.run_cell(w, cm_w * static_cast<double>(modules),
                        {core::SchemeKind::kNaive, core::SchemeKind::kPc,
                         core::SchemeKind::kVaFs});
  double vp = campaign.uncapped(w).vp();
  double pc = cell.scheme(core::SchemeKind::kPc).speedup_vs_naive;
  double vafs = cell.scheme(core::SchemeKind::kVaFs).speedup_vs_naive;
  std::printf("%-28s %8.2f %11.2fx %12.2fx\n", spec.system.c_str(), vp, pc,
              vafs);
  csv.row({spec.system, util::fmt_double(vp, 3), util::fmt_double(pc, 3),
           util::fmt_double(vafs, 3)});
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = bench::parse_options(argc, argv, 384).modules;
  std::printf("== Extension: framework generality across architectures "
              "(%zu modules, MHD @ Cm=70W) ==\n\n",
              n);
  util::CsvWriter csv("ext_cross_arch.csv",
                      {"system", "uncapped_vp", "pc_speedup", "vafs_speedup"});
  std::printf("%-28s %8s %12s %12s\n", "system", "Vp", "Pc vs Naive",
              "VaFs vs Naive");

  evaluate(hw::ha8k(), n, 70.0, csv);

  // Cab: Sandy Bridge, narrower ladder (1.2-2.6), 115 W TDP. The workload
  // model is frequency-normalized, so the same pipeline applies.
  evaluate(hw::cab(), n, 70.0, csv);

  // A hypothetical near-threshold part with twice HA8K's variation — the
  // trend the paper warns about ("these manufacturing variations ... are
  // expected to worsen").
  hw::ArchSpec wide = hw::arch_from_config_text(R"(
[system]
name = FutureWideVariation
microarch = hypothetical NTV part
nodes = 1024
procs_per_node = 2
tdp_cpu_w = 130
tdp_dram_w = 62
[ladder]
fmin_ghz = 1.2
fmax_ghz = 2.7
step_ghz = 0.1
[variation]
cpu_dyn_sd = 0.084
cpu_dyn_lo = 0.73
cpu_dyn_hi = 1.31
cpu_static_sd = 0.12
cpu_static_lo = 0.64
cpu_static_hi = 1.38
dram_sd = 0.25
dram_lo = 0.2
dram_hi = 1.9
)");
  evaluate(wide, n, 70.0, csv);

  std::printf(
      "\nThe speedup is a property of the method and grows with the fleet's\n"
      "variation — doubling the variation roughly doubles what variation\n"
      "awareness is worth, the paper's motivation for future systems.\n");
  return 0;
}
