// Extension (paper Section 7 future work): dynamic reallocation of power
// across application phases.
//
// A phased application (compute-bound solve + bandwidth-bound exchange) runs
// under one power budget three ways:
//   blended-static    one solve against the iteration-weighted blend
//                     (violates the budget in the underestimated phase),
//   worst-case static the deployable static baseline (safe but slow),
//   dynamic           re-solve at every phase boundary (safe AND fast).
#include <cstdio>

#include "bench/common.hpp"
#include "core/dynamic.hpp"
#include "util/csv.hpp"

using namespace vapb;

int main(int argc, char** argv) {
  const std::size_t n = bench::parse_options(argc, argv, 384).modules;
  std::printf("== Extension: phase-aware dynamic power reallocation "
              "(%zu modules) ==\n\n",
              n);
  cluster::Cluster cluster(hw::ha8k(), bench::master_seed(), n);
  core::Campaign campaign(cluster, bench::full_allocation(n));

  // HPL-like: compute-dominated update phases alternating with
  // bandwidth-dominated swap phases.
  core::PhasedApplication app = core::hpl_like_application(2, 6, 4);

  util::CsvWriter csv("ext_dynamic_phases.csv",
                      {"cm_w", "variant", "scheme", "makespan_s",
                       "peak_power_kw", "energy_mj"});
  for (core::SchemeKind scheme :
       {core::SchemeKind::kVaPc, core::SchemeKind::kVaFs}) {
    std::printf("scheme: %s\n", core::scheme_name(scheme).c_str());
    std::printf("  %-8s %-18s %10s %12s %10s\n", "Cm", "variant", "makespan",
                "peak power", "energy");
    for (double cm : {90.0, 80.0, 70.0}) {
      double budget = cm * static_cast<double>(n);
      struct Row {
        const char* variant;
        core::DynamicRunResult r;
      };
      Row rows[] = {
          {"blended-static",
           core::run_phased_static(campaign, app, scheme, budget)},
          {"worst-case-static",
           core::run_phased_static_worstcase(campaign, app, scheme, budget)},
          {"dynamic", core::run_phased_dynamic(campaign, app, scheme, budget)},
      };
      for (const Row& row : rows) {
        bool violated = row.r.peak_power_w > budget * 1.01;
        std::printf("  %-8s %-18s %9.1fs %9.1f kW%s %7.1f MJ\n",
                    (util::fmt_double(cm, 0) + " W").c_str(), row.variant,
                    row.r.makespan_s, row.r.peak_power_w / 1000.0,
                    violated ? "!" : " ", row.r.energy_j / 1e6);
        csv.row({util::fmt_double(cm, 0), row.variant,
                 core::scheme_name(scheme),
                 util::fmt_double(row.r.makespan_s, 3),
                 util::fmt_double(row.r.peak_power_w / 1000.0, 3),
                 util::fmt_double(row.r.energy_j / 1e6, 3)});
      }
    }
    std::printf("\n");
  }
  std::printf(
      "'!' marks a budget violation. The blended static either violates the\n"
      "budget (DRAM of the bandwidth phase is an uncapped consequence) or\n"
      "wastes it; dynamic re-budgeting adheres in every phase and recovers\n"
      "the worst-case static's performance loss.\n");
  return 0;
}
