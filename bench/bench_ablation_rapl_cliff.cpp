// Design-choice ablation: the two RAPL behaviour knobs DESIGN.md calls out.
//
//  (a) the below-fmin throttling cliff exponent — how "rapid" the paper's
//      "rapid degradation below ~40 W" is. Sweeping it shows the Naive
//      scheme's worst-case slowdown (and therefore the headline speedups)
//      hinge on this regime, while the variation-aware schemes barely move
//      (they avoid the cliff by construction).
//  (b) the RAPL control-performance penalty — the dynamic-control cost that
//      separates frequency selection (VaFs) from power capping (VaPc).
#include <cstdio>

#include "bench/common.hpp"
#include "util/csv.hpp"

using namespace vapb;

int main(int argc, char** argv) {
  const std::size_t n = bench::parse_options(argc, argv, 384).modules;
  cluster::Cluster cluster(hw::ha8k(), bench::master_seed(), n);
  auto alloc = bench::full_allocation(n);
  const workloads::Workload& w = workloads::bt();
  const double budget = 50.0 * static_cast<double>(n);  // the 5.4X cell

  std::printf("== Ablation (a): throttling-cliff exponent, NPB-BT @ Cm=50W "
              "(%zu modules) ==\n\n", n);
  util::Table ta({"cliff exponent", "Naive Vf", "VaFs speedup",
                  "VaPc speedup"});
  util::CsvWriter csva("ablation_cliff.csv",
                       {"exponent", "naive_vf", "vafs", "vapc"});
  for (double exp : {1.0, 3.0, 5.0, 7.0, 9.0}) {
    core::RunConfig cfg;
    cfg.rapl.cliff_exponent = exp;
    core::Campaign campaign(cluster, alloc, cfg);
    core::CellResult cell = campaign.run_cell(
        w, budget, {core::SchemeKind::kNaive, core::SchemeKind::kVaPc,
                    core::SchemeKind::kVaFs});
    double naive_vf = cell.scheme(core::SchemeKind::kNaive).metrics.vf();
    double vafs = cell.scheme(core::SchemeKind::kVaFs).speedup_vs_naive;
    double vapc = cell.scheme(core::SchemeKind::kVaPc).speedup_vs_naive;
    ta.add_row();
    ta.add_cell(exp, 1);
    ta.add_cell(naive_vf, 2);
    ta.add_cell(util::fmt_double(vafs, 2) + "x");
    ta.add_cell(util::fmt_double(vapc, 2) + "x");
    csva.row_numeric({exp, naive_vf, vafs, vapc});
  }
  std::printf("%s", ta.str().c_str());
  std::printf("\nThe default (7.0) lands the flagship cell near the paper's "
              "5.4x.\n\n");

  std::printf("== Ablation (b): RAPL control penalty, MHD @ Cm=70W ==\n\n");
  util::Table tb({"control penalty", "VaPc speedup", "VaFs speedup",
                  "VaFs advantage"});
  util::CsvWriter csvb("ablation_penalty.csv", {"penalty", "vapc", "vafs"});
  const workloads::Workload& m = workloads::mhd();
  for (double pen : {0.0, 0.01, 0.03, 0.06, 0.10}) {
    core::RunConfig cfg;
    cfg.rapl.control_perf_penalty = pen;
    core::Campaign campaign(cluster, alloc, cfg);
    core::CellResult cell = campaign.run_cell(
        m, 70.0 * static_cast<double>(n),
        {core::SchemeKind::kNaive, core::SchemeKind::kVaPc,
         core::SchemeKind::kVaFs});
    double vapc = cell.scheme(core::SchemeKind::kVaPc).speedup_vs_naive;
    double vafs = cell.scheme(core::SchemeKind::kVaFs).speedup_vs_naive;
    tb.add_row();
    tb.add_cell(util::fmt_double(pen * 100, 0) + " %");
    tb.add_cell(util::fmt_double(vapc, 2) + "x");
    tb.add_cell(util::fmt_double(vafs, 2) + "x");
    tb.add_cell(util::fmt_double((vafs / vapc - 1.0) * 100.0, 1) + " %");
    csvb.row_numeric({pen, vapc, vafs});
  }
  std::printf("%s", tb.str().c_str());
  std::printf(
      "\nWith no control penalty VaPc and VaFs are nearly tied (VaPc's only\n"
      "handicap is calibration error); the penalty reproduces the paper's\n"
      "consistent VaFs > VaPc ordering.\n");
  return 0;
}
