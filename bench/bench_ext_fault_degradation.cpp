// Extension: fault-injection degradation sweep (not in the paper — the
// robustness counterpart of its threats-to-validity discussion).
//
//   bench_ext_fault_degradation [modules] [--threads T] [--repetitions R]
//                               [--out FILE] [--arch-mix cpu:N,gpu:N,dram:N]
//
// Crosses sensor-noise sigma x drift rate x hard-failure count over the
// power-constrained schemes and their robust counterparts
// (VaPcRobust/VaFsRobust: guard-band solve + violation-triggered
// re-budgeting). For each grid point the table reports the budget-violation
// rate, mean overshoot watts, mean makespan and mean speedup vs Naive —
// the headline claim is that under nonzero noise + drift the robust schemes
// violate the budget less often without giving up their speedup advantage.
// With --out FILE the whole sweep lands as one JSON object
// (BENCH_ext_fault_degradation.json in CI). With --arch-mix the sweep runs
// on a heterogeneous fleet with per-class fault severity (GPUs: noisier
// sensors, faster drift, more throttles; DRAM: quieter on every axis), so
// CI exercises the class-scaled injector paths end to end.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <optional>

#include "bench/common.hpp"
#include "fault/campaign.hpp"

using namespace vapb;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 192);
  std::optional<hw::ClassMix> mix;
  if (!opt.arch_mix.empty()) {
    mix = hw::ClassMix::parse(opt.arch_mix);
  }
  const std::size_t n = mix ? mix->total() : opt.modules;
  std::printf(
      "== Fault-injection degradation sweep (%zu modules%s%s, "
      "%d repetition%s) ==\n\n",
      n, mix ? ", " : "", mix ? mix->str().c_str() : "", opt.repetitions,
      opt.repetitions == 1 ? "" : "s");

  const cluster::Cluster cluster = [&]() -> cluster::Cluster {
    if (mix && !mix->homogeneous_cpu()) {
      return cluster::Cluster(hw::ha8k(), bench::master_seed(), *mix);
    }
    return cluster::Cluster(hw::ha8k(), bench::master_seed(), n);
  }();

  core::CampaignSpec spec;
  spec.workloads = {&workloads::mhd(), &workloads::dgemm()};
  for (double cm : {90.0, 80.0}) {
    spec.budgets_w.push_back(cm * static_cast<double>(n));
  }
  spec.scheme_names = {"Naive", "VaPc", "VaPcRobust", "VaFs", "VaFsRobust"};
  spec.repetitions = opt.repetitions;

  fault::FaultGrid grid;
  grid.base.seed = 1;
  // An imperfectly-enforced cap everywhere faults are on: the channel
  // through which power capping itself can overshoot.
  grid.base.rapl_error_frac = 0.05;
  grid.noise_fracs = {0.0, 0.05};
  grid.drift_fracs = {0.0, 0.04, 0.08};
  grid.failure_counts = {0, 1};
  if (cluster.heterogeneous()) {
    // Class-dependent severity: GPU silicon faults harder than CPU on every
    // axis, DRAM softer — the sweep then covers all three injector scalings.
    grid.base.gpu_sensor_mult = 1.5;
    grid.base.gpu_drift_mult = 1.5;
    grid.base.gpu_throttle_mult = 2.0;
    grid.base.dram_sensor_mult = 0.5;
    grid.base.dram_drift_mult = 0.25;
    grid.base.dram_throttle_mult = 0.5;
  }

  fault::FaultCampaign sweep(cluster, bench::full_allocation(n), opt.threads);
  const fault::FaultCampaignResult result = sweep.run(spec, grid);

  for (const fault::FaultPointResult& point : result.points) {
    std::printf("noise %.3f  drift %.3f  failures %d\n",
                point.scenario.sensor_noise_frac, point.scenario.drift_frac,
                point.scenario.failure_count);
    util::Table t({"scheme", "jobs", "violation rate", "overshoot",
                   "makespan", "speedup vs Naive"});
    for (const fault::FaultSchemeResult& s : point.schemes) {
      t.add_row();
      t.add_cell(s.scheme);
      t.add_cell(static_cast<long long>(s.jobs));
      t.add_cell(util::fmt_double(s.violation_rate * 100.0, 1) + "%");
      t.add_cell(util::fmt_watts(s.mean_overshoot_w));
      t.add_cell(util::fmt_seconds(s.mean_makespan_s));
      t.add_cell(std::isfinite(s.mean_speedup_vs_naive)
                     ? util::fmt_double(s.mean_speedup_vs_naive, 2) + "x"
                     : "-");
    }
    std::printf("%s\n", t.str().c_str());
  }

  // Headline summary: robust vs plain, averaged over the faulty points.
  for (const auto& [plain, robust] :
       {std::pair<const char*, const char*>{"VaPc", "VaPcRobust"},
        std::pair<const char*, const char*>{"VaFs", "VaFsRobust"}}) {
    double plain_viol = 0.0, robust_viol = 0.0;
    std::size_t faulty_points = 0;
    for (const fault::FaultPointResult& point : result.points) {
      if (!point.scenario.any()) continue;
      ++faulty_points;
      plain_viol += point.scheme(plain).violation_rate;
      robust_viol += point.scheme(robust).violation_rate;
    }
    if (faulty_points > 0) {
      std::printf(
          "%s vs %s over %zu faulty grid points: violation rate %.1f%% -> "
          "%.1f%%\n",
          plain, robust, faulty_points,
          100.0 * plain_viol / static_cast<double>(faulty_points),
          100.0 * robust_viol / static_cast<double>(faulty_points));
    }
  }

  if (!opt.out.empty()) {
    std::ofstream f(opt.out);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
      return 1;
    }
    fault::write_fault_campaign_json(result, f);
    std::printf("\nJSON written to %s\n", opt.out.c_str());
  }
  return 0;
}
