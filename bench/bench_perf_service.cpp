// Open-loop load on the BudgetService: a deterministic stream of budget
// solves with a configurable duplicate fraction is pushed through (a) a
// naive one-pipeline-per-request loop that re-runs the test run and PMT
// calibration for every request, and (b) the batched service with in-flight
// dedup, PMT memoization and the finished-reply LRU. Every service reply is
// checked bitwise against the naive solve for its key — the speedup is only
// reported if the answers are identical.
//
//   bench_perf_service [modules] [--requests N] [--dup-frac F]
//                      [--repetitions R] [--threads T] [--out FILE]
//                      [--baseline FILE] [--soak-seconds S]
//
// The gated metric is service requests/sec; with --baseline the run fails
// when it drops below half the committed value. Latency percentiles come
// from per-request completion handlers (the service itself never reads a
// clock — timestamps live in bench-side closures). --soak-seconds switches
// to a sustained-load soak: the stream is cycled for ~S seconds and the run
// fails if any reply is dropped or mismatched.
#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/calibration_cache.hpp"
#include "core/scheme_registry.hpp"
#include "service/budget_service.hpp"

using namespace vapb;

namespace {

using bench_clock = std::chrono::steady_clock;

struct ServiceOptions {
  std::size_t modules = 1920;
  std::size_t threads = 0;
  int repetitions = 3;
  std::size_t requests = 1024;
  double dup_frac = 0.5;
  double soak_seconds = 0.0;
  std::string out;
  std::string baseline;
};

ServiceOptions parse(int argc, char** argv) {
  try {
    util::CliArgs args(argc, argv,
                       {"modules", "threads", "repetitions", "requests",
                        "dup-frac", "soak-seconds", "out", "baseline"});
    ServiceOptions opt;
    if (!args.positional().empty()) {
      opt.modules =
          std::strtoul(args.positional().front().c_str(), nullptr, 10);
    }
    opt.modules = static_cast<std::size_t>(
        args.get_long_or("modules", static_cast<long>(opt.modules)));
    opt.threads = static_cast<std::size_t>(args.get_long_or("threads", 0));
    opt.repetitions = static_cast<int>(args.get_long_or("repetitions", 3));
    opt.requests =
        static_cast<std::size_t>(args.get_long_or("requests", 1024));
    opt.dup_frac = args.get_double_or("dup-frac", 0.5);
    opt.soak_seconds = args.get_double_or("soak-seconds", 0.0);
    opt.out = args.get_or("out", "");
    opt.baseline = args.get_or("baseline", "");
    if (opt.modules == 0) throw InvalidArgument("--modules must be > 0");
    if (opt.requests == 0) throw InvalidArgument("--requests must be > 0");
    if (opt.repetitions < 1) {
      throw InvalidArgument("--repetitions must be >= 1");
    }
    if (opt.dup_frac < 0.0 || opt.dup_frac > 1.0) {
      throw InvalidArgument("--dup-frac must be in [0, 1]");
    }
    if (opt.threads > 0) util::ThreadPool::set_global_threads(opt.threads);
    return opt;
  } catch (const Error& e) {
    std::fprintf(stderr,
                 "%s: %s\nusage: %s [modules] [--requests N] [--dup-frac F] "
                 "[--repetitions R] [--threads T] [--out FILE] "
                 "[--baseline FILE] [--soak-seconds S]\n",
                 argv[0], e.what(), argv[0]);
    std::exit(2);
  }
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool identical(const core::BudgetResult& a, const core::BudgetResult& b) {
  if (a.fits_at_fmin != b.fits_at_fmin || a.constrained != b.constrained ||
      !same_bits(a.alpha, b.alpha) ||
      !same_bits(a.target_freq_ghz.value(), b.target_freq_ghz.value()) ||
      !same_bits(a.predicted_total_w.value(), b.predicted_total_w.value()) ||
      a.allocations.size() != b.allocations.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.allocations.size(); ++i) {
    if (!same_bits(a.allocations[i].module_w.value(),
                   b.allocations[i].module_w.value()) ||
        !same_bits(a.allocations[i].cpu_cap_w.value(),
                   b.allocations[i].cpu_cap_w.value()) ||
        !same_bits(a.allocations[i].dram_w.value(),
                   b.allocations[i].dram_w.value())) {
      return false;
    }
  }
  return true;
}

/// One pipeline per request, nothing shared but the system PVT (the same
/// concession CampaignEngine makes): re-runs the single-module test run and
/// the full PMT calibration, then solves. This is the service's competitor.
core::BudgetResult naive_solve(const cluster::Cluster& cluster,
                               const std::vector<hw::ModuleId>& alloc,
                               std::shared_ptr<const core::Pvt> pvt,
                               const service::BudgetRequest& req) {
  const workloads::Workload& w = workloads::by_name(req.workload);
  core::SchemeDefinition def = core::SchemeRegistry::global().get(req.scheme);
  core::RunContext ctx;
  ctx.cluster = &cluster;
  ctx.allocation = alloc;
  ctx.workload = &w;
  ctx.scheme = req.scheme;
  ctx.budget_w = req.budget_w;
  ctx.seed = core::Runner::scheme_seed(cluster, w, req.scheme);
  ctx.pvt = std::move(pvt);
  ctx.test = std::make_shared<const core::TestRunResult>(
      core::single_module_test_run(cluster, alloc.front(), w,
                                   core::test_run_seed(cluster, w)));
  if (def.calibration) def.calibration->calibrate(ctx);
  if (def.power_model) def.power_model->model(ctx);
  def.budget_solve->solve(ctx);
  return std::move(*ctx.budget);
}

/// The deterministic request stream: position i is a duplicate (drawn from
/// a small hot set of Table-4-style cells) with probability dup_frac, and a
/// unique budget solve otherwise. No RNG state — the i-th request is a pure
/// function of (i, dup_frac, modules), so every rep replays the same load.
std::vector<service::BudgetRequest> make_stream(std::size_t requests,
                                                double dup_frac,
                                                std::size_t modules) {
  static const char* kHotWorkloads[] = {"MHD", "*DGEMM", "*STREAM", "NPB-BT"};
  static const double kHotCm[] = {90.0, 80.0};
  const auto dup_permille = static_cast<std::uint32_t>(dup_frac * 1000.0);
  std::vector<service::BudgetRequest> stream;
  stream.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    const auto h =
        static_cast<std::uint32_t>(i) * 2654435761u;  // Knuth hash of i
    service::BudgetRequest req;
    req.scheme = "VaPc";
    req.kind = service::RequestKind::kSolve;
    if ((h >> 16) % 1000 < dup_permille) {
      req.workload = kHotWorkloads[h % 4];
      req.budget_w = kHotCm[(h >> 8) % 2] * static_cast<double>(modules);
    } else {
      // Unique budgets: distinct doubles -> distinct cache keys.
      req.workload = "MHD";
      req.budget_w = (70.0 + static_cast<double>(i) * 1e-3) *
                     static_cast<double>(modules);
    }
    stream.push_back(std::move(req));
  }
  return stream;
}

struct LoadResult {
  double elapsed_s = 0.0;
  double rps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  service::BudgetService::Stats stats;
  std::uint64_t mismatches = 0;
  std::uint64_t completed = 0;
};

/// Pushes `stream` through a cold service (fresh reply LRU, cleared
/// calibration cache) and stamps per-request latency in completion
/// handlers. Replies are verified bitwise against `reference` as they land.
LoadResult run_service_pass(
    const ServiceOptions& opt, const service::ClusterState& state,
    const std::vector<service::BudgetRequest>& stream,
    const std::map<std::string, core::BudgetResult>& reference) {
  core::CalibrationCache::global().clear();
  service::ServiceConfig config;
  config.worker_threads = opt.threads;
  LoadResult res;
  std::vector<double> latencies(stream.size(), 0.0);
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> completed{0};
  const auto t0 = bench_clock::now();
  {
    service::BudgetService svc(config);
    svc.register_cluster(state);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const auto submit_t = bench_clock::now();
      const core::BudgetResult* expect = &reference.at(stream[i].cache_key());
      svc.submit(stream[i],
                 [&latencies, &mismatches, &completed, expect, submit_t,
                  i](const service::BudgetReply& reply) {
                   latencies[i] = std::chrono::duration<double>(
                                      bench_clock::now() - submit_t)
                                      .count();
                   if (!reply.ok || !identical(reply.budget, *expect)) {
                     mismatches.fetch_add(1, std::memory_order_relaxed);
                   }
                   completed.fetch_add(1, std::memory_order_relaxed);
                 });
    }
    // Open-loop: wait for the last handler rather than sampling stats with
    // requests still queued. Destruction then just joins the batcher.
    while (completed.load(std::memory_order_relaxed) < stream.size()) {
      std::this_thread::yield();
    }
    res.stats = svc.stats();
  }
  res.elapsed_s =
      std::chrono::duration<double>(bench_clock::now() - t0).count();
  res.rps = static_cast<double>(stream.size()) / res.elapsed_s;
  res.mismatches = mismatches.load();
  res.completed = completed.load();
  std::sort(latencies.begin(), latencies.end());
  const auto pct = [&](double p) {
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(latencies.size() - 1));
    return latencies[idx] * 1e6;
  };
  res.p50_us = pct(0.50);
  res.p95_us = pct(0.95);
  res.p99_us = pct(0.99);
  return res;
}

void write_json(const std::string& path, const ServiceOptions& opt,
                double naive_rps, const LoadResult& best) {
  std::ostringstream os;
  os << "{\n"
     << "  \"bench\": \"bench_perf_service\",\n"
     << "  \"modules\": " << opt.modules << ",\n"
     << "  \"requests\": " << opt.requests << ",\n"
     << "  \"dup_frac\": " << opt.dup_frac << ",\n"
     << "  \"repetitions\": " << opt.repetitions << ",\n"
     << "  \"cases\": [\n"
     << "    {\"name\": \"service_solve\", \"requests_per_s\": " << best.rps
     << ", \"naive_requests_per_s\": " << naive_rps
     << ", \"speedup\": " << best.rps / naive_rps
     << ", \"p50_us\": " << best.p50_us << ", \"p95_us\": " << best.p95_us
     << ", \"p99_us\": " << best.p99_us
     << ", \"computed\": " << best.stats.computed
     << ", \"dedup_hits\": " << best.stats.dedup_hits
     << ", \"reply_hits\": " << best.stats.reply_hits << "}\n"
     << "  ]\n}\n";
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  f << os.str();
  std::printf("wrote %s\n", path.c_str());
}

double baseline_rps(const std::string& text) {
  const std::string field = "\"requests_per_s\": ";
  const std::size_t pos = text.find(field);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + pos + field.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const ServiceOptions opt = parse(argc, argv);

  const auto cluster = std::make_shared<const cluster::Cluster>(
      hw::ha8k(), bench::master_seed(), opt.modules);
  const std::vector<hw::ModuleId> alloc = bench::full_allocation(opt.modules);
  service::ClusterState state;
  state.cluster = cluster;
  state.allocation = alloc;
  state.pvt = std::make_shared<const core::Pvt>(core::Pvt::generate(
      *cluster, workloads::pvt_microbench(), cluster->seed().fork("pvt")));

  const std::vector<service::BudgetRequest> stream =
      make_stream(opt.requests, opt.dup_frac, opt.modules);

  // Ground truth: one naive solve per distinct key (also the identity
  // reference every service reply is checked against).
  std::map<std::string, core::BudgetResult> reference;
  for (const service::BudgetRequest& req : stream) {
    if (!reference.count(req.cache_key())) {
      reference.emplace(req.cache_key(),
                        naive_solve(*cluster, alloc, state.pvt, req));
    }
  }
  std::printf(
      "== BudgetService open-loop load: %zu requests, %.0f%% duplicates, "
      "%zu distinct keys, %zu modules ==\n\n",
      opt.requests, opt.dup_frac * 100.0, reference.size(), opt.modules);

  if (opt.soak_seconds > 0.0) {
    // Sustained load: cycle the stream until the deadline, then drain and
    // require every submitted request to have completed with the right bits.
    core::CalibrationCache::global().clear();
    std::atomic<std::uint64_t> mismatches{0};
    std::atomic<std::uint64_t> completed{0};
    std::uint64_t submitted = 0;
    const auto t0 = bench_clock::now();
    service::BudgetService::Stats stats;
    {
      service::BudgetService svc{service::ServiceConfig{}};
      svc.register_cluster(state);
      while (std::chrono::duration<double>(bench_clock::now() - t0).count() <
             opt.soak_seconds) {
        for (const service::BudgetRequest& req : stream) {
          const core::BudgetResult* expect = &reference.at(req.cache_key());
          svc.submit(req, [&mismatches, &completed,
                           expect](const service::BudgetReply& reply) {
            if (!reply.ok || !identical(reply.budget, *expect)) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
            completed.fetch_add(1, std::memory_order_relaxed);
          });
          ++submitted;
        }
      }
      while (completed.load(std::memory_order_relaxed) < submitted) {
        std::this_thread::yield();
      }
      stats = svc.stats();
    }
    const double elapsed =
        std::chrono::duration<double>(bench_clock::now() - t0).count();
    const std::uint64_t dropped = submitted - completed.load();
    std::printf(
        "soak: %llu requests in %.1fs (%.0f req/s), %llu dropped, "
        "%llu mismatched; computed %llu, dedup %llu, reply hits %llu\n",
        static_cast<unsigned long long>(submitted), elapsed,
        static_cast<double>(submitted) / elapsed,
        static_cast<unsigned long long>(dropped),
        static_cast<unsigned long long>(mismatches.load()),
        static_cast<unsigned long long>(stats.computed),
        static_cast<unsigned long long>(stats.dedup_hits),
        static_cast<unsigned long long>(stats.reply_hits));
    if (dropped != 0 || mismatches.load() != 0) {
      std::fprintf(stderr, "SOAK FAILURE: dropped or mismatched replies\n");
      return 1;
    }
    std::printf("soak passed: zero dropped, zero mismatched\n");
    return 0;
  }

  // Competitor: the naive loop, best of R reps.
  double naive_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < opt.repetitions; ++rep) {
    const auto t0 = bench_clock::now();
    for (const service::BudgetRequest& req : stream) {
      const core::BudgetResult r = naive_solve(*cluster, alloc, state.pvt, req);
      if (!identical(r, reference.at(req.cache_key()))) {
        std::fprintf(stderr, "NAIVE NON-DETERMINISM for %s\n",
                     req.cache_key().c_str());
        return 1;
      }
    }
    naive_s = std::min(
        naive_s,
        std::chrono::duration<double>(bench_clock::now() - t0).count());
  }
  const double naive_rps = static_cast<double>(opt.requests) / naive_s;

  // The service, cold per rep (fresh reply LRU + cleared calibration cache).
  LoadResult best;
  for (int rep = 0; rep < opt.repetitions; ++rep) {
    LoadResult r = run_service_pass(opt, state, stream, reference);
    if (r.completed != stream.size() || r.mismatches != 0) {
      std::fprintf(stderr,
                   "IDENTITY FAILURE: %llu/%zu completed, %llu mismatched\n",
                   static_cast<unsigned long long>(r.completed),
                   stream.size(),
                   static_cast<unsigned long long>(r.mismatches));
      return 1;
    }
    if (rep == 0 || r.rps > best.rps) best = r;
  }

  std::printf("%-16s %12s %12s %10s %10s %10s\n", "case", "req/s",
              "naive req/s", "p50_us", "p95_us", "p99_us");
  std::printf("%-16s %12.0f %12.0f %10.1f %10.1f %10.1f\n", "service_solve",
              best.rps, naive_rps, best.p50_us, best.p95_us, best.p99_us);
  std::printf(
      "speedup %.2fx; computed %llu, dedup hits %llu, reply hits %llu, "
      "evictions %llu, batches %llu (max %llu)\n",
      best.rps / naive_rps,
      static_cast<unsigned long long>(best.stats.computed),
      static_cast<unsigned long long>(best.stats.dedup_hits),
      static_cast<unsigned long long>(best.stats.reply_hits),
      static_cast<unsigned long long>(best.stats.reply_evictions),
      static_cast<unsigned long long>(best.stats.batches),
      static_cast<unsigned long long>(best.stats.max_batch));

  if (!opt.out.empty()) write_json(opt.out, opt, naive_rps, best);

  if (!opt.baseline.empty()) {
    std::ifstream f(opt.baseline);
    if (!f) {
      std::fprintf(stderr, "cannot read baseline %s\n", opt.baseline.c_str());
      return 1;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    const double base = baseline_rps(ss.str());
    if (base <= 0.0) {
      std::fprintf(stderr, "baseline %s has no requests_per_s\n",
                   opt.baseline.c_str());
      return 1;
    }
    if (best.rps < base / 2.0) {
      std::printf(
          "PERF REGRESSION: service %.0f req/s is below half the committed "
          "baseline %.0f\n",
          best.rps, base);
      return 1;
    }
    std::printf("baseline gate passed: %.0f req/s (committed %.0f)\n",
                best.rps, base);
  }
  return 0;
}
