// Shared helpers for the experiment-reproduction benches.
//
// Every bench accepts a uniform command line:
//   bench_xxx [modules] [--modules N] [--threads T] [--repetitions R]
// The positional module count and the VAPB_BENCH_MODULES environment
// variable are honored for backward compatibility; the default is the
// paper's full 1,920-module HA8K configuration. --threads sizes both the
// global thread pool (PVT generation, oracle measurement) and any campaign
// fan-out; --repetitions repeats stochastic sweeps with fresh noise salts.
// CSV series are written next to the binary as <bench>_<series>.csv for
// plotting.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workloads/catalog.hpp"

namespace vapb::bench {

struct Options {
  std::size_t modules = 1920;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  int repetitions = 1;
  std::string out;       ///< machine-readable BENCH_*.json path ("" = none)
  std::string baseline;  ///< committed baseline JSON to gate against
  std::string arch_mix;  ///< per-class fleet, e.g. "cpu:24,gpu:6,dram:2"
};

/// Parses the uniform bench command line and sizes the global thread pool
/// when --threads is given. Prints a diagnostic and exits on bad input.
inline Options parse_options(int argc, char** argv,
                             std::size_t default_modules = 1920) {
  try {
    util::CliArgs args(argc, argv, {"modules", "threads", "repetitions", "out",
                                    "baseline", "arch-mix"});
    Options opt;
    opt.modules = default_modules;
    if (const char* env = std::getenv("VAPB_BENCH_MODULES")) {
      opt.modules = std::strtoul(env, nullptr, 10);
    }
    if (!args.positional().empty()) {
      opt.modules =
          std::strtoul(args.positional().front().c_str(), nullptr, 10);
    }
    opt.modules = static_cast<std::size_t>(
        args.get_long_or("modules", static_cast<long>(opt.modules)));
    opt.threads = static_cast<std::size_t>(args.get_long_or("threads", 0));
    opt.repetitions = static_cast<int>(args.get_long_or("repetitions", 1));
    opt.out = args.get_or("out", "");
    opt.baseline = args.get_or("baseline", "");
    opt.arch_mix = args.get_or("arch-mix", "");
    if (opt.modules == 0) throw InvalidArgument("--modules must be > 0");
    if (opt.repetitions < 1) {
      throw InvalidArgument("--repetitions must be >= 1");
    }
    if (opt.threads > 0) util::ThreadPool::set_global_threads(opt.threads);
    return opt;
  } catch (const Error& e) {
    std::fprintf(stderr,
                 "%s: %s\nusage: %s [modules] [--modules N] [--threads T] "
                 "[--repetitions R] [--out FILE] [--baseline FILE] "
                 "[--arch-mix cpu:N,gpu:N,dram:N]\n",
                 argv[0], e.what(), argv[0]);
    std::exit(2);
  }
}

/// The paper's master seed convention: all benches share one fleet.
inline util::SeedSequence master_seed() { return util::SeedSequence(2015); }

inline std::vector<hw::ModuleId> full_allocation(std::size_t n) {
  std::vector<hw::ModuleId> alloc(n);
  std::iota(alloc.begin(), alloc.end(), hw::ModuleId{0});
  return alloc;
}

/// The checked ("X") cells of Table 4, as average W per module (Cm).
/// Cs [kW] in the paper = Cm * 1920 / 1000.
inline std::vector<double> checked_cm(const std::string& workload) {
  if (workload == "*DGEMM") return {110, 100, 90, 80, 70};
  if (workload == "*STREAM") return {100, 90, 80};
  if (workload == "MHD") return {90, 80, 70, 60};
  if (workload == "NPB-BT") return {80, 70, 60, 50};
  if (workload == "NPB-SP") return {80, 70, 60, 50};
  if (workload == "mVMC") return {80, 70, 60};
  throw InvalidArgument("no Table 4 row for " + workload);
}

inline std::string cs_label(double cm_w, std::size_t n) {
  return util::fmt_double(cm_w * static_cast<double>(n) / 1000.0, 1) + " kW";
}

/// The Figure-7 sweep as one CampaignSpec per workload (each benchmark has
/// its own set of power-constrained budgets).
inline std::vector<core::CampaignSpec> fig7_specs(std::size_t modules,
                                                  int repetitions = 1) {
  std::vector<core::CampaignSpec> specs;
  for (auto* w : workloads::evaluation_suite()) {
    core::CampaignSpec spec;
    spec.workloads = {w};
    for (double cm : checked_cm(w->name)) {
      spec.budgets_w.push_back(cm * static_cast<double>(modules));
    }
    spec.repetitions = repetitions;
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace vapb::bench
