// Shared helpers for the experiment-reproduction benches.
//
// Every bench accepts the module count as argv[1] (or the
// VAPB_BENCH_MODULES environment variable); the default is the paper's full
// 1,920-module HA8K configuration. CSV series are written next to the
// binary as <bench>_<series>.csv for plotting.
#pragma once

#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/catalog.hpp"

namespace vapb::bench {

inline std::size_t module_count(int argc, char** argv,
                                std::size_t fallback = 1920) {
  if (argc > 1) return std::strtoul(argv[1], nullptr, 10);
  if (const char* env = std::getenv("VAPB_BENCH_MODULES")) {
    return std::strtoul(env, nullptr, 10);
  }
  return fallback;
}

/// The paper's master seed convention: all benches share one fleet.
inline util::SeedSequence master_seed() { return util::SeedSequence(2015); }

inline std::vector<hw::ModuleId> full_allocation(std::size_t n) {
  std::vector<hw::ModuleId> alloc(n);
  std::iota(alloc.begin(), alloc.end(), hw::ModuleId{0});
  return alloc;
}

/// The checked ("X") cells of Table 4, as average W per module (Cm).
/// Cs [kW] in the paper = Cm * 1920 / 1000.
inline std::vector<double> checked_cm(const std::string& workload) {
  if (workload == "*DGEMM") return {110, 100, 90, 80, 70};
  if (workload == "*STREAM") return {100, 90, 80};
  if (workload == "MHD") return {90, 80, 70, 60};
  if (workload == "NPB-BT") return {80, 70, 60, 50};
  if (workload == "NPB-SP") return {80, 70, 60, 50};
  if (workload == "mVMC") return {80, 70, 60};
  throw InvalidArgument("no Table 4 row for " + workload);
}

inline std::string cs_label(double cm_w, std::size_t n) {
  return util::fmt_double(cm_w * static_cast<double>(n) / 1000.0, 1) + " kW";
}

}  // namespace vapb::bench
