// Table 4: the benchmark x system-power-constraint scenario matrix.
//   X = power constrained (evaluated), . = not sufficiently constrained,
//   - = too constrained to operate at fmin.
#include <cstdio>
#include <string>

#include "bench/common.hpp"

using namespace vapb;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  const std::size_t n = opt.modules;
  std::printf("== Table 4: power constraints on HA8K (%zu modules) ==\n\n", n);
  cluster::Cluster cluster(hw::ha8k(), bench::master_seed(), n);
  core::CampaignEngine engine(cluster, bench::full_allocation(n), opt.threads);

  const std::vector<double> cms{110, 100, 90, 80, 70, 60, 50};
  std::vector<std::string> headers{"benchmark"};
  for (double cm : cms) {
    headers.push_back("Cs=" + bench::cs_label(cm, n) + " (Cm=" +
                      util::fmt_double(cm, 0) + "W)");
  }
  util::Table table(headers);
  const std::vector<std::pair<std::string, std::string>> paper = {
      {"*DGEMM", "XXXXX--"}, {"*STREAM", ".XXX---"}, {"MHD", "..XXXX-"},
      {"NPB-BT", "...XXXX"}, {"NPB-SP", "...XXXX"},  {"mVMC", "...XXX-"}};
  bool all_match = true;
  for (auto* w : workloads::evaluation_suite()) {
    table.add_row();
    table.add_cell(w->name);
    std::string row;
    for (double cm : cms) {
      core::CellClass c = engine.classify(*w, cm * static_cast<double>(n));
      char mark = c == core::CellClass::kValid ? 'X'
                  : c == core::CellClass::kUnconstrained ? '.' : '-';
      row += mark;
      table.add_cell(std::string(1, mark));
    }
    for (const auto& [name, expected] : paper) {
      if (name == w->name && expected != row) {
        all_match = false;
        std::printf("MISMATCH %s: got %s, paper %s\n", name.c_str(),
                    row.c_str(), expected.c_str());
      }
    }
  }
  std::printf("%s", table.str().c_str());
  std::printf("\nPaper matrix:  *DGEMM XXXXX-- | *STREAM .XXX--- | "
              "MHD ..XXXX- | NPB-BT ...XXXX | NPB-SP ...XXXX | mVMC ...XXX-\n");
  std::printf("classification %s the paper's Table 4.\n",
              all_match ? "MATCHES" : "differs from");
  return 0;
}
