// Figure 7: speedup of every budgeting scheme relative to Naive, for each
// evaluation benchmark at each of its power-constrained (Table 4 "X")
// system budgets. The paper's headline: VaFs max 5.40X / mean 1.86X,
// VaPc max 4.03X / mean 1.72X.
//
// Runs on the parallel CampaignEngine: the whole sweep is expanded into
// independent jobs and fanned across --threads workers; the numbers are
// bitwise identical to the serial Campaign driver.
#include <algorithm>
#include <cstdio>

#include "bench/common.hpp"
#include "stats/bootstrap.hpp"
#include "util/csv.hpp"

using namespace vapb;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  const std::size_t n = opt.modules;
  std::printf("== Figure 7: speedup vs Naive (%zu modules) ==\n\n", n);
  cluster::Cluster cluster(hw::ha8k(), bench::master_seed(), n);
  core::CampaignEngine engine(cluster, bench::full_allocation(n), opt.threads);

  util::CsvWriter csv("fig7_speedup.csv",
                      {"workload", "cs_kw", "scheme", "repetition", "speedup"});
  struct Best {
    double max_speedup = 0.0;
    std::string where;
    double sum = 0.0;
    int count = 0;
    std::vector<double> all;
  };
  Best vafs, vapc;

  for (const core::CampaignSpec& spec : bench::fig7_specs(n, opt.repetitions)) {
    const workloads::Workload& w = *spec.workloads.front();
    core::CampaignResult result = engine.run(spec);
    std::printf("%s\n", w.name.c_str());
    std::printf("  %-12s %8s %8s %8s %8s %8s %8s\n", "Cs", "Naive", "Pc",
                "VaPcOr", "VaPc", "VaFsOr", "VaFs");
    for (double cm : bench::checked_cm(w.name)) {
      double budget = cm * static_cast<double>(n);
      std::printf("  %-12s", bench::cs_label(cm, n).c_str());
      for (core::SchemeKind kind : spec.schemes) {
        for (int rep = 0; rep < spec.repetitions; ++rep) {
          const core::CampaignJobResult* job =
              result.find(w.name, budget, kind, rep);
          if (rep == 0) std::printf(" %7.2fx", job->speedup_vs_naive);
          csv.row({w.name, util::fmt_double(budget / 1000.0, 1),
                   core::scheme_name(kind), std::to_string(rep),
                   util::fmt_double(job->speedup_vs_naive, 4)});
          auto track = [&](Best& b) {
            if (job->speedup_vs_naive > b.max_speedup) {
              b.max_speedup = job->speedup_vs_naive;
              b.where = w.name + " @ " + bench::cs_label(cm, n);
            }
            b.sum += job->speedup_vs_naive;
            ++b.count;
            b.all.push_back(job->speedup_vs_naive);
          };
          if (kind == core::SchemeKind::kVaFs) track(vafs);
          if (kind == core::SchemeKind::kVaPc) track(vapc);
        }
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  util::Rng ci_rng(bench::master_seed().fork("fig7-ci"));
  auto ci_vafs = stats::bootstrap_mean_ci(vafs.all, 0.95, 2000, ci_rng);
  auto ci_vapc = stats::bootstrap_mean_ci(vapc.all, 0.95, 2000, ci_rng);
  std::printf("VaFs: max %.2fx (%s), mean %.2fx [95%% CI %.2f-%.2f] over %d "
              "cells  [paper: 5.40x max, 1.86x mean]\n",
              vafs.max_speedup, vafs.where.c_str(), vafs.sum / vafs.count,
              ci_vafs.lo, ci_vafs.hi, vafs.count);
  std::printf("VaPc: max %.2fx (%s), mean %.2fx [95%% CI %.2f-%.2f] over %d "
              "cells  [paper: 4.03x max, 1.72x mean]\n",
              vapc.max_speedup, vapc.where.c_str(), vapc.sum / vapc.count,
              ci_vapc.lo, ci_vapc.hi, vapc.count);
  std::printf("Full grid written to fig7_speedup.csv\n");
  return 0;
}
