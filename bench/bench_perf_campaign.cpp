// Campaign-engine performance harness: times the Figure-7 sweep three ways
// (serial cold-cache, parallel cold-cache, parallel warm-cache) and checks
// that the parallel run is bitwise identical to the serial one.
//
//   bench_perf_campaign [modules] [--threads T] [--repetitions R]
//
// The serial-vs-parallel ratio shows the thread-pool fan-out win (the
// acceptance target is >= 3x on 8 threads for the full sweep); the
// cold-vs-warm ratio shows what the calibration cache saves when a sweep
// is re-run against the same fleet. The determinism check is a hard
// failure; the speedups are reported but not asserted, since they depend
// on the machine's core count.
// With --out FILE, a machine-readable JSON summary (BENCH_perf_campaign.json
// in CI) records the three wall times, the derived speedups and the job
// count.
#include <bit>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "bench/common.hpp"
#include "util/telemetry.hpp"

using namespace vapb;

namespace {

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool same_metrics(const core::RunMetrics& a, const core::RunMetrics& b) {
  if (a.feasible != b.feasible || a.constrained != b.constrained) return false;
  if (!same_bits(a.alpha, b.alpha) ||
      !same_bits(a.target_freq_ghz, b.target_freq_ghz) ||
      !same_bits(a.makespan_s, b.makespan_s) ||
      !same_bits(a.total_power_w, b.total_power_w) ||
      !same_bits(a.total_cpu_power_w, b.total_cpu_power_w) ||
      !same_bits(a.total_dram_power_w, b.total_dram_power_w)) {
    return false;
  }
  if (a.modules.size() != b.modules.size()) return false;
  for (std::size_t i = 0; i < a.modules.size(); ++i) {
    const auto& ma = a.modules[i];
    const auto& mb = b.modules[i];
    if (ma.id != mb.id || ma.op.throttled != mb.op.throttled) return false;
    if (!same_bits(ma.alloc_module_w, mb.alloc_module_w) ||
        !same_bits(ma.cpu_cap_w, mb.cpu_cap_w) ||
        !same_bits(ma.op.freq_ghz, mb.op.freq_ghz) ||
        !same_bits(ma.op.duty, mb.op.duty) ||
        !same_bits(ma.op.cpu_w, mb.op.cpu_w) ||
        !same_bits(ma.op.dram_w, mb.op.dram_w) ||
        !same_bits(ma.op.perf_freq_ghz, mb.op.perf_freq_ghz)) {
      return false;
    }
  }
  return true;
}

struct SweepRun {
  std::vector<core::CampaignResult> results;
  double elapsed_s = 0.0;
  core::CalibrationCache::Stats cache;
  util::Telemetry telemetry;  ///< per-stage timings over the whole sweep
};

/// Runs the whole Figure-7 sweep (engine construction included: the PVT is
/// part of the cost a cold run pays).
SweepRun run_sweep(const cluster::Cluster& cluster, std::size_t modules,
                   std::size_t threads, int repetitions) {
  auto before = core::CalibrationCache::global().stats();
  auto t0 = std::chrono::steady_clock::now();
  core::CampaignEngine engine(cluster, bench::full_allocation(modules),
                              threads);
  SweepRun run;
  for (const core::CampaignSpec& spec :
       bench::fig7_specs(modules, repetitions)) {
    run.results.push_back(engine.run(spec));
    run.telemetry.merge(run.results.back().telemetry);
  }
  auto t1 = std::chrono::steady_clock::now();
  run.elapsed_s = std::chrono::duration<double>(t1 - t0).count();
  auto after = core::CalibrationCache::global().stats();
  run.cache.hits = after.hits - before.hits;
  run.cache.misses = after.misses - before.misses;
  run.cache.entries = after.entries;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  const std::size_t n = opt.modules;
  std::size_t threads = opt.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  std::printf("== Campaign engine performance (%zu modules, %zu threads, "
              "%d repetition%s) ==\n\n",
              n, threads, opt.repetitions, opt.repetitions == 1 ? "" : "s");
  cluster::Cluster cluster(hw::ha8k(), bench::master_seed(), n);

  core::CalibrationCache::global().clear();
  SweepRun serial = run_sweep(cluster, n, 1, opt.repetitions);
  std::printf("serial   cold cache: %7.3f s  (%zu hits, %zu misses)\n",
              serial.elapsed_s, serial.cache.hits, serial.cache.misses);

  core::CalibrationCache::global().clear();
  SweepRun parallel = run_sweep(cluster, n, threads, opt.repetitions);
  std::printf("parallel cold cache: %7.3f s  (%zu hits, %zu misses)\n",
              parallel.elapsed_s, parallel.cache.hits, parallel.cache.misses);

  SweepRun warm = run_sweep(cluster, n, threads, opt.repetitions);
  std::printf("parallel warm cache: %7.3f s  (%zu hits, %zu misses)\n\n",
              warm.elapsed_s, warm.cache.hits, warm.cache.misses);

  std::size_t jobs = 0;
  std::size_t mismatches = 0;
  for (std::size_t s = 0; s < serial.results.size(); ++s) {
    const auto& sj = serial.results[s].jobs;
    const auto& pj = parallel.results[s].jobs;
    if (sj.size() != pj.size()) {
      std::printf("DETERMINISM FAILURE: job count %zu vs %zu in sweep %zu\n",
                  sj.size(), pj.size(), s);
      return 1;
    }
    for (std::size_t i = 0; i < sj.size(); ++i) {
      ++jobs;
      if (sj[i].cls != pj[i].cls ||
          !same_bits(sj[i].speedup_vs_naive, pj[i].speedup_vs_naive) ||
          !same_metrics(sj[i].metrics, pj[i].metrics)) {
        ++mismatches;
        std::printf("DETERMINISM FAILURE: %s @ %.0f W, %s, rep %d\n",
                    sj[i].job.workload->name.c_str(), sj[i].job.budget_w,
                    sj[i].job.scheme.c_str(),
                    sj[i].job.repetition);
      }
    }
  }
  if (mismatches != 0) {
    std::printf("%zu of %zu jobs differ between 1 and %zu threads\n",
                mismatches, jobs, threads);
    return 1;
  }
  std::printf("determinism: %zu jobs bitwise identical at 1 vs %zu threads\n",
              jobs, threads);
  std::printf("parallel speedup (cold, serial/parallel): %.2fx\n",
              serial.elapsed_s / parallel.elapsed_s);
  std::printf("cache speedup   (parallel, cold/warm):    %.2fx\n",
              parallel.elapsed_s / warm.elapsed_s);

  std::printf("\nper-stage breakdown (parallel cold sweep):\n");
  std::printf("  %-10s %8s %12s %12s %12s\n", "stage", "calls", "total [s]",
              "mean [ms]", "max [ms]");
  for (const auto& [stage, s] : parallel.telemetry.stages()) {
    std::printf("  %-10s %8llu %12.3f %12.3f %12.3f\n", stage.c_str(),
                static_cast<unsigned long long>(s.calls), s.total_s,
                s.calls != 0 ? 1e3 * s.total_s / static_cast<double>(s.calls)
                             : 0.0,
                1e3 * s.max_s);
  }

  if (!opt.out.empty()) {
    std::ofstream f(opt.out);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
      return 1;
    }
    f << "{\n"
      << "  \"bench\": \"bench_perf_campaign\",\n"
      << "  \"modules\": " << n << ",\n"
      << "  \"threads\": " << threads << ",\n"
      << "  \"repetitions\": " << opt.repetitions << ",\n"
      << "  \"jobs\": " << jobs << ",\n"
      << "  \"serial_cold_s\": " << serial.elapsed_s << ",\n"
      << "  \"parallel_cold_s\": " << parallel.elapsed_s << ",\n"
      << "  \"parallel_warm_s\": " << warm.elapsed_s << ",\n"
      << "  \"parallel_speedup\": " << serial.elapsed_s / parallel.elapsed_s
      << ",\n"
      << "  \"cache_speedup\": " << parallel.elapsed_s / warm.elapsed_s
      << ",\n  \"telemetry\": ";
    parallel.telemetry.write_json(f);
    f << "}\n";
    std::printf("wrote %s\n", opt.out.c_str());
  }
  return 0;
}
