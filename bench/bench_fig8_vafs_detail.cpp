// Figure 8: detailed power-performance behaviour of the VaFs scheme.
//   (i)  *DGEMM and MHD: normalized execution time vs module power across
//        the Cs grid — VaFs trades higher power variation (Vp) for near-flat
//        execution time (Vt), the mirror image of Figure 2(iii);
//   (ii) 64-module MHD: cumulative synchronization time per rank — the
//        Figure 3 pathology is gone under VaFs.
#include <cstdio>

#include "bench/common.hpp"
#include "stats/summary.hpp"
#include "util/csv.hpp"

using namespace vapb;

namespace {

void panel_i(core::Campaign& campaign, const workloads::Workload& w,
             const std::vector<double>& cms, std::size_t n,
             const std::string& tag) {
  const core::RunMetrics& base = campaign.uncapped(w);
  util::CsvWriter csv("fig8i_" + tag + ".csv",
                      {"cs_kw", "module", "norm_time", "module_w"});
  std::printf("%-8s (i) VaFs power-performance:\n", w.name.c_str());
  std::printf("   %-12s %6s %6s\n", "Cs", "Vt", "Vp");
  std::printf("   %-12s %6.2f %6.2f\n", "No", 1.0, base.vp());
  for (double cm : cms) {
    double budget = cm * static_cast<double>(n);
    core::CellResult cell =
        campaign.run_cell(w, budget, {core::SchemeKind::kVaFs});
    const auto& m = cell.scheme(core::SchemeKind::kVaFs).metrics;
    double vt = core::vt_normalized(m, base);
    std::printf("   %-12s %6.2f %6.2f\n", bench::cs_label(cm, n).c_str(), vt,
                m.vp());
    auto norm = core::normalized_times(m, base);
    for (std::size_t i = 0; i < m.modules.size(); ++i) {
      csv.row_numeric({budget / 1000.0, static_cast<double>(i), norm[i],
                       m.modules[i].op.module_w()});
    }
  }
}

void panel_ii() {
  const std::size_t n = 64;
  cluster::Cluster cluster(hw::ha8k(), bench::master_seed(), n);
  core::Campaign campaign(cluster, bench::full_allocation(n));
  const workloads::Workload& w = workloads::mhd();
  util::CsvWriter csv("fig8ii_mhd_sync.csv",
                      {"cm_w", "rank", "sendrecv_s", "module_w"});
  std::printf("\nMHD (ii) 64-module synchronization under VaFs:\n");
  std::printf("   %-14s %10s %10s %6s %6s\n", "Cm", "min sync", "max sync",
              "Vt", "Vp");
  for (double cm : {90.0, 80.0, 70.0, 60.0}) {
    core::CellResult cell =
        campaign.run_cell(w, cm * n, {core::SchemeKind::kVaFs});
    const auto& m = cell.scheme(core::SchemeKind::kVaFs).metrics;
    auto s = stats::summarize(m.des.sendrecv_times());
    std::printf("   %-14s %9.2fs %9.2fs %6.2f %6.2f\n",
                (util::fmt_double(cm, 0) + " W").c_str(), s.min, s.max,
                m.vt_raw(), m.vp());
    for (std::size_t r = 0; r < n; ++r) {
      csv.row_numeric({cm, static_cast<double>(r), m.des.ranks[r].sendrecv_s,
                       m.modules[r].op.module_w()});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = bench::parse_options(argc, argv).modules;
  std::printf("== Figure 8: VaFs detailed behaviour (%zu modules) ==\n\n", n);
  cluster::Cluster cluster(hw::ha8k(), bench::master_seed(), n);
  core::Campaign campaign(cluster, bench::full_allocation(n));
  panel_i(campaign, workloads::dgemm(), {110, 100, 90, 80, 70}, n, "dgemm");
  panel_i(campaign, workloads::mhd(), {90, 80, 70, 60}, n, "mhd");
  panel_ii();
  std::printf(
      "\nPaper: *DGEMM Vt drops from 1.64 (uniform caps) to ~1.12 under VaFs\n"
      "while Vp rises 1.21 -> 1.41; MHD sync-time variation collapses\n"
      "(Vt ~1.7 vs up to 57 under uniform caps).\n"
      "Series written to fig8i_{dgemm,mhd}.csv and fig8ii_mhd_sync.csv\n");
  return 0;
}
