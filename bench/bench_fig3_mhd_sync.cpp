// Figure 3: cumulative MPI_Sendrecv time per rank for 64-module MHD under
// uniform module caps — the synchronization wait absorbs the frequency
// variation and grows dramatically as the cap tightens.
#include <cstdio>

#include "bench/common.hpp"
#include "stats/summary.hpp"
#include "util/csv.hpp"

using namespace vapb;

int main(int argc, char** argv) {
  const std::size_t n = bench::parse_options(argc, argv, 64).modules;
  std::printf("== Figure 3: MHD synchronization overhead (%zu modules) ==\n\n",
              n);
  cluster::Cluster cluster(hw::ha8k(), bench::master_seed(), n);
  core::Campaign campaign(cluster, bench::full_allocation(n));
  const workloads::Workload& w = workloads::mhd();

  util::CsvWriter csv("fig3_mhd_sync.csv", {"cm_w", "rank", "sendrecv_s",
                                            "module_w"});
  std::printf("%-14s %10s %10s %6s %6s\n", "Cm", "min sync", "max sync", "Vt",
              "Vp");
  const core::RunMetrics& base = campaign.uncapped(w);
  {
    auto s = stats::summarize(base.des.sendrecv_times());
    double vt_sync = s.min > 1e-6 ? s.max / s.min : s.max / 1e-6;
    std::printf("%-14s %9.2fs %9.2fs %6.1f %6.2f\n", "No", s.min, s.max,
                vt_sync, base.vp());
    for (std::size_t r = 0; r < n; ++r) {
      csv.row_numeric({0.0, static_cast<double>(r),
                       base.des.ranks[r].sendrecv_s,
                       base.modules[r].op.module_w()});
    }
  }
  for (double cm : {90.0, 80.0, 70.0, 60.0}) {
    core::CellResult cell = campaign.run_cell(w, cm * n,
                                              {core::SchemeKind::kPc});
    const core::RunMetrics& m = cell.scheme(core::SchemeKind::kPc).metrics;
    auto s = stats::summarize(m.des.sendrecv_times());
    // The paper's Vt here is over per-rank sendrecv times (one rank has
    // near-zero overhead, hence the huge values).
    double vt_sync = s.min > 1e-6 ? s.max / s.min : s.max / 1e-6;
    std::printf("%-14s %9.2fs %9.2fs %6.1f %6.2f\n",
                (util::fmt_double(cm, 0) + " W").c_str(), s.min, s.max,
                vt_sync, m.vp());
    for (std::size_t r = 0; r < n; ++r) {
      csv.row_numeric({cm, static_cast<double>(r), m.des.ranks[r].sendrecv_s,
                       m.modules[r].op.module_w()});
    }
  }
  std::printf(
      "\nPaper: constraining power inflates per-rank MPI_Sendrecv wait times\n"
      "(Vt over sync times reaches 57 at Cm=60) while total runtimes stay\n"
      "uniform. Per-rank series written to fig3_mhd_sync.csv\n");
  return 0;
}
