file(REMOVE_RECURSE
  "CMakeFiles/test_module.dir/test_module.cpp.o"
  "CMakeFiles/test_module.dir/test_module.cpp.o.d"
  "test_module"
  "test_module.pdb"
  "test_module[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_module.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
