# Empty dependencies file for test_pvt.
# This may be replaced when dependencies are built.
