# Empty dependencies file for test_des_fuzz.
# This may be replaced when dependencies are built.
