file(REMOVE_RECURSE
  "CMakeFiles/test_des_fuzz.dir/test_des_fuzz.cpp.o"
  "CMakeFiles/test_des_fuzz.dir/test_des_fuzz.cpp.o.d"
  "test_des_fuzz"
  "test_des_fuzz.pdb"
  "test_des_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_des_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
