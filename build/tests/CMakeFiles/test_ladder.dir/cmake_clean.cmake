file(REMOVE_RECURSE
  "CMakeFiles/test_ladder.dir/test_ladder.cpp.o"
  "CMakeFiles/test_ladder.dir/test_ladder.cpp.o.d"
  "test_ladder"
  "test_ladder.pdb"
  "test_ladder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
