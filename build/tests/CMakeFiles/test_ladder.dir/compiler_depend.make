# Empty compiler generated dependencies file for test_ladder.
# This may be replaced when dependencies are built.
