# Empty compiler generated dependencies file for test_msr.
# This may be replaced when dependencies are built.
