
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_histogram.cpp" "tests/CMakeFiles/test_histogram.dir/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/test_histogram.dir/test_histogram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vapb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/vapb_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/vapb_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/vapb_des.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/vapb_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vapb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vapb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
