file(REMOVE_RECURSE
  "CMakeFiles/test_cpufreq.dir/test_cpufreq.cpp.o"
  "CMakeFiles/test_cpufreq.dir/test_cpufreq.cpp.o.d"
  "test_cpufreq"
  "test_cpufreq.pdb"
  "test_cpufreq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpufreq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
