# Empty dependencies file for test_cpufreq.
# This may be replaced when dependencies are built.
