file(REMOVE_RECURSE
  "CMakeFiles/test_pmmd.dir/test_pmmd.cpp.o"
  "CMakeFiles/test_pmmd.dir/test_pmmd.cpp.o.d"
  "test_pmmd"
  "test_pmmd.pdb"
  "test_pmmd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
