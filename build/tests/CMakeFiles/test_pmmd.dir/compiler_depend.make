# Empty compiler generated dependencies file for test_pmmd.
# This may be replaced when dependencies are built.
