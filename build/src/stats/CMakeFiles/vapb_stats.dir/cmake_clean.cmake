file(REMOVE_RECURSE
  "CMakeFiles/vapb_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/vapb_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/vapb_stats.dir/histogram.cpp.o"
  "CMakeFiles/vapb_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/vapb_stats.dir/linreg.cpp.o"
  "CMakeFiles/vapb_stats.dir/linreg.cpp.o.d"
  "CMakeFiles/vapb_stats.dir/summary.cpp.o"
  "CMakeFiles/vapb_stats.dir/summary.cpp.o.d"
  "CMakeFiles/vapb_stats.dir/variation.cpp.o"
  "CMakeFiles/vapb_stats.dir/variation.cpp.o.d"
  "libvapb_stats.a"
  "libvapb_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vapb_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
