# Empty dependencies file for vapb_stats.
# This may be replaced when dependencies are built.
