file(REMOVE_RECURSE
  "libvapb_stats.a"
)
