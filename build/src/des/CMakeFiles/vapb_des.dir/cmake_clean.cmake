file(REMOVE_RECURSE
  "CMakeFiles/vapb_des.dir/engine.cpp.o"
  "CMakeFiles/vapb_des.dir/engine.cpp.o.d"
  "CMakeFiles/vapb_des.dir/program.cpp.o"
  "CMakeFiles/vapb_des.dir/program.cpp.o.d"
  "libvapb_des.a"
  "libvapb_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vapb_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
