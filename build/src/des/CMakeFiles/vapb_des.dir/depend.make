# Empty dependencies file for vapb_des.
# This may be replaced when dependencies are built.
