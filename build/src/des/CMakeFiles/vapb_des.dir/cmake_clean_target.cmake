file(REMOVE_RECURSE
  "libvapb_des.a"
)
