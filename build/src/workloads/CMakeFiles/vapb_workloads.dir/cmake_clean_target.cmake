file(REMOVE_RECURSE
  "libvapb_workloads.a"
)
