# Empty dependencies file for vapb_workloads.
# This may be replaced when dependencies are built.
