file(REMOVE_RECURSE
  "CMakeFiles/vapb_workloads.dir/catalog.cpp.o"
  "CMakeFiles/vapb_workloads.dir/catalog.cpp.o.d"
  "CMakeFiles/vapb_workloads.dir/programs.cpp.o"
  "CMakeFiles/vapb_workloads.dir/programs.cpp.o.d"
  "CMakeFiles/vapb_workloads.dir/workload.cpp.o"
  "CMakeFiles/vapb_workloads.dir/workload.cpp.o.d"
  "libvapb_workloads.a"
  "libvapb_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vapb_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
