
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/catalog.cpp" "src/workloads/CMakeFiles/vapb_workloads.dir/catalog.cpp.o" "gcc" "src/workloads/CMakeFiles/vapb_workloads.dir/catalog.cpp.o.d"
  "/root/repo/src/workloads/programs.cpp" "src/workloads/CMakeFiles/vapb_workloads.dir/programs.cpp.o" "gcc" "src/workloads/CMakeFiles/vapb_workloads.dir/programs.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/vapb_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/vapb_workloads.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/vapb_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/vapb_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vapb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vapb_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
