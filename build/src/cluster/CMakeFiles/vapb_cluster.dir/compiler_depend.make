# Empty compiler generated dependencies file for vapb_cluster.
# This may be replaced when dependencies are built.
