file(REMOVE_RECURSE
  "CMakeFiles/vapb_cluster.dir/cluster.cpp.o"
  "CMakeFiles/vapb_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/vapb_cluster.dir/scheduler.cpp.o"
  "CMakeFiles/vapb_cluster.dir/scheduler.cpp.o.d"
  "libvapb_cluster.a"
  "libvapb_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vapb_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
