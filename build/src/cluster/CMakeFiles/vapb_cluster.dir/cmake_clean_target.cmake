file(REMOVE_RECURSE
  "libvapb_cluster.a"
)
