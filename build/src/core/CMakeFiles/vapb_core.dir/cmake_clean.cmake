file(REMOVE_RECURSE
  "CMakeFiles/vapb_core.dir/batch.cpp.o"
  "CMakeFiles/vapb_core.dir/batch.cpp.o.d"
  "CMakeFiles/vapb_core.dir/budget.cpp.o"
  "CMakeFiles/vapb_core.dir/budget.cpp.o.d"
  "CMakeFiles/vapb_core.dir/campaign.cpp.o"
  "CMakeFiles/vapb_core.dir/campaign.cpp.o.d"
  "CMakeFiles/vapb_core.dir/dynamic.cpp.o"
  "CMakeFiles/vapb_core.dir/dynamic.cpp.o.d"
  "CMakeFiles/vapb_core.dir/pmmd.cpp.o"
  "CMakeFiles/vapb_core.dir/pmmd.cpp.o.d"
  "CMakeFiles/vapb_core.dir/pmt.cpp.o"
  "CMakeFiles/vapb_core.dir/pmt.cpp.o.d"
  "CMakeFiles/vapb_core.dir/pvt.cpp.o"
  "CMakeFiles/vapb_core.dir/pvt.cpp.o.d"
  "CMakeFiles/vapb_core.dir/report.cpp.o"
  "CMakeFiles/vapb_core.dir/report.cpp.o.d"
  "CMakeFiles/vapb_core.dir/resource_manager.cpp.o"
  "CMakeFiles/vapb_core.dir/resource_manager.cpp.o.d"
  "CMakeFiles/vapb_core.dir/runner.cpp.o"
  "CMakeFiles/vapb_core.dir/runner.cpp.o.d"
  "CMakeFiles/vapb_core.dir/schemes.cpp.o"
  "CMakeFiles/vapb_core.dir/schemes.cpp.o.d"
  "CMakeFiles/vapb_core.dir/test_run.cpp.o"
  "CMakeFiles/vapb_core.dir/test_run.cpp.o.d"
  "libvapb_core.a"
  "libvapb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vapb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
