file(REMOVE_RECURSE
  "libvapb_core.a"
)
