
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/batch.cpp" "src/core/CMakeFiles/vapb_core.dir/batch.cpp.o" "gcc" "src/core/CMakeFiles/vapb_core.dir/batch.cpp.o.d"
  "/root/repo/src/core/budget.cpp" "src/core/CMakeFiles/vapb_core.dir/budget.cpp.o" "gcc" "src/core/CMakeFiles/vapb_core.dir/budget.cpp.o.d"
  "/root/repo/src/core/campaign.cpp" "src/core/CMakeFiles/vapb_core.dir/campaign.cpp.o" "gcc" "src/core/CMakeFiles/vapb_core.dir/campaign.cpp.o.d"
  "/root/repo/src/core/dynamic.cpp" "src/core/CMakeFiles/vapb_core.dir/dynamic.cpp.o" "gcc" "src/core/CMakeFiles/vapb_core.dir/dynamic.cpp.o.d"
  "/root/repo/src/core/pmmd.cpp" "src/core/CMakeFiles/vapb_core.dir/pmmd.cpp.o" "gcc" "src/core/CMakeFiles/vapb_core.dir/pmmd.cpp.o.d"
  "/root/repo/src/core/pmt.cpp" "src/core/CMakeFiles/vapb_core.dir/pmt.cpp.o" "gcc" "src/core/CMakeFiles/vapb_core.dir/pmt.cpp.o.d"
  "/root/repo/src/core/pvt.cpp" "src/core/CMakeFiles/vapb_core.dir/pvt.cpp.o" "gcc" "src/core/CMakeFiles/vapb_core.dir/pvt.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/vapb_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/vapb_core.dir/report.cpp.o.d"
  "/root/repo/src/core/resource_manager.cpp" "src/core/CMakeFiles/vapb_core.dir/resource_manager.cpp.o" "gcc" "src/core/CMakeFiles/vapb_core.dir/resource_manager.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/core/CMakeFiles/vapb_core.dir/runner.cpp.o" "gcc" "src/core/CMakeFiles/vapb_core.dir/runner.cpp.o.d"
  "/root/repo/src/core/schemes.cpp" "src/core/CMakeFiles/vapb_core.dir/schemes.cpp.o" "gcc" "src/core/CMakeFiles/vapb_core.dir/schemes.cpp.o.d"
  "/root/repo/src/core/test_run.cpp" "src/core/CMakeFiles/vapb_core.dir/test_run.cpp.o" "gcc" "src/core/CMakeFiles/vapb_core.dir/test_run.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/vapb_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/vapb_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/vapb_des.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/vapb_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vapb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vapb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
