# Empty dependencies file for vapb_core.
# This may be replaced when dependencies are built.
