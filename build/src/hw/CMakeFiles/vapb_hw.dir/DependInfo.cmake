
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/arch.cpp" "src/hw/CMakeFiles/vapb_hw.dir/arch.cpp.o" "gcc" "src/hw/CMakeFiles/vapb_hw.dir/arch.cpp.o.d"
  "/root/repo/src/hw/arch_io.cpp" "src/hw/CMakeFiles/vapb_hw.dir/arch_io.cpp.o" "gcc" "src/hw/CMakeFiles/vapb_hw.dir/arch_io.cpp.o.d"
  "/root/repo/src/hw/cpufreq.cpp" "src/hw/CMakeFiles/vapb_hw.dir/cpufreq.cpp.o" "gcc" "src/hw/CMakeFiles/vapb_hw.dir/cpufreq.cpp.o.d"
  "/root/repo/src/hw/ladder.cpp" "src/hw/CMakeFiles/vapb_hw.dir/ladder.cpp.o" "gcc" "src/hw/CMakeFiles/vapb_hw.dir/ladder.cpp.o.d"
  "/root/repo/src/hw/module.cpp" "src/hw/CMakeFiles/vapb_hw.dir/module.cpp.o" "gcc" "src/hw/CMakeFiles/vapb_hw.dir/module.cpp.o.d"
  "/root/repo/src/hw/msr.cpp" "src/hw/CMakeFiles/vapb_hw.dir/msr.cpp.o" "gcc" "src/hw/CMakeFiles/vapb_hw.dir/msr.cpp.o.d"
  "/root/repo/src/hw/rapl.cpp" "src/hw/CMakeFiles/vapb_hw.dir/rapl.cpp.o" "gcc" "src/hw/CMakeFiles/vapb_hw.dir/rapl.cpp.o.d"
  "/root/repo/src/hw/sensor.cpp" "src/hw/CMakeFiles/vapb_hw.dir/sensor.cpp.o" "gcc" "src/hw/CMakeFiles/vapb_hw.dir/sensor.cpp.o.d"
  "/root/repo/src/hw/thermal.cpp" "src/hw/CMakeFiles/vapb_hw.dir/thermal.cpp.o" "gcc" "src/hw/CMakeFiles/vapb_hw.dir/thermal.cpp.o.d"
  "/root/repo/src/hw/trace.cpp" "src/hw/CMakeFiles/vapb_hw.dir/trace.cpp.o" "gcc" "src/hw/CMakeFiles/vapb_hw.dir/trace.cpp.o.d"
  "/root/repo/src/hw/variation.cpp" "src/hw/CMakeFiles/vapb_hw.dir/variation.cpp.o" "gcc" "src/hw/CMakeFiles/vapb_hw.dir/variation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vapb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vapb_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
