file(REMOVE_RECURSE
  "libvapb_hw.a"
)
