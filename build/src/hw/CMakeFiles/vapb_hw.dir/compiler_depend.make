# Empty compiler generated dependencies file for vapb_hw.
# This may be replaced when dependencies are built.
