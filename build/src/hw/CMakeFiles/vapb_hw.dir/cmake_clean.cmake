file(REMOVE_RECURSE
  "CMakeFiles/vapb_hw.dir/arch.cpp.o"
  "CMakeFiles/vapb_hw.dir/arch.cpp.o.d"
  "CMakeFiles/vapb_hw.dir/arch_io.cpp.o"
  "CMakeFiles/vapb_hw.dir/arch_io.cpp.o.d"
  "CMakeFiles/vapb_hw.dir/cpufreq.cpp.o"
  "CMakeFiles/vapb_hw.dir/cpufreq.cpp.o.d"
  "CMakeFiles/vapb_hw.dir/ladder.cpp.o"
  "CMakeFiles/vapb_hw.dir/ladder.cpp.o.d"
  "CMakeFiles/vapb_hw.dir/module.cpp.o"
  "CMakeFiles/vapb_hw.dir/module.cpp.o.d"
  "CMakeFiles/vapb_hw.dir/msr.cpp.o"
  "CMakeFiles/vapb_hw.dir/msr.cpp.o.d"
  "CMakeFiles/vapb_hw.dir/rapl.cpp.o"
  "CMakeFiles/vapb_hw.dir/rapl.cpp.o.d"
  "CMakeFiles/vapb_hw.dir/sensor.cpp.o"
  "CMakeFiles/vapb_hw.dir/sensor.cpp.o.d"
  "CMakeFiles/vapb_hw.dir/thermal.cpp.o"
  "CMakeFiles/vapb_hw.dir/thermal.cpp.o.d"
  "CMakeFiles/vapb_hw.dir/trace.cpp.o"
  "CMakeFiles/vapb_hw.dir/trace.cpp.o.d"
  "CMakeFiles/vapb_hw.dir/variation.cpp.o"
  "CMakeFiles/vapb_hw.dir/variation.cpp.o.d"
  "libvapb_hw.a"
  "libvapb_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vapb_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
