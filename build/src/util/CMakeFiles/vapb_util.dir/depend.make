# Empty dependencies file for vapb_util.
# This may be replaced when dependencies are built.
