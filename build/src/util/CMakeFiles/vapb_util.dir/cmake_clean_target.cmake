file(REMOVE_RECURSE
  "libvapb_util.a"
)
