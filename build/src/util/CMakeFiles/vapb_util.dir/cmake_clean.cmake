file(REMOVE_RECURSE
  "CMakeFiles/vapb_util.dir/cli.cpp.o"
  "CMakeFiles/vapb_util.dir/cli.cpp.o.d"
  "CMakeFiles/vapb_util.dir/config.cpp.o"
  "CMakeFiles/vapb_util.dir/config.cpp.o.d"
  "CMakeFiles/vapb_util.dir/csv.cpp.o"
  "CMakeFiles/vapb_util.dir/csv.cpp.o.d"
  "CMakeFiles/vapb_util.dir/rng.cpp.o"
  "CMakeFiles/vapb_util.dir/rng.cpp.o.d"
  "CMakeFiles/vapb_util.dir/strings.cpp.o"
  "CMakeFiles/vapb_util.dir/strings.cpp.o.d"
  "CMakeFiles/vapb_util.dir/table.cpp.o"
  "CMakeFiles/vapb_util.dir/table.cpp.o.d"
  "CMakeFiles/vapb_util.dir/thread_pool.cpp.o"
  "CMakeFiles/vapb_util.dir/thread_pool.cpp.o.d"
  "libvapb_util.a"
  "libvapb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vapb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
