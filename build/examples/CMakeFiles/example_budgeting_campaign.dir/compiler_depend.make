# Empty compiler generated dependencies file for example_budgeting_campaign.
# This may be replaced when dependencies are built.
