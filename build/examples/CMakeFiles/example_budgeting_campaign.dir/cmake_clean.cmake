file(REMOVE_RECURSE
  "CMakeFiles/example_budgeting_campaign.dir/budgeting_campaign.cpp.o"
  "CMakeFiles/example_budgeting_campaign.dir/budgeting_campaign.cpp.o.d"
  "budgeting_campaign"
  "budgeting_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_budgeting_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
