# Empty compiler generated dependencies file for example_variation_study.
# This may be replaced when dependencies are built.
