# Empty dependencies file for example_multi_job_scheduling.
# This may be replaced when dependencies are built.
