file(REMOVE_RECURSE
  "CMakeFiles/example_multi_job_scheduling.dir/multi_job_scheduling.cpp.o"
  "CMakeFiles/example_multi_job_scheduling.dir/multi_job_scheduling.cpp.o.d"
  "multi_job_scheduling"
  "multi_job_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_job_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
