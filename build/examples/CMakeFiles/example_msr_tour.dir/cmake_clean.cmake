file(REMOVE_RECURSE
  "CMakeFiles/example_msr_tour.dir/msr_tour.cpp.o"
  "CMakeFiles/example_msr_tour.dir/msr_tour.cpp.o.d"
  "msr_tour"
  "msr_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_msr_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
