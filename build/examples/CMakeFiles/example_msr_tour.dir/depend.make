# Empty dependencies file for example_msr_tour.
# This may be replaced when dependencies are built.
