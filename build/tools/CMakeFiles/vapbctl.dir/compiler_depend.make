# Empty compiler generated dependencies file for vapbctl.
# This may be replaced when dependencies are built.
