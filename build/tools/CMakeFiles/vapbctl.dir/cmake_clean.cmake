file(REMOVE_RECURSE
  "CMakeFiles/vapbctl.dir/vapbctl.cpp.o"
  "CMakeFiles/vapbctl.dir/vapbctl.cpp.o.d"
  "vapbctl"
  "vapbctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vapbctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
