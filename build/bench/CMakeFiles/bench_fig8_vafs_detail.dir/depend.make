# Empty dependencies file for bench_fig8_vafs_detail.
# This may be replaced when dependencies are built.
