file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_linearity.dir/bench_fig5_linearity.cpp.o"
  "CMakeFiles/bench_fig5_linearity.dir/bench_fig5_linearity.cpp.o.d"
  "bench_fig5_linearity"
  "bench_fig5_linearity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_linearity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
