# Empty dependencies file for bench_fig3_mhd_sync.
# This may be replaced when dependencies are built.
