file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_mhd_sync.dir/bench_fig3_mhd_sync.cpp.o"
  "CMakeFiles/bench_fig3_mhd_sync.dir/bench_fig3_mhd_sync.cpp.o.d"
  "bench_fig3_mhd_sync"
  "bench_fig3_mhd_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_mhd_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
