file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_total_power.dir/bench_fig9_total_power.cpp.o"
  "CMakeFiles/bench_fig9_total_power.dir/bench_fig9_total_power.cpp.o.d"
  "bench_fig9_total_power"
  "bench_fig9_total_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_total_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
