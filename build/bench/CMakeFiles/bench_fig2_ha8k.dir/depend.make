# Empty dependencies file for bench_fig2_ha8k.
# This may be replaced when dependencies are built.
