file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_ha8k.dir/bench_fig2_ha8k.cpp.o"
  "CMakeFiles/bench_fig2_ha8k.dir/bench_fig2_ha8k.cpp.o.d"
  "bench_fig2_ha8k"
  "bench_fig2_ha8k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_ha8k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
