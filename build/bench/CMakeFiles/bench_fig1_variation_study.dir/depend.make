# Empty dependencies file for bench_fig1_variation_study.
# This may be replaced when dependencies are built.
