# Empty dependencies file for bench_ext_dynamic_phases.
# This may be replaced when dependencies are built.
