# Empty dependencies file for bench_ablation_pvt_microbench.
# This may be replaced when dependencies are built.
