file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pvt_microbench.dir/bench_ablation_pvt_microbench.cpp.o"
  "CMakeFiles/bench_ablation_pvt_microbench.dir/bench_ablation_pvt_microbench.cpp.o.d"
  "bench_ablation_pvt_microbench"
  "bench_ablation_pvt_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pvt_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
