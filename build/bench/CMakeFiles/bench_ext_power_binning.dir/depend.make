# Empty dependencies file for bench_ext_power_binning.
# This may be replaced when dependencies are built.
