file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_power_binning.dir/bench_ext_power_binning.cpp.o"
  "CMakeFiles/bench_ext_power_binning.dir/bench_ext_power_binning.cpp.o.d"
  "bench_ext_power_binning"
  "bench_ext_power_binning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_power_binning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
