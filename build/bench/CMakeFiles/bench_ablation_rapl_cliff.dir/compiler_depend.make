# Empty compiler generated dependencies file for bench_ablation_rapl_cliff.
# This may be replaced when dependencies are built.
