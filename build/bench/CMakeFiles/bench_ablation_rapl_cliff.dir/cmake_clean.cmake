file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rapl_cliff.dir/bench_ablation_rapl_cliff.cpp.o"
  "CMakeFiles/bench_ablation_rapl_cliff.dir/bench_ablation_rapl_cliff.cpp.o.d"
  "bench_ablation_rapl_cliff"
  "bench_ablation_rapl_cliff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rapl_cliff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
