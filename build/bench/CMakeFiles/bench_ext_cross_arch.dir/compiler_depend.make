# Empty compiler generated dependencies file for bench_ext_cross_arch.
# This may be replaced when dependencies are built.
