file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_sensors.dir/bench_table1_sensors.cpp.o"
  "CMakeFiles/bench_table1_sensors.dir/bench_table1_sensors.cpp.o.d"
  "bench_table1_sensors"
  "bench_table1_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
