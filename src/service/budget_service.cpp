#include "service/budget_service.hpp"

#include <algorithm>
#include <bit>
#include <condition_variable>
#include <deque>
#include <list>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "core/calibration_cache.hpp"
#include "core/pipeline.hpp"
#include "core/scheme_registry.hpp"
#include "core/stages.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workloads/catalog.hpp"

namespace vapb::service {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

std::string request_kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::kSolve:
      return "solve";
    case RequestKind::kRun:
      return "run";
  }
  throw InternalError("unhandled request kind");
}

RequestKind request_kind_by_name(const std::string& name) {
  if (name == "solve") return RequestKind::kSolve;
  if (name == "run") return RequestKind::kRun;
  throw InvalidArgument("unknown request kind '" + name + "' (solve|run)");
}

std::string BudgetRequest::cache_key() const {
  // Exact, collision-free by construction: every field that feeds the pure
  // function, with the budget spelled as raw bits so -0.0 vs 0.0 and other
  // same-value-different-bits pairs cannot alias.
  std::ostringstream os;
  os << std::hex << cluster_fingerprint << '/' << scheme << '/' << workload
     << '/' << std::bit_cast<std::uint64_t>(budget_w) << '/' << salt << '/'
     << request_kind_name(kind);
  return os.str();
}

std::uint64_t BudgetRequest::fingerprint() const {
  return mix(util::fnv1a(cache_key()), 0x5ca1ab1eULL);
}

ClusterState calibrate_state(std::shared_ptr<const cluster::Cluster> cluster,
                             std::vector<hw::ModuleId> allocation,
                             const std::vector<std::string>& workloads,
                             const std::vector<std::string>& schemes) {
  if (!cluster) throw InvalidArgument("calibrate_state: null cluster");
  if (allocation.empty()) {
    throw InvalidArgument("calibrate_state: empty allocation");
  }
  ClusterState state;
  state.cluster = cluster;
  state.allocation = std::move(allocation);
  state.pvt = core::CalibrationCache::global().pvt(
      *cluster, workloads::pvt_microbench(), cluster->seed().fork("pvt"));
  for (const std::string& wname : workloads) {
    const workloads::Workload& w = workloads::by_name(wname);
    state.test_runs[w.name] = core::CalibrationCache::global().test_run(
        *cluster, state.allocation.front(), w,
        core::test_run_seed(*cluster, w));
    core::ClassTestRuns class_tests{};
    if (cluster->heterogeneous()) {
      // Mirror the runner's calibration stage: one pinned test run per
      // device class present in the allocation. The front module's class
      // aliases the flat test run (same module, same draw); other classes
      // pin their first allocated module under a class-named seed fork, so
      // a warm snapshot restore is bitwise what a cold service calibrates.
      class_tests[hw::device_class_index(
          cluster->device_class(state.allocation.front()))] =
          state.test_runs[w.name];
      for (hw::ModuleId id : state.allocation) {
        const hw::DeviceClass c = cluster->device_class(id);
        auto& slot = class_tests[hw::device_class_index(c)];
        if (slot) continue;
        slot = core::CalibrationCache::global().test_run(
            *cluster, id, w,
            core::test_run_seed(*cluster, w).fork(hw::device_class_name(c)));
      }
    }
    for (const std::string& scheme : schemes) {
      core::SchemeDefinition def =
          core::SchemeRegistry::global().get(scheme);
      if (!def.power_model) continue;
      // Build the table with the scheme's own (cache-decorated) stage so a
      // restored snapshot is bitwise what a live run would model.
      core::RunContext ctx;
      ctx.cluster = cluster.get();
      ctx.allocation = state.allocation;
      ctx.workload = &w;
      ctx.scheme = scheme;
      ctx.seed = core::Runner::scheme_seed(*cluster, w, scheme);
      ctx.pvt = state.pvt;
      ctx.test = state.test_runs[w.name];
      ctx.class_tests = class_tests;
      core::CachedPowerModelStage(def.power_model).model(ctx);
      state.pmts[scheme + '/' + w.name] = ctx.pmt;
    }
  }
  return state;
}

// ---------------------------------------------------------------------------
// Service engine
// ---------------------------------------------------------------------------

struct BudgetService::Impl {
  struct Pending {
    BudgetRequest request;
    std::string key;
    std::promise<ReplyPtr> promise;
    std::shared_future<ReplyPtr> future;
    std::vector<ReplyHandler> handlers;
  };

  struct CachedReply {
    ReplyPtr reply;
    std::list<std::string>::iterator lru;
  };

  // kRun base config with the per-request-overridden sinks stripped.
  static core::RunConfig sanitized(core::RunConfig cfg) {
    cfg.telemetry = nullptr;
    cfg.fault = nullptr;
    return cfg;
  }

  explicit Impl(const ServiceConfig& config)
      : max_batch(config.max_batch),
        reply_capacity(config.reply_cache_capacity),
        run_config(sanitized(config.run)),
        pool(config.worker_threads),
        batcher([this] { batcher_main(); }) {}

  // -- shared state (guarded by `mutex`) ------------------------------------
  mutable std::mutex mutex;
  std::condition_variable queue_cv;
  std::deque<std::shared_ptr<Pending>> queue;
  std::map<std::string, std::shared_ptr<Pending>> inflight;
  std::map<std::string, CachedReply> replies;
  std::list<std::string> reply_lru;  // front = most recently used
  std::map<std::uint64_t, ClusterState> clusters;
  std::uint64_t default_cluster = 0;
  Stats stats;
  bool stop = false;

  // -- immutable after construction -----------------------------------------
  const std::size_t max_batch;
  const std::size_t reply_capacity;
  const core::RunConfig run_config;
  util::ThreadPool pool;
  std::thread batcher;  // must be last: it reads the fields above

  ~Impl() {
    {
      std::lock_guard lock(mutex);
      stop = true;
    }
    queue_cv.notify_all();
    batcher.join();
  }

  // Requires the lock. Returns the cached reply for `key` (refreshing its
  // recency) or null.
  ReplyPtr lookup_reply(const std::string& key) {
    auto it = replies.find(key);
    if (it == replies.end()) return nullptr;
    reply_lru.splice(reply_lru.begin(), reply_lru, it->second.lru);
    return it->second.reply;
  }

  // Requires the lock.
  void store_reply(const std::string& key, ReplyPtr reply) {
    auto it = replies.find(key);
    if (it != replies.end()) {
      it->second.reply = std::move(reply);
      reply_lru.splice(reply_lru.begin(), reply_lru, it->second.lru);
      return;
    }
    reply_lru.push_front(key);
    replies.emplace(key, CachedReply{std::move(reply), reply_lru.begin()});
    if (reply_capacity == 0) return;
    while (replies.size() > reply_capacity && !reply_lru.empty()) {
      replies.erase(reply_lru.back());
      reply_lru.pop_back();
      ++stats.reply_evictions;
    }
  }

  void batcher_main() {
    std::unique_lock lock(mutex);
    for (;;) {
      queue_cv.wait(lock, [&] { return stop || !queue.empty(); });
      if (queue.empty() && stop) return;
      std::vector<std::shared_ptr<Pending>> batch;
      const std::size_t take = std::min(queue.size(), max_batch);
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue.front()));
        queue.pop_front();
      }
      ++stats.batches;
      stats.max_batch = std::max<std::uint64_t>(stats.max_batch, take);
      lock.unlock();
      process_batch(batch);
      lock.lock();
    }
  }

  void process_batch(const std::vector<std::shared_ptr<Pending>>& batch) {
    std::vector<ReplyPtr> computed(batch.size());
    auto run_one = [&](std::size_t i) {
      computed[i] = compute(batch[i]->request);
    };
    if (batch.size() == 1 || pool.size() <= 1) {
      for (std::size_t i = 0; i < batch.size(); ++i) run_one(i);
    } else {
      util::parallel_for(pool, batch.size(), run_one, /*grain=*/1);
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Pending& p = *batch[i];
      std::vector<ReplyHandler> handlers;
      {
        std::lock_guard lock(mutex);
        stats.computed += 1;
        store_reply(p.key, computed[i]);
        handlers = std::move(p.handlers);
        inflight.erase(p.key);
      }
      p.promise.set_value(computed[i]);
      for (const ReplyHandler& h : handlers) h(*computed[i]);
    }
  }

  // The pure function: reply = f(cluster state, request). Runs on a pool
  // worker (or the batcher); draws randomness only from the canonical seed
  // forks, never from the clock or scheduling, so replies are bit-identical
  // to direct pipeline runs.
  ReplyPtr compute(const BudgetRequest& req) const {
    auto reply = std::make_shared<BudgetReply>();
    reply->request = req;
    try {
      const ClusterState& state = cluster_for(req.cluster_fingerprint);
      const workloads::Workload& w = workloads::by_name(req.workload);
      const cluster::Cluster& cluster = *state.cluster;
      core::CalibrationCache& cache = core::CalibrationCache::global();

      std::shared_ptr<const core::TestRunResult> test;
      if (auto it = state.test_runs.find(w.name);
          it != state.test_runs.end()) {
        test = it->second;
      } else {
        test = cache.test_run(cluster, state.allocation.front(), w,
                              core::test_run_seed(cluster, w));
      }
      std::shared_ptr<const core::Pmt> primed;
      if (auto it = state.pmts.find(req.scheme + '/' + w.name);
          it != state.pmts.end()) {
        primed = it->second;
      }

      if (req.kind == RequestKind::kRun) {
        std::shared_ptr<const core::Pmt> truth = cache.oracle(
            cluster, state.allocation, w, core::oracle_seed(cluster, w));
        reply->cls = core::classify_cell(*truth, req.budget_w);
        if (reply->cls == core::CellClass::kInfeasible) {
          reply->metrics =
              core::infeasible_run_metrics(w, req.scheme, req.budget_w);
        } else {
          core::RunConfig cfg = run_config;
          cfg.run_salt = req.salt;
          cfg.telemetry = nullptr;
          cfg.fault = nullptr;
          core::Runner runner(cluster, state.allocation, cfg);
          reply->metrics =
              core::run_scheme_cached(cluster, runner, w, req.scheme,
                                      req.budget_w, *state.pvt, *test, primed);
        }
        reply->ok = true;
        return reply;
      }

      // kSolve: calibrate -> model -> solve, no enforcement/execution.
      core::SchemeDefinition def =
          core::SchemeRegistry::global().get(req.scheme);
      if (!def.budget_solve) {
        throw InvalidArgument("scheme '" + req.scheme +
                              "' has no budget-solve stage");
      }
      core::RunContext ctx;
      ctx.cluster = &cluster;
      ctx.allocation = state.allocation;
      ctx.workload = &w;
      ctx.scheme = req.scheme;
      ctx.budget_w = req.budget_w;
      ctx.tree = run_config.tree;
      ctx.seed = core::Runner::scheme_seed(cluster, w, req.scheme);
      ctx.pvt = state.pvt;
      ctx.test = test;
      if (def.calibration) def.calibration->calibrate(ctx);
      if (primed) {
        ctx.pmt = primed;
      } else if (def.power_model) {
        core::CachedPowerModelStage(def.power_model).model(ctx);
      }
      def.budget_solve->solve(ctx);
      VAPB_REQUIRE(ctx.budget.has_value());
      reply->budget = std::move(*ctx.budget);
      reply->ok = true;
    } catch (const std::exception& e) {
      reply->ok = false;
      reply->error = e.what();
    }
    return reply;
  }

  const ClusterState& cluster_for(std::uint64_t fingerprint) const {
    std::lock_guard lock(mutex);
    if (clusters.empty()) {
      throw InvalidArgument("BudgetService: no cluster registered");
    }
    const std::uint64_t key =
        fingerprint == 0 ? default_cluster : fingerprint;
    auto it = clusters.find(key);
    if (it == clusters.end()) {
      std::ostringstream os;
      os << "BudgetService: unknown cluster fingerprint " << std::hex << key;
      throw InvalidArgument(os.str());
    }
    return it->second;
  }
};

BudgetService::BudgetService(ServiceConfig config) : config_(config) {
  if (config_.max_batch == 0) {
    throw InvalidArgument("ServiceConfig.max_batch must be >= 1");
  }
  impl_ = std::make_unique<Impl>(config_);
}

BudgetService::~BudgetService() = default;

void BudgetService::register_cluster(ClusterState state) {
  if (!state.cluster) {
    throw InvalidArgument("register_cluster: null cluster");
  }
  if (state.allocation.empty()) {
    throw InvalidArgument("register_cluster: empty allocation");
  }
  if (!state.pvt) {
    state.pvt = core::CalibrationCache::global().pvt(
        *state.cluster, workloads::pvt_microbench(),
        state.cluster->seed().fork("pvt"));
  }
  const std::uint64_t fp = state.cluster->fingerprint();
  std::lock_guard lock(impl_->mutex);
  if (impl_->clusters.count(fp) != 0) {
    throw InvalidArgument("register_cluster: fingerprint already registered");
  }
  if (impl_->clusters.empty()) impl_->default_cluster = fp;
  impl_->clusters.emplace(fp, std::move(state));
}

bool BudgetService::has_cluster(std::uint64_t fingerprint) const {
  std::lock_guard lock(impl_->mutex);
  return impl_->clusters.count(fingerprint) != 0;
}

std::shared_future<ReplyPtr> BudgetService::submit(BudgetRequest request,
                                                   ReplyHandler done) {
  std::string key = request.cache_key();
  ReplyPtr hit;
  std::shared_future<ReplyPtr> future;
  {
    std::lock_guard lock(impl_->mutex);
    ++impl_->stats.requests;
    hit = impl_->lookup_reply(key);
    if (hit != nullptr) {
      ++impl_->stats.reply_hits;
    } else if (auto it = impl_->inflight.find(key);
               it != impl_->inflight.end()) {
      // Coalesce onto the in-flight run: one compute fans out to everyone.
      ++impl_->stats.dedup_hits;
      if (done) it->second->handlers.push_back(std::move(done));
      return it->second->future;
    } else {
      auto pending = std::make_shared<Impl::Pending>();
      pending->request = std::move(request);
      pending->key = key;
      pending->future = pending->promise.get_future().share();
      if (done) pending->handlers.push_back(std::move(done));
      future = pending->future;
      impl_->inflight.emplace(std::move(key), pending);
      impl_->queue.push_back(std::move(pending));
    }
  }
  if (hit != nullptr) {
    if (done) done(*hit);
    std::promise<ReplyPtr> ready;
    ready.set_value(hit);
    return ready.get_future().share();
  }
  impl_->queue_cv.notify_one();
  return future;
}

ReplyPtr BudgetService::solve(BudgetRequest request) {
  return submit(std::move(request)).get();
}

BudgetService::Stats BudgetService::stats() const {
  std::lock_guard lock(impl_->mutex);
  Stats s = impl_->stats;
  s.reply_entries = impl_->replies.size();
  return s;
}

void BudgetService::merge_stats(util::Telemetry& telemetry) const {
  const Stats s = stats();
  telemetry.add_counter("service_requests", s.requests);
  telemetry.add_counter("service_computed", s.computed);
  telemetry.add_counter("service_dedup_hits", s.dedup_hits);
  telemetry.add_counter("service_reply_hits", s.reply_hits);
  telemetry.add_counter("service_reply_evictions", s.reply_evictions);
  telemetry.add_counter("service_batches", s.batches);
}

}  // namespace vapb::service
