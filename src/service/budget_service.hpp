// BudgetService — the budgeting pipeline as a long-running, batched engine.
//
// The paper's variation-aware budgeting is a pure function: (cluster
// fingerprint, scheme, workload, budget) -> allocation vector. A production
// center re-solves budgets continuously as jobs arrive, budgets move and
// measured power drifts, so the service makes sustained requests/sec and
// tail latency first-class quantities without giving up the repo's
// determinism contract:
//
//  * requests enter an async MPSC queue (`submit` is safe from any thread)
//    and a single batcher thread drains them in bounded batches, fanning
//    each batch over the service's own util::ThreadPool;
//  * identical in-flight requests are deduplicated at submit time: one
//    pipeline run fans its reply out to every waiter, keyed on the request's
//    exact cache key (scheme/workload/budget bits/salt/kind);
//  * finished replies park in a bounded LRU so repeat traffic is a hash
//    lookup, with hit/miss/eviction counters mergeable into util::Telemetry.
//
// Every reply is a pure function of (registered cluster state, request) —
// the service derives all seeds from the canonical forks Campaign uses, so
// a reply is bitwise identical to running the pipeline directly, regardless
// of batching, dedup, worker count or client thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/budget.hpp"
#include "core/campaign.hpp"
#include "core/pmt.hpp"
#include "core/pvt.hpp"
#include "core/runner.hpp"
#include "core/test_run.hpp"
#include "util/telemetry.hpp"

namespace vapb::service {

/// What a request asks for: a budget solve (calibrate/model/solve — the
/// high-rate service operation) or a full pipeline run including DES
/// execution (what CampaignEngine::run_job does per cell).
enum class RequestKind { kSolve, kRun };

std::string request_kind_name(RequestKind kind);
RequestKind request_kind_by_name(const std::string& name);

struct BudgetRequest {
  /// Cluster::fingerprint() of a registered cluster; 0 targets the service's
  /// default (first-registered) cluster.
  std::uint64_t cluster_fingerprint = 0;
  std::string scheme;    ///< registered scheme name (SchemeRegistry)
  std::string workload;  ///< workload catalog name
  double budget_w = 0.0;  ///< application-level budget [W]
  RequestKind kind = RequestKind::kSolve;
  /// kRun only: Runner run_salt (repetition salt, CampaignJob convention).
  std::uint64_t salt = 0;

  /// Exact dedup/LRU key: two requests with equal keys are the same pure
  /// function application and must receive bitwise-equal replies.
  [[nodiscard]] std::string cache_key() const;

  /// 64-bit hash of cache_key for display/telemetry.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

struct BudgetReply {
  BudgetRequest request;
  bool ok = false;
  std::string error;  ///< set when !ok (unknown scheme/workload/cluster, ...)

  // kSolve output.
  core::BudgetResult budget;

  // kRun outputs (mirrors CampaignJobResult: classification against the
  // oracle ground truth, then the full pipeline metrics; infeasible cells
  // short-circuit with feasible = false).
  core::CellClass cls = core::CellClass::kValid;
  core::RunMetrics metrics;
};

using ReplyPtr = std::shared_ptr<const BudgetReply>;

/// Per-request completion hook: invoked exactly once per submitted request
/// when its reply is available — on the submitting thread for an LRU hit,
/// on the batcher thread otherwise. Never invoked under the service lock.
using ReplyHandler = std::function<void(const BudgetReply&)>;

struct ServiceConfig {
  /// Workers for the batch fan-out; 0 = hardware_concurrency. The service
  /// owns its pool — pipeline-internal parallel_for still uses the global
  /// one, so nesting cannot deadlock.
  std::size_t worker_threads = 0;
  /// Most requests drained per batch (>= 1).
  std::size_t max_batch = 64;
  /// Finished-reply LRU capacity; 0 = unbounded.
  std::size_t reply_cache_capacity = 1024;
  /// Base RunConfig for kRun requests (iterations, network, tree, ...).
  /// `run_salt`, `telemetry` and `fault` are overridden per request —
  /// faults are not served (they would break reply purity).
  core::RunConfig run;
};

/// Everything the service needs to answer for one fabricated fleet. The
/// calibration artifacts beyond `pvt` are optional warm-start state (e.g.
/// restored from a snapshot): missing ones are computed on demand through
/// the process-wide CalibrationCache with the canonical seed forks, so a
/// warm and a cold entry serve bitwise-identical replies.
struct ClusterState {
  std::shared_ptr<const cluster::Cluster> cluster;
  std::vector<hw::ModuleId> allocation;
  std::shared_ptr<const core::Pvt> pvt;  ///< null = calibrate on register
  /// Single-module test runs by workload name.
  std::map<std::string, std::shared_ptr<const core::TestRunResult>> test_runs;
  /// Calibrated PMTs by "<scheme>/<workload>".
  std::map<std::string, std::shared_ptr<const core::Pmt>> pmts;
};

/// Runs calibration for `state` up front: the PVT, the test run of every
/// named workload and the PMT of every (scheme, workload) pair — built by
/// the schemes' own pipeline stages, so the tables are bitwise what a run
/// would produce. This is what `vapbctl snapshot save` persists.
ClusterState calibrate_state(std::shared_ptr<const cluster::Cluster> cluster,
                             std::vector<hw::ModuleId> allocation,
                             const std::vector<std::string>& workloads,
                             const std::vector<std::string>& schemes);

class BudgetService {
 public:
  struct Stats {
    std::uint64_t requests = 0;      ///< submitted
    std::uint64_t computed = 0;      ///< pipeline runs actually executed
    std::uint64_t dedup_hits = 0;    ///< coalesced onto an in-flight run
    std::uint64_t reply_hits = 0;    ///< served from the finished-reply LRU
    std::uint64_t reply_evictions = 0;
    std::uint64_t batches = 0;
    std::uint64_t max_batch = 0;     ///< largest batch drained so far
    std::size_t reply_entries = 0;   ///< current LRU population
  };

  explicit BudgetService(ServiceConfig config = {});

  /// Drains every queued request (fulfilling all outstanding futures) and
  /// joins the batcher.
  ~BudgetService();

  BudgetService(const BudgetService&) = delete;
  BudgetService& operator=(const BudgetService&) = delete;

  /// Registers a fleet. The first registration becomes the default target
  /// for requests with cluster_fingerprint 0. A missing `pvt` is calibrated
  /// here (through the CalibrationCache). Throws InvalidArgument on a null
  /// cluster, empty allocation or duplicate fingerprint.
  void register_cluster(ClusterState state);

  [[nodiscard]] bool has_cluster(std::uint64_t fingerprint) const;

  /// Enqueues a request; returns a future every duplicate waiter shares.
  /// `done` (optional) fires once per submitted request when the reply is
  /// available. The reply is never null; errors are reported in-band
  /// (ok = false) so one bad request cannot poison a batch.
  std::shared_future<ReplyPtr> submit(BudgetRequest request,
                                      ReplyHandler done = {});

  /// Blocking convenience: submit + get.
  ReplyPtr solve(BudgetRequest request);

  [[nodiscard]] Stats stats() const;

  /// Adds the service counters ("service_requests", "service_computed",
  /// "service_dedup_hits", "service_reply_hits", "service_reply_evictions",
  /// "service_batches") to `telemetry`.
  void merge_stats(util::Telemetry& telemetry) const;

  [[nodiscard]] const ServiceConfig& config() const { return config_; }

 private:
  struct Impl;
  ServiceConfig config_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace vapb::service
