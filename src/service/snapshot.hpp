// Versioned, checksummed, mmap-able binary snapshots of calibrated cluster
// state, so a cold worker process reaches serving state with one mmap
// instead of re-running calibration.
//
// A snapshot records the *identity* of the fabricated fleet (architecture
// preset, master seed, module count, fingerprint) plus every derived
// artifact a BudgetService serves from: the allocation, the system PVT, the
// per-workload single-module test runs, the per-(scheme, workload) PMTs and
// the ClusterSoA coefficient arrays. Restoring refabricates the (cheap,
// deterministic) module objects from the identity and verifies both the
// fleet fingerprint and a bitwise comparison of the regathered SoA arrays
// against the stored ones — so a version skew that changes fabrication is
// caught at load, never served.
//
// File layout, version 2 (all integers/doubles raw host-endian, 8-byte
// aligned):
//
//   header  | magic "VAPBSNAP" | u32 version | u32 reserved
//           | u64 payload_bytes | u64 fnv1a64(payload)
//   payload | u64 endianness sentinel
//           | identity: arch short name, u64 master seed, u64 module count,
//             u64 fleet fingerprint, class mix string ("cpu:1536,gpu:320")
//           | allocation: u64 n, n x u64 module ids
//           | pvt: microbench name, u64 n, n x 4 doubles
//           | soa: u64 n, 6 x (n doubles), n device-class bytes (padded)
//           | test runs: u64 n, n x {workload name, u64 module, 6 doubles}
//           | pmts: u64 n, n x {scheme, workload, 2 doubles (fmax, fmin),
//             u64 entries, entries x 4 doubles, u64 hetero flag,
//             [if hetero: 3 x 2 doubles class ranges, entries class bytes]}
//
// Strings are u64 length + bytes, zero-padded to 8. Version 2 added the
// class mix to the identity block, the device-class column to the SoA
// block and the optional per-class tail of each PMT; version 1 files are
// rejected with a SnapshotError naming the skew (they predate device
// classes, so a v1 fleet identity is ambiguous on this build). A
// corrupted, truncated or version-skewed file fails with a clear
// SnapshotError — never UB: the loader bounds-checks every read against
// the mapped extent and verifies the checksum before parsing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "service/budget_service.hpp"
#include "util/error.hpp"

namespace vapb::service {

/// A snapshot file failed validation (bad magic, unsupported version,
/// truncation, checksum mismatch, fingerprint skew) or could not be
/// read/written.
class SnapshotError : public Error {
 public:
  explicit SnapshotError(const std::string& what) : Error(what) {}
};

inline constexpr std::uint32_t kSnapshotVersion = 2;

/// Writes `state` to `path`. `arch` must be the preset short name the
/// cluster was fabricated from and `master_seed` the fabrication master
/// seed (Cluster does not retain it); both are verified by refabrication at
/// load time via the fleet fingerprint. Throws SnapshotError on I/O
/// failure, InvalidArgument on an unknown arch or a state/identity
/// mismatch.
void save_snapshot(const std::string& path, const std::string& arch,
                   std::uint64_t master_seed, const ClusterState& state);

/// A loaded, validated snapshot: an mmap of the file plus the parsed view.
/// Move-only; the mapping lives until destruction.
class Snapshot {
 public:
  /// Maps and validates `path` (magic, version, size, checksum). Parsing is
  /// deferred to restore(); the metadata accessors below are parsed here.
  static Snapshot load(const std::string& path);

  Snapshot(Snapshot&& other) noexcept;
  Snapshot& operator=(Snapshot&& other) noexcept;
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;
  ~Snapshot();

  /// Refabricates the cluster and materializes every artifact. Verifies the
  /// fleet fingerprint and the SoA arrays bitwise; throws SnapshotError if
  /// the stored state cannot be reproduced on this build.
  [[nodiscard]] ClusterState restore() const;

  // -- identity / inventory (for `vapbctl snapshot load` summaries) ---------
  [[nodiscard]] std::uint32_t version() const { return version_; }
  [[nodiscard]] const std::string& arch() const { return arch_; }
  /// Canonical class-mix string ("cpu:64" on a homogeneous fleet).
  [[nodiscard]] const std::string& mix() const { return mix_; }
  [[nodiscard]] std::uint64_t master_seed() const { return master_seed_; }
  [[nodiscard]] std::size_t module_count() const { return module_count_; }
  [[nodiscard]] std::uint64_t fleet_fingerprint() const {
    return fingerprint_;
  }
  [[nodiscard]] std::size_t allocation_size() const { return allocation_n_; }
  [[nodiscard]] std::size_t test_run_count() const { return test_runs_n_; }
  [[nodiscard]] std::size_t pmt_count() const { return pmts_n_; }
  [[nodiscard]] std::size_t file_bytes() const { return size_; }

 private:
  Snapshot() = default;

  const unsigned char* data_ = nullptr;  // mmap base
  std::size_t size_ = 0;

  std::uint32_t version_ = 0;
  std::string arch_;
  std::string mix_;
  std::uint64_t master_seed_ = 0;
  std::size_t module_count_ = 0;
  std::uint64_t fingerprint_ = 0;
  std::size_t allocation_n_ = 0;
  std::size_t test_runs_n_ = 0;
  std::size_t pmts_n_ = 0;
};

}  // namespace vapb::service
