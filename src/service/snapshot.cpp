#include "service/snapshot.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "cluster/cluster_soa.hpp"
#include "hw/arch.hpp"
#include "util/rng.hpp"

namespace vapb::service {

namespace {

constexpr char kMagic[8] = {'V', 'A', 'P', 'B', 'S', 'N', 'A', 'P'};
constexpr std::size_t kHeaderBytes = 32;
// First payload word: snapshots are raw host-layout doubles, so a file
// written on a different-endianness host must be rejected, not reinterpreted.
constexpr std::uint64_t kEndianSentinel = 0x0102030405060708ULL;

[[noreturn]] void fail(const std::string& what) { throw SnapshotError(what); }

std::uint64_t payload_checksum(const unsigned char* data, std::size_t n) {
  return util::fnv1a(
      std::string_view(reinterpret_cast<const char*>(data), n));
}

// -- payload serializer ------------------------------------------------------

struct Writer {
  std::string buf;

  void raw(const void* p, std::size_t n) {
    buf.append(static_cast<const char*>(p), n);
  }
  void pad() {
    while (buf.size() % 8 != 0) buf.push_back('\0');
  }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
    pad();
  }
  void bytes(const std::uint8_t* p, std::size_t n) {
    raw(p, n);
    pad();
  }
};

// -- bounds-checked payload reader -------------------------------------------

struct Cursor {
  const unsigned char* p;
  std::size_t n;
  std::size_t off = 0;

  void need(std::size_t bytes, const char* what) {
    if (n - off < bytes) {
      std::ostringstream os;
      os << "truncated snapshot: payload ends inside " << what << " (need "
         << bytes << " bytes at offset " << off << ", " << (n - off)
         << " left)";
      fail(os.str());
    }
  }
  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v;
    std::memcpy(&v, p + off, 8);
    off += 8;
    return v;
  }
  double f64(const char* what) {
    need(8, what);
    double v;
    std::memcpy(&v, p + off, 8);
    off += 8;
    return v;
  }
  std::string str(const char* what) {
    const std::uint64_t len = u64(what);
    need(len, what);
    std::string s(reinterpret_cast<const char*>(p + off),
                  static_cast<std::size_t>(len));
    off += static_cast<std::size_t>(len);
    while (off % 8 != 0) {
      need(1, what);
      ++off;
    }
    return s;
  }
  void skip_f64s(std::uint64_t count, const char* what) {
    // Guard the multiply: a corrupted count must trip the bounds check, not
    // wrap around it.
    if (count > n / 8) need(n + 8, what);
    need(static_cast<std::size_t>(count) * 8, what);
    off += static_cast<std::size_t>(count) * 8;
  }
  /// A raw byte block of `count` bytes, zero-padded to the next 8-byte
  /// boundary (the device-class columns). Returns the block start.
  const unsigned char* bytes(std::uint64_t count, const char* what) {
    if (count > n) need(n + 8, what);
    need(static_cast<std::size_t>(count), what);
    const unsigned char* q = p + off;
    off += static_cast<std::size_t>(count);
    while (off % 8 != 0) {
      need(1, what);
      ++off;
    }
    return q;
  }
};

// Walks the payload structure without materializing anything — shared by
// load-time validation (which also derives the inventory counts) and by
// nothing else; restore() re-reads through the same Cursor primitives.
struct Inventory {
  std::string arch;
  std::string mix;
  std::uint64_t master_seed = 0;
  std::uint64_t module_count = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t allocation_n = 0;
  std::uint64_t test_runs_n = 0;
  std::uint64_t pmts_n = 0;
};

Inventory walk(Cursor& c) {
  Inventory inv;
  if (c.u64("the endianness sentinel") != kEndianSentinel) {
    fail("snapshot was written on an incompatible (different-endianness) "
         "host");
  }
  inv.arch = c.str("the architecture name");
  inv.master_seed = c.u64("the master seed");
  inv.module_count = c.u64("the module count");
  inv.fingerprint = c.u64("the fleet fingerprint");
  inv.mix = c.str("the class mix");
  inv.allocation_n = c.u64("the allocation size");
  c.skip_f64s(inv.allocation_n, "the allocation");
  c.str("the PVT microbenchmark name");
  c.skip_f64s(c.u64("the PVT size") * 4, "the PVT entries");
  const std::uint64_t soa_n = c.u64("the SoA size");
  c.skip_f64s(soa_n * 6, "the SoA arrays");
  c.bytes(soa_n, "the device-class column");
  inv.test_runs_n = c.u64("the test-run count");
  for (std::uint64_t i = 0; i < inv.test_runs_n; ++i) {
    c.str("a test-run workload name");
    c.skip_f64s(7, "a test run");
  }
  inv.pmts_n = c.u64("the PMT count");
  for (std::uint64_t i = 0; i < inv.pmts_n; ++i) {
    c.str("a PMT scheme name");
    c.str("a PMT workload name");
    c.skip_f64s(2, "a PMT frequency range");
    const std::uint64_t entries_n = c.u64("a PMT size");
    c.skip_f64s(entries_n * 4, "PMT entries");
    if (c.u64("a PMT hetero flag") != 0) {
      c.skip_f64s(2 * hw::kDeviceClassCount, "PMT class ranges");
      c.bytes(entries_n, "the PMT class column");
    }
  }
  if (c.off != c.n) fail("snapshot has trailing bytes after the payload");
  return inv;
}

}  // namespace

void save_snapshot(const std::string& path, const std::string& arch,
                   std::uint64_t master_seed, const ClusterState& state) {
  if (!state.cluster || !state.pvt) {
    throw InvalidArgument("save_snapshot: state needs a cluster and a PVT");
  }
  // Prove (arch, seed, mix) actually reproduces this fleet before
  // persisting the claim — a snapshot that cannot restore is worthless.
  const hw::ArchSpec spec = hw::arch_by_name(arch);
  const hw::ClassMix& mix = state.cluster->mix();
  cluster::Cluster refab =
      state.cluster->heterogeneous()
          ? cluster::Cluster(spec, util::SeedSequence(master_seed), mix)
          : cluster::Cluster(spec, util::SeedSequence(master_seed),
                             state.cluster->size());
  if (refab.fingerprint() != state.cluster->fingerprint()) {
    throw InvalidArgument(
        "save_snapshot: (arch, seed, mix) do not refabricate this "
        "cluster — fingerprint mismatch");
  }

  Writer w;
  w.u64(kEndianSentinel);
  w.str(arch);
  w.u64(master_seed);
  w.u64(state.cluster->size());
  w.u64(state.cluster->fingerprint());
  w.str(mix.str());
  w.u64(state.allocation.size());
  for (hw::ModuleId id : state.allocation) w.u64(id);
  w.str(state.pvt->microbench_name());
  w.u64(state.pvt->size());
  for (const core::PvtEntry& e : state.pvt->entries()) {
    w.f64(e.cpu_max);
    w.f64(e.dram_max);
    w.f64(e.cpu_min);
    w.f64(e.dram_min);
  }
  const cluster::ClusterSoA soa = cluster::ClusterSoA::gather(*state.cluster);
  w.u64(soa.size());
  for (auto span : {soa.cpu_dyn_scale(), soa.cpu_static_scale(),
                    soa.dram_scale(), soa.freq_scale(), soa.max_freq_ghz(),
                    soa.tdp_cpu_w()}) {
    for (double v : span) w.f64(v);
  }
  w.bytes(soa.device_class().data(), soa.device_class().size());
  w.u64(state.test_runs.size());
  for (const auto& [name, test] : state.test_runs) {
    w.str(name);
    w.u64(test->module);
    w.f64(test->fmax_ghz.value());
    w.f64(test->fmin_ghz.value());
    w.f64(test->cpu_max_w.value());
    w.f64(test->dram_max_w.value());
    w.f64(test->cpu_min_w.value());
    w.f64(test->dram_min_w.value());
  }
  w.u64(state.pmts.size());
  for (const auto& [key, pmt] : state.pmts) {
    const std::size_t slash = key.find('/');
    VAPB_REQUIRE_MSG(slash != std::string::npos,
                     "ClusterState PMT keys are '<scheme>/<workload>'");
    w.str(key.substr(0, slash));
    w.str(key.substr(slash + 1));
    w.f64(pmt->fmax_ghz().value());
    w.f64(pmt->fmin_ghz().value());
    w.u64(pmt->size());
    for (const core::PmtEntry& e : pmt->entries()) {
      w.f64(e.cpu_max_w.value());
      w.f64(e.dram_max_w.value());
      w.f64(e.cpu_min_w.value());
      w.f64(e.dram_min_w.value());
    }
    // Per-class tail: only heterogeneous tables carry per-entry classes and
    // per-class frequency ranges; writing the flag unconditionally keeps
    // the structure self-describing.
    w.u64(pmt->heterogeneous() ? 1 : 0);
    if (pmt->heterogeneous()) {
      for (hw::DeviceClass c : hw::all_device_classes()) {
        const core::ClassFreqRange r = pmt->class_range(c);
        w.f64(r.fmax_ghz.value());
        w.f64(r.fmin_ghz.value());
      }
      std::vector<std::uint8_t> classes(pmt->size());
      for (std::size_t k = 0; k < classes.size(); ++k) {
        classes[k] = static_cast<std::uint8_t>(pmt->device_class(k));
      }
      w.bytes(classes.data(), classes.size());
    }
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail("cannot open snapshot for writing: " + path);
  std::uint32_t version = kSnapshotVersion;
  std::uint32_t reserved = 0;
  std::uint64_t payload_bytes = w.buf.size();
  std::uint64_t checksum = payload_checksum(
      reinterpret_cast<const unsigned char*>(w.buf.data()), w.buf.size());
  out.write(kMagic, sizeof kMagic);
  out.write(reinterpret_cast<const char*>(&version), sizeof version);
  out.write(reinterpret_cast<const char*>(&reserved), sizeof reserved);
  out.write(reinterpret_cast<const char*>(&payload_bytes),
            sizeof payload_bytes);
  out.write(reinterpret_cast<const char*>(&checksum), sizeof checksum);
  out.write(w.buf.data(), static_cast<std::streamsize>(w.buf.size()));
  out.flush();
  if (!out) fail("short write while saving snapshot: " + path);
}

Snapshot Snapshot::load(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(vararg)
  if (fd < 0) {
    fail("cannot open snapshot: " + path + " (" + std::strerror(errno) + ")");
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail("cannot stat snapshot: " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < kHeaderBytes) {
    ::close(fd);
    std::ostringstream os;
    os << "truncated snapshot: " << path << " holds " << size
       << " bytes, smaller than the " << kHeaderBytes << "-byte header";
    fail(os.str());
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) fail("mmap failed for snapshot: " + path);

  Snapshot snap;
  snap.data_ = static_cast<const unsigned char*>(map);
  snap.size_ = size;
  // From here on, `snap`'s destructor owns the munmap; validation failures
  // release the mapping via stack unwinding.
  if (std::memcmp(snap.data_, kMagic, sizeof kMagic) != 0) {
    fail("not a VAPB snapshot (bad magic): " + path);
  }
  std::uint32_t version;
  std::memcpy(&version, snap.data_ + 8, sizeof version);
  if (version == 1) {
    fail("unsupported snapshot version 1 in " + path +
         ": version 1 predates the per-device-class fleet layout, so its "
         "identity block cannot name the class mix this build budgets "
         "with — re-save the snapshot with this build (version 2)");
  }
  if (version != kSnapshotVersion) {
    std::ostringstream os;
    os << "unsupported snapshot version " << version << " in " << path
       << " (this build reads version " << kSnapshotVersion << ")";
    fail(os.str());
  }
  snap.version_ = version;
  std::uint64_t payload_bytes;
  std::uint64_t checksum;
  std::memcpy(&payload_bytes, snap.data_ + 16, sizeof payload_bytes);
  std::memcpy(&checksum, snap.data_ + 24, sizeof checksum);
  if (payload_bytes != size - kHeaderBytes) {
    std::ostringstream os;
    os << "truncated snapshot: header declares " << payload_bytes
       << " payload bytes but " << path << " holds " << (size - kHeaderBytes);
    fail(os.str());
  }
  if (payload_checksum(snap.data_ + kHeaderBytes, payload_bytes) != checksum) {
    fail("snapshot checksum mismatch (file corrupted): " + path);
  }
  Cursor c{snap.data_ + kHeaderBytes, payload_bytes};
  const Inventory inv = walk(c);
  snap.arch_ = inv.arch;
  snap.mix_ = inv.mix;
  snap.master_seed_ = inv.master_seed;
  snap.module_count_ = static_cast<std::size_t>(inv.module_count);
  snap.fingerprint_ = inv.fingerprint;
  snap.allocation_n_ = static_cast<std::size_t>(inv.allocation_n);
  snap.test_runs_n_ = static_cast<std::size_t>(inv.test_runs_n);
  snap.pmts_n_ = static_cast<std::size_t>(inv.pmts_n);
  return snap;
}

Snapshot::Snapshot(Snapshot&& other) noexcept { *this = std::move(other); }

Snapshot& Snapshot::operator=(Snapshot&& other) noexcept {
  if (this == &other) return *this;
  if (data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
  }
  data_ = std::exchange(other.data_, nullptr);
  size_ = std::exchange(other.size_, 0);
  version_ = other.version_;
  arch_ = std::move(other.arch_);
  mix_ = std::move(other.mix_);
  master_seed_ = other.master_seed_;
  module_count_ = other.module_count_;
  fingerprint_ = other.fingerprint_;
  allocation_n_ = other.allocation_n_;
  test_runs_n_ = other.test_runs_n_;
  pmts_n_ = other.pmts_n_;
  return *this;
}

Snapshot::~Snapshot() {
  if (data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
  }
}

ClusterState Snapshot::restore() const {
  VAPB_REQUIRE_MSG(data_ != nullptr, "restore() on a moved-from Snapshot");
  Cursor c{data_ + kHeaderBytes, size_ - kHeaderBytes};
  c.u64("the endianness sentinel");
  const std::string arch = c.str("the architecture name");
  const std::uint64_t master_seed = c.u64("the master seed");
  const auto module_count =
      static_cast<std::size_t>(c.u64("the module count"));
  const std::uint64_t fingerprint = c.u64("the fleet fingerprint");
  const std::string mix_str = c.str("the class mix");

  ClusterState state;
  hw::ArchSpec spec = [&] {
    try {
      return hw::arch_by_name(arch);
    } catch (const InvalidArgument&) {
      throw SnapshotError("snapshot names unknown architecture preset '" +
                          arch + "'");
    }
  }();
  const hw::ClassMix mix = [&] {
    try {
      return hw::ClassMix::parse(mix_str);
    } catch (const InvalidArgument& e) {
      throw SnapshotError("snapshot carries an unparseable class mix '" +
                          mix_str + "': " + e.what());
    }
  }();
  if (mix.total() != module_count) {
    fail("snapshot class mix '" + mix_str + "' sums to " +
         std::to_string(mix.total()) + " modules but the identity block "
         "declares " + std::to_string(module_count));
  }
  auto cluster =
      mix.homogeneous_cpu()
          ? std::make_shared<cluster::Cluster>(
                std::move(spec), util::SeedSequence(master_seed), module_count)
          : std::make_shared<cluster::Cluster>(
                std::move(spec), util::SeedSequence(master_seed), mix);
  if (cluster->fingerprint() != fingerprint) {
    fail("snapshot fleet fingerprint mismatch: refabrication no longer "
         "reproduces the stored fleet (architecture tables or fabrication "
         "changed since the snapshot was written)");
  }

  const auto allocation_n =
      static_cast<std::size_t>(c.u64("the allocation size"));
  state.allocation.reserve(allocation_n);
  for (std::size_t i = 0; i < allocation_n; ++i) {
    const std::uint64_t id = c.u64("the allocation");
    if (id >= module_count) {
      fail("snapshot allocation names module " + std::to_string(id) +
           " outside the fleet");
    }
    state.allocation.push_back(static_cast<hw::ModuleId>(id));
  }

  const std::string micro = c.str("the PVT microbenchmark name");
  const auto pvt_n = static_cast<std::size_t>(c.u64("the PVT size"));
  std::vector<core::PvtEntry> pvt_entries(pvt_n);
  for (core::PvtEntry& e : pvt_entries) {
    e.cpu_max = c.f64("a PVT entry");
    e.dram_max = c.f64("a PVT entry");
    e.cpu_min = c.f64("a PVT entry");
    e.dram_min = c.f64("a PVT entry");
  }
  state.pvt =
      std::make_shared<const core::Pvt>(micro, std::move(pvt_entries));

  // The stored SoA arrays double as an end-to-end integrity check: regather
  // from the refabricated fleet and require bitwise equality.
  const auto soa_n = static_cast<std::size_t>(c.u64("the SoA size"));
  const cluster::ClusterSoA soa = cluster::ClusterSoA::gather(*cluster);
  if (soa_n != soa.size()) {
    fail("snapshot SoA size does not match the refabricated fleet");
  }
  for (auto span : {soa.cpu_dyn_scale(), soa.cpu_static_scale(),
                    soa.dram_scale(), soa.freq_scale(), soa.max_freq_ghz(),
                    soa.tdp_cpu_w()}) {
    for (double expected : span) {
      const double stored = c.f64("the SoA arrays");
      if (std::bit_cast<std::uint64_t>(stored) !=
          std::bit_cast<std::uint64_t>(expected)) {
        fail("snapshot SoA arrays diverge bitwise from the refabricated "
             "fleet — refusing to serve from this snapshot");
      }
    }
  }
  const unsigned char* stored_classes =
      c.bytes(soa_n, "the device-class column");
  if (soa_n != 0 &&
      std::memcmp(stored_classes, soa.device_class().data(), soa_n) != 0) {
    fail("snapshot device-class column diverges from the refabricated "
         "fleet — refusing to serve from this snapshot");
  }

  const auto tests_n = static_cast<std::size_t>(c.u64("the test-run count"));
  for (std::size_t i = 0; i < tests_n; ++i) {
    const std::string wname = c.str("a test-run workload name");
    auto t = std::make_shared<core::TestRunResult>();
    t->module = static_cast<hw::ModuleId>(c.u64("a test run"));
    t->fmax_ghz = util::GigaHertz{c.f64("a test run")};
    t->fmin_ghz = util::GigaHertz{c.f64("a test run")};
    t->cpu_max_w = util::Watts{c.f64("a test run")};
    t->dram_max_w = util::Watts{c.f64("a test run")};
    t->cpu_min_w = util::Watts{c.f64("a test run")};
    t->dram_min_w = util::Watts{c.f64("a test run")};
    state.test_runs.emplace(wname, std::move(t));
  }

  const auto pmts_n = static_cast<std::size_t>(c.u64("the PMT count"));
  for (std::size_t i = 0; i < pmts_n; ++i) {
    const std::string scheme = c.str("a PMT scheme name");
    const std::string wname = c.str("a PMT workload name");
    const util::GigaHertz fmax{c.f64("a PMT frequency range")};
    const util::GigaHertz fmin{c.f64("a PMT frequency range")};
    const auto n = static_cast<std::size_t>(c.u64("a PMT size"));
    std::vector<core::PmtEntry> entries(n);
    for (core::PmtEntry& e : entries) {
      e.cpu_max_w = util::Watts{c.f64("PMT entries")};
      e.dram_max_w = util::Watts{c.f64("PMT entries")};
      e.cpu_min_w = util::Watts{c.f64("PMT entries")};
      e.dram_min_w = util::Watts{c.f64("PMT entries")};
    }
    if (c.u64("a PMT hetero flag") != 0) {
      std::array<core::ClassFreqRange, hw::kDeviceClassCount> ranges{};
      for (core::ClassFreqRange& r : ranges) {
        r.fmax_ghz = util::GigaHertz{c.f64("PMT class ranges")};
        r.fmin_ghz = util::GigaHertz{c.f64("PMT class ranges")};
      }
      const unsigned char* cls = c.bytes(n, "the PMT class column");
      std::vector<hw::DeviceClass> classes(n);
      for (std::size_t k = 0; k < n; ++k) {
        if (cls[k] >= hw::kDeviceClassCount) {
          fail("snapshot PMT class column holds invalid device class " +
               std::to_string(cls[k]));
        }
        classes[k] = static_cast<hw::DeviceClass>(cls[k]);
      }
      state.pmts.emplace(scheme + '/' + wname,
                         std::make_shared<const core::Pmt>(
                             std::move(entries), fmax, fmin,
                             std::move(classes), ranges));
    } else {
      state.pmts.emplace(
          scheme + '/' + wname,
          std::make_shared<const core::Pmt>(std::move(entries), fmax, fmin));
    }
  }

  state.cluster = std::move(cluster);
  return state;
}

}  // namespace vapb::service
