// The wire front-end of BudgetService: newline-delimited JSON over a local
// AF_UNIX socket (`vapbd --socket PATH`) or over stdio (`vapbd --stdio`),
// plus the request/reply codec, exposed so tests and benches can exercise
// the protocol in-process — the determinism gates never depend on the
// kernel's socket layer.
//
// Protocol: one JSON object per line.
//
//   request  {"id": 7, "scheme": "VaPc", "workload": "MHD",
//             "budget_w": 2160, "kind": "solve", "salt": 0,
//             "cluster": "<hex fingerprint>"}
//   reply    {"id": 7, "ok": true, "alpha": ..., "target_freq_ghz": ...,
//             "constrained": true, "fits_at_fmin": true,
//             "predicted_total_w": ..., "allocations": [[module_w,
//             cpu_cap_w, dram_w], ...]}
//
// "kind": "run" replies carry {"cell", "feasible", "makespan_s",
// "total_power_w", "vp", "vf"} instead of the allocation vector. Control
// lines {"cmd": "stats"} and {"cmd": "quit"} report service counters and
// shut the server down. Malformed lines produce {"ok": false, "error": ...}
// with a did-you-mean suggestion for misspelled fields; they never kill the
// server. Replies are written in completion order (the id, echoed
// verbatim, correlates them), so a pipelining client keeps the batcher fed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "service/budget_service.hpp"

namespace vapb::service {

/// Parses one request line. Throws InvalidArgument on malformed JSON,
/// unknown fields (with a nearest-name suggestion) or bad values. `id_out`
/// receives the "id" field (0 when absent); `cmd_out` the "cmd" field (""
/// when absent — when set, the other fields are ignored).
BudgetRequest parse_request_json(const std::string& line,
                                 std::int64_t& id_out, std::string& cmd_out);

/// Serializes a reply (allocations capped at `max_allocations` entries to
/// bound line length; 0 = all).
std::string reply_to_json(const BudgetReply& reply, std::int64_t id,
                          std::size_t max_allocations = 0);

/// One JSON object of service counters (the {"cmd": "stats"} reply).
std::string stats_to_json(const BudgetService::Stats& stats,
                          std::int64_t id);

struct ServerOptions {
  std::string socket_path;  ///< AF_UNIX path; empty = stdio transport
  /// Truncate reply allocation vectors (0 = send all entries).
  std::size_t max_allocations = 0;
};

/// Serves `service` until EOF (stdio) or a {"cmd": "quit"} line; drains all
/// in-flight requests before returning. Returns a process exit code.
int serve(BudgetService& service, const ServerOptions& options);

/// Serves a line-oriented stream pair directly (the stdio transport, also
/// used by tests). Returns when `in` is exhausted or quit is requested.
void serve_stream(BudgetService& service, std::istream& in, std::ostream& out,
                  std::size_t max_allocations = 0);

// ---------------------------------------------------------------------------
// vapbd / `vapbctl serve` entry point
// ---------------------------------------------------------------------------

struct DaemonOptions {
  std::string arch = "ha8k";
  std::size_t modules = 24;
  std::uint64_t seed = 2015;
  std::string snapshot_path;  ///< warm-start state; empty = calibrate cold
  std::string socket_path;    ///< empty + !stdio also means stdio
  bool stdio = false;
  std::size_t threads = 0;      ///< batch fan-out workers
  std::size_t max_batch = 64;
  std::size_t reply_cache = 1024;
  int iterations = 6;           ///< kRun DES iterations
  std::size_t max_allocations = 0;
};

/// Builds the service (cold-calibrated fleet, or restored from
/// `snapshot_path`) and serves it. Shared by the vapbd binary and
/// `vapbctl serve`.
int run_daemon(const DaemonOptions& options);

}  // namespace vapb::service
