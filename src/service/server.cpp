#include "service/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "core/campaign.hpp"
#include "service/snapshot.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace vapb::service {

namespace {

// -- JSON helpers ------------------------------------------------------------

const std::vector<std::string>& request_fields() {
  static const std::vector<std::string> fields = {
      "id", "cmd", "scheme", "workload", "budget_w", "kind", "salt",
      "cluster"};
  return fields;
}

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Round-trippable double formatting for the wire (%.17g survives
// text -> double -> text).
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// A single-purpose scanner for the flat request objects the protocol
// allows: one level of {"key": scalar} pairs, scalars being strings,
// numbers, true or false. Anything else is a protocol error with a precise
// message — the server never guesses.
class FlatJsonScanner {
 public:
  explicit FlatJsonScanner(const std::string& line) : s_(line) {}

  /// Returns key -> raw scalar (strings unquoted/unescaped).
  std::map<std::string, std::string> parse() {
    std::map<std::string, std::string> fields;
    ws();
    expect('{', "request must be a JSON object");
    ws();
    if (eat('}')) {
      require_end();
      return fields;
    }
    for (;;) {
      ws();
      std::string key = string_lit("field name");
      ws();
      expect(':', "expected ':' after field name");
      ws();
      std::string value = scalar(key);
      if (!fields.emplace(std::move(key), std::move(value)).second) {
        throw InvalidArgument("duplicate field in request");
      }
      ws();
      if (eat(',')) continue;
      expect('}', "expected ',' or '}' in request object");
      break;
    }
    require_end();
    return fields;
  }

 private:
  void ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_])))
      ++i_;
  }
  bool eat(char c) {
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }
  void expect(char c, const char* what) {
    if (!eat(c)) {
      throw InvalidArgument(std::string(what) + " at offset " +
                            std::to_string(i_));
    }
  }
  void require_end() {
    ws();
    if (i_ != s_.size()) {
      throw InvalidArgument("trailing characters after request object");
    }
  }
  std::string string_lit(const char* what) {
    expect('"', what);
    std::string out;
    while (i_ < s_.size() && s_[i_] != '"') {
      char c = s_[i_++];
      if (c == '\\') {
        if (i_ >= s_.size()) break;
        char e = s_[i_++];
        switch (e) {
          case '"':
          case '\\':
          case '/':
            out += e;
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          default:
            throw InvalidArgument(std::string("unsupported escape '\\") + e +
                                  "' in string");
        }
      } else {
        out += c;
      }
    }
    expect('"', "unterminated string");
    return out;
  }
  std::string scalar(const std::string& key) {
    if (i_ < s_.size() && s_[i_] == '"') return string_lit("string value");
    const std::size_t start = i_;
    while (i_ < s_.size() && (std::isalnum(static_cast<unsigned char>(s_[i_])) ||
                              s_[i_] == '-' || s_[i_] == '+' ||
                              s_[i_] == '.' || s_[i_] == 'e' ||
                              s_[i_] == 'E')) {
      ++i_;
    }
    if (i_ == start) {
      throw InvalidArgument("field \"" + key +
                            "\" has no value (nested objects/arrays are not "
                            "part of the protocol)");
    }
    return s_.substr(start, i_ - start);
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

double parse_double(const std::string& key, const std::string& raw) {
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0') {
    throw InvalidArgument("field \"" + key + "\" is not a number: " + raw);
  }
  return v;
}

std::uint64_t parse_u64(const std::string& key, const std::string& raw,
                        int base) {
  char* end = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(raw.c_str(), &end, base);
  if (end == raw.c_str() || *end != '\0' || errno == ERANGE) {
    throw InvalidArgument("field \"" + key + "\" is not a valid integer: " +
                          raw);
  }
  return v;
}

}  // namespace

BudgetRequest parse_request_json(const std::string& line,
                                 std::int64_t& id_out, std::string& cmd_out) {
  id_out = 0;
  cmd_out.clear();
  std::map<std::string, std::string> fields = FlatJsonScanner(line).parse();
  for (const auto& [key, value] : fields) {
    if (std::find(request_fields().begin(), request_fields().end(), key) ==
        request_fields().end()) {
      std::string msg = "unknown request field \"" + key + "\"";
      const std::string suggestion =
          util::nearest_name(key, request_fields());
      if (!suggestion.empty()) {
        msg += " (did you mean \"" + suggestion + "\"?)";
      }
      throw InvalidArgument(msg);
    }
  }
  if (auto it = fields.find("id"); it != fields.end()) {
    id_out =
        static_cast<std::int64_t>(parse_u64("id", it->second, /*base=*/10));
  }
  if (auto it = fields.find("cmd"); it != fields.end()) {
    cmd_out = it->second;
    return {};
  }
  BudgetRequest req;
  for (const char* required : {"scheme", "workload", "budget_w"}) {
    if (fields.count(required) == 0) {
      throw InvalidArgument(std::string("request is missing field \"") +
                            required + "\"");
    }
  }
  req.scheme = fields.at("scheme");
  req.workload = fields.at("workload");
  req.budget_w = parse_double("budget_w", fields.at("budget_w"));
  if (auto it = fields.find("kind"); it != fields.end()) {
    req.kind = request_kind_by_name(it->second);
  }
  if (auto it = fields.find("salt"); it != fields.end()) {
    req.salt = parse_u64("salt", it->second, /*base=*/10);
  }
  if (auto it = fields.find("cluster"); it != fields.end()) {
    req.cluster_fingerprint =
        parse_u64("cluster", it->second, /*base=*/16);
  }
  return req;
}

std::string reply_to_json(const BudgetReply& reply, std::int64_t id,
                          std::size_t max_allocations) {
  std::ostringstream os;
  os << "{\"id\": " << id << ", \"ok\": " << (reply.ok ? "true" : "false");
  if (!reply.ok) {
    os << ", \"error\": \"" << escape_json(reply.error) << "\"}";
    return os.str();
  }
  os << ", \"scheme\": \"" << escape_json(reply.request.scheme)
     << "\", \"workload\": \"" << escape_json(reply.request.workload)
     << "\", \"budget_w\": " << num(reply.request.budget_w);
  if (reply.request.kind == RequestKind::kRun) {
    os << ", \"cell\": \"" << escape_json(core::cell_class_name(reply.cls))
       << "\", \"feasible\": " << (reply.metrics.feasible ? "true" : "false")
       << ", \"alpha\": " << num(reply.metrics.alpha)
       << ", \"target_freq_ghz\": " << num(reply.metrics.target_freq_ghz)
       << ", \"makespan_s\": " << num(reply.metrics.makespan_s)
       << ", \"total_power_w\": " << num(reply.metrics.total_power_w);
    if (reply.metrics.feasible) {
      os << ", \"vp\": " << num(reply.metrics.vp())
         << ", \"vf\": " << num(reply.metrics.vf());
    }
    os << '}';
    return os.str();
  }
  const core::BudgetResult& b = reply.budget;
  os << ", \"fits_at_fmin\": " << (b.fits_at_fmin ? "true" : "false")
     << ", \"constrained\": " << (b.constrained ? "true" : "false")
     << ", \"alpha\": " << num(b.alpha)
     << ", \"target_freq_ghz\": " << num(b.target_freq_ghz.value())
     << ", \"predicted_total_w\": " << num(b.predicted_total_w.value())
     << ", \"allocations\": [";
  const std::size_t n = max_allocations == 0
                            ? b.allocations.size()
                            : std::min(max_allocations,
                                       b.allocations.size());
  for (std::size_t k = 0; k < n; ++k) {
    if (k != 0) os << ", ";
    os << '[' << num(b.allocations[k].module_w.value()) << ", "
       << num(b.allocations[k].cpu_cap_w.value()) << ", "
       << num(b.allocations[k].dram_w.value()) << ']';
  }
  os << "], \"allocation_count\": " << b.allocations.size() << '}';
  return os.str();
}

std::string stats_to_json(const BudgetService::Stats& stats,
                          std::int64_t id) {
  std::ostringstream os;
  os << "{\"id\": " << id << ", \"ok\": true, \"requests\": "
     << stats.requests << ", \"computed\": " << stats.computed
     << ", \"dedup_hits\": " << stats.dedup_hits << ", \"reply_hits\": "
     << stats.reply_hits << ", \"reply_evictions\": "
     << stats.reply_evictions << ", \"reply_entries\": "
     << stats.reply_entries << ", \"batches\": " << stats.batches
     << ", \"max_batch\": " << stats.max_batch << '}';
  return os.str();
}

void serve_stream(BudgetService& service, std::istream& in, std::ostream& out,
                  std::size_t max_allocations) {
  std::mutex mutex;
  std::condition_variable drained;
  std::size_t outstanding = 0;
  auto write_line = [&](const std::string& text) {
    std::lock_guard lock(mutex);
    out << text << '\n';
    out.flush();
  };
  auto wait_drained = [&] {
    std::unique_lock lock(mutex);
    drained.wait(lock, [&] { return outstanding == 0; });
  };

  std::string line;
  while (std::getline(in, line)) {
    if (util::trim(line).empty()) continue;
    std::int64_t id = 0;
    std::string cmd;
    BudgetRequest req;
    try {
      req = parse_request_json(line, id, cmd);
    } catch (const std::exception& e) {
      BudgetReply bad;
      bad.ok = false;
      bad.error = e.what();
      write_line(reply_to_json(bad, id, max_allocations));
      continue;
    }
    if (cmd == "stats") {
      wait_drained();
      write_line(stats_to_json(service.stats(), id));
      continue;
    }
    if (cmd == "quit") {
      wait_drained();
      write_line("{\"id\": " + std::to_string(id) + ", \"ok\": true}");
      return;
    }
    if (!cmd.empty()) {
      BudgetReply bad;
      bad.ok = false;
      bad.error = "unknown cmd \"" + cmd + "\" (stats|quit)";
      write_line(reply_to_json(bad, id, max_allocations));
      continue;
    }
    {
      std::lock_guard lock(mutex);
      ++outstanding;
    }
    // Completion-order replies: the handler runs on the batcher (or, for an
    // LRU hit, right here) and writes under the output lock. A pipelining
    // client correlates via the echoed id.
    service.submit(std::move(req), [&, id](const BudgetReply& r) {
      const std::string text = reply_to_json(r, id, max_allocations);
      {
        std::lock_guard lock(mutex);
        out << text << '\n';
        out.flush();
        --outstanding;
      }
      drained.notify_all();
    });
  }
  wait_drained();
}

namespace {

// Minimal bidirectional streambuf over a connected socket, so the socket
// transport reuses serve_stream verbatim.
class FdStreamBuf final : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) { setg(in_, in_, in_); }

 protected:
  int_type underflow() override {
    const ssize_t n = ::read(fd_, in_, sizeof in_);
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(in_[0]);
  }
  int_type overflow(int_type ch) override {
    if (traits_type::eq_int_type(ch, traits_type::eof())) {
      return traits_type::not_eof(ch);
    }
    const char c = traits_type::to_char_type(ch);
    return write_all(&c, 1) ? ch : traits_type::eof();
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    return write_all(s, static_cast<std::size_t>(n)) ? n : 0;
  }

 private:
  bool write_all(const char* p, std::size_t n) {
    while (n > 0) {
      const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
      if (w <= 0) return false;
      p += w;
      n -= static_cast<std::size_t>(w);
    }
    return true;
  }

  int fd_;
  char in_[4096] = {};
};

}  // namespace

int serve(BudgetService& service, const ServerOptions& options) {
  if (options.socket_path.empty()) {
    serve_stream(service, std::cin, std::cout, options.max_allocations);
    return 0;
  }
  sockaddr_un addr{};
  if (options.socket_path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "vapbd: socket path too long: %s\n",
                 options.socket_path.c_str());
    return 2;
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("vapbd: socket");
    return 2;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options.socket_path.c_str(),
              options.socket_path.size() + 1);
  ::unlink(options.socket_path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener, 8) != 0) {
    std::perror("vapbd: bind/listen");
    ::close(listener);
    return 2;
  }
  std::fprintf(stderr, "vapbd: serving on %s\n", options.socket_path.c_str());
  // One connection at a time; a disconnecting client just ends its stream
  // (MSG_NOSIGNAL keeps EPIPE from killing the daemon) and the next accept
  // proceeds. {"cmd": "quit"} stops the daemon.
  for (;;) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      std::perror("vapbd: accept");
      break;
    }
    FdStreamBuf buf(conn);
    std::istream in(&buf);
    std::ostream out(&buf);
    serve_stream(service, in, out, options.max_allocations);
    ::close(conn);
    // serve_stream returns early only on quit; plain EOF (client hangup)
    // keeps the daemon up for the next connection.
    if (!in.eof()) break;
  }
  ::close(listener);
  ::unlink(options.socket_path.c_str());
  return 0;
}

int run_daemon(const DaemonOptions& options) {
  ServiceConfig config;
  config.worker_threads = options.threads;
  config.max_batch = options.max_batch;
  config.reply_cache_capacity = options.reply_cache;
  config.run.iterations = options.iterations;
  BudgetService service(config);
  if (!options.snapshot_path.empty()) {
    Snapshot snap = Snapshot::load(options.snapshot_path);
    ClusterState state = snap.restore();
    std::fprintf(stderr,
                 "vapbd: restored %s fleet (%zu modules, %zu test runs, %zu "
                 "PMTs) from %s\n",
                 snap.arch().c_str(), snap.module_count(),
                 snap.test_run_count(), snap.pmt_count(),
                 options.snapshot_path.c_str());
    service.register_cluster(std::move(state));
  } else {
    ClusterState state;
    state.cluster = std::make_shared<cluster::Cluster>(
        hw::arch_by_name(options.arch), util::SeedSequence(options.seed),
        options.modules);
    state.allocation.resize(options.modules);
    for (std::size_t i = 0; i < options.modules; ++i) {
      state.allocation[i] = static_cast<hw::ModuleId>(i);
    }
    service.register_cluster(std::move(state));
  }
  ServerOptions server_options;
  server_options.socket_path = options.stdio ? "" : options.socket_path;
  server_options.max_allocations = options.max_allocations;
  return serve(service, server_options);
}

}  // namespace vapb::service
