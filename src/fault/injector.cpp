#include "fault/injector.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "fault/counter_rng.hpp"
#include "util/error.hpp"

namespace vapb::fault {

namespace {

// Multiplicative perturbations are clamped away from zero so a pathological
// draw can never produce a non-physical (negative or zero) power.
constexpr double kFloor = 0.05;

double clamp_factor(double f) { return std::max(kFloor, f); }

// Drift walk prefix: prod_{s<steps} (1 + frac * N_s), one normal per step.
double walk(const FaultScenario& sc, std::uint64_t module, int steps,
            double frac) {
  CounterRng rng(sc.seed, "drift", module);
  double d = 1.0;
  for (int s = 0; s < steps; ++s) {
    d *= clamp_factor(1.0 + frac * rng.normal(static_cast<std::uint64_t>(s)));
  }
  return clamp_factor(d);
}

}  // namespace

FaultInjector::FaultInjector(FaultScenario scenario)
    : scenario_(scenario), enabled_(scenario.any()) {
  scenario_.validate();
}

double FaultInjector::perturb_reading_w(double watts, std::string_view stream,
                                        std::uint64_t module,
                                        std::uint64_t event,
                                        std::uint32_t device_class) const {
  if (scenario_.sensor_noise_frac <= 0.0) return watts;
  // Class multiplier of 1.0 (every CPU, and every class by default) keeps
  // the sd bitwise unchanged, so pre-mix callers see identical draws.
  const double sd =
      scenario_.sensor_noise_frac * scenario_.sensor_mult(device_class);
  CounterRng rng(scenario_.seed, stream, module);
  return watts * clamp_factor(1.0 + sd * rng.normal(event));
}

double FaultInjector::drift_factor(std::uint64_t module,
                                   std::uint32_t device_class) const {
  if (scenario_.drift_frac <= 0.0 || scenario_.drift_steps <= 0) return 1.0;
  return walk(scenario_, module, scenario_.drift_steps,
              scenario_.drift_frac * scenario_.drift_mult(device_class));
}

double FaultInjector::stale_drift_factor(std::uint64_t module,
                                         std::uint32_t device_class) const {
  if (scenario_.drift_frac <= 0.0 || scenario_.drift_steps <= 0) return 1.0;
  // Calibration saw the first (1 - staleness) share of the walk; both
  // prefixes draw the same per-step normals, so fresh calibration
  // (staleness 0) sees exactly what execution sees.
  const int seen = static_cast<int>(std::lround(
      (1.0 - scenario_.staleness) * scenario_.drift_steps));
  return walk(scenario_, module, std::clamp(seen, 0, scenario_.drift_steps),
              scenario_.drift_frac * scenario_.drift_mult(device_class));
}

double FaultInjector::realized_cap_w(double cap_w, std::uint64_t module,
                                     std::uint64_t event) const {
  if (scenario_.rapl_error_frac <= 0.0) return cap_w;
  CounterRng rng(scenario_.seed, "rapl-error", module);
  return cap_w *
         clamp_factor(1.0 + scenario_.rapl_error_frac * rng.normal(event));
}

int FaultInjector::throttle_events(std::uint64_t module, std::uint64_t event,
                                   std::uint32_t device_class) const {
  if (scenario_.throttle_rate <= 0.0) return 0;
  // Deterministic thinning of the expected rate: the integer part always
  // strikes, the fractional part strikes when this module's uniform says so.
  const double rate =
      scenario_.throttle_rate * scenario_.throttle_mult(device_class);
  const int whole = static_cast<int>(rate);
  CounterRng rng(scenario_.seed, "throttle", module);
  return whole + (rng.uniform(event) < rate - whole ? 1 : 0);
}

double FaultInjector::throttle_perf_multiplier(
    std::uint64_t module, std::uint64_t event,
    std::uint32_t device_class) const {
  const int events = throttle_events(module, event, device_class);
  if (events == 0) return 1.0;
  // One event costs duration * (1 - perf) of the run's compute rate.
  const double per_event =
      1.0 - scenario_.throttle_duration_frac *
                (1.0 - scenario_.throttle_perf_frac);
  return std::pow(per_event, events);
}

std::vector<std::size_t> FaultInjector::failed_slots(std::size_t n) const {
  std::vector<std::size_t> out;
  if (scenario_.failure_count <= 0 || n == 0) return out;
  const std::size_t want =
      std::min(static_cast<std::size_t>(scenario_.failure_count), n);
  CounterRng rng(scenario_.seed, "failure", 0);
  std::uint64_t event = 0;
  while (out.size() < want) {
    const auto slot = static_cast<std::size_t>(rng.uniform_index(event++, n));
    if (std::find(out.begin(), out.end(), slot) == out.end()) {
      out.push_back(slot);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

double FaultInjector::failed_perf_freq_ghz(double perf_freq_ghz,
                                           double spare_freq_ghz) const {
  VAPB_REQUIRE_MSG(perf_freq_ghz > 0.0 && spare_freq_ghz > 0.0,
                   "failed_perf_freq_ghz needs positive frequencies");
  const double tf = scenario_.failure_time_frac;
  // Work-weighted harmonic blend: tf of the work at full speed, the rest on
  // the spare (which is never faster than the original point).
  const double spare = std::min(perf_freq_ghz, spare_freq_ghz);
  return 1.0 / (tf / perf_freq_ghz + (1.0 - tf) / spare);
}

std::uint64_t job_event(std::string_view workload, double budget_w,
                        std::uint64_t run_salt) {
  // FNV-1a over the job identity; CounterRng's finalizer scrambles it
  // further, so this only needs to be collision-free, not well mixed.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xff)) * 1099511628211ull;
    }
  };
  for (const char c : workload) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  }
  mix(std::bit_cast<std::uint64_t>(budget_w));
  mix(run_salt);
  return h;
}

}  // namespace vapb::fault
