// FaultInjector — the executable form of a FaultScenario.
//
// The injector exposes the scalar perturbation primitives the pipeline
// seams apply at their own layer: the calibration stage perturbs Pc/Pd
// readings and applies the stale part of the drift walk, the enforcement
// stage applies the realized-cap error and the full drift, and the
// execution stage applies throttle events and hard failures. Keeping the
// injector scalar (no core types) lets vapb_core link vapb_fault without a
// cycle.
//
// Every method is const and every draw goes through fault::CounterRng, so
// one injector instance can serve any number of concurrent pipeline runs
// and always produces the same perturbation for the same (module, event).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "fault/scenario.hpp"

namespace vapb::fault {

class FaultInjector {
 public:
  explicit FaultInjector(FaultScenario scenario);

  [[nodiscard]] const FaultScenario& scenario() const { return scenario_; }

  /// False for an all-zero scenario: every hook is skipped and runs stay
  /// bit-identical to no injection.
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Scenario fingerprint (0 when disabled) — calibration-cache key part.
  [[nodiscard]] std::uint64_t fingerprint() const {
    return enabled_ ? scenario_.fingerprint() : 0;
  }

  // -- Calibration seam ------------------------------------------------------

  /// A power reading of `watts` as the noisy sensor reports it. `stream`
  /// separates the reading sites (e.g. "sensor-pvt-cpu-max"), `module` and
  /// `event` identify the measurement. `device_class` (raw hw::DeviceClass
  /// value; 0 = CPU) scales the noise sd by the scenario's class
  /// multiplier — the default leaves every caller on CPU behavior.
  [[nodiscard]] double perturb_reading_w(double watts, std::string_view stream,
                                         std::uint64_t module,
                                         std::uint64_t event,
                                         std::uint32_t device_class = 0) const;

  /// Multiplicative drift factor the hardware has accumulated by execution
  /// time (the full walk). `device_class` scales the per-step sd.
  [[nodiscard]] double drift_factor(std::uint64_t module,
                                    std::uint32_t device_class = 0) const;

  /// The prefix of the walk the calibration artifacts saw; with the default
  /// staleness of 1 this is 1.0 (calibration predates all drift).
  [[nodiscard]] double stale_drift_factor(std::uint64_t module,
                                          std::uint32_t device_class = 0) const;

  // -- Enforcement seam ------------------------------------------------------

  /// The cap the hardware actually holds when `cap_w` was requested. `event`
  /// identifies the enforcement episode (see job_event) so re-measurement
  /// error differs between jobs but is stable within one.
  [[nodiscard]] double realized_cap_w(double cap_w, std::uint64_t module,
                                      std::uint64_t event) const;

  // -- Execution seam --------------------------------------------------------

  /// Number of transient throttle events striking `module` during the run
  /// identified by `event`. `device_class` scales the expected rate.
  [[nodiscard]] int throttle_events(std::uint64_t module, std::uint64_t event,
                                    std::uint32_t device_class = 0) const;

  /// Run-average performance multiplier of those events (1.0 when none).
  [[nodiscard]] double throttle_perf_multiplier(
      std::uint64_t module, std::uint64_t event,
      std::uint32_t device_class = 0) const;

  /// The allocation slots (indices into an n-module allocation) that suffer
  /// a hard failure, sorted ascending; distinct, at most min(count, n).
  [[nodiscard]] std::vector<std::size_t> failed_slots(std::size_t n) const;

  /// Effective performance-equivalent frequency of a failed module: a
  /// failure_time_frac share of the work at `perf_freq_ghz`, the rest on a
  /// cold spare at `spare_freq_ghz` (harmonic blend).
  [[nodiscard]] double failed_perf_freq_ghz(double perf_freq_ghz,
                                            double spare_freq_ghz) const;

 private:
  FaultScenario scenario_;
  bool enabled_;
};

/// Event key for the per-run fault draws: a pure function of the job identity
/// (workload, budget, run salt), so transient faults differ between campaign
/// jobs yet hit every scheme of the same job identically, at any thread
/// count. Persistent faults (drift, hard failures) ignore it by design.
[[nodiscard]] std::uint64_t job_event(std::string_view workload,
                                      double budget_w, std::uint64_t run_salt);

}  // namespace vapb::fault
