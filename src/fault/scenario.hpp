// FaultScenario — the declarative spec of a perturbation experiment.
//
// A scenario composes the six injectors of the paper's threats-to-validity
// section (sensor inaccuracy, aging/temperature drift, stale calibration,
// imperfect cap enforcement, transient throttling, hard module failure)
// into one value type. It parses from a small JSON grammar (flat object,
// // and /* */ comments allowed) or from the CLI's "key=value,key=value"
// shorthand, serializes back to canonical JSON, and hashes to a stable
// fingerprint that keys caches and reports.
//
// All randomness a scenario implies is drawn through fault::CounterRng keyed
// on `seed`, so a scenario value fully determines every perturbation.
#pragma once

#include <cstdint>
#include <string>

namespace vapb::fault {

struct FaultScenario {
  /// Master seed of every injector stream. Two scenarios that differ only
  /// in seed perturb the same way statistically but never share draws (or
  /// calibration-cache entries).
  std::uint64_t seed = 1;

  // -- Sensor noise ----------------------------------------------------------
  /// sd of the multiplicative Gaussian noise applied to every Pc/Pd power
  /// reading taken during calibration (PVT generation and the single-module
  /// test run). 0 disables.
  double sensor_noise_frac = 0.0;

  // -- PVT drift / aging -----------------------------------------------------
  /// Per-step sd of the per-module multiplicative drift walk: module i's
  /// true power is scaled by prod_{s<steps} (1 + drift_frac * N_{i,s}).
  double drift_frac = 0.0;
  /// Steps of the walk the hardware has taken by execution time.
  int drift_steps = 4;
  /// Calibration staleness: fraction of the walk the calibration artifacts
  /// have NOT seen. 1 (default) = calibration predates all drift; 0 = the
  /// calibration is fresh and already includes it.
  double staleness = 1.0;

  // -- RAPL enforcement error ------------------------------------------------
  /// sd of the multiplicative error between the requested power cap and the
  /// cap the hardware actually realizes.
  double rapl_error_frac = 0.0;

  // -- Transient thermal throttling -------------------------------------------
  /// Expected throttle events per module per run (may exceed 1).
  double throttle_rate = 0.0;
  /// Performance multiplier while a throttle event is active.
  double throttle_perf_frac = 0.5;
  /// Fraction of the run one event stays active.
  double throttle_duration_frac = 0.05;

  // -- Hard module failure ---------------------------------------------------
  /// Modules that die mid-run (each restarts on a cold spare at fmin).
  int failure_count = 0;
  /// Fraction of the run completed when the failure strikes.
  double failure_time_frac = 0.5;

  // -- Per-device-class scaling ----------------------------------------------
  /// Multipliers applied to the sensor-noise sd, per-drift-step sd and
  /// throttle rate when the perturbed module is a GPU or DRAM module — wider
  /// thermal envelopes throttle more, denser sensors read noisier. CPU
  /// modules always use the base knobs. The defaults of 1.0 make every
  /// class behave like a CPU, bitwise (x * 1.0 == x).
  double gpu_sensor_mult = 1.0;
  double gpu_drift_mult = 1.0;
  double gpu_throttle_mult = 1.0;
  double dram_sensor_mult = 1.0;
  double dram_drift_mult = 1.0;
  double dram_throttle_mult = 1.0;

  /// Class multipliers by raw device-class index (0 = CPU, 1 = GPU,
  /// 2 = DRAM — hw::DeviceClass values, kept raw here so vapb_fault stays
  /// below vapb_hw in the layering). CPU (and out-of-range indices) map to
  /// exactly 1.0.
  [[nodiscard]] double sensor_mult(std::uint32_t device_class) const;
  [[nodiscard]] double drift_mult(std::uint32_t device_class) const;
  [[nodiscard]] double throttle_mult(std::uint32_t device_class) const;

  /// True when at least one injector is active. A default-constructed (or
  /// all-zero) scenario leaves every run bit-identical to no injection.
  [[nodiscard]] bool any() const;

  /// Stable content hash over every field (seed included); 0 is never
  /// returned so callers can use 0 as "no scenario".
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Canonical JSON form; parse(serialize()) reproduces the value exactly.
  [[nodiscard]] std::string serialize() const;

  /// Parses the JSON grammar: one flat object of "name": number pairs, with
  /// // line and /* block */ comments stripped first. Unknown keys throw
  /// InvalidArgument naming the valid spellings.
  static FaultScenario parse(const std::string& json);

  /// Parses the CLI shorthand "sensor_noise_frac=0.05,drift_frac=0.02".
  static FaultScenario parse_kv(const std::string& spec);

  /// Throws InvalidArgument when a field is out of range (negative sd,
  /// fraction outside [0,1], ...).
  void validate() const;
};

}  // namespace vapb::fault
