// Counter-based random-number generation for fault injection.
//
// Unlike util::Xoshiro256 (a stateful stream), CounterRng is a pure
// function: every draw is keyed on (scenario seed, stream name, module id,
// event index) and nothing else. There is no generator state to advance, so
// any thread can evaluate any event in any order and the value is always
// the same — the property that keeps a FaultCampaign bitwise identical at
// one thread and at sixty-four.
//
// The construction is SplitMix/Philox-style: the key components are folded
// together with the SplitMix64 golden-gamma increment and each draw runs
// the (key, counter) pair through two rounds of the SplitMix64 finalizer.
#pragma once

#include <cstdint>
#include <string_view>

namespace vapb::fault {

class CounterRng {
 public:
  /// One logical stream of a scenario: `stream` names the injector (e.g.
  /// "sensor-test", "drift"), `module` binds it to a module id. Draws are
  /// then indexed by an explicit event counter.
  CounterRng(std::uint64_t scenario_seed, std::string_view stream,
             std::uint64_t module);

  /// The mixed 64-bit key of this stream (exposed for cache fingerprints).
  [[nodiscard]] std::uint64_t key() const { return key_; }

  /// Raw 64 random bits for event `event`.
  [[nodiscard]] std::uint64_t bits(std::uint64_t event) const;

  /// Uniform double in [0, 1) for event `event`.
  [[nodiscard]] double uniform(std::uint64_t event) const;

  /// Uniform integer in [0, n) for event `event` (n > 0).
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t event,
                                            std::uint64_t n) const;

  /// Standard normal via Box-Muller for event `event`. Consumes the bit
  /// counters 2*event and 2*event+1, so normal and uniform draws on the
  /// same stream should use disjoint event ranges.
  [[nodiscard]] double normal(std::uint64_t event) const;

 private:
  std::uint64_t key_;
};

}  // namespace vapb::fault
