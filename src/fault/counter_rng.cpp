#include "fault/counter_rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace vapb::fault {

namespace {

constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

// The SplitMix64 output finalizer (Steele/Lea/Flood): full avalanche over
// 64 bits, bijective, and already the idiom util::SplitMix64 uses.
std::uint64_t finalize(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return finalize(h + kGamma + v);
}

}  // namespace

CounterRng::CounterRng(std::uint64_t scenario_seed, std::string_view stream,
                       std::uint64_t module)
    : key_(mix(mix(scenario_seed, util::fnv1a(stream)), module)) {}

std::uint64_t CounterRng::bits(std::uint64_t event) const {
  // Two finalizer rounds over (key, counter): the first decorrelates
  // adjacent counters, the second removes the residual structure a single
  // round leaves between neighbouring keys.
  return finalize(finalize(key_ + (event + 1) * kGamma));
}

double CounterRng::uniform(std::uint64_t event) const {
  // 53 mantissa bits — the standard uint64-to-[0,1) construction.
  return static_cast<double>(bits(event) >> 11) * 0x1.0p-53;
}

std::uint64_t CounterRng::uniform_index(std::uint64_t event,
                                        std::uint64_t n) const {
  VAPB_REQUIRE_MSG(n > 0, "CounterRng::uniform_index: n must be positive");
  return static_cast<std::uint64_t>(uniform(event) * static_cast<double>(n)) %
         n;
}

double CounterRng::normal(std::uint64_t event) const {
  // Box-Muller without the cached second variate: counter-based draws must
  // stay stateless, so each event pays for both uniforms.
  const double u1 = uniform(2 * event);
  const double u2 = uniform(2 * event + 1);
  const double r = std::sqrt(-2.0 * std::log(1.0 - u1));
  return r * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace vapb::fault
