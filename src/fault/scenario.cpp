#include "fault/scenario.hpp"

#include <bit>
#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace vapb::fault {

namespace {

constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t z = h + kGamma + v;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix(std::uint64_t h, double v) {
  return mix(h, std::bit_cast<std::uint64_t>(v));
}

// The field table: one row per scenario knob, shared by the JSON parser,
// the CLI shorthand and the serializer so the three can never disagree on
// spelling.
enum class FieldKind { kUint64, kInt, kDouble };

struct Field {
  const char* name;
  FieldKind kind;
  void* (*slot)(FaultScenario&);
};

template <auto Member>
void* slot_of(FaultScenario& s) {
  return &(s.*Member);
}

const std::vector<Field>& fields() {
  static const std::vector<Field> kFields = {
      {"seed", FieldKind::kUint64, &slot_of<&FaultScenario::seed>},
      {"sensor_noise_frac", FieldKind::kDouble,
       &slot_of<&FaultScenario::sensor_noise_frac>},
      {"drift_frac", FieldKind::kDouble, &slot_of<&FaultScenario::drift_frac>},
      {"drift_steps", FieldKind::kInt, &slot_of<&FaultScenario::drift_steps>},
      {"staleness", FieldKind::kDouble, &slot_of<&FaultScenario::staleness>},
      {"rapl_error_frac", FieldKind::kDouble,
       &slot_of<&FaultScenario::rapl_error_frac>},
      {"throttle_rate", FieldKind::kDouble,
       &slot_of<&FaultScenario::throttle_rate>},
      {"throttle_perf_frac", FieldKind::kDouble,
       &slot_of<&FaultScenario::throttle_perf_frac>},
      {"throttle_duration_frac", FieldKind::kDouble,
       &slot_of<&FaultScenario::throttle_duration_frac>},
      {"failure_count", FieldKind::kInt,
       &slot_of<&FaultScenario::failure_count>},
      {"failure_time_frac", FieldKind::kDouble,
       &slot_of<&FaultScenario::failure_time_frac>},
      {"gpu_sensor_mult", FieldKind::kDouble,
       &slot_of<&FaultScenario::gpu_sensor_mult>},
      {"gpu_drift_mult", FieldKind::kDouble,
       &slot_of<&FaultScenario::gpu_drift_mult>},
      {"gpu_throttle_mult", FieldKind::kDouble,
       &slot_of<&FaultScenario::gpu_throttle_mult>},
      {"dram_sensor_mult", FieldKind::kDouble,
       &slot_of<&FaultScenario::dram_sensor_mult>},
      {"dram_drift_mult", FieldKind::kDouble,
       &slot_of<&FaultScenario::dram_drift_mult>},
      {"dram_throttle_mult", FieldKind::kDouble,
       &slot_of<&FaultScenario::dram_throttle_mult>},
  };
  return kFields;
}

[[noreturn]] void unknown_field(const std::string& name) {
  std::string msg = "FaultScenario: unknown field '" + name +
                    "'; valid fields:";
  for (const Field& f : fields()) {
    msg += ' ';
    msg += f.name;
  }
  throw InvalidArgument(msg);
}

void assign(FaultScenario& s, const std::string& name,
            const std::string& value) {
  for (const Field& f : fields()) {
    if (name != f.name) continue;
    const char* text = value.c_str();
    char* end = nullptr;
    switch (f.kind) {
      case FieldKind::kUint64:
        *static_cast<std::uint64_t*>(f.slot(s)) =
            std::strtoull(text, &end, 10);
        break;
      case FieldKind::kInt:
        *static_cast<int*>(f.slot(s)) =
            static_cast<int>(std::strtol(text, &end, 10));
        break;
      case FieldKind::kDouble:
        *static_cast<double*>(f.slot(s)) = std::strtod(text, &end);
        break;
    }
    if (end == text || (end != nullptr && *end != '\0')) {
      throw InvalidArgument("FaultScenario: bad value '" + value +
                            "' for field '" + name + "'");
    }
    return;
  }
  unknown_field(name);
}

// Removes // line and /* block */ comments; string literals are respected
// so a quoted "//" survives. Unterminated block comments throw.
std::string strip_comments(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '"') {
      out += c;
      ++i;
      while (i < text.size() && text[i] != '"') {
        if (text[i] == '\\' && i + 1 < text.size()) out += text[i++];
        out += text[i++];
      }
      if (i < text.size()) out += text[i++];
      continue;
    }
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      const std::size_t close = text.find("*/", i + 2);
      if (close == std::string::npos) {
        throw InvalidArgument("FaultScenario: unterminated /* comment");
      }
      i = close + 2;
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

// Minimal recursive-descent reader for the scenario grammar: one flat JSON
// object mapping string keys to numbers.
class JsonReader {
 public:
  explicit JsonReader(std::string text) : text_(std::move(text)) {}

  std::map<std::string, std::string> read_object() {
    std::map<std::string, std::string> out;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      finish();
      return out;
    }
    while (true) {
      std::string key = read_string();
      expect(':');
      std::string value = read_number();
      if (!out.emplace(std::move(key), std::move(value)).second) {
        throw InvalidArgument("FaultScenario: duplicate field in JSON");
      }
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    finish();
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("FaultScenario: JSON parse error: " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void expect(char c) {
    skip_ws();
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  std::string read_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') out += text_[pos_++];
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;
    return out;
  }

  std::string read_number() {
    skip_ws();
    std::string out;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      out += text_[pos_++];
    }
    if (out.empty()) fail("expected a number");
    return out;
  }

  void finish() {
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after object");
  }

  std::string text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool FaultScenario::any() const {
  return sensor_noise_frac > 0.0 || (drift_frac > 0.0 && drift_steps > 0) ||
         rapl_error_frac > 0.0 || throttle_rate > 0.0 || failure_count > 0;
}

std::uint64_t FaultScenario::fingerprint() const {
  std::uint64_t h = mix(0x76617062666c74ULL, seed);  // "vapbflt"
  h = mix(h, sensor_noise_frac);
  h = mix(h, drift_frac);
  h = mix(h, static_cast<std::uint64_t>(drift_steps));
  h = mix(h, staleness);
  h = mix(h, rapl_error_frac);
  h = mix(h, throttle_rate);
  h = mix(h, throttle_perf_frac);
  h = mix(h, throttle_duration_frac);
  h = mix(h, static_cast<std::uint64_t>(failure_count));
  h = mix(h, failure_time_frac);
  h = mix(h, gpu_sensor_mult);
  h = mix(h, gpu_drift_mult);
  h = mix(h, gpu_throttle_mult);
  h = mix(h, dram_sensor_mult);
  h = mix(h, dram_drift_mult);
  h = mix(h, dram_throttle_mult);
  return h == 0 ? 1 : h;
}

double FaultScenario::sensor_mult(std::uint32_t device_class) const {
  if (device_class == 1) return gpu_sensor_mult;
  if (device_class == 2) return dram_sensor_mult;
  return 1.0;
}

double FaultScenario::drift_mult(std::uint32_t device_class) const {
  if (device_class == 1) return gpu_drift_mult;
  if (device_class == 2) return dram_drift_mult;
  return 1.0;
}

double FaultScenario::throttle_mult(std::uint32_t device_class) const {
  if (device_class == 1) return gpu_throttle_mult;
  if (device_class == 2) return dram_throttle_mult;
  return 1.0;
}

std::string FaultScenario::serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"sensor_noise_frac\": " << sensor_noise_frac << ",\n";
  os << "  \"drift_frac\": " << drift_frac << ",\n";
  os << "  \"drift_steps\": " << drift_steps << ",\n";
  os << "  \"staleness\": " << staleness << ",\n";
  os << "  \"rapl_error_frac\": " << rapl_error_frac << ",\n";
  os << "  \"throttle_rate\": " << throttle_rate << ",\n";
  os << "  \"throttle_perf_frac\": " << throttle_perf_frac << ",\n";
  os << "  \"throttle_duration_frac\": " << throttle_duration_frac << ",\n";
  os << "  \"failure_count\": " << failure_count << ",\n";
  os << "  \"failure_time_frac\": " << failure_time_frac << ",\n";
  os << "  \"gpu_sensor_mult\": " << gpu_sensor_mult << ",\n";
  os << "  \"gpu_drift_mult\": " << gpu_drift_mult << ",\n";
  os << "  \"gpu_throttle_mult\": " << gpu_throttle_mult << ",\n";
  os << "  \"dram_sensor_mult\": " << dram_sensor_mult << ",\n";
  os << "  \"dram_drift_mult\": " << dram_drift_mult << ",\n";
  os << "  \"dram_throttle_mult\": " << dram_throttle_mult << "\n";
  os << "}\n";
  return os.str();
}

FaultScenario FaultScenario::parse(const std::string& json) {
  JsonReader reader(strip_comments(json));
  FaultScenario s;
  for (const auto& [key, value] : reader.read_object()) {
    assign(s, key, value);
  }
  s.validate();
  return s;
}

FaultScenario FaultScenario::parse_kv(const std::string& spec) {
  FaultScenario s;
  std::size_t pos = 0;
  while (pos <= spec.size() && !spec.empty()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string part = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (part.empty()) continue;
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos) {
      throw InvalidArgument("FaultScenario: expected key=value, got '" + part +
                            "'");
    }
    assign(s, part.substr(0, eq), part.substr(eq + 1));
    if (pos > spec.size()) break;
  }
  s.validate();
  return s;
}

void FaultScenario::validate() const {
  auto require = [](bool ok, const char* what) {
    if (!ok) throw InvalidArgument(std::string("FaultScenario: ") + what);
  };
  require(sensor_noise_frac >= 0.0 && sensor_noise_frac < 1.0,
          "sensor_noise_frac must be in [0, 1)");
  require(drift_frac >= 0.0 && drift_frac < 1.0,
          "drift_frac must be in [0, 1)");
  require(drift_steps >= 0, "drift_steps must be non-negative");
  require(staleness >= 0.0 && staleness <= 1.0,
          "staleness must be in [0, 1]");
  require(rapl_error_frac >= 0.0 && rapl_error_frac < 1.0,
          "rapl_error_frac must be in [0, 1)");
  require(throttle_rate >= 0.0, "throttle_rate must be non-negative");
  require(throttle_perf_frac > 0.0 && throttle_perf_frac <= 1.0,
          "throttle_perf_frac must be in (0, 1]");
  require(throttle_duration_frac >= 0.0 && throttle_duration_frac <= 1.0,
          "throttle_duration_frac must be in [0, 1]");
  require(failure_count >= 0, "failure_count must be non-negative");
  require(failure_time_frac >= 0.0 && failure_time_frac < 1.0,
          "failure_time_frac must be in [0, 1)");
  require(gpu_sensor_mult >= 0.0, "gpu_sensor_mult must be non-negative");
  require(gpu_drift_mult >= 0.0, "gpu_drift_mult must be non-negative");
  require(gpu_throttle_mult >= 0.0, "gpu_throttle_mult must be non-negative");
  require(dram_sensor_mult >= 0.0, "dram_sensor_mult must be non-negative");
  require(dram_drift_mult >= 0.0, "dram_drift_mult must be non-negative");
  require(dram_throttle_mult >= 0.0,
          "dram_throttle_mult must be non-negative");
}

}  // namespace vapb::fault
