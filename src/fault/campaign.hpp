// FaultCampaign — the degradation sweep: how badly does each power-budgeting
// scheme break, and how well does its robust counterpart hold up, as the
// fault intensity grows?
//
// A FaultGrid crosses sensor-noise sigmas x drift rates x failure counts;
// every grid point runs a full CampaignEngine sweep (workloads x budgets x
// schemes x repetitions) under that point's FaultScenario and reduces each
// scheme to the headline degradation metrics: budget-violation rate, mean
// overshoot watts, mean makespan and mean speedup vs Naive.
//
// Deterministic: grid expansion, job expansion and the per-point reductions
// are all fixed-order, so a FaultCampaignResult is a pure function of
// (cluster, allocation, spec, grid) — bitwise identical at any thread count.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "fault/scenario.hpp"

namespace vapb::fault {

/// The cross-product of fault intensities to sweep. `base` carries every
/// scenario knob the grid does not vary (seed, staleness, throttle shape,
/// RAPL error, ...); each grid point overrides sensor_noise_frac,
/// drift_frac and failure_count.
struct FaultGrid {
  std::vector<double> noise_fracs = {0.0, 0.05};
  std::vector<double> drift_fracs = {0.0, 0.04};
  std::vector<int> failure_counts = {0};
  FaultScenario base;

  [[nodiscard]] std::size_t point_count() const {
    return noise_fracs.size() * drift_fracs.size() * failure_counts.size();
  }
};

/// One scheme's degradation metrics at one grid point, reduced over the
/// point's feasible campaign jobs in spec expansion order.
struct FaultSchemeResult {
  std::string scheme;
  std::size_t jobs = 0;  ///< feasible jobs the means cover
  /// Share of feasible jobs whose measured total power exceeded the budget.
  double violation_rate = 0.0;
  /// Mean of max(0, total_power_w - budget_w) over feasible jobs.
  double mean_overshoot_w = 0.0;
  double mean_makespan_s = 0.0;
  /// Mean speedup vs the Naive job of the same cell (finite entries only;
  /// NaN when the spec has no Naive reference).
  double mean_speedup_vs_naive = 0.0;
};

struct FaultPointResult {
  FaultScenario scenario;
  std::vector<FaultSchemeResult> schemes;  ///< in spec scheme-list order
  /// The underlying sweep, for callers that need per-job detail (tests
  /// compare these bitwise across thread counts).
  core::CampaignResult campaign;

  [[nodiscard]] const FaultSchemeResult& scheme(const std::string& name) const;
};

struct FaultCampaignResult {
  /// One entry per grid point, in expansion order (noise outermost, then
  /// drift, then failure count).
  std::vector<FaultPointResult> points;
};

class FaultCampaign {
 public:
  /// `threads` fans each grid point's campaign across a pool (0 = hardware
  /// concurrency, 1 = serial); the reductions never depend on it.
  FaultCampaign(const cluster::Cluster& cluster,
                std::vector<hw::ModuleId> allocation, std::size_t threads = 0);

  /// The deterministic scenario expansion of `grid`.
  [[nodiscard]] static std::vector<FaultScenario> expand(const FaultGrid& grid);

  /// Runs `spec` under every grid scenario. `spec.config.fault` is managed
  /// by the campaign and must be null on entry.
  [[nodiscard]] FaultCampaignResult run(const core::CampaignSpec& spec,
                                        const FaultGrid& grid) const;

 private:
  const cluster::Cluster& cluster_;
  std::vector<hw::ModuleId> allocation_;
  std::size_t threads_;
};

/// The sweep as one JSON object: every grid point's scenario and per-scheme
/// degradation metrics (non-finite means become null).
void write_fault_campaign_json(const FaultCampaignResult& result,
                               std::ostream& out);

}  // namespace vapb::fault
