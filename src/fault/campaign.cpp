#include "fault/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <utility>

#include "fault/injector.hpp"
#include "util/error.hpp"

namespace vapb::fault {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

FaultSchemeResult reduce_scheme(const std::string& scheme,
                                const core::CampaignResult& campaign) {
  FaultSchemeResult out;
  out.scheme = scheme;
  std::size_t violations = 0;
  double overshoot_sum = 0.0;
  double makespan_sum = 0.0;
  double speedup_sum = 0.0;
  std::size_t speedups = 0;
  for (const core::CampaignJobResult& r : campaign.jobs) {
    if (r.job.scheme != scheme || !r.metrics.feasible) continue;
    ++out.jobs;
    const double over_w = r.metrics.total_power_w - r.metrics.budget_w;
    // These three means accumulate sequentially over the fixed
    // campaign.jobs order, so the association never varies with threads.
    if (over_w > 0.0) {
      ++violations;
      // vapb-lint: allow(determinism-taint): fixed sequential job order
      overshoot_sum += over_w;
    }
    // vapb-lint: allow(determinism-taint): fixed sequential job order
    makespan_sum += r.metrics.makespan_s;
    if (std::isfinite(r.speedup_vs_naive)) {
      // vapb-lint: allow(determinism-taint): fixed sequential job order
      speedup_sum += r.speedup_vs_naive;
      ++speedups;
    }
  }
  if (out.jobs > 0) {
    out.violation_rate = static_cast<double>(violations) /
                         static_cast<double>(out.jobs);
    out.mean_overshoot_w = overshoot_sum / static_cast<double>(out.jobs);
    out.mean_makespan_s = makespan_sum / static_cast<double>(out.jobs);
  }
  out.mean_speedup_vs_naive =
      speedups > 0 ? speedup_sum / static_cast<double>(speedups) : kNaN;
  return out;
}

void write_json_number(std::ostream& out, double v) {
  if (std::isfinite(v)) {
    out << v;
  } else {
    out << "null";
  }
}

}  // namespace

const FaultSchemeResult& FaultPointResult::scheme(
    const std::string& name) const {
  auto it = std::find_if(
      schemes.begin(), schemes.end(),
      [&](const FaultSchemeResult& s) { return s.scheme == name; });
  if (it == schemes.end()) {
    throw InvalidArgument("FaultPointResult: scheme '" + name +
                          "' was not part of the sweep");
  }
  return *it;
}

FaultCampaign::FaultCampaign(const cluster::Cluster& cluster,
                             std::vector<hw::ModuleId> allocation,
                             std::size_t threads)
    : cluster_(cluster),
      allocation_(std::move(allocation)),
      threads_(threads) {}

std::vector<FaultScenario> FaultCampaign::expand(const FaultGrid& grid) {
  if (grid.noise_fracs.empty() || grid.drift_fracs.empty() ||
      grid.failure_counts.empty()) {
    throw InvalidArgument("FaultGrid needs at least one value per axis");
  }
  std::vector<FaultScenario> out;
  out.reserve(grid.point_count());
  for (double noise : grid.noise_fracs) {
    for (double drift : grid.drift_fracs) {
      for (int failures : grid.failure_counts) {
        FaultScenario sc = grid.base;
        sc.sensor_noise_frac = noise;
        sc.drift_frac = drift;
        sc.failure_count = failures;
        sc.validate();
        out.push_back(sc);
      }
    }
  }
  return out;
}

FaultCampaignResult FaultCampaign::run(const core::CampaignSpec& spec,
                                       const FaultGrid& grid) const {
  if (spec.config.fault != nullptr) {
    throw InvalidArgument(
        "FaultCampaign: spec.config.fault is managed per grid point and must "
        "be null");
  }
  const std::vector<std::string> schemes = spec.scheme_list();
  core::CampaignEngine engine(cluster_, allocation_, threads_);

  FaultCampaignResult result;
  for (const FaultScenario& scenario : expand(grid)) {
    const FaultInjector injector(scenario);
    core::CampaignSpec point_spec = spec;
    point_spec.config.fault = &injector;
    FaultPointResult point;
    point.scenario = scenario;
    point.campaign = engine.run(point_spec);
    point.schemes.reserve(schemes.size());
    for (const std::string& scheme : schemes) {
      point.schemes.push_back(reduce_scheme(scheme, point.campaign));
    }
    result.points.push_back(std::move(point));
  }
  return result;
}

void write_fault_campaign_json(const FaultCampaignResult& result,
                               std::ostream& out) {
  const auto saved = out.precision(17);
  out << "{\"points\":[";
  for (std::size_t p = 0; p < result.points.size(); ++p) {
    const FaultPointResult& point = result.points[p];
    if (p) out << ',';
    out << "{\"scenario\":" << point.scenario.serialize() << ",\"schemes\":[";
    for (std::size_t s = 0; s < point.schemes.size(); ++s) {
      const FaultSchemeResult& r = point.schemes[s];
      if (s) out << ',';
      out << "{\"scheme\":\"" << r.scheme << "\",\"jobs\":" << r.jobs
          << ",\"violation_rate\":";
      write_json_number(out, r.violation_rate);
      out << ",\"mean_overshoot_w\":";
      write_json_number(out, r.mean_overshoot_w);
      out << ",\"mean_makespan_s\":";
      write_json_number(out, r.mean_makespan_s);
      out << ",\"mean_speedup_vs_naive\":";
      write_json_number(out, r.mean_speedup_vs_naive);
      out << '}';
    }
    out << "]}";
  }
  out << "]}";
  out.precision(saved);
}

}  // namespace vapb::fault
