// Compiled program image: the flattened, structure-of-arrays form of a set
// of rank programs that the event-driven engine executes.
//
// Where RankProgram is the builder-friendly AoS representation (one
// std::variant plus a heap-allocated peer vector per op), a ProgramImage
// stores one contiguous op stream per run — a kind byte, a scalar payload
// and a topology index per op — and a topology table where each distinct
// peer list is stored exactly once and referenced by index. Workload
// generators emit `iterations` halo ops per rank but only one topology
// entry, so compiling a program touches O(ops) memory instead of copying
// every peer list per iteration.
//
// Validation (peer ranges, self-exchanges, per-phase symmetry) happens once
// at build()/compile() time, not on every engine run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "des/program.hpp"

namespace vapb::des {

/// Discriminates ops in the compiled stream. Values index the same payloads
/// the RankProgram variant carries: seconds for compute, bytes-per-peer plus
/// a topology index for halo, bytes for allreduce.
enum class OpKind : std::uint8_t {
  kCompute = 0,
  kHaloExchange = 1,
  kAllreduce = 2,
  kBarrier = 3,
};

class ImageBuilder;

class ProgramImage {
 public:
  /// Flattens and validates an AoS program set. Identical peer lists are
  /// deduplicated into one topology entry.
  [[nodiscard]] static ProgramImage compile(
      const std::vector<RankProgram>& programs);

  [[nodiscard]] std::size_t nranks() const {
    return rank_begin_.empty() ? 0 : rank_begin_.size() - 1;
  }
  [[nodiscard]] std::size_t total_ops() const { return kind_.size(); }
  [[nodiscard]] std::size_t halo_op_count() const { return halo_ops_; }
  [[nodiscard]] std::size_t collective_op_count() const { return coll_ops_; }
  [[nodiscard]] std::size_t topology_count() const {
    return peer_begin_.empty() ? 0 : peer_begin_.size() - 1;
  }
  [[nodiscard]] std::size_t peer_edge_count() const { return peers_.size(); }

  /// Op stream of rank r is [op_begin(r), op_end(r)).
  [[nodiscard]] std::size_t op_begin(std::size_t r) const {
    return rank_begin_[r];
  }
  [[nodiscard]] std::size_t op_end(std::size_t r) const {
    return rank_begin_[r + 1];
  }
  [[nodiscard]] OpKind kind(std::size_t op) const {
    return static_cast<OpKind>(kind_[op]);
  }
  /// Scalar payload: seconds (compute), bytes per peer (halo), bytes
  /// (allreduce), unused (barrier).
  [[nodiscard]] double value(std::size_t op) const { return value_[op]; }
  /// Topology table index of a halo op (meaningless for other kinds).
  [[nodiscard]] std::uint32_t topology(std::size_t op) const {
    return topo_[op];
  }

  /// Data entropy of a compute op in [0, 1] (0.5 for non-compute ops and
  /// for programs built without an entropy schedule). The engine's timing
  /// ignores it; the power accounting layer reads it back out through
  /// mean_compute_entropy().
  [[nodiscard]] double entropy(std::size_t op) const { return entropy_[op]; }

  /// Seconds-weighted mean data entropy over rank r's compute ops — the
  /// realized entropy its silicon integrated over the run, which is what
  /// scales dynamic power when a schedule deviates from the planning
  /// profile. Returns 0.5 (the neutral point) when the rank has no compute
  /// seconds.
  [[nodiscard]] double mean_compute_entropy(std::size_t r) const;

  /// Peer list of topology entry t: [peers_begin(t), peers_end(t)).
  [[nodiscard]] const RankId* peers_begin(std::uint32_t t) const {
    return peers_.data() + peer_begin_[t];
  }
  [[nodiscard]] const RankId* peers_end(std::uint32_t t) const {
    return peers_.data() + peer_begin_[t + 1];
  }
  [[nodiscard]] std::size_t peer_count(std::uint32_t t) const {
    return peer_begin_[t + 1] - peer_begin_[t];
  }

  /// Halo phases of rank r occupy slots [halo_phase_begin(r),
  /// halo_phase_begin(r+1)) of a flat per-phase array (arrival times in the
  /// engine). halo_phase_begin(nranks()) is the total phase count.
  [[nodiscard]] std::size_t halo_phase_begin(std::size_t r) const {
    return halo_phase_begin_[r];
  }
  [[nodiscard]] std::size_t total_halo_phases() const {
    return halo_phase_begin_.empty() ? 0 : halo_phase_begin_.back();
  }

  /// True when every rank's halo ops all reference one topology (the stencil
  /// workloads' shape). Peer sets are then phase-invariant, which lets the
  /// engine prove a peer is never more than one exchange phase ahead and
  /// skip the per-phase arrival array entirely.
  [[nodiscard]] bool uniform_topology() const { return uniform_topology_; }

  // Raw column pointers for the engine's hot loop (hoisting them into
  // locals lets the optimizer keep them in registers across the stores the
  // scheduler makes to its own state arrays).
  [[nodiscard]] const std::uint8_t* kinds() const { return kind_.data(); }
  [[nodiscard]] const double* values() const { return value_.data(); }
  [[nodiscard]] const std::uint32_t* topologies() const { return topo_.data(); }
  [[nodiscard]] const std::size_t* rank_offsets() const {
    return rank_begin_.data();
  }
  [[nodiscard]] const std::size_t* halo_phase_offsets() const {
    return halo_phase_begin_.data();
  }
  [[nodiscard]] const std::uint32_t* peer_offsets() const {
    return peer_begin_.data();
  }
  [[nodiscard]] const RankId* peers() const { return peers_.data(); }

 private:
  friend class ImageBuilder;
  ProgramImage() = default;

  std::vector<std::uint8_t> kind_;
  std::vector<double> value_;
  std::vector<double> entropy_;
  std::vector<std::uint32_t> topo_;
  std::vector<std::size_t> rank_begin_;        ///< size nranks + 1
  std::vector<std::size_t> halo_phase_begin_;  ///< size nranks + 1
  std::vector<std::uint32_t> peer_begin_;      ///< size topologies + 1
  std::vector<RankId> peers_;
  std::size_t halo_ops_ = 0;
  std::size_t coll_ops_ = 0;
  bool uniform_topology_ = false;
};

/// Streams ops straight into image form, rank-major (all ops of rank 0, then
/// rank 1, ...). Topologies are registered once up front and referenced by
/// index from any number of halo ops, which is how the workload generators
/// avoid materializing a peer vector per iteration.
class ImageBuilder {
 public:
  explicit ImageBuilder(std::size_t nranks);

  /// Registers a peer list; returns its index for halo_exchange().
  std::uint32_t add_topology(const std::vector<RankId>& peers);

  /// `entropy` is the data entropy of the operands this phase streams
  /// through the datapath; 0.5 is the neutral point every legacy caller
  /// sits at.
  void compute(RankId rank, double seconds, double entropy = 0.5);
  void halo_exchange(RankId rank, std::uint32_t topology,
                     double bytes_per_peer);
  void allreduce(RankId rank, double bytes);
  void barrier(RankId rank);

  /// Validates (peer ranges, self-exchange, per-phase symmetry) and returns
  /// the finished image. The builder must not be reused afterwards.
  [[nodiscard]] ProgramImage build();

 private:
  void begin_op(RankId rank);

  ProgramImage img_;
  std::size_t nranks_ = 0;
  RankId current_rank_ = 0;
  bool built_ = false;
};

}  // namespace vapb::des
