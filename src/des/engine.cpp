#include "des/engine.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"

namespace vapb::des {

const std::vector<double>& RunResult::finish_times() const {
  if (finish_times_cache_.size() != ranks.size()) {
    finish_times_cache_.clear();
    finish_times_cache_.reserve(ranks.size());
    for (const auto& r : ranks) {
      finish_times_cache_.push_back(r.finish_time_s);
    }
  }
  return finish_times_cache_;
}

const std::vector<double>& RunResult::sendrecv_times() const {
  if (sendrecv_times_cache_.size() != ranks.size()) {
    sendrecv_times_cache_.clear();
    sendrecv_times_cache_.reserve(ranks.size());
    for (const auto& r : ranks) {
      sendrecv_times_cache_.push_back(r.sendrecv_s);
    }
  }
  return sendrecv_times_cache_;
}

void RunResult::seal() {
  makespan_s = 0.0;
  for (const auto& r : ranks) {
    makespan_s = std::max(makespan_s, r.finish_time_s);
  }
  finish_times_cache_.clear();
  sendrecv_times_cache_.clear();
  static_cast<void>(finish_times());
  static_cast<void>(sendrecv_times());
}

namespace {

// Why a rank is parked outside the ready queue.
constexpr std::uint8_t kBlockedNone = 0;
constexpr std::uint8_t kBlockedHalo = 1;
constexpr std::uint8_t kBlockedCollective = 2;

/// Arrival record of one collective epoch. All ranks complete collective
/// e before any rank can reach collective e+1, so one shared counter per
/// epoch suffices.
struct CollectiveEpoch {
  std::size_t arrivals = 0;
  double latest_s = 0.0;  ///< slowest arrival so far
  double bytes = 0.0;     ///< largest allreduce payload so far
  bool any_allreduce = false;
  bool any_barrier = false;
};

const char* kind_name(OpKind k) {
  switch (k) {
    case OpKind::kCompute:
      return "compute";
    case OpKind::kHaloExchange:
      return "halo exchange";
    case OpKind::kAllreduce:
      return "allreduce";
    case OpKind::kBarrier:
      return "barrier";
  }
  return "unknown";
}

RunResult finalize(std::vector<RankStats>&& stats,
                   const std::vector<double>& time_s) {
  RunResult result;
  result.ranks = std::move(stats);
  for (std::size_t r = 0; r < result.ranks.size(); ++r) {
    result.ranks[r].finish_time_s = time_s[r];
  }
  result.seal();
  return result;
}

}  // namespace

RunResult Engine::run(const std::vector<RankProgram>& programs) const {
  if (programs.empty()) throw InvalidArgument("Engine: no rank programs");
  return run(ProgramImage::compile(programs));
}

// Scheduler state of one rank. The struct is exactly one cache line, so a
// peer probe (arrived / blocked / phase_done / waiting plus the cached
// arrival time) costs a single miss; per-op accounting lives in a separate
// RankStats array that only the owning rank touches.
struct RankState {
  double time_s = 0.0;           ///< local clock
  double latest_s = 0.0;         ///< slowest arrival in the current phase
  double arr_time_s = 0.0;       ///< local time of the most recent arrival
  std::uint32_t pc = 0;          ///< next op (absolute image index)
  std::uint32_t phase_done = 0;  ///< halo phases completed
  std::uint32_t arrived = 0;     ///< halo phases arrived at
  std::uint32_t coll_done = 0;   ///< collectives completed
  std::uint32_t waiting = 0;     ///< outstanding peer arrivals
  std::uint8_t blocked = kBlockedNone;
  // Last transfer cost computed for this rank: halo ops repeat the same
  // (topology, bytes) every iteration, and the cost only depends on those
  // plus the owning rank, so the cached sum (same peer order, same
  // floating-point result) short-circuits the per-peer network model.
  std::uint32_t cost_topo = 0xFFFFFFFFu;
  double cost_bytes = 0.0;
  double cost_s = 0.0;
};

RunResult Engine::run(const ProgramImage& img) const {
  const std::size_t n = img.nranks();
  if (n == 0) throw InvalidArgument("Engine: no rank programs");
  if (img.halo_op_count() == 0) return run_sync_free(img);
  if (img.uniform_topology() && img.collective_op_count() == 0) {
    return run_phase_sync(img);
  }

  std::vector<RankState> state(n);
  std::vector<RankStats> stats(n);
  // arrival_s[halo_phase_offsets[r] + k] = local time at which rank r
  // arrived at its k-th exchange phase. Peers consult this even after r
  // completes the phase (peer sets differ, so completion order is not
  // symmetric). With phase-invariant peer sets (uniform_topology) a peer
  // can never be more than one phase ahead — completing phase k needs this
  // rank's own arrival at k — so the arr_time_s cached on the state line
  // always answers the probe and the flat array is provably never read;
  // skip allocating and maintaining it.
  const bool uniform = img.uniform_topology();
  std::vector<double> arrival_s(uniform ? 0 : img.total_halo_phases(), 0.0);
  std::vector<CollectiveEpoch> colls;
  std::vector<RankId> ready;
  ready.reserve(n);

  const std::uint8_t* kinds = img.kinds();
  const double* values = img.values();
  const std::uint32_t* topos = img.topologies();
  const std::size_t* rank_off = img.rank_offsets();
  const std::size_t* hpb = img.halo_phase_offsets();
  const std::uint32_t* peer_off = img.peer_offsets();
  const RankId* peer_tab = img.peers();
  RankState* st = state.data();
  double* arr = arrival_s.data();

  for (std::size_t r = 0; r < n; ++r) {
    st[r].pc = static_cast<std::uint32_t>(rank_off[r]);
  }

  auto resolve_collective = [&](std::size_t e) {
    const CollectiveEpoch& c = colls[e];
    if (c.any_allreduce && c.any_barrier) {
      throw DeadlockError("ranks disagree on collective type");
    }
    const double cost_s = c.any_allreduce
                              ? network_.collective_cost_s(n, c.bytes)
                              : network_.collective_cost_s(n, 8.0);
    for (std::size_t r = 0; r < n; ++r) {
      double wait_s = c.latest_s - st[r].time_s;
      stats[r].wait_s += wait_s;
      stats[r].transfer_s += cost_s;
      stats[r].collective_s += wait_s + cost_s;
      st[r].time_s = c.latest_s + cost_s;
      ++st[r].pc;
      ++st[r].coll_done;
      st[r].blocked = kBlockedNone;
      ready.push_back(static_cast<RankId>(r));
    }
  };

  // Executes rank r until it blocks or finishes its op stream.
  auto run_rank = [&](std::size_t r) {
    RankState& s = st[r];
    const std::size_t end = rank_off[r + 1];
    while (s.pc < end) {
      const std::size_t op = s.pc;
      const OpKind k = static_cast<OpKind>(kinds[op]);
      if (k == OpKind::kCompute) {
        const double t_s = values[op];
        s.time_s += t_s;
        stats[r].compute_s += t_s;
        ++s.pc;
        continue;
      }
      if (k == OpKind::kHaloExchange) {
        const std::uint32_t phase = s.phase_done;
        const std::uint32_t topo = topos[op];
        const RankId* pb = peer_tab + peer_off[topo];
        const RankId* pe = peer_tab + peer_off[topo + 1];
        if (s.arrived == phase) {
          // First visit: record the arrival, fold already-arrived peers into
          // the phase's latest-arrival accumulator, wake peers whose
          // dependency counter this arrival satisfies, count the peers still
          // missing. Late arrivers push their time into blocked peers'
          // accumulators, so nobody rescans arrival slots on wake-up (max is
          // order-independent, so the fold stays bit-identical to a scan).
          if (!uniform) arr[hpb[r] + phase] = s.time_s;
          s.arr_time_s = s.time_s;
          s.arrived = phase + 1;
          double latest_s = s.time_s;
          std::uint32_t outstanding = 0;
          for (const RankId* p = pb; p != pe; ++p) {
            RankState& q = st[*p];
            if (q.arrived <= phase) {
              ++outstanding;
            } else {
              // A peer exactly one phase ahead arrived at *this* phase last,
              // so its arrival time is still on its state line; peers
              // further ahead (possible only with phase-varying peer sets)
              // fall back to the flat arrival array.
              const double a = q.arrived == phase + 1
                                   ? q.arr_time_s
                                   : arr[hpb[*p] + phase];
              if (a > latest_s) latest_s = a;
              if (q.blocked == kBlockedHalo && q.phase_done == phase) {
                if (s.time_s > q.latest_s) q.latest_s = s.time_s;
                if (--q.waiting == 0) {
                  q.blocked = kBlockedNone;
                  ready.push_back(*p);
                }
              }
            }
          }
          s.latest_s = latest_s;
          if (outstanding > 0) {
            s.waiting = outstanding;
            s.blocked = kBlockedHalo;
            return;
          }
        } else if (s.waiting > 0) {
          return;  // still short of peer arrivals
        }
        // Complete the phase: wait for the slowest arrival, pay the
        // transfer once per peer (peer-list order keeps the floating-point
        // sums bit-identical to the reference engine).
        if (pb != pe) {
          const double latest_arrival_s = s.latest_s;
          const double bytes = values[op];
          if (s.cost_topo != topo || !(s.cost_bytes == bytes)) {
            double transfer_s = 0.0;
            for (const RankId* p = pb; p != pe; ++p) {
              transfer_s += network_.p2p_cost_s(static_cast<std::uint32_t>(r),
                                                *p, bytes);
            }
            s.cost_topo = topo;
            s.cost_bytes = bytes;
            s.cost_s = transfer_s;
          }
          const double wait_s = latest_arrival_s - s.time_s;
          stats[r].wait_s += wait_s;
          stats[r].transfer_s += s.cost_s;
          stats[r].sendrecv_s += wait_s + s.cost_s;
          s.time_s = latest_arrival_s + s.cost_s;
        }
        ++s.pc;
        ++s.phase_done;
        continue;
      }
      // Collective: bump the shared epoch counter; the last rank to arrive
      // resolves it for everyone.
      const std::size_t e = s.coll_done;
      if (colls.size() <= e) colls.resize(e + 1);
      CollectiveEpoch& c = colls[e];
      ++c.arrivals;
      c.latest_s = std::max(c.latest_s, s.time_s);
      if (k == OpKind::kAllreduce) {
        c.any_allreduce = true;
        c.bytes = std::max(c.bytes, values[op]);
      } else {
        c.any_barrier = true;
      }
      s.blocked = kBlockedCollective;
      if (c.arrivals == n) resolve_collective(e);
      return;
    }
    s.blocked = kBlockedNone;  // rank finished
  };

  for (std::size_t r = n; r > 0; --r) {
    ready.push_back(static_cast<RankId>(r - 1));
  }
  while (!ready.empty()) {
    const RankId r = ready.back();
    ready.pop_back();
    run_rank(r);
  }

  // Queue drained: either everyone finished or the programs are misaligned.
  for (std::size_t r = 0; r < n; ++r) {
    if (st[r].pc >= rank_off[r + 1]) continue;
    const std::size_t op = st[r].pc;
    const OpKind k = static_cast<OpKind>(kinds[op]);
    std::string msg =
        "no rank can make progress (misaligned SPMD programs?): rank " +
        std::to_string(r) + " blocked at pc " +
        std::to_string(op - rank_off[r]) + " (" + kind_name(k) + ")";
    if (k == OpKind::kHaloExchange) {
      const std::uint32_t phase = st[r].phase_done;
      const std::uint32_t topo = topos[op];
      msg += " in exchange phase " + std::to_string(phase);
      for (const RankId* p = peer_tab + peer_off[topo];
           p != peer_tab + peer_off[topo + 1]; ++p) {
        if (st[*p].arrived <= phase) {
          msg += ", waiting on peer " + std::to_string(*p) +
                 " (which reached only " + std::to_string(st[*p].arrived) +
                 " exchange phases)";
          break;
        }
      }
    } else if (k == OpKind::kAllreduce || k == OpKind::kBarrier) {
      const std::uint32_t e = st[r].coll_done;
      msg += " #" + std::to_string(e);
      for (std::size_t q = 0; q < n; ++q) {
        if (st[q].blocked == kBlockedCollective && st[q].coll_done == e) {
          continue;
        }
        msg += ", waiting on rank " + std::to_string(q) +
               (st[q].pc >= rank_off[q + 1] ? " (which already finished)"
                                            : " (which is not at a collective)");
        break;
      }
    }
    throw DeadlockError(msg);
  }

  std::vector<double> time_s(n);
  for (std::size_t r = 0; r < n; ++r) time_s[r] = st[r].time_s;
  return finalize(std::move(stats), time_s);
}

RunResult Engine::run_phase_sync(const ProgramImage& img) const {
  const std::size_t n = img.nranks();
  std::vector<RankStats> stats(n);
  std::vector<double> time_s(n, 0.0);
  std::vector<std::size_t> pc(n);
  // Arrival time and arrival count at the current phase. A stuck rank's
  // entries freeze, which is exactly what its peers must observe (the rank
  // arrived, it just never completes).
  std::vector<double> arr(n, 0.0);
  std::vector<std::uint32_t> arrived(n, 0);
  std::vector<std::uint8_t> stuck(n, 0);
  // Per-rank transfer-cost cache — same key and same arithmetic as the
  // scheduler path, so the cached sums are bit-identical.
  std::vector<std::uint32_t> cost_topo(n, 0xFFFFFFFFu);
  std::vector<double> cost_bytes(n, 0.0);
  std::vector<double> cost_s(n, 0.0);

  const std::uint8_t* kinds = img.kinds();
  const double* values = img.values();
  const std::uint32_t* topos = img.topologies();
  const std::size_t* rank_off = img.rank_offsets();
  const std::uint32_t* peer_off = img.peer_offsets();
  const RankId* peer_tab = img.peers();

  for (std::size_t r = 0; r < n; ++r) pc[r] = rank_off[r];

  // With phase-invariant peer sets and no collectives, every running rank
  // is at the same exchange-phase index, so each phase is two sequential
  // sweeps over the ranks — no scheduler, no queues, no random-access peer
  // probes.
  for (std::uint32_t phase = 0;; ++phase) {
    // Sweep 1: fold compute runs, record this phase's arrivals.
    std::size_t at_halo = 0;
    for (std::size_t r = 0; r < n; ++r) {
      if (stuck[r]) continue;
      std::size_t p = pc[r];
      const std::size_t end = rank_off[r + 1];
      double t = time_s[r];
      while (p < end && static_cast<OpKind>(kinds[p]) == OpKind::kCompute) {
        t += values[p];
        stats[r].compute_s += values[p];
        ++p;
      }
      time_s[r] = t;
      pc[r] = p;
      if (p < end) {  // the image has no collectives: this is a halo op
        arr[r] = t;
        arrived[r] = phase + 1;
        ++at_halo;
      }
    }
    if (at_halo == 0) break;  // every rank finished (or stuck earlier)

    // Sweep 2: complete every exchange whose peers all arrived. A missing
    // peer is either finished or stuck at an earlier phase — both
    // permanent — so this rank is stuck for good.
    std::size_t progressed = 0;
    for (std::size_t r = 0; r < n; ++r) {
      if (stuck[r] || pc[r] >= rank_off[r + 1]) continue;
      const std::size_t op = pc[r];
      const std::uint32_t topo = topos[op];
      const RankId* pb = peer_tab + peer_off[topo];
      const RankId* pe = peer_tab + peer_off[topo + 1];
      bool blocked = false;
      double latest_s = time_s[r];
      for (const RankId* p = pb; p != pe; ++p) {
        if (arrived[*p] <= phase) {
          blocked = true;
          break;
        }
        if (arr[*p] > latest_s) latest_s = arr[*p];
      }
      if (blocked) {
        stuck[r] = 1;
        continue;
      }
      if (pb != pe) {
        const double bytes = values[op];
        if (cost_topo[r] != topo || !(cost_bytes[r] == bytes)) {
          double transfer_s = 0.0;
          for (const RankId* p = pb; p != pe; ++p) {
            transfer_s += network_.p2p_cost_s(static_cast<std::uint32_t>(r),
                                              *p, bytes);
          }
          cost_topo[r] = topo;
          cost_bytes[r] = bytes;
          cost_s[r] = transfer_s;
        }
        const double wait_s = latest_s - time_s[r];
        stats[r].wait_s += wait_s;
        stats[r].transfer_s += cost_s[r];
        stats[r].sendrecv_s += wait_s + cost_s[r];
        time_s[r] = latest_s + cost_s[r];
      }
      ++pc[r];
      ++progressed;
    }
    if (progressed == 0) break;  // every remaining rank is stuck
  }

  // Same diagnostic the scheduler path emits from its drained queue: the
  // first unfinished rank, its pc, and the peer whose arrivals ran out.
  for (std::size_t r = 0; r < n; ++r) {
    if (pc[r] >= rank_off[r + 1]) continue;
    const std::size_t op = pc[r];
    const std::uint32_t phase = arrived[r] - 1;
    const std::uint32_t topo = topos[op];
    std::string msg =
        "no rank can make progress (misaligned SPMD programs?): rank " +
        std::to_string(r) + " blocked at pc " +
        std::to_string(op - rank_off[r]) + " (" +
        kind_name(static_cast<OpKind>(kinds[op])) + ") in exchange phase " +
        std::to_string(phase);
    for (const RankId* p = peer_tab + peer_off[topo];
         p != peer_tab + peer_off[topo + 1]; ++p) {
      if (arrived[*p] <= phase) {
        msg += ", waiting on peer " + std::to_string(*p) +
               " (which reached only " + std::to_string(arrived[*p]) +
               " exchange phases)";
        break;
      }
    }
    throw DeadlockError(msg);
  }

  return finalize(std::move(stats), time_s);
}

RunResult Engine::run_sync_free(const ProgramImage& img) const {
  const std::size_t n = img.nranks();
  std::vector<RankStats> stats(n);
  std::vector<double> time_s(n, 0.0);
  std::vector<std::size_t> pc(n);
  for (std::size_t r = 0; r < n; ++r) pc[r] = img.op_begin(r);

  // No halo ops means execution is a sequence of independent compute
  // stretches punctuated by global collectives: fold each rank's computes
  // analytically, then close the collective in one reduction — no
  // scheduler, no per-op revisits.
  std::size_t epoch = 0;
  for (;;) {
    std::size_t finished = 0;
    for (std::size_t r = 0; r < n; ++r) {
      while (pc[r] < img.op_end(r) && img.kind(pc[r]) == OpKind::kCompute) {
        const double t_s = img.value(pc[r]);
        time_s[r] += t_s;
        stats[r].compute_s += t_s;
        ++pc[r];
      }
      finished += pc[r] >= img.op_end(r);
    }
    if (finished == n) break;
    if (finished > 0) {
      std::size_t blocked_rank = 0;
      while (pc[blocked_rank] >= img.op_end(blocked_rank)) ++blocked_rank;
      std::size_t gone = 0;
      while (pc[gone] < img.op_end(gone)) ++gone;
      throw DeadlockError(
          "no rank can make progress (misaligned SPMD programs?): rank " +
          std::to_string(blocked_rank) + " blocked at pc " +
          std::to_string(pc[blocked_rank] - img.op_begin(blocked_rank)) +
          " (" + kind_name(img.kind(pc[blocked_rank])) + ") #" +
          std::to_string(epoch) + ", waiting on rank " + std::to_string(gone) +
          " (which already finished)");
    }
    bool all_allreduce = true, all_barrier = true;
    double latest_s = 0.0, bytes = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      if (img.kind(pc[r]) == OpKind::kAllreduce) {
        all_barrier = false;
        bytes = std::max(bytes, img.value(pc[r]));
      } else {
        all_allreduce = false;
      }
      latest_s = std::max(latest_s, time_s[r]);
    }
    if (!all_allreduce && !all_barrier) {
      throw DeadlockError("ranks disagree on collective type");
    }
    const double cost_s = all_barrier ? network_.collective_cost_s(n, 8.0)
                                      : network_.collective_cost_s(n, bytes);
    for (std::size_t r = 0; r < n; ++r) {
      double wait_s = latest_s - time_s[r];
      stats[r].wait_s += wait_s;
      stats[r].transfer_s += cost_s;
      stats[r].collective_s += wait_s + cost_s;
      time_s[r] = latest_s + cost_s;
      ++pc[r];
    }
    ++epoch;
  }
  return finalize(std::move(stats), time_s);
}

}  // namespace vapb::des
