#include "des/program.hpp"

#include <cmath>

#include "util/error.hpp"

namespace vapb::des::topology {

std::vector<RankId> chain_1d(RankId rank, std::size_t nranks) {
  VAPB_REQUIRE_MSG(rank < nranks, "rank out of range");
  std::vector<RankId> peers;
  if (rank > 0) peers.push_back(rank - 1);
  if (rank + 1 < nranks) peers.push_back(static_cast<RankId>(rank + 1));
  return peers;
}

std::vector<RankId> grid_3d(RankId rank, std::size_t dx, std::size_t dy,
                            std::size_t dz) {
  VAPB_REQUIRE_MSG(dx * dy * dz > rank, "rank out of grid");
  const std::size_t r = rank;
  const std::size_t x = r % dx;
  const std::size_t y = (r / dx) % dy;
  const std::size_t z = r / (dx * dy);
  std::vector<RankId> peers;
  auto flat = [&](std::size_t xi, std::size_t yi, std::size_t zi) {
    return static_cast<RankId>(xi + dx * (yi + dy * zi));
  };
  if (x > 0) peers.push_back(flat(x - 1, y, z));
  if (x + 1 < dx) peers.push_back(flat(x + 1, y, z));
  if (y > 0) peers.push_back(flat(x, y - 1, z));
  if (y + 1 < dy) peers.push_back(flat(x, y + 1, z));
  if (z > 0) peers.push_back(flat(x, y, z - 1));
  if (z + 1 < dz) peers.push_back(flat(x, y, z + 1));
  return peers;
}

std::array<std::size_t, 3> balanced_dims_3d(std::size_t nranks) {
  VAPB_REQUIRE_MSG(nranks > 0, "need at least one rank");
  // Pick dx as the largest divisor <= cube root, then split the rest.
  auto largest_divisor_leq = [](std::size_t n, std::size_t cap) {
    std::size_t best = 1;
    for (std::size_t d = 1; d <= cap; ++d) {
      if (n % d == 0) best = d;
    }
    return best;
  };
  auto cbrt_floor = static_cast<std::size_t>(std::cbrt(static_cast<double>(nranks)) + 1e-9);
  std::size_t dx = largest_divisor_leq(nranks, std::max<std::size_t>(1, cbrt_floor));
  std::size_t rest = nranks / dx;
  auto sqrt_floor = static_cast<std::size_t>(std::sqrt(static_cast<double>(rest)) + 1e-9);
  std::size_t dy = largest_divisor_leq(rest, std::max<std::size_t>(1, sqrt_floor));
  std::size_t dz = rest / dy;
  return {dx, dy, dz};
}

}  // namespace vapb::des::topology
