// Interconnect cost model: LogP-flavoured (per-message latency plus a
// bandwidth term), with an optional two-tier hierarchy distinguishing
// intra-node transfers (shared memory between the two sockets of an HA8K
// node) from inter-node transfers (the fabric). Deliberately simple — the
// paper's effects come from compute-time imbalance, with the network only
// propagating waits.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace vapb::des {

struct NetworkModel {
  // Inter-node fabric.
  double latency_s = 2e-6;               ///< per-message software+wire latency
  double bandwidth_bytes_per_s = 5e9;    ///< point-to-point bandwidth

  // Intra-node tier (shared-memory transport). Used for rank pairs that map
  // to the same node when ranks_per_node > 1.
  double intra_latency_s = 4e-7;
  double intra_bandwidth_bytes_per_s = 2e10;

  /// Ranks per node for the hierarchy mapping; 1 disables the intra tier
  /// (every pair is inter-node). HA8K runs one rank per socket, two sockets
  /// per node.
  std::uint32_t ranks_per_node = 1;

  [[nodiscard]] bool same_node(std::uint32_t a, std::uint32_t b) const {
    return ranks_per_node > 1 && a / ranks_per_node == b / ranks_per_node;
  }

  /// Cost of moving `bytes` point-to-point over the fabric tier.
  [[nodiscard]] double p2p_cost_s(double bytes) const {
    return latency_s + bytes / bandwidth_bytes_per_s;
  }

  /// Cost of moving `bytes` between two specific ranks (tier-aware).
  [[nodiscard]] double p2p_cost_s(std::uint32_t a, std::uint32_t b,
                                  double bytes) const {
    if (same_node(a, b)) {
      return intra_latency_s + bytes / intra_bandwidth_bytes_per_s;
    }
    return p2p_cost_s(bytes);
  }

  /// Cost of a tree-based collective over `ranks` participants, after the
  /// last participant arrives.
  [[nodiscard]] double collective_cost_s(std::size_t ranks,
                                         double bytes) const {
    if (ranks <= 1) return 0.0;
    double stages = std::ceil(std::log2(static_cast<double>(ranks)));
    return stages * (latency_s + bytes / bandwidth_bytes_per_s);
  }
};

}  // namespace vapb::des
