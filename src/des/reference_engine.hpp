// The original round-robin polling engine, retained verbatim as the
// differential-testing oracle for the event-driven Engine and as the
// before-side of the perf-regression benches.
//
// Every global round it rescans all ranks and re-checks every halo peer of
// every blocked rank (worst case O(ranks^2 x phases) peer probes), and it
// re-validates peer-list symmetry on every run. Do not use it on hot paths;
// its one job is to define the semantics the fast engine must reproduce
// bit for bit.
#pragma once

#include <vector>

#include "des/engine.hpp"

namespace vapb::des {

class ReferenceEngine {
 public:
  explicit ReferenceEngine(NetworkModel network = {}) : network_(network) {}

  /// Executes the programs (one per rank) to completion. Same contract and
  /// bit-identical results as Engine::run.
  [[nodiscard]] RunResult run(const std::vector<RankProgram>& programs) const;

 private:
  NetworkModel network_;
};

}  // namespace vapb::des
