#include "des/reference_engine.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"

namespace vapb::des {

namespace {

struct RankState {
  std::size_t pc = 0;              // next op index
  double time = 0.0;               // local clock
  std::size_t exchange_phase = 0;  // halo exchanges completed
};

/// Validates that peer lists are symmetric: if p is a peer of r in r's k-th
/// exchange, r must be a peer of p in p's k-th exchange. Halo completion is
/// only well-defined under this condition.
void validate_symmetry(const std::vector<RankProgram>& programs) {
  const std::size_t n = programs.size();
  std::vector<std::vector<const HaloExchangeOp*>> phases(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (const auto& op : programs[r].ops) {
      if (const auto* ex = std::get_if<HaloExchangeOp>(&op)) {
        phases[r].push_back(ex);
        for (RankId p : ex->peers) {
          if (p >= n) {
            throw InvalidArgument("halo peer " + std::to_string(p) +
                                  " out of range");
          }
          if (p == r) throw InvalidArgument("halo exchange with self");
        }
      }
    }
  }
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = 0; k < phases[r].size(); ++k) {
      for (RankId p : phases[r][k]->peers) {
        if (k >= phases[p].size() ||
            std::find(phases[p][k]->peers.begin(), phases[p][k]->peers.end(),
                      static_cast<RankId>(r)) == phases[p][k]->peers.end()) {
          throw InvalidArgument(
              "asymmetric halo exchange: rank " + std::to_string(r) +
              " phase " + std::to_string(k) + " lists peer " +
              std::to_string(p) + " but not vice versa");
        }
      }
    }
  }
}

}  // namespace

RunResult ReferenceEngine::run(const std::vector<RankProgram>& programs) const {
  if (programs.empty()) throw InvalidArgument("Engine: no rank programs");
  const std::size_t n = programs.size();
  validate_symmetry(programs);

  std::vector<RankState> st(n);
  std::vector<RankStats> stats(n);
  // exch_arrival[r][k] = local time at which rank r arrived at its k-th
  // exchange phase. Peers consult this even after r completes the phase
  // (peer sets differ, so completion order is not symmetric).
  std::vector<std::vector<double>> exch_arrival(n);

  auto done = [&](std::size_t r) { return st[r].pc >= programs[r].ops.size(); };

  // Advances rank r through every op it can resolve locally. Returns true on
  // any progress.
  auto advance_local = [&](std::size_t r) {
    bool progress = false;
    while (!done(r)) {
      const Op& op = programs[r].ops[st[r].pc];
      if (const auto* c = std::get_if<ComputeOp>(&op)) {
        st[r].time += c->seconds;
        stats[r].compute_s += c->seconds;
        ++st[r].pc;
        progress = true;
        continue;
      }
      if (const auto* ex = std::get_if<HaloExchangeOp>(&op)) {
        const std::size_t phase = st[r].exchange_phase;
        // Record arrival the first time we see this phase.
        if (exch_arrival[r].size() == phase) {
          exch_arrival[r].push_back(st[r].time);
        }
        if (ex->peers.empty()) {
          ++st[r].pc;
          ++st[r].exchange_phase;
          progress = true;
          continue;
        }
        double latest_arrival = st[r].time;
        bool all_arrived = true;
        for (RankId p : ex->peers) {
          if (exch_arrival[p].size() <= phase) {
            all_arrived = false;
            break;
          }
          latest_arrival = std::max(latest_arrival, exch_arrival[p][phase]);
        }
        if (!all_arrived) return progress;  // blocked
        double wait = latest_arrival - st[r].time;
        double transfer = 0.0;
        for (RankId p : ex->peers) {
          transfer += network_.p2p_cost_s(static_cast<std::uint32_t>(r), p,
                                          ex->bytes_per_peer);
        }
        stats[r].wait_s += wait;
        stats[r].transfer_s += transfer;
        stats[r].sendrecv_s += wait + transfer;
        st[r].time = latest_arrival + transfer;
        ++st[r].pc;
        ++st[r].exchange_phase;
        progress = true;
        continue;
      }
      // Collective: handled globally.
      return progress;
    }
    return progress;
  };

  auto try_collective = [&] {
    bool all_allreduce = true, all_barrier = true;
    double latest = 0.0, bytes = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      if (done(r)) return false;
      const Op& op = programs[r].ops[st[r].pc];
      if (const auto* a = std::get_if<AllreduceOp>(&op)) {
        all_barrier = false;
        bytes = std::max(bytes, a->bytes);
      } else if (std::holds_alternative<BarrierOp>(op)) {
        all_allreduce = false;
      } else {
        return false;
      }
      latest = std::max(latest, st[r].time);
    }
    if (!all_allreduce && !all_barrier) {
      throw DeadlockError("ranks disagree on collective type");
    }
    double cost = all_barrier ? network_.collective_cost_s(n, 8.0)
                              : network_.collective_cost_s(n, bytes);
    for (std::size_t r = 0; r < n; ++r) {
      double wait = latest - st[r].time;
      stats[r].wait_s += wait;
      stats[r].transfer_s += cost;
      stats[r].collective_s += wait + cost;
      st[r].time = latest + cost;
      ++st[r].pc;
    }
    return true;
  };

  for (;;) {
    bool progress = false;
    for (std::size_t r = 0; r < n; ++r) progress |= advance_local(r);
    bool all_done = true;
    for (std::size_t r = 0; r < n; ++r) all_done &= done(r);
    if (all_done) break;
    if (try_collective()) continue;
    if (!progress) {
      throw DeadlockError(
          "no rank can make progress (misaligned SPMD programs?)");
    }
  }

  RunResult result;
  result.ranks = std::move(stats);
  for (std::size_t r = 0; r < n; ++r) {
    result.ranks[r].finish_time_s = st[r].time;
  }
  result.seal();
  return result;
}

}  // namespace vapb::des
