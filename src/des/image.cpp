#include "des/image.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <variant>

#include "util/error.hpp"

namespace vapb::des {

ImageBuilder::ImageBuilder(std::size_t nranks) : nranks_(nranks) {
  img_.rank_begin_.assign(nranks + 1, 0);
  img_.peer_begin_.assign(1, 0);
}

std::uint32_t ImageBuilder::add_topology(const std::vector<RankId>& peers) {
  img_.peers_.insert(img_.peers_.end(), peers.begin(), peers.end());
  img_.peer_begin_.push_back(
      static_cast<std::uint32_t>(img_.peers_.size()));
  return static_cast<std::uint32_t>(img_.peer_begin_.size() - 2);
}

void ImageBuilder::begin_op(RankId rank) {
  if (built_) throw InvalidArgument("ImageBuilder: already built");
  if (rank >= nranks_) {
    throw InvalidArgument("ImageBuilder: rank " + std::to_string(rank) +
                          " out of range");
  }
  if (rank < current_rank_) {
    throw InvalidArgument(
        "ImageBuilder: ops must be appended in nondecreasing rank order");
  }
  // Close the op streams of any ranks skipped over (they stay empty).
  while (current_rank_ < rank) {
    ++current_rank_;
    img_.rank_begin_[current_rank_] = img_.kind_.size();
  }
}

void ImageBuilder::compute(RankId rank, double seconds, double entropy) {
  begin_op(rank);
  if (entropy < 0.0 || entropy > 1.0) {
    throw InvalidArgument("ImageBuilder: entropy must lie in [0, 1]");
  }
  img_.kind_.push_back(static_cast<std::uint8_t>(OpKind::kCompute));
  img_.value_.push_back(seconds);
  img_.entropy_.push_back(entropy);
  img_.topo_.push_back(0);
}

void ImageBuilder::halo_exchange(RankId rank, std::uint32_t topology,
                                 double bytes_per_peer) {
  begin_op(rank);
  if (topology >= img_.topology_count()) {
    throw InvalidArgument("ImageBuilder: unknown topology index " +
                          std::to_string(topology));
  }
  img_.kind_.push_back(static_cast<std::uint8_t>(OpKind::kHaloExchange));
  img_.value_.push_back(bytes_per_peer);
  img_.entropy_.push_back(0.5);
  img_.topo_.push_back(topology);
  ++img_.halo_ops_;
}

void ImageBuilder::allreduce(RankId rank, double bytes) {
  begin_op(rank);
  img_.kind_.push_back(static_cast<std::uint8_t>(OpKind::kAllreduce));
  img_.value_.push_back(bytes);
  img_.entropy_.push_back(0.5);
  img_.topo_.push_back(0);
  ++img_.coll_ops_;
}

void ImageBuilder::barrier(RankId rank) {
  begin_op(rank);
  img_.kind_.push_back(static_cast<std::uint8_t>(OpKind::kBarrier));
  img_.value_.push_back(0.0);
  img_.entropy_.push_back(0.5);
  img_.topo_.push_back(0);
  ++img_.coll_ops_;
}

ProgramImage ImageBuilder::build() {
  if (built_) throw InvalidArgument("ImageBuilder: already built");
  built_ = true;
  // Close every remaining rank's op stream.
  while (current_rank_ + 1 < img_.rank_begin_.size()) {
    ++current_rank_;
    img_.rank_begin_[current_rank_] = img_.kind_.size();
  }

  const std::size_t n = img_.nranks();
  // Per-rank halo-phase offsets, then the per-phase topology sequence used
  // for symmetry validation. Track along the way whether each rank sticks
  // to a single topology for all its exchanges.
  img_.halo_phase_begin_.assign(n + 1, 0);
  img_.uniform_topology_ = true;
  for (std::size_t r = 0; r < n; ++r) {
    std::size_t phases = 0;
    std::uint32_t first_topo = 0;
    for (std::size_t op = img_.op_begin(r); op < img_.op_end(r); ++op) {
      if (img_.kind(op) != OpKind::kHaloExchange) continue;
      if (phases == 0) {
        first_topo = img_.topology(op);
      } else if (img_.topology(op) != first_topo) {
        img_.uniform_topology_ = false;
      }
      ++phases;
    }
    img_.halo_phase_begin_[r + 1] = img_.halo_phase_begin_[r] + phases;
  }

  // phase_topo[halo_phase_begin(r) + k] = topology of rank r's k-th phase.
  std::vector<std::uint32_t> phase_topo(img_.total_halo_phases());
  for (std::size_t r = 0; r < n; ++r) {
    std::size_t k = img_.halo_phase_begin_[r];
    for (std::size_t op = img_.op_begin(r); op < img_.op_end(r); ++op) {
      if (img_.kind(op) == OpKind::kHaloExchange) {
        phase_topo[k++] = img_.topology(op);
      }
    }
  }

  // Halo completion is only well-defined when peer lists are symmetric per
  // phase: if p is a peer of r in r's k-th exchange, r must be a peer of p
  // in p's k-th exchange.
  auto phase_count = [&](std::size_t r) {
    return img_.halo_phase_begin_[r + 1] - img_.halo_phase_begin_[r];
  };
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = 0; k < phase_count(r); ++k) {
      const std::uint32_t t = phase_topo[img_.halo_phase_begin_[r] + k];
      for (const RankId* p = img_.peers_begin(t); p != img_.peers_end(t);
           ++p) {
        if (*p >= n) {
          throw InvalidArgument("halo peer " + std::to_string(*p) +
                                " out of range");
        }
        if (*p == r) throw InvalidArgument("halo exchange with self");
        bool mutual = false;
        if (k < phase_count(*p)) {
          const std::uint32_t pt = phase_topo[img_.halo_phase_begin_[*p] + k];
          mutual = std::find(img_.peers_begin(pt), img_.peers_end(pt),
                             static_cast<RankId>(r)) != img_.peers_end(pt);
        }
        if (!mutual) {
          throw InvalidArgument(
              "asymmetric halo exchange: rank " + std::to_string(r) +
              " phase " + std::to_string(k) + " lists peer " +
              std::to_string(*p) + " but not vice versa");
        }
      }
    }
  }
  return std::move(img_);
}

double ProgramImage::mean_compute_entropy(std::size_t r) const {
  // Seconds-weighted: a short high-entropy burst moves the mean less than a
  // long one. Sequential left-to-right accumulation over one rank's ops —
  // deterministic regardless of how callers parallelize over ranks.
  double weighted = 0.0;
  double seconds = 0.0;
  for (std::size_t op = op_begin(r); op < op_end(r); ++op) {
    if (kind(op) != OpKind::kCompute) continue;
    weighted += entropy_[op] * value_[op];
    seconds += value_[op];
  }
  return seconds > 0.0 ? weighted / seconds : 0.5;
}

ProgramImage ProgramImage::compile(const std::vector<RankProgram>& programs) {
  ImageBuilder b(programs.size());
  // Identical peer lists (e.g. the same stencil neighbourhood repeated every
  // iteration) collapse into one topology entry. The previous op's list is
  // checked first: iteration loops repeat one neighbourhood back to back, so
  // the common case never touches the map.
  std::map<std::vector<RankId>, std::uint32_t> topo_ids;
  const std::vector<RankId>* last_peers = nullptr;
  std::uint32_t last_id = 0;
  for (std::size_t r = 0; r < programs.size(); ++r) {
    const auto rank = static_cast<RankId>(r);
    for (const Op& op : programs[r].ops) {
      if (const auto* c = std::get_if<ComputeOp>(&op)) {
        b.compute(rank, c->seconds);
      } else if (const auto* ex = std::get_if<HaloExchangeOp>(&op)) {
        if (last_peers == nullptr || *last_peers != ex->peers) {
          auto [it, inserted] = topo_ids.try_emplace(ex->peers, 0);
          if (inserted) it->second = b.add_topology(ex->peers);
          last_peers = &it->first;
          last_id = it->second;
        }
        b.halo_exchange(rank, last_id, ex->bytes_per_peer);
      } else if (const auto* a = std::get_if<AllreduceOp>(&op)) {
        b.allreduce(rank, a->bytes);
      } else {
        b.barrier(rank);
      }
    }
  }
  return b.build();
}

}  // namespace vapb::des
