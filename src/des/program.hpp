// Rank programs: the op sequence each MPI rank executes in the simulator.
//
// Programs are SPMD: every rank has the same sequence of communication ops
// (compute durations and neighbour lists may differ per rank). Halo exchange
// models MPI_Sendrecv with the full neighbour set of a stencil step;
// allreduce/barrier model global synchronization.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <variant>
#include <vector>

namespace vapb::des {

using RankId = std::uint32_t;

/// Local computation for a fixed duration (already resolved against the
/// module's operating frequency by the workload model).
struct ComputeOp {
  double seconds = 0.0;
};

/// Neighbour halo exchange (MPI_Sendrecv with each peer). Completes, for a
/// given rank, once all its peers have reached the same exchange phase; the
/// transfer cost is paid once per peer.
struct HaloExchangeOp {
  std::vector<RankId> peers;
  double bytes_per_peer = 0.0;
};

/// Global reduction (MPI_Allreduce): completes for everyone when the last
/// rank arrives, plus the collective cost.
struct AllreduceOp {
  double bytes = 0.0;
};

/// Global barrier.
struct BarrierOp {};

using Op = std::variant<ComputeOp, HaloExchangeOp, AllreduceOp, BarrierOp>;

struct RankProgram {
  std::vector<Op> ops;

  void compute(double seconds) { ops.emplace_back(ComputeOp{seconds}); }
  void halo_exchange(std::vector<RankId> peers, double bytes_per_peer) {
    ops.emplace_back(HaloExchangeOp{std::move(peers), bytes_per_peer});
  }
  void allreduce(double bytes) { ops.emplace_back(AllreduceOp{bytes}); }
  void barrier() { ops.emplace_back(BarrierOp{}); }
};

/// Per-rank accounting after a run.
struct RankStats {
  double compute_s = 0.0;    ///< time spent in ComputeOps
  double wait_s = 0.0;       ///< blocked waiting for peers/collectives
  double transfer_s = 0.0;   ///< time paying message/collective costs
  double sendrecv_s = 0.0;   ///< cumulative time inside halo exchanges
                             ///< (wait + transfer) — Figure 3's x-axis
  double collective_s = 0.0; ///< cumulative time inside allreduce/barrier
  double finish_time_s = 0.0;

  [[nodiscard]] double total_comm_s() const { return wait_s + transfer_s; }
};

/// Neighbour topology helpers used by the workload program generators.
namespace topology {

/// Peers of `rank` on an open 1-D chain (1 or 2 peers).
std::vector<RankId> chain_1d(RankId rank, std::size_t nranks);

/// Peers of `rank` on an open 3-D grid with dims (dx, dy, dz),
/// dx*dy*dz == nranks (up to 6 peers).
std::vector<RankId> grid_3d(RankId rank, std::size_t dx, std::size_t dy,
                            std::size_t dz);

/// Factorizes nranks into the most cubic (dx, dy, dz) possible.
std::array<std::size_t, 3> balanced_dims_3d(std::size_t nranks);

}  // namespace topology

}  // namespace vapb::des
