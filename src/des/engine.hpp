// Discrete-event execution of SPMD rank programs.
//
// Semantics:
//  * ComputeOp advances the rank's local clock.
//  * HaloExchangeOp at a rank's k-th exchange phase completes once every peer
//    has arrived at *its* k-th exchange phase; the rank then pays the
//    transfer cost once per peer. Peer sets must be symmetric.
//  * AllreduceOp / BarrierOp complete for everyone when the last rank
//    arrives, plus the collective cost.
//
// The engine is event-driven: a ready-queue scheduler visits each op O(1)
// times plus O(1) work per peer edge, driven by per-rank dependency
// counters (a halo phase holds one counter decremented as peers arrive;
// collectives hold a single shared arrival counter per epoch). Two program
// shapes take analytic fast paths with no scheduler at all: programs
// without halo exchanges, and pure-stencil programs (uniform topology, no
// collectives), which execute phase-synchronously in two sequential sweeps
// per phase. Every path produces results bit-for-bit identical to the
// retained polling ReferenceEngine, which the differential fuzz tests
// enforce.
//
// The engine validates SPMD alignment (every rank has the same sequence of
// communication ops) and throws DeadlockError — naming the first blocked
// rank, its pc, op kind and the peer it waits on — when no rank can make
// progress.
#pragma once

#include <vector>

#include "des/image.hpp"
#include "des/network.hpp"
#include "des/program.hpp"
#include "util/error.hpp"

namespace vapb::des {

class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

struct RunResult {
  std::vector<RankStats> ranks;
  double makespan_s = 0.0;  ///< finish time of the slowest rank

  /// Per-rank finish / cumulative-sendrecv times. The vectors are computed
  /// once (engines seal results before returning them) and borrowed by the
  /// caller; repeated metric evaluations no longer copy rank arrays.
  [[nodiscard]] const std::vector<double>& finish_times() const;
  [[nodiscard]] const std::vector<double>& sendrecv_times() const;

  /// Recomputes makespan_s and the cached per-rank views from `ranks`.
  /// Engines call this once at the end of a run; call it again after
  /// mutating `ranks` by hand (tests do).
  void seal();

 private:
  mutable std::vector<double> finish_times_cache_;
  mutable std::vector<double> sendrecv_times_cache_;
};

class Engine {
 public:
  explicit Engine(NetworkModel network = {}) : network_(network) {}

  /// Executes a compiled image to completion. Throws InvalidArgument when
  /// the image has no ranks; DeadlockError when execution stalls
  /// (misaligned programs).
  [[nodiscard]] RunResult run(const ProgramImage& image) const;

  /// Convenience: compiles (validating peer symmetry) and runs. Prefer
  /// compiling once via ProgramImage/ImageBuilder when running repeatedly.
  [[nodiscard]] RunResult run(const std::vector<RankProgram>& programs) const;

 private:
  [[nodiscard]] RunResult run_sync_free(const ProgramImage& image) const;
  [[nodiscard]] RunResult run_phase_sync(const ProgramImage& image) const;

  NetworkModel network_;
};

}  // namespace vapb::des
