// Discrete-event execution of SPMD rank programs.
//
// Semantics:
//  * ComputeOp advances the rank's local clock.
//  * HaloExchangeOp at a rank's k-th exchange phase completes once every peer
//    has arrived at *its* k-th exchange phase; the rank then pays the
//    transfer cost once per peer. Peer sets must be symmetric.
//  * AllreduceOp / BarrierOp complete for everyone when the last rank
//    arrives, plus the collective cost.
//
// The engine validates SPMD alignment (every rank has the same sequence of
// communication ops) and throws DeadlockError when no rank can make progress.
#pragma once

#include <vector>

#include "des/network.hpp"
#include "des/program.hpp"
#include "util/error.hpp"

namespace vapb::des {

class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

struct RunResult {
  std::vector<RankStats> ranks;
  double makespan_s = 0.0;  ///< finish time of the slowest rank

  [[nodiscard]] std::vector<double> finish_times() const;
  [[nodiscard]] std::vector<double> sendrecv_times() const;
};

class Engine {
 public:
  explicit Engine(NetworkModel network = {}) : network_(network) {}

  /// Executes the programs (one per rank) to completion.
  /// Throws InvalidArgument when `programs` is empty or peer sets are not
  /// symmetric; DeadlockError when execution stalls (misaligned programs).
  [[nodiscard]] RunResult run(const std::vector<RankProgram>& programs) const;

 private:
  NetworkModel network_;
};

}  // namespace vapb::des
