// The hierarchical power-capacity model of a production system.
//
// Real machines do not budget power flat: a module sits on a board, the
// board in a cabinet, the cabinet behind a feed — and every one of those
// levels has its own capacity (breaker rating, PSU envelope, facility
// contract). A PowerTree captures that as a balanced hierarchy of nodes
// over the module axis: each node owns a contiguous [begin, end) range of
// module ids plus the capacity of its enclosing physical level, and each
// level partitions the fleet. The 1-level tree (a single unconstrained root
// spanning every module) is the degenerate case under which the
// hierarchical solve reproduces the flat solve bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace vapb::cluster {

class ClusterSoA;

/// One node of the capacity hierarchy: a contiguous module range and the
/// power capacity of this enclosure (infinity = unconstrained).
struct PowerTreeNode {
  std::uint32_t module_begin = 0;
  std::uint32_t module_end = 0;  ///< half-open
  /// Children occupy [first_child, first_child + child_count) of the next
  /// level down; a node on the deepest level has child_count 0 and its
  /// modules are the leaves.
  std::uint32_t first_child = 0;
  std::uint32_t child_count = 0;
  double capacity_w = std::numeric_limits<double>::infinity();

  [[nodiscard]] std::size_t module_count() const {
    return static_cast<std::size_t>(module_end) - module_begin;
  }
  [[nodiscard]] bool leaf_group() const { return child_count == 0; }
  [[nodiscard]] bool capped() const {
    return capacity_w != std::numeric_limits<double>::infinity();
  }
};

/// Levels of nodes over a fixed module count. Level 0 is the single root;
/// each level's nodes partition [0, modules) into contiguous ranges, and a
/// node's children partition exactly its own range.
class PowerTree {
 public:
  /// The 1-level degenerate tree: one unconstrained root over n modules.
  static PowerTree flat(std::size_t modules);

  /// A balanced tree: the root plus one level per fanout entry. Level k+1
  /// splits every level-k node into fanouts[k] near-equal contiguous parts,
  /// each carrying level_capacity_w[k] (per node; infinity = uncapped).
  /// Module counts that do not divide evenly are balanced to within one.
  static PowerTree uniform(std::size_t modules,
                           std::span<const std::size_t> fanouts,
                           std::span<const double> level_capacity_w);

  /// uniform() with per-node capacities derived from the fabricated fleet:
  /// every level-k node's capacity is headroom_frac[k] times the sum of the
  /// TDP caps of the modules it spans — the way real enclosures are
  /// provisioned (a fraction of worst-case nameplate power).
  static PowerTree uniform_tdp(const ClusterSoA& soa,
                               std::span<const std::size_t> fanouts,
                               std::span<const double> headroom_frac);

  [[nodiscard]] std::size_t module_count() const { return modules_; }
  [[nodiscard]] std::size_t level_count() const {
    return level_offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::vector<PowerTreeNode>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] std::span<const PowerTreeNode> level(std::size_t k) const;
  [[nodiscard]] const PowerTreeNode& root() const { return nodes_.front(); }

  /// True when this is the 1-level degenerate tree (flat budgeting).
  [[nodiscard]] bool trivial() const { return level_count() == 1; }

  /// True when no node carries a finite capacity (only the application
  /// budget constrains the solve, whatever the shape).
  [[nodiscard]] bool unconstrained() const;

 private:
  PowerTree(std::size_t modules, std::vector<PowerTreeNode> nodes,
            std::vector<std::size_t> level_offsets);

  void validate() const;

  std::size_t modules_ = 0;
  /// All nodes, level by level (root first); level k occupies
  /// [level_offsets_[k], level_offsets_[k + 1]).
  std::vector<PowerTreeNode> nodes_;
  std::vector<std::size_t> level_offsets_;
};

}  // namespace vapb::cluster
