// A simulated production system: the full fleet of modules fabricated for an
// architecture, each with its own manufacturing variation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hw/arch.hpp"
#include "hw/module.hpp"
#include "util/rng.hpp"

namespace vapb::cluster {

class Cluster {
 public:
  /// Fabricates `spec.total_modules()` modules (or `module_count` if
  /// non-zero, for scaled-down experiments) with variation drawn from
  /// `spec.variation` under the given master seed.
  Cluster(hw::ArchSpec spec, util::SeedSequence master_seed,
          std::size_t module_count = 0);

  /// Fabricates a heterogeneous fleet per `mix` (e.g. cpu:1536,gpu:320,
  /// dram:64): class specs come from hw::device_class_spec(spec, c). Module
  /// ids are laid out class-contiguous in class index order — CPU modules
  /// first, at ids 0..cpu-1, drawing *exactly* the variations the
  /// homogeneous constructor draws for those ids; non-CPU classes follow,
  /// each drawing from its own fabrication seed fork. A cpu-only mix is
  /// therefore bit-identical to the homogeneous constructor of the same
  /// size (and fingerprints equal).
  Cluster(hw::ArchSpec spec, util::SeedSequence master_seed,
          const hw::ClassMix& mix);

  [[nodiscard]] const hw::ArchSpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t size() const { return modules_.size(); }

  /// The fabricated composition. A homogeneous cluster reports a cpu-only
  /// mix of its size.
  [[nodiscard]] const hw::ClassMix& mix() const { return mix_; }

  /// True when any non-CPU module exists — the gate every class-aware
  /// branch checks; false keeps all legacy paths byte-for-byte untouched.
  [[nodiscard]] bool heterogeneous() const { return !mix_.homogeneous_cpu(); }

  /// Device class of a module (ids are class-contiguous).
  [[nodiscard]] hw::DeviceClass device_class(hw::ModuleId id) const {
    return module(id).device_class();
  }

  /// The class spec used for fabrication (CPU synthesized from the legacy
  /// arch fields; see hw::device_class_spec).
  [[nodiscard]] hw::DeviceClassSpec class_spec(hw::DeviceClass c) const;

  [[nodiscard]] const hw::Module& module(hw::ModuleId id) const;
  [[nodiscard]] const std::vector<hw::Module>& modules() const {
    return modules_;
  }

  /// Seed subtree for components attached to this cluster (sensors, RAPL
  /// jitter, workload noise); stable across runs.
  [[nodiscard]] const util::SeedSequence& seed() const { return seed_; }

  /// Stable identity of this fabricated fleet: architecture parameters,
  /// master seed and module count. Two clusters with equal fingerprints hold
  /// bitwise-equal modules, so process-wide caches (e.g.
  /// core::CalibrationCache) may share derived artifacts between them.
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  void fabricate_cpu_prefix(const util::SeedSequence& fab, std::size_t n);

  hw::ArchSpec spec_;
  util::SeedSequence seed_;
  std::uint64_t fingerprint_ = 0;
  hw::ClassMix mix_;
  std::vector<hw::Module> modules_;
};

}  // namespace vapb::cluster
