// A simulated production system: the full fleet of modules fabricated for an
// architecture, each with its own manufacturing variation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hw/arch.hpp"
#include "hw/module.hpp"
#include "util/rng.hpp"

namespace vapb::cluster {

class Cluster {
 public:
  /// Fabricates `spec.total_modules()` modules (or `module_count` if
  /// non-zero, for scaled-down experiments) with variation drawn from
  /// `spec.variation` under the given master seed.
  Cluster(hw::ArchSpec spec, util::SeedSequence master_seed,
          std::size_t module_count = 0);

  [[nodiscard]] const hw::ArchSpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t size() const { return modules_.size(); }

  [[nodiscard]] const hw::Module& module(hw::ModuleId id) const;
  [[nodiscard]] const std::vector<hw::Module>& modules() const {
    return modules_;
  }

  /// Seed subtree for components attached to this cluster (sensors, RAPL
  /// jitter, workload noise); stable across runs.
  [[nodiscard]] const util::SeedSequence& seed() const { return seed_; }

  /// Stable identity of this fabricated fleet: architecture parameters,
  /// master seed and module count. Two clusters with equal fingerprints hold
  /// bitwise-equal modules, so process-wide caches (e.g.
  /// core::CalibrationCache) may share derived artifacts between them.
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  hw::ArchSpec spec_;
  util::SeedSequence seed_;
  std::uint64_t fingerprint_ = 0;
  std::vector<hw::Module> modules_;
};

}  // namespace vapb::cluster
