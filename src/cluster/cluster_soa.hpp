// Structure-of-arrays view of a fabricated fleet.
//
// Cluster stores modules as an array of objects, which is the right shape
// for the per-module hardware emulation (RAPL, cpufreq, sensors) but the
// wrong one for fleet-scale math: the hierarchical budget solve, capacity
// provisioning and the scaling benches stream one coefficient of every
// module, not every coefficient of one module. ClusterSoA gathers those
// per-module coefficients — variation scales, frequency capability, TDP
// caps — into parallel arrays once, so the hot loops become flat,
// auto-vectorizable passes. The gather is element-wise (chunked through the
// ThreadPool) and therefore bit-identical at any thread count.
//
// The per-workload power-model coefficients (PVT/PMT) live one layer up in
// core::PmtSoA, which this layer cannot depend on; together the two carry
// the full SoA layout of a solve.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cluster/cluster.hpp"

namespace vapb::cluster {

class ClusterSoA {
 public:
  /// Gathers every module's coefficients from `cluster` in parallel.
  static ClusterSoA gather(const Cluster& cluster);

  [[nodiscard]] std::size_t size() const { return cpu_dyn_scale_.size(); }

  // Per-module variation scales (1.0 = fleet average), indexed by ModuleId.
  [[nodiscard]] std::span<const double> cpu_dyn_scale() const {
    return cpu_dyn_scale_;
  }
  [[nodiscard]] std::span<const double> cpu_static_scale() const {
    return cpu_static_scale_;
  }
  [[nodiscard]] std::span<const double> dram_scale() const {
    return dram_scale_;
  }
  [[nodiscard]] std::span<const double> freq_scale() const {
    return freq_scale_;
  }

  /// Highest reachable frequency per module (no turbo).
  [[nodiscard]] std::span<const double> max_freq_ghz() const {
    return max_freq_ghz_;
  }

  /// Nameplate CPU power cap per module — what enclosure provisioning
  /// works from (PowerTree::uniform_tdp). On a heterogeneous fleet this is
  /// each module's *class* TDP, so capacity provisioning sizes enclosures
  /// for the silicon actually installed.
  [[nodiscard]] std::span<const double> tdp_cpu_w() const {
    return tdp_cpu_w_;
  }

  /// Device class of every module, as raw hw::DeviceClass values (the
  /// byte form snapshots store and the solve's per-class reductions index
  /// with). All-kCpu on a homogeneous fleet.
  [[nodiscard]] std::span<const std::uint8_t> device_class() const {
    return device_class_;
  }

  /// Module count per class index; sums to size().
  [[nodiscard]] const std::array<std::size_t, hw::kDeviceClassCount>&
  class_counts() const {
    return class_counts_;
  }

  /// Fingerprint of the fleet the arrays were gathered from
  /// (Cluster::fingerprint), so caches can key on it.
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  ClusterSoA() = default;

  std::vector<double> cpu_dyn_scale_;
  std::vector<double> cpu_static_scale_;
  std::vector<double> dram_scale_;
  std::vector<double> freq_scale_;
  std::vector<double> max_freq_ghz_;
  std::vector<double> tdp_cpu_w_;
  std::vector<std::uint8_t> device_class_;
  std::array<std::size_t, hw::kDeviceClassCount> class_counts_{};
  std::uint64_t fingerprint_ = 0;
};

}  // namespace vapb::cluster
