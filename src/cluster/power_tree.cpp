#include "cluster/power_tree.hpp"

#include <string>
#include <utility>

#include "cluster/cluster_soa.hpp"
#include "util/error.hpp"
#include "util/reduce.hpp"

namespace vapb::cluster {

namespace {

/// Balanced split point: child i of `parts` over a range of `len` modules
/// starts at begin + (i * len) / parts, so sibling sizes differ by at most
/// one and the union is exactly the parent range.
std::uint32_t split_point(std::uint32_t begin, std::size_t len,
                          std::size_t parts, std::size_t i) {
  return begin + static_cast<std::uint32_t>(i * len / parts);
}

}  // namespace

PowerTree::PowerTree(std::size_t modules, std::vector<PowerTreeNode> nodes,
                     std::vector<std::size_t> level_offsets)
    : modules_(modules),
      nodes_(std::move(nodes)),
      level_offsets_(std::move(level_offsets)) {
  validate();
}

PowerTree PowerTree::flat(std::size_t modules) {
  if (modules == 0) throw InvalidArgument("PowerTree: zero modules");
  PowerTreeNode root;
  root.module_begin = 0;
  root.module_end = static_cast<std::uint32_t>(modules);
  return PowerTree(modules, {root}, {0, 1});
}

PowerTree PowerTree::uniform(std::size_t modules,
                             std::span<const std::size_t> fanouts,
                             std::span<const double> level_capacity_w) {
  if (modules == 0) throw InvalidArgument("PowerTree: zero modules");
  if (fanouts.size() != level_capacity_w.size()) {
    throw InvalidArgument(
        "PowerTree::uniform: one capacity per fanout level required");
  }

  std::vector<PowerTreeNode> nodes;
  std::vector<std::size_t> offsets{0};
  PowerTreeNode root;
  root.module_begin = 0;
  root.module_end = static_cast<std::uint32_t>(modules);
  nodes.push_back(root);
  offsets.push_back(nodes.size());

  std::size_t parent_begin = 0;
  for (std::size_t k = 0; k < fanouts.size(); ++k) {
    const std::size_t fanout = fanouts[k];
    if (fanout == 0) throw InvalidArgument("PowerTree::uniform: zero fanout");
    const std::size_t parent_end = nodes.size();
    for (std::size_t p = parent_begin; p < parent_end; ++p) {
      const std::size_t len = nodes[p].module_count();
      // A parent spanning fewer modules than the fanout keeps one child per
      // module instead of empty children.
      const std::size_t parts = len < fanout ? len : fanout;
      nodes[p].first_child = static_cast<std::uint32_t>(nodes.size());
      nodes[p].child_count = static_cast<std::uint32_t>(parts);
      for (std::size_t i = 0; i < parts; ++i) {
        PowerTreeNode child;
        child.module_begin = split_point(nodes[p].module_begin, len, parts, i);
        child.module_end =
            split_point(nodes[p].module_begin, len, parts, i + 1);
        child.capacity_w = level_capacity_w[k];
        nodes.push_back(child);
      }
    }
    parent_begin = parent_end;
    offsets.push_back(nodes.size());
  }
  return PowerTree(modules, std::move(nodes), std::move(offsets));
}

PowerTree PowerTree::uniform_tdp(const ClusterSoA& soa,
                                 std::span<const std::size_t> fanouts,
                                 std::span<const double> headroom_frac) {
  if (fanouts.size() != headroom_frac.size()) {
    throw InvalidArgument(
        "PowerTree::uniform_tdp: one headroom per fanout level required");
  }
  // Shape first (capacities placeholder), then provision every node from the
  // TDP mass of the modules it spans.
  std::vector<double> inf(fanouts.size(),
                          std::numeric_limits<double>::infinity());
  PowerTree tree = uniform(soa.size(), fanouts, inf);
  const std::span<const double> tdp = soa.tdp_cpu_w();
  for (std::size_t k = 1; k < tree.level_count(); ++k) {
    const double frac = headroom_frac[k - 1];
    if (!(frac > 0.0)) {
      throw InvalidArgument("PowerTree::uniform_tdp: non-positive headroom");
    }
    for (std::size_t j = tree.level_offsets_[k]; j < tree.level_offsets_[k + 1];
         ++j) {
      PowerTreeNode& node = tree.nodes_[j];
      const std::size_t begin = node.module_begin;
      node.capacity_w =
          frac * util::chunked_sum(node.module_count(), [&](std::size_t i) {
            return tdp[begin + i];
          });
    }
  }
  return tree;
}

std::span<const PowerTreeNode> PowerTree::level(std::size_t k) const {
  if (k >= level_count()) {
    throw InvalidArgument("PowerTree: level " + std::to_string(k) +
                          " out of range");
  }
  return {nodes_.data() + level_offsets_[k],
          level_offsets_[k + 1] - level_offsets_[k]};
}

bool PowerTree::unconstrained() const {
  for (const PowerTreeNode& n : nodes_) {
    if (n.capped()) return false;
  }
  return true;
}

void PowerTree::validate() const {
  if (modules_ == 0) throw InvalidArgument("PowerTree: zero modules");
  if (nodes_.empty() || level_offsets_.size() < 2 ||
      level_offsets_.front() != 0 || level_offsets_.back() != nodes_.size()) {
    throw InvalidArgument("PowerTree: malformed level index");
  }
  for (std::size_t k = 0; k < level_count(); ++k) {
    const std::span<const PowerTreeNode> lvl = level(k);
    std::uint32_t cursor = 0;
    for (const PowerTreeNode& n : lvl) {
      if (n.module_begin != cursor || n.module_end <= n.module_begin) {
        throw InvalidArgument(
            "PowerTree: level " + std::to_string(k) +
            " does not partition the modules into non-empty ranges");
      }
      if (!(n.capacity_w > 0.0)) {
        throw InvalidArgument("PowerTree: non-positive node capacity");
      }
      cursor = n.module_end;
      if (!n.leaf_group()) {
        if (k + 1 >= level_count()) {
          throw InvalidArgument("PowerTree: children past the deepest level");
        }
        const PowerTreeNode& first = nodes_[n.first_child];
        const PowerTreeNode& last = nodes_[n.first_child + n.child_count - 1];
        if (first.module_begin != n.module_begin ||
            last.module_end != n.module_end) {
          throw InvalidArgument(
              "PowerTree: children do not cover the parent range");
        }
      } else if (k + 1 < level_count()) {
        throw InvalidArgument(
            "PowerTree: leaf group above the deepest level");
      }
    }
    if (cursor != static_cast<std::uint32_t>(modules_)) {
      throw InvalidArgument("PowerTree: level " + std::to_string(k) +
                            " does not cover every module");
    }
  }
}

}  // namespace vapb::cluster
