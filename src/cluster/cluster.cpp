#include "cluster/cluster.hpp"

#include "util/error.hpp"

namespace vapb::cluster {

Cluster::Cluster(hw::ArchSpec spec, util::SeedSequence master_seed,
                 std::size_t module_count)
    : spec_(std::move(spec)), seed_(master_seed.fork("cluster")) {
  std::size_t n = module_count ? module_count
                               : static_cast<std::size_t>(spec_.total_modules());
  VAPB_REQUIRE_MSG(n > 0, "cluster needs at least one module");
  util::SeedSequence fab = master_seed.fork("fabrication");
  modules_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto id = static_cast<hw::ModuleId>(i);
    hw::ModuleVariation v = hw::draw_variation(spec_.variation, fab, id);
    modules_.emplace_back(id, v, spec_.ladder, spec_.tdp_cpu_w, fab);
  }
}

const hw::Module& Cluster::module(hw::ModuleId id) const {
  if (id >= modules_.size()) {
    throw InvalidArgument("module id " + std::to_string(id) +
                          " out of range (cluster has " +
                          std::to_string(modules_.size()) + ")");
  }
  return modules_[id];
}

}  // namespace vapb::cluster
