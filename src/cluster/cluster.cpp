#include "cluster/cluster.hpp"

#include <bit>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace vapb::cluster {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t mix(std::uint64_t h, double v) {
  return mix(h, std::bit_cast<std::uint64_t>(v));
}

// Hashes everything that determines the fabricated modules: the architecture
// parameters the fabrication draws read, plus the seed and fleet size.
std::uint64_t fleet_fingerprint(const hw::ArchSpec& spec,
                                const util::SeedSequence& seed,
                                std::size_t n) {
  std::uint64_t h = util::fnv1a(spec.system);
  h = mix(h, util::fnv1a(spec.microarch));
  h = mix(h, spec.tdp_cpu_w);
  h = mix(h, spec.tdp_dram_w);
  h = mix(h, spec.ladder.fmin());
  h = mix(h, spec.ladder.fmax());
  h = mix(h, spec.ladder.step());
  h = mix(h, spec.ladder.turbo());
  const hw::VariationDistribution& v = spec.variation;
  for (double p : {v.cpu_dyn_sd, v.cpu_dyn_lo, v.cpu_dyn_hi, v.cpu_static_sd,
                   v.cpu_static_lo, v.cpu_static_hi, v.dram_sd, v.dram_lo,
                   v.dram_hi, v.freq_sd, v.freq_lo, v.freq_hi,
                   v.cpu_dyn_static_corr, v.freq_power_corr}) {
    h = mix(h, p);
  }
  h = mix(h, seed.value());
  h = mix(h, static_cast<std::uint64_t>(n));
  return h;
}

// Extends the homogeneous fingerprint with the class layout. Only called
// for genuinely heterogeneous mixes, so every cpu-only fleet — fabricated
// through either constructor — keeps its original fingerprint and stays
// shareable with pre-mix caches and snapshots.
std::uint64_t hetero_fingerprint(std::uint64_t h, const hw::ClassMix& m) {
  h = mix(h, util::fnv1a("class-mix"));
  for (std::size_t c = 0; c < hw::kDeviceClassCount; ++c) {
    h = mix(h, static_cast<std::uint64_t>(m.counts[c]));
  }
  return h;
}

}  // namespace

void Cluster::fabricate_cpu_prefix(const util::SeedSequence& fab,
                                   std::size_t n) {
  // Each module's variation draw is keyed on (fab seed, id) alone, so
  // fabrication parallelizes bit-identically: draw into a flat array in
  // parallel, then assemble the modules in id order.
  std::vector<hw::ModuleVariation> variations(n);
  util::parallel_for(n, [&](std::size_t i) {
    variations[i] =
        hw::draw_variation(spec_.variation, fab, static_cast<hw::ModuleId>(i));
  });
  for (std::size_t i = 0; i < n; ++i) {
    modules_.emplace_back(static_cast<hw::ModuleId>(i), variations[i],
                          spec_.ladder, spec_.tdp_cpu_w, fab);
  }
}

Cluster::Cluster(hw::ArchSpec spec, util::SeedSequence master_seed,
                 std::size_t module_count)
    : spec_(std::move(spec)), seed_(master_seed.fork("cluster")) {
  std::size_t n = module_count ? module_count
                               : static_cast<std::size_t>(spec_.total_modules());
  VAPB_REQUIRE_MSG(n > 0, "cluster needs at least one module");
  fingerprint_ = fleet_fingerprint(spec_, master_seed, n);
  mix_ = hw::ClassMix::cpu_only(n);
  util::SeedSequence fab = master_seed.fork("fabrication");
  modules_.reserve(n);
  fabricate_cpu_prefix(fab, n);
}

Cluster::Cluster(hw::ArchSpec spec, util::SeedSequence master_seed,
                 const hw::ClassMix& mix)
    : spec_(std::move(spec)), seed_(master_seed.fork("cluster")), mix_(mix) {
  const std::size_t total = mix_.total();
  VAPB_REQUIRE_MSG(total > 0, "cluster needs at least one module");
  fingerprint_ = fleet_fingerprint(spec_, master_seed, total);
  if (!mix_.homogeneous_cpu()) {
    fingerprint_ = hetero_fingerprint(fingerprint_, mix_);
  }
  util::SeedSequence fab = master_seed.fork("fabrication");
  modules_.reserve(total);

  // CPU block first, ids 0..cpu-1, byte-for-byte the homogeneous draws.
  fabricate_cpu_prefix(fab, mix_.count(hw::DeviceClass::kCpu));

  // Non-CPU classes follow, class-contiguous, each drawing from its own
  // fabrication fork keyed by class name so adding a class never shifts
  // another class's silicon.
  for (hw::DeviceClass c : hw::all_device_classes()) {
    if (c == hw::DeviceClass::kCpu) continue;
    const std::size_t count = mix_.count(c);
    if (count == 0) continue;
    const hw::DeviceClassSpec cs = hw::device_class_spec(spec_, c);
    const util::SeedSequence class_fab = fab.fork(hw::device_class_name(c));
    const std::size_t base = modules_.size();
    std::vector<hw::ModuleVariation> variations(count);
    util::parallel_for(count, [&](std::size_t i) {
      variations[i] = hw::draw_variation(cs.variation, class_fab,
                                         static_cast<hw::ModuleId>(i));
    });
    for (std::size_t i = 0; i < count; ++i) {
      modules_.emplace_back(static_cast<hw::ModuleId>(base + i), variations[i],
                            cs.ladder, cs.tdp_w, class_fab, c, cs.power);
    }
  }
}

hw::DeviceClassSpec Cluster::class_spec(hw::DeviceClass c) const {
  return hw::device_class_spec(spec_, c);
}

const hw::Module& Cluster::module(hw::ModuleId id) const {
  if (id >= modules_.size()) {
    throw InvalidArgument("module id " + std::to_string(id) +
                          " out of range (cluster has " +
                          std::to_string(modules_.size()) + ")");
  }
  return modules_[id];
}

}  // namespace vapb::cluster
