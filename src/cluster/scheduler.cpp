#include "cluster/scheduler.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace vapb::cluster {

std::string allocation_policy_name(AllocationPolicy policy) {
  switch (policy) {
    case AllocationPolicy::kContiguous:
      return "contiguous";
    case AllocationPolicy::kRandom:
      return "random";
    case AllocationPolicy::kStrided:
      return "strided";
    case AllocationPolicy::kWorstPower:
      return "worst-power";
    case AllocationPolicy::kBestPower:
      return "best-power";
  }
  throw InternalError("unhandled allocation policy");
}

AllocationPolicy allocation_policy_by_name(const std::string& name) {
  std::vector<std::string> names;
  for (AllocationPolicy p : all_allocation_policies()) {
    names.push_back(allocation_policy_name(p));
    if (names.back() == name) return p;
  }
  std::string msg = "unknown allocation policy '" + name + "'";
  const std::string suggestion = util::nearest_name(name, names);
  if (!suggestion.empty()) msg += " (did you mean '" + suggestion + "'?)";
  msg += "; valid:";
  for (const std::string& n : names) {
    msg += ' ';
    // vapb-lint: allow(determinism-reduction): ordered text, not an FP sum
    msg += n;
  }
  throw InvalidArgument(msg);
}

std::vector<AllocationPolicy> all_allocation_policies() {
  return {AllocationPolicy::kContiguous, AllocationPolicy::kRandom,
          AllocationPolicy::kStrided, AllocationPolicy::kWorstPower,
          AllocationPolicy::kBestPower};
}

namespace {

/// The policy logic over an arbitrary candidate pool (in the caller's
/// order). The whole-cluster allocate passes the full iota block, so its
/// draws are bit-identical to the historical [base, base + n) form;
/// allocate_from hands in whatever free list the tenancy scheduler holds.
std::vector<hw::ModuleId> allocate_pool(
    const Cluster& cluster, std::vector<hw::ModuleId> pool, std::size_t count,
    AllocationPolicy policy, util::SeedSequence seed,
    const hw::PowerProfile* ranking_profile) {
  const std::size_t n = pool.size();
  if (count == 0) throw InvalidArgument("Scheduler: count must be > 0");
  if (count > n) {
    throw InvalidArgument("Scheduler: requested " + std::to_string(count) +
                          " modules, block has " + std::to_string(n));
  }
  std::vector<hw::ModuleId> all = std::move(pool);

  switch (policy) {
    case AllocationPolicy::kContiguous: {
      // Deterministic random block start, modelling whichever rack range the
      // batch system happened to drain.
      util::Rng rng(seed.fork("contiguous"));
      std::size_t start = static_cast<std::size_t>(
          rng.uniform_index(n - count + 1));
      return {all.begin() + static_cast<std::ptrdiff_t>(start),
              all.begin() + static_cast<std::ptrdiff_t>(start + count)};
    }
    case AllocationPolicy::kRandom: {
      util::Rng rng(seed.fork("random"));
      rng.shuffle(all);
      all.resize(count);
      std::sort(all.begin(), all.end());
      return all;
    }
    case AllocationPolicy::kStrided: {
      std::vector<hw::ModuleId> out;
      out.reserve(count);
      std::size_t stride = n / count;
      if (stride == 0) stride = 1;
      for (std::size_t i = 0; out.size() < count; i += stride) {
        out.push_back(all[i % n]);
      }
      return out;
    }
    case AllocationPolicy::kWorstPower:
    case AllocationPolicy::kBestPower: {
      if (ranking_profile == nullptr) {
        throw InvalidArgument(
            "Scheduler: power-ordered policy needs a ranking profile");
      }
      std::vector<std::pair<double, hw::ModuleId>> ranked;
      ranked.reserve(n);
      for (auto id : all) {
        const auto& m = cluster.module(id);
        ranked.emplace_back(
            m.module_power_w(*ranking_profile, m.ladder().fmax()), id);
      }
      std::sort(ranked.begin(), ranked.end());
      if (policy == AllocationPolicy::kWorstPower) {
        std::reverse(ranked.begin(), ranked.end());
      }
      std::vector<hw::ModuleId> out;
      out.reserve(count);
      for (std::size_t i = 0; i < count; ++i) out.push_back(ranked[i].second);
      std::sort(out.begin(), out.end());
      return out;
    }
  }
  throw InternalError("Scheduler: unhandled policy");
}

/// The historical contiguous-block entry: builds the id block and defers to
/// the pool form.
std::vector<hw::ModuleId> allocate_block(
    const Cluster& cluster, hw::ModuleId base, std::size_t n,
    std::size_t count, AllocationPolicy policy, util::SeedSequence seed,
    const hw::PowerProfile* ranking_profile) {
  std::vector<hw::ModuleId> all(n);
  std::iota(all.begin(), all.end(), base);
  return allocate_pool(cluster, std::move(all), count, policy, seed,
                       ranking_profile);
}

}  // namespace

std::vector<hw::ModuleId> Scheduler::allocate(
    std::size_t count, AllocationPolicy policy, util::SeedSequence seed,
    const hw::PowerProfile* ranking_profile) const {
  return allocate_block(cluster_, hw::ModuleId{0}, cluster_.size(), count,
                        policy, seed, ranking_profile);
}

std::vector<hw::ModuleId> Scheduler::allocate_from(
    std::vector<hw::ModuleId> pool, std::size_t count, AllocationPolicy policy,
    util::SeedSequence seed, const hw::PowerProfile* ranking_profile) const {
  return allocate_pool(cluster_, std::move(pool), count, policy, seed,
                       ranking_profile);
}

std::vector<hw::ModuleId> Scheduler::allocate_mix(
    const hw::ClassMix& want, AllocationPolicy policy, util::SeedSequence seed,
    const hw::PowerProfile* ranking_profile) const {
  if (want.total() == 0) throw InvalidArgument("Scheduler: empty class mix");
  const hw::ClassMix& have = cluster_.mix();
  std::vector<hw::ModuleId> out;
  out.reserve(want.total());
  // Module ids are class-contiguous in class index order, so each class's
  // block starts at the exact prefix sum of the earlier class counts.
  std::array<std::size_t, hw::kDeviceClassCount + 1> start{};
  for (std::size_t k = 0; k < hw::kDeviceClassCount; ++k) {
    start[k + 1] = start[k] + have.counts[k];
  }
  for (hw::DeviceClass c : hw::all_device_classes()) {
    const auto base =
        static_cast<hw::ModuleId>(start[hw::device_class_index(c)]);
    const std::size_t block = have.count(c);
    const std::size_t count = want.count(c);
    if (count > block) {
      throw InvalidArgument("Scheduler: requested " + std::to_string(count) +
                            " " + hw::device_class_name(c) +
                            " modules, fleet has " + std::to_string(block));
    }
    if (count > 0) {
      // Per-class seed fork so adding a class never shifts another class's
      // draw.
      std::vector<hw::ModuleId> picks =
          allocate_block(cluster_, base, block, count, policy,
                         seed.fork(hw::device_class_name(c)), ranking_profile);
      out.insert(out.end(), picks.begin(), picks.end());
    }
  }
  return out;
}

}  // namespace vapb::cluster
