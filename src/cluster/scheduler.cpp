#include "cluster/scheduler.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace vapb::cluster {

std::string allocation_policy_name(AllocationPolicy policy) {
  switch (policy) {
    case AllocationPolicy::kContiguous:
      return "contiguous";
    case AllocationPolicy::kRandom:
      return "random";
    case AllocationPolicy::kStrided:
      return "strided";
    case AllocationPolicy::kWorstPower:
      return "worst-power";
    case AllocationPolicy::kBestPower:
      return "best-power";
  }
  throw InternalError("unhandled allocation policy");
}

AllocationPolicy allocation_policy_by_name(const std::string& name) {
  for (AllocationPolicy p : all_allocation_policies()) {
    if (allocation_policy_name(p) == name) return p;
  }
  std::string msg = "unknown allocation policy '" + name + "'; valid:";
  for (AllocationPolicy p : all_allocation_policies()) {
    msg += ' ';
    // vapb-lint: allow(determinism-reduction): ordered text, not an FP sum
    msg += allocation_policy_name(p);
  }
  throw InvalidArgument(msg);
}

std::vector<AllocationPolicy> all_allocation_policies() {
  return {AllocationPolicy::kContiguous, AllocationPolicy::kRandom,
          AllocationPolicy::kStrided, AllocationPolicy::kWorstPower,
          AllocationPolicy::kBestPower};
}

std::vector<hw::ModuleId> Scheduler::allocate(
    std::size_t count, AllocationPolicy policy, util::SeedSequence seed,
    const hw::PowerProfile* ranking_profile) const {
  const std::size_t n = cluster_.size();
  if (count == 0) throw InvalidArgument("Scheduler: count must be > 0");
  if (count > n) {
    throw InvalidArgument("Scheduler: requested " + std::to_string(count) +
                          " modules, cluster has " + std::to_string(n));
  }
  std::vector<hw::ModuleId> all(n);
  std::iota(all.begin(), all.end(), hw::ModuleId{0});

  switch (policy) {
    case AllocationPolicy::kContiguous: {
      // Deterministic random block start, modelling whichever rack range the
      // batch system happened to drain.
      util::Rng rng(seed.fork("contiguous"));
      std::size_t start = static_cast<std::size_t>(
          rng.uniform_index(n - count + 1));
      return {all.begin() + static_cast<std::ptrdiff_t>(start),
              all.begin() + static_cast<std::ptrdiff_t>(start + count)};
    }
    case AllocationPolicy::kRandom: {
      util::Rng rng(seed.fork("random"));
      rng.shuffle(all);
      all.resize(count);
      std::sort(all.begin(), all.end());
      return all;
    }
    case AllocationPolicy::kStrided: {
      std::vector<hw::ModuleId> out;
      out.reserve(count);
      std::size_t stride = n / count;
      if (stride == 0) stride = 1;
      for (std::size_t i = 0; out.size() < count; i += stride) {
        out.push_back(all[i % n]);
      }
      return out;
    }
    case AllocationPolicy::kWorstPower:
    case AllocationPolicy::kBestPower: {
      if (ranking_profile == nullptr) {
        throw InvalidArgument(
            "Scheduler: power-ordered policy needs a ranking profile");
      }
      std::vector<std::pair<double, hw::ModuleId>> ranked;
      ranked.reserve(n);
      for (auto id : all) {
        const auto& m = cluster_.module(id);
        ranked.emplace_back(
            m.module_power_w(*ranking_profile, m.ladder().fmax()), id);
      }
      std::sort(ranked.begin(), ranked.end());
      if (policy == AllocationPolicy::kWorstPower) {
        std::reverse(ranked.begin(), ranked.end());
      }
      std::vector<hw::ModuleId> out;
      out.reserve(count);
      for (std::size_t i = 0; i < count; ++i) out.push_back(ranked[i].second);
      std::sort(out.begin(), out.end());
      return out;
    }
  }
  throw InternalError("Scheduler: unhandled policy");
}

}  // namespace vapb::cluster
