#include "cluster/cluster_soa.hpp"

#include "util/thread_pool.hpp"

namespace vapb::cluster {

ClusterSoA ClusterSoA::gather(const Cluster& cluster) {
  const std::size_t n = cluster.size();
  ClusterSoA soa;
  soa.fingerprint_ = cluster.fingerprint();
  soa.cpu_dyn_scale_.resize(n);
  soa.cpu_static_scale_.resize(n);
  soa.dram_scale_.resize(n);
  soa.freq_scale_.resize(n);
  soa.max_freq_ghz_.resize(n);
  soa.tdp_cpu_w_.resize(n);
  soa.device_class_.resize(n);
  // Element-wise transposition: each index writes only its own slots, so the
  // gather is bit-identical at any thread count.
  util::parallel_for(n, [&](std::size_t i) {
    const hw::Module& m = cluster.modules()[i];
    const hw::ModuleVariation& v = m.variation();
    soa.cpu_dyn_scale_[i] = v.cpu_dyn;
    soa.cpu_static_scale_[i] = v.cpu_static;
    soa.dram_scale_[i] = v.dram;
    soa.freq_scale_[i] = v.freq;
    soa.max_freq_ghz_[i] = m.max_freq_ghz();
    soa.tdp_cpu_w_[i] = m.tdp_cpu_w();
    soa.device_class_[i] = static_cast<std::uint8_t>(m.device_class());
  });
  soa.class_counts_ = cluster.mix().counts;
  return soa;
}

}  // namespace vapb::cluster
