// Job scheduler: picks which physical modules a job runs on.
//
// The paper's framework takes the scheduler's module list as an *input*
// (Figure 4) — the budgeting algorithm must cope with whatever silicon the
// scheduler hands it. Different policies let experiments probe how allocation
// luck interacts with variation-aware budgeting.
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "hw/module.hpp"
#include "util/rng.hpp"

namespace vapb::cluster {

enum class AllocationPolicy {
  kContiguous,      ///< first-fit block of module ids (rack-contiguous)
  kRandom,          ///< uniformly random subset (fragmented system)
  kStrided,         ///< every k-th module (spreads across racks)
  kWorstPower,      ///< adversarial: the most power-hungry modules (per a profile)
  kBestPower,       ///< the most power-efficient modules
};

/// Stable CLI/config spelling of a policy ("contiguous", "random", ...).
[[nodiscard]] std::string allocation_policy_name(AllocationPolicy policy);

/// Inverse of allocation_policy_name. Throws InvalidArgument listing every
/// valid spelling on an unknown name.
[[nodiscard]] AllocationPolicy allocation_policy_by_name(
    const std::string& name);

/// Every policy, in enum order.
[[nodiscard]] std::vector<AllocationPolicy> all_allocation_policies();

class Scheduler {
 public:
  explicit Scheduler(const Cluster& cluster) : cluster_(cluster) {}

  /// Allocates `count` module ids under `policy`. Power-ordered policies rank
  /// modules by module power at fmax under `ranking_profile` (required for
  /// kWorstPower / kBestPower, ignored otherwise).
  /// Throws InvalidArgument if count == 0 or count > cluster size.
  [[nodiscard]] std::vector<hw::ModuleId> allocate(
      std::size_t count, AllocationPolicy policy, util::SeedSequence seed,
      const hw::PowerProfile* ranking_profile = nullptr) const;

  /// Class-aware allocation for heterogeneous fleets: applies `policy`
  /// *within* each device class (each class's ids form one contiguous
  /// block) and returns the per-class picks concatenated in class index
  /// order, ascending within a class — so a job asking for
  /// cpu:24,gpu:8 gets exactly that composition regardless of policy luck.
  /// Classes `want` doesn't request are skipped; asking for more modules
  /// of a class than the fleet fabricated throws InvalidArgument.
  [[nodiscard]] std::vector<hw::ModuleId> allocate_mix(
      const hw::ClassMix& want, AllocationPolicy policy,
      util::SeedSequence seed,
      const hw::PowerProfile* ranking_profile = nullptr) const;

  /// Applies `policy` to an arbitrary candidate pool (in the caller's
  /// order) instead of the whole cluster — the multi-tenant scheduler's
  /// entry, where the free list is whatever earlier admissions left behind.
  /// kContiguous picks a window of pool-adjacent ids. Passing the full
  /// 0..size-1 block reproduces allocate() bit-for-bit.
  /// Throws InvalidArgument if count == 0 or count > pool size.
  [[nodiscard]] std::vector<hw::ModuleId> allocate_from(
      std::vector<hw::ModuleId> pool, std::size_t count,
      AllocationPolicy policy, util::SeedSequence seed,
      const hw::PowerProfile* ranking_profile = nullptr) const;

 private:
  const Cluster& cluster_;
};

}  // namespace vapb::cluster
