// Worst-case variation metrics from the paper (Table 3):
//   Vp — worst-case power variation          (max power / min power)
//   Vf — worst-case CPU frequency variation  (max freq  / min freq)
//   Vt — worst-case execution time variation (max time  / min time)
// All are ratios >= 1 over a set of modules/ranks running identical code.
#pragma once

#include <span>

namespace vapb::stats {

/// max/min ratio of a strictly positive sample.
/// Throws InvalidArgument when empty or when any value is <= 0.
double worst_case_ratio(std::span<const double> values);

/// Percentage spread relative to the minimum: (max - min) / min * 100.
/// The representation used on Figure 1's axes ("increase in power [%]",
/// "slowdown [%]"). Same preconditions as worst_case_ratio.
double spread_percent(std::span<const double> values);

}  // namespace vapb::stats
