#include "stats/linreg.hpp"

#include "util/error.hpp"

namespace vapb::stats {

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw InvalidArgument("fit_linear: size mismatch");
  if (x.size() < 2) throw InvalidArgument("fit_linear: need >= 2 points");
  const auto n = static_cast<double>(x.size());
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    double dx = x[i] - mx, dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) throw InvalidArgument("fit_linear: x has zero variance");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy == 0.0) {
    fit.r_squared = 1.0;
  } else {
    double ss_res = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      double r = y[i] - fit.at(x[i]);
      ss_res += r * r;
    }
    fit.r_squared = 1.0 - ss_res / syy;
  }
  return fit;
}

}  // namespace vapb::stats
