// Descriptive statistics over samples (power readings, rank times, ...).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vapb::stats {

/// One-pass summary of a sample: moments plus extrema.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1), 0 for n < 2
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// Computes the summary of `values`. Throws InvalidArgument when empty.
Summary summarize(std::span<const double> values);

/// p-th percentile (0..100) by linear interpolation on the sorted sample.
/// Throws InvalidArgument when values is empty or p outside [0,100].
double percentile(std::span<const double> values, double p);

/// Pearson correlation coefficient of two equal-length samples.
/// Throws InvalidArgument on size mismatch or fewer than 2 points.
double pearson(std::span<const double> x, std::span<const double> y);

/// Streaming accumulator (Welford) for contexts where samples arrive one at a
/// time, e.g. per-timestep power inside the RAPL model.
class Accumulator {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double stddev() const;  // sample stddev, 0 for n < 2
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

  [[nodiscard]] Summary summary() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace vapb::stats
