// Ordinary least squares y = a + b*x, with R^2.
//
// Used to validate the paper's core modelling assumption (Figure 5): CPU,
// DRAM and module power are affine in CPU frequency with R^2 >= 0.99.
#pragma once

#include <span>

namespace vapb::stats {

struct LinearFit {
  double intercept = 0.0;  // a
  double slope = 0.0;      // b
  double r_squared = 0.0;  // coefficient of determination

  /// Predicted value at x.
  [[nodiscard]] double at(double x) const { return intercept + slope * x; }
};

/// Fits y = a + b*x by OLS.
/// Throws InvalidArgument on size mismatch, fewer than 2 points, or
/// zero variance in x. R^2 is defined as 1 when y has zero variance
/// (a perfect horizontal fit).
LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

}  // namespace vapb::stats
