#include "stats/histogram.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace vapb::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw InvalidArgument("Histogram: bins must be > 0");
  if (!(lo < hi)) throw InvalidArgument("Histogram: lo must be < hi");
}

void Histogram::add(double v) {
  double t = (v - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> values) {
  for (double v : values) add(v);
}

std::size_t Histogram::count(std::size_t bin) const {
  if (bin >= counts_.size()) throw InvalidArgument("Histogram: bin out of range");
  return counts_[bin];
}

double Histogram::bin_low(std::size_t bin) const {
  if (bin >= counts_.size()) throw InvalidArgument("Histogram: bin out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t bin) const {
  return bin_low(bin) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    std::size_t bar =
        peak ? counts_[b] * width / peak : 0;
    os << "[" << util::fmt_double(bin_low(b), 2) << ", "
       << util::fmt_double(bin_high(b), 2) << ") "
       << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  return os.str();
}

}  // namespace vapb::stats
