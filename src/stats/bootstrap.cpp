#include "stats/bootstrap.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/summary.hpp"
#include "util/error.hpp"

namespace vapb::stats {

namespace {

template <typename Statistic>
BootstrapCi bootstrap_ci(std::span<const double> sample, double confidence,
                         std::size_t resamples, util::Rng& rng,
                         Statistic statistic) {
  if (sample.empty()) throw InvalidArgument("bootstrap: empty sample");
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw InvalidArgument("bootstrap: confidence must be in (0, 1)");
  }
  if (resamples == 0) throw InvalidArgument("bootstrap: zero resamples");

  BootstrapCi ci;
  ci.point = statistic(sample);

  std::vector<double> resample(sample.size());
  std::vector<double> stats;
  stats.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    for (double& x : resample) {
      x = sample[rng.uniform_index(sample.size())];
    }
    stats.push_back(statistic(std::span<const double>(resample)));
  }
  double tail = (1.0 - confidence) / 2.0 * 100.0;
  ci.lo = percentile(stats, tail);
  ci.hi = percentile(stats, 100.0 - tail);
  return ci;
}

double mean_of(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean_of(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) {
    if (x <= 0.0) {
      throw InvalidArgument("bootstrap geomean: values must be positive");
    }
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

}  // namespace

BootstrapCi bootstrap_mean_ci(std::span<const double> sample,
                              double confidence, std::size_t resamples,
                              util::Rng& rng) {
  return bootstrap_ci(sample, confidence, resamples, rng, mean_of);
}

BootstrapCi bootstrap_geomean_ci(std::span<const double> sample,
                                 double confidence, std::size_t resamples,
                                 util::Rng& rng) {
  return bootstrap_ci(sample, confidence, resamples, rng, geomean_of);
}

}  // namespace vapb::stats
