#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vapb::stats {

Summary summarize(std::span<const double> values) {
  if (values.empty()) throw InvalidArgument("summarize: empty sample");
  Accumulator acc;
  for (double v : values) acc.add(v);
  return acc.summary();
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) throw InvalidArgument("percentile: empty sample");
  if (p < 0.0 || p > 100.0) {
    throw InvalidArgument("percentile: p must be in [0, 100]");
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(idx);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw InvalidArgument("pearson: size mismatch");
  if (x.size() < 2) throw InvalidArgument("pearson: need >= 2 points");
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(x.size());
  my /= static_cast<double>(y.size());
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    throw InvalidArgument("pearson: zero-variance sample");
  }
  return sxy / std::sqrt(sxx * syy);
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

Summary Accumulator::summary() const {
  Summary s;
  s.count = n_;
  s.mean = mean();
  s.stddev = stddev();
  s.min = min_;
  s.max = max_;
  s.sum = sum_;
  return s;
}

}  // namespace vapb::stats
