// Fixed-width histogram, used in variation-study reports.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace vapb::stats {

class Histogram {
 public:
  /// Builds `bins` equal-width bins over [lo, hi]. Values outside the range
  /// are clamped into the first/last bin. Throws InvalidArgument when
  /// bins == 0 or lo >= hi.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double v);
  void add_all(std::span<const double> values);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_high(std::size_t bin) const;

  /// Renders an ASCII bar chart, one line per bin, scaled to `width` chars.
  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace vapb::stats
