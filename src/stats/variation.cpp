#include "stats/variation.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vapb::stats {

namespace {
std::pair<double, double> positive_minmax(std::span<const double> values,
                                          const char* who) {
  if (values.empty()) {
    throw InvalidArgument(std::string(who) + ": empty sample");
  }
  double lo = values[0], hi = values[0];
  for (double v : values) {
    if (v <= 0.0) {
      throw InvalidArgument(std::string(who) + ": values must be positive");
    }
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return {lo, hi};
}
}  // namespace

double worst_case_ratio(std::span<const double> values) {
  auto [lo, hi] = positive_minmax(values, "worst_case_ratio");
  return hi / lo;
}

double spread_percent(std::span<const double> values) {
  auto [lo, hi] = positive_minmax(values, "spread_percent");
  return (hi - lo) / lo * 100.0;
}

}  // namespace vapb::stats
