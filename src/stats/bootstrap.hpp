// Percentile-bootstrap confidence intervals, used by the evaluation benches
// to attach uncertainty to mean speedups (the paper reports point estimates
// only; with a simulator, re-sampling is cheap).
#pragma once

#include <cstddef>
#include <span>

#include "util/rng.hpp"

namespace vapb::stats {

struct BootstrapCi {
  double point = 0.0;  ///< statistic on the full sample
  double lo = 0.0;     ///< lower percentile bound
  double hi = 0.0;     ///< upper percentile bound
};

/// Percentile bootstrap CI for the sample mean.
/// `confidence` in (0, 1), e.g. 0.95. Throws InvalidArgument on an empty
/// sample, bad confidence, or zero resamples.
BootstrapCi bootstrap_mean_ci(std::span<const double> sample,
                              double confidence, std::size_t resamples,
                              util::Rng& rng);

/// Percentile bootstrap CI for the geometric mean — the right aggregate for
/// speedup ratios. All sample values must be positive.
BootstrapCi bootstrap_geomean_ci(std::span<const double> sample,
                                 double confidence, std::size_t resamples,
                                 util::Rng& rng);

}  // namespace vapb::stats
