// Thermal model: temperature-dependent leakage and thermally limited turbo.
//
// Section 2.1 lists temperature among the additional variation sources, and
// Section 3.1.1 notes that "the operating CPU frequency in Turbo mode depends
// on the workload and the ambient temperature". This model closes that loop:
// static (leakage) power grows with junction temperature, junction
// temperature grows with dissipated power through a thermal resistance, and
// the part throttles at PROCHOT. The fixed point of that feedback gives the
// sustained operating point for a given ambient — so two identical modules
// in different rack positions consume different power, a machine-room-layout
// variation on top of the fabrication one.
#pragma once

#include "hw/module.hpp"
#include "hw/power_profile.hpp"

namespace vapb::hw {

struct ThermalConfig {
  double r_thermal_c_per_w = 0.30;  ///< junction-to-ambient resistance [C/W]
  double leakage_per_c = 0.010;     ///< fractional static-power growth per C
  double ref_temp_c = 55.0;         ///< temperature the PowerProfile's
                                    ///< cpu_static_w is calibrated at
  double prochot_c = 95.0;          ///< junction throttle temperature
};

/// Steady state of the power/temperature feedback at one frequency.
struct ThermalSolution {
  double junction_c = 0.0;
  double cpu_w = 0.0;      ///< CPU power including leakage feedback
  double dram_w = 0.0;
  double freq_ghz = 0.0;   ///< realized frequency (reduced if PROCHOT bound)
  bool prochot = false;    ///< true when the frequency had to be reduced
};

class ThermalModel {
 public:
  explicit ThermalModel(ThermalConfig config = {});

  [[nodiscard]] const ThermalConfig& config() const { return config_; }

  /// Solves the leakage/temperature fixed point for `module` running
  /// `profile` at the requested frequency under `ambient_c`. If the junction
  /// would exceed PROCHOT, the frequency is stepped down the ladder until it
  /// fits (fmin is never violated — a part that exceeds PROCHOT at fmin runs
  /// at fmin and reports prochot).
  /// Throws InvalidArgument for a non-positive frequency.
  [[nodiscard]] ThermalSolution steady_state(const Module& module,
                                             const PowerProfile& profile,
                                             double f_ghz,
                                             double ambient_c) const;

  /// The highest turbo frequency sustainable under both the TDP envelope and
  /// PROCHOT at the given ambient — the paper's "depends on the workload and
  /// the ambient temperature".
  [[nodiscard]] double turbo_frequency_ghz(const Module& module,
                                           const PowerProfile& profile,
                                           double ambient_c) const;

 private:
  /// CPU power at frequency f with leakage evaluated at temperature t_c.
  [[nodiscard]] double cpu_power_at_temp(const Module& module,
                                         const PowerProfile& profile,
                                         double f_ghz, double t_c) const;

  ThermalConfig config_;
};

}  // namespace vapb::hw
