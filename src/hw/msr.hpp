// Intel MSR-level RAPL interface emulation.
//
// The paper programs RAPL "with the help of programmable Machine Specific
// Registers (MSRs) ... by using the libMSR library" on top of the msr-safe
// whitelist kernel module (Shoga et al., reference [49]). This layer mirrors
// that stack: a per-module register file with the documented RAPL register
// encodings (Intel SDM vol. 3B) and msr-safe-style access control, bridged
// to the behavioural RAPL model in hw/rapl.hpp. It exists so that software
// written against the real register interface — cap encoding, unit decoding,
// wrap-around energy counters — can be exercised unchanged.
#pragma once

#include <cstdint>

#include "hw/power_profile.hpp"
#include "hw/rapl.hpp"
#include "util/error.hpp"

namespace vapb::hw::msr {

// Register addresses (Intel SDM).
inline constexpr std::uint32_t kRaplPowerUnit = 0x606;
inline constexpr std::uint32_t kPkgPowerLimit = 0x610;
inline constexpr std::uint32_t kPkgEnergyStatus = 0x611;
inline constexpr std::uint32_t kDramPowerLimit = 0x618;
inline constexpr std::uint32_t kDramEnergyStatus = 0x619;

/// Raised on access outside the msr-safe whitelist.
class MsrAccessError : public Error {
 public:
  explicit MsrAccessError(const std::string& what) : Error(what) {}
};

/// MSR_RAPL_POWER_UNIT contents: all RAPL quantities are fixed-point in
/// these units. Defaults are the Sandy Bridge/Ivy Bridge values the paper's
/// systems report: power 1/8 W, energy ~15.3 uJ, time ~0.98 ms.
struct PowerUnits {
  unsigned power_exp = 3;    ///< power unit = 1 / 2^power_exp W
  unsigned energy_exp = 16;  ///< energy unit = 1 / 2^energy_exp J
  unsigned time_exp = 10;    ///< time unit = 1 / 2^time_exp s

  [[nodiscard]] double power_unit_w() const {
    return 1.0 / static_cast<double>(1u << power_exp);
  }
  [[nodiscard]] double energy_unit_j() const {
    return 1.0 / static_cast<double>(1u << energy_exp);
  }
  [[nodiscard]] double time_unit_s() const {
    return 1.0 / static_cast<double>(1u << time_exp);
  }

  [[nodiscard]] std::uint64_t encode() const;
  static PowerUnits decode(std::uint64_t raw);
};

/// One RAPL power limit (we model limit #1 of the PKG/DRAM limit registers).
struct PowerLimit {
  double power_w = 0.0;
  double window_s = 1e-3;
  bool enabled = false;
  bool clamp = false;
};

/// Encodes limit #1 into the low 32 bits of MSR_PKG_POWER_LIMIT:
///   bits 14:0  power limit in power units
///   bit  15    enable
///   bit  16    clamp
///   bits 23:17 time window, value = 2^Y * (1 + Z/4) time units with
///              Y = bits 21:17, Z = bits 23:22.
/// Throws InvalidArgument when the power does not fit in 15 bits.
std::uint64_t encode_power_limit(const PowerLimit& limit,
                                 const PowerUnits& units);

/// Inverse of encode_power_limit (window decodes to the nearest
/// representable value).
PowerLimit decode_power_limit(std::uint64_t raw, const PowerUnits& units);

/// Per-module MSR register file with msr-safe access control: reads are
/// allowed on the five RAPL registers above, writes only on the power-limit
/// registers. Anything else throws MsrAccessError — exactly how an
/// unprivileged libMSR client experiences msr-safe.
class MsrFile {
 public:
  /// `rapl` provides the behaviour behind the registers; `profile` is the
  /// workload whose power the energy counters integrate.
  MsrFile(Rapl& rapl, PowerUnits units = {});

  [[nodiscard]] std::uint64_t read(std::uint32_t address) const;
  void write(std::uint32_t address, std::uint64_t value);

  [[nodiscard]] const PowerUnits& units() const { return units_; }

 private:
  Rapl& rapl_;
  PowerUnits units_;
  std::uint64_t pkg_limit_raw_ = 0;
  std::uint64_t dram_limit_raw_ = 0;  // stored; DRAM capping unsupported on
                                      // the paper's boards (Section 3.1.1)
};

/// libMSR-style convenience wrappers over the register file.
void set_pkg_power_limit(MsrFile& file, double power_w, double window_s);
void clear_pkg_power_limit(MsrFile& file);
[[nodiscard]] double read_pkg_energy_j(const MsrFile& file);
[[nodiscard]] double read_dram_energy_j(const MsrFile& file);

}  // namespace vapb::hw::msr
