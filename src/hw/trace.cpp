#include "hw/trace.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vapb::hw {

PowerTrace PowerTrace::record(Rapl& rapl, const Module& module,
                              const PowerProfile& profile, double duration_s,
                              util::SeedSequence seed) {
  if (duration_s <= 0.0) {
    throw InvalidArgument("PowerTrace: duration must be positive");
  }
  const RaplConfig& cfg = rapl.config();
  OperatingPoint op = rapl.operating_point(profile);

  auto n = static_cast<std::size_t>(
      std::max(1.0, duration_s / cfg.window_s));
  n = std::min<std::size_t>(n, 1000000);

  PowerTrace trace;
  trace.samples_.reserve(n);
  util::Rng rng(seed.fork("trace"));
  const bool capped = rapl.cpu_limit_w().has_value() && !op.throttled &&
                      op.freq_ghz < module.max_freq_ghz();
  for (std::size_t i = 0; i < n; ++i) {
    TraceSample s;
    s.t_s = static_cast<double>(i) * cfg.window_s;
    if (capped && cfg.control_jitter_sd_ghz > 0.0) {
      // The controller hunts: instantaneous clock dithers, window-average
      // power stays at the cap.
      s.freq_ghz = std::clamp(
          op.freq_ghz + cfg.control_jitter_sd_ghz * rng.normal(),
          module.ladder().fmin(), module.max_freq_ghz());
    } else {
      s.freq_ghz = op.freq_ghz;
    }
    s.cpu_w = op.cpu_w;
    s.dram_w = op.dram_w;
    trace.samples_.push_back(s);
    rapl.advance(op, cfg.window_s);
  }
  return trace;
}

namespace {
double avg_of(const std::vector<TraceSample>& samples,
              double (*get)(const TraceSample&)) {
  VAPB_REQUIRE_MSG(!samples.empty(), "empty trace");
  double sum = 0.0;
  for (const auto& s : samples) sum += get(s);
  return sum / static_cast<double>(samples.size());
}
}  // namespace

double PowerTrace::avg_freq_ghz() const {
  return avg_of(samples_, +[](const TraceSample& s) { return s.freq_ghz; });
}
double PowerTrace::avg_cpu_w() const {
  return avg_of(samples_, +[](const TraceSample& s) { return s.cpu_w; });
}
double PowerTrace::avg_dram_w() const {
  return avg_of(samples_, +[](const TraceSample& s) { return s.dram_w; });
}

}  // namespace vapb::hw
