#include "hw/thermal.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vapb::hw {

ThermalModel::ThermalModel(ThermalConfig config) : config_(config) {
  if (config_.r_thermal_c_per_w <= 0.0) {
    throw ConfigError("ThermalModel: thermal resistance must be positive");
  }
  if (config_.leakage_per_c < 0.0) {
    throw ConfigError("ThermalModel: leakage coefficient must be >= 0");
  }
  // The linear feedback loop diverges when R * dP/dT >= 1; reject configs in
  // that regime up front (k * R * P_static would have to be huge).
  if (config_.leakage_per_c * config_.r_thermal_c_per_w > 0.05) {
    throw ConfigError("ThermalModel: feedback gain too large to be physical");
  }
}

double ThermalModel::cpu_power_at_temp(const Module& module,
                                       const PowerProfile& profile,
                                       double f_ghz, double t_c) const {
  double base_static =
      module.eff_cpu_static_scale(profile) * profile.cpu_static_w;
  double leak_mult =
      std::max(0.2, 1.0 + config_.leakage_per_c * (t_c - config_.ref_temp_c));
  double dyn = module.eff_cpu_dyn_scale(profile) *
               profile.cpu_dyn_w_per_ghz * f_ghz;
  return base_static * leak_mult + dyn;
}

ThermalSolution ThermalModel::steady_state(const Module& module,
                                           const PowerProfile& profile,
                                           double f_ghz,
                                           double ambient_c) const {
  if (f_ghz <= 0.0) {
    throw InvalidArgument("ThermalModel: frequency must be positive");
  }
  const FrequencyLadder& ladder = module.ladder();
  double f = f_ghz;
  for (;;) {
    // Fixed-point iteration on T = ambient + R * P_cpu(T). The loop gain is
    // well below 1 (checked at construction), so convergence is geometric.
    double t = ambient_c + config_.r_thermal_c_per_w *
                               cpu_power_at_temp(module, profile, f,
                                                 ambient_c);
    for (int i = 0; i < 100; ++i) {
      double p = cpu_power_at_temp(module, profile, f, t);
      double t_next = ambient_c + config_.r_thermal_c_per_w * p;
      if (std::abs(t_next - t) < 1e-9) {
        t = t_next;
        break;
      }
      t = t_next;
    }
    if (t <= config_.prochot_c || f <= ladder.fmin() + 1e-12) {
      ThermalSolution sol;
      sol.junction_c = t;
      sol.freq_ghz = f;
      sol.cpu_w = cpu_power_at_temp(module, profile, f, t);
      sol.dram_w = module.dram_power_w(profile, f);
      sol.prochot = t > config_.prochot_c || f < f_ghz - 1e-12;
      return sol;
    }
    // Thermally limited: step one P-state down and re-solve.
    f = ladder.quantize_down(f - ladder.step() / 2.0);
  }
}

double ThermalModel::turbo_frequency_ghz(const Module& module,
                                         const PowerProfile& profile,
                                         double ambient_c) const {
  const FrequencyLadder& ladder = module.ladder();
  // Scan turbo candidates from the top: highest frequency whose steady state
  // fits both the TDP envelope and PROCHOT.
  double best = ladder.fmin();
  for (double f = module.max_freq_ghz(/*turbo=*/true); f >= ladder.fmin();
       f -= 0.05) {
    ThermalSolution sol = steady_state(module, profile, f, ambient_c);
    if (!sol.prochot && sol.cpu_w <= module.tdp_cpu_w() + 1e-9) {
      best = sol.freq_ghz;
      break;
    }
  }
  return best;
}

}  // namespace vapb::hw
